# Provide GTest::gtest / GTest::gtest_main.
#
# Preference order:
#   1. System GoogleTest (offline-friendly; the CI image ships libgtest-dev).
#   2. FetchContent from GitHub (networked builds / machines without the
#      system package).
#
# Set -DNB_FORCE_FETCH_GTEST=ON to skip the system lookup and always fetch.

option(NB_FORCE_FETCH_GTEST "Ignore system GoogleTest and FetchContent it" OFF)

if(NOT NB_FORCE_FETCH_GTEST)
  find_package(GTest QUIET)
endif()

if(TARGET GTest::gtest_main)
  message(STATUS "NetBooster: using system GoogleTest")
else()
  message(STATUS "NetBooster: system GoogleTest not found, using FetchContent")
  include(FetchContent)
  FetchContent_Declare(
    googletest
    URL https://github.com/google/googletest/archive/refs/tags/v1.14.0.tar.gz
    URL_HASH SHA256=8ad598c73ad796e0d8280b082cebd82a630d73e73cd3c70057938a6501bba5d7
    DOWNLOAD_EXTRACT_TIMESTAMP ON)
  # Keep gtest's own warnings out of -Werror builds and avoid installing it.
  set(INSTALL_GTEST OFF CACHE BOOL "" FORCE)
  set(BUILD_GMOCK OFF CACHE BOOL "" FORCE)
  FetchContent_MakeAvailable(googletest)
endif()

include(GoogleTest)
