// Quickstart: the complete NetBooster flow in ~60 lines.
//
//   1. build a tiny MobileNetV2,
//   2. expand it into a deep giant (Network Expansion),
//   3. train the giant,
//   4. run Progressive Linearization Tuning,
//   5. contract back to the original architecture — same FLOPs, same
//      params, higher accuracy than training the tiny model directly.
//
// Run:  ./build/examples/quickstart
#include <cstdio>

#include "core/netbooster.h"
#include "data/task_registry.h"
#include "models/profiler.h"
#include "models/registry.h"
#include "train/metrics.h"

int main() {
  using namespace nb;

  // A small slice of the synthetic pretraining corpus (see DESIGN.md for
  // how it stands in for ImageNet).
  const data::ClassificationTask task =
      data::make_task("synth-imagenet", /*resolution=*/20, /*scale=*/0.25f);
  std::printf("dataset: %s, %lld train / %lld test images, %lld classes\n",
              task.name.c_str(), static_cast<long long>(task.train->size()),
              static_cast<long long>(task.test->size()),
              static_cast<long long>(task.num_classes));

  // The tiny network we actually want to deploy.
  auto model = models::make_model("mbv2-tiny", task.num_classes);
  const models::Profile before = models::profile_model(*model, 20);
  std::printf("deployed TNN: %.2f MFLOPs, %s params\n", before.mflops(),
              models::human_count(before.params).c_str());

  // NetBooster config: defaults implement the paper's recipe (uniform 50%
  // expansion with ratio-6 inverted residual blocks, PLT over the first
  // quarter of tuning).
  core::NetBoosterConfig config;
  config.giant.epochs = 4;
  config.giant.batch_size = 32;
  config.giant.lr = 0.08f;
  config.tune.epochs = 3;
  config.tune.lr = 0.03f;

  core::NetBooster booster(model, config);
  const models::Profile giant = models::profile_model(booster.model(), 20);
  std::printf("deep giant:   %.2f MFLOPs, %s params (training only)\n",
              giant.mflops(), models::human_count(giant.params).c_str());

  std::printf("\n[1/2] training the deep giant...\n");
  const float giant_acc = booster.train_giant(*task.train, *task.test);
  std::printf("      giant test accuracy: %.2f%%\n", 100.0f * giant_acc);

  std::printf("[2/2] progressive linearization tuning + contraction...\n");
  const float final_acc = booster.tune_and_contract(*task.train, *task.test);
  std::printf("      final TNN accuracy:  %.2f%%\n", 100.0f * final_acc);
  std::printf("      contraction error:   %.2e (exact merge)\n",
              booster.result().contraction_error);

  const models::Profile after = booster.result().final_profile;
  std::printf("\ndeployed model after NetBooster: %.2f MFLOPs, %s params"
              " (unchanged: %s)\n",
              after.mflops(), models::human_count(after.params).c_str(),
              after.flops == before.flops && after.params == before.params
                  ? "yes"
                  : "NO");
  return 0;
}
