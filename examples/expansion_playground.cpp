// Expansion playground: explores the three design questions of paper
// Sec. III-C without any training — what each (block type, placement, ratio)
// choice does to the giant's capacity, and a live demonstration that
// contraction is exact once the PLT activations reach alpha = 1.
//
// Run:  ./build/examples/expansion_playground
#include <cstdio>

#include "core/contraction.h"
#include "core/expansion.h"
#include "core/plt.h"
#include "core/receptive_field.h"
#include "models/profiler.h"
#include "models/registry.h"
#include "tensor/tensor_ops.h"

int main() {
  using namespace nb;
  const int64_t res = 20;

  auto base = models::make_model("mbv2-tiny", 24);
  const models::Profile vanilla = models::profile_model(*base, res);
  std::printf("vanilla mbv2-tiny: %.2f MFLOPs, %s params\n\n", vanilla.mflops(),
              models::human_count(vanilla.params).c_str());

  // Q1 + Q3: giant capacity per (block type, ratio).
  std::printf("giant capacity by inserted block type and ratio:\n");
  std::printf("%-20s %8s %12s %12s\n", "block type", "ratio", "MFLOPs", "params");
  for (core::BlockType type : {core::BlockType::inverted_residual,
                               core::BlockType::basic,
                               core::BlockType::bottleneck}) {
    for (int64_t ratio : {2, 6}) {
      auto model = models::make_model("mbv2-tiny", 24);
      core::ExpansionConfig config;
      config.block_type = type;
      config.expansion_ratio = ratio;
      Rng rng(1, 9);
      auto expansion = core::expand_network(*model, config, rng);
      const models::Profile p = models::profile_model(*model, res);
      std::printf("%-20s %8lld %12.2f %12s\n", core::to_string(type),
                  static_cast<long long>(ratio), p.mflops(),
                  models::human_count(p.params).c_str());
      // Structural consistency (criterion a): receptive field unchanged.
      for (const auto& record : expansion.records) {
        if (!core::preserves_receptive_field(*record.expanded)) {
          std::printf("  !! receptive field violated\n");
        }
      }
    }
  }

  // Q2: which sites each placement picks.
  std::printf("\nplacement of 2 expansion sites among 4 candidates:\n");
  for (core::Placement p : {core::Placement::uniform, core::Placement::first,
                            core::Placement::middle, core::Placement::last}) {
    const auto sites = core::select_expansion_sites(4, p, 2);
    std::printf("  %-8s ->", core::to_string(p));
    for (int64_t s : sites) std::printf(" %lld", static_cast<long long>(s));
    std::printf("\n");
  }

  // Contraction demo: alpha 0 -> 1, then exact merge. Paper wiring (no
  // function-preserving shortcut) so the alpha ramp visibly changes the
  // block's output.
  std::printf("\ncontraction demo (inverted residual insert, ratio 6):\n");
  Rng rng(2, 9);
  core::ExpansionConfig config;
  config.preserve_function = false;
  core::ExpandedConv block(8, 16, config, nn::ActKind::relu6, rng);
  block.set_training(false);
  Tensor x({1, 8, 6, 6});
  fill_normal(x, rng, 0.0f, 1.0f);

  core::PltScheduler scheduler(block.plt_activations(), 4);
  for (int64_t step = 0; step <= 4; ++step) {
    scheduler.on_step(step);
    std::printf("  alpha = %.2f, output norm = %.4f\n", scheduler.alpha(),
                block.forward(x).norm());
  }
  auto merged = core::contract_expanded(block);
  const float err = max_abs_diff(block.forward(x), merged->forward(x));
  std::printf("  merged into a single %lldx%lld pointwise conv, max error %.2e\n",
              static_cast<long long>(merged->options().out_channels),
              static_cast<long long>(merged->options().in_channels), err);
  return 0;
}
