// Plugging your own data into the library: implement the
// data::ClassificationDataset interface and every component — the
// prefetching PipelineLoader, Trainer, NetBooster, the int8 deployment
// pipeline — works with it unchanged. This example trains on the custom
// data through the parallel data pipeline and then quantizes the result,
// end to end.
//
// The example dataset is a two-moons-style problem rendered as images:
// class 0 draws an upper arc, class 1 a lower arc, with per-sample jitter —
// about the smallest "real" dataset that still shows the training loop
// doing something.
//
// Run:  ./build/examples/custom_dataset
#include <cmath>
#include <cstdio>
#include <vector>

#include "models/profiler.h"
#include "quant/qmodel.h"
#include "data/dataset.h"
#include "data/pipeline.h"
#include "models/registry.h"
#include "train/metrics.h"
#include "train/trainer.h"
#include "tensor/rng.h"

using namespace nb;

namespace {

/// A user-defined dataset: arcs rendered into 3x16x16 images.
class TwoArcs : public data::ClassificationDataset {
 public:
  TwoArcs(int64_t samples, uint64_t seed) : images_(), labels_() {
    Rng rng(seed, 3);
    images_.reserve(static_cast<size_t>(samples));
    labels_.reserve(static_cast<size_t>(samples));
    for (int64_t i = 0; i < samples; ++i) {
      const int64_t label = i % 2;
      images_.push_back(render(label, rng));
      labels_.push_back(label);
    }
  }

  int64_t size() const override {
    return static_cast<int64_t>(labels_.size());
  }
  int64_t num_classes() const override { return 2; }
  int64_t resolution() const override { return 16; }
  Tensor image(int64_t idx) const override {
    return images_[static_cast<size_t>(idx)];
  }
  int64_t label(int64_t idx) const override {
    return labels_[static_cast<size_t>(idx)];
  }
  std::string name() const override { return "two-arcs"; }

 private:
  static Tensor render(int64_t label, Rng& rng) {
    Tensor img({3, 16, 16});
    const float phase = rng.uniform(-0.5f, 0.5f);
    const float thickness = rng.uniform(1.0f, 2.5f);
    for (int64_t y = 0; y < 16; ++y) {
      for (int64_t x = 0; x < 16; ++x) {
        const float fx = (static_cast<float>(x) - 8.0f) / 8.0f;
        // The two arcs overlap vertically and colors carry no class signal,
        // so the classifier has to read curvature, not position or hue.
        const float curve = (label == 0 ? -3.0f : 3.0f) *
                            (fx + phase) * (fx + phase);
        const float dist =
            std::fabs(static_cast<float>(y) - (8.0f + curve)) / thickness;
        const float v = std::exp(-dist * dist) + 0.35f * rng.normal();
        img.at(0, y, x) = v;
        img.at(1, y, x) = v;
        img.at(2, y, x) = v;
      }
    }
    return img;
  }

  std::vector<Tensor> images_;
  std::vector<int64_t> labels_;
};

}  // namespace

int main() {
  const TwoArcs train(160, 1);
  const TwoArcs test(60, 2);
  std::printf("custom dataset '%s': %lld train / %lld test, %lld classes\n",
              train.name().c_str(), static_cast<long long>(train.size()),
              static_cast<long long>(test.size()),
              static_cast<long long>(train.num_classes()));

  // Custom datasets feed the prefetching pipeline like any built-in one:
  // a reader thread shuffles, two decode workers materialize + augment
  // samples in parallel, and (determinism mode, the default) the batches
  // are bitwise-identical to the synchronous loader.
  {
    data::LoaderOptions opts;
    opts.batch_size = 16;
    opts.shuffle = true;
    opts.workers = 2;
    opts.seed = 7;
    data::PipelineLoader pipeline(train, opts);
    pipeline.start_epoch();
    data::Batch batch;
    int64_t batches = 0;
    while (pipeline.next(batch)) ++batches;
    const data::PipelineStats stats = pipeline.stats();
    std::printf("pipeline warm-up: %lld batches via %lld workers "
                "(%lld samples decoded in the pool)\n",
                static_cast<long long>(batches),
                static_cast<long long>(pipeline.workers()),
                static_cast<long long>(stats.samples_decoded));
  }

  // The exact same calls the built-in tasks use: train (data_workers > 0
  // routes the Trainer's loader through the same pipeline)...
  auto model = models::make_model("mbv2-tiny", train.num_classes(), 3);
  train::TrainConfig config;
  config.epochs = 8;
  config.batch_size = 16;
  config.lr = 0.03f;
  config.data_workers = 2;
  const float fp32_acc =
      train::train_classifier(*model, train, test, config).final_test_acc;
  std::printf("trained accuracy:  %.2f%%\n", 100.0 * fp32_acc);

  // ...and deploy: the int8 pipeline calibrates on the custom data too.
  quant::DeployConfig deploy;
  deploy.calib_batches = 4;
  deploy.batch_size = 16;
  const quant::DeployReport report =
      quant::quantize_for_deployment(*model, train, deploy);
  const float int8_acc = train::evaluate(*model, test);
  std::printf("int8 accuracy:     %.2f%% (%lld convs quantized, %s weight "
              "bytes)\n",
              100.0 * int8_acc, static_cast<long long>(report.conv_layers),
              models::human_count(report.quant_weight_bytes).c_str());

  std::printf("\nAnything implementing data::ClassificationDataset gets the\n"
              "whole stack — PipelineLoader, Trainer, NetBooster, PTQ — for "
              "free.\n(For NetBooster itself see examples/quickstart.cpp; it "
              "needs more\nthan %lld images to shine.)\n",
              static_cast<long long>(train.size()));
  return 0;
}
