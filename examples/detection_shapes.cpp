// Object detection example: train the TinyDetector (MobileNetV2 backbone +
// single-scale anchor head) on the synthetic shape-detection dataset and
// print per-image detections plus the AP50 score — the substrate behind the
// paper's Pascal VOC experiment (Table III).
//
// Run:  ./build/examples/detection_shapes
#include <cstdio>

#include "data/synth_detection.h"
#include "detect/ap_eval.h"
#include "detect/detect_trainer.h"
#include "detect/detection_model.h"
#include "models/registry.h"

int main() {
  using namespace nb;

  data::DetectionConfig dc;
  dc.num_images = 300;
  dc.resolution = 24;
  dc.max_objects = 2;
  const data::SynthDetection train(dc, "train");
  const data::SynthDetection test(dc, "test");
  std::printf("detection dataset: %lld train / %lld test images, %lld classes\n",
              static_cast<long long>(train.size()),
              static_cast<long long>(test.size()),
              static_cast<long long>(dc.num_classes));

  Rng rng(11, 5);
  auto backbone = models::make_model("mbv2-35", 8);
  detect::DetectorConfig config;
  detect::TinyDetector detector(backbone, config, rng);

  detect::DetectTrainConfig tc;
  tc.epochs = 12;
  tc.batch_size = 16;
  tc.lr = 0.02f;
  tc.verbose = true;
  std::printf("\ntraining detector...\n");
  const float ap = detect::train_detector(detector, train, test, tc);
  std::printf("\nAP50 on test set: %.1f\n", 100.0f * ap);

  // Show detections for the first few test images.
  std::printf("\nsample detections (first 3 test images):\n");
  detector.set_training(false);
  for (int64_t i = 0; i < 3 && i < test.size(); ++i) {
    Tensor img = test.image(i).reshape({1, 3, dc.resolution, dc.resolution});
    const Tensor head_out = detector.forward(img);
    // Demo-scale training keeps objectness conservative; decode with a low
    // threshold so the boxes it is confident about are visible.
    const auto batch_boxes = detector.decode(head_out, 0.15f);
    std::printf(" image %lld: %zu ground truth, %zu detections\n",
                static_cast<long long>(i), test.boxes(i).size(),
                batch_boxes[0].size());
    for (const detect::Box& b : batch_boxes[0]) {
      std::printf("   class %lld score %.2f box [%.2f %.2f %.2f %.2f]\n",
                  static_cast<long long>(b.cls), b.score, b.x1, b.y1, b.x2,
                  b.y2);
    }
  }
  return 0;
}
