// Knowledge-distillation comparison: trains the same tiny model with plain
// CE, with a KD teacher, and with NetBooster, then with NetBooster + KD —
// the four recipes of the paper's Table II (MobileNetV2-35 rows), on a small
// slice so the whole example runs in a couple of minutes.
//
// Run:  ./build/examples/kd_comparison
#include <cstdio>

#include "baselines/kd.h"
#include "core/netbooster.h"
#include "data/task_registry.h"
#include "models/registry.h"
#include "train/trainer.h"

using namespace nb;

namespace {

train::TrainConfig recipe(int64_t epochs) {
  train::TrainConfig c;
  c.epochs = epochs;
  c.batch_size = 32;
  c.lr = 0.08f;
  c.seed = 17;
  return c;
}

}  // namespace

int main() {
  const data::ClassificationTask task =
      data::make_task("synth-imagenet", /*resolution=*/20, /*scale=*/0.2f);
  std::printf("task: %lld classes, %lld train images\n\n",
              static_cast<long long>(task.num_classes),
              static_cast<long long>(task.train->size()));

  // Vanilla.
  auto vanilla = models::make_model("mbv2-tiny", task.num_classes, 5);
  const float acc_vanilla =
      train::train_classifier(*vanilla, *task.train, *task.test, recipe(6))
          .final_test_acc;
  std::printf("vanilla CE:        %.2f%%\n", 100.0 * acc_vanilla);

  // Teacher for the KD runs (a 4x-wide MobileNetV2).
  auto teacher = models::make_model("teacher", task.num_classes, 7);
  (void)train::train_classifier(*teacher, *task.train, *task.test, recipe(6));

  // Hinton KD: CE + T^2 * KL against the teacher.
  auto student = models::make_model("mbv2-tiny", task.num_classes, 5);
  baselines::KdConfig kd;
  const float acc_kd =
      train::train_classifier(*student, *task.train, *task.test, recipe(6),
                              baselines::make_kd_loss(teacher, kd))
          .final_test_acc;
  std::printf("KD (wide teacher): %.2f%%\n", 100.0 * acc_kd);

  // NetBooster (paper budget: giant gets the full single-stage budget).
  core::NetBoosterConfig nb_cfg;
  nb_cfg.giant = recipe(6);
  nb_cfg.tune = recipe(4);
  nb_cfg.tune.lr = 0.03f;
  auto nb_model = models::make_model("mbv2-tiny", task.num_classes, 5);
  const core::NetBoosterResult r =
      core::run_netbooster(nb_model, *task.train, *task.test, nb_cfg);
  std::printf("NetBooster:        %.2f%% (giant reached %.2f%%)\n",
              100.0 * r.final_acc, 100.0 * r.expanded_acc);

  // NetBooster + KD: the tuning stage distills from the teacher on top of
  // the inherited giant features (the paper's "orthogonal to KD" claim).
  auto combo_model = models::make_model("mbv2-tiny", task.num_classes, 5);
  core::NetBooster combo(combo_model, nb_cfg);
  combo.train_giant(*task.train, *task.test);
  const float acc_combo = combo.tune_and_contract(
      *task.train, *task.test, baselines::make_kd_loss(teacher, kd));
  std::printf("NetBooster + KD:   %.2f%%\n\n", 100.0 * acc_combo);

  std::printf(
      "paper's Table II shape: NetBooster > KD > vanilla. Whether +KD\n"
      "stacks further depends on teacher quality — at this demo scale the\n"
      "teacher is undertrained, so the combo trails plain NetBooster (see\n"
      "EXPERIMENTS.md, Table II notes).\n");
  return 0;
}
