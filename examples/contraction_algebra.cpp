// Contraction algebra walkthrough: the linear-merging machinery behind
// NetBooster's Step 2 (paper Eq. 3-4), demonstrated directly on random
// kernels, without any training:
//
//   1. merge two sequential convolutions into one (kernel k1+k2-1),
//   2. fold a BatchNorm into a convolution,
//   3. merge a parallel branch (RepVGG-style) and a residual identity,
//   4. contract a full inverted-residual insert back to a single pointwise
//      conv and measure the (floating-point-only) error.
//
// Run:  ./build/examples/contraction_algebra
#include <cstdio>

#include "core/contraction.h"
#include "core/expansion.h"
#include "nn/init.h"
#include "tensor/rng.h"
#include "tensor/tensor_ops.h"

using namespace nb;

namespace {

core::LinearConv random_conv(int64_t cin, int64_t cout, int64_t k, Rng& rng,
                             int64_t padding) {
  core::LinearConv conv;
  conv.weight = Tensor({cout, cin, k, k});
  conv.bias = Tensor({cout});
  fill_uniform(conv.weight, rng, -0.5f, 0.5f);
  fill_uniform(conv.bias, rng, -0.1f, 0.1f);
  conv.padding = padding;
  return conv;
}

}  // namespace

int main() {
  Rng rng(2024, 7);
  Tensor x({1, 4, 9, 9});
  fill_uniform(x, rng, -1.0f, 1.0f);

  // 1. Sequential merge (Eq. 3-4): a 3x3 then a 3x3 equal one 5x5. Exact for
  //    valid (unpadded) convolution; with same-padding only the interior
  //    matches — NetBooster's own inserts are all 1x1, where the merge is
  //    exact everywhere.
  {
    core::LinearConv a = random_conv(4, 6, 3, rng, /*padding=*/0);
    core::LinearConv b = random_conv(6, 4, 3, rng, /*padding=*/0);
    const Tensor two_step =
        core::apply_linear_conv(b, core::apply_linear_conv(a, x));
    const core::LinearConv merged = core::merge_sequential(a, b);
    const Tensor one_step = core::apply_linear_conv(merged, x);
    std::printf("sequential merge: 3x3 o 3x3 -> %lldx%lld, max|diff| = %.2e\n",
                static_cast<long long>(merged.kernel()),
                static_cast<long long>(merged.kernel()),
                max_abs_diff(two_step, one_step));
  }

  // 2. Parallel merge (RepVGG): a 3x3 branch plus a 1x1 branch, both with
  //    same padding so the branch outputs align.
  {
    core::LinearConv wide = random_conv(4, 4, 3, rng, /*padding=*/1);
    const core::LinearConv narrow = random_conv(4, 4, 1, rng, /*padding=*/0);
    const Tensor branch_sum = core::apply_linear_conv(wide, x).add(
        core::apply_linear_conv(narrow, x));
    core::add_parallel(wide, narrow);
    const Tensor fused = core::apply_linear_conv(wide, x);
    std::printf("parallel merge:   3x3 + 1x1 branches,  max|diff| = %.2e\n",
                max_abs_diff(branch_sum, fused));
  }

  // 3. Residual merge: conv + identity becomes a single kernel.
  {
    core::LinearConv conv = random_conv(4, 4, 3, rng, /*padding=*/1);
    const Tensor with_skip = core::apply_linear_conv(conv, x).add(x);
    core::add_identity(conv);
    const Tensor fused = core::apply_linear_conv(conv, x);
    std::printf("residual merge:   conv + identity,      max|diff| = %.2e\n",
                max_abs_diff(with_skip, fused));
  }

  // 4. A full inserted block (pw 1x1 ratio-6 inverted residual, the paper's
  //    default insert) contracted back to one pointwise convolution.
  {
    core::ExpansionConfig config;
    config.preserve_function = false;  // fully random insert
    Rng block_rng(11, 3);
    core::ExpandedConv block(4, 8, config, nn::ActKind::relu6, block_rng);
    block.set_training(false);
    for (nn::PltActivation* act : block.plt_activations()) {
      act->set_alpha(1.0f);  // PLT finished: block is exactly linear
    }
    const Tensor giant_out = block.forward(x);
    const std::shared_ptr<nn::Conv2d> single = core::contract_expanded(block);
    const Tensor tnn_out = single->forward(x);
    std::printf(
        "block contraction: ratio-6 insert -> pw conv, max|diff| = %.2e\n",
        max_abs_diff(giant_out, tnn_out));
    std::printf(
        "  insert params: %lld   contracted params: %lld (original shape)\n",
        static_cast<long long>(block.param_count()),
        static_cast<long long>(single->param_count()));
  }

  std::printf("\nAll merges are exact up to float32 rounding — this is what\n"
              "lets PLT revert the deep giant to the original TNN for free.\n");
  return 0;
}
