// Deployment walkthrough: train a TNN with NetBooster, contract it, run the
// int8 post-training-quantization pipeline (fold BN -> per-channel int8
// weights -> calibrated int8 activations), export the flat NBFM artifact,
// then stand it up behind the serving runtime: CompiledModel (weights
// compiled once), Sessions (concurrent streams, zero weight duplication)
// and an Engine (micro-batched request queue) — the last mile for the IoT
// devices the paper targets, plus the serving tier above them.
//
// Run:  ./build/examples/quantized_deployment
#include <cstdio>
#include <future>
#include <vector>

#include "core/netbooster.h"
#include "data/task_registry.h"
#include "export/flat_writer.h"
#include "models/profiler.h"
#include "models/registry.h"
#include "quant/qmodel.h"
#include "runtime/compiled_model.h"
#include "runtime/engine.h"
#include "runtime/session.h"
#include "tensor/tensor_ops.h"
#include "train/metrics.h"

using namespace nb;

int main() {
  const data::ClassificationTask task =
      data::make_task("synth-imagenet", /*resolution=*/20, /*scale=*/0.2f);

  // Train with NetBooster (short budgets; see the benches for full runs).
  core::NetBoosterConfig cfg;
  cfg.giant.epochs = 6;
  cfg.giant.batch_size = 32;
  cfg.giant.lr = 0.08f;
  cfg.tune = cfg.giant;
  cfg.tune.epochs = 4;
  cfg.tune.lr = 0.03f;
  std::shared_ptr<models::MobileNetV2> model =
      models::make_model("mbv2-tiny", task.num_classes, 5);
  const core::NetBoosterResult r =
      core::run_netbooster(model, *task.train, *task.test, cfg);
  std::printf("fp32 accuracy after NetBooster: %.2f%%\n", 100.0 * r.final_acc);

  const models::Profile fp32_profile = models::profile_model(*model, 20);
  std::printf("deployed model: %s params, %s FLOPs\n",
              models::human_count(fp32_profile.params).c_str(),
              models::human_count(fp32_profile.flops).c_str());

  // Post-training quantization to int8.
  quant::DeployConfig deploy;
  deploy.spec.weight_bits = 8;
  deploy.spec.act_bits = 8;
  deploy.spec.calib = quant::CalibMode::percentile;
  deploy.calib_batches = 4;
  const quant::DeployReport report =
      quant::quantize_for_deployment(*model, *task.train, deploy);

  const float int8_acc = train::evaluate(*model, *task.test);
  std::printf("\nint8 accuracy: %.2f%% (drop %.2f points)\n", 100.0 * int8_acc,
              100.0 * (r.final_acc - int8_acc));
  std::printf("quantized %lld convs + %lld linear, folded %lld BNs\n",
              static_cast<long long>(report.conv_layers),
              static_cast<long long>(report.linear_layers),
              static_cast<long long>(report.folded_bn));
  std::printf("weight bytes: %s (fp32) -> %s (int8), %.1fx smaller\n",
              models::human_count(report.fp32_weight_bytes).c_str(),
              models::human_count(report.quant_weight_bytes).c_str(),
              static_cast<double>(report.fp32_weight_bytes) /
                  static_cast<double>(report.quant_weight_bytes));

  // Ship it: a single-file artifact with true int8 weight storage and a
  // self-contained runtime.
  const std::string artifact = "netbooster_tiny.nbm";
  exporter::write_flat_model(*model, artifact, /*input_resolution=*/20);
  const exporter::FlatModel flat = exporter::FlatModel::load(artifact);
  Rng rng(71, 1);
  Tensor probe({1, 3, 20, 20});
  fill_uniform(probe, rng, -1.0f, 1.0f);
  const float agreement =
      max_abs_diff(model->forward(probe), flat.forward(probe));
  std::printf("\nexported %s: %lld ops, %s weight payload, "
              "runtime max|diff| vs model = %.2e\n",
              artifact.c_str(), static_cast<long long>(flat.ops().size()),
              models::human_count(flat.weight_bytes()).c_str(), agreement);

  // Serve it: compile once, then any number of concurrent streams share
  // the same weight panels — two sessions cost two small arenas, not two
  // copies of the model.
  const auto compiled = runtime::CompiledModel::compile(flat);
  runtime::Session stream_a(compiled), stream_b(compiled);
  const Tensor logits_a = stream_a.run(probe);
  const Tensor logits_b = stream_b.run(probe);
  const auto mem = stream_a.memory();
  std::printf("\nserving: 2 sessions on one CompiledModel\n");
  std::printf("  shared weight panels: %s (paid once)\n",
              models::human_count(mem.borrowed_weight_floats * 4).c_str());
  std::printf("  per-session arena:    %s (the only per-stream cost)\n",
              models::human_count(mem.owned_arena_floats * 4).c_str());
  std::printf("  sessions agree: max|diff| = %.2e\n",
              max_abs_diff(logits_a, logits_b));

  // Behind an Engine, single-image requests coalesce into micro-batches.
  runtime::EngineOptions serve;
  serve.batching.max_batch = 4;
  serve.batching.max_wait_us = 2000;
  runtime::Engine engine(serve);
  engine.register_model("tnn", compiled);
  std::vector<std::future<Tensor>> pending;
  for (int i = 0; i < 8; ++i) {
    pending.push_back(engine.submit("tnn", probe.reshape({3, 20, 20})));
  }
  for (auto& f : pending) (void)f.get();
  const runtime::Engine::Stats st = engine.stats();
  std::printf("  engine: %lld requests in %lld batches (avg batch %.1f), "
              "p50 %.2f ms\n",
              static_cast<long long>(st.completed),
              static_cast<long long>(st.batches), st.avg_batch, st.p50_ms);

  std::printf("\nnote: pass spec.weight_bits = 4 for int4 weights; the\n"
              "tests show accuracy degrading monotonically with bit width.\n");
  return 0;
}
