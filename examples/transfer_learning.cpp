// Transfer learning example (the paper's Constraint 2 scenario): pretrain on
// the large corpus, then finetune on a fine-grained downstream task — the
// regime where NetBooster's inherited giant features pay off most (paper
// Table II: up to +4.75% on Cars).
//
// Compares, at equal downstream budget:
//   vanilla:    tiny model pretrained normally, then finetuned;
//   netbooster: deep giant pretrained, PLT-contracted onto the task.
//
// Run:  ./build/examples/transfer_learning
#include <cstdio>

#include "core/netbooster.h"
#include "data/task_registry.h"
#include "models/registry.h"
#include "train/metrics.h"
#include "train/trainer.h"

int main() {
  using namespace nb;

  const data::ClassificationTask pretask =
      data::make_task("synth-imagenet", 24, 0.25f);
  const data::ClassificationTask cars = data::make_task("cars", 24, 0.5f);
  std::printf("pretraining corpus: %lld images / %lld classes\n",
              static_cast<long long>(pretask.train->size()),
              static_cast<long long>(pretask.num_classes));
  std::printf("downstream task:    %s (fine-grained), %lld images / %lld classes\n\n",
              cars.name.c_str(), static_cast<long long>(cars.train->size()),
              static_cast<long long>(cars.num_classes));

  train::TrainConfig pre;
  pre.epochs = 5;
  pre.batch_size = 32;
  pre.lr = 0.08f;

  train::TrainConfig tune = pre;
  tune.epochs = 4;
  tune.lr = 0.03f;

  // ---- vanilla pretrain -> finetune ------------------------------------
  std::printf("[vanilla] pretraining tiny model...\n");
  auto vanilla = models::make_model("mbv2-35", pretask.num_classes);
  (void)train::train_classifier(*vanilla, *pretask.train, *pretask.test, pre);
  Rng rng(7, 3);
  vanilla->reset_classifier(cars.num_classes, rng);
  std::printf("[vanilla] finetuning on %s...\n", cars.name.c_str());
  const float vanilla_acc =
      train::train_classifier(*vanilla, *cars.train, *cars.test, tune)
          .final_test_acc;

  // ---- NetBooster pretrain -> PLT + contract ---------------------------
  std::printf("[netbooster] pretraining deep giant...\n");
  auto boosted = models::make_model("mbv2-35", pretask.num_classes);
  core::NetBoosterConfig config;
  config.giant = pre;
  config.tune = tune;
  core::NetBooster booster(boosted, config);
  booster.train_giant(*pretask.train, *pretask.test);
  booster.prepare_transfer(cars.num_classes);
  std::printf("[netbooster] PLT finetuning + contraction on %s...\n",
              cars.name.c_str());
  const float boosted_acc = booster.tune_and_contract(*cars.train, *cars.test);

  std::printf("\n%-14s %8s\n", "method", "acc(%)");
  std::printf("%-14s %8.2f\n", "vanilla", 100.0f * vanilla_acc);
  std::printf("%-14s %8.2f   (delta %+.2f)\n", "netbooster",
              100.0f * boosted_acc, 100.0f * (boosted_acc - vanilla_acc));
  return 0;
}
