// Serving-runtime report: exercises the Engine/Session/CompiledModel stack
// on a synthetic MobileNetV2-flat (and MCUNet-flat in the full run) and
// writes machine-readable BENCH_serve.json:
//
//   * session scaling — N closed-loop streams, one Session per thread, all
//     borrowing ONE CompiledModel's weight panels: aggregate throughput,
//     per-request p50/p99, and the owned-vs-shared memory split.
//   * batching policy — closed-loop clients against an Engine under
//     sequential (max_batch=1) and micro-batching (max_batch 4/8)
//     policies, plus a workers {2,4} sweep of the micro-batch-8 policy:
//     throughput, latency percentiles, achieved batch size.
//   * workers sweep (open loop) — seeded Poisson arrivals at a FIXED
//     offered load (fraction of measured capacity) with a mid-window burst,
//     per-request SLO deadlines, workers {1,2,4}: goodput, shed rate and
//     p99-of-accepted under load the server does not control.
//   * overload — offered load >= 2x measured capacity against a bounded
//     queue with deadlines, workers > 1: the engine must shed (typed
//     rejections) while p99 of ACCEPTED requests stays within the SLO and
//     every future resolves. This is the graceful-degradation contract.
//   * mixed geometry — the same seeded arrival schedule drawing from eight
//     near-32x32 geometries, run twice: once with a {32,32} bucket ladder
//     (pad-to-bucket coalescing) and once without. Near capacity the
//     bucketed engine forms cross-geometry batches inside the wait window
//     while the unbucketed one fragments into per-geometry singles and
//     thrashes its plan cache, so bucketed goodput must be strictly
//     higher. CI guards the ratio.
//
// The headline numbers are micro-batch throughput over sequential
// (mbv2_batching, unchanged) and the overload row's bounded-p99 + shed
// rate.
//
// Usage: bench_serve_report [--quick] [--out <path>]
//   --quick  small graph, short windows (the CI setting)
//   --out    output path (default: BENCH_serve.json in the cwd)
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "export/flat_model.h"
#include "export/flat_synth.h"
#include "runtime/compiled_model.h"
#include "runtime/engine.h"
#include "runtime/loadgen.h"
#include "runtime/percentile.h"
#include "runtime/session.h"
#include "tensor/rng.h"
#include "tensor/tensor.h"
#include "tensor/tensor_ops.h"

namespace {

using namespace nb;
using namespace nb::runtime;
using Clock = std::chrono::steady_clock;

struct SessionResult {
  std::string graph;
  int64_t sessions = 0;
  int64_t requests = 0;
  double images_per_s = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  int64_t owned_arena_bytes_per_session = 0;
  int64_t shared_weight_bytes = 0;
};

/// N closed-loop streams, each its own serial Session over one shared
/// CompiledModel, running until the window closes.
SessionResult bench_sessions(const std::string& graph,
                             std::shared_ptr<const CompiledModel> model,
                             int64_t sessions, double window_s) {
  const int64_t res = model->input_resolution();
  const int64_t channels = model->input_channels();
  std::vector<std::vector<double>> lat(static_cast<size_t>(sessions));
  std::vector<int64_t> owned(static_cast<size_t>(sessions), 0);
  std::vector<std::thread> threads;
  const auto t0 = Clock::now();
  const auto deadline = t0 + std::chrono::duration<double>(window_s);
  for (int64_t s = 0; s < sessions; ++s) {
    threads.emplace_back([&, s] {
      Session session(model);  // default: serial per-stream execution
      Rng rng(100 + static_cast<uint64_t>(s));
      Tensor image({1, channels, res, res});
      fill_uniform(image, rng, -1.0f, 1.0f);
      (void)session.run(image);  // warmup: builds the plan
      auto& mine = lat[static_cast<size_t>(s)];
      while (Clock::now() < deadline) {
        const auto t0 = Clock::now();
        (void)session.run(image);
        mine.push_back(
            std::chrono::duration<double, std::milli>(Clock::now() - t0)
                .count());
      }
      owned[static_cast<size_t>(s)] = session.memory().owned_arena_floats * 4;
    });
  }
  for (std::thread& t : threads) t.join();
  const double wall =
      std::chrono::duration<double>(Clock::now() - t0).count();

  SessionResult r;
  r.graph = graph;
  r.sessions = sessions;
  std::vector<double> all;
  for (auto& v : lat) {
    r.requests += static_cast<int64_t>(v.size());
    all.insert(all.end(), v.begin(), v.end());
  }
  std::sort(all.begin(), all.end());
  r.images_per_s = static_cast<double>(r.requests) / wall;
  r.p50_ms = percentile_sorted(all, 0.50);
  r.p99_ms = percentile_sorted(all, 0.99);
  r.owned_arena_bytes_per_session = owned.empty() ? 0 : owned[0];
  r.shared_weight_bytes = model->weight_panel_bytes();
  return r;
}

struct EngineResult {
  std::string graph;
  std::string policy;
  int64_t max_batch = 0;
  int64_t max_wait_us = 0;
  int64_t clients = 0;
  int64_t workers = 0;
  int64_t requests = 0;
  double images_per_s = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double avg_batch = 0.0;
  int64_t batches = 0;
};

/// Closed-loop clients against one Engine under the given batching policy
/// and worker count.
EngineResult bench_engine(const std::string& graph,
                          std::shared_ptr<const CompiledModel> model,
                          const std::string& policy, int64_t max_batch,
                          int64_t max_wait_us, int64_t clients,
                          int64_t workers, double window_s) {
  EngineOptions opts;
  opts.batching.max_batch = max_batch;
  opts.batching.max_wait_us = max_wait_us;
  opts.workers = workers;

  const int64_t res = model->input_resolution();
  const int64_t channels = model->input_channels();

  EngineResult r;
  r.graph = graph;
  r.policy = policy;
  r.max_batch = max_batch;
  r.max_wait_us = max_wait_us;
  r.clients = clients;
  r.workers = workers;
  {
    Engine engine(opts);
    engine.register_model("m", model);
    // Warmup one request so the worker's session plans both geometries the
    // window will see (batch 1 and batch max).
    {
      Rng rng(7);
      Tensor image({channels, res, res});
      fill_uniform(image, rng, -1.0f, 1.0f);
      (void)engine.submit("m", image).get();
    }

    std::atomic<bool> stop{false};
    std::atomic<int64_t> done{0};
    std::vector<std::thread> threads;
    const auto t0 = Clock::now();
    for (int64_t c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        Rng rng(300 + static_cast<uint64_t>(c));
        Tensor image({channels, res, res});
        fill_uniform(image, rng, -1.0f, 1.0f);
        while (!stop.load(std::memory_order_relaxed)) {
          (void)engine.submit("m", image).get();
          done.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    std::this_thread::sleep_for(std::chrono::duration<double>(window_s));
    stop.store(true);
    for (std::thread& t : threads) t.join();
    const double wall =
        std::chrono::duration<double>(Clock::now() - t0).count();

    const Engine::Stats st = engine.stats();
    r.requests = done.load();
    r.images_per_s = static_cast<double>(r.requests) / wall;
    r.p50_ms = st.p50_ms;
    r.p99_ms = st.p99_ms;
    r.avg_batch = st.avg_batch;
    r.batches = st.batches;
  }
  return r;
}

struct OpenLoopRow {
  std::string graph;
  std::string mode;  // "fixed_load" | "overload"
  int64_t workers = 0;
  int64_t queue_depth = 0;
  int64_t slo_ms = 0;
  double offered_per_s = 0.0;
  double capacity_per_s = 0.0;  // the closed-loop measurement it scales from
  int64_t offered = 0;
  int64_t completed = 0;
  int64_t completed_within_slo = 0;
  int64_t rejected_queue_full = 0;
  int64_t dropped_deadline = 0;
  int64_t shed = 0;
  int64_t unresolved = 0;  // must be 0: every request got an outcome
  double goodput_per_s = 0.0;
  double shed_rate = 0.0;
  double p50_accepted_ms = 0.0;
  double p99_accepted_ms = 0.0;
  double max_lag_ms = 0.0;
};

/// Seeded open-loop run: Poisson arrivals (optionally with a burst window)
/// against a bounded-queue, deadline-enforcing Engine.
OpenLoopRow bench_open_loop(const std::string& graph,
                            std::shared_ptr<const CompiledModel> model,
                            const std::string& mode, int64_t workers,
                            double offered_per_s, double capacity_per_s,
                            int64_t queue_depth, int64_t slo_ms,
                            const std::vector<BurstSpec>& bursts,
                            double window_s, uint64_t seed) {
  EngineOptions opts;
  opts.batching.max_batch = 8;
  opts.batching.max_wait_us = 2000;
  opts.workers = workers;
  opts.default_qos.max_queue_depth = queue_depth;

  OpenLoopRow row;
  row.graph = graph;
  row.mode = mode;
  row.workers = workers;
  row.queue_depth = queue_depth;
  row.slo_ms = slo_ms;
  row.offered_per_s = offered_per_s;
  row.capacity_per_s = capacity_per_s;

  Engine engine(opts);
  engine.register_model("m", model);
  const int64_t res = model->input_resolution();
  Rng rng(42);
  Tensor image({model->input_channels(), res, res});
  fill_uniform(image, rng, -1.0f, 1.0f);
  // Warmup so plan compilation doesn't eat the first arrivals' budget.
  (void)engine.submit("m", image).get();

  OpenLoopSpec spec;
  spec.rate_per_s = offered_per_s;
  spec.duration_s = window_s;
  spec.seed = seed;
  spec.bursts = bursts;
  const OpenLoopResult r = run_open_loop(
      engine, {{"m", image, {}}}, spec, slo_ms * 1000);
  const Engine::Stats st = engine.stats();

  row.offered = r.offered;
  row.completed = r.completed;
  row.completed_within_slo = st.completed_within_deadline;
  row.rejected_queue_full = r.rejected_queue_full;
  row.dropped_deadline = r.dropped_deadline + r.rejected_deadline;
  row.shed = r.shed();
  row.unresolved = r.offered - r.completed - r.shed() - r.faulted;
  row.goodput_per_s = r.goodput_per_s();
  row.shed_rate = r.shed_rate();
  row.p50_accepted_ms = st.p50_ms;
  row.p99_accepted_ms = st.p99_ms;
  row.max_lag_ms = r.max_lag_s * 1e3;
  return row;
}

/// One row of the mixed-geometry comparison: the same seeded open-loop
/// schedule over eight near-32x32 geometries, with or without a bucket
/// ladder. Both rows use identical engine/session knobs; only the ladder
/// differs.
struct MixedGeoRow {
  bool bucketed = false;
  int64_t workers = 0;
  int64_t queue_depth = 0;
  int64_t slo_ms = 0;
  double offered_per_s = 0.0;
  double capacity_per_s = 0.0;
  int64_t offered = 0;
  int64_t completed = 0;
  int64_t shed = 0;
  int64_t unresolved = 0;
  int64_t padded_accepted = 0;
  int64_t mixed_geometry_batches = 0;
  int64_t batches = 0;
  double avg_batch = 0.0;
  double goodput_per_s = 0.0;
  double shed_rate = 0.0;
  double p50_accepted_ms = 0.0;
  double p99_accepted_ms = 0.0;
};

/// Geometry mix for the bucketed-vs-unbucketed comparison: sixteen
/// geometries within pad ratio 1.19 of the 32x32 rung, so every request
/// is bucket-eligible and the pad waste stays honest. Sixteen distinct
/// shapes means an unbucketed queue of comparable depth holds roughly one
/// request per geometry — exactly the fragmentation buckets exist to fix.
const std::vector<std::pair<int64_t, int64_t>> kMixedGeometries{
    {27, 32}, {28, 31}, {28, 32}, {29, 30}, {29, 31}, {29, 32},
    {30, 29}, {30, 30}, {30, 31}, {30, 32}, {31, 29}, {31, 30},
    {31, 31}, {31, 32}, {32, 27}, {32, 32}};

MixedGeoRow bench_mixed_geometry(std::shared_ptr<const CompiledModel> model,
                                 bool bucketed, double offered_per_s,
                                 double capacity_per_s, int64_t queue_depth,
                                 int64_t slo_ms, double window_s,
                                 uint64_t seed) {
  EngineOptions opts;
  opts.batching.max_batch = 8;
  opts.batching.max_wait_us = 2000;
  opts.workers = 1;
  opts.default_qos.max_queue_depth = queue_depth;
  // Same cache budget for both rows: the unbucketed row genuinely pays
  // for eight geometry x batch-size plan families under this budget.
  opts.session.max_cached_plans = 16;
  if (bucketed) {
    opts.default_qos.bucketing.ladder = {{32, 32}};
    opts.default_qos.bucketing.max_pad_ratio = 1.2;
  }

  MixedGeoRow row;
  row.bucketed = bucketed;
  row.workers = opts.workers;
  row.queue_depth = queue_depth;
  row.slo_ms = slo_ms;
  row.offered_per_s = offered_per_s;
  row.capacity_per_s = capacity_per_s;

  Engine engine(opts);
  engine.register_model("m", model);
  Rng rng(42);
  std::vector<Tensor> geo_images;
  for (const auto& [h, w] : kMixedGeometries) {
    Tensor t({model->input_channels(), h, w});
    fill_uniform(t, rng, -1.0f, 1.0f);
    geo_images.push_back(std::move(t));
  }
  // Warm every geometry's batch-1 plan in BOTH rows so the measured
  // window compares steady-state batching, not first-arrival compiles.
  for (const Tensor& t : geo_images) (void)engine.submit("m", t).get();

  OpenLoopSpec spec;
  spec.rate_per_s = offered_per_s;
  spec.duration_s = window_s;
  spec.seed = seed;
  spec.geo_weights.assign(kMixedGeometries.size(), 1.0);
  const OpenLoopResult r = run_open_loop(
      engine, {{"m", geo_images.front(), geo_images}}, spec, slo_ms * 1000);
  const Engine::Stats st = engine.stats();

  row.offered = r.offered;
  row.completed = r.completed;
  row.shed = r.shed();
  row.unresolved = r.offered - r.completed - r.shed() - r.faulted;
  row.padded_accepted = st.padded_accepted;
  row.mixed_geometry_batches = st.mixed_geometry_batches;
  row.batches = st.batches;
  row.avg_batch = st.avg_batch;
  row.goodput_per_s = r.goodput_per_s();
  row.shed_rate = r.shed_rate();
  row.p50_accepted_ms = st.p50_ms;
  row.p99_accepted_ms = st.p99_ms;
  return row;
}

void print_mixed_geo_row(FILE* f, const MixedGeoRow& r, const char* indent,
                         const char* trailer) {
  std::fprintf(
      f,
      "%s{\"bucketed\": %s, \"workers\": %lld, \"queue_depth\": %lld, "
      "\"slo_ms\": %lld, \"offered_per_s\": %.2f, \"capacity_per_s\": %.2f, "
      "\"offered\": %lld, \"completed\": %lld, \"shed\": %lld, "
      "\"unresolved\": %lld, \"padded_accepted\": %lld, "
      "\"mixed_geometry_batches\": %lld, \"batches\": %lld, "
      "\"avg_batch\": %.2f, \"goodput_per_s\": %.2f, \"shed_rate\": %.4f, "
      "\"p50_accepted_ms\": %.4f, \"p99_accepted_ms\": %.4f}%s\n",
      indent, r.bucketed ? "true" : "false",
      static_cast<long long>(r.workers),
      static_cast<long long>(r.queue_depth),
      static_cast<long long>(r.slo_ms), r.offered_per_s, r.capacity_per_s,
      static_cast<long long>(r.offered), static_cast<long long>(r.completed),
      static_cast<long long>(r.shed), static_cast<long long>(r.unresolved),
      static_cast<long long>(r.padded_accepted),
      static_cast<long long>(r.mixed_geometry_batches),
      static_cast<long long>(r.batches), r.avg_batch, r.goodput_per_s,
      r.shed_rate, r.p50_accepted_ms, r.p99_accepted_ms, trailer);
}

/// Per-graph batching headline: best micro-batching policy vs that same
/// graph's sequential baseline.
struct BatchingHeadline {
  std::string graph;
  const EngineResult* seq = nullptr;
  const EngineResult* best = nullptr;
  double speedup() const { return best->images_per_s / seq->images_per_s; }
};

void print_headline(FILE* f, const char* key, const BatchingHeadline& h,
                    const char* trailer) {
  std::fprintf(f, "  \"%s\": {\n", key);
  std::fprintf(f, "    \"graph\": \"%s\",\n", h.graph.c_str());
  std::fprintf(f, "    \"sequential_images_per_s\": %.2f,\n",
               h.seq->images_per_s);
  std::fprintf(f, "    \"best_policy\": \"%s\",\n", h.best->policy.c_str());
  std::fprintf(f, "    \"best_policy_images_per_s\": %.2f,\n",
               h.best->images_per_s);
  std::fprintf(f, "    \"speedup_microbatch_vs_sequential\": %.4f,\n",
               h.speedup());
  std::fprintf(f, "    \"best_policy_avg_batch\": %.2f\n", h.best->avg_batch);
  std::fprintf(f, "  }%s\n", trailer);
}

void print_open_loop_row(FILE* f, const OpenLoopRow& r, const char* indent,
                         const char* trailer) {
  std::fprintf(
      f,
      "%s{\"graph\": \"%s\", \"mode\": \"%s\", \"workers\": %lld, "
      "\"queue_depth\": %lld, \"slo_ms\": %lld, \"offered_per_s\": %.2f, "
      "\"capacity_per_s\": %.2f, \"offered\": %lld, \"completed\": %lld, "
      "\"completed_within_slo\": %lld, \"rejected_queue_full\": %lld, "
      "\"dropped_deadline\": %lld, \"shed\": %lld, \"unresolved\": %lld, "
      "\"goodput_per_s\": %.2f, \"shed_rate\": %.4f, "
      "\"p50_accepted_ms\": %.4f, \"p99_accepted_ms\": %.4f, "
      "\"max_lag_ms\": %.4f}%s\n",
      indent, r.graph.c_str(), r.mode.c_str(),
      static_cast<long long>(r.workers),
      static_cast<long long>(r.queue_depth),
      static_cast<long long>(r.slo_ms), r.offered_per_s, r.capacity_per_s,
      static_cast<long long>(r.offered), static_cast<long long>(r.completed),
      static_cast<long long>(r.completed_within_slo),
      static_cast<long long>(r.rejected_queue_full),
      static_cast<long long>(r.dropped_deadline),
      static_cast<long long>(r.shed),
      static_cast<long long>(r.unresolved), r.goodput_per_s, r.shed_rate,
      r.p50_accepted_ms, r.p99_accepted_ms, r.max_lag_ms, trailer);
}

void write_json(const std::string& path, bool quick,
                const std::vector<SessionResult>& sessions,
                const std::vector<EngineResult>& engines,
                const std::vector<OpenLoopRow>& sweep,
                const OpenLoopRow* overload,
                const std::vector<MixedGeoRow>& mixed_geometry) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    std::exit(1);
  }
  // Batching headlines, one per graph: best micro-batching policy
  // (batch <= 8) vs sequential throughput ON THE SAME GRAPH. `mbv2_batching`
  // is the best MobileNetV2-flat geometry — with the batched one-GEMM-per-
  // conv lowering that is the small-resolution serving graph, whose
  // per-image GEMMs are too small to saturate the kernel alone (the
  // NetBooster/NetDistiller deployment regime); the big-resolution rows
  // stay in `batching_by_graph` to show the kernel-saturated end.
  std::vector<BatchingHeadline> headlines;
  for (const EngineResult& r : engines) {
    BatchingHeadline* h = nullptr;
    for (BatchingHeadline& existing : headlines) {
      if (existing.graph == r.graph) h = &existing;
    }
    if (h == nullptr) {
      headlines.push_back({r.graph, nullptr, nullptr});
      h = &headlines.back();
    }
    if (r.policy == "sequential") {
      h->seq = &r;
    } else if (h->best == nullptr ||
               r.images_per_s > h->best->images_per_s) {
      h->best = &r;
    }
  }
  std::erase_if(headlines, [](const BatchingHeadline& h) {
    return h.seq == nullptr || h.best == nullptr;
  });
  const BatchingHeadline* mbv2 = nullptr;
  for (const BatchingHeadline& h : headlines) {
    if (h.graph.rfind("mbv2", 0) != 0) continue;
    if (mbv2 == nullptr || h.speedup() > mbv2->speedup()) mbv2 = &h;
  }

  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"schema\": \"nb-bench-serve-v3\",\n");
  std::fprintf(f, "  \"bench\": \"serve\",\n");
  std::fprintf(f, "  \"quick\": %s,\n", quick ? "true" : "false");
  std::fprintf(f, "  \"hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  if (mbv2 != nullptr) {
    print_headline(f, "mbv2_batching", *mbv2, ",");
  }
  if (overload != nullptr) {
    std::fprintf(f, "  \"overload\":\n");
    print_open_loop_row(f, *overload, "    ", ",");
  }
  if (!mixed_geometry.empty()) {
    const MixedGeoRow* with = nullptr;
    const MixedGeoRow* without = nullptr;
    for (const MixedGeoRow& r : mixed_geometry) {
      (r.bucketed ? with : without) = &r;
    }
    std::fprintf(f, "  \"mixed_geometry\": {\n");
    std::fprintf(f, "    \"graph\": \"mbv2_w035_r32\",\n");
    std::fprintf(f, "    \"bucket_ladder\": \"32x32\",\n");
    std::fprintf(f, "    \"geometries\": %zu,\n", kMixedGeometries.size());
    if (with != nullptr && without != nullptr &&
        without->goodput_per_s > 0.0) {
      std::fprintf(f,
                   "    \"goodput_ratio_bucketed_vs_unbucketed\": %.4f,\n",
                   with->goodput_per_s / without->goodput_per_s);
    }
    std::fprintf(f, "    \"rows\": [\n");
    for (size_t i = 0; i < mixed_geometry.size(); ++i) {
      print_mixed_geo_row(f, mixed_geometry[i], "      ",
                          i + 1 < mixed_geometry.size() ? "," : "");
    }
    std::fprintf(f, "    ]\n");
    std::fprintf(f, "  },\n");
  }
  std::fprintf(f, "  \"workers_sweep\": [\n");
  for (size_t i = 0; i < sweep.size(); ++i) {
    print_open_loop_row(f, sweep[i], "    ",
                        i + 1 < sweep.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"batching_by_graph\": [\n");
  for (size_t i = 0; i < headlines.size(); ++i) {
    const BatchingHeadline& h = headlines[i];
    std::fprintf(
        f,
        "    {\"graph\": \"%s\", \"sequential_images_per_s\": %.2f, "
        "\"best_policy\": \"%s\", \"best_policy_images_per_s\": %.2f, "
        "\"speedup_microbatch_vs_sequential\": %.4f, "
        "\"best_policy_avg_batch\": %.2f}%s\n",
        h.graph.c_str(), h.seq->images_per_s, h.best->policy.c_str(),
        h.best->images_per_s, h.speedup(), h.best->avg_batch,
        i + 1 < headlines.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"session_scaling\": [\n");
  for (size_t i = 0; i < sessions.size(); ++i) {
    const SessionResult& r = sessions[i];
    std::fprintf(
        f,
        "    {\"graph\": \"%s\", \"sessions\": %lld, \"requests\": %lld, "
        "\"images_per_s\": %.2f, \"p50_ms\": %.4f, \"p99_ms\": %.4f, "
        "\"owned_arena_bytes_per_session\": %lld, "
        "\"shared_weight_bytes\": %lld}%s\n",
        r.graph.c_str(), static_cast<long long>(r.sessions),
        static_cast<long long>(r.requests), r.images_per_s, r.p50_ms,
        r.p99_ms, static_cast<long long>(r.owned_arena_bytes_per_session),
        static_cast<long long>(r.shared_weight_bytes),
        i + 1 < sessions.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"engine\": [\n");
  for (size_t i = 0; i < engines.size(); ++i) {
    const EngineResult& r = engines[i];
    std::fprintf(
        f,
        "    {\"graph\": \"%s\", \"policy\": \"%s\", \"max_batch\": %lld, "
        "\"max_wait_us\": %lld, \"clients\": %lld, \"workers\": %lld, "
        "\"requests\": %lld, \"images_per_s\": %.2f, \"p50_ms\": %.4f, "
        "\"p99_ms\": %.4f, \"avg_batch\": %.2f, \"batches\": %lld}%s\n",
        r.graph.c_str(), r.policy.c_str(),
        static_cast<long long>(r.max_batch),
        static_cast<long long>(r.max_wait_us),
        static_cast<long long>(r.clients), static_cast<long long>(r.workers),
        static_cast<long long>(r.requests), r.images_per_s, r.p50_ms,
        r.p99_ms, r.avg_batch, static_cast<long long>(r.batches),
        i + 1 < engines.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_serve.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_serve_report [--quick] [--out <path>]\n");
      return 2;
    }
  }
  const double window_s = quick ? 0.4 : 2.0;
  const double open_loop_window_s = quick ? 1.0 : 3.0;
  const int64_t clients = 8;
  const uint64_t seed = 20260807;

  Rng rng(20260730);
  std::vector<std::pair<std::string, std::shared_ptr<const CompiledModel>>>
      graphs;
  // r32 is the tiny-serving regime (CIFAR-scale downstream deployment)
  // where per-image GEMMs cannot saturate the kernel and the batched
  // lowering pays off most; r96 shows the kernel-saturated end.
  graphs.emplace_back(
      "mbv2_w035_r32",
      CompiledModel::compile(exporter::synth::make_mbv2_flat(
          rng, 0.35f, 32, 100)));
  graphs.emplace_back(
      "mbv2_w035_r96",
      CompiledModel::compile(exporter::synth::make_mbv2_flat(
          rng, 0.35f, 96, 100)));
  if (!quick) {
    graphs.emplace_back("mcunet_r96",
                        CompiledModel::compile(
                            exporter::synth::make_mcunet_flat(rng, 96, 100)));
  }

  std::vector<SessionResult> session_results;
  std::vector<EngineResult> engine_results;
  const unsigned hw = std::thread::hardware_concurrency();
  std::vector<int64_t> session_counts{1, 2};
  if (hw >= 4) session_counts.push_back(4);

  for (auto& [name, model] : graphs) {
    for (const int64_t n : session_counts) {
      SessionResult r = bench_sessions(name, model, n, window_s);
      session_results.push_back(r);
      std::fprintf(stderr,
                   "  %s sessions=%lld: %.1f images/s p50 %.3f ms p99 %.3f "
                   "ms (weights shared: %lld B)\n",
                   name.c_str(), static_cast<long long>(n), r.images_per_s,
                   r.p50_ms, r.p99_ms,
                   static_cast<long long>(r.shared_weight_bytes));
    }
    // Policy sweep at workers=1 (the historical baseline), then the
    // micro-batch-8 policy across the workers sweep.
    for (const auto& [policy, max_batch, wait_us, workers] :
         std::vector<std::tuple<std::string, int64_t, int64_t, int64_t>>{
             {"sequential", 1, 0, 1},
             {"microbatch4", 4, 2000, 1},
             {"microbatch8", 8, 2000, 1},
             {"microbatch8_w2", 8, 2000, 2},
             {"microbatch8_w4", 8, 2000, 4}}) {
      EngineResult r = bench_engine(name, model, policy, max_batch, wait_us,
                                    clients, workers, window_s);
      engine_results.push_back(r);
      std::fprintf(stderr,
                   "  %s %s: %.1f images/s p50 %.3f ms p99 %.3f ms avg "
                   "batch %.2f (workers %lld)\n",
                   name.c_str(), policy.c_str(), r.images_per_s, r.p50_ms,
                   r.p99_ms, r.avg_batch, static_cast<long long>(workers));
    }
  }

  // Open-loop rows run on the tiny-serving graph (the regime the Engine
  // targets). Capacity = the best closed-loop throughput measured above at
  // workers=1, so offered loads are defined relative to THIS machine.
  const std::string ol_graph = "mbv2_w035_r32";
  std::shared_ptr<const CompiledModel> ol_model = graphs.front().second;
  double capacity = 0.0;
  for (const EngineResult& r : engine_results) {
    if (r.graph == ol_graph && r.workers == 1) {
      capacity = std::max(capacity, r.images_per_s);
    }
  }

  // Fixed offered load at 60% of capacity with a 3x burst through the
  // middle fifth of the window: the sweep shows what extra workers buy in
  // tail latency / burst absorption at the SAME offered load.
  std::vector<OpenLoopRow> sweep;
  {
    const double rate = 0.6 * capacity;
    const int64_t depth = 256;
    const int64_t slo = 500;  // generous: shedding here comes only from
                              // the burst window (3x on 0.6 = 1.8x capacity)
    const std::vector<BurstSpec> bursts{
        {0.4 * open_loop_window_s, 0.2 * open_loop_window_s, 3.0}};
    for (const int64_t workers : {int64_t{1}, int64_t{2}, int64_t{4}}) {
      OpenLoopRow r =
          bench_open_loop(ol_graph, ol_model, "fixed_load", workers, rate,
                          capacity, depth, slo, bursts, open_loop_window_s,
                          seed);
      sweep.push_back(r);
      std::fprintf(stderr,
                   "  open-loop fixed %.0f/s w%lld: goodput %.1f/s shed "
                   "%.1f%% p99 %.3f ms (lag max %.2f ms)\n",
                   rate, static_cast<long long>(workers), r.goodput_per_s,
                   r.shed_rate * 100.0, r.p99_accepted_ms, r.max_lag_ms);
    }
  }

  // Overload: 2x capacity against a bounded queue with an SLO sized at 4x
  // the full-queue drain time — the engine must shed the excess with typed
  // rejections while accepted work stays within the SLO.
  const int64_t ol_depth = 64;
  const int64_t ol_slo_ms = std::max<int64_t>(
      100, static_cast<int64_t>(4.0 * 1000.0 *
                                static_cast<double>(ol_depth) /
                                std::max(capacity, 1.0)));
  OpenLoopRow overload = bench_open_loop(
      ol_graph, ol_model, "overload", /*workers=*/2, 2.0 * capacity,
      capacity, ol_depth, ol_slo_ms, {}, open_loop_window_s, seed + 1);
  std::fprintf(stderr,
               "  open-loop OVERLOAD %.0f/s (2x capacity) w2: goodput "
               "%.1f/s shed %.1f%% p99(accepted) %.3f ms (slo %lld ms, "
               "unresolved %lld)\n",
               2.0 * capacity, overload.goodput_per_s,
               overload.shed_rate * 100.0, overload.p99_accepted_ms,
               static_cast<long long>(ol_slo_ms),
               static_cast<long long>(overload.unresolved));

  // Mixed geometry: the same seeded schedule over eight near-32x32
  // geometries at 90% of capacity — enough pressure that batch formation
  // inside the wait window decides goodput. The bucketed row coalesces
  // everything onto the 32x32 rung; the unbucketed row fragments into
  // per-geometry singles and churns eight plan families through the
  // shared 16-entry cache.
  const int64_t mg_depth = 16;
  const int64_t mg_slo_ms = std::max<int64_t>(
      100, static_cast<int64_t>(4.0 * 1000.0 *
                                static_cast<double>(mg_depth) /
                                std::max(capacity, 1.0)));
  std::vector<MixedGeoRow> mixed_geometry;
  for (const bool bucketed : {true, false}) {
    MixedGeoRow r =
        bench_mixed_geometry(ol_model, bucketed, 1.1 * capacity, capacity,
                             mg_depth, mg_slo_ms, open_loop_window_s,
                             seed + 2);
    mixed_geometry.push_back(r);
    std::fprintf(stderr,
                 "  mixed-geometry %s %.0f/s: goodput %.1f/s shed %.1f%% "
                 "avg batch %.2f (%lld padded, %lld mixed batches, "
                 "unresolved %lld)\n",
                 bucketed ? "BUCKETED" : "unbucketed", 1.1 * capacity,
                 r.goodput_per_s, r.shed_rate * 100.0, r.avg_batch,
                 static_cast<long long>(r.padded_accepted),
                 static_cast<long long>(r.mixed_geometry_batches),
                 static_cast<long long>(r.unresolved));
  }

  write_json(out_path, quick, session_results, engine_results, sweep,
             &overload, mixed_geometry);
  std::fprintf(stderr,
               "wrote %s (%zu session rows, %zu engine rows, %zu open-loop "
               "rows + overload + %zu mixed-geometry rows)\n",
               out_path.c_str(), session_results.size(),
               engine_results.size(), sweep.size(), mixed_geometry.size());
  return 0;
}
