// Serving-runtime report: exercises the Engine/Session/CompiledModel stack
// on a synthetic MobileNetV2-flat (and MCUNet-flat in the full run) and
// writes machine-readable BENCH_serve.json:
//
//   * session scaling — N closed-loop streams, one Session per thread, all
//     borrowing ONE CompiledModel's weight panels: aggregate throughput,
//     per-request p50/p99, and the owned-vs-shared memory split.
//   * batching policy — closed-loop clients against an Engine under
//     sequential (max_batch=1) and micro-batching (max_batch 4/8)
//     policies: throughput, latency percentiles, achieved batch size.
//
// The headline number is micro-batch-8 throughput over sequential
// throughput on MobileNetV2-flat — the win dynamic batching buys at the
// same hardware budget.
//
// Usage: bench_serve_report [--quick] [--out <path>]
//   --quick  small graph, short windows (the CI setting)
//   --out    output path (default: BENCH_serve.json in the cwd)
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "export/flat_model.h"
#include "export/flat_synth.h"
#include "runtime/compiled_model.h"
#include "runtime/engine.h"
#include "runtime/percentile.h"
#include "runtime/session.h"
#include "tensor/rng.h"
#include "tensor/tensor.h"
#include "tensor/tensor_ops.h"

namespace {

using namespace nb;
using namespace nb::runtime;
using Clock = std::chrono::steady_clock;

struct SessionResult {
  std::string graph;
  int64_t sessions = 0;
  int64_t requests = 0;
  double images_per_s = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  int64_t owned_arena_bytes_per_session = 0;
  int64_t shared_weight_bytes = 0;
};

/// N closed-loop streams, each its own serial Session over one shared
/// CompiledModel, running until the window closes.
SessionResult bench_sessions(const std::string& graph,
                             std::shared_ptr<const CompiledModel> model,
                             int64_t sessions, double window_s) {
  const int64_t res = model->input_resolution();
  const int64_t channels = model->input_channels();
  std::vector<std::vector<double>> lat(static_cast<size_t>(sessions));
  std::vector<int64_t> owned(static_cast<size_t>(sessions), 0);
  std::vector<std::thread> threads;
  const auto t0 = Clock::now();
  const auto deadline = t0 + std::chrono::duration<double>(window_s);
  for (int64_t s = 0; s < sessions; ++s) {
    threads.emplace_back([&, s] {
      Session session(model);  // default: serial per-stream execution
      Rng rng(100 + static_cast<uint64_t>(s));
      Tensor image({1, channels, res, res});
      fill_uniform(image, rng, -1.0f, 1.0f);
      (void)session.run(image);  // warmup: builds the plan
      auto& mine = lat[static_cast<size_t>(s)];
      while (Clock::now() < deadline) {
        const auto t0 = Clock::now();
        (void)session.run(image);
        mine.push_back(
            std::chrono::duration<double, std::milli>(Clock::now() - t0)
                .count());
      }
      owned[static_cast<size_t>(s)] = session.memory().owned_arena_floats * 4;
    });
  }
  for (std::thread& t : threads) t.join();
  const double wall =
      std::chrono::duration<double>(Clock::now() - t0).count();

  SessionResult r;
  r.graph = graph;
  r.sessions = sessions;
  std::vector<double> all;
  for (auto& v : lat) {
    r.requests += static_cast<int64_t>(v.size());
    all.insert(all.end(), v.begin(), v.end());
  }
  std::sort(all.begin(), all.end());
  r.images_per_s = static_cast<double>(r.requests) / wall;
  r.p50_ms = percentile_sorted(all, 0.50);
  r.p99_ms = percentile_sorted(all, 0.99);
  r.owned_arena_bytes_per_session = owned.empty() ? 0 : owned[0];
  r.shared_weight_bytes = model->weight_panel_bytes();
  return r;
}

struct EngineResult {
  std::string graph;
  std::string policy;
  int64_t max_batch = 0;
  int64_t max_wait_us = 0;
  int64_t clients = 0;
  int64_t workers = 0;
  int64_t requests = 0;
  double images_per_s = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double avg_batch = 0.0;
  int64_t batches = 0;
};

/// Closed-loop clients against one Engine under the given batching policy.
EngineResult bench_engine(const std::string& graph,
                          std::shared_ptr<const CompiledModel> model,
                          const std::string& policy, int64_t max_batch,
                          int64_t max_wait_us, int64_t clients,
                          double window_s) {
  EngineOptions opts;
  opts.batching.max_batch = max_batch;
  opts.batching.max_wait_us = max_wait_us;
  opts.workers = 1;

  const int64_t res = model->input_resolution();
  const int64_t channels = model->input_channels();

  EngineResult r;
  r.graph = graph;
  r.policy = policy;
  r.max_batch = max_batch;
  r.max_wait_us = max_wait_us;
  r.clients = clients;
  r.workers = opts.workers;
  {
    Engine engine(opts);
    engine.register_model("m", model);
    // Warmup one request so the worker's session plans both geometries the
    // window will see (batch 1 and batch max).
    {
      Rng rng(7);
      Tensor image({channels, res, res});
      fill_uniform(image, rng, -1.0f, 1.0f);
      (void)engine.submit("m", image).get();
    }

    std::atomic<bool> stop{false};
    std::atomic<int64_t> done{0};
    std::vector<std::thread> threads;
    const auto t0 = Clock::now();
    for (int64_t c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        Rng rng(300 + static_cast<uint64_t>(c));
        Tensor image({channels, res, res});
        fill_uniform(image, rng, -1.0f, 1.0f);
        while (!stop.load(std::memory_order_relaxed)) {
          (void)engine.submit("m", image).get();
          done.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    std::this_thread::sleep_for(std::chrono::duration<double>(window_s));
    stop.store(true);
    for (std::thread& t : threads) t.join();
    const double wall =
        std::chrono::duration<double>(Clock::now() - t0).count();

    const Engine::Stats st = engine.stats();
    r.requests = done.load();
    r.images_per_s = static_cast<double>(r.requests) / wall;
    r.p50_ms = st.p50_ms;
    r.p99_ms = st.p99_ms;
    r.avg_batch = st.avg_batch;
    r.batches = st.batches;
  }
  return r;
}

/// Per-graph batching headline: best micro-batching policy vs that same
/// graph's sequential baseline.
struct BatchingHeadline {
  std::string graph;
  const EngineResult* seq = nullptr;
  const EngineResult* best = nullptr;
  double speedup() const { return best->images_per_s / seq->images_per_s; }
};

void print_headline(FILE* f, const char* key, const BatchingHeadline& h,
                    const char* trailer) {
  std::fprintf(f, "  \"%s\": {\n", key);
  std::fprintf(f, "    \"graph\": \"%s\",\n", h.graph.c_str());
  std::fprintf(f, "    \"sequential_images_per_s\": %.2f,\n",
               h.seq->images_per_s);
  std::fprintf(f, "    \"best_policy\": \"%s\",\n", h.best->policy.c_str());
  std::fprintf(f, "    \"best_policy_images_per_s\": %.2f,\n",
               h.best->images_per_s);
  std::fprintf(f, "    \"speedup_microbatch_vs_sequential\": %.4f,\n",
               h.speedup());
  std::fprintf(f, "    \"best_policy_avg_batch\": %.2f\n", h.best->avg_batch);
  std::fprintf(f, "  }%s\n", trailer);
}

void write_json(const std::string& path, bool quick,
                const std::vector<SessionResult>& sessions,
                const std::vector<EngineResult>& engines) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    std::exit(1);
  }
  // Batching headlines, one per graph: best micro-batching policy
  // (batch <= 8) vs sequential throughput ON THE SAME GRAPH. `mbv2_batching`
  // is the best MobileNetV2-flat geometry — with the batched one-GEMM-per-
  // conv lowering that is the small-resolution serving graph, whose
  // per-image GEMMs are too small to saturate the kernel alone (the
  // NetBooster/NetDistiller deployment regime); the big-resolution rows
  // stay in `batching_by_graph` to show the kernel-saturated end.
  std::vector<BatchingHeadline> headlines;
  for (const EngineResult& r : engines) {
    BatchingHeadline* h = nullptr;
    for (BatchingHeadline& existing : headlines) {
      if (existing.graph == r.graph) h = &existing;
    }
    if (h == nullptr) {
      headlines.push_back({r.graph, nullptr, nullptr});
      h = &headlines.back();
    }
    if (r.policy == "sequential") {
      h->seq = &r;
    } else if (h->best == nullptr ||
               r.images_per_s > h->best->images_per_s) {
      h->best = &r;
    }
  }
  std::erase_if(headlines, [](const BatchingHeadline& h) {
    return h.seq == nullptr || h.best == nullptr;
  });
  const BatchingHeadline* mbv2 = nullptr;
  for (const BatchingHeadline& h : headlines) {
    if (h.graph.rfind("mbv2", 0) != 0) continue;
    if (mbv2 == nullptr || h.speedup() > mbv2->speedup()) mbv2 = &h;
  }

  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"schema\": \"nb-bench-serve-v1\",\n");
  std::fprintf(f, "  \"bench\": \"serve\",\n");
  std::fprintf(f, "  \"quick\": %s,\n", quick ? "true" : "false");
  std::fprintf(f, "  \"hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  if (mbv2 != nullptr) {
    print_headline(f, "mbv2_batching", *mbv2, ",");
  }
  std::fprintf(f, "  \"batching_by_graph\": [\n");
  for (size_t i = 0; i < headlines.size(); ++i) {
    const BatchingHeadline& h = headlines[i];
    std::fprintf(
        f,
        "    {\"graph\": \"%s\", \"sequential_images_per_s\": %.2f, "
        "\"best_policy\": \"%s\", \"best_policy_images_per_s\": %.2f, "
        "\"speedup_microbatch_vs_sequential\": %.4f, "
        "\"best_policy_avg_batch\": %.2f}%s\n",
        h.graph.c_str(), h.seq->images_per_s, h.best->policy.c_str(),
        h.best->images_per_s, h.speedup(), h.best->avg_batch,
        i + 1 < headlines.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"session_scaling\": [\n");
  for (size_t i = 0; i < sessions.size(); ++i) {
    const SessionResult& r = sessions[i];
    std::fprintf(
        f,
        "    {\"graph\": \"%s\", \"sessions\": %lld, \"requests\": %lld, "
        "\"images_per_s\": %.2f, \"p50_ms\": %.4f, \"p99_ms\": %.4f, "
        "\"owned_arena_bytes_per_session\": %lld, "
        "\"shared_weight_bytes\": %lld}%s\n",
        r.graph.c_str(), static_cast<long long>(r.sessions),
        static_cast<long long>(r.requests), r.images_per_s, r.p50_ms,
        r.p99_ms, static_cast<long long>(r.owned_arena_bytes_per_session),
        static_cast<long long>(r.shared_weight_bytes),
        i + 1 < sessions.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"engine\": [\n");
  for (size_t i = 0; i < engines.size(); ++i) {
    const EngineResult& r = engines[i];
    std::fprintf(
        f,
        "    {\"graph\": \"%s\", \"policy\": \"%s\", \"max_batch\": %lld, "
        "\"max_wait_us\": %lld, \"clients\": %lld, \"workers\": %lld, "
        "\"requests\": %lld, \"images_per_s\": %.2f, \"p50_ms\": %.4f, "
        "\"p99_ms\": %.4f, \"avg_batch\": %.2f, \"batches\": %lld}%s\n",
        r.graph.c_str(), r.policy.c_str(),
        static_cast<long long>(r.max_batch),
        static_cast<long long>(r.max_wait_us),
        static_cast<long long>(r.clients), static_cast<long long>(r.workers),
        static_cast<long long>(r.requests), r.images_per_s, r.p50_ms,
        r.p99_ms, r.avg_batch, static_cast<long long>(r.batches),
        i + 1 < engines.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_serve.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_serve_report [--quick] [--out <path>]\n");
      return 2;
    }
  }
  const double window_s = quick ? 0.4 : 2.0;
  const int64_t clients = 8;

  Rng rng(20260730);
  std::vector<std::pair<std::string, std::shared_ptr<const CompiledModel>>>
      graphs;
  // r32 is the tiny-serving regime (CIFAR-scale downstream deployment)
  // where per-image GEMMs cannot saturate the kernel and the batched
  // lowering pays off most; r96 shows the kernel-saturated end.
  graphs.emplace_back(
      "mbv2_w035_r32",
      CompiledModel::compile(exporter::synth::make_mbv2_flat(
          rng, 0.35f, 32, 100)));
  graphs.emplace_back(
      "mbv2_w035_r96",
      CompiledModel::compile(exporter::synth::make_mbv2_flat(
          rng, 0.35f, 96, 100)));
  if (!quick) {
    graphs.emplace_back("mcunet_r96",
                        CompiledModel::compile(
                            exporter::synth::make_mcunet_flat(rng, 96, 100)));
  }

  std::vector<SessionResult> session_results;
  std::vector<EngineResult> engine_results;
  const unsigned hw = std::thread::hardware_concurrency();
  std::vector<int64_t> session_counts{1, 2};
  if (hw >= 4) session_counts.push_back(4);

  for (auto& [name, model] : graphs) {
    for (const int64_t n : session_counts) {
      SessionResult r = bench_sessions(name, model, n, window_s);
      session_results.push_back(r);
      std::fprintf(stderr,
                   "  %s sessions=%lld: %.1f images/s p50 %.3f ms p99 %.3f "
                   "ms (weights shared: %lld B)\n",
                   name.c_str(), static_cast<long long>(n), r.images_per_s,
                   r.p50_ms, r.p99_ms,
                   static_cast<long long>(r.shared_weight_bytes));
    }
    for (const auto& [policy, max_batch, wait_us] :
         std::vector<std::tuple<std::string, int64_t, int64_t>>{
             {"sequential", 1, 0},
             {"microbatch4", 4, 2000},
             {"microbatch8", 8, 2000}}) {
      EngineResult r = bench_engine(name, model, policy, max_batch, wait_us,
                                    clients, window_s);
      engine_results.push_back(r);
      std::fprintf(stderr,
                   "  %s %s: %.1f images/s p50 %.3f ms p99 %.3f ms avg "
                   "batch %.2f\n",
                   name.c_str(), policy.c_str(), r.images_per_s, r.p50_ms,
                   r.p99_ms, r.avg_batch);
    }
  }

  write_json(out_path, quick, session_results, engine_results);
  std::fprintf(stderr, "wrote %s (%zu session rows, %zu engine rows)\n",
               out_path.c_str(), session_results.size(),
               engine_results.size());
  return 0;
}
