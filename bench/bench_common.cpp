#include "bench_common.h"

#include <cstdio>
#include <cstdlib>
#include <map>

#include "baselines/kd.h"
#include "baselines/netaug.h"
#include "nn/serialize.h"
#include "train/metrics.h"

namespace nb::bench {

Scale read_scale() {
  Scale s;
  const char* env = std::getenv("NB_BENCH_SCALE");
  const std::string mode = env ? env : "standard";
  if (mode == "fast") {
    s = Scale{"fast", 0.3f, 3, 2, 5, 1};
  } else if (mode == "full") {
    s = Scale{"full", 1.0f, 10, 5, 14, 1};
  } else {
    s = Scale{"standard", 0.4f, 5, 3, 8, 1};
  }
  return s;
}

int64_t total_epochs(const Scale& s) {
  return s.pretrain_epochs + s.tune_epochs;
}

train::TrainConfig pretrain_config(const Scale& s) {
  train::TrainConfig c;
  c.epochs = s.pretrain_epochs;
  c.batch_size = 32;
  c.lr = 0.08f;
  c.momentum = 0.9f;
  c.weight_decay = 1e-4f;
  c.augment = true;
  c.seed = s.seed + 11;
  // Benches only report the final accuracy; skipping the per-epoch eval
  // (and its BN recalibration pass) cuts a double-digit share of the wall
  // clock. The trainer always evaluates after the last epoch.
  c.eval_every = 0;
  c.data_workers = s.data_workers;
  return c;
}

train::TrainConfig tune_config(const Scale& s) {
  train::TrainConfig c = pretrain_config(s);
  c.epochs = s.tune_epochs;
  c.lr = 0.03f;
  return c;
}

core::NetBoosterConfig netbooster_config(const Scale& s, bool equal_budget) {
  core::NetBoosterConfig c;
  c.giant = pretrain_config(s);
  c.tune = tune_config(s);
  if (equal_budget) {
    // Strict convention: giant + tune share the single-stage budget.
    c.giant.epochs = s.pretrain_epochs;
    c.tune.epochs = s.tune_epochs;
  } else {
    // Paper convention: the giant gets the full single-stage budget (the
    // paper trains it for 160 epochs, like the baselines), tuning adds
    // ~0.6x on top (paper: +150).
    c.giant.epochs = total_epochs(s);
    c.tune.epochs = s.pretrain_epochs;
  }
  c.plt_fraction = 0.25f;  // Ed ~ 20-25% of tuning, as in the paper
  c.verify_contraction = true;
  c.seed = s.seed + 23;
  return c;
}

float run_vanilla(const std::string& model_name,
                  const data::ClassificationTask& task, const Scale& s,
                  float label_smoothing) {
  auto model = models::make_model(model_name, task.num_classes, s.seed + 3);
  train::TrainConfig c = pretrain_config(s);
  c.epochs = total_epochs(s);
  c.label_smoothing = label_smoothing;
  return train::train_classifier(*model, *task.train, *task.test, c)
      .final_test_acc;
}

float run_netaug(const std::string& model_name,
                 const data::ClassificationTask& task, const Scale& s) {
  Rng rng(s.seed + 5, 19);
  baselines::NetAugModel model(
      models::model_config(model_name, task.num_classes), 2.0f, rng);
  train::TrainConfig c = pretrain_config(s);
  c.epochs = total_epochs(s);
  baselines::NetAugConfig na;
  return baselines::train_netaug(model, *task.train, *task.test, c, na)
      .final_test_acc;
}

core::NetBoosterResult run_netbooster_full(
    const std::string& model_name, const data::ClassificationTask& task,
    const Scale& s, const core::ExpansionConfig* expansion_override,
    const core::NetBoosterConfig* config_override,
    std::shared_ptr<models::MobileNetV2>* out_model) {
  auto model = models::make_model(model_name, task.num_classes, s.seed + 3);
  core::NetBoosterConfig c =
      config_override ? *config_override : netbooster_config(s);
  if (expansion_override) c.expansion = *expansion_override;
  if (out_model) *out_model = model;
  return core::run_netbooster(model, *task.train, *task.test, c);
}

namespace {

/// Teacher cache keyed by (task name, classes): the KD baselines of Table I
/// share one teacher per dataset, like the paper's Assemble-ResNet50.
std::shared_ptr<models::MobileNetV2> cached_teacher(
    const data::ClassificationTask& task, const Scale& s) {
  static std::map<std::string, std::shared_ptr<models::MobileNetV2>> cache;
  const std::string key =
      task.name + "/" + std::to_string(task.num_classes) + "/" + s.name;
  auto it = cache.find(key);
  if (it != cache.end()) return it->second;

  auto teacher = models::make_model("teacher", task.num_classes, s.seed + 7);
  train::TrainConfig c = pretrain_config(s);
  c.epochs = total_epochs(s);
  (void)train::train_classifier(*teacher, *task.train, *task.test, c);
  cache[key] = teacher;
  return teacher;
}

}  // namespace

float run_kd(const std::string& model_name,
             const data::ClassificationTask& task, const Scale& s) {
  auto teacher = cached_teacher(task, s);
  auto student = models::make_model(model_name, task.num_classes, s.seed + 3);
  train::TrainConfig c = pretrain_config(s);
  c.epochs = total_epochs(s);
  baselines::KdConfig kd;
  return train::train_classifier(*student, *task.train, *task.test, c,
                                 baselines::make_kd_loss(teacher, kd))
      .final_test_acc;
}

float run_tfkd(const std::string& model_name,
               const data::ClassificationTask& task, const Scale& s) {
  auto student = models::make_model(model_name, task.num_classes, s.seed + 3);
  train::TrainConfig c = pretrain_config(s);
  c.epochs = total_epochs(s);
  baselines::KdConfig kd;
  kd.alpha = 0.5f;
  return train::train_classifier(
             *student, *task.train, *task.test, c,
             baselines::make_tfkd_loss(task.num_classes, kd, 0.9f))
      .final_test_acc;
}

float run_rco_kd(const std::string& model_name,
                 const data::ClassificationTask& task, const Scale& s) {
  // The route needs its own teacher copy (weights are rewound along the way).
  auto teacher = models::make_model("teacher", task.num_classes, s.seed + 7);
  train::TrainConfig tc = pretrain_config(s);
  tc.epochs = total_epochs(s);
  const auto route =
      baselines::train_teacher_route(*teacher, *task.train, *task.test, tc, 3);
  auto student = models::make_model(model_name, task.num_classes, s.seed + 3);
  return baselines::train_rco_kd(*student, *teacher, route, *task.train,
                                 *task.test, tc, {})
      .final_test_acc;
}

float run_rocket(const std::string& model_name,
                 const data::ClassificationTask& task, const Scale& s) {
  auto light = models::make_model(model_name, task.num_classes, s.seed + 3);
  train::TrainConfig c = pretrain_config(s);
  c.epochs = total_epochs(s);
  baselines::RocketConfig rocket;
  return baselines::train_rocket(*light, *task.train, *task.test, c, rocket)
      .final_test_acc;
}

void print_header(const std::string& title, const std::string& paper_ref,
                  const Scale& s) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s   (scale profile: %s)\n", paper_ref.c_str(),
              s.name.c_str());
  std::printf("--------------------------------------------------------------\n");
  std::printf("%-38s %10s %10s\n", "configuration", "paper(%)", "measured(%)");
  std::fflush(stdout);
}

void print_row(const std::string& label, double paper, double measured,
               const std::string& extra) {
  std::printf("%-38s %10.2f %10.2f  %s\n", label.c_str(), paper, measured,
              extra.c_str());
  std::fflush(stdout);
}

void check_ordering(const std::string& claim, bool holds) {
  std::printf("  [%s] %s\n", holds ? "PASS " : "CHECK", claim.c_str());
  std::fflush(stdout);
}

void print_footer() {
  std::printf("==============================================================\n\n");
  std::fflush(stdout);
}

}  // namespace nb::bench
