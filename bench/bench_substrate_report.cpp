// Substrate performance report. Times the packed GEMM, im2col convolution,
// direct depthwise convolution, and row-parallel elementwise kernels on
// shapes drawn from MobileNetV2 / MCUNet layers, compares the hot kernels
// against a verbatim copy of the pre-packing scalar implementation, and
// writes machine-readable BENCH_substrate.json — the seed of the perf
// trajectory the ROADMAP tracks. No Google Benchmark dependency.
//
// Usage: bench_substrate_report [--quick] [--out <path>]
//   --quick  shorter timing windows and fewer shapes (the CI setting)
//   --out    output path (default: BENCH_substrate.json in the cwd)
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "nn/conv2d.h"
#include "tensor/gemm.h"
#include "tensor/im2col.h"
#include "tensor/rng.h"
#include "tensor/tensor.h"
#include "tensor/tensor_ops.h"
#include "tensor/threadpool.h"

namespace {

using namespace nb;

// ----------------------------------------------------------------------
// The pre-PR kernels, kept verbatim (minus the pool fork) as the fixed
// baseline every future report compares against.
namespace legacy {

void gemm_nn_rows(int64_t i0, int64_t i1, int64_t n, int64_t k, float alpha,
                  const float* a, const float* b, float* c) {
  constexpr int64_t kc = 64;
  for (int64_t p0 = 0; p0 < k; p0 += kc) {
    const int64_t p1 = std::min(p0 + kc, k);
    for (int64_t i = i0; i < i1; ++i) {
      const float* arow = a + i * k;
      float* crow = c + i * n;
      for (int64_t p = p0; p < p1; ++p) {
        const float av = alpha * arow[p];
        if (av == 0.0f) continue;
        const float* brow = b + p * n;
        for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  }
}

void gemm(int64_t m, int64_t n, int64_t k, float alpha, const float* a,
          const float* b, float* c) {
  std::fill(c, c + m * n, 0.0f);
  gemm_nn_rows(0, m, n, k, alpha, a, b, c);
}

void depthwise_forward(const float* x, const float* w, float* y, int64_t n,
                       int64_t c, int64_t h, int64_t wd, int64_t k, int64_t s,
                       int64_t pad, int64_t oh, int64_t ow) {
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t ch = 0; ch < c; ++ch) {
      const float* img = x + (i * c + ch) * h * wd;
      const float* ker = w + ch * k * k;
      float* out = y + (i * c + ch) * oh * ow;
      for (int64_t oy = 0; oy < oh; ++oy) {
        for (int64_t ox = 0; ox < ow; ++ox) {
          float acc = 0.0f;
          for (int64_t ki = 0; ki < k; ++ki) {
            const int64_t iy = oy * s + ki - pad;
            if (iy < 0 || iy >= h) continue;
            for (int64_t kj = 0; kj < k; ++kj) {
              const int64_t ix = ox * s + kj - pad;
              if (ix < 0 || ix >= wd) continue;
              acc += ker[ki * k + kj] * img[iy * wd + ix];
            }
          }
          out[oy * ow + ox] = acc;
        }
      }
    }
  }
}

}  // namespace legacy

// ----------------------------------------------------------------------
// Timing: run fn in a loop until the window fills, repeat, keep the best
// per-iteration time. Best-of is the right statistic on noisy shared VMs.
struct Budget {
  double window_s;
  int repeats;
};

double bench_seconds(const Budget& budget, const std::function<void()>& fn) {
  fn();  // warmup / first-touch
  double best = 1e100;
  for (int r = 0; r < budget.repeats; ++r) {
    int64_t iters = 0;
    const auto t0 = std::chrono::steady_clock::now();
    double elapsed = 0.0;
    do {
      fn();
      ++iters;
      elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                              t0)
                    .count();
    } while (elapsed < budget.window_s);
    best = std::min(best, elapsed / static_cast<double>(iters));
  }
  return best;
}

struct Result {
  std::string name;
  std::string kind;      // gemm | conv | depthwise | elementwise
  int64_t threads = 1;
  double ms = 0.0;
  double gflops = 0.0;       // 0 when FLOPs are not the right unit
  double legacy_ms = 0.0;    // 0 when no legacy baseline exists
  double speedup = 0.0;      // legacy_ms / ms
  double max_abs_diff = 0.0; // vs legacy output, when compared
};

struct PoolSet {
  ThreadPool one{0};   // NB_THREADS=1: no workers, caller only
  ThreadPool four{3};  // NB_THREADS=4: 3 workers + caller
  ThreadPool& get(int64_t threads) { return threads == 4 ? four : one; }

  // Thread counts worth reporting: 4-thread rows on a host with fewer
  // hardware threads would only record oversubscription noise, which must
  // not pollute the committed perf trajectory.
  std::vector<int64_t> counts() const {
    std::vector<int64_t> c{1};
    if (std::thread::hardware_concurrency() >= 4) c.push_back(4);
    return c;
  }
};

// ----------------------------------------------------------------------

struct GemmShape {
  std::string name;
  int64_t m, n, k;
};

void bench_gemm(const GemmShape& shape, PoolSet& pools, const Budget& budget,
                bool with_legacy, std::vector<Result>& out) {
  Rng rng(101);
  std::vector<float> a(static_cast<size_t>(shape.m * shape.k));
  std::vector<float> b(static_cast<size_t>(shape.k * shape.n));
  std::vector<float> c(static_cast<size_t>(shape.m * shape.n));
  for (float& v : a) v = rng.normal();
  for (float& v : b) v = rng.normal();
  const double flops = 2.0 * static_cast<double>(shape.m) *
                       static_cast<double>(shape.n) *
                       static_cast<double>(shape.k);

  double legacy_ms = 0.0;
  double diff = 0.0;
  if (with_legacy) {
    std::vector<float> c_legacy(c.size());
    const double s = bench_seconds(budget, [&] {
      legacy::gemm(shape.m, shape.n, shape.k, 1.0f, a.data(), b.data(),
                   c_legacy.data());
    });
    legacy_ms = s * 1e3;
    gemm(false, false, shape.m, shape.n, shape.k, 1.0f, a.data(), b.data(),
         0.0f, c.data());
    for (size_t i = 0; i < c.size(); ++i) {
      diff = std::max(diff,
                      static_cast<double>(std::fabs(c[i] - c_legacy[i])));
    }
  }

  for (const int64_t threads : pools.counts()) {
    ThreadPool::set_global_override(&pools.get(threads));
    const double s = bench_seconds(budget, [&] {
      gemm(false, false, shape.m, shape.n, shape.k, 1.0f, a.data(), b.data(),
           0.0f, c.data());
    });
    ThreadPool::set_global_override(nullptr);
    Result r;
    r.name = shape.name + "_t" + std::to_string(threads);
    r.kind = "gemm";
    r.threads = threads;
    r.ms = s * 1e3;
    r.gflops = flops / s / 1e9;
    if (threads == 1 && with_legacy) {
      r.legacy_ms = legacy_ms;
      r.speedup = legacy_ms / r.ms;
      r.max_abs_diff = diff;
    }
    out.push_back(r);
  }
}

struct ConvShape {
  std::string name;
  int64_t cin, cout, k, stride, pad, groups, batch, hw;
};

void bench_conv(const ConvShape& shape, PoolSet& pools, const Budget& budget,
                bool with_legacy, std::vector<Result>& out) {
  nn::Conv2d conv(nn::Conv2dOptions(shape.cin, shape.cout, shape.k)
                      .with_stride(shape.stride)
                      .with_padding(shape.pad)
                      .with_groups(shape.groups));
  Rng rng(202);
  fill_normal(conv.weight().value, rng, 0.0f, 0.1f);
  Tensor x({shape.batch, shape.cin, shape.hw, shape.hw});
  fill_normal(x, rng, 0.0f, 1.0f);
  const double flops =
      static_cast<double>(conv.flops(shape.hw, shape.hw)) * shape.batch;
  const bool depthwise = conv.is_depthwise();

  double legacy_ms = 0.0;
  double diff = 0.0;
  if (with_legacy && depthwise) {
    const int64_t oh =
        conv_out_size(shape.hw, shape.k, shape.stride, shape.pad);
    Tensor y_legacy({shape.batch, shape.cout, oh, oh});
    const double s = bench_seconds(budget, [&] {
      legacy::depthwise_forward(x.data(), conv.weight().value.data(),
                                y_legacy.data(), shape.batch, shape.cin,
                                shape.hw, shape.hw, shape.k, shape.stride,
                                shape.pad, oh, oh);
    });
    legacy_ms = s * 1e3;
    ThreadPool::set_global_override(&pools.get(1));
    const Tensor y = conv.forward(x);
    ThreadPool::set_global_override(nullptr);
    diff = max_abs_diff(y, y_legacy);
  }

  for (const int64_t threads : pools.counts()) {
    ThreadPool::set_global_override(&pools.get(threads));
    const double s = bench_seconds(budget, [&] {
      Tensor y = conv.forward(x);
      (void)y;
    });
    ThreadPool::set_global_override(nullptr);
    Result r;
    r.name = shape.name + "_t" + std::to_string(threads);
    r.kind = depthwise ? "depthwise" : "conv";
    r.threads = threads;
    r.ms = s * 1e3;
    r.gflops = flops / s / 1e9;
    if (threads == 1 && with_legacy && depthwise) {
      r.legacy_ms = legacy_ms;
      r.speedup = legacy_ms / r.ms;
      r.max_abs_diff = diff;
    }
    out.push_back(r);
  }
}

void bench_elementwise(PoolSet& pools, const Budget& budget,
                       std::vector<Result>& out) {
  Rng rng(303);
  Tensor logits({128, 1000});
  fill_normal(logits, rng, 0.0f, 2.0f);
  Tensor big({1 << 21});
  fill_normal(big, rng, 0.0f, 1.0f);
  Tensor other({1 << 21});
  fill_normal(other, rng, 0.0f, 1.0f);

  for (const int64_t threads : pools.counts()) {
    ThreadPool::set_global_override(&pools.get(threads));
    {
      const double s = bench_seconds(budget, [&] {
        Tensor p = softmax_rows(logits);
        (void)p;
      });
      Result r;
      r.name = "softmax_rows_128x1000_t" + std::to_string(threads);
      r.kind = "elementwise";
      r.threads = threads;
      r.ms = s * 1e3;
      out.push_back(r);
    }
    {
      const double s = bench_seconds(budget, [&] { big.add_(other); });
      Result r;
      r.name = "add_2m_t" + std::to_string(threads);
      r.kind = "elementwise";
      r.threads = threads;
      r.ms = s * 1e3;
      out.push_back(r);
    }
    ThreadPool::set_global_override(nullptr);
  }
}

// ----------------------------------------------------------------------

void write_json(const std::string& path, bool quick,
                const std::vector<int64_t>& threads_tested,
                const std::vector<Result>& results) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    std::exit(1);
  }
  double sgemm256_speedup = 0.0;
  double sgemm256_gflops = 0.0;
  double sgemm256_legacy_gflops = 0.0;
  for (const Result& r : results) {
    if (r.name == "sgemm_256_t1" && r.legacy_ms > 0.0) {
      sgemm256_speedup = r.speedup;
      sgemm256_gflops = r.gflops;
      sgemm256_legacy_gflops = r.gflops * r.ms / r.legacy_ms;
    }
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"schema\": \"nb-bench-substrate-v1\",\n");
  std::fprintf(f, "  \"bench\": \"substrate\",\n");
  std::fprintf(f, "  \"quick\": %s,\n", quick ? "true" : "false");
  std::fprintf(f, "  \"gemm_kernel\": \"%s\",\n", gemm_kernel_name());
  std::fprintf(f, "  \"hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"threads_tested\": [");
  for (size_t i = 0; i < threads_tested.size(); ++i) {
    std::fprintf(f, "%s%lld", i > 0 ? ", " : "",
                 static_cast<long long>(threads_tested[i]));
  }
  std::fprintf(f, "],\n");
  std::fprintf(f, "  \"sgemm256\": {\n");
  std::fprintf(f, "    \"gflops_1t\": %.4f,\n", sgemm256_gflops);
  std::fprintf(f, "    \"legacy_gflops_1t\": %.4f,\n", sgemm256_legacy_gflops);
  std::fprintf(f, "    \"speedup_vs_legacy\": %.4f\n", sgemm256_speedup);
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"results\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    std::fprintf(f, "    {\"name\": \"%s\", \"kind\": \"%s\", \"threads\": %lld",
                 r.name.c_str(), r.kind.c_str(),
                 static_cast<long long>(r.threads));
    std::fprintf(f, ", \"ms\": %.6f", r.ms);
    if (r.gflops > 0.0) std::fprintf(f, ", \"gflops\": %.4f", r.gflops);
    if (r.legacy_ms > 0.0) {
      std::fprintf(f, ", \"legacy_ms\": %.6f, \"speedup_vs_legacy\": %.4f",
                   r.legacy_ms, r.speedup);
      std::fprintf(f, ", \"max_abs_diff_vs_legacy\": %.3g", r.max_abs_diff);
    }
    std::fprintf(f, "}%s\n", i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_substrate.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_substrate_report [--quick] [--out <path>]\n");
      return 2;
    }
  }
  const Budget budget = quick ? Budget{0.03, 2} : Budget{0.15, 4};

  PoolSet pools;
  std::vector<Result> results;

  // GEMM: the 256^3 headline plus pointwise-conv shapes (M=cout, N=oh*ow,
  // K=cin) from MobileNetV2 (28^2 plane) and an MCUNet-scale 14^2 plane.
  std::vector<GemmShape> gemms = {
      {"sgemm_256", 256, 256, 256},
      {"sgemm_mbv2_pw_96x784x144", 96, 784, 144},
      {"sgemm_mcunet_pw_48x196x96", 48, 196, 96},
  };
  if (!quick) gemms.push_back({"sgemm_512", 512, 512, 512});
  for (size_t i = 0; i < gemms.size(); ++i) {
    bench_gemm(gemms[i], pools, budget, /*with_legacy=*/gemms[i].name ==
                                            "sgemm_256" || !quick,
               results);
    std::fprintf(stderr, "  [%zu/%zu] %s done\n", i + 1, gemms.size(),
                 gemms[i].name.c_str());
  }

  // Convolutions: MobileNetV2 stem, an inverted-bottleneck expand 1x1, and
  // depthwise layers from MobileNetV2 (3x3) and MCUNet (5x5).
  std::vector<ConvShape> convs = {
      {"conv3x3_mbv2_stem_3to32_s2_112", 3, 32, 3, 2, 1, 1, 1, 112},
      {"conv1x1_mbv2_expand_24to144_28", 24, 144, 1, 1, 0, 1, 1, 28},
      {"dw3x3_mbv2_144_28", 144, 144, 3, 1, 1, 144, 1, 28},
      {"dw3x3_mbv2_144_56_s2", 144, 144, 3, 2, 1, 144, 1, 56},
      {"dw5x5_mcunet_120_14", 120, 120, 5, 1, 2, 120, 1, 14},
  };
  if (quick) convs.resize(3);  // stem, expand, one depthwise
  for (size_t i = 0; i < convs.size(); ++i) {
    bench_conv(convs[i], pools, budget, /*with_legacy=*/true, results);
    std::fprintf(stderr, "  [%zu/%zu] %s done\n", i + 1, convs.size(),
                 convs[i].name.c_str());
  }

  bench_elementwise(pools, budget, results);
  std::fprintf(stderr, "  elementwise done\n");

  write_json(out_path, quick, pools.counts(), results);
  std::fprintf(stderr, "wrote %s (%zu results, kernel=%s)\n", out_path.c_str(),
               results.size(), gemm_kernel_name());
  return 0;
}
