// Extension ablation: function-preserving insertion (this repository's
// micro-scale mechanism, DESIGN.md Sec. 6.2) vs the paper's from-scratch
// giant. With preserve_function the inserted block carries the replaced conv
// on a linear shortcut and zero-initializes the deep branch's last BN gamma,
// so the giant *starts* as the TNN; from scratch (the paper's wiring,
// affordable at 160 ImageNet epochs) the giant must first re-learn what the
// TNN knew. Both variants contract exactly; this bench quantifies the gap at
// micro budgets.
#include "bench_common.h"

int main() {
  using namespace nb;
  const bench::Scale scale = bench::read_scale();
  bench::print_header(
      "Ablation — function-preserving insertion (repo mechanism vs paper "
      "wiring)",
      "NetBooster (DAC'23), Sec. III-C; DESIGN.md Sec. 6", scale);

  const int64_t res = data::scaled_resolution(144);
  const data::ClassificationTask task = data::make_task(
      "synth-imagenet", res, 0.6f * scale.data_scale, scale.seed);

  const float vanilla = bench::run_vanilla("mbv2-tiny", task, scale);
  bench::print_row("Vanilla", 51.20, 100.0 * vanilla);

  core::ExpansionConfig preserving;
  preserving.preserve_function = true;
  const core::NetBoosterResult with_preserve =
      bench::run_netbooster_full("mbv2-tiny", task, scale, &preserving);
  bench::print_row("NetBooster, preserving insertion (repo default)", 53.70,
                   100.0 * with_preserve.final_acc,
                   "(giant " +
                       std::to_string(100.0 * with_preserve.expanded_acc)
                           .substr(0, 5) +
                       "%)");

  core::ExpansionConfig from_scratch;
  from_scratch.preserve_function = false;
  const core::NetBoosterResult without =
      bench::run_netbooster_full("mbv2-tiny", task, scale, &from_scratch);
  bench::print_row("NetBooster, from-scratch giant (paper wiring)", 53.70,
                   100.0 * without.final_acc,
                   "(giant " +
                       std::to_string(100.0 * without.expanded_acc)
                           .substr(0, 5) +
                       "%)");

  bench::check_ordering(
      "preserving insertion >= from-scratch at micro budgets (DESIGN.md 6.2)",
      with_preserve.final_acc >= without.final_acc - 0.01f);
  bench::check_ordering(
      "both contract exactly (err < 1e-3)",
      with_preserve.contraction_error < 1e-3f &&
          without.contraction_error < 1e-3f);

  bench::print_footer();
  return 0;
}
