// Extension ablation (no paper counterpart): how many blocks to expand. The
// paper fixes "uniformly expand 50% of blocks" (Sec. IV-A); this bench
// sweeps the fraction under the uniform placement. Expanding more blocks
// adds training-time capacity but widens the complexity gap criterion (c)
// warns about, so the sweep probes the same trade-off Table V does along a
// different axis.
#include <string>

#include "bench_common.h"

int main() {
  using namespace nb;
  const bench::Scale scale = bench::read_scale();
  bench::print_header(
      "Ablation — expanded-block fraction (extension; paper fixes 50%)",
      "NetBooster (DAC'23), Sec. IV-A expansion strategy", scale);

  const int64_t res = data::scaled_resolution(144);
  const data::ClassificationTask task = data::make_task(
      "synth-imagenet", res, 0.6f * scale.data_scale, scale.seed);

  const float vanilla = bench::run_vanilla("mbv2-tiny", task, scale);
  bench::print_row("Vanilla", 51.20, 100.0 * vanilla);

  float half_acc = 0.0f;
  int64_t deployed_flops = -1;
  bool costs_identical = true;
  for (const float fraction : {0.25f, 0.5f, 0.75f, 1.0f}) {
    core::ExpansionConfig expansion;
    expansion.expand_fraction = fraction;
    core::NetBoosterResult r;
    r = bench::run_netbooster_full("mbv2-tiny", task, scale, &expansion);
    bench::print_row(
        "expand " + std::to_string(static_cast<int>(100 * fraction)) +
            "% of blocks",
        fraction == 0.5f ? 53.70 : 0.0, 100.0 * r.final_acc,
        "(giant " + models::human_count(r.giant_profile.params) + " params)");
    if (fraction == 0.5f) half_acc = r.final_acc;
    if (deployed_flops < 0) {
      deployed_flops = r.final_profile.flops;
    } else if (r.final_profile.flops != deployed_flops) {
      costs_identical = false;
    }
  }

  bench::check_ordering("paper's 50% beats vanilla", half_acc > vanilla);
  bench::check_ordering(
      "contracted cost identical for every fraction (Eq. 3-4 exactness)",
      costs_identical);

  bench::print_footer();
  return 0;
}
