// Extension ablation (no paper counterpart): the length Ed of the PLT ramp.
// The paper fixes Ed = 40/150 ImageNet epochs and 20% of tuning epochs on
// downstream tasks (Sec. IV-A) without ablating it; this bench sweeps the
// fraction, including the two interesting endpoints:
//   0.0  — abrupt removal: alpha jumps to 1 before tuning starts. This is
//          the "directly removing expanded parts" failure mode the paper
//          attributes NetAug's information loss to (Sec. II-A).
//   1.0  — the ramp spans the whole tuning run (no pinned-alpha finetune).
#include <string>

#include "bench_common.h"

int main() {
  using namespace nb;
  const bench::Scale scale = bench::read_scale();
  bench::print_header(
      "Ablation — PLT ramp length Ed (extension; paper fixes Ed at 20-27%)",
      "NetBooster (DAC'23), Sec. III-D / IV-A", scale);

  const int64_t res = data::scaled_resolution(144);
  const data::ClassificationTask task = data::make_task(
      "synth-imagenet", res, 0.6f * scale.data_scale, scale.seed);

  const float vanilla = bench::run_vanilla("mbv2-tiny", task, scale);
  bench::print_row("Vanilla", 51.20, 100.0 * vanilla);

  const float fractions[] = {0.0f, 0.25f, 0.5f, 1.0f};
  float abrupt_acc = 0.0f;
  float paper_acc = 0.0f;
  float best_progressive = 0.0f;
  for (const float f : fractions) {
    core::NetBoosterConfig cfg = bench::netbooster_config(scale);
    cfg.plt_fraction = f;
    const core::NetBoosterResult r =
        bench::run_netbooster_full("mbv2-tiny", task, scale, nullptr, &cfg);
    const std::string label =
        f == 0.0f ? "Ed = 0 (abrupt removal)"
                  : "Ed = " + std::to_string(static_cast<int>(100 * f)) +
                        "% of tuning";
    bench::print_row(label, f == 0.25f ? 53.70 : 0.0, 100.0 * r.final_acc,
                     f == 0.25f ? "(paper's operating point)" : "");
    if (f == 0.0f) abrupt_acc = r.final_acc;
    if (f == 0.25f) paper_acc = r.final_acc;
    if (f > 0.0f) {
      best_progressive = std::max(best_progressive, r.final_acc);
    }
  }

  bench::check_ordering(
      "progressive removal beats abrupt removal (paper's core argument "
      "against direct dropping)",
      best_progressive > abrupt_acc);
  bench::check_ordering("paper's Ed (~25%) beats vanilla",
                        paper_acc > vanilla);

  bench::print_footer();
  return 0;
}
