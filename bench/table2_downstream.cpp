// Reproduces Table II: transfer to the five downstream classification tasks.
// MobileNetV2-Tiny: {Vanilla, NetBooster}; MobileNetV2-35: {Vanilla,
// Vanilla+KD, NetBooster, NetBooster+KD}. Pretraining on the ImageNet
// stand-in happens once per (model, method) and the snapshot is reused for
// every downstream task, exactly like the paper's "ImageNet pretrained deep
// giant as the starting point".
#include <cstdio>
#include <map>

#include "baselines/kd.h"
#include "bench_common.h"
#include "nn/serialize.h"
#include "train/metrics.h"

namespace {

using namespace nb;

// Paper Table II accuracy (%): [cifar, cars, flowers, food, pets].
const std::map<std::string, std::vector<double>> kPaper = {
    {"tiny/vanilla", {74.07, 76.18, 90.01, 75.43, 78.30}},
    {"tiny/netbooster", {75.46, 80.93, 90.53, 75.96, 78.90}},
    {"35/vanilla", {76.08, 78.36, 90.63, 76.80, 80.64}},
    {"35/vanilla+kd", {76.38, 77.47, 91.41, 77.02, 82.44}},
    {"35/netbooster", {76.66, 80.91, 91.16, 77.26, 80.92}},
    {"35/netbooster+kd", {77.15, 83.36, 92.68, 77.81, 83.37}},
};

/// Pretrains a vanilla model once; returns its state snapshot.
std::map<std::string, Tensor> pretrain_vanilla(
    const std::string& model_name, const data::ClassificationTask& pretask,
    const bench::Scale& scale) {
  auto model = models::make_model(model_name, pretask.num_classes, scale.seed + 3);
  (void)train::train_classifier(*model, *pretask.train, *pretask.test,
                                bench::pretrain_config(scale));
  return nn::state_dict(*model);
}

/// Finetunes a vanilla-pretrained model on one downstream task.
float vanilla_transfer(const std::string& model_name,
                       const std::map<std::string, Tensor>& snapshot,
                       const data::ClassificationTask& pretask,
                       const data::ClassificationTask& task,
                       const bench::Scale& scale, bool with_kd) {
  auto model = models::make_model(model_name, pretask.num_classes, scale.seed + 3);
  nn::load_state_dict(*model, snapshot);
  Rng rng(scale.seed + 31, 3);
  model->reset_classifier(task.num_classes, rng);

  train::LossFn loss_fn = nullptr;
  if (with_kd) {
    auto teacher = models::make_model("teacher", task.num_classes, scale.seed + 7);
    train::TrainConfig tc = bench::pretrain_config(scale);
    (void)train::train_classifier(*teacher, *task.train, *task.test, tc);
    loss_fn = baselines::make_kd_loss(teacher, {});
  }
  return train::train_classifier(*model, *task.train, *task.test,
                                 bench::tune_config(scale), loss_fn)
      .final_test_acc;
}

/// NetBooster transfer: giant pretrained once (snapshot passed in), then
/// PLT + contraction on the downstream task, optionally with KD on top.
float netbooster_transfer(const std::string& model_name,
                          const std::map<std::string, Tensor>& giant_snapshot,
                          const data::ClassificationTask& pretask,
                          const data::ClassificationTask& task,
                          const bench::Scale& scale, bool with_kd) {
  auto model = models::make_model(model_name, pretask.num_classes, scale.seed + 3);
  core::NetBoosterConfig config = bench::netbooster_config(scale);
  core::NetBooster nb(model, config);  // same seed -> same giant structure
  nn::load_state_dict(nb.model(), giant_snapshot);
  nb.prepare_transfer(task.num_classes);

  train::LossFn loss_fn = nullptr;
  if (with_kd) {
    auto teacher = models::make_model("teacher", task.num_classes, scale.seed + 7);
    (void)train::train_classifier(*teacher, *task.train, *task.test,
                                  bench::pretrain_config(scale));
    loss_fn = baselines::make_kd_loss(teacher, {});
  }
  return nb.tune_and_contract(*task.train, *task.test, loss_fn);
}

/// Pretrains the NetBooster giant once; returns its state snapshot.
std::map<std::string, Tensor> pretrain_giant(
    const std::string& model_name, const data::ClassificationTask& pretask,
    const bench::Scale& scale) {
  auto model = models::make_model(model_name, pretask.num_classes, scale.seed + 3);
  core::NetBoosterConfig config = bench::netbooster_config(scale);
  core::NetBooster nb(model, config);
  nb.train_giant(*pretask.train, *pretask.test);
  return nn::state_dict(nb.model());
}

void print_series(const std::string& label, const std::vector<double>& paper,
                  const std::vector<float>& measured) {
  for (size_t i = 0; i < measured.size(); ++i) {
    bench::print_row(
        "  " + label + " / " + data::downstream_task_names()[i], paper[i],
        100.0 * measured[i]);
  }
}

}  // namespace

int main() {
  const bench::Scale scale = bench::read_scale();
  bench::print_header("Table II — downstream image classification",
                      "NetBooster (DAC'23), Table II", scale);

  const data::ClassificationTask pretask = data::make_task(
      "synth-imagenet", data::scaled_resolution(160), scale.data_scale,
      scale.seed);

  std::vector<data::ClassificationTask> tasks;
  for (const std::string& name : data::downstream_task_names()) {
    tasks.push_back(data::make_task(name, 0, scale.data_scale, scale.seed));
  }

  auto run_group = [&](const std::string& model_name, const std::string& tag,
                       bool kd_rows) {
    std::printf("\n%s:\n", model_name.c_str());
    const auto vanilla_snapshot = pretrain_vanilla(model_name, pretask, scale);
    const auto giant_snapshot = pretrain_giant(model_name, pretask, scale);

    std::vector<float> vanilla, vanilla_kd, booster, booster_kd;
    for (const auto& task : tasks) {
      vanilla.push_back(vanilla_transfer(model_name, vanilla_snapshot, pretask,
                                         task, scale, false));
      if (kd_rows) {
        vanilla_kd.push_back(vanilla_transfer(model_name, vanilla_snapshot,
                                              pretask, task, scale, true));
      }
      booster.push_back(netbooster_transfer(model_name, giant_snapshot,
                                            pretask, task, scale, false));
      if (kd_rows) {
        booster_kd.push_back(netbooster_transfer(model_name, giant_snapshot,
                                                 pretask, task, scale, true));
      }
    }

    print_series("Vanilla", kPaper.at(tag + "/vanilla"), vanilla);
    if (kd_rows) {
      print_series("Vanilla+KD", kPaper.at(tag + "/vanilla+kd"), vanilla_kd);
    }
    print_series("NetBooster", kPaper.at(tag + "/netbooster"), booster);
    if (kd_rows) {
      print_series("NetBooster+KD", kPaper.at(tag + "/netbooster+kd"),
                   booster_kd);
    }

    int wins = 0;
    for (size_t i = 0; i < tasks.size(); ++i) {
      if (booster[i] >= vanilla[i]) ++wins;
    }
    bench::check_ordering(
        model_name + ": NetBooster >= Vanilla on most downstream tasks (" +
            std::to_string(wins) + "/5)",
        wins >= 3);
    if (kd_rows) {
      int kd_wins = 0;
      for (size_t i = 0; i < tasks.size(); ++i) {
        if (booster_kd[i] >= booster[i]) ++kd_wins;
      }
      bench::check_ordering(
          model_name + ": KD stacks on top of NetBooster (" +
              std::to_string(kd_wins) + "/5)",
          kd_wins >= 3);
    }
  };

  run_group("mbv2-tiny", "tiny", /*kd_rows=*/false);
  run_group("mbv2-35", "35", /*kd_rows=*/true);

  bench::print_footer();
  return 0;
}
