// Reproduces Table V: ablation on where to expand (Q2). Expanding a fixed
// number of blocks placed first / middle / last / uniformly; the paper's
// claim is that uniform placement wins because every region of the TNN has
// adjacent layers to inherit the expanded features. Also reports the
// expanded giant's FLOPs / params as the paper does.
#include <cstdio>

#include "bench_common.h"
#include "models/profiler.h"

namespace {

struct PaperRow {
  nb::core::Placement placement;
  const char* label;
  double flops_m, params_m, expanded, final_acc;
};

constexpr double kPaperVanilla = 51.20;
const PaperRow kPaper[] = {
    {nb::core::Placement::first, "Expand First", 65.0, 0.83, 51.46, 51.50},
    {nb::core::Placement::middle, "Expand Middle", 49.6, 0.93, 52.98, 52.62},
    {nb::core::Placement::last, "Expand Last", 51.2, 1.25, 53.90, 52.47},
    {nb::core::Placement::uniform, "Uniform Expand", 63.9, 0.99, 54.90, 53.70},
};

}  // namespace

int main() {
  using namespace nb;
  const bench::Scale scale = bench::read_scale();
  bench::print_header("Table V — ablation: where to expand (Q2)",
                      "NetBooster (DAC'23), Table V", scale);

  const int64_t res = data::scaled_resolution(144);
  const data::ClassificationTask task =
      data::make_task("synth-imagenet", res, scale.data_scale, scale.seed);

  const float vanilla = bench::run_vanilla("mbv2-tiny", task, scale);
  {
    auto probe = models::make_model("mbv2-tiny", task.num_classes);
    const models::Profile p = models::profile_model(*probe, res);
    std::printf("Vanilla: %.1f MFLOPs, %.2fM params (paper: 29.4M / 0.75M)\n",
                p.mflops(), p.mparams());
  }
  bench::print_row("Vanilla", kPaperVanilla, 100.0 * vanilla);

  // Paper expands 8 of 16 blocks; our scaled Tiny has 4 candidates, so the
  // analogous half-the-network count is 2.
  const int64_t count = 2;

  float uniform_final = 0.0f;
  float best_clustered = 0.0f;
  for (const PaperRow& row : kPaper) {
    core::ExpansionConfig expansion;
    expansion.placement = row.placement;
    expansion.expand_count = count;
    const core::NetBoosterResult r =
        bench::run_netbooster_full("mbv2-tiny", task, scale, &expansion);
    std::printf("%s: giant %.1f MFLOPs, %.2fM params (paper: %.1fM / %.2fM)\n",
                row.label, r.giant_profile.mflops(), r.giant_profile.mparams(),
                row.flops_m, row.params_m);
    bench::print_row(std::string(row.label) + " (expanded)", row.expanded,
                     100.0 * r.expanded_acc);
    bench::print_row(std::string(row.label) + " (final)", row.final_acc,
                     100.0 * r.final_acc);
    if (row.placement == core::Placement::uniform) {
      uniform_final = r.final_acc;
    } else {
      best_clustered = std::max(best_clustered, r.final_acc);
    }
  }

  bench::check_ordering("uniform placement >= clustered placements",
                        uniform_final >= best_clustered - 0.005f);
  bench::check_ordering("uniform final > vanilla", uniform_final > vanilla);

  bench::print_footer();
  return 0;
}
