// Extension figure (no paper counterpart): the accuracy trajectory *during*
// Progressive Linearization Tuning. As alpha ramps 0 -> 1 the network loses
// its inserted non-linearities and accuracy dips, then the pinned-alpha
// finetune recovers it; abrupt removal (Ed = 0) takes the whole hit at once
// and recovers from a worse starting point. This is the mechanism behind the
// paper's "avoid unrecoverable information loss" claim (Sec. II-A), made
// visible per epoch.
#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "core/plt.h"

namespace {

void print_series(const char* label, const nb::train::TrainHistory& history,
                  int64_t ed_epochs, nb::core::RampShape shape) {
  std::printf("%s\n", label);
  std::printf("  %-6s %-7s %-10s %-9s\n", "epoch", "alpha", "train acc",
              "test acc");
  for (const nb::train::EpochStats& e : history.epochs) {
    const float t = ed_epochs == 0
                        ? 1.0f
                        : std::min(1.0f, static_cast<float>(e.epoch + 1) /
                                             static_cast<float>(ed_epochs));
    const float alpha = nb::core::ramp_alpha(shape, t);
    if (std::isnan(e.test_acc)) {
      std::printf("  %-6lld %-7.3f %-10.2f %-9s\n",
                  static_cast<long long>(e.epoch), alpha, 100.0 * e.train_acc,
                  "-");
    } else {
      std::printf("  %-6lld %-7.3f %-10.2f %-9.2f\n",
                  static_cast<long long>(e.epoch), alpha, 100.0 * e.train_acc,
                  100.0 * e.test_acc);
    }
  }
}

}  // namespace

int main() {
  using namespace nb;
  const bench::Scale scale = bench::read_scale();
  bench::print_header(
      "Figure — alpha ramp vs accuracy during PLT (extension)",
      "NetBooster (DAC'23), Sec. III-D mechanism", scale);

  const int64_t res = data::scaled_resolution(144);
  const data::ClassificationTask task = data::make_task(
      "synth-imagenet", res, 0.6f * scale.data_scale, scale.seed);

  // Progressive (paper) vs abrupt (NetAug-style) removal, same budgets.
  core::NetBoosterConfig progressive = bench::netbooster_config(scale);
  progressive.plt_fraction = 0.5f;  // longer ramp so the dip is visible
  progressive.tune.eval_every = 1;  // the per-epoch series IS the figure
  const core::NetBoosterResult pr =
      bench::run_netbooster_full("mbv2-tiny", task, scale, nullptr,
                                 &progressive);
  const int64_t ed_epochs = static_cast<int64_t>(
      std::lround(0.5 * static_cast<double>(progressive.tune.epochs)));
  print_series("progressive (Ed = 50% of tuning):", pr.tune_history,
               ed_epochs, progressive.ramp_shape);

  core::NetBoosterConfig abrupt = bench::netbooster_config(scale);
  abrupt.plt_fraction = 0.0f;
  abrupt.tune.eval_every = 1;
  const core::NetBoosterResult ar =
      bench::run_netbooster_full("mbv2-tiny", task, scale, nullptr, &abrupt);
  print_series("abrupt (Ed = 0, alpha pinned at 1):", ar.tune_history, 0,
               abrupt.ramp_shape);

  std::printf("final: progressive %.2f%%  abrupt %.2f%%  (giants %.2f%% / "
              "%.2f%%)\n",
              100.0 * pr.final_acc, 100.0 * ar.final_acc,
              100.0 * pr.expanded_acc, 100.0 * ar.expanded_acc);
  bench::check_ordering("progressive removal ends above abrupt removal",
                        pr.final_acc >= ar.final_acc);
  bench::print_footer();
  return 0;
}
