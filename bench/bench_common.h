// Shared infrastructure for the table/figure benches: scale profiles
// (NB_BENCH_SCALE=fast|standard|full), experiment runners for each training
// method, and paper-vs-measured table printing.
//
// Every bench prints the paper's reported numbers next to the measured ones
// and a PASS/CHECK verdict on the *ordering* the paper claims. Absolute
// values are not comparable (the substrate is a synthetic CPU-scale
// simulation — see DESIGN.md), the shape of the result is.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/netbooster.h"
#include "data/task_registry.h"
#include "models/registry.h"
#include "train/trainer.h"

namespace nb::bench {

struct Scale {
  std::string name = "standard";
  float data_scale = 0.35f;        // fraction of the task's sample budget
  int64_t pretrain_epochs = 6;     // stage-1 / vanilla budget
  int64_t tune_epochs = 4;         // stage-2 budget
  int64_t detect_epochs = 8;
  uint64_t seed = 1;
  /// Decode/augment workers for every training run the bench launches
  /// (TrainConfig::data_workers). The pipeline's determinism mode keeps
  /// batches bitwise-identical to the synchronous loader, so a bench can
  /// turn this on for wall-clock only — the table values do not move.
  int64_t data_workers = 0;
};

/// Reads NB_BENCH_SCALE (fast | standard | full); default standard.
Scale read_scale();

/// Single-stage budget: vanilla and the other one-stage baselines train for
/// pretrain_epochs + tune_epochs.
int64_t total_epochs(const Scale& s);

train::TrainConfig pretrain_config(const Scale& s);
train::TrainConfig tune_config(const Scale& s);

/// Budget convention (matches the paper): the deep giant trains for the full
/// single-stage budget (the paper gives it 160 ImageNet epochs, the same as
/// its baselines), then PLT+finetune adds ~0.6x on top (the paper adds
/// 150) — NetBooster sees ~1.6x vanilla's epochs in total, exactly as in the
/// paper's recipe. Pass equal_budget = true to split the single-stage budget
/// across the two stages instead (no extra passes over the data); the
/// ablation_budget bench shows NetBooster's gain shrinking under that
/// stricter convention at this repository's micro scale.
core::NetBoosterConfig netbooster_config(const Scale& s,
                                         bool equal_budget = false);

// ------------------------------------------------------------ method runs

/// Vanilla training at equal total budget; returns final test accuracy.
float run_vanilla(const std::string& model_name,
                  const data::ClassificationTask& task, const Scale& s,
                  float label_smoothing = 0.0f);

/// NetAug baseline at equal budget (base width evaluated).
float run_netaug(const std::string& model_name,
                 const data::ClassificationTask& task, const Scale& s);

/// NetBooster: expand -> giant train -> PLT -> contract, on one dataset.
/// `config_override` replaces the whole recipe (ablation benches tweak
/// plt_fraction / ramp_shape / budgets); `out_model`, when given, receives
/// the trained-and-contracted model (the quantization bench deploys it).
core::NetBoosterResult run_netbooster_full(
    const std::string& model_name, const data::ClassificationTask& task,
    const Scale& s, const core::ExpansionConfig* expansion_override = nullptr,
    const core::NetBoosterConfig* config_override = nullptr,
    std::shared_ptr<models::MobileNetV2>* out_model = nullptr);

/// KD family. The wide teacher is trained once per (task, scale) and cached
/// in-process.
float run_kd(const std::string& model_name,
             const data::ClassificationTask& task, const Scale& s);
float run_tfkd(const std::string& model_name,
               const data::ClassificationTask& task, const Scale& s);
float run_rco_kd(const std::string& model_name,
                 const data::ClassificationTask& task, const Scale& s);
float run_rocket(const std::string& model_name,
                 const data::ClassificationTask& task, const Scale& s);

// ------------------------------------------------------------- reporting

void print_header(const std::string& title, const std::string& paper_ref,
                  const Scale& s);
/// One table row: label, paper value, measured value (percent).
void print_row(const std::string& label, double paper, double measured,
               const std::string& extra = "");
/// Ordering verdict, e.g. check("NetBooster > Vanilla", a > b).
void check_ordering(const std::string& claim, bool holds);
void print_footer();

}  // namespace nb::bench
