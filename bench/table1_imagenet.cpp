// Reproduces Table I: benchmarking on the large-scale dataset.
// Four networks x {Vanilla, RocketLaunch, tf-KD, RCO-KD, NetAug, NetBooster}
// (the KD family only for MobileNetV2-Tiny, as in the paper), with the
// FLOPs / params columns showing that NetBooster's deployed model costs
// exactly what vanilla costs.
#include <cstdio>

#include "bench_common.h"
#include "models/profiler.h"
#include "train/metrics.h"

namespace {

struct PaperRow {
  const char* model;
  double vanilla, rocket, tfkd, rco, netaug, netbooster;
};

// Table I as printed in the paper (accuracy %).
constexpr PaperRow kPaper[] = {
    {"mbv2-tiny", 51.2, 51.8, 51.9, 52.6, 53.0, 53.7},
    {"mcunet", 61.4, -1, -1, -1, 62.5, 62.8},
    {"mbv2-50", 61.4, -1, -1, -1, 62.5, 62.7},
    {"mbv2-100", 69.6, -1, -1, -1, 70.5, 70.9},
};

}  // namespace

int main() {
  using namespace nb;
  bench::Scale scale = bench::read_scale();
  // The heaviest table: route every training run through the prefetching
  // PipelineLoader (data/pipeline.h). Its determinism mode makes this purely
  // a wall-clock change — the measured accuracies match data_workers = 0
  // bitwise.
  scale.data_workers = 2;
  bench::print_header("Table I — benchmarking on the large-scale dataset",
                      "NetBooster (DAC'23), Table I", scale);

  for (const PaperRow& row : kPaper) {
    const models::ModelConfig config = models::model_config(row.model, 1);
    const int64_t res = data::scaled_resolution(config.paper_resolution);
    const data::ClassificationTask task =
        data::make_task("synth-imagenet", res, scale.data_scale, scale.seed);

    // Efficiency columns: measured on the deployed (original/contracted) net.
    auto probe = models::make_model(row.model, task.num_classes);
    const models::Profile profile = models::profile_model(*probe, res);
    std::printf("\n%s  (r=%lld px here / r=%lld in paper, %.1f MFLOPs, %s params)\n",
                row.model, static_cast<long long>(res),
                static_cast<long long>(config.paper_resolution),
                profile.mflops(), models::human_count(profile.params).c_str());

    const float vanilla = bench::run_vanilla(row.model, task, scale);
    bench::print_row("  Vanilla", row.vanilla, 100.0 * vanilla);

    float rocket = -1.0f, tfkd = -1.0f, rco = -1.0f;
    if (row.rocket > 0) {  // KD family rows exist only for mbv2-tiny
      rocket = bench::run_rocket(row.model, task, scale);
      bench::print_row("  RocketLaunch", row.rocket, 100.0 * rocket);
      tfkd = bench::run_tfkd(row.model, task, scale);
      bench::print_row("  tf-KD", row.tfkd, 100.0 * tfkd);
      rco = bench::run_rco_kd(row.model, task, scale);
      bench::print_row("  RCO-KD", row.rco, 100.0 * rco);
    }

    const float netaug = bench::run_netaug(row.model, task, scale);
    bench::print_row("  NetAug", row.netaug, 100.0 * netaug);

    const core::NetBoosterResult nb_result =
        bench::run_netbooster_full(row.model, task, scale);
    bench::print_row("  NetBooster", row.netbooster, 100.0 * nb_result.final_acc,
                     "(giant " + std::to_string(100.0f * nb_result.expanded_acc)
                         .substr(0, 5) + "%)");

    bench::check_ordering(std::string(row.model) + ": NetBooster > Vanilla",
                          nb_result.final_acc > vanilla);
    bench::check_ordering(
        std::string(row.model) + ": contracted cost == vanilla cost",
        nb_result.final_profile.flops == profile.flops &&
            nb_result.final_profile.params == profile.params);
    bench::check_ordering(
        std::string(row.model) + ": contraction exact (err < 1e-3)",
        nb_result.contraction_error < 1e-3f);
  }

  bench::print_footer();
  return 0;
}
