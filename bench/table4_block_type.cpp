// Reproduces Table IV: ablation on what kind of block to insert (Q1).
// MobileNetV2-Tiny on the ImageNet stand-in; rows are the vanilla reference
// plus the three inserted-block types, reporting both the deep giant's
// accuracy ("Expanded Acc.") and the post-PLT contracted accuracy
// ("Final Acc.").
#include <cstdio>

#include "bench_common.h"

namespace {

struct PaperRow {
  nb::core::BlockType type;
  double expanded, final_acc;
};

constexpr double kPaperVanilla = 51.20;
const PaperRow kPaper[] = {
    {nb::core::BlockType::inverted_residual, 54.90, 53.70},
    {nb::core::BlockType::basic, 54.52, 53.41},
    {nb::core::BlockType::bottleneck, 55.23, 53.62},
};

}  // namespace

int main() {
  using namespace nb;
  const bench::Scale scale = bench::read_scale();
  bench::print_header("Table IV — ablation: what kind of block to insert (Q1)",
                      "NetBooster (DAC'23), Table IV", scale);

  const int64_t res = data::scaled_resolution(144);
  const data::ClassificationTask task =
      data::make_task("synth-imagenet", res, scale.data_scale, scale.seed);

  const float vanilla = bench::run_vanilla("mbv2-tiny", task, scale);
  bench::print_row("Vanilla", kPaperVanilla, 100.0 * vanilla);

  float ir_final = 0.0f;
  float best_other = 0.0f;
  for (const PaperRow& row : kPaper) {
    core::ExpansionConfig expansion;
    expansion.block_type = row.type;
    const core::NetBoosterResult r =
        bench::run_netbooster_full("mbv2-tiny", task, scale, &expansion);
    bench::print_row(std::string(core::to_string(row.type)) + " (expanded)",
                     row.expanded, 100.0 * r.expanded_acc);
    bench::print_row(std::string(core::to_string(row.type)) + " (final)",
                     row.final_acc, 100.0 * r.final_acc);
    if (row.type == core::BlockType::inverted_residual) {
      ir_final = r.final_acc;
    } else {
      best_other = std::max(best_other, r.final_acc);
    }
    bench::check_ordering(
        std::string(core::to_string(row.type)) + ": final > vanilla",
        r.final_acc > vanilla);
  }

  bench::check_ordering(
      "inverted residual competitive with other block types (within 2%)",
      ir_final >= best_other - 0.02f);

  bench::print_footer();
  return 0;
}
