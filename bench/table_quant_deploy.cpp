// Extension experiment (no paper counterpart): does NetBooster's accuracy
// gain survive int8 post-training quantization? The paper's motivation is
// IoT deployment (MCUNet-class devices), where deployed TNNs are int8; a
// training method whose gains evaporate under PTQ would be useless there.
// This bench trains vanilla and NetBooster models, runs both through the
// fold-BN -> per-channel int8 weights -> calibrated int8 activations
// pipeline (src/quant), and compares fp32 vs int8 accuracy and weight bytes.
#include <chrono>
#include <cstring>

#include "bench_common.h"
#include "export/flat_writer.h"
#include "export/infer_plan.h"
#include "export/qmodel.h"
#include "tensor/gemm_s8.h"
#include "tensor/rng.h"
#include "tensor/tensor_ops.h"
#include "quant/qmodel.h"
#include "train/metrics.h"
#include "train/trainer.h"

namespace {

// Best-of-5 single-image latency of one plan, in milliseconds.
double plan_latency_ms(const nb::exporter::InferPlan& plan,
                       const nb::Tensor& x) {
  (void)plan.run(x);  // warm the arena and panels
  double best = 1e100;
  for (int rep = 0; rep < 5; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    (void)plan.run(x);
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best * 1e3;
}

}  // namespace

int main() {
  using namespace nb;
  const bench::Scale scale = bench::read_scale();
  bench::print_header(
      "Deployment — int8 PTQ of the contracted TNN (extension)",
      "NetBooster (DAC'23) motivation: IoT deployment; MCUNet-style PTQ",
      scale);

  const int64_t res = data::scaled_resolution(144);
  const data::ClassificationTask task = data::make_task(
      "synth-imagenet", res, 0.6f * scale.data_scale, scale.seed);

  // Vanilla TNN, trained then quantized.
  auto vanilla_model =
      models::make_model("mbv2-tiny", task.num_classes, scale.seed + 3);
  train::TrainConfig vc = bench::pretrain_config(scale);
  vc.epochs = bench::total_epochs(scale);
  (void)train::train_classifier(*vanilla_model, *task.train, *task.test, vc);
  const float vanilla_fp32 = train::evaluate(*vanilla_model, *task.test);

  quant::DeployConfig deploy;
  deploy.calib_batches = 4;
  const quant::DeployReport vr =
      quant::quantize_for_deployment(*vanilla_model, *task.train, deploy);
  const float vanilla_int8 = train::evaluate(*vanilla_model, *task.test);

  // NetBooster TNN (expanded -> tuned -> contracted), then quantized.
  std::shared_ptr<models::MobileNetV2> nb_model;
  const core::NetBoosterResult r = bench::run_netbooster_full(
      "mbv2-tiny", task, scale, nullptr, nullptr, &nb_model);
  const float booster_fp32 = r.final_acc;
  const quant::DeployReport br =
      quant::quantize_for_deployment(*nb_model, *task.train, deploy);
  const float booster_int8 = train::evaluate(*nb_model, *task.test);

  bench::print_row("Vanilla fp32", 51.20, 100.0 * vanilla_fp32);
  bench::print_row("Vanilla int8", 0.0, 100.0 * vanilla_int8,
                   "(" + models::human_count(vr.quant_weight_bytes) +
                       "B weights vs " +
                       models::human_count(vr.fp32_weight_bytes) + "B fp32)");
  bench::print_row("NetBooster fp32", 53.70, 100.0 * booster_fp32);
  bench::print_row("NetBooster int8", 0.0, 100.0 * booster_int8,
                   "(" + models::human_count(br.quant_weight_bytes) +
                       "B weights)");

  bench::check_ordering("NetBooster int8 > vanilla int8 (gain survives PTQ)",
                        booster_int8 > vanilla_int8);
  bench::check_ordering(
      "int8 costs vanilla < 3 points of fp32 accuracy",
      vanilla_fp32 - vanilla_int8 < 0.03f);
  bench::check_ordering(
      "int8 costs NetBooster < 3 points of fp32 accuracy",
      booster_fp32 - booster_int8 < 0.03f);
  bench::check_ordering(
      "identical deployed weight bytes (same architecture after contraction)",
      vr.quant_weight_bytes == br.quant_weight_bytes);

  // Deployment execution: export the contracted NetBooster model to the flat
  // artifact and run it through the REAL int8 backend (quantized
  // activations, packed s8 GEMM, fused requantize) against the
  // dequantized-float fast path. This is the number the paper's deployment
  // story is about — until now the table only reported weight bytes while
  // every measured run still did float arithmetic.
  const exporter::FlatModel flat = exporter::to_flat_model(*nb_model, res);
  Tensor img({1, 3, res, res});
  Rng img_rng(scale.seed + 77);
  fill_uniform(img, img_rng, -1.0f, 1.0f);
  const exporter::InferPlan fast_plan(flat, 1, 3, res, res,
                                      exporter::Backend::fast);
  const exporter::InferPlan int8_plan(flat, 1, 3, res, res,
                                      exporter::Backend::int8);
  const double fast_ms = plan_latency_ms(fast_plan, img);
  const double int8_ms = plan_latency_ms(int8_plan, img);
  const Tensor y_int8 = int8_plan.run(img);
  const Tensor y_oracle = exporter::QModel(flat).forward(img);
  const bool exact =
      y_int8.numel() == y_oracle.numel() &&
      std::memcmp(y_int8.data(), y_oracle.data(),
                  static_cast<size_t>(y_int8.numel()) * sizeof(float)) == 0;

  bench::print_row("Deploy latency fp32-panel (ms)", 0.0, fast_ms);
  bench::print_row("Deploy latency int8 backend (ms)", 0.0, int8_ms,
                   "(" + std::string(gemm_s8_kernel_name()) + ")");
  bench::print_row("int8 speedup over float path", 0.0,
                   int8_ms > 0.0 ? fast_ms / int8_ms : 0.0);
  bench::check_ordering("int8 backend bitwise-exact vs QModel oracle", exact);
  bench::check_ordering("int8 backend at least as fast as float path",
                        int8_ms <= fast_ms);

  bench::print_footer();
  return 0;
}
