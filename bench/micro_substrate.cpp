// google-benchmark microbenchmarks for the substrate: GEMM, convolution
// forward/backward, the contraction algebra, and the headline efficiency
// property — the expanded giant's inference latency vs the contracted
// (original) model's.
#include <benchmark/benchmark.h>

#include "core/contraction.h"
#include "core/expansion.h"
#include "models/registry.h"
#include "nn/conv2d.h"
#include "tensor/gemm.h"
#include "tensor/tensor_ops.h"
#include "tensor/threadpool.h"

namespace {

using namespace nb;

void BM_Gemm(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  Tensor a({n, n}), b({n, n}), c({n, n});
  fill_normal(a, rng, 0.0f, 1.0f);
  fill_normal(b, rng, 0.0f, 1.0f);
  for (auto _ : state) {
    gemm(false, false, n, n, n, 1.0f, a.data(), b.data(), 0.0f, c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

// Packed-GEMM thread scaling through the pool-override hook: arg is the
// worker count of a private pool routed under nb::parallel_for (0 = caller
// only, i.e. NB_THREADS=1).
void BM_GemmPackedThreads(benchmark::State& state) {
  const int64_t workers = state.range(0);
  const int64_t n = 256;
  Rng rng(8);
  Tensor a({n, n}), b({n, n}), c({n, n});
  fill_normal(a, rng, 0.0f, 1.0f);
  fill_normal(b, rng, 0.0f, 1.0f);
  ThreadPool pool(workers);
  ThreadPool::set_global_override(&pool);
  for (auto _ : state) {
    gemm(false, false, n, n, n, 1.0f, a.data(), b.data(), 0.0f, c.data());
    benchmark::DoNotOptimize(c.data());
  }
  ThreadPool::set_global_override(nullptr);
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
  state.SetLabel(gemm_kernel_name());
}
BENCHMARK(BM_GemmPackedThreads)->Arg(0)->Arg(1)->Arg(3);

// Transposed operands exercise the materialize-then-pack path.
void BM_GemmTransB(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(9);
  Tensor a({n, n}), b({n, n}), c({n, n});
  fill_normal(a, rng, 0.0f, 1.0f);
  fill_normal(b, rng, 0.0f, 1.0f);
  for (auto _ : state) {
    gemm(false, true, n, n, n, 1.0f, a.data(), b.data(), 0.0f, c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmTransB)->Arg(128)->Arg(256);

// Direct depthwise forward (no im2col, no GEMM): MobileNetV2's 3x3 at 28^2
// and MCUNet's 5x5 at 14^2.
void BM_DepthwiseForward(benchmark::State& state) {
  const int64_t c = state.range(0);
  const int64_t hw = state.range(1);
  const int64_t k = state.range(2);
  nn::Conv2d conv(nn::Conv2dOptions(c, c, k).same_padding().with_groups(c));
  Rng rng(10);
  fill_normal(conv.weight().value, rng, 0.0f, 0.1f);
  Tensor x({1, c, hw, hw});
  fill_normal(x, rng, 0.0f, 1.0f);
  for (auto _ : state) {
    Tensor y = conv.forward(x);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * conv.flops(hw, hw));
}
BENCHMARK(BM_DepthwiseForward)->Args({144, 28, 3})->Args({120, 14, 5});

void BM_ConvForward(benchmark::State& state) {
  const int64_t c = state.range(0);
  nn::Conv2d conv(nn::Conv2dOptions(c, c, 3).same_padding());
  Rng rng(2);
  fill_normal(conv.weight().value, rng, 0.0f, 0.1f);
  Tensor x({4, c, 16, 16});
  fill_normal(x, rng, 0.0f, 1.0f);
  for (auto _ : state) {
    Tensor y = conv.forward(x);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_ConvForward)->Arg(8)->Arg(24);

void BM_ConvBackward(benchmark::State& state) {
  const int64_t c = state.range(0);
  nn::Conv2d conv(nn::Conv2dOptions(c, c, 3).same_padding());
  Rng rng(3);
  fill_normal(conv.weight().value, rng, 0.0f, 0.1f);
  Tensor x({4, c, 16, 16});
  fill_normal(x, rng, 0.0f, 1.0f);
  Tensor y = conv.forward(x);
  Tensor g(y.shape());
  fill_normal(g, rng, 0.0f, 0.1f);
  for (auto _ : state) {
    conv.zero_grad();
    Tensor gx = conv.backward(g);
    benchmark::DoNotOptimize(gx.data());
  }
}
BENCHMARK(BM_ConvBackward)->Arg(8)->Arg(24);

void BM_MergeSequential(benchmark::State& state) {
  const int64_t hidden = state.range(0);
  Rng rng(4);
  core::LinearConv a{Tensor({hidden, 16, 1, 1}), Tensor({hidden}), 0};
  core::LinearConv b{Tensor({32, hidden, 1, 1}), Tensor({32}), 0};
  fill_normal(a.weight, rng, 0.0f, 0.1f);
  fill_normal(b.weight, rng, 0.0f, 0.1f);
  for (auto _ : state) {
    core::LinearConv merged = core::merge_sequential(a, b);
    benchmark::DoNotOptimize(merged.weight.data());
  }
}
BENCHMARK(BM_MergeSequential)->Arg(48)->Arg(96)->Arg(192);

// The headline property: giant inference is much slower than the contracted
// model, and contraction restores vanilla-latency inference.
void BM_GiantInference(benchmark::State& state) {
  auto model = models::make_model("mbv2-tiny", 24, 5);
  core::ExpansionConfig config;
  Rng rng(6);
  auto expansion = core::expand_network(*model, config, rng);
  (void)expansion;
  model->set_training(false);
  Tensor x({1, 3, 24, 24});
  fill_normal(x, rng, 0.0f, 1.0f);
  for (auto _ : state) {
    Tensor y = model->forward(x);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_GiantInference);

void BM_ContractedInference(benchmark::State& state) {
  auto model = models::make_model("mbv2-tiny", 24, 5);
  core::ExpansionConfig config;
  Rng rng(6);
  auto expansion = core::expand_network(*model, config, rng);
  for (nn::PltActivation* act : expansion.plt_activations) act->set_alpha(1.0f);
  (void)core::contract_network(*model, expansion, false, rng);
  model->set_training(false);
  Tensor x({1, 3, 24, 24});
  fill_normal(x, rng, 0.0f, 1.0f);
  for (auto _ : state) {
    Tensor y = model->forward(x);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_ContractedInference);

void BM_VanillaInference(benchmark::State& state) {
  auto model = models::make_model("mbv2-tiny", 24, 5);
  model->set_training(false);
  Rng rng(6);
  Tensor x({1, 3, 24, 24});
  fill_normal(x, rng, 0.0f, 1.0f);
  for (auto _ : state) {
    Tensor y = model->forward(x);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_VanillaInference);

// Thread-pool scaling on a GEMM-sized parallel_for, independent of the
// NB_THREADS-configured global pool: arg = worker count (0 = serial).
void BM_ThreadPoolRowPartition(benchmark::State& state) {
  const int64_t workers = state.range(0);
  const int64_t n = 160;
  Rng rng(7);
  Tensor a({n, n}), b({n, n}), c({n, n});
  fill_normal(a, rng, 0.0f, 1.0f);
  fill_normal(b, rng, 0.0f, 1.0f);
  ThreadPool pool(workers);
  for (auto _ : state) {
    c.zero();
    pool.parallel_for(n, [&](int64_t i0, int64_t i1) {
      gemm(false, false, i1 - i0, n, n, 1.0f, a.data() + i0 * n, b.data(),
           0.0f, c.data() + i0 * n);
    });
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_ThreadPoolRowPartition)->Arg(0)->Arg(1)->Arg(3);

}  // namespace
