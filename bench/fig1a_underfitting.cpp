// Reproduces Fig. 1(a): TNN training suffers from under-fitting, so a
// regularizer (DropBlock) *hurts* tiny models while NetBooster helps.
// Accuracy-vs-MFLOPs series over the MobileNetV2 width ladder for
// {Vanilla, Vanilla+DropBlock, NetBooster}.
#include <cstdio>

#include "bench_common.h"
#include "models/profiler.h"
#include "nn/dropblock.h"
#include "train/metrics.h"

namespace {

using namespace nb;

// Fig. 1(a) annotations: DropBlock deltas vs vanilla are negative
// (-0.5/-0.3/-0.3), NetBooster deltas positive (+1.4/+1.3/+2.6 family).
struct PaperPoint {
  const char* model;
  double dropblock_delta;
  double netbooster_delta;
};
constexpr PaperPoint kPaper[] = {
    {"mbv2-35", -0.5, +1.4},
    {"mbv2-50", -0.3, +1.3},
    {"mbv2-100", -0.3, +2.6},
};

float run_dropblock(const std::string& model_name,
                    const data::ClassificationTask& task,
                    const bench::Scale& scale) {
  auto model = models::make_model(model_name, task.num_classes, scale.seed + 3);
  model->set_dropblock(std::make_shared<nn::DropBlock2d>(0.2f, 2, scale.seed));
  train::TrainConfig c = bench::pretrain_config(scale);
  c.epochs = bench::total_epochs(scale);
  const float acc =
      train::train_classifier(*model, *task.train, *task.test, c)
          .final_test_acc;
  return acc;
}

}  // namespace

int main() {
  const bench::Scale scale = bench::read_scale();
  bench::print_header(
      "Fig. 1(a) — under-fitting: regularization hurts TNNs, NetBooster helps",
      "NetBooster (DAC'23), Figure 1(a)", scale);

  std::printf("%-12s %10s %12s %12s %12s\n", "model", "MFLOPs", "vanilla(%)",
              "dropblock(%)", "netbooster(%)");

  int dropblock_hurts = 0;
  int netbooster_helps = 0;
  for (const PaperPoint& point : kPaper) {
    const models::ModelConfig config = models::model_config(point.model, 1);
    const int64_t res = data::scaled_resolution(config.paper_resolution);
    const data::ClassificationTask task =
        data::make_task("synth-imagenet", res, scale.data_scale, scale.seed);

    auto probe = models::make_model(point.model, task.num_classes);
    const double mflops = models::profile_model(*probe, res).mflops();

    const float vanilla = bench::run_vanilla(point.model, task, scale);
    const float dropblock = run_dropblock(point.model, task, scale);
    const core::NetBoosterResult nb_result =
        bench::run_netbooster_full(point.model, task, scale);

    std::printf("%-12s %10.1f %12.2f %12.2f %12.2f\n", point.model, mflops,
                100.0 * vanilla, 100.0 * dropblock,
                100.0 * nb_result.final_acc);
    std::printf("  paper deltas vs vanilla: dropblock %+0.1f, netbooster %+0.1f"
                " | measured: %+0.2f, %+0.2f\n",
                point.dropblock_delta, point.netbooster_delta,
                100.0 * (dropblock - vanilla),
                100.0 * (nb_result.final_acc - vanilla));
    if (dropblock <= vanilla + 0.002f) ++dropblock_hurts;
    if (nb_result.final_acc > vanilla) ++netbooster_helps;
  }

  bench::check_ordering(
      "DropBlock does not help under-fitting TNNs (paper: hurts all 3)",
      dropblock_hurts >= 2);
  bench::check_ordering("NetBooster lifts the whole accuracy-MFLOPs curve",
                        netbooster_helps >= 2);
  bench::print_footer();
  return 0;
}
