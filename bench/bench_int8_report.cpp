// True-int8 inference-path report. Builds the same synthetic MobileNetV2-
// and MCUNet-structured flat graphs as bench_infer_report, then times the
// Backend::int8 plan (offset-u8 quantize + packed int8 GEMM with fused
// per-channel requantization) against the float fast backend across batch
// sizes and thread counts, and writes machine-readable BENCH_int8.json.
//
// Two claims are recorded per geometry:
//   * throughput: int8_ms vs fast_ms and their ratio (speedup_int8_vs_fast)
//   * exactness:  the int8 output is memcmp-identical to the QModel integer
//     oracle (reported as "exact_vs_qmodel") — not a tolerance check.
// The selected GEMM micro-kernel (s8-vnni / s8-avx2 / s8-generic) is
// reported so regressions can be attributed to dispatch changes.
//
// Usage: bench_int8_report [--quick] [--out <path>]
//   --quick  small graphs, fewer batches, short windows (the CI setting)
//   --out    output path (default: BENCH_int8.json in the cwd)
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "export/flat_model.h"
#include "export/flat_synth.h"
#include "export/infer_plan.h"
#include "export/qmodel.h"
#include "tensor/gemm_s8.h"
#include "tensor/rng.h"
#include "tensor/tensor.h"
#include "tensor/tensor_ops.h"
#include "tensor/threadpool.h"

namespace {

using namespace nb;
using namespace nb::exporter;

using synth::make_mbv2_flat;
using synth::make_mcunet_flat;

struct Budget {
  double window_s;
  int repeats;
};

double bench_seconds(const Budget& budget, const std::function<void()>& fn) {
  fn();  // warmup / first-touch
  double best = 1e100;
  for (int r = 0; r < budget.repeats; ++r) {
    int64_t iters = 0;
    const auto t0 = std::chrono::steady_clock::now();
    double elapsed = 0.0;
    do {
      fn();
      ++iters;
      elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                              t0)
                    .count();
    } while (elapsed < budget.window_s);
    best = std::min(best, elapsed / static_cast<double>(iters));
  }
  return best;
}

struct PoolSet {
  ThreadPool one{0};   // NB_THREADS=1: no workers, caller only
  ThreadPool four{3};  // NB_THREADS=4: 3 workers + caller
  ThreadPool& get(int64_t threads) { return threads == 4 ? four : one; }

  std::vector<int64_t> counts() const {
    std::vector<int64_t> c{1};
    if (std::thread::hardware_concurrency() >= 4) c.push_back(4);
    return c;
  }
};

struct Result {
  std::string graph;
  int64_t batch = 1;
  int64_t threads = 1;
  double int8_ms = 0.0;
  double int8_images_per_s = 0.0;
  double fast_ms = 0.0;
  double speedup = 0.0;        // fast_ms / int8_ms
  int exact_vs_qmodel = -1;    // 1 = memcmp equal, 0 = mismatch, -1 = not run
  int64_t arena_bytes = 0;       // float arena of the int8 plan
  int64_t arena_int8_bytes = 0;  // byte arena (quantized input + u8 cols)
  int64_t fast_arena_bytes = 0;  // float fast plan, for the memory delta
  int64_t ops = 0;
};

bool bitwise_equal(const Tensor& a, const Tensor& b) {
  return a.same_shape(b) &&
         std::memcmp(a.data(), b.data(),
                     static_cast<size_t>(a.numel()) * sizeof(float)) == 0;
}

void bench_graph(const std::string& name, const FlatModel& model, int64_t res,
                 const std::vector<int64_t>& batches, PoolSet& pools,
                 const Budget& budget, std::vector<Result>& out) {
  Rng rng(4242);
  const QModel oracle(model);
  for (size_t bi = 0; bi < batches.size(); ++bi) {
    const int64_t batch = batches[bi];
    Tensor x({batch, 3, res, res});
    fill_uniform(x, rng, -1.0f, 1.0f);
    const InferPlan plan_i8(model, batch, 3, res, res, Backend::int8);
    const InferPlan plan_f32(model, batch, 3, res, res, Backend::fast);

    // Exactness vs the scalar integer oracle: first batch only (the oracle
    // is a deliberately slow per-tap interpreter).
    int exact = -1;
    if (bi == 0) {
      ThreadPool::set_global_override(&pools.get(1));
      exact = bitwise_equal(plan_i8.run(x), oracle.forward(x)) ? 1 : 0;
      ThreadPool::set_global_override(nullptr);
    }

    for (const int64_t threads : pools.counts()) {
      ThreadPool::set_global_override(&pools.get(threads));
      const double i8_s = bench_seconds(budget, [&] { (void)plan_i8.run(x); });
      const double f32_s =
          bench_seconds(budget, [&] { (void)plan_f32.run(x); });
      ThreadPool::set_global_override(nullptr);
      Result r;
      r.graph = name;
      r.batch = batch;
      r.threads = threads;
      r.int8_ms = i8_s * 1e3;
      r.int8_images_per_s = static_cast<double>(batch) / i8_s;
      r.fast_ms = f32_s * 1e3;
      r.speedup = f32_s / i8_s;
      r.exact_vs_qmodel = threads == 1 ? exact : -1;
      r.arena_bytes = plan_i8.stats().arena_bytes();
      r.arena_int8_bytes = plan_i8.stats().arena_int8_bytes;
      r.fast_arena_bytes = plan_f32.stats().arena_bytes();
      r.ops = plan_i8.stats().ops;
      out.push_back(r);
      std::fprintf(stderr,
                   "  %s b%lld t%lld: int8 %.3f ms | fast %.3f ms | "
                   "speedup %.2fx%s\n",
                   name.c_str(), static_cast<long long>(batch),
                   static_cast<long long>(threads), r.int8_ms, r.fast_ms,
                   r.speedup,
                   r.exact_vs_qmodel == 1   ? " | exact"
                   : r.exact_vs_qmodel == 0 ? " | MISMATCH"
                                            : "");
    }
  }
}

void write_json(const std::string& path, bool quick,
                const std::vector<Result>& results) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    std::exit(1);
  }
  // Headline: MobileNetV2-flat, batch 1, single thread.
  const Result* headline = nullptr;
  for (const Result& r : results) {
    if (r.graph.rfind("mbv2", 0) == 0 && r.batch == 1 && r.threads == 1) {
      headline = &r;
      break;
    }
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"schema\": \"nb-bench-int8-v1\",\n");
  std::fprintf(f, "  \"bench\": \"int8\",\n");
  std::fprintf(f, "  \"quick\": %s,\n", quick ? "true" : "false");
  std::fprintf(f, "  \"kernel\": \"%s\",\n", gemm_s8_kernel_name());
  std::fprintf(f, "  \"hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  if (headline != nullptr) {
    std::fprintf(f, "  \"mbv2_b1_t1\": {\n");
    std::fprintf(f, "    \"int8_ms\": %.4f,\n", headline->int8_ms);
    std::fprintf(f, "    \"fast_ms\": %.4f,\n", headline->fast_ms);
    std::fprintf(f, "    \"speedup_int8_vs_fast\": %.4f,\n",
                 headline->speedup);
    std::fprintf(f, "    \"exact_vs_qmodel\": %s,\n",
                 headline->exact_vs_qmodel == 1 ? "true" : "false");
    std::fprintf(f, "    \"arena_bytes\": %lld,\n",
                 static_cast<long long>(headline->arena_bytes));
    std::fprintf(f, "    \"arena_int8_bytes\": %lld,\n",
                 static_cast<long long>(headline->arena_int8_bytes));
    std::fprintf(f, "    \"fast_arena_bytes\": %lld\n",
                 static_cast<long long>(headline->fast_arena_bytes));
    std::fprintf(f, "  },\n");
  }
  std::fprintf(f, "  \"results\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    std::fprintf(f,
                 "    {\"graph\": \"%s\", \"batch\": %lld, \"threads\": %lld, "
                 "\"ops\": %lld",
                 r.graph.c_str(), static_cast<long long>(r.batch),
                 static_cast<long long>(r.threads),
                 static_cast<long long>(r.ops));
    std::fprintf(f,
                 ", \"int8_ms\": %.4f, \"int8_images_per_s\": %.2f, "
                 "\"fast_ms\": %.4f, \"speedup\": %.4f",
                 r.int8_ms, r.int8_images_per_s, r.fast_ms, r.speedup);
    if (r.exact_vs_qmodel >= 0) {
      std::fprintf(f, ", \"exact_vs_qmodel\": %s",
                   r.exact_vs_qmodel == 1 ? "true" : "false");
    }
    std::fprintf(f,
                 ", \"arena_bytes\": %lld, \"arena_int8_bytes\": %lld, "
                 "\"fast_arena_bytes\": %lld}%s\n",
                 static_cast<long long>(r.arena_bytes),
                 static_cast<long long>(r.arena_int8_bytes),
                 static_cast<long long>(r.fast_arena_bytes),
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_int8.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_int8_report [--quick] [--out <path>]\n");
      return 2;
    }
  }
  // Full mode uses many best-of windows: single-core containers see heavy
  // tenancy noise, and the int8-vs-float ratio is only trustworthy when both
  // sides report their genuine best window.
  const Budget budget = quick ? Budget{0.05, 2} : Budget{0.25, 10};

  std::fprintf(stderr, "int8 GEMM kernel: %s\n", gemm_s8_kernel_name());
  PoolSet pools;
  std::vector<Result> results;
  Rng rng(20260730);

  if (quick) {
    // Scaled-down graphs so the CI leg stays in seconds: the op mix is
    // identical, only widths/resolutions shrink.
    const FlatModel mbv2 = make_mbv2_flat(rng, 0.35f, 96, 100);
    bench_graph("mbv2_w035_r96", mbv2, 96, {1, 4}, pools, budget, results);
    const FlatModel mcunet = make_mcunet_flat(rng, 96, 100);
    bench_graph("mcunet_r96", mcunet, 96, {1, 4}, pools, budget, results);
  } else {
    const FlatModel mbv2 = make_mbv2_flat(rng, 1.0f, 160, 1000);
    bench_graph("mbv2_w100_r160", mbv2, 160, {1, 8, 32}, pools, budget,
                results);
    const FlatModel mcunet = make_mcunet_flat(rng, 176, 1000);
    bench_graph("mcunet_r176", mcunet, 176, {1, 8, 32}, pools, budget,
                results);
  }

  write_json(out_path, quick, results);
  std::fprintf(stderr, "wrote %s (%zu results)\n", out_path.c_str(),
               results.size());
  return 0;
}
