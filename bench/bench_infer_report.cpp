// FlatModel inference-runtime report. Builds synthetic MobileNetV2- and
// MCUNet-structured flat graphs (random int8 levels, variance-preserving
// per-channel scales, relu6 activations — the op mix and shapes of the real
// exports without needing the training stack), then times the planned fast
// backend against the reference scalar interpreter across batch sizes and
// writes machine-readable BENCH_infer.json: fast-vs-reference speedup,
// output agreement, and the memory planner's arena accounting.
//
// Usage: bench_infer_report [--quick] [--out <path>]
//   --quick  small graphs, fewer batches, short windows (the CI setting)
//   --out    output path (default: BENCH_infer.json in the cwd)
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "export/flat_model.h"
#include "export/flat_synth.h"
#include "export/infer_plan.h"
#include "tensor/rng.h"
#include "tensor/tensor.h"
#include "tensor/tensor_ops.h"
#include "tensor/threadpool.h"

namespace {

using namespace nb;
using namespace nb::exporter;

using synth::make_mbv2_flat;
using synth::make_mcunet_flat;

// ----------------------------------------------------------------------
// Timing: best-of repeated windows for the fast backend; the reference
// interpreter is orders of magnitude slower, so it gets a bounded number of
// plain runs instead of a filled window.

struct Budget {
  double window_s;
  int repeats;
};

double bench_seconds(const Budget& budget, const std::function<void()>& fn) {
  fn();  // warmup / first-touch
  double best = 1e100;
  for (int r = 0; r < budget.repeats; ++r) {
    int64_t iters = 0;
    const auto t0 = std::chrono::steady_clock::now();
    double elapsed = 0.0;
    do {
      fn();
      ++iters;
      elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                              t0)
                    .count();
    } while (elapsed < budget.window_s);
    best = std::min(best, elapsed / static_cast<double>(iters));
  }
  return best;
}

double time_once(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct PoolSet {
  ThreadPool one{0};   // NB_THREADS=1: no workers, caller only
  ThreadPool four{3};  // NB_THREADS=4: 3 workers + caller
  ThreadPool& get(int64_t threads) { return threads == 4 ? four : one; }

  std::vector<int64_t> counts() const {
    std::vector<int64_t> c{1};
    if (std::thread::hardware_concurrency() >= 4) c.push_back(4);
    return c;
  }
};

struct Result {
  std::string graph;
  int64_t batch = 1;
  int64_t threads = 1;
  double fast_ms = 0.0;
  double fast_images_per_s = 0.0;
  double reference_ms = 0.0;  // 0 when the reference was not timed
  double speedup = 0.0;       // reference_ms / fast_ms
  double max_abs_diff = -1.0; // fast vs reference output; -1 when not checked
  int64_t arena_bytes = 0;
  int64_t no_reuse_bytes = 0;
  int64_t peak_live_bytes = 0;
  int64_t ops = 0;
};

void bench_graph(const std::string& name, const FlatModel& model, int64_t res,
                 const std::vector<int64_t>& batches, PoolSet& pools,
                 const Budget& budget, std::vector<Result>& out) {
  Rng rng(4242);
  for (size_t bi = 0; bi < batches.size(); ++bi) {
    const int64_t batch = batches[bi];
    Tensor x({batch, 3, res, res});
    fill_uniform(x, rng, -1.0f, 1.0f);
    const InferPlan plan(model, batch, 3, res, res);

    // Reference interpreter and agreement, single thread, first batch only
    // for the (slow) diff run at larger batches.
    ThreadPool::set_global_override(&pools.get(1));
    const double ref_s = time_once([&] { (void)model.forward(x, Backend::reference); });
    double diff = -1.0;
    if (bi == 0) {
      diff = max_abs_diff(model.forward(x, Backend::reference), plan.run(x));
    }
    ThreadPool::set_global_override(nullptr);

    for (const int64_t threads : pools.counts()) {
      ThreadPool::set_global_override(&pools.get(threads));
      const double fast_s = bench_seconds(budget, [&] { (void)plan.run(x); });
      ThreadPool::set_global_override(nullptr);
      Result r;
      r.graph = name;
      r.batch = batch;
      r.threads = threads;
      r.fast_ms = fast_s * 1e3;
      r.fast_images_per_s = static_cast<double>(batch) / fast_s;
      if (threads == 1) {
        r.reference_ms = ref_s * 1e3;
        r.speedup = ref_s / fast_s;
        r.max_abs_diff = diff;
      }
      r.arena_bytes = plan.stats().arena_bytes();
      r.no_reuse_bytes = plan.stats().no_reuse_bytes();
      r.peak_live_bytes = plan.stats().peak_live_bytes();
      r.ops = plan.stats().ops;
      out.push_back(r);
      std::fprintf(stderr, "  %s b%lld t%lld: fast %.3f ms%s\n", name.c_str(),
                   static_cast<long long>(batch),
                   static_cast<long long>(threads), r.fast_ms,
                   threads == 1
                       ? (" | ref " + std::to_string(r.reference_ms) +
                          " ms | speedup " + std::to_string(r.speedup))
                             .c_str()
                       : "");
    }
  }
}

void write_json(const std::string& path, bool quick,
                const std::vector<Result>& results) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    std::exit(1);
  }
  // Headline: MobileNetV2-flat, batch 1, single thread.
  const Result* headline = nullptr;
  for (const Result& r : results) {
    if (r.graph.rfind("mbv2", 0) == 0 && r.batch == 1 && r.threads == 1) {
      headline = &r;
      break;
    }
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"schema\": \"nb-bench-infer-v1\",\n");
  std::fprintf(f, "  \"bench\": \"infer\",\n");
  std::fprintf(f, "  \"quick\": %s,\n", quick ? "true" : "false");
  std::fprintf(f, "  \"hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  if (headline != nullptr) {
    std::fprintf(f, "  \"mbv2_b1_t1\": {\n");
    std::fprintf(f, "    \"fast_ms\": %.4f,\n", headline->fast_ms);
    std::fprintf(f, "    \"reference_ms\": %.4f,\n", headline->reference_ms);
    std::fprintf(f, "    \"speedup_fast_vs_reference\": %.4f,\n",
                 headline->speedup);
    std::fprintf(f, "    \"max_abs_diff\": %.3g,\n", headline->max_abs_diff);
    std::fprintf(f, "    \"arena_bytes\": %lld,\n",
                 static_cast<long long>(headline->arena_bytes));
    std::fprintf(f, "    \"no_reuse_bytes\": %lld\n",
                 static_cast<long long>(headline->no_reuse_bytes));
    std::fprintf(f, "  },\n");
  }
  std::fprintf(f, "  \"results\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    std::fprintf(f,
                 "    {\"graph\": \"%s\", \"batch\": %lld, \"threads\": %lld, "
                 "\"ops\": %lld",
                 r.graph.c_str(), static_cast<long long>(r.batch),
                 static_cast<long long>(r.threads),
                 static_cast<long long>(r.ops));
    std::fprintf(f, ", \"fast_ms\": %.4f, \"fast_images_per_s\": %.2f",
                 r.fast_ms, r.fast_images_per_s);
    if (r.reference_ms > 0.0) {
      std::fprintf(f, ", \"reference_ms\": %.4f, \"speedup\": %.4f",
                   r.reference_ms, r.speedup);
    }
    if (r.max_abs_diff >= 0.0) {
      std::fprintf(f, ", \"max_abs_diff\": %.3g", r.max_abs_diff);
    }
    std::fprintf(f,
                 ", \"arena_bytes\": %lld, \"no_reuse_bytes\": %lld, "
                 "\"peak_live_bytes\": %lld}%s\n",
                 static_cast<long long>(r.arena_bytes),
                 static_cast<long long>(r.no_reuse_bytes),
                 static_cast<long long>(r.peak_live_bytes),
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_infer.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_infer_report [--quick] [--out <path>]\n");
      return 2;
    }
  }
  const Budget budget = quick ? Budget{0.05, 2} : Budget{0.3, 4};

  PoolSet pools;
  std::vector<Result> results;
  Rng rng(20260730);

  if (quick) {
    // Scaled-down graphs so the CI leg stays in seconds: the op mix is
    // identical, only widths/resolutions shrink.
    const FlatModel mbv2 = make_mbv2_flat(rng, 0.35f, 96, 100);
    bench_graph("mbv2_w035_r96", mbv2, 96, {1, 4}, pools, budget, results);
    const FlatModel mcunet = make_mcunet_flat(rng, 96, 100);
    bench_graph("mcunet_r96", mcunet, 96, {1, 4}, pools, budget, results);
  } else {
    const FlatModel mbv2 = make_mbv2_flat(rng, 1.0f, 160, 1000);
    bench_graph("mbv2_w100_r160", mbv2, 160, {1, 8, 32}, pools, budget,
                results);
    const FlatModel mcunet = make_mcunet_flat(rng, 176, 1000);
    bench_graph("mcunet_r176", mcunet, 176, {1, 8, 32}, pools, budget,
                results);
  }

  write_json(out_path, quick, results);
  std::fprintf(stderr, "wrote %s (%zu results)\n", out_path.c_str(),
               results.size());
  return 0;
}
