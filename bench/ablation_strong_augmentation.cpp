// Extension ablation: the paper's Constraint 1 (Sec. I, Fig. 1a) argues
// that *regularization* hurts under-fitting TNNs, and its related-work
// section extends the claim to heavy data augmentation. Fig. 1(a) tests
// DropBlock; this bench tests the data-side version with mixup, on a small
// and a large width of the same architecture. The expected shape: mixup
// hurts (or fails to help) the tiny width while being benign-to-helpful on
// the wide one — the classic over/under-fitting crossover.
#include "bench_common.h"
#include "train/trainer.h"

namespace {

float run_width(const std::string& model_name,
                const nb::data::ClassificationTask& task,
                const nb::bench::Scale& scale, float mixup_alpha) {
  auto model =
      nb::models::make_model(model_name, task.num_classes, scale.seed + 3);
  nb::train::TrainConfig c = nb::bench::pretrain_config(scale);
  c.epochs = nb::bench::total_epochs(scale);
  c.mixup_alpha = mixup_alpha;
  return nb::train::train_classifier(*model, *task.train, *task.test, c)
      .final_test_acc;
}

}  // namespace

int main() {
  using namespace nb;
  const bench::Scale scale = bench::read_scale();
  bench::print_header(
      "Ablation — strong augmentation (mixup) vs model capacity (extension)",
      "NetBooster (DAC'23), Constraint 1 / Sec. II-B", scale);

  const int64_t res = data::scaled_resolution(144);
  const data::ClassificationTask task = data::make_task(
      "synth-imagenet", res, 0.6f * scale.data_scale, scale.seed);

  const float tiny_plain = run_width("mbv2-tiny", task, scale, 0.0f);
  const float tiny_mixup = run_width("mbv2-tiny", task, scale, 0.4f);
  bench::print_row("mbv2-tiny, plain", 51.20, 100.0 * tiny_plain);
  bench::print_row("mbv2-tiny, mixup 0.4", 0.0, 100.0 * tiny_mixup,
                   "(paper's claim: hurts TNNs)");

  const float wide_plain = run_width("teacher", task, scale, 0.0f);
  const float wide_mixup = run_width("teacher", task, scale, 0.4f);
  bench::print_row("4x-wide, plain", 0.0, 100.0 * wide_plain);
  bench::print_row("4x-wide, mixup 0.4", 0.0, 100.0 * wide_mixup,
                   "(over-parameterized: benign)");

  const float tiny_delta = tiny_mixup - tiny_plain;
  const float wide_delta = wide_mixup - wide_plain;
  bench::check_ordering(
      "mixup does not help the under-fitting TNN (delta <= +1 point)",
      tiny_delta <= 0.01f);
  bench::check_ordering(
      "mixup hurts the TNN more than the wide model (crossover direction)",
      tiny_delta < wide_delta + 0.005f);

  bench::print_footer();
  return 0;
}
