// Extension ablation (not a paper table): how much of NetBooster's gain
// depends on its epoch budget. The paper's recipe gives NetBooster ~1.7x the
// vanilla budget (160 giant + 150 PLT/finetune vs ~180 single-stage); the
// default benches reproduce that convention. This bench also runs the
// stricter *equal* budget, where the two stages split the single-stage
// budget — at this repository's micro scale that starves the giant and the
// gain shrinks or inverts, which is worth knowing before adopting the method
// under a fixed training-cost constraint.
#include "bench_common.h"

int main() {
  using namespace nb;
  const bench::Scale scale = bench::read_scale();
  bench::print_header(
      "Ablation — budget convention (extension, no paper counterpart)",
      "NetBooster (DAC'23), Sec. IV-A training settings", scale);

  const int64_t res = data::scaled_resolution(144);
  const data::ClassificationTask task = data::make_task(
      "synth-imagenet", res, 0.6f * scale.data_scale, scale.seed);

  const float vanilla = bench::run_vanilla("mbv2-tiny", task, scale);
  bench::print_row("Vanilla (single-stage budget)", 51.20, 100.0 * vanilla);

  const core::NetBoosterConfig paper_budget =
      bench::netbooster_config(scale, /*equal_budget=*/false);
  const core::NetBoosterResult paper = bench::run_netbooster_full(
      "mbv2-tiny", task, scale, nullptr, &paper_budget);
  bench::print_row("NetBooster, paper budget (~1.6x)", 53.70,
                   100.0 * paper.final_acc,
                   "(giant " +
                       std::to_string(100.0 * paper.expanded_acc).substr(0, 5) +
                       "%)");

  const core::NetBoosterConfig equal_budget =
      bench::netbooster_config(scale, /*equal_budget=*/true);
  const core::NetBoosterResult equal = bench::run_netbooster_full(
      "mbv2-tiny", task, scale, nullptr, &equal_budget);
  bench::print_row("NetBooster, equal budget (1.0x)", 0.0,
                   100.0 * equal.final_acc,
                   "(giant " +
                       std::to_string(100.0 * equal.expanded_acc).substr(0, 5) +
                       "%; no paper row)");

  bench::check_ordering("paper-budget NetBooster > vanilla (paper: +2.5)",
                        paper.final_acc > vanilla);
  bench::check_ordering(
      "paper budget > equal budget (micro-scale: the giant needs its epochs)",
      paper.final_acc > equal.final_acc);

  bench::print_footer();
  return 0;
}
