// Reproduces Table VI: ablation on the expansion ratio (Q3). The paper
// reports that the common ratios 4-6 work best, with quality degrading at 8
// (too large a complexity gap for effective feature inheritance) and at 2
// (not enough added capacity) — and that the *contracted* cost is identical
// for every ratio (remark after Eq. 4).
#include <cstdio>

#include "bench_common.h"
#include "models/profiler.h"

namespace {

struct PaperRow {
  int64_t ratio;
  double final_acc;
};

constexpr double kPaperVanilla = 51.20;
constexpr PaperRow kPaper[] = {{2, 52.94}, {4, 53.52}, {6, 53.70}, {8, 52.56}};

}  // namespace

int main() {
  using namespace nb;
  const bench::Scale scale = bench::read_scale();
  bench::print_header("Table VI — ablation: expansion ratio (Q3)",
                      "NetBooster (DAC'23), Table VI", scale);

  const int64_t res = data::scaled_resolution(144);
  const data::ClassificationTask task =
      data::make_task("synth-imagenet", res, scale.data_scale, scale.seed);

  const float vanilla = bench::run_vanilla("mbv2-tiny", task, scale);
  bench::print_row("Vanilla", kPaperVanilla, 100.0 * vanilla);

  int64_t deployed_flops = -1;
  bool all_above_vanilla = true;
  bool costs_identical = true;
  for (const PaperRow& row : kPaper) {
    core::ExpansionConfig expansion;
    expansion.expansion_ratio = row.ratio;
    const core::NetBoosterResult r =
        bench::run_netbooster_full("mbv2-tiny", task, scale, &expansion);
    bench::print_row("ratio " + std::to_string(row.ratio), row.final_acc,
                     100.0 * r.final_acc,
                     "(giant " + std::to_string(r.giant_profile.mflops())
                         .substr(0, 5) + " MFLOPs)");
    all_above_vanilla = all_above_vanilla && r.final_acc > vanilla;
    if (deployed_flops < 0) {
      deployed_flops = r.final_profile.flops;
    } else if (r.final_profile.flops != deployed_flops) {
      costs_identical = false;
    }
  }

  bench::check_ordering(
      "every ratio in {2,4,6,8} improves over vanilla (paper: all do)",
      all_above_vanilla);
  bench::check_ordering(
      "contracted cost identical for every ratio (paper remark after Eq. 4)",
      costs_identical);

  bench::print_footer();
  return 0;
}
