// Reproduces Fig. 1(b): downstream accuracy vs finetuning epochs. Vanilla
// MobileNetV2-35 pretrained at high and low resolution plateaus — even 4x
// more finetuning epochs does not help — while NetBooster's inherited giant
// features land above both plateaus.
#include <cstdio>
#include <vector>

#include "baselines/kd.h"
#include "bench_common.h"
#include "nn/serialize.h"
#include "train/metrics.h"

namespace {

using namespace nb;

float finetune_from(const std::map<std::string, Tensor>& snapshot,
                    const data::ClassificationTask& pretask,
                    const data::ClassificationTask& task, int64_t epochs,
                    const bench::Scale& scale) {
  auto model = models::make_model("mbv2-35", pretask.num_classes, scale.seed + 3);
  nn::load_state_dict(*model, snapshot);
  Rng rng(scale.seed + 31, 3);
  model->reset_classifier(task.num_classes, rng);
  train::TrainConfig c = bench::tune_config(scale);
  c.epochs = epochs;
  return train::train_classifier(*model, *task.train, *task.test, c)
      .final_test_acc;
}

}  // namespace

int main() {
  const bench::Scale scale = bench::read_scale();
  bench::print_header(
      "Fig. 1(b) — downstream accuracy vs finetuning epochs (CIFAR stand-in)",
      "NetBooster (DAC'23), Figure 1(b)", scale);

  const int64_t res_high = data::scaled_resolution(224);
  const int64_t res_low = data::scaled_resolution(144);
  const data::ClassificationTask pre_high = data::make_task(
      "synth-imagenet", res_high, scale.data_scale, scale.seed);
  const data::ClassificationTask pre_low = data::make_task(
      "synth-imagenet", res_low, scale.data_scale, scale.seed);
  const data::ClassificationTask cifar_high =
      data::make_task("cifar", res_high, scale.data_scale, scale.seed);
  const data::ClassificationTask cifar_low =
      data::make_task("cifar", res_low, scale.data_scale, scale.seed);

  // Pretrain each starting point once.
  auto pretrain = [&](const data::ClassificationTask& pretask) {
    auto model =
        models::make_model("mbv2-35", pretask.num_classes, scale.seed + 3);
    (void)train::train_classifier(*model, *pretask.train, *pretask.test,
                                  bench::pretrain_config(scale));
    return nn::state_dict(*model);
  };
  const auto snap_high = pretrain(pre_high);
  const auto snap_low = pretrain(pre_low);

  // NetBooster giant at the low resolution (the paper's r=144 curve).
  auto boosted =
      models::make_model("mbv2-35", pre_low.num_classes, scale.seed + 3);
  core::NetBoosterConfig nbc = bench::netbooster_config(scale);
  core::NetBooster nb(boosted, nbc);
  nb.train_giant(*pre_low.train, *pre_low.test);
  const auto giant_snapshot = nn::state_dict(nb.model());

  // Epoch sweep: 1x, 2x, 4x the standard tuning budget (the paper sweeps
  // 150 -> 600 epochs).
  const std::vector<int64_t> sweep = {scale.tune_epochs,
                                      2 * scale.tune_epochs,
                                      4 * scale.tune_epochs};
  std::printf("%-26s", "finetune epochs:");
  for (int64_t e : sweep) std::printf("%10lld", static_cast<long long>(e));
  std::printf("\n");

  auto run_series = [&](const char* label,
                        const std::function<float(int64_t)>& fn) {
    std::printf("%-26s", label);
    std::vector<float> series;
    for (int64_t e : sweep) {
      const float acc = fn(e);
      series.push_back(acc);
      std::printf("%10.2f", 100.0 * acc);
      std::fflush(stdout);
    }
    std::printf("\n");
    return series;
  };

  const auto high_series = run_series("vanilla r=224-equiv", [&](int64_t e) {
    return finetune_from(snap_high, pre_high, cifar_high, e, scale);
  });
  const auto low_series = run_series("vanilla r=144-equiv", [&](int64_t e) {
    return finetune_from(snap_low, pre_low, cifar_low, e, scale);
  });
  const auto nb_series = run_series("netbooster r=144-equiv", [&](int64_t e) {
    auto model =
        models::make_model("mbv2-35", pre_low.num_classes, scale.seed + 3);
    core::NetBoosterConfig c = bench::netbooster_config(scale);
    c.tune.epochs = e;
    core::NetBooster runner(model, c);
    nn::load_state_dict(runner.model(), giant_snapshot);
    runner.prepare_transfer(cifar_low.num_classes);
    return runner.tune_and_contract(*cifar_low.train, *cifar_low.test);
  });

  // Paper claims: (1) vanilla plateaus — 4x epochs does not beat 1x by a
  // meaningful margin; (2) NetBooster sits above the vanilla plateau.
  const float vanilla_gain_from_epochs =
      low_series.back() - low_series.front();
  bench::check_ordering(
      "vanilla plateau: 4x epochs gains < 2% (paper: no improvement)",
      vanilla_gain_from_epochs < 0.02f);
  bench::check_ordering(
      "NetBooster beats the low-res vanilla curve at every budget",
      nb_series[0] >= low_series[0] && nb_series[1] >= low_series[1] &&
          nb_series[2] >= low_series[2]);

  bench::print_footer();
  return 0;
}
