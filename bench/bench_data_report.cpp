// Data pipeline report: times the prefetching PipelineLoader
// (data/pipeline.h) against the synchronous DataLoader on the procedural
// synthetic dataset and writes machine-readable BENCH_data.json.
//
// Three workloads are swept across workers {sync, 1, 2, 4}:
//   * plain         decode only (procedural render, CPU-bound)
//   * augmented     decode + per-sample augmentation (CPU-bound)
//   * augmented_io  decode + augmentation behind a simulated blocking
//                   decode latency (sleep), the shape of a real input
//                   pipeline reading from disk/network. Prefetch overlap
//                   hides this latency at ANY core count, so this is the
//                   headline row; the CPU-bound rows only scale past 1.0x
//                   when the host actually has spare cores.
//
// Two claims are recorded besides throughput:
//   * determinism: pipeline batches at 4 workers are memcmp-identical to
//     the synchronous loader for plain, augmented, and augmented+mixed
//     configurations (reported as booleans, CI-guarded);
//   * end-to-end: a real train_classifier() epoch with data_workers on and
//     off lands on the bitwise-identical final accuracy.
//
// Usage: bench_data_report [--quick] [--out <path>]
//   --quick  small dataset, fewer repeat epochs (the CI setting)
//   --out    output path (default: BENCH_data.json in the cwd)
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "data/dataloader.h"
#include "data/pipeline.h"
#include "data/synth_classification.h"
#include "models/registry.h"
#include "train/trainer.h"

namespace {

using namespace nb;

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Decorates a dataset with a blocking per-sample decode latency — the
/// stand-in for disk/network reads, which the pipeline's workers overlap.
class DelayedDataset : public data::ClassificationDataset {
 public:
  DelayedDataset(const data::ClassificationDataset& base, int64_t delay_us)
      : base_(base), delay_us_(delay_us) {}
  int64_t size() const override { return base_.size(); }
  int64_t num_classes() const override { return base_.num_classes(); }
  int64_t resolution() const override { return base_.resolution(); }
  Tensor image(int64_t idx) const override {
    std::this_thread::sleep_for(std::chrono::microseconds(delay_us_));
    return base_.image(idx);
  }
  int64_t label(int64_t idx) const override { return base_.label(idx); }
  std::string name() const override { return base_.name() + "+io"; }

 private:
  const data::ClassificationDataset& base_;
  int64_t delay_us_;
};

struct Result {
  std::string config;
  int64_t workers = 0;  // 0 = synchronous DataLoader
  double epoch_ms = 0.0;
  double samples_per_s = 0.0;
  double speedup_vs_sync = 0.0;
  // Pipeline-only stage counters (cumulative over the timed epochs).
  double reader_stall_ms = -1.0;
  double worker_stall_ms = -1.0;
  double consumer_stall_ms = -1.0;
  int64_t max_ticket_depth = -1;
};

/// Best-of-`repeats` wall time for one full epoch (start_epoch + drain),
/// after one untimed warmup epoch (first-touch buffer allocation).
double epoch_seconds(data::BatchSource& loader, int repeats) {
  data::Batch batch;
  loader.start_epoch();
  while (loader.next(batch)) {
  }
  double best = 1e100;
  for (int r = 0; r < repeats; ++r) {
    const double t0 = now_s();
    loader.start_epoch();
    while (loader.next(batch)) {
    }
    best = std::min(best, now_s() - t0);
  }
  return best;
}

void sweep_config(const std::string& config_name,
                  const data::ClassificationDataset& ds,
                  data::LoaderOptions opts, int repeats,
                  std::vector<Result>& out) {
  double sync_s = 0.0;
  for (const int64_t workers : {int64_t{0}, int64_t{1}, int64_t{2}, int64_t{4}}) {
    opts.workers = workers;
    const std::unique_ptr<data::BatchSource> loader =
        data::make_loader(ds, opts);
    const double s = epoch_seconds(*loader, repeats);
    if (workers == 0) sync_s = s;
    Result r;
    r.config = config_name;
    r.workers = workers;
    r.epoch_ms = s * 1e3;
    r.samples_per_s = static_cast<double>(ds.size()) / s;
    r.speedup_vs_sync = sync_s / s;
    if (const auto* pipe = dynamic_cast<const data::PipelineLoader*>(loader.get())) {
      const data::PipelineStats stats = pipe->stats();
      r.reader_stall_ms = stats.reader_stall_ms;
      r.worker_stall_ms = stats.worker_stall_ms;
      r.consumer_stall_ms = stats.consumer_stall_ms;
      r.max_ticket_depth = stats.max_ticket_depth;
    }
    out.push_back(r);
    std::fprintf(stderr, "  %-14s w%lld: %8.2f ms/epoch  (%.2fx vs sync)\n",
                 config_name.c_str(), static_cast<long long>(workers),
                 r.epoch_ms, r.speedup_vs_sync);
  }
}

/// memcmp equality of every batch of one epoch, pipeline vs sync loader.
bool epochs_bitwise_equal(const data::ClassificationDataset& ds,
                          data::LoaderOptions opts, int64_t workers) {
  struct Snap {
    std::vector<float> images;
    std::vector<int64_t> labels, labels_b;
    float lam;
  };
  auto collect = [&](int64_t w) {
    data::LoaderOptions o = opts;
    o.workers = w;
    const std::unique_ptr<data::BatchSource> loader = data::make_loader(ds, o);
    loader->start_epoch();
    std::vector<Snap> snaps;
    data::Batch b;
    while (loader->next(b)) {
      Snap s;
      s.images.assign(b.images.data(), b.images.data() + b.images.numel());
      s.labels = b.labels;
      s.labels_b = b.labels_b;
      s.lam = b.mix_lam;
      snaps.push_back(std::move(s));
    }
    return snaps;
  };
  const std::vector<Snap> ref = collect(0);
  const std::vector<Snap> got = collect(workers);
  if (ref.size() != got.size()) return false;
  for (size_t i = 0; i < ref.size(); ++i) {
    if (ref[i].labels != got[i].labels || ref[i].labels_b != got[i].labels_b ||
        std::memcmp(&ref[i].lam, &got[i].lam, sizeof(float)) != 0 ||
        ref[i].images.size() != got[i].images.size() ||
        std::memcmp(ref[i].images.data(), got[i].images.data(),
                    ref[i].images.size() * sizeof(float)) != 0) {
      return false;
    }
  }
  return true;
}

void write_json(const std::string& path, bool quick, int64_t samples,
                int64_t resolution, int64_t batch_size, int64_t delay_us,
                bool det_plain, bool det_aug, bool det_mixed,
                const std::vector<Result>& results, double e2e_sync_ms,
                double e2e_pipe_ms, int64_t e2e_workers, bool e2e_acc_equal) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    std::exit(1);
  }
  // Headline: the latency-bound workload at 4 workers, where prefetch
  // overlap pays at any core count.
  const Result* headline = nullptr;
  for (const Result& r : results) {
    if (r.config == "augmented_io" && r.workers == 4) headline = &r;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"schema\": \"nb-bench-data-v1\",\n");
  std::fprintf(f, "  \"bench\": \"data\",\n");
  std::fprintf(f, "  \"quick\": %s,\n", quick ? "true" : "false");
  std::fprintf(f, "  \"hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f,
               "  \"dataset\": {\"samples\": %lld, \"resolution\": %lld, "
               "\"batch_size\": %lld, \"io_delay_us\": %lld},\n",
               static_cast<long long>(samples),
               static_cast<long long>(resolution),
               static_cast<long long>(batch_size),
               static_cast<long long>(delay_us));
  std::fprintf(f,
               "  \"determinism\": {\"plain\": %s, \"augmented\": %s, "
               "\"augmented_mixed\": %s},\n",
               det_plain ? "true" : "false", det_aug ? "true" : "false",
               det_mixed ? "true" : "false");
  if (headline != nullptr) {
    std::fprintf(f, "  \"augmented_io_w4\": {\n");
    std::fprintf(f, "    \"epoch_ms\": %.3f,\n", headline->epoch_ms);
    std::fprintf(f, "    \"samples_per_s\": %.1f,\n", headline->samples_per_s);
    std::fprintf(f, "    \"speedup_pipeline_vs_sync\": %.4f\n",
                 headline->speedup_vs_sync);
    std::fprintf(f, "  },\n");
  }
  std::fprintf(f, "  \"results\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    std::fprintf(f,
                 "    {\"config\": \"%s\", \"workers\": %lld, "
                 "\"epoch_ms\": %.3f, \"samples_per_s\": %.1f, "
                 "\"speedup_vs_sync\": %.4f",
                 r.config.c_str(), static_cast<long long>(r.workers),
                 r.epoch_ms, r.samples_per_s, r.speedup_vs_sync);
    if (r.workers > 0) {
      std::fprintf(f,
                   ", \"reader_stall_ms\": %.2f, \"worker_stall_ms\": %.2f, "
                   "\"consumer_stall_ms\": %.2f, \"max_ticket_depth\": %lld",
                   r.reader_stall_ms, r.worker_stall_ms, r.consumer_stall_ms,
                   static_cast<long long>(r.max_ticket_depth));
    }
    std::fprintf(f, "}%s\n", i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"end_to_end\": {\n");
  std::fprintf(f, "    \"train_epoch_sync_ms\": %.1f,\n", e2e_sync_ms);
  std::fprintf(f, "    \"train_epoch_pipeline_ms\": %.1f,\n", e2e_pipe_ms);
  std::fprintf(f, "    \"workers\": %lld,\n",
               static_cast<long long>(e2e_workers));
  std::fprintf(f, "    \"speedup\": %.4f,\n",
               e2e_pipe_ms > 0.0 ? e2e_sync_ms / e2e_pipe_ms : 0.0);
  std::fprintf(f, "    \"acc_bitwise_equal\": %s\n",
               e2e_acc_equal ? "true" : "false");
  std::fprintf(f, "  }\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_data.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_data_report [--quick] [--out <path>]\n");
      return 2;
    }
  }

  data::SynthConfig sc;
  sc.name = "bench-data";
  sc.num_classes = quick ? 6 : 12;
  sc.train_per_class = quick ? 20 : 50;
  sc.resolution = quick ? 16 : 24;
  sc.seed = 29;
  const data::SynthClassification train(sc, "train");
  // Latency sized so the blocking read clearly dominates one sample's CPU
  // render: ~the shape of a cold page-cache read of a small JPEG.
  const int64_t delay_us = quick ? 300 : 800;
  const DelayedDataset train_io(train, delay_us);
  const int repeats = quick ? 2 : 4;
  const int64_t batch_size = 32;

  std::fprintf(stderr, "data pipeline report: %lld samples @ r%lld, batch %lld\n",
               static_cast<long long>(train.size()),
               static_cast<long long>(train.resolution()),
               static_cast<long long>(batch_size));

  data::LoaderOptions base;
  base.batch_size = batch_size;
  base.shuffle = true;
  base.seed = 31;

  std::vector<Result> results;
  {
    data::LoaderOptions o = base;
    sweep_config("plain", train, o, repeats, results);
    o.augment = true;
    sweep_config("augmented", train, o, repeats, results);
    sweep_config("augmented_io", train_io, o, repeats, results);
  }

  // Determinism: the pipeline must reproduce the sync loader bitwise.
  data::LoaderOptions det = base;
  const bool det_plain = epochs_bitwise_equal(train, det, 4);
  det.augment = true;
  const bool det_aug = epochs_bitwise_equal(train, det, 4);
  det.mix.mixup_alpha = 0.4f;
  det.mix.cutmix_alpha = 1.0f;
  const bool det_mixed = epochs_bitwise_equal(train, det, 4);
  std::fprintf(stderr, "  determinism: plain=%d augmented=%d mixed=%d\n",
               det_plain, det_aug, det_mixed);

  // End-to-end: one real training epoch, same seed, data_workers off/on.
  const data::SynthClassification test(sc, "test");
  const int64_t e2e_workers = quick ? 2 : 4;
  double e2e_sync_ms = 0.0, e2e_pipe_ms = 0.0;
  float acc_sync = 0.0f, acc_pipe = 0.0f;
  for (int pass = 0; pass < 2; ++pass) {
    auto model = models::make_model("mbv2-tiny", train.num_classes(), 77);
    train::TrainConfig tc;
    tc.epochs = 1;
    tc.batch_size = batch_size;
    tc.augment = true;
    tc.seed = 33;
    tc.data_workers = pass == 0 ? 0 : e2e_workers;
    const double t0 = now_s();
    const float acc =
        train::train_classifier(*model, train, test, tc).final_test_acc;
    const double ms = 1e3 * (now_s() - t0);
    if (pass == 0) {
      e2e_sync_ms = ms;
      acc_sync = acc;
    } else {
      e2e_pipe_ms = ms;
      acc_pipe = acc;
    }
  }
  const bool e2e_acc_equal =
      std::memcmp(&acc_sync, &acc_pipe, sizeof(float)) == 0;
  std::fprintf(stderr,
               "  end-to-end epoch: sync %.0f ms, pipeline(w%lld) %.0f ms, "
               "acc equal=%d\n",
               e2e_sync_ms, static_cast<long long>(e2e_workers), e2e_pipe_ms,
               e2e_acc_equal);

  write_json(out_path, quick, train.size(), train.resolution(), batch_size,
             delay_us, det_plain, det_aug, det_mixed, results, e2e_sync_ms,
             e2e_pipe_ms, e2e_workers, e2e_acc_equal);
  std::fprintf(stderr, "wrote %s (%zu results)\n", out_path.c_str(),
               results.size());
  return 0;
}
