// Reproduces Table III: Pascal-VOC object detection with a MobileNetV2-35
// backbone. The three rows differ only in how the backbone was pretrained:
//   Vanilla    — plain classification pretraining;
//   NetAug     — width-augmented supernet pretraining, base exported;
//   NetBooster — deep-giant pretraining; PLT ramps during detector
//                finetuning, then the backbone is contracted before the
//                final evaluation, so deployment cost equals vanilla.
#include <cstdio>

#include "baselines/netaug.h"
#include "bench_common.h"
#include "core/netbooster.h"
#include "data/synth_detection.h"
#include "detect/detect_trainer.h"

namespace {

using namespace nb;

constexpr double kPaperVanilla = 60.8;
constexpr double kPaperNetAug = 62.4;
constexpr double kPaperNetBooster = 62.6;

detect::DetectTrainConfig detect_config(const bench::Scale& scale) {
  detect::DetectTrainConfig c;
  c.epochs = scale.detect_epochs;
  c.batch_size = 16;
  c.lr = 0.02f;
  c.seed = scale.seed + 17;
  return c;
}

float detect_with_backbone(std::shared_ptr<models::MobileNetV2> backbone,
                           const data::SynthDetection& train_set,
                           const data::SynthDetection& test_set,
                           const bench::Scale& scale,
                           const std::function<void(int64_t, int64_t)>& hook =
                               nullptr) {
  Rng rng(scale.seed + 41, 5);
  detect::DetectorConfig dc;
  detect::TinyDetector detector(std::move(backbone), dc, rng);
  return detect::train_detector(detector, train_set, test_set,
                                detect_config(scale), hook);
}

}  // namespace

int main() {
  const bench::Scale scale = bench::read_scale();
  bench::print_header("Table III — Pascal VOC object detection (AP50)",
                      "NetBooster (DAC'23), Table III", scale);

  const int64_t res = data::scaled_resolution(160);
  const data::ClassificationTask pretask =
      data::make_task("synth-imagenet", res, scale.data_scale, scale.seed);

  data::DetectionConfig dc;
  dc.num_images =
      static_cast<int64_t>(240 * scale.data_scale / 0.35f);
  dc.resolution = 24;
  const data::SynthDetection det_train(dc, "train");
  const data::SynthDetection det_test(dc, "test");

  // -- Vanilla --------------------------------------------------------
  auto vanilla_backbone =
      models::make_model("mbv2-35", pretask.num_classes, scale.seed + 3);
  (void)train::train_classifier(*vanilla_backbone, *pretask.train,
                                *pretask.test,
                                bench::pretrain_config(scale));
  const float ap_vanilla =
      detect_with_backbone(vanilla_backbone, det_train, det_test, scale);
  bench::print_row("Vanilla", kPaperVanilla, 100.0 * ap_vanilla);

  // -- NetAug ---------------------------------------------------------
  Rng netaug_rng(scale.seed + 5, 19);
  baselines::NetAugModel supernet(
      models::model_config("mbv2-35", pretask.num_classes), 2.0f, netaug_rng);
  (void)baselines::train_netaug(supernet, *pretask.train, *pretask.test,
                                bench::pretrain_config(scale), {});
  const float ap_netaug = detect_with_backbone(supernet.export_base(),
                                               det_train, det_test, scale);
  bench::print_row("NetAug", kPaperNetAug, 100.0 * ap_netaug);

  // -- NetBooster -----------------------------------------------------
  auto boosted =
      models::make_model("mbv2-35", pretask.num_classes, scale.seed + 3);
  core::NetBoosterConfig nbc = bench::netbooster_config(scale);
  core::NetBooster nb(boosted, nbc);
  nb.train_giant(*pretask.train, *pretask.test);

  // PLT ramps across the first 25% of detector finetuning iterations.
  const int64_t steps_per_epoch =
      (det_train.size() + 16 - 1) / 16;
  core::PltScheduler scheduler(
      nb.expansion().plt_activations,
      std::max<int64_t>(1, scale.detect_epochs * steps_per_epoch / 4));

  Rng det_rng(scale.seed + 41, 5);
  detect::DetectorConfig det_cfg;
  detect::TinyDetector detector(nb.model_ptr(), det_cfg, det_rng);
  (void)detect::train_detector(
      detector, det_train, det_test, detect_config(scale),
      [&scheduler](int64_t step, int64_t) { scheduler.on_step(step); });

  // Contract the backbone, then measure the deployed detector.
  scheduler.finish();
  core::ExpansionResult expansion = nb.expansion();
  Rng contract_rng(scale.seed + 43, 7);
  const core::ContractionReport report = core::contract_network(
      nb.model(), expansion, /*verify=*/true, contract_rng);
  const float ap_netbooster = detect::evaluate_ap50(detector, det_test);
  bench::print_row("NetBooster", kPaperNetBooster, 100.0 * ap_netbooster,
                   "(contraction err " + std::to_string(report.max_error) + ")");

  bench::check_ordering("NetBooster > Vanilla (paper: +1.8 AP50)",
                        ap_netbooster > ap_vanilla);
  bench::check_ordering("NetBooster >= NetAug (paper: +0.2 AP50)",
                        ap_netbooster >= ap_netaug - 0.005f);
  bench::check_ordering("backbone contraction exact (err < 1e-3)",
                        report.max_error < 1e-3f);

  bench::print_footer();
  return 0;
}
