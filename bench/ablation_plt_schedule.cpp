// Extension ablation (no paper counterpart): the *shape* of the alpha ramp.
// The paper increases alpha "uniformly in each iteration" (linear); this
// bench compares that against a cosine ease-in/out and a 4-jump staircase at
// the same Ed, checking that the paper's linear choice is at least
// competitive — i.e., the method is robust to this design detail.
#include "bench_common.h"

int main() {
  using namespace nb;
  const bench::Scale scale = bench::read_scale();
  bench::print_header(
      "Ablation — PLT ramp shape (extension; paper uses linear)",
      "NetBooster (DAC'23), Sec. III-D non-linearity removal", scale);

  const int64_t res = data::scaled_resolution(144);
  const data::ClassificationTask task = data::make_task(
      "synth-imagenet", res, 0.6f * scale.data_scale, scale.seed);

  const float vanilla = bench::run_vanilla("mbv2-tiny", task, scale);
  bench::print_row("Vanilla", 51.20, 100.0 * vanilla);

  float linear_acc = 0.0f;
  float best_acc = 0.0f;
  for (const core::RampShape shape :
       {core::RampShape::linear, core::RampShape::cosine,
        core::RampShape::step}) {
    core::NetBoosterConfig cfg = bench::netbooster_config(scale);
    cfg.ramp_shape = shape;
    const core::NetBoosterResult r =
        bench::run_netbooster_full("mbv2-tiny", task, scale, nullptr, &cfg);
    bench::print_row(std::string("ramp = ") + core::to_string(shape),
                     shape == core::RampShape::linear ? 53.70 : 0.0,
                     100.0 * r.final_acc,
                     shape == core::RampShape::linear ? "(paper's choice)"
                                                      : "");
    if (shape == core::RampShape::linear) linear_acc = r.final_acc;
    best_acc = std::max(best_acc, r.final_acc);
  }

  bench::check_ordering("linear ramp beats vanilla (paper: +2.5)",
                        linear_acc > vanilla);
  bench::check_ordering(
      "linear is within 2 points of the best shape (robustness)",
      linear_acc >= best_acc - 0.02f);

  bench::print_footer();
  return 0;
}
