// Negative-compile probe for the clang thread-safety analysis
// (tools/check_thread_safety.sh). Compiled twice with
// -Wthread-safety -Werror:
//
//   * as-is               — must compile CLEAN (the locking is correct);
//   * -DNB_TS_PROBE_BREAK — must FAIL: the guarded member is touched and
//     an NB_REQUIRES function is called with no lock held, exactly the
//     bug class the annotations in src/runtime and src/tensor exist to
//     make unrepresentable.
//
// If the broken variant ever compiles, the analysis is silently off
// (wrong compiler, macro shim regressed, flags dropped) and the CI leg
// proves nothing — so the script fails loudly on that case. This file is
// deliberately outside the tools/*.cpp executable glob: it has no main
// and never links.
#include "util/thread_safety.h"

namespace nb::probe {

class Account {
 public:
  void deposit(int amount) NB_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    deposit_locked(amount);
  }

  int balance() const NB_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return balance_;
  }

  void deposit_locked(int amount) NB_REQUIRES(mu_) { balance_ += amount; }

 private:
  mutable Mutex mu_;
  int balance_ NB_GUARDED_BY(mu_) = 0;
};

int use(Account& account) {
  account.deposit(1);
#if defined(NB_TS_PROBE_BREAK)
  // The seeded violation: NB_REQUIRES callee invoked bare. Must be a
  // -Wthread-safety-analysis error.
  account.deposit_locked(1);
#endif
  return account.balance();
}

// The manual lock()/unlock() idiom Engine::worker_loop uses across its
// loop back-edge: legal as long as the lock state is consistent at every
// join point, which the analysis checks.
class Queue {
 public:
  void drain() NB_EXCLUDES(mu_) {
    mu_.lock();
    while (pending_ > 0) {
      while (pending_ == 0) cv_.wait(mu_);
      --pending_;
      mu_.unlock();
      // ...work outside the lock...
      mu_.lock();
    }
#if defined(NB_TS_PROBE_BREAK)
    // Second seeded violation: returning with the capability still held.
    return;
#endif
    mu_.unlock();
  }

 private:
  Mutex mu_;
  CondVar cv_;
  int pending_ NB_GUARDED_BY(mu_) = 0;
};

void use_queue(Queue& q) { q.drain(); }

}  // namespace nb::probe
