// Negative-compile probe for the clang thread-safety analysis
// (tools/check_thread_safety.sh). Compiled twice with
// -Wthread-safety -Werror:
//
//   * as-is               — must compile CLEAN (the locking is correct);
//   * -DNB_TS_PROBE_BREAK — must FAIL: the guarded member is touched and
//     an NB_REQUIRES function is called with no lock held, exactly the
//     bug class the annotations in src/runtime and src/tensor exist to
//     make unrepresentable.
//
// If the broken variant ever compiles, the analysis is silently off
// (wrong compiler, macro shim regressed, flags dropped) and the CI leg
// proves nothing — so the script fails loudly on that case. This file is
// deliberately outside the tools/*.cpp executable glob: it has no main
// and never links.
#include "util/thread_safety.h"

namespace nb::probe {

class Account {
 public:
  void deposit(int amount) NB_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    deposit_locked(amount);
  }

  int balance() const NB_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return balance_;
  }

  void deposit_locked(int amount) NB_REQUIRES(mu_) { balance_ += amount; }

 private:
  mutable Mutex mu_;
  int balance_ NB_GUARDED_BY(mu_) = 0;
};

int use(Account& account) {
  account.deposit(1);
#if defined(NB_TS_PROBE_BREAK)
  // The seeded violation: NB_REQUIRES callee invoked bare. Must be a
  // -Wthread-safety-analysis error.
  account.deposit_locked(1);
#endif
  return account.balance();
}

// The manual lock()/unlock() idiom Engine::worker_loop uses across its
// loop back-edge: legal as long as the lock state is consistent at every
// join point, which the analysis checks.
class Queue {
 public:
  void drain() NB_EXCLUDES(mu_) {
    mu_.lock();
    while (pending_ > 0) {
      while (pending_ == 0) cv_.wait(mu_);
      --pending_;
      mu_.unlock();
      // ...work outside the lock...
      mu_.lock();
    }
#if defined(NB_TS_PROBE_BREAK)
    // Second seeded violation: returning with the capability still held.
    return;
#endif
    mu_.unlock();
  }

 private:
  Mutex mu_;
  CondVar cv_;
  int pending_ NB_GUARDED_BY(mu_) = 0;
};

void use_queue(Queue& q) { q.drain(); }

// The PipelineLoader worker idiom (src/data/pipeline.cpp): claim a ticket
// under the lock, decode outside it, re-acquire to publish the batch. The
// publish — flipping guarded slot state and notifying the consumer — MUST
// happen with the lock held; doing it after the unlock is the pipeline's
// canonical race (a consumer could observe `ready` without the write to
// the batch being ordered before it).
class BatchPool {
 public:
  void worker() NB_EXCLUDES(mu_) {
    mu_.lock();
    while (tickets_ > 0) {
      --tickets_;
      mu_.unlock();
      // ...decode/augment into the claimed slot, outside the lock...
      mu_.lock();
      ++ready_;
#if defined(NB_TS_PROBE_BREAK)
      // Third seeded violation: publishing guarded pipeline state after
      // dropping the capability. Must be a -Wthread-safety-analysis error.
      mu_.unlock();
      ++ready_;
      mu_.lock();
#endif
      ready_cv_.notify_all();
    }
    mu_.unlock();
  }

 private:
  Mutex mu_;
  CondVar ready_cv_;
  int tickets_ NB_GUARDED_BY(mu_) = 0;
  int ready_ NB_GUARDED_BY(mu_) = 0;
};

void use_pool(BatchPool& pool) { pool.worker(); }

}  // namespace nb::probe
