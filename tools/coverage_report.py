#!/usr/bin/env python3
"""Per-subsystem line-coverage report over an lcov tracefile.

Reads the SF:/LF:/LH: records lcov emits, groups files by their src/
subsystem (src/runtime/engine.cpp -> runtime), prints a table, and
enforces a hard floor on src/runtime — the serving stack whose exactness
and shedding contracts the test suite exists to prove. A soft target is
printed for every subsystem so drift is visible before it becomes a
failure.

Usage:
  coverage_report.py <tracefile> [--strip-prefix PREFIX]
  coverage_report.py --self-test

The tracefile must already be filtered to first-party sources (the CI job
runs `lcov --extract ... 'src/*'` first); anything that still doesn't
start with src/ after --strip-prefix is ignored rather than miscounted.
"""

import argparse
import sys
import tempfile

RUNTIME_HARD_FLOOR = 0.60  # src/runtime below this fails the job
SOFT_TARGET = 0.80         # printed as aspiration for every subsystem


def parse_tracefile(path):
    """Return {source_path: (lines_found, lines_hit)}.

    LF:/LH: are authoritative when present; otherwise the DA: records of
    the block are counted directly (older lcov omits LF/LH with
    --rc settings some distros patch in).
    """
    per_file = {}
    current = None
    da_found = 0
    da_hit = 0
    lf = None
    lh = None
    with open(path, encoding="utf-8") as f:
        for raw in f:
            line = raw.strip()
            if line.startswith("SF:"):
                current = line[3:]
                da_found = da_hit = 0
                lf = lh = None
            elif line.startswith("DA:"):
                da_found += 1
                if int(line[3:].split(",")[1]) > 0:
                    da_hit += 1
            elif line.startswith("LF:"):
                lf = int(line[3:])
            elif line.startswith("LH:"):
                lh = int(line[3:])
            elif line == "end_of_record" and current is not None:
                found = lf if lf is not None else da_found
                hit = lh if lh is not None else da_hit
                prev = per_file.get(current, (0, 0))
                # Same file from several test binaries: keep the max —
                # lcov --capture over one build dir already merges, this
                # is belt-and-braces for concatenated tracefiles.
                per_file[current] = (max(prev[0], found), max(prev[1], hit))
                current = None
    return per_file


def subsystem_of(path):
    """src/runtime/engine.cpp -> 'runtime'; None for non-src files."""
    parts = path.split("/")
    if "src" not in parts:
        return None
    i = parts.index("src")
    if i == len(parts) - 1:
        return None  # the path ends at src/ itself
    if i + 1 == len(parts) - 1:
        return "(src root)"  # a file directly under src/
    return parts[i + 1]


def report(per_file, strip_prefix=""):
    groups = {}
    for path, (found, hit) in per_file.items():
        p = path
        if strip_prefix and p.startswith(strip_prefix):
            p = p[len(strip_prefix):]
        sub = subsystem_of(p)
        if sub is None:
            continue
        g = groups.setdefault(sub, [0, 0])
        g[0] += found
        g[1] += hit
    return groups


def print_table(groups):
    total_found = sum(g[0] for g in groups.values())
    total_hit = sum(g[1] for g in groups.values())
    print(f"{'subsystem':<16} {'lines':>8} {'hit':>8} {'coverage':>9}  note")
    print("-" * 60)
    for sub in sorted(groups):
        found, hit = groups[sub]
        pct = hit / found if found else 0.0
        note = "" if pct >= SOFT_TARGET else f"below soft target {SOFT_TARGET:.0%}"
        print(f"src/{sub:<12} {found:>8} {hit:>8} {pct:>8.1%}  {note}")
    pct = total_hit / total_found if total_found else 0.0
    print("-" * 60)
    print(f"{'total src/':<16} {total_found:>8} {total_hit:>8} {pct:>8.1%}")
    return total_found


def enforce(groups):
    found, hit = groups.get("runtime", (0, 0))
    if found == 0:
        print("FAIL: no src/runtime lines in the tracefile — "
              "instrumentation or extraction is broken", file=sys.stderr)
        return 1
    pct = hit / found
    if pct < RUNTIME_HARD_FLOOR:
        print(f"FAIL: src/runtime coverage {pct:.1%} is below the hard "
              f"floor {RUNTIME_HARD_FLOOR:.0%}", file=sys.stderr)
        return 1
    print(f"src/runtime {pct:.1%} >= hard floor {RUNTIME_HARD_FLOOR:.0%}: ok")
    return 0


SELF_TEST_TRACE = """\
TN:
SF:/work/src/runtime/engine.cpp
DA:1,5
DA:2,0
LF:10
LH:9
end_of_record
SF:/work/src/runtime/session.cpp
LF:10
LH:4
end_of_record
SF:/work/src/tensor/tensor.cpp
DA:1,1
DA:2,1
DA:3,0
end_of_record
SF:/usr/include/c++/12/vector
LF:100
LH:1
end_of_record
"""


def self_test():
    with tempfile.NamedTemporaryFile("w", suffix=".info", delete=False) as f:
        f.write(SELF_TEST_TRACE)
        path = f.name
    per_file = parse_tracefile(path)
    assert per_file["/work/src/runtime/engine.cpp"] == (10, 9), per_file
    assert per_file["/work/src/runtime/session.cpp"] == (10, 4), per_file
    # No LF/LH -> fall back to counting DA records.
    assert per_file["/work/src/tensor/tensor.cpp"] == (3, 2), per_file

    groups = report(per_file, strip_prefix="/work/")
    assert groups["runtime"] == [20, 13], groups
    assert groups["tensor"] == [3, 2], groups
    # System headers never make it into a subsystem bucket.
    assert len(groups) == 2, groups

    # 13/20 = 65% clears the 60% floor; drop engine.cpp hits and it fails.
    assert enforce(groups) == 0
    bad = {"runtime": [20, 8]}
    assert enforce(bad) == 1
    assert enforce({"tensor": [3, 2]}) == 1  # runtime missing entirely
    print("coverage_report self-test: ok")
    return 0


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("tracefile", nargs="?")
    ap.add_argument("--strip-prefix", default="")
    ap.add_argument("--self-test", action="store_true")
    args = ap.parse_args()
    if args.self_test:
        return self_test()
    if not args.tracefile:
        ap.error("tracefile required unless --self-test")
    per_file = parse_tracefile(args.tracefile)
    groups = report(per_file, strip_prefix=args.strip_prefix)
    if print_table(groups) == 0:
        print("FAIL: tracefile has no src/ lines", file=sys.stderr)
        return 1
    return enforce(groups)


if __name__ == "__main__":
    sys.exit(main())
