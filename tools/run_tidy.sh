#!/usr/bin/env bash
# clang-tidy over the production tree (src/), using the curated profile in
# .clang-tidy. Any finding fails the run (WarningsAsErrors: '*'), so the
# merged tree must stay tidy-clean; the report is written to a file the CI
# job uploads as an artifact.
#
# Usage:
#   tools/run_tidy.sh [build-dir]      # default build dir: build
#   tools/run_tidy.sh --self-test      # prove tidy catches a seeded
#                                      # bugprone-use-after-move, i.e. the
#                                      # green run is not vacuous
#
# Needs a configured build dir with compile_commands.json (the root
# CMakeLists exports it unconditionally). Exits 0 with a notice when
# clang-tidy is absent so gcc-only dev boxes aren't blocked — CI installs
# it and the job fails there if it goes missing.
set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
TIDY="${CLANG_TIDY:-clang-tidy}"

if ! command -v "$TIDY" >/dev/null 2>&1; then
  echo "run_tidy: ${TIDY} not found; skipping"
  exit 0
fi

if [ "${1:-}" = "--self-test" ]; then
  # Feed tidy a textbook use-after-move; if it comes back clean the tool,
  # profile, or WarningsAsErrors wiring is broken and every green run is
  # meaningless.
  tmp="$(mktemp -d)"
  trap 'rm -rf "$tmp"' EXIT
  cat > "${tmp}/use_after_move.cpp" <<'EOF'
#include <string>
#include <utility>
std::size_t probe() {
  std::string s = "seeded bugprone-use-after-move";
  std::string t = std::move(s);
  return s.size() + t.size();  // use of moved-from `s`
}
EOF
  if "$TIDY" --quiet "--config-file=${ROOT}/.clang-tidy" \
      "${tmp}/use_after_move.cpp" -- -std=c++20 >"${tmp}/out.txt" 2>&1; then
    echo "run_tidy: SELF-TEST FAILED — seeded use-after-move not flagged:"
    cat "${tmp}/out.txt"
    exit 1
  fi
  if ! grep -q "bugprone-use-after-move" "${tmp}/out.txt"; then
    echo "run_tidy: SELF-TEST FAILED — tidy errored without the expected check:"
    cat "${tmp}/out.txt"
    exit 1
  fi
  echo "run_tidy: self-test OK (seeded use-after-move rejected)"
  exit 0
fi

BUILD_DIR="${1:-${ROOT}/build}"
DB="${BUILD_DIR}/compile_commands.json"
if [ ! -f "$DB" ]; then
  echo "run_tidy: ${DB} not found — configure first:"
  echo "  cmake -B ${BUILD_DIR} -S ${ROOT}"
  exit 1
fi

REPORT="${TIDY_REPORT:-${BUILD_DIR}/clang-tidy-report.txt}"
: > "$REPORT"

# Only first-party TUs that are IN the compile database (generated/AVX2
# variants keep their per-file flags that way).
mapfile -t TUS < <(python3 - "$DB" "$ROOT" <<'EOF'
import json, os, sys
db, root = sys.argv[1], os.path.realpath(sys.argv[2])
src = os.path.join(root, "src") + os.sep
files = sorted({os.path.realpath(e["file"]) for e in json.load(open(db))})
for f in files:
    if f.startswith(src) and f.endswith(".cpp"):
        print(f)
EOF
)
if [ "${#TUS[@]}" -eq 0 ]; then
  echo "run_tidy: no src/ TUs found in ${DB}" | tee -a "$REPORT"
  exit 1
fi

echo "run_tidy: checking ${#TUS[@]} TUs (report: ${REPORT})"
fail=0
for tu in "${TUS[@]}"; do
  if ! "$TIDY" --quiet -p "$BUILD_DIR" "$tu" >>"$REPORT" 2>&1; then
    echo "run_tidy: findings in ${tu}"
    fail=1
  fi
done

if [ "$fail" -ne 0 ]; then
  echo "run_tidy: FAILED — see ${REPORT}"
  exit 1
fi
echo "run_tidy: OK (no findings)"
