// Scratch experiment runner used while tuning the bench recipes (not part of
// the bench suite): compares budget conventions for NetBooster vs vanilla on
// the failing Table-I rows. Build target `probe_budget`.
#include <cstdio>
#include <string>

#include "core/netbooster.h"
#include "data/task_registry.h"
#include "models/registry.h"
#include "train/trainer.h"

using namespace nb;

namespace {

float vanilla(const std::string& model_name, const data::ClassificationTask& t,
              int64_t epochs, uint64_t seed) {
  auto model = models::make_model(model_name, t.num_classes, seed);
  train::TrainConfig c;
  c.epochs = epochs;
  c.batch_size = 32;
  c.lr = 0.08f;
  c.seed = seed + 11;
  return train::train_classifier(*model, *t.train, *t.test, c).final_test_acc;
}

core::NetBoosterResult booster(const std::string& model_name,
                               const data::ClassificationTask& t,
                               int64_t giant_epochs, int64_t tune_epochs,
                               float giant_lr, int64_t warmup, float ema,
                               uint64_t seed) {
  auto model = models::make_model(model_name, t.num_classes, seed);
  core::NetBoosterConfig c;
  c.giant.epochs = giant_epochs;
  c.giant.batch_size = 32;
  c.giant.lr = giant_lr;
  c.giant.warmup_epochs = warmup;
  c.giant.ema_decay = ema;
  c.giant.seed = seed + 11;
  c.tune = c.giant;
  c.tune.epochs = tune_epochs;
  c.tune.lr = 0.03f;
  c.tune.warmup_epochs = 0;
  c.plt_fraction = 0.25f;
  return core::run_netbooster(model, *t.train, *t.test, c);
}

}  // namespace

int main() {
  for (const std::string name : {"mcunet", "mbv2-50"}) {
    const data::ClassificationTask task =
        data::make_task("synth-imagenet", name == "mcunet" ? 26 : 24, 0.45f, 1);
    const float v8 = vanilla(name, task, 8, 4);
    std::printf("%-8s vanilla(8ep) = %.2f\n", name.c_str(), 100 * v8);
    std::fflush(stdout);

    struct Cfg { const char* label; int64_t g, t, w; float lr, ema; };
    const Cfg cfgs[] = {
        {"equal  g5t3", 5, 3, 0, 0.08f, 0.0f},
        {"paper  g8t5", 8, 5, 0, 0.08f, 0.0f},
        {"paper+warm",  8, 5, 1, 0.08f, 0.0f},
        {"paper+ema",   8, 5, 0, 0.08f, 0.97f},
    };
    for (const Cfg& c : cfgs) {
      const auto r = booster(name, task, c.g, c.t, c.lr, c.w, c.ema, 4);
      std::printf("%-8s nb %-12s giant=%.2f final=%.2f  (delta %+0.2f)\n",
                  name.c_str(), c.label, 100 * r.expanded_acc,
                  100 * r.final_acc, 100 * (r.final_acc - v8));
      std::fflush(stdout);
    }
  }
  return 0;
}
