// Deployment-artifact inspector and inference driver: loads an NBFM file,
// prints the program summary and the memory planner's arena accounting,
// then times inference on the chosen backend.
//
// Usage: flat_infer <model.nbfm> [--batch N] [--res R] [--backend fast|reference]
//                   [--repeat K]
//   --res defaults to the resolution recorded in the artifact header.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "export/flat_model.h"
#include "export/infer_plan.h"
#include "tensor/rng.h"
#include "tensor/tensor.h"
#include "tensor/tensor_ops.h"

using namespace nb;
using namespace nb::exporter;

int main(int argc, char** argv) {
  std::string path;
  int64_t batch = 1;
  int64_t res = 0;
  int repeat = 10;
  Backend backend = Backend::fast;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--batch" && i + 1 < argc) {
      batch = std::atoll(argv[++i]);
    } else if (arg == "--res" && i + 1 < argc) {
      res = std::atoll(argv[++i]);
    } else if (arg == "--repeat" && i + 1 < argc) {
      repeat = std::atoi(argv[++i]);
    } else if (arg == "--backend" && i + 1 < argc) {
      const std::string b = argv[++i];
      if (b == "fast") {
        backend = Backend::fast;
      } else if (b == "reference") {
        backend = Backend::reference;
      } else {
        std::fprintf(stderr, "unknown backend: %s\n", b.c_str());
        return 2;
      }
    } else if (path.empty() && arg[0] != '-') {
      path = arg;
    } else {
      std::fprintf(stderr,
                   "usage: flat_infer <model.nbfm> [--batch N] [--res R] "
                   "[--backend fast|reference] [--repeat K]\n");
      return 2;
    }
  }
  if (path.empty()) {
    std::fprintf(stderr, "flat_infer: no model file given\n");
    return 2;
  }

  const FlatModel model = FlatModel::load(path);
  if (res == 0) res = model.input_resolution();
  if (res == 0) {
    std::fprintf(stderr,
                 "flat_infer: artifact has no recorded resolution; pass "
                 "--res\n");
    return 2;
  }
  const int64_t channels = model.input_channels();
  std::printf("model:        %s\n", path.c_str());
  std::printf("ops:          %lld\n",
              static_cast<long long>(model.ops().size()));
  std::printf("weight bytes: %lld\n",
              static_cast<long long>(model.weight_bytes()));
  std::printf("input:        [%lld, %lld, %lld, %lld]\n",
              static_cast<long long>(batch), static_cast<long long>(channels),
              static_cast<long long>(res), static_cast<long long>(res));

  const InferPlan plan(model, batch, channels, res, res);
  const PlanStats& st = plan.stats();
  std::printf("planner:      arena %lld B (peak live %lld B, no-reuse %lld B, "
              "%lld save slot%s)\n",
              static_cast<long long>(st.arena_bytes()),
              static_cast<long long>(st.peak_live_bytes()),
              static_cast<long long>(st.no_reuse_bytes()),
              static_cast<long long>(st.save_depth),
              st.save_depth == 1 ? "" : "s");
  std::printf("weight cache: %lld B (dequantized float panels)\n",
              static_cast<long long>(st.weight_cache_floats * 4));

  Rng rng(1);
  Tensor x({batch, channels, res, res});
  fill_uniform(x, rng, -1.0f, 1.0f);

  Tensor y = backend == Backend::fast ? plan.run(x)
                                      : model.forward(x, Backend::reference);
  double best = 1e100;
  for (int r = 0; r < repeat; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    y = backend == Backend::fast ? plan.run(x)
                                 : model.forward(x, Backend::reference);
    const double s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    best = std::min(best, s);
  }
  const std::vector<int64_t> pred = y.dim() == 2 ? argmax_rows(y)
                                                 : std::vector<int64_t>{};
  std::printf("backend:      %s\n",
              backend == Backend::fast ? "fast" : "reference");
  std::printf("latency:      %.3f ms (best of %d), %.1f images/s\n",
              best * 1e3, repeat, static_cast<double>(batch) / best);
  if (!pred.empty()) {
    std::printf("argmax[0]:    %lld\n", static_cast<long long>(pred[0]));
  }
  return 0;
}
