// Deployment-artifact inspector and inference driver: loads an NBFM file,
// prints the program summary and the memory planner's arena accounting,
// then times inference on the chosen backend. With --sessions N it runs N
// concurrent serving streams (one runtime::Session per thread, all sharing
// one CompiledModel's weight panels) and reports per-session latency
// percentiles plus aggregate throughput.
//
// Usage: flat_infer <model.nbfm> [--batch N] [--res R]
//                   [--backend fast|int8|reference] [--repeat K]
//                   [--sessions N] [--threads T] [--verify]
//   --verify   runs the static plan verifier (export/plan_verify.h) over
//              the built plan and prints each proven invariant (dataflow,
//              live-range disjointness, bounds, epilogue legality, exact
//              arena(batch) == batch*arena(1) scaling); exits nonzero if
//              any obligation fails.
//   --res      defaults to the resolution recorded in the artifact header.
//   --backend  fast (float over dequantized panels), int8 (true integer
//              path: quantized activations + packed s8 GEMM with fused
//              requantization; requires a calibrated artifact), or the
//              reference interpreter. int8 works in both plan and
//              --sessions modes and prints the dispatched s8 kernel.
//   --batch    plans the batched one-GEMM-per-conv lowering at this size;
//              for N > 1 the fast backend also times the N images run one
//              at a time through a batch-1 plan and prints per-image vs
//              per-batch latency, the batched speedup, and a bitwise
//              cross-check of the two outputs.
//   --sessions closed-loop concurrent streams (default 1 = single-stream
//              plan timing, the pre-serving behavior).
//   --threads  shared-pool size for the process (default: NB_THREADS
//              semantics). Multi-session runs execute serially per stream
//              regardless, so streams scale without pool contention.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "export/flat_model.h"
#include "export/infer_plan.h"
#include "export/plan_verify.h"
#include "runtime/compiled_model.h"
#include "runtime/percentile.h"
#include "runtime/session.h"
#include "tensor/gemm_s8.h"
#include "tensor/rng.h"
#include "tensor/tensor.h"
#include "tensor/tensor_ops.h"
#include "tensor/threadpool.h"

using namespace nb;
using namespace nb::exporter;
using nb::runtime::percentile_sorted;

int main(int argc, char** argv) {
  std::string path;
  int64_t batch = 1;
  int64_t res = 0;
  int repeat = 10;
  int64_t sessions = 1;
  int64_t threads = 0;  // 0 = leave the global pool as NB_THREADS sized it
  bool verify = false;
  Backend backend = Backend::fast;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--batch" && i + 1 < argc) {
      batch = std::atoll(argv[++i]);
    } else if (arg == "--verify") {
      verify = true;
    } else if (arg == "--res" && i + 1 < argc) {
      res = std::atoll(argv[++i]);
    } else if (arg == "--repeat" && i + 1 < argc) {
      repeat = std::atoi(argv[++i]);
    } else if (arg == "--sessions" && i + 1 < argc) {
      sessions = std::atoll(argv[++i]);
    } else if (arg == "--threads" && i + 1 < argc) {
      threads = std::atoll(argv[++i]);
    } else if (arg == "--backend" && i + 1 < argc) {
      const std::string b = argv[++i];
      if (b == "fast") {
        backend = Backend::fast;
      } else if (b == "int8") {
        backend = Backend::int8;
      } else if (b == "reference") {
        backend = Backend::reference;
      } else {
        std::fprintf(stderr, "unknown backend: %s\n", b.c_str());
        return 2;
      }
    } else if (path.empty() && arg[0] != '-') {
      path = arg;
    } else {
      std::fprintf(stderr,
                   "usage: flat_infer <model.nbfm> [--batch N] [--res R] "
                   "[--backend fast|int8|reference] [--repeat K] "
                   "[--sessions N] [--threads T] [--verify]\n");
      return 2;
    }
  }
  if (path.empty()) {
    std::fprintf(stderr, "flat_infer: no model file given\n");
    return 2;
  }
  if (sessions < 1 || repeat < 1) {
    std::fprintf(stderr, "flat_infer: --sessions and --repeat must be >= 1\n");
    return 2;
  }
  if (sessions > 1 && backend == Backend::reference) {
    std::fprintf(stderr,
                 "flat_infer: --sessions drives the serving runtime; "
                 "--backend reference is not supported with it\n");
    return 2;
  }

  const FlatModel model = FlatModel::load(path);
  if (res == 0) res = model.input_resolution();
  if (res == 0) {
    std::fprintf(stderr,
                 "flat_infer: artifact has no recorded resolution; pass "
                 "--res\n");
    return 2;
  }
  const int64_t channels = model.input_channels();
  std::printf("model:        %s\n", path.c_str());
  std::printf("ops:          %lld\n",
              static_cast<long long>(model.ops().size()));
  std::printf("weight bytes: %lld\n",
              static_cast<long long>(model.weight_bytes()));
  std::printf("input:        [%lld, %lld, %lld, %lld]\n",
              static_cast<long long>(batch), static_cast<long long>(channels),
              static_cast<long long>(res), static_cast<long long>(res));

  // Optional shared-pool resize for this process (workers = threads - 1).
  std::unique_ptr<ThreadPool> pool;
  if (threads > 0) {
    pool = std::make_unique<ThreadPool>(threads - 1);
    ThreadPool::set_global_override(pool.get());
  }

  // Compile the panels once; the inspection plan borrows them, and in
  // serving mode CompiledModel::compile adopts the same object. The plan is
  // built for the requested backend (reference gets a fast plan purely for
  // the arena printout — plans reject Backend::reference by design).
  const Backend plan_backend =
      backend == Backend::reference ? Backend::fast : backend;
  const InferPlan plan(model, model.compiled_panels(), batch, channels, res,
                       res, plan_backend);
  const PlanStats& st = plan.stats();
  std::printf("planner:      arena %lld B (peak live %lld B, no-reuse %lld B, "
              "%lld save slot%s)\n",
              static_cast<long long>(st.arena_bytes()),
              static_cast<long long>(st.peak_live_bytes()),
              static_cast<long long>(st.no_reuse_bytes()),
              static_cast<long long>(st.save_depth),
              st.save_depth == 1 ? "" : "s");
  std::printf("weight cache: %lld B (dequantized float panels, shared across "
              "sessions)\n",
              static_cast<long long>(st.weight_cache_floats * 4));
  if (plan_backend == Backend::int8) {
    std::printf("int8 arena:   %lld B (quantized activations + byte im2col; "
                "kernel %s)\n",
                static_cast<long long>(st.arena_int8_bytes),
                gemm_s8_kernel_name());
  }

  if (verify) {
    // Static proof over the built plan's tables, plus the exact-batch-
    // scaling check against a freshly planned batch-1 twin.
    VerifyReport report = verify_plan(plan);
    if (report.ok() && batch > 1) {
      const InferPlan unit(model, model.compiled_panels(), 1, channels, res,
                           res, plan_backend);
      VerifyReport scale =
          verify_batch_scaling(plan_tables(plan), plan_tables(unit));
      report.proved.insert(report.proved.end(), scale.proved.begin(),
                           scale.proved.end());
      report.findings.insert(report.findings.end(), scale.findings.begin(),
                             scale.findings.end());
    }
    if (!report.ok()) {
      for (const PlanFinding& f : report.findings) {
        std::fprintf(stderr, "verify:       FAILED [%s%s%s] %s\n",
                     to_string(f.diag), f.step >= 0 ? " @ step " : "",
                     f.step >= 0 ? std::to_string(f.step).c_str() : "",
                     f.detail.c_str());
      }
      ThreadPool::set_global_override(nullptr);
      return 1;
    }
    for (const std::string& p : report.proved) {
      std::printf("verify:       proven — %s\n", p.c_str());
    }
  }

  Rng rng(1);
  Tensor x({batch, channels, res, res});
  fill_uniform(x, rng, -1.0f, 1.0f);

  if (sessions > 1) {
    // Serving mode: N closed-loop streams over one shared CompiledModel.
    auto compiled = runtime::CompiledModel::compile(model, backend);
    runtime::SessionOptions opts;
    opts.threads = runtime::SessionOptions::Threads::serial;
    std::vector<std::vector<double>> lat_ms(static_cast<size_t>(sessions));
    std::vector<std::thread> streams;
    const auto t0 = std::chrono::steady_clock::now();
    for (int64_t sidx = 0; sidx < sessions; ++sidx) {
      streams.emplace_back([&, sidx] {
        runtime::Session session(compiled, opts);
        Tensor input = x.clone();
        (void)session.run(input);  // warmup / plan build
        auto& lat = lat_ms[static_cast<size_t>(sidx)];
        lat.reserve(static_cast<size_t>(repeat));
        for (int r = 0; r < repeat; ++r) {
          const auto s0 = std::chrono::steady_clock::now();
          (void)session.run(input);
          lat.push_back(std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - s0)
                            .count());
        }
      });
    }
    for (std::thread& t : streams) t.join();
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    std::printf("sessions:     %lld concurrent (serial per-stream, shared "
                "weight panels: %lld B once)\n",
                static_cast<long long>(sessions),
                static_cast<long long>(compiled->weight_panel_bytes()));
    std::vector<double> all;
    for (int64_t sidx = 0; sidx < sessions; ++sidx) {
      auto& lat = lat_ms[static_cast<size_t>(sidx)];
      std::sort(lat.begin(), lat.end());
      all.insert(all.end(), lat.begin(), lat.end());
      std::printf(
          "  session %lld: p50 %.3f ms  p90 %.3f ms  p99 %.3f ms (%d runs)\n",
          static_cast<long long>(sidx), percentile_sorted(lat, 0.50),
          percentile_sorted(lat, 0.90), percentile_sorted(lat, 0.99), repeat);
    }
    std::sort(all.begin(), all.end());
    const double images =
        static_cast<double>(sessions) * repeat * static_cast<double>(batch);
    std::printf("aggregate:    p50 %.3f ms  p99 %.3f ms  %.1f images/s\n",
                percentile_sorted(all, 0.50), percentile_sorted(all, 0.99),
                images / wall);
    ThreadPool::set_global_override(nullptr);
    return 0;
  }

  const bool planned = backend != Backend::reference;
  Tensor y = planned ? plan.run(x) : model.forward(x, Backend::reference);
  double best = 1e100;
  for (int r = 0; r < repeat; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    y = planned ? plan.run(x) : model.forward(x, Backend::reference);
    const double s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    best = std::min(best, s);
  }
  const std::vector<int64_t> pred = y.dim() == 2 ? argmax_rows(y)
                                                 : std::vector<int64_t>{};
  std::printf("backend:      %s\n", backend == Backend::fast   ? "fast"
                                    : backend == Backend::int8 ? "int8"
                                                               : "reference");
  std::printf("latency:      %.3f ms per batch of %lld (best of %d), "
              "%.3f ms per image, %.1f images/s\n",
              best * 1e3, static_cast<long long>(batch), repeat,
              best * 1e3 / static_cast<double>(batch),
              static_cast<double>(batch) / best);

  if (batch > 1 && planned) {
    // Per-image sequential baseline over a batch-1 plan: what the same
    // images cost without the batched one-GEMM-per-conv lowering — the
    // amortization the CLI exists to make inspectable. Runs on the same
    // backend as the batched plan, so for int8 the bitwise cross-check also
    // witnesses the integer path's batched-vs-sequential exactness.
    const InferPlan plan1(model, model.compiled_panels(), 1, channels, res,
                          res, plan_backend);
    Tensor xi({1, channels, res, res});
    const int64_t chw = xi.numel();
    std::vector<Tensor> rows;
    double seq_best = 1e100;
    for (int r = 0; r < repeat; ++r) {
      rows.clear();
      const auto t0 = std::chrono::steady_clock::now();
      for (int64_t i = 0; i < batch; ++i) {
        std::memcpy(xi.data(), x.data() + i * chw,
                    static_cast<size_t>(chw) * sizeof(float));
        rows.push_back(plan1.run(xi));
      }
      const double s =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      seq_best = std::min(seq_best, s);
    }
    bool bitwise = true;
    const int64_t row = y.numel() / batch;
    for (int64_t i = 0; i < batch && bitwise; ++i) {
      bitwise = std::memcmp(y.data() + i * row,
                            rows[static_cast<size_t>(i)].data(),
                            static_cast<size_t>(row) * sizeof(float)) == 0;
    }
    std::printf("sequential:   %.3f ms for %lld images one at a time "
                "(%.3f ms per image)\n",
                seq_best * 1e3, static_cast<long long>(batch),
                seq_best * 1e3 / static_cast<double>(batch));
    std::printf("batched:      %.2fx vs sequential, outputs %s\n",
                seq_best / best,
                bitwise ? "bitwise identical" : "DIVERGED (bug!)");
  }
  if (!pred.empty()) {
    std::printf("argmax[0]:    %lld\n", static_cast<long long>(pred[0]));
  }
  ThreadPool::set_global_override(nullptr);
  return 0;
}
