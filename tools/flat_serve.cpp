// Load generator for the serving Engine, in two modes:
//
//   closed-loop (default) — N client threads each submit one image and
//     wait for the future: measures capacity (offered rate collapses to
//     whatever the engine sustains, queues stay short).
//   open-loop (--open-loop) — seeded Poisson arrivals at a fixed offered
//     rate with optional burst replay, per-request SLO deadlines and a
//     priority-lane share: measures overload behavior (goodput, typed shed
//     breakdown, tail latency of ACCEPTED work). Same --seed, same
//     schedule, on every machine — overload runs are comparable across
//     commits.
//
// Usage: flat_serve <model.nbfm> | --synth [--mix]
//          [--clients N] [--seconds S] [--max-batch B] [--max-wait-us U]
//          [--workers W] [--res R] [--queue-depth D] [--deadline-ms MS]
//          [--open-loop --rate R [--seed S] [--slo-ms MS]
//           [--burst START:DUR:MULT]... [--high-lane-frac F]]
//          [--geo-mix GEO:W,GEO:W,...] [--buckets GEO,GEO,...]
//          [--bucket-waste F] [--drop-on-shutdown] [--save <path>]
//
//   --clients         closed-loop clients (default 8)
//   --seconds         measurement window (default 3)
//   --max-batch       batching policy: largest coalesced batch (default 8)
//   --max-wait-us     how long the queue head waits for peers (default 1000)
//   --workers         engine dispatcher threads (default 1)
//   --queue-depth     per-model admission bound (default 256)
//   --deadline-ms     per-model default deadline (default none)
//   --open-loop       switch to open-loop arrivals
//   --rate            open-loop offered load, images/s (default 200)
//   --seed            schedule seed (default 1); same seed = same schedule
//   --slo-ms          per-request deadline anchored to the scheduled
//                     arrival (default none)
//   --burst           rate multiplier window, e.g. 1.0:0.5:4 = 4x offered
//                     load for 0.5 s starting at t=1 s; repeatable
//   --high-lane-frac  fraction of arrivals on Lane::high (default 0)
//   --geo-mix         weighted input-geometry mix, e.g.
//                     30x32:1,31x32:1,32:2 — every stream draws each
//                     request's geometry from this distribution (GEO is
//                     HxW or a square R). Overrides --res.
//   --buckets         resolution-bucket ladder applied to every model,
//                     e.g. 32,64x48,96 (GEO as above, strictly increasing
//                     in both dims): same-rung requests of different
//                     geometries are padded and batched together
//   --bucket-waste    bucket waste cap, max padded/exact area ratio
//                     (default 1.5)
//   --drop-on-shutdown  resolve still-queued requests with ShuttingDown
//                     instead of draining them
//   --synth           serve a synthetic MobileNetV2-flat (w0.35, r96, 100
//                     classes) instead of a file
//   --mix             with --synth: serve TWO models (r32 tiny-serving +
//                     r96) with a 3:1 open-loop traffic mix
//   --save <path>     with --synth: also write the artifact as NBFM
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "export/flat_model.h"
#include "export/flat_synth.h"
#include "runtime/compiled_model.h"
#include "runtime/engine.h"
#include "runtime/loadgen.h"
#include "tensor/rng.h"
#include "tensor/tensor.h"
#include "tensor/tensor_ops.h"

using namespace nb;
using namespace nb::runtime;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: flat_serve <model.nbfm> | --synth [--mix] [--clients N] "
      "[--seconds S]\n"
      "         [--max-batch B] [--max-wait-us U] [--workers W] [--res R]\n"
      "         [--queue-depth D] [--deadline-ms MS] [--drop-on-shutdown]\n"
      "         [--open-loop --rate R [--seed S] [--slo-ms MS]\n"
      "          [--burst START:DUR:MULT]... [--high-lane-frac F]]\n"
      "         [--geo-mix GEO:W,GEO:W,...] [--buckets GEO,GEO,...]\n"
      "         [--bucket-waste F] [--save <path>]\n");
  return 2;
}

/// GEO is "HxW" or a square "R".
bool parse_geometry(const std::string& s, int64_t& h, int64_t& w) {
  const size_t x = s.find('x');
  if (x == std::string::npos) {
    h = w = std::atoll(s.c_str());
  } else {
    h = std::atoll(s.substr(0, x).c_str());
    w = std::atoll(s.substr(x + 1).c_str());
  }
  return h > 0 && w > 0;
}

/// "GEO:W,GEO:W,..." -> parallel geometry / weight lists.
bool parse_geo_mix(const std::string& s,
                   std::vector<std::pair<int64_t, int64_t>>& geos,
                   std::vector<double>& weights) {
  size_t pos = 0;
  while (pos < s.size()) {
    size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    const std::string item = s.substr(pos, comma - pos);
    const size_t colon = item.rfind(':');
    if (colon == std::string::npos) return false;
    int64_t h = 0, w = 0;
    if (!parse_geometry(item.substr(0, colon), h, w)) return false;
    const double weight = std::atof(item.substr(colon + 1).c_str());
    if (weight <= 0) return false;
    geos.emplace_back(h, w);
    weights.push_back(weight);
    pos = comma + 1;
  }
  return !geos.empty();
}

/// "GEO,GEO,..." -> bucket ladder rungs (validated at register time).
bool parse_buckets(const std::string& s, std::vector<BucketSpec>& ladder) {
  size_t pos = 0;
  while (pos < s.size()) {
    size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    int64_t h = 0, w = 0;
    if (!parse_geometry(s.substr(pos, comma - pos), h, w)) return false;
    ladder.push_back({h, w});
    pos = comma + 1;
  }
  return !ladder.empty();
}

bool parse_burst(const std::string& s, BurstSpec& out) {
  const size_t a = s.find(':');
  const size_t b = s.find(':', a + 1);
  if (a == std::string::npos || b == std::string::npos) return false;
  out.start_s = std::atof(s.substr(0, a).c_str());
  out.duration_s = std::atof(s.substr(a + 1, b - a - 1).c_str());
  out.multiplier = std::atof(s.substr(b + 1).c_str());
  return out.duration_s > 0 && out.multiplier > 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  std::string save_path;
  bool synth = false;
  bool mix = false;
  bool open_loop = false;
  bool drop_on_shutdown = false;
  int64_t clients = 8;
  double seconds = 3.0;
  int64_t res = 0;
  double rate = 200.0;
  uint64_t seed = 1;
  int64_t slo_ms = 0;
  double high_lane_frac = 0.0;
  std::vector<BurstSpec> bursts;
  std::vector<std::pair<int64_t, int64_t>> geo_mix;
  std::vector<double> geo_weights;
  EngineOptions opts;
  opts.batching.max_batch = 8;
  opts.batching.max_wait_us = 1000;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--clients" && i + 1 < argc) {
      clients = std::atoll(argv[++i]);
    } else if (arg == "--seconds" && i + 1 < argc) {
      seconds = std::atof(argv[++i]);
    } else if (arg == "--max-batch" && i + 1 < argc) {
      opts.batching.max_batch = std::atoll(argv[++i]);
    } else if (arg == "--max-wait-us" && i + 1 < argc) {
      opts.batching.max_wait_us = std::atoll(argv[++i]);
    } else if (arg == "--workers" && i + 1 < argc) {
      opts.workers = std::atoll(argv[++i]);
    } else if (arg == "--res" && i + 1 < argc) {
      res = std::atoll(argv[++i]);
    } else if (arg == "--queue-depth" && i + 1 < argc) {
      opts.default_qos.max_queue_depth = std::atoll(argv[++i]);
    } else if (arg == "--deadline-ms" && i + 1 < argc) {
      opts.default_qos.default_deadline_us = std::atoll(argv[++i]) * 1000;
    } else if (arg == "--open-loop") {
      open_loop = true;
    } else if (arg == "--rate" && i + 1 < argc) {
      rate = std::atof(argv[++i]);
    } else if (arg == "--seed" && i + 1 < argc) {
      seed = static_cast<uint64_t>(std::atoll(argv[++i]));
    } else if (arg == "--slo-ms" && i + 1 < argc) {
      slo_ms = std::atoll(argv[++i]);
    } else if (arg == "--high-lane-frac" && i + 1 < argc) {
      high_lane_frac = std::atof(argv[++i]);
    } else if (arg == "--burst" && i + 1 < argc) {
      BurstSpec b;
      if (!parse_burst(argv[++i], b)) {
        std::fprintf(stderr, "flat_serve: bad --burst '%s' "
                     "(want START:DUR:MULT)\n", argv[i]);
        return 2;
      }
      bursts.push_back(b);
    } else if (arg == "--geo-mix" && i + 1 < argc) {
      if (!parse_geo_mix(argv[++i], geo_mix, geo_weights)) {
        std::fprintf(stderr, "flat_serve: bad --geo-mix '%s' "
                     "(want GEO:W,GEO:W,... with GEO = HxW or R)\n",
                     argv[i]);
        return 2;
      }
    } else if (arg == "--buckets" && i + 1 < argc) {
      if (!parse_buckets(argv[++i], opts.default_qos.bucketing.ladder)) {
        std::fprintf(stderr, "flat_serve: bad --buckets '%s' "
                     "(want GEO,GEO,... with GEO = HxW or R)\n", argv[i]);
        return 2;
      }
    } else if (arg == "--bucket-waste" && i + 1 < argc) {
      opts.default_qos.bucketing.max_pad_ratio = std::atof(argv[++i]);
    } else if (arg == "--drop-on-shutdown") {
      drop_on_shutdown = true;
    } else if (arg == "--synth") {
      synth = true;
    } else if (arg == "--mix") {
      mix = true;
    } else if (arg == "--save" && i + 1 < argc) {
      save_path = argv[++i];
    } else if (path.empty() && arg[0] != '-') {
      path = arg;
    } else {
      return usage();
    }
  }
  if (path.empty() && !synth) {
    std::fprintf(stderr, "flat_serve: pass a model file or --synth\n");
    return 2;
  }
  if (mix && !synth) {
    std::fprintf(stderr, "flat_serve: --mix requires --synth\n");
    return 2;
  }
  if (clients < 1) {
    std::fprintf(stderr, "flat_serve: --clients must be >= 1\n");
    return 2;
  }
  if (drop_on_shutdown) opts.on_shutdown = DrainPolicy::drop;

  // Resolve the model (or the --mix pair) into registry entries.
  struct Served {
    std::string name;
    std::shared_ptr<const CompiledModel> model;
    double weight;
  };
  std::vector<Served> served;
  if (synth) {
    Rng rng(20260730);
    exporter::FlatModel flat =
        exporter::synth::make_mbv2_flat(rng, 0.35f, 96, 100);
    if (!save_path.empty()) {
      flat.save(save_path);
      std::printf("saved synthetic artifact to %s\n", save_path.c_str());
    }
    if (mix) {
      Rng rng32(20260731);
      served.push_back({"mbv2_r32",
                        CompiledModel::compile(exporter::synth::make_mbv2_flat(
                            rng32, 0.35f, 32, 100)),
                        3.0});
      served.push_back({"mbv2_r96", CompiledModel::compile(std::move(flat)),
                        1.0});
    } else {
      served.push_back(
          {"m", CompiledModel::compile(std::move(flat)), 1.0});
    }
  } else {
    served.push_back({"m", CompiledModel::compile_file(path), 1.0});
  }

  Engine engine(opts);
  std::vector<ModelTraffic> traffic;
  for (const Served& s : served) {
    engine.register_model(s.name, s.model);
    int64_t r = res != 0 ? res : s.model->input_resolution();
    if (r == 0) {
      std::fprintf(stderr,
                   "flat_serve: artifact has no recorded resolution; pass "
                   "--res\n");
      return 2;
    }
    Rng rng(77);
    Tensor image({s.model->input_channels(), r, r});
    fill_uniform(image, rng, -1.0f, 1.0f);
    std::vector<Tensor> geo_images;
    for (const auto& [gh, gw] : geo_mix) {
      Tensor gi({s.model->input_channels(), gh, gw});
      fill_uniform(gi, rng, -1.0f, 1.0f);
      geo_images.push_back(std::move(gi));
    }
    traffic.push_back({s.name, std::move(image), std::move(geo_images)});
    std::printf("model %-9s %s (%lld ops, %lld B shared weight panels)\n",
                s.name.c_str(),
                synth ? "synthetic mbv2-flat w0.35" : path.c_str(),
                static_cast<long long>(s.model->op_count()),
                static_cast<long long>(s.model->weight_panel_bytes()));
  }
  std::printf("policy:        max_batch %lld, max_wait %lld us, %lld "
              "worker%s, queue depth %lld%s\n",
              static_cast<long long>(opts.batching.max_batch),
              static_cast<long long>(opts.batching.max_wait_us),
              static_cast<long long>(opts.workers),
              opts.workers == 1 ? "" : "s",
              static_cast<long long>(opts.default_qos.max_queue_depth),
              drop_on_shutdown ? ", drop-on-shutdown" : "");
  if (opts.default_qos.bucketing.enabled()) {
    std::printf("buckets:      ");
    for (const BucketSpec& b : opts.default_qos.bucketing.ladder) {
      std::printf(" %lldx%lld", static_cast<long long>(b.h),
                  static_cast<long long>(b.w));
    }
    std::printf(" (waste cap %.2fx)\n",
                opts.default_qos.bucketing.max_pad_ratio);
  }
  if (!geo_mix.empty()) {
    std::printf("geo mix:      ");
    for (size_t g = 0; g < geo_mix.size(); ++g) {
      std::printf(" %lldx%lld:%.3g",
                  static_cast<long long>(geo_mix[g].first),
                  static_cast<long long>(geo_mix[g].second), geo_weights[g]);
    }
    std::printf("\n");
  }

  if (open_loop) {
    OpenLoopSpec spec;
    spec.rate_per_s = rate;
    spec.duration_s = seconds;
    spec.seed = seed;
    spec.bursts = bursts;
    spec.high_lane_fraction = high_lane_frac;
    spec.geo_weights = geo_weights;
    if (served.size() > 1) {
      for (const Served& s : served) spec.mix_weights.push_back(s.weight);
    }
    std::printf("open loop:     %.1f images/s offered for %.1f s, seed "
                "%llu, %zu burst%s, slo %lld ms, high-lane %.0f%%\n",
                rate, seconds, static_cast<unsigned long long>(seed),
                bursts.size(), bursts.size() == 1 ? "" : "s",
                static_cast<long long>(slo_ms), high_lane_frac * 100.0);

    const OpenLoopResult r =
        run_open_loop(engine, traffic, spec, slo_ms * 1000);
    const Engine::Stats st = engine.stats();
    std::printf("offered:       %lld requests (max generator lag %.3f ms)\n",
                static_cast<long long>(r.offered), r.max_lag_s * 1e3);
    std::printf("goodput:       %lld completed -> %.1f images/s "
                "(within-SLO completions: %lld)\n",
                static_cast<long long>(r.completed), r.goodput_per_s(),
                static_cast<long long>(st.completed_within_deadline));
    std::printf("shed:          %lld (%.1f%%) — queue-full %lld, "
                "deadline@admit %lld, deadline@launch %lld, shutdown %lld, "
                "other %lld, faulted %lld\n",
                static_cast<long long>(r.shed()), r.shed_rate() * 100.0,
                static_cast<long long>(r.rejected_queue_full),
                static_cast<long long>(r.rejected_deadline),
                static_cast<long long>(r.dropped_deadline),
                static_cast<long long>(r.rejected_shutdown +
                                       r.dropped_shutdown),
                static_cast<long long>(r.rejected_other),
                static_cast<long long>(r.faulted));
    std::printf("latency:       accepted p50 %.3f ms  p99 %.3f ms  max "
                "%.3f ms (queue avg %.3f ms)\n",
                st.p50_ms, st.p99_ms, st.max_ms, st.avg_queue_ms);
    std::printf("batching:      %lld batches, avg batch %.2f\n",
                static_cast<long long>(st.batches), st.avg_batch);
    if (opts.default_qos.bucketing.enabled()) {
      std::printf("buckets:       %lld padded admissions, %lld "
                  "mixed-geometry batches\n",
                  static_cast<long long>(st.padded_accepted),
                  static_cast<long long>(st.mixed_geometry_batches));
    }
    return 0;
  }

  // Closed loop: clients round-robin over the served models.
  std::atomic<bool> stop{false};
  std::atomic<int64_t> done{0};
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(clients));
  const auto t0 = std::chrono::steady_clock::now();
  for (int64_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      const ModelTraffic& mine =
          traffic[static_cast<size_t>(c) % traffic.size()];
      size_t next_geo = static_cast<size_t>(c);
      while (!stop.load(std::memory_order_relaxed)) {
        const Tensor& image =
            mine.geo_images.empty()
                ? mine.image
                : mine.geo_images[next_geo++ % mine.geo_images.size()];
        try {
          (void)engine.submit(mine.name, image).get();
          done.fetch_add(1, std::memory_order_relaxed);
        } catch (const RejectedError&) {
          // Bounded queue + many clients can reject at the edge; closed
          // loop just retries.
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  stop.store(true);
  for (std::thread& t : threads) t.join();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  const Engine::Stats st = engine.stats();
  std::printf("served:        %lld requests in %.2f s -> %.1f images/s\n",
              static_cast<long long>(done.load()), wall,
              static_cast<double>(done.load()) / wall);
  std::printf("latency:       p50 %.3f ms  p99 %.3f ms  max %.3f ms "
              "(queue avg %.3f ms)\n",
              st.p50_ms, st.p99_ms, st.max_ms, st.avg_queue_ms);
  std::printf("batching:      %lld batches, avg batch %.2f\n",
              static_cast<long long>(st.batches), st.avg_batch);
  if (opts.default_qos.bucketing.enabled()) {
    std::printf("buckets:       %lld padded admissions, %lld "
                "mixed-geometry batches\n",
                static_cast<long long>(st.padded_accepted),
                static_cast<long long>(st.mixed_geometry_batches));
  }
  engine.shutdown();
  return 0;
}
