// Closed-loop load generator for the serving Engine: registers a model
// (an NBFM artifact, or a synthetic MobileNetV2-flat with --synth), spins
// up N client threads that each submit one image at a time and wait for
// the future, and reports throughput, latency percentiles and the
// micro-batching behavior actually achieved.
//
// Usage: flat_serve <model.nbfm> | --synth
//          [--clients N] [--seconds S] [--max-batch B] [--max-wait-us U]
//          [--workers W] [--res R]
//
//   --clients      concurrent closed-loop clients (default 8)
//   --seconds      measurement window (default 3)
//   --max-batch    batching policy: largest coalesced batch (default 8;
//                  1 = sequential FIFO serving)
//   --max-wait-us  how long the queue head waits for peers (default 1000)
//   --workers      engine dispatcher threads (default 1)
//   --synth        serve a synthetic MobileNetV2-flat (w0.35, r96, 100
//                  classes) instead of a file — handy for demos and CI
//   --save <path>  with --synth: also write the synthetic artifact as an
//                  NBFM file (for feeding flat_infer)
#include <atomic>
#include <chrono>
#include <cstdio>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "export/flat_model.h"
#include "export/flat_synth.h"
#include "runtime/compiled_model.h"
#include "runtime/engine.h"
#include "tensor/rng.h"
#include "tensor/tensor.h"
#include "tensor/tensor_ops.h"

using namespace nb;
using namespace nb::runtime;

int main(int argc, char** argv) {
  std::string path;
  std::string save_path;
  bool synth = false;
  int64_t clients = 8;
  double seconds = 3.0;
  int64_t res = 0;
  EngineOptions opts;
  opts.batching.max_batch = 8;
  opts.batching.max_wait_us = 1000;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--clients" && i + 1 < argc) {
      clients = std::atoll(argv[++i]);
    } else if (arg == "--seconds" && i + 1 < argc) {
      seconds = std::atof(argv[++i]);
    } else if (arg == "--max-batch" && i + 1 < argc) {
      opts.batching.max_batch = std::atoll(argv[++i]);
    } else if (arg == "--max-wait-us" && i + 1 < argc) {
      opts.batching.max_wait_us = std::atoll(argv[++i]);
    } else if (arg == "--workers" && i + 1 < argc) {
      opts.workers = std::atoll(argv[++i]);
    } else if (arg == "--res" && i + 1 < argc) {
      res = std::atoll(argv[++i]);
    } else if (arg == "--synth") {
      synth = true;
    } else if (arg == "--save" && i + 1 < argc) {
      save_path = argv[++i];
    } else if (path.empty() && arg[0] != '-') {
      path = arg;
    } else {
      std::fprintf(stderr,
                   "usage: flat_serve <model.nbfm> | --synth [--clients N] "
                   "[--seconds S] [--max-batch B] [--max-wait-us U] "
                   "[--workers W] [--res R]\n");
      return 2;
    }
  }
  if (path.empty() && !synth) {
    std::fprintf(stderr, "flat_serve: pass a model file or --synth\n");
    return 2;
  }
  if (clients < 1) {
    std::fprintf(stderr, "flat_serve: --clients must be >= 1\n");
    return 2;
  }

  std::shared_ptr<const CompiledModel> model;
  if (synth) {
    Rng rng(20260730);
    exporter::FlatModel flat =
        exporter::synth::make_mbv2_flat(rng, 0.35f, 96, 100);
    if (!save_path.empty()) {
      flat.save(save_path);
      std::printf("saved synthetic artifact to %s\n", save_path.c_str());
    }
    model = CompiledModel::compile(std::move(flat));
  } else {
    model = CompiledModel::compile_file(path);
  }
  if (res == 0) res = model->input_resolution();
  if (res == 0) {
    std::fprintf(stderr,
                 "flat_serve: artifact has no recorded resolution; pass "
                 "--res\n");
    return 2;
  }
  const int64_t channels = model->input_channels();

  std::printf("model:         %s (%lld ops, %lld B shared weight panels)\n",
              synth ? "synthetic mbv2-flat w0.35 r96" : path.c_str(),
              static_cast<long long>(model->op_count()),
              static_cast<long long>(model->weight_panel_bytes()));
  std::printf("policy:        max_batch %lld, max_wait %lld us, %lld "
              "worker%s, %lld client%s\n",
              static_cast<long long>(opts.batching.max_batch),
              static_cast<long long>(opts.batching.max_wait_us),
              static_cast<long long>(opts.workers),
              opts.workers == 1 ? "" : "s", static_cast<long long>(clients),
              clients == 1 ? "" : "s");

  Engine engine(opts);
  engine.register_model("m", model);

  std::atomic<bool> stop{false};
  std::atomic<int64_t> done{0};
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(clients));
  const auto t0 = std::chrono::steady_clock::now();
  for (int64_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      Rng rng(77 + static_cast<uint64_t>(c));
      Tensor image({channels, res, res});
      fill_uniform(image, rng, -1.0f, 1.0f);
      while (!stop.load(std::memory_order_relaxed)) {
        (void)engine.submit("m", image).get();
        done.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  stop.store(true);
  for (std::thread& t : threads) t.join();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  const Engine::Stats st = engine.stats();
  std::printf("served:        %lld requests in %.2f s -> %.1f images/s\n",
              static_cast<long long>(done.load()), wall,
              static_cast<double>(done.load()) / wall);
  std::printf("latency:       p50 %.3f ms  p99 %.3f ms  max %.3f ms "
              "(queue avg %.3f ms)\n",
              st.p50_ms, st.p99_ms, st.max_ms, st.avg_queue_ms);
  std::printf("batching:      %lld batches, avg batch %.2f\n",
              static_cast<long long>(st.batches), st.avg_batch);
  return 0;
}
