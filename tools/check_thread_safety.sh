#!/usr/bin/env bash
# Proves the clang thread-safety capability analysis in BOTH directions:
#
#   1. every TU under src/ front-end-compiles clean with
#      -Wthread-safety -Werror (the tree's locking discipline holds);
#   2. the negative probe (tools/probes/thread_safety_probe.cpp) FAILS to
#      compile when its seeded violations are enabled — i.e. removing a
#      lock around an NB_REQUIRES call really is a compile error, so the
#      green result from (1) is meaningful and the analysis is not
#      silently disabled.
#
# The analysis runs entirely in the clang frontend, so -fsyntax-only is
# enough — no link, no objects, fast enough for a per-PR CI leg. Under
# GCC the annotations are no-ops (see src/util/thread_safety.h); this
# script requires clang++ and exits 0 with a notice when it is absent so
# gcc-only dev boxes aren't blocked.
set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
CXX="${CLANGXX:-clang++}"

if ! command -v "$CXX" >/dev/null 2>&1; then
  echo "check_thread_safety: ${CXX} not found; skipping (analysis is clang-only)"
  exit 0
fi

# -Wno-everything then -Wthread-safety: later flags win in clang, so ONLY
# the thread-safety group is live — this leg checks lock discipline, the
# gcc/tidy legs own everything else.
FLAGS=(-std=c++20 -fsyntax-only "-I${ROOT}/src"
       -Wno-everything -Wthread-safety -Werror)

fail=0

echo "== leg 1: src/ tree must be -Wthread-safety clean =="
while IFS= read -r tu; do
  extra=()
  case "$tu" in
    *_avx2.cpp) extra=(-mavx2) ;;
  esac
  if ! "$CXX" "${FLAGS[@]}" "${extra[@]}" "$tu"; then
    echo "check_thread_safety: FAIL (thread-safety warning): $tu"
    fail=1
  fi
done < <(find "${ROOT}/src" -name '*.cpp' | sort)

echo "== leg 2: probe compiles clean, seeded violations must NOT =="
PROBE="${ROOT}/tools/probes/thread_safety_probe.cpp"
if ! "$CXX" "${FLAGS[@]}" "$PROBE"; then
  echo "check_thread_safety: FAIL: probe should compile clean as-is"
  fail=1
fi
if "$CXX" "${FLAGS[@]}" -DNB_TS_PROBE_BREAK "$PROBE" 2>/dev/null; then
  echo "check_thread_safety: FAIL: seeded lock-discipline violations" \
       "compiled — the analysis is not actually running"
  fail=1
fi

if [ "$fail" -ne 0 ]; then
  echo "check_thread_safety: FAILED"
  exit 1
fi
echo "check_thread_safety: OK (tree clean, violations rejected)"
