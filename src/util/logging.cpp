#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

namespace nb::util {

namespace {

std::atomic<LogLevel> g_level{log_level_from_env()};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::debug:
      return "debug";
    case LogLevel::info:
      return "info";
    case LogLevel::warn:
      return "warn";
    case LogLevel::error:
      return "error";
    case LogLevel::off:
      return "off";
  }
  return "?";
}

std::chrono::steady_clock::time_point process_start() {
  static const auto start = std::chrono::steady_clock::now();
  return start;
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(); }

LogLevel log_level_from_env() {
  const char* env = std::getenv("NB_LOG_LEVEL");
  if (env == nullptr) {
    return LogLevel::info;
  }
  if (std::strcmp(env, "debug") == 0) return LogLevel::debug;
  if (std::strcmp(env, "info") == 0) return LogLevel::info;
  if (std::strcmp(env, "warn") == 0) return LogLevel::warn;
  if (std::strcmp(env, "error") == 0) return LogLevel::error;
  if (std::strcmp(env, "off") == 0) return LogLevel::off;
  return LogLevel::info;
}

void log(LogLevel level, const std::string& message) {
  if (level < g_level.load() || level == LogLevel::off) {
    return;
  }
  const double elapsed = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - process_start())
                             .count();
  std::fprintf(stderr, "[%9.3fs] %-5s %s\n", elapsed, level_name(level),
               message.c_str());
}

void log_debug(const std::string& message) { log(LogLevel::debug, message); }
void log_info(const std::string& message) { log(LogLevel::info, message); }
void log_warn(const std::string& message) { log(LogLevel::warn, message); }
void log_error(const std::string& message) { log(LogLevel::error, message); }

std::string Stopwatch::pretty() const {
  const double s = seconds();
  std::ostringstream os;
  if (s < 60.0) {
    os.setf(std::ios::fixed);
    os.precision(1);
    os << s << "s";
    return os.str();
  }
  const int64_t minutes = static_cast<int64_t>(s) / 60;
  const int64_t rest = static_cast<int64_t>(s) % 60;
  os << minutes << "m" << (rest < 10 ? "0" : "") << rest << "s";
  return os.str();
}

}  // namespace nb::util
