// Aligned table rendering plus CSV export for the bench binaries. A Table is
// built row by row (cells are strings; numeric helpers format consistently),
// rendered with column auto-widths, and optionally written to a CSV file so
// bench sweeps can be re-plotted without re-running the experiment.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace nb::util {

/// Formats a double with `decimals` fractional digits ("3.14").
std::string format_fixed(double value, int decimals);
/// Formats a count with thousands separators ("1,234,567").
std::string format_count(int64_t value);
/// Escapes a CSV cell per RFC 4180 (quotes fields containing , " or \n).
std::string csv_escape(const std::string& cell);

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  /// Inserts a horizontal separator before the next row.
  void add_separator();

  int64_t num_rows() const { return static_cast<int64_t>(rows_.size()); }
  const std::vector<std::string>& header() const { return header_; }

  /// Renders the aligned text table (two-space column gaps, '-' separators).
  std::string render() const;
  /// Serializes header + rows as CSV (separators are skipped).
  std::string to_csv() const;
  /// Writes to_csv() to `path`; returns false on I/O failure.
  bool write_csv(const std::string& path) const;

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator = false;
  };

  std::vector<std::string> header_;
  std::vector<Row> rows_;
};

}  // namespace nb::util
