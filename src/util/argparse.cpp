#include "util/argparse.h"

#include <cstdio>
#include <sstream>

namespace nb::util {

namespace {

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

}  // namespace

ArgParser::ArgParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void ArgParser::add_flag(const std::string& name, bool default_value,
                         const std::string& help) {
  NB_CHECK(options_.find(name) == options_.end(),
           "duplicate option --" + name);
  Option opt;
  opt.kind = Kind::flag;
  opt.help = help;
  opt.flag_value = default_value;
  opt.default_text = default_value ? "true" : "false";
  options_[name] = opt;
  declaration_order_.push_back(name);
}

void ArgParser::add_int(const std::string& name, int64_t default_value,
                        const std::string& help) {
  NB_CHECK(options_.find(name) == options_.end(),
           "duplicate option --" + name);
  Option opt;
  opt.kind = Kind::integer;
  opt.help = help;
  opt.int_value = default_value;
  opt.default_text = std::to_string(default_value);
  options_[name] = opt;
  declaration_order_.push_back(name);
}

void ArgParser::add_double(const std::string& name, double default_value,
                           const std::string& help) {
  NB_CHECK(options_.find(name) == options_.end(),
           "duplicate option --" + name);
  Option opt;
  opt.kind = Kind::real;
  opt.help = help;
  opt.double_value = default_value;
  std::ostringstream os;
  os << default_value;
  opt.default_text = os.str();
  options_[name] = opt;
  declaration_order_.push_back(name);
}

void ArgParser::add_string(const std::string& name,
                           const std::string& default_value,
                           const std::string& help) {
  NB_CHECK(options_.find(name) == options_.end(),
           "duplicate option --" + name);
  Option opt;
  opt.kind = Kind::text;
  opt.help = help;
  opt.text_value = default_value;
  opt.default_text = default_value;
  options_[name] = opt;
  declaration_order_.push_back(name);
}

void ArgParser::assign(Option& opt, const std::string& name,
                       const std::string& value) {
  switch (opt.kind) {
    case Kind::flag:
      if (value == "true" || value == "1") {
        opt.flag_value = true;
      } else if (value == "false" || value == "0") {
        opt.flag_value = false;
      } else {
        NB_CHECK(false, "--" + name + " expects true/false, got '" + value +
                            "'");
      }
      break;
    case Kind::integer: {
      size_t consumed = 0;
      int64_t parsed = 0;
      try {
        parsed = std::stoll(value, &consumed);
      } catch (const std::exception&) {
        consumed = 0;
      }
      NB_CHECK(consumed == value.size() && !value.empty(),
               "--" + name + " expects an integer, got '" + value + "'");
      opt.int_value = parsed;
      break;
    }
    case Kind::real: {
      size_t consumed = 0;
      double parsed = 0.0;
      try {
        parsed = std::stod(value, &consumed);
      } catch (const std::exception&) {
        consumed = 0;
      }
      NB_CHECK(consumed == value.size() && !value.empty(),
               "--" + name + " expects a number, got '" + value + "'");
      opt.double_value = parsed;
      break;
    }
    case Kind::text:
      opt.text_value = value;
      break;
  }
  opt.was_provided = true;
}

bool ArgParser::parse(int argc, const char* const* argv) {
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    args.emplace_back(argv[i]);
  }
  return parse(args);
}

bool ArgParser::parse(const std::vector<std::string>& args) {
  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage().c_str(), stdout);
      return false;
    }
    NB_CHECK(starts_with(arg, "--"),
             "expected --option, got '" + arg + "'");
    std::string body = arg.substr(2);
    std::string name;
    std::string value;
    bool has_value = false;
    const size_t eq = body.find('=');
    if (eq != std::string::npos) {
      name = body.substr(0, eq);
      value = body.substr(eq + 1);
      has_value = true;
    } else {
      name = body;
    }
    auto it = options_.find(name);
    NB_CHECK(it != options_.end(), "unknown option --" + name);
    Option& opt = it->second;
    if (!has_value) {
      if (opt.kind == Kind::flag) {
        opt.flag_value = true;  // bare --flag means true
        opt.was_provided = true;
        continue;
      }
      NB_CHECK(i + 1 < args.size(), "--" + name + " expects a value");
      value = args[++i];
    }
    assign(opt, name, value);
  }
  return true;
}

const ArgParser::Option& ArgParser::find(const std::string& name,
                                         Kind kind) const {
  auto it = options_.find(name);
  NB_CHECK(it != options_.end(), "option --" + name + " was never declared");
  NB_CHECK(it->second.kind == kind,
           "option --" + name + " accessed with the wrong type");
  return it->second;
}

bool ArgParser::get_flag(const std::string& name) const {
  return find(name, Kind::flag).flag_value;
}

int64_t ArgParser::get_int(const std::string& name) const {
  return find(name, Kind::integer).int_value;
}

double ArgParser::get_double(const std::string& name) const {
  return find(name, Kind::real).double_value;
}

const std::string& ArgParser::get_string(const std::string& name) const {
  return find(name, Kind::text).text_value;
}

bool ArgParser::provided(const std::string& name) const {
  auto it = options_.find(name);
  NB_CHECK(it != options_.end(), "option --" + name + " was never declared");
  return it->second.was_provided;
}

std::string ArgParser::usage() const {
  std::ostringstream os;
  os << "usage: " << program_ << " [options]\n";
  if (!description_.empty()) {
    os << description_ << "\n";
  }
  os << "options:\n";
  for (const std::string& name : declaration_order_) {
    const Option& opt = options_.at(name);
    os << "  --" << name;
    switch (opt.kind) {
      case Kind::flag:
        os << " (flag";
        break;
      case Kind::integer:
        os << " <int";
        break;
      case Kind::real:
        os << " <float";
        break;
      case Kind::text:
        os << " <string";
        break;
    }
    os << ", default " << (opt.default_text.empty() ? "\"\"" : opt.default_text)
       << (opt.kind == Kind::flag ? ")" : ">") << "\n      " << opt.help
       << "\n";
  }
  os << "  --help\n      print this message\n";
  return os.str();
}

}  // namespace nb::util
