// Clang thread-safety capability annotations, plus the annotated mutex
// vocabulary the runtime is written against.
//
// The serving tier's locking discipline (one admission mutex over
// registry+queues, a separate stats mutex, the threadpool's job mutex, the
// FlatModel plan shim) is enforced STATICALLY: every guarded member is
// declared NB_GUARDED_BY its mutex and every must-hold function is declared
// NB_REQUIRES it, so a clang build with -Wthread-safety -Werror turns a
// register/submit-style race into a compile error instead of a TSan finding
// that needs the schedule to cooperate. Under GCC (and any compiler without
// the attributes) every macro expands to nothing and nb::Mutex is a plain
// std::mutex wrapper — zero runtime or layout cost either way.
//
// libstdc++'s std::mutex carries no capability attributes, so locking
// through std::lock_guard<std::mutex> is invisible to the analysis. The
// annotated wrappers below (nb::Mutex / nb::MutexLock / nb::CondVar) are
// the whole fix: same semantics, same cost, visible capabilities. New
// concurrent code should use them instead of raw std::mutex.
//
//   class Account {
//    public:
//     void deposit(int n) NB_REQUIRES(mu_) { balance_ += n; }
//     void lock() NB_ACQUIRE(mu_) { mu_.lock(); }
//     void unlock() NB_RELEASE(mu_) { mu_.unlock(); }
//    private:
//     nb::Mutex mu_;
//     int balance_ NB_GUARDED_BY(mu_) = 0;
//   };
//
// tools/check_thread_safety.sh proves both directions in CI: the tree
// builds warning-clean under -Wthread-safety -Werror, and deleting a lock
// around an NB_REQUIRES call is a compile error.
#pragma once

#include <condition_variable>
#include <mutex>

// Attribute shim: real attributes under clang, no-ops elsewhere. The
// analysis is opt-in per declaration, so annotating a class never changes
// what GCC compiles.
#if defined(__clang__) && !defined(SWIG)
#define NB_TS_ATTR(x) __attribute__((x))
#else
#define NB_TS_ATTR(x)  // no-op off clang
#endif

/// Marks a class as a lockable capability (mutexes, here).
#define NB_CAPABILITY(x) NB_TS_ATTR(capability(x))
/// Marks an RAII class whose lifetime acquires/releases a capability.
#define NB_SCOPED_CAPABILITY NB_TS_ATTR(scoped_lockable)
/// Data member readable/writable only while holding the capability.
#define NB_GUARDED_BY(x) NB_TS_ATTR(guarded_by(x))
/// Pointer member whose POINTEE is guarded by the capability.
#define NB_PT_GUARDED_BY(x) NB_TS_ATTR(pt_guarded_by(x))
/// Function acquires the capability (held on return).
#define NB_ACQUIRE(...) NB_TS_ATTR(acquire_capability(__VA_ARGS__))
/// Function releases the capability (not held on return).
#define NB_RELEASE(...) NB_TS_ATTR(release_capability(__VA_ARGS__))
/// Function acquires the capability when it returns the given value.
#define NB_TRY_ACQUIRE(...) NB_TS_ATTR(try_acquire_capability(__VA_ARGS__))
/// Caller must already hold the capability.
#define NB_REQUIRES(...) NB_TS_ATTR(requires_capability(__VA_ARGS__))
/// Caller must NOT hold the capability (deadlock prevention).
#define NB_EXCLUDES(...) NB_TS_ATTR(locks_excluded(__VA_ARGS__))
/// Runtime assertion that the capability is held (trusted by the analysis).
#define NB_ASSERT_CAPABILITY(x) NB_TS_ATTR(assert_capability(x))
/// Function returns a reference to the named capability.
#define NB_RETURN_CAPABILITY(x) NB_TS_ATTR(lock_returned(x))
/// Escape hatch: skip analysis for one function (init/teardown paths that
/// are single-threaded by construction). Use sparingly and say why.
#define NB_NO_THREAD_SAFETY_ANALYSIS NB_TS_ATTR(no_thread_safety_analysis)

namespace nb {

/// std::mutex with capability attributes — the only change is that clang
/// can now see acquisitions and releases.
class NB_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() NB_ACQUIRE() { mu_.lock(); }
  void unlock() NB_RELEASE() { mu_.unlock(); }
  bool try_lock() NB_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// std::lock_guard over nb::Mutex, visible to the analysis.
class NB_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) NB_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() NB_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable over nb::Mutex. wait()/wait_until() atomically
/// release and reacquire the mutex, so from the analysis's point of view
/// the capability is held across the call — which is exactly the contract
/// the caller's wait loop relies on. Predicate-taking overloads are
/// deliberately absent: the analysis cannot attach a capability to a
/// lambda, so wait predicates are written as explicit while-loops whose
/// guarded reads sit in a context that provably holds the lock.
class CondVar {
 public:
  void wait(Mutex& mu) NB_REQUIRES(mu) { cv_.wait(mu); }

  template <class Clock, class Duration>
  std::cv_status wait_until(
      Mutex& mu, const std::chrono::time_point<Clock, Duration>& deadline)
      NB_REQUIRES(mu) {
    return cv_.wait_until(mu, deadline);
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace nb
