#include "util/table.h"

#include <fstream>
#include <sstream>

#include "tensor/tensor.h"  // NB_CHECK

namespace nb::util {

std::string format_fixed(double value, int decimals) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(decimals);
  os << value;
  return os.str();
}

std::string format_count(int64_t value) {
  const bool negative = value < 0;
  uint64_t magnitude =
      negative ? 0ULL - static_cast<uint64_t>(value) : static_cast<uint64_t>(value);
  std::string digits = std::to_string(magnitude);
  std::string out;
  int since_sep = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (since_sep == 3) {
      out.push_back(',');
      since_sep = 0;
    }
    out.push_back(*it);
    ++since_sep;
  }
  if (negative) {
    out.push_back('-');
  }
  return {out.rbegin(), out.rend()};
}

std::string csv_escape(const std::string& cell) {
  const bool needs_quotes =
      cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) {
    return cell;
  }
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') {
      out += "\"\"";
    } else {
      out.push_back(c);
    }
  }
  out.push_back('"');
  return out;
}

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  NB_CHECK(!header_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  NB_CHECK(cells.size() == header_.size(),
           "row has " + std::to_string(cells.size()) + " cells, header has " +
               std::to_string(header_.size()));
  rows_.push_back(Row{std::move(cells), false});
}

void Table::add_separator() { rows_.push_back(Row{{}, true}); }

std::string Table::render() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const Row& row : rows_) {
    if (row.separator) {
      continue;
    }
    for (size_t c = 0; c < row.cells.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }
  size_t total = 0;
  for (size_t w : widths) {
    total += w + 2;
  }
  const auto pad = [](const std::string& s, size_t w) {
    std::string out = s;
    out.resize(w, ' ');
    return out;
  };
  std::ostringstream os;
  for (size_t c = 0; c < header_.size(); ++c) {
    os << pad(header_[c], widths[c]) << "  ";
  }
  os << "\n" << std::string(total, '-') << "\n";
  for (const Row& row : rows_) {
    if (row.separator) {
      os << std::string(total, '-') << "\n";
      continue;
    }
    for (size_t c = 0; c < row.cells.size(); ++c) {
      os << pad(row.cells[c], widths[c]) << "  ";
    }
    os << "\n";
  }
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  for (size_t c = 0; c < header_.size(); ++c) {
    os << (c ? "," : "") << csv_escape(header_[c]);
  }
  os << "\n";
  for (const Row& row : rows_) {
    if (row.separator) {
      continue;
    }
    for (size_t c = 0; c < row.cells.size(); ++c) {
      os << (c ? "," : "") << csv_escape(row.cells[c]);
    }
    os << "\n";
  }
  return os.str();
}

bool Table::write_csv(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return false;
  }
  out << to_csv();
  return static_cast<bool>(out);
}

}  // namespace nb::util
