// Leveled stderr logging with elapsed-time stamps, plus a Stopwatch. The
// training loops and benches log through this so verbosity is controlled in
// one place (NB_LOG_LEVEL env var or set_log_level()).
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

namespace nb::util {

enum class LogLevel { debug = 0, info = 1, warn = 2, error = 3, off = 4 };

/// Global threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();
/// Reads NB_LOG_LEVEL (debug|info|warn|error|off) once; defaults to info.
LogLevel log_level_from_env();

/// Logs "[ +12.345s] level: message" to stderr when `level` passes the
/// threshold.
void log(LogLevel level, const std::string& message);

void log_debug(const std::string& message);
void log_info(const std::string& message);
void log_warn(const std::string& message);
void log_error(const std::string& message);

/// Wall-clock stopwatch (monotonic).
class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }
  int64_t milliseconds() const {
    return static_cast<int64_t>(seconds() * 1000.0);
  }
  /// "12.3s" or "4m02s" for longer spans.
  std::string pretty() const;

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace nb::util
