// Minimal command-line parser for the bench and example binaries. Flags are
// declared up front with a default and a help string; parse() then accepts
// "--name=value", "--name value", and bare "--name" for booleans. Unknown
// flags are an error (fail fast rather than silently ignoring a typo'd
// sweep parameter), and "--help" prints the generated usage text.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "tensor/tensor.h"  // NB_CHECK

namespace nb::util {

class ArgParser {
 public:
  explicit ArgParser(std::string program, std::string description = "");

  /// Declares a flag; the default value doubles as the type witness.
  void add_flag(const std::string& name, bool default_value,
                const std::string& help);
  void add_int(const std::string& name, int64_t default_value,
               const std::string& help);
  void add_double(const std::string& name, double default_value,
                  const std::string& help);
  void add_string(const std::string& name, const std::string& default_value,
                  const std::string& help);

  /// Parses argv. Returns false (after printing usage) when --help was given;
  /// throws on unknown flags or malformed values.
  bool parse(int argc, const char* const* argv);
  /// Convenience overload for tests.
  bool parse(const std::vector<std::string>& args);

  bool get_flag(const std::string& name) const;
  int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  const std::string& get_string(const std::string& name) const;

  /// True when the user supplied the flag explicitly (vs the default).
  bool provided(const std::string& name) const;

  std::string usage() const;

 private:
  enum class Kind { flag, integer, real, text };

  struct Option {
    Kind kind = Kind::text;
    std::string help;
    std::string default_text;
    bool flag_value = false;
    int64_t int_value = 0;
    double double_value = 0.0;
    std::string text_value;
    bool was_provided = false;
  };

  const Option& find(const std::string& name, Kind kind) const;
  void assign(Option& opt, const std::string& name, const std::string& value);

  std::string program_;
  std::string description_;
  std::map<std::string, Option> options_;
  std::vector<std::string> declaration_order_;
};

}  // namespace nb::util
