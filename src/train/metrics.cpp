#include "train/metrics.h"

#include "data/dataloader.h"
#include "nn/batchnorm.h"
#include "nn/losses.h"
#include "tensor/tensor_ops.h"

namespace nb::train {

namespace {

template <typename Fn>
void for_each_eval_batch(nn::Module& model,
                         const data::ClassificationDataset& dataset,
                         int64_t batch_size, Fn&& fn) {
  const bool was_training = model.training();
  model.set_training(false);
  data::DataLoader loader(dataset, batch_size, /*shuffle=*/false,
                          /*augment=*/false);
  loader.start_epoch();
  data::Batch batch;
  while (loader.next(batch)) {
    const Tensor logits = model.forward(batch.images);
    fn(logits, batch.labels);
  }
  model.set_training(was_training);
}

}  // namespace

float evaluate(nn::Module& model, const data::ClassificationDataset& dataset,
               int64_t batch_size) {
  int64_t correct = 0;
  int64_t total = 0;
  // Count argmax matches directly: reconstructing the count from the float
  // per-batch accuracy (round(acc * batch)) drifts on large eval sets.
  for_each_eval_batch(model, dataset, batch_size,
                      [&](const Tensor& logits, const std::vector<int64_t>& labels) {
                        const std::vector<int64_t> pred = argmax_rows(logits);
                        for (size_t i = 0; i < labels.size(); ++i) {
                          correct += pred[i] == labels[i];
                        }
                        total += static_cast<int64_t>(labels.size());
                      });
  return total > 0 ? static_cast<float>(correct) / static_cast<float>(total)
                   : 0.0f;
}

void recalibrate_batchnorm(nn::Module& model,
                           const data::ClassificationDataset& dataset,
                           int64_t batch_size, int64_t max_batches) {
  std::vector<nn::BatchNorm2d*> bns;
  model.apply([&bns](nn::Module& m) {
    if (auto* bn = dynamic_cast<nn::BatchNorm2d*>(&m)) bns.push_back(bn);
  });
  if (bns.empty()) return;
  std::vector<float> saved;
  saved.reserve(bns.size());
  for (nn::BatchNorm2d* bn : bns) saved.push_back(bn->momentum());

  const bool was_training = model.training();
  model.set_training(true);
  data::DataLoader loader(dataset, batch_size, /*shuffle=*/false,
                          /*augment=*/false);
  loader.start_epoch();
  data::Batch batch;
  int64_t i = 0;
  while (i < max_batches && loader.next(batch)) {
    // momentum 1/(i+1) turns the EMA into a running average, so after the
    // pass running stats equal the mean batch statistics under the final
    // weights.
    const float m = 1.0f / static_cast<float>(i + 1);
    for (nn::BatchNorm2d* bn : bns) bn->set_momentum(m);
    (void)model.forward(batch.images);
    ++i;
  }
  for (size_t j = 0; j < bns.size(); ++j) bns[j]->set_momentum(saved[j]);
  model.set_training(was_training);
}

float evaluate_loss(nn::Module& model,
                    const data::ClassificationDataset& dataset,
                    int64_t batch_size) {
  // Weight each batch's mean loss by its sample count so a final partial
  // batch is not overweighted in the dataset-level mean.
  double loss_sum = 0.0;
  int64_t samples = 0;
  for_each_eval_batch(model, dataset, batch_size,
                      [&](const Tensor& logits, const std::vector<int64_t>& labels) {
                        const auto n = static_cast<double>(labels.size());
                        loss_sum +=
                            n * nn::softmax_cross_entropy(logits, labels).loss;
                        samples += static_cast<int64_t>(labels.size());
                      });
  return samples > 0
             ? static_cast<float>(loss_sum / static_cast<double>(samples))
             : 0.0f;
}

}  // namespace nb::train
