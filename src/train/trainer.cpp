#include "train/trainer.h"

#include <cmath>
#include <cstdio>
#include <memory>

#include "data/dataloader.h"
#include "data/mix_augment.h"
#include "optim/ema.h"
#include "train/metrics.h"

namespace nb::train {

namespace {

/// Evaluates with the EMA shadow weights swapped in (when EMA is active);
/// BN running stats are recalibrated for whichever weights are live.
float evaluate_maybe_ema(nn::Module& model,
                         const data::ClassificationDataset& train_set,
                         const data::ClassificationDataset& test_set,
                         optim::EmaWeights* ema) {
  if (ema != nullptr) {
    ema->swap_in();
  }
  recalibrate_batchnorm(model, train_set);
  const float acc = evaluate(model, test_set);
  if (ema != nullptr) {
    ema->swap_out();
  }
  return acc;
}

}  // namespace

TrainHistory train_classifier(nn::Module& model,
                              const data::ClassificationDataset& train_set,
                              const data::ClassificationDataset& test_set,
                              const TrainConfig& config, LossFn loss_fn,
                              IterationHook on_iteration) {
  NB_CHECK(config.epochs > 0, "epochs must be positive");
  // Mixing applies only with the built-in criterion: a custom loss_fn (KD,
  // detection) has no slot for the second label set.
  const bool can_mix = !loss_fn && (config.mixup_alpha > 0.0f ||
                                    config.cutmix_alpha > 0.0f);
  data::LoaderOptions loader_opts;
  loader_opts.batch_size = config.batch_size;
  loader_opts.shuffle = true;
  loader_opts.augment = config.augment;
  loader_opts.seed = config.seed;
  loader_opts.workers = config.data_workers;
  if (can_mix) {
    // The loader applies mixup/cutmix itself (inside the pipeline's decode
    // workers when data_workers > 0) with per-batch seeded draws, so the
    // result is identical at any worker count.
    loader_opts.mix.mixup_alpha = config.mixup_alpha;
    loader_opts.mix.cutmix_alpha = config.cutmix_alpha;
  }
  const std::unique_ptr<data::BatchSource> loader =
      data::make_loader(train_set, loader_opts);
  const int64_t steps_per_epoch = loader->num_batches();
  const int64_t total_steps = steps_per_epoch * config.epochs;

  std::unique_ptr<optim::Optimizer> optimizer =
      optim::make_optimizer(config.optimizer, model.parameters(), config.lr,
                            config.momentum, config.weight_decay);
  std::unique_ptr<optim::LrSchedule> schedule;
  if (config.cosine) {
    schedule = std::make_unique<optim::CosineLr>(
        config.lr, total_steps, 0.0f, config.warmup_epochs * steps_per_epoch);
  } else {
    schedule = std::make_unique<optim::ConstantLr>(config.lr);
  }

  std::unique_ptr<optim::EmaWeights> ema;
  if (config.ema_decay > 0.0f) {
    ema = std::make_unique<optim::EmaWeights>(model.parameters(),
                                              config.ema_decay);
  }
  TrainHistory history;
  int64_t step = 0;
  for (int64_t epoch = 0; epoch < config.epochs; ++epoch) {
    model.set_training(true);
    loader->start_epoch();
    data::Batch batch;
    double loss_sum = 0.0;
    double acc_sum = 0.0;
    int64_t batches = 0;
    while (loader->next(batch)) {
      optimizer->set_lr(schedule->lr_at(step));
      model.zero_grad();

      const Tensor logits = model.forward(batch.images);
      nn::LossResult lr_result;
      if (loss_fn) {
        lr_result = loss_fn(logits, batch.labels, batch.images);
      } else if (batch.mixed()) {
        lr_result = data::mixed_cross_entropy(logits, batch.labels,
                                              batch.labels_b, batch.mix_lam,
                                              config.label_smoothing);
      } else {
        lr_result = nn::softmax_cross_entropy(logits, batch.labels,
                                              config.label_smoothing);
      }
      model.backward(lr_result.grad);
      if (config.clip_grad_norm > 0.0f) {
        optim::clip_grad_norm(model.parameters(), config.clip_grad_norm);
      }
      optimizer->step();
      if (ema) {
        ema->update();
      }
      loss_sum += lr_result.loss;
      acc_sum += nn::accuracy(logits, batch.labels);
      ++batches;
      ++step;
      if (on_iteration) on_iteration(step, total_steps);
    }

    EpochStats stats;
    stats.epoch = epoch;
    stats.train_loss = static_cast<float>(loss_sum / batches);
    stats.train_acc = static_cast<float>(acc_sum / batches);
    stats.lr = optimizer->lr();
    const bool is_last = epoch == config.epochs - 1;
    if (is_last || (config.eval_every > 0 && epoch % config.eval_every == 0)) {
      stats.test_acc =
          evaluate_maybe_ema(model, train_set, test_set, ema.get());
      history.best_test_acc = std::max(history.best_test_acc, stats.test_acc);
    } else {
      stats.test_acc = std::nanf("");
    }
    history.epochs.push_back(stats);
    if (config.verbose) {
      std::printf(
          "  epoch %2lld | loss %.4f | train acc %.3f | test acc %.3f | lr %.4f\n",
          static_cast<long long>(epoch), stats.train_loss, stats.train_acc,
          stats.test_acc, stats.lr);
      std::fflush(stdout);
    }
  }
  // Export the averaged weights so the returned model is the evaluated one.
  if (ema) {
    ema->copy_to_model();
    recalibrate_batchnorm(model, train_set);
  }
  history.final_test_acc = history.epochs.back().test_acc;
  return history;
}

}  // namespace nb::train
