// The classification training loop used by every experiment: SGD + momentum,
// cosine annealing stepped per iteration, light augmentation, cross entropy
// (optionally label-smoothed), with two extension points:
//   - loss_fn:  replaces the criterion (KD baselines pass a composite loss);
//   - on_iteration: called once per optimizer step (the PLT scheduler ramps
//     its alphas here).
#pragma once

#include <functional>

#include "data/dataset.h"
#include "nn/losses.h"
#include "nn/module.h"
#include "optim/lr_schedule.h"
#include "optim/optimizer.h"
#include "optim/sgd.h"

namespace nb::train {

struct TrainConfig {
  int64_t epochs = 10;
  int64_t batch_size = 32;
  float lr = 0.1f;
  float momentum = 0.9f;
  float weight_decay = 1e-4f;
  float label_smoothing = 0.0f;
  bool augment = true;
  bool cosine = true;
  int64_t warmup_epochs = 0;
  uint64_t seed = 11;
  bool verbose = false;
  /// Evaluate on the test set every k epochs (always on the last).
  int64_t eval_every = 1;
  /// Optimizer algorithm (paper recipe: SGD + momentum + cosine).
  optim::OptimizerKind optimizer = optim::OptimizerKind::sgd;
  /// Beta(alpha, alpha) mixup on each batch when > 0. Ignored when a custom
  /// loss_fn is supplied (the mixed two-label criterion would not apply).
  float mixup_alpha = 0.0f;
  /// CutMix when > 0; if both are set, each batch picks one at random.
  float cutmix_alpha = 0.0f;
  /// Polyak-average the weights with this decay and evaluate/export the
  /// averaged model when > 0 (0 disables EMA).
  float ema_decay = 0.0f;
  /// When > 0, rescales gradients to this global L2 norm before each step.
  float clip_grad_norm = 0.0f;
  /// Decode/augment workers for the training data loader: 0 runs the
  /// synchronous DataLoader on the training thread, > 0 the prefetching
  /// PipelineLoader (data/pipeline.h) in its determinism mode — batches
  /// are bitwise-identical either way, so this is purely a speed knob.
  int64_t data_workers = 0;
};

struct EpochStats {
  int64_t epoch = 0;
  float train_loss = 0.0f;
  float train_acc = 0.0f;
  float test_acc = 0.0f;  // NaN when not evaluated this epoch
  float lr = 0.0f;
};

struct TrainHistory {
  std::vector<EpochStats> epochs;
  float best_test_acc = 0.0f;
  float final_test_acc = 0.0f;
};

/// Criterion: logits + labels -> loss and dLoss/dLogits.
using LossFn = std::function<nn::LossResult(const Tensor& logits,
                                            const std::vector<int64_t>& labels,
                                            const Tensor& images)>;

/// Called after every optimizer step with (step, total_steps).
using IterationHook = std::function<void(int64_t, int64_t)>;

TrainHistory train_classifier(nn::Module& model,
                              const data::ClassificationDataset& train_set,
                              const data::ClassificationDataset& test_set,
                              const TrainConfig& config,
                              LossFn loss_fn = nullptr,
                              IterationHook on_iteration = nullptr);

}  // namespace nb::train
