// Evaluation helpers shared by the trainer, the benches and the examples.
#pragma once

#include "data/dataset.h"
#include "nn/module.h"

namespace nb::train {

/// Top-1 test accuracy in [0, 1]; runs eval-mode batched forwards.
float evaluate(nn::Module& model, const data::ClassificationDataset& dataset,
               int64_t batch_size = 64);

/// Mean cross-entropy on a dataset (eval mode), for under/over-fit probes.
float evaluate_loss(nn::Module& model,
                    const data::ClassificationDataset& dataset,
                    int64_t batch_size = 64);

/// Recomputes every BatchNorm2d's running statistics as the exact average of
/// batch statistics over up to `max_batches` training batches. At this
/// repository's scale (tens of optimizer steps per run) the EMA statistics
/// lag the fast-moving weights badly, so eval-mode accuracy collapses without
/// this; it is the same recalibration step deployment pipelines (e.g. NetAug
/// / once-for-all) run before exporting a model. Called by the trainer before
/// every evaluation.
void recalibrate_batchnorm(nn::Module& model,
                           const data::ClassificationDataset& dataset,
                           int64_t batch_size = 64, int64_t max_batches = 16);

}  // namespace nb::train
