#include "baselines/kd.h"

#include <cmath>
#include <memory>

#include "data/dataloader.h"
#include "nn/init.h"
#include "nn/losses.h"
#include "nn/pooling.h"
#include "optim/lr_schedule.h"
#include "optim/sgd.h"
#include "tensor/tensor_ops.h"
#include "train/metrics.h"

namespace nb::baselines {

train::LossFn make_kd_loss(std::shared_ptr<nn::Module> teacher,
                           const KdConfig& config) {
  NB_CHECK(teacher != nullptr, "KD needs a teacher");
  teacher->set_training(false);
  return [teacher, config](const Tensor& logits,
                           const std::vector<int64_t>& labels,
                           const Tensor& images) {
    const Tensor teacher_logits = teacher->forward(images);
    nn::LossResult ce = nn::softmax_cross_entropy(logits, labels);
    nn::LossResult kd = nn::kd_kl(logits, teacher_logits, config.temperature);
    nn::LossResult out;
    out.loss = (1.0f - config.alpha) * ce.loss + config.alpha * kd.loss;
    out.grad = ce.grad.scale(1.0f - config.alpha);
    out.grad.add_scaled_(kd.grad, config.alpha);
    return out;
  };
}

train::LossFn make_tfkd_loss(int64_t num_classes, const KdConfig& config,
                             float correct_prob) {
  NB_CHECK(num_classes > 1, "tf-KD needs multiple classes");
  NB_CHECK(correct_prob > 1.0f / static_cast<float>(num_classes) &&
               correct_prob < 1.0f,
           "tf-KD correct_prob out of range");
  const float off =
      (1.0f - correct_prob) / static_cast<float>(num_classes - 1);
  return [num_classes, config, correct_prob, off](
             const Tensor& logits, const std::vector<int64_t>& labels,
             const Tensor&) {
    const int64_t n = logits.size(0);
    // Manual teacher logits: log of the designed distribution; kd_kl applies
    // the temperature on top (Yuan et al., Eq. 11).
    Tensor teacher({n, num_classes});
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t j = 0; j < num_classes; ++j) {
        const float p = j == labels[static_cast<size_t>(i)] ? correct_prob : off;
        teacher.at(i, j) = std::log(p);
      }
    }
    nn::LossResult ce = nn::softmax_cross_entropy(logits, labels);
    nn::LossResult kd = nn::kd_kl(logits, teacher, config.temperature);
    nn::LossResult out;
    out.loss = (1.0f - config.alpha) * ce.loss + config.alpha * kd.loss;
    out.grad = ce.grad.scale(1.0f - config.alpha);
    out.grad.add_scaled_(kd.grad, config.alpha);
    return out;
  };
}

std::vector<std::map<std::string, Tensor>> train_teacher_route(
    models::MobileNetV2& teacher, const data::ClassificationDataset& train_set,
    const data::ClassificationDataset& test_set,
    const train::TrainConfig& config, int64_t route_length) {
  NB_CHECK(route_length >= 1, "route needs at least one checkpoint");
  std::vector<std::map<std::string, Tensor>> route;
  const int64_t steps_per_epoch =
      (train_set.size() + config.batch_size - 1) / config.batch_size;
  const int64_t total_steps = steps_per_epoch * config.epochs;

  // Snapshot at the end of each of `route_length` equal step chunks.
  std::vector<int64_t> milestones;
  for (int64_t i = 1; i <= route_length; ++i) {
    milestones.push_back(total_steps * i / route_length);
  }
  size_t next = 0;
  train::train_classifier(
      teacher, train_set, test_set, config, nullptr,
      [&](int64_t step, int64_t) {
        if (next < milestones.size() && step >= milestones[next]) {
          route.push_back(nn::state_dict(teacher));
          ++next;
        }
      });
  // Guard against rounding: always include the final weights.
  if (route.size() < static_cast<size_t>(route_length)) {
    route.push_back(nn::state_dict(teacher));
  }
  return route;
}

train::TrainHistory train_rco_kd(
    models::MobileNetV2& student, models::MobileNetV2& teacher,
    const std::vector<std::map<std::string, Tensor>>& route,
    const data::ClassificationDataset& train_set,
    const data::ClassificationDataset& test_set,
    const train::TrainConfig& config, const KdConfig& kd) {
  NB_CHECK(!route.empty(), "RCO route is empty");
  const int64_t steps_per_epoch =
      (train_set.size() + config.batch_size - 1) / config.batch_size;
  const int64_t total_steps = steps_per_epoch * config.epochs;
  const int64_t stage_len =
      std::max<int64_t>(1, total_steps / static_cast<int64_t>(route.size()));

  teacher.set_training(false);
  int64_t current_stage = -1;
  auto ensure_stage = [&](int64_t step) {
    const int64_t stage = std::min<int64_t>(
        step / stage_len, static_cast<int64_t>(route.size()) - 1);
    if (stage != current_stage) {
      nn::load_state_dict(teacher, route[static_cast<size_t>(stage)]);
      current_stage = stage;
    }
  };
  ensure_stage(0);

  train::LossFn loss_fn = [&teacher, kd](const Tensor& logits,
                                         const std::vector<int64_t>& labels,
                                         const Tensor& images) {
    const Tensor teacher_logits = teacher.forward(images);
    nn::LossResult ce = nn::softmax_cross_entropy(logits, labels);
    nn::LossResult kdl = nn::kd_kl(logits, teacher_logits, kd.temperature);
    nn::LossResult out;
    out.loss = (1.0f - kd.alpha) * ce.loss + kd.alpha * kdl.loss;
    out.grad = ce.grad.scale(1.0f - kd.alpha);
    out.grad.add_scaled_(kdl.grad, kd.alpha);
    return out;
  };

  return train::train_classifier(
      student, train_set, test_set, config, loss_fn,
      [&ensure_stage](int64_t step, int64_t) { ensure_stage(step); });
}

train::TrainHistory train_rocket(models::MobileNetV2& light,
                                 const data::ClassificationDataset& train_set,
                                 const data::ClassificationDataset& test_set,
                                 const train::TrainConfig& config,
                                 const RocketConfig& rocket) {
  // Booster branch: a wider head + classifier sharing the light trunk.
  Rng rng(rocket.seed, 27);
  const int64_t trunk_channels =
      dynamic_cast<nn::Conv2d*>(light.head().conv_slot().get())
          ->options()
          .in_channels;
  const int64_t boost_feat = static_cast<int64_t>(
      std::lround(light.feature_channels() * rocket.booster_width));
  auto boost_head = std::make_shared<nn::ConvBnAct>(
      nn::Conv2dOptions(trunk_channels, boost_feat, 1), light.config().act);
  auto boost_pool = std::make_shared<nn::GlobalAvgPool>();
  auto boost_fc = std::make_shared<nn::Linear>(
      boost_feat, light.config().num_classes, true);
  nn::init_parameters(*boost_head, rng);
  fill_normal(boost_fc->weight().value, rng, 0.0f, 0.01f);
  boost_fc->bias().value.zero();
  auto light_pool = std::make_shared<nn::GlobalAvgPool>();

  data::LoaderOptions loader_opts;
  loader_opts.batch_size = config.batch_size;
  loader_opts.shuffle = true;
  loader_opts.augment = config.augment;
  loader_opts.seed = config.seed;
  loader_opts.workers = config.data_workers;
  const std::unique_ptr<data::BatchSource> loader =
      data::make_loader(train_set, loader_opts);
  const int64_t steps_per_epoch = loader->num_batches();
  const int64_t total_steps = steps_per_epoch * config.epochs;

  std::vector<nn::Parameter*> params = light.parameters();
  for (nn::Parameter* p : boost_head->parameters()) params.push_back(p);
  for (nn::Parameter* p : boost_fc->parameters()) params.push_back(p);
  optim::Sgd sgd(params, {config.lr, config.momentum, config.weight_decay, false});
  optim::CosineLr schedule(config.lr, total_steps);

  auto zero_all = [&] {
    light.zero_grad();
    boost_head->zero_grad();
    boost_fc->zero_grad();
  };

  train::TrainHistory history;
  int64_t step = 0;
  for (int64_t epoch = 0; epoch < config.epochs; ++epoch) {
    light.set_training(true);
    boost_head->set_training(true);
    boost_fc->set_training(true);
    loader->start_epoch();
    data::Batch batch;
    double loss_sum = 0.0;
    double acc_sum = 0.0;
    int64_t batches = 0;
    while (loader->next(batch)) {
      sgd.set_lr(schedule.lr_at(step));
      zero_all();

      // Shared trunk.
      Tensor t = light.stem().forward(batch.images);
      t = light.blocks().forward(t);

      // Light branch.
      Tensor lf = light.head().forward(t);
      Tensor lp = light_pool->forward(lf);
      Tensor light_logits = light.classifier().forward(lp);

      // Booster branch.
      Tensor bf = boost_head->forward(t);
      Tensor bp = boost_pool->forward(bf);
      Tensor boost_logits = boost_fc->forward(bp);

      nn::LossResult ce_l = nn::softmax_cross_entropy(light_logits, batch.labels);
      nn::LossResult ce_b = nn::softmax_cross_entropy(boost_logits, batch.labels);
      // Hint: pull the light logits toward the (detached) booster logits.
      nn::LossResult hint = nn::mse(light_logits, boost_logits);

      Tensor g_light = ce_l.grad.clone();
      g_light.add_scaled_(hint.grad, rocket.hint_weight);
      Tensor g_boost = ce_b.grad;  // gradient blocked: hint does not push booster

      Tensor gt_light = light.head().backward(
          light_pool->backward(light.classifier().backward(g_light)));
      Tensor gt_boost = boost_head->backward(
          boost_pool->backward(boost_fc->backward(g_boost)));
      gt_light.add_(gt_boost);
      light.stem().backward(light.blocks().backward(gt_light));

      sgd.step();
      loss_sum += ce_l.loss + ce_b.loss + rocket.hint_weight * hint.loss;
      acc_sum += nn::accuracy(light_logits, batch.labels);
      ++batches;
      ++step;
    }
    train::EpochStats stats;
    stats.epoch = epoch;
    stats.train_loss = static_cast<float>(loss_sum / batches);
    stats.train_acc = static_cast<float>(acc_sum / batches);
    stats.lr = sgd.lr();
    train::recalibrate_batchnorm(light, train_set);
    stats.test_acc = train::evaluate(light, test_set);
    history.best_test_acc = std::max(history.best_test_acc, stats.test_acc);
    history.epochs.push_back(stats);
  }
  history.final_test_acc = history.epochs.back().test_acc;
  return history;
}

}  // namespace nb::baselines
