#include "baselines/netaug.h"

#include <cmath>
#include <memory>

#include "data/dataloader.h"
#include "nn/init.h"
#include "nn/losses.h"
#include "nn/serialize.h"
#include "optim/lr_schedule.h"
#include "optim/sgd.h"
#include "tensor/gemm.h"
#include "tensor/tensor_ops.h"
#include "train/metrics.h"

namespace nb::baselines {

// ---------------------------------------------------------------- conv 1x1

SlicePointwiseConv::SlicePointwiseConv(int64_t max_in, int64_t max_out)
    : max_in_(max_in),
      max_out_(max_out),
      active_in_(max_in),
      active_out_(max_out),
      weight_(Tensor({max_out, max_in}), /*decay_flag=*/true) {
  NB_CHECK(max_in > 0 && max_out > 0, "slice conv dims");
}

void SlicePointwiseConv::set_active(int64_t active_in, int64_t active_out) {
  NB_CHECK(active_in >= 1 && active_in <= max_in_, "active_in out of range");
  NB_CHECK(active_out >= 1 && active_out <= max_out_, "active_out out of range");
  active_in_ = active_in;
  active_out_ = active_out;
}

std::vector<std::pair<std::string, nn::Parameter*>>
SlicePointwiseConv::local_params() {
  return {{"weight", &weight_}};
}

Tensor SlicePointwiseConv::forward(const Tensor& x) {
  NB_CHECK(x.dim() == 4 && x.size(1) == active_in_,
           "SlicePointwiseConv input mismatch: " + x.shape_str());
  input_ = x;
  const int64_t n = x.size(0), h = x.size(2), w = x.size(3);
  const int64_t plane = h * w;
  Tensor y({n, active_out_, h, w});
  // Row slice is contiguous only along out; gather the [act_out, act_in]
  // block explicitly so GEMM runs on dense buffers.
  Tensor wact({active_out_, active_in_});
  for (int64_t o = 0; o < active_out_; ++o) {
    const float* src = weight_.value.data() + o * max_in_;
    std::copy(src, src + active_in_, wact.data() + o * active_in_);
  }
  for (int64_t i = 0; i < n; ++i) {
    gemm(false, false, active_out_, plane, active_in_, 1.0f, wact.data(),
         x.data() + i * active_in_ * plane, 0.0f,
         y.data() + i * active_out_ * plane);
  }
  return y;
}

Tensor SlicePointwiseConv::backward(const Tensor& grad_out) {
  NB_CHECK(input_.defined(), "SlicePointwiseConv::backward before forward");
  const int64_t n = input_.size(0), h = input_.size(2), w = input_.size(3);
  const int64_t plane = h * w;

  Tensor wgrad_act({active_out_, active_in_});
  Tensor wact({active_out_, active_in_});
  for (int64_t o = 0; o < active_out_; ++o) {
    const float* src = weight_.value.data() + o * max_in_;
    std::copy(src, src + active_in_, wact.data() + o * active_in_);
  }
  Tensor grad_in({n, active_in_, h, w});
  for (int64_t i = 0; i < n; ++i) {
    const float* gout = grad_out.data() + i * active_out_ * plane;
    // dW += dY * X^T
    gemm(false, true, active_out_, active_in_, plane, 1.0f, gout,
         input_.data() + i * active_in_ * plane, 1.0f, wgrad_act.data());
    // dX = W^T * dY
    gemm(true, false, active_in_, plane, active_out_, 1.0f, wact.data(), gout,
         0.0f, grad_in.data() + i * active_in_ * plane);
  }
  for (int64_t o = 0; o < active_out_; ++o) {
    float* dst = weight_.grad.data() + o * max_in_;
    const float* src = wgrad_act.data() + o * active_in_;
    for (int64_t m = 0; m < active_in_; ++m) dst[m] += src[m];
  }
  return grad_in;
}

// ------------------------------------------------------------- conv dw kxk

SliceDepthwiseConv::SliceDepthwiseConv(int64_t max_channels, int64_t kernel,
                                       int64_t stride)
    : max_channels_(max_channels),
      kernel_(kernel),
      stride_(stride),
      active_(max_channels),
      weight_(Tensor({max_channels, 1, kernel, kernel}), /*decay_flag=*/true) {}

std::vector<std::pair<std::string, nn::Parameter*>>
SliceDepthwiseConv::local_params() {
  return {{"weight", &weight_}};
}

Tensor SliceDepthwiseConv::forward(const Tensor& x) {
  NB_CHECK(x.size(1) == active_, "SliceDepthwiseConv input mismatch");
  input_ = x;
  const int64_t n = x.size(0), h = x.size(2), w = x.size(3);
  const int64_t k = kernel_, pad = (kernel_ - 1) / 2;
  const int64_t oh = (h + 2 * pad - k) / stride_ + 1;
  const int64_t ow = (w + 2 * pad - k) / stride_ + 1;
  Tensor y({n, active_, oh, ow});
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t c = 0; c < active_; ++c) {
      const float* img = x.data() + (i * active_ + c) * h * w;
      const float* ker = weight_.value.data() + c * k * k;
      float* out = y.data() + (i * active_ + c) * oh * ow;
      for (int64_t oy = 0; oy < oh; ++oy) {
        for (int64_t ox = 0; ox < ow; ++ox) {
          float acc = 0.0f;
          for (int64_t ki = 0; ki < k; ++ki) {
            const int64_t iy = oy * stride_ + ki - pad;
            if (iy < 0 || iy >= h) continue;
            for (int64_t kj = 0; kj < k; ++kj) {
              const int64_t ix = ox * stride_ + kj - pad;
              if (ix < 0 || ix >= w) continue;
              acc += ker[ki * k + kj] * img[iy * w + ix];
            }
          }
          out[oy * ow + ox] = acc;
        }
      }
    }
  }
  return y;
}

Tensor SliceDepthwiseConv::backward(const Tensor& grad_out) {
  NB_CHECK(input_.defined(), "SliceDepthwiseConv::backward before forward");
  const int64_t n = input_.size(0), h = input_.size(2), w = input_.size(3);
  const int64_t k = kernel_, pad = (kernel_ - 1) / 2;
  const int64_t oh = grad_out.size(2), ow = grad_out.size(3);
  Tensor grad_in(input_.shape());
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t c = 0; c < active_; ++c) {
      const float* img = input_.data() + (i * active_ + c) * h * w;
      const float* gout = grad_out.data() + (i * active_ + c) * oh * ow;
      const float* ker = weight_.value.data() + c * k * k;
      float* kgrad = weight_.grad.data() + c * k * k;
      float* gin = grad_in.data() + (i * active_ + c) * h * w;
      for (int64_t oy = 0; oy < oh; ++oy) {
        for (int64_t ox = 0; ox < ow; ++ox) {
          const float gv = gout[oy * ow + ox];
          if (gv == 0.0f) continue;
          for (int64_t ki = 0; ki < k; ++ki) {
            const int64_t iy = oy * stride_ + ki - pad;
            if (iy < 0 || iy >= h) continue;
            for (int64_t kj = 0; kj < k; ++kj) {
              const int64_t ix = ox * stride_ + kj - pad;
              if (ix < 0 || ix >= w) continue;
              kgrad[ki * k + kj] += gv * img[iy * w + ix];
              gin[iy * w + ix] += gv * ker[ki * k + kj];
            }
          }
        }
      }
    }
  }
  return grad_in;
}

// --------------------------------------------------------------------- BN

SliceBatchNorm::SliceBatchNorm(int64_t max_channels, float eps, float momentum)
    : max_channels_(max_channels),
      active_(max_channels),
      eps_(eps),
      momentum_(momentum),
      gamma_(Tensor::ones({max_channels}), /*decay_flag=*/false),
      beta_(Tensor::zeros({max_channels}), /*decay_flag=*/false),
      running_mean_(Tensor::zeros({max_channels})),
      running_var_(Tensor::ones({max_channels})) {}

std::vector<std::pair<std::string, nn::Parameter*>>
SliceBatchNorm::local_params() {
  return {{"gamma", &gamma_}, {"beta", &beta_}};
}

std::vector<std::pair<std::string, Tensor*>> SliceBatchNorm::local_buffers() {
  return {{"running_mean", &running_mean_}, {"running_var", &running_var_}};
}

Tensor SliceBatchNorm::forward(const Tensor& x) {
  NB_CHECK(x.size(1) == active_, "SliceBatchNorm input mismatch");
  const int64_t n = x.size(0), h = x.size(2), w = x.size(3);
  const int64_t plane = h * w;
  const int64_t count = n * plane;
  Tensor y(x.shape());
  forward_was_training_ = training();

  if (training()) {
    xhat_ = Tensor(x.shape());
    inv_std_ = Tensor({active_});
    count_ = count;
    for (int64_t c = 0; c < active_; ++c) {
      double sum = 0.0, sq = 0.0;
      for (int64_t i = 0; i < n; ++i) {
        const float* p = x.data() + (i * active_ + c) * plane;
        for (int64_t j = 0; j < plane; ++j) {
          sum += p[j];
          sq += static_cast<double>(p[j]) * p[j];
        }
      }
      const float mean = static_cast<float>(sum / count);
      const float var =
          static_cast<float>(sq / count - static_cast<double>(mean) * mean);
      const float istd = 1.0f / std::sqrt(std::max(var, 0.0f) + eps_);
      inv_std_.at(c) = istd;
      const float g = gamma_.value.at(c), b = beta_.value.at(c);
      for (int64_t i = 0; i < n; ++i) {
        const float* p = x.data() + (i * active_ + c) * plane;
        float* xh = xhat_.data() + (i * active_ + c) * plane;
        float* o = y.data() + (i * active_ + c) * plane;
        for (int64_t j = 0; j < plane; ++j) {
          xh[j] = (p[j] - mean) * istd;
          o[j] = g * xh[j] + b;
        }
      }
      if (record_stats_) {
        const float unbiased =
            count > 1 ? var * static_cast<float>(count) / (count - 1) : var;
        running_mean_.at(c) =
            (1.0f - momentum_) * running_mean_.at(c) + momentum_ * mean;
        running_var_.at(c) =
            (1.0f - momentum_) * running_var_.at(c) + momentum_ * unbiased;
      }
    }
  } else {
    for (int64_t c = 0; c < active_; ++c) {
      const float istd = 1.0f / std::sqrt(running_var_.at(c) + eps_);
      const float g = gamma_.value.at(c) * istd;
      const float b = beta_.value.at(c) - running_mean_.at(c) * g;
      for (int64_t i = 0; i < n; ++i) {
        const float* p = x.data() + (i * active_ + c) * plane;
        float* o = y.data() + (i * active_ + c) * plane;
        for (int64_t j = 0; j < plane; ++j) o[j] = g * p[j] + b;
      }
    }
  }
  return y;
}

Tensor SliceBatchNorm::backward(const Tensor& grad_out) {
  NB_CHECK(forward_was_training_ && xhat_.defined(),
           "SliceBatchNorm::backward requires training forward");
  const int64_t n = grad_out.size(0);
  const int64_t plane = grad_out.size(2) * grad_out.size(3);
  Tensor grad_in(grad_out.shape());
  const float inv_count = 1.0f / static_cast<float>(count_);
  for (int64_t c = 0; c < active_; ++c) {
    double sum_g = 0.0, sum_gx = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      const float* g = grad_out.data() + (i * active_ + c) * plane;
      const float* xh = xhat_.data() + (i * active_ + c) * plane;
      for (int64_t j = 0; j < plane; ++j) {
        sum_g += g[j];
        sum_gx += static_cast<double>(g[j]) * xh[j];
      }
    }
    gamma_.grad.at(c) += static_cast<float>(sum_gx);
    beta_.grad.at(c) += static_cast<float>(sum_g);
    const float gmma = gamma_.value.at(c);
    const float istd = inv_std_.at(c);
    const float mean_g = static_cast<float>(sum_g) * inv_count;
    const float mean_gx = static_cast<float>(sum_gx) * inv_count;
    for (int64_t i = 0; i < n; ++i) {
      const float* g = grad_out.data() + (i * active_ + c) * plane;
      const float* xh = xhat_.data() + (i * active_ + c) * plane;
      float* gi = grad_in.data() + (i * active_ + c) * plane;
      for (int64_t j = 0; j < plane; ++j) {
        gi[j] = gmma * istd * (g[j] - mean_g - xh[j] * mean_gx);
      }
    }
  }
  return grad_in;
}

// ------------------------------------------------------------------ block

AugInvertedResidual::AugInvertedResidual(int64_t cin, int64_t cout,
                                         int64_t stride, int64_t expand_ratio,
                                         int64_t kernel, float aug_mult,
                                         nn::ActKind act)
    : cin_(cin),
      cout_(cout),
      stride_(stride),
      base_hidden_(cin * expand_ratio),
      max_hidden_(expand_ratio == 1
                      ? cin
                      : static_cast<int64_t>(std::lround(
                            static_cast<double>(cin * expand_ratio) * aug_mult))),
      active_hidden_(base_hidden_),
      use_residual_(stride == 1 && cin == cout) {
  if (expand_ratio > 1) {
    expand_ = std::make_shared<SlicePointwiseConv>(cin, max_hidden_);
    bn1_ = std::make_shared<SliceBatchNorm>(max_hidden_);
    act1_ = std::make_shared<nn::Activation>(act);
  }
  dw_ = std::make_shared<SliceDepthwiseConv>(max_hidden_, kernel, stride);
  bn2_ = std::make_shared<SliceBatchNorm>(max_hidden_);
  act2_ = std::make_shared<nn::Activation>(act);
  project_ = std::make_shared<SlicePointwiseConv>(max_hidden_, cout);
  bn3_ = std::make_shared<SliceBatchNorm>(cout);
  set_width(1.0f);
}

void AugInvertedResidual::set_width(float width_mult) {
  NB_CHECK(width_mult >= 1.0f, "NetAug width >= 1");
  if (!expand_) return;  // t == 1 blocks are not augmented
  active_hidden_ = std::min<int64_t>(
      max_hidden_, static_cast<int64_t>(std::lround(
                       static_cast<double>(base_hidden_) * width_mult)));
  expand_->set_active(cin_, active_hidden_);
  bn1_->set_active(active_hidden_);
  dw_->set_active(active_hidden_);
  bn2_->set_active(active_hidden_);
  project_->set_active(active_hidden_, cout_);
  bn3_->set_active(cout_);
}

void AugInvertedResidual::set_record_stats(bool record) {
  if (bn1_) bn1_->set_record_stats(record);
  bn2_->set_record_stats(record);
  bn3_->set_record_stats(record);
}

Tensor AugInvertedResidual::forward(const Tensor& x) {
  Tensor y = x;
  if (expand_) {
    y = expand_->forward(y);
    y = bn1_->forward(y);
    y = act1_->forward(y);
  }
  y = dw_->forward(y);
  y = bn2_->forward(y);
  y = act2_->forward(y);
  y = project_->forward(y);
  y = bn3_->forward(y);
  if (use_residual_) y.add_(x);
  return y;
}

Tensor AugInvertedResidual::backward(const Tensor& grad_out) {
  Tensor g = bn3_->backward(grad_out);
  g = project_->backward(g);
  g = act2_->backward(g);
  g = bn2_->backward(g);
  g = dw_->backward(g);
  if (expand_) {
    g = act1_->backward(g);
    g = bn1_->backward(g);
    g = expand_->backward(g);
  }
  if (use_residual_) g.add_(grad_out);
  return g;
}

std::vector<std::pair<std::string, nn::Module*>>
AugInvertedResidual::named_children() {
  std::vector<std::pair<std::string, nn::Module*>> out;
  if (expand_) {
    out.emplace_back("expand", expand_.get());
    out.emplace_back("bn1", bn1_.get());
    out.emplace_back("act1", act1_.get());
  }
  out.emplace_back("dw", dw_.get());
  out.emplace_back("bn2", bn2_.get());
  out.emplace_back("act2", act2_.get());
  out.emplace_back("project", project_.get());
  out.emplace_back("bn3", bn3_.get());
  return out;
}

namespace {

void copy_slice_bn(SliceBatchNorm& src, nn::BatchNorm2d& dst) {
  const int64_t c = dst.channels();
  auto src_params = src.local_params();
  auto src_buffers = src.local_buffers();
  for (int64_t i = 0; i < c; ++i) {
    dst.gamma().value.at(i) = src_params[0].second->value.at(i);
    dst.beta().value.at(i) = src_params[1].second->value.at(i);
    dst.running_mean().at(i) = src_buffers[0].second->at(i);
    dst.running_var().at(i) = src_buffers[1].second->at(i);
  }
}

void copy_pointwise_slice(SlicePointwiseConv& src, nn::Conv2d& dst) {
  const int64_t out_c = dst.options().out_channels;
  const int64_t in_c = dst.options().in_channels;
  const int64_t max_in = src.weight().value.size(1);
  for (int64_t o = 0; o < out_c; ++o) {
    for (int64_t m = 0; m < in_c; ++m) {
      dst.weight().value.at(o * in_c + m) =
          src.weight().value.at(o * max_in + m);
    }
  }
}

}  // namespace

void AugInvertedResidual::export_base_to(nn::InvertedResidual& dst) {
  NB_CHECK(dst.cin() == cin_ && dst.cout() == cout_ &&
               dst.stride() == stride_,
           "export_base_to: block geometry mismatch");
  NB_CHECK(dst.has_expand() == (expand_ != nullptr),
           "export_base_to: expand-stage mismatch");
  if (expand_) {
    copy_pointwise_slice(*expand_, *dst.expand_unit().conv2d());
    copy_slice_bn(*bn1_, *dst.expand_unit().bn());
  }
  // Depthwise slice: first base_hidden_ channels.
  nn::Conv2d& dw_dst = *dst.dw_unit().conv2d();
  const int64_t k = dw_dst.options().kernel;
  auto dw_params = dw_->local_params();
  for (int64_t c = 0; c < base_hidden_; ++c) {
    for (int64_t j = 0; j < k * k; ++j) {
      dw_dst.weight().value.at(c * k * k + j) =
          dw_params[0].second->value.at(c * k * k + j);
    }
  }
  copy_slice_bn(*bn2_, *dst.dw_unit().bn());
  copy_pointwise_slice(*project_, *dst.project_unit().conv2d());
  copy_slice_bn(*bn3_, *dst.project_unit().bn());
}

// ------------------------------------------------------------------ model

NetAugModel::NetAugModel(const models::ModelConfig& config, float aug_mult,
                         Rng& rng)
    : config_(config), aug_mult_(aug_mult) {
  const int64_t stem_c =
      models::make_divisible(config.stem_channels * config.width_mult);
  stem_ = std::make_shared<nn::ConvBnAct>(
      nn::Conv2dOptions(3, stem_c, 3).same_padding(), config.act);
  int64_t cin = stem_c;
  for (const models::Stage& stage : config.stages) {
    const int64_t cout = models::make_divisible(stage.c * config.width_mult);
    for (int64_t i = 0; i < stage.n; ++i) {
      const int64_t stride = i == 0 ? stage.s : 1;
      blocks_.push_back(std::make_shared<AugInvertedResidual>(
          cin, cout, stride, stage.t, stage.k, aug_mult, config.act));
      cin = cout;
    }
  }
  const int64_t feat =
      models::make_divisible(config.head_channels * config.width_mult);
  head_ = std::make_shared<nn::ConvBnAct>(nn::Conv2dOptions(cin, feat, 1),
                                          config.act);
  pool_ = std::make_shared<nn::GlobalAvgPool>();
  classifier_ = std::make_shared<nn::Linear>(feat, config.num_classes, true);

  nn::init_parameters(*this, rng);
  // Slice layers are not Conv2d, so give their weights a Kaiming-style init
  // by hand.
  apply([&rng](nn::Module& m) {
    if (auto* pw = dynamic_cast<SlicePointwiseConv*>(&m)) {
      const float stddev =
          std::sqrt(2.0f / static_cast<float>(pw->weight().value.size(0)));
      fill_normal(pw->weight().value, rng, 0.0f, stddev);
    } else if (auto* dw = dynamic_cast<SliceDepthwiseConv*>(&m)) {
      for (auto& [name, p] : dw->local_params()) {
        (void)name;
        const float stddev = std::sqrt(
            2.0f / static_cast<float>(p->value.size(2) * p->value.size(3)));
        fill_normal(p->value, rng, 0.0f, stddev);
      }
    }
  });
}

void NetAugModel::set_width(float width_mult) {
  for (auto& b : blocks_) b->set_width(width_mult);
}

void NetAugModel::set_record_stats(bool record) {
  for (auto& b : blocks_) b->set_record_stats(record);
}

Tensor NetAugModel::forward(const Tensor& x) {
  Tensor y = stem_->forward(x);
  for (auto& b : blocks_) y = b->forward(y);
  y = head_->forward(y);
  y = pool_->forward(y);
  return classifier_->forward(y);
}

Tensor NetAugModel::backward(const Tensor& grad_out) {
  Tensor g = classifier_->backward(grad_out);
  g = pool_->backward(g);
  g = head_->backward(g);
  for (auto it = blocks_.rbegin(); it != blocks_.rend(); ++it) {
    g = (*it)->backward(g);
  }
  return stem_->backward(g);
}

std::vector<std::pair<std::string, nn::Module*>> NetAugModel::named_children() {
  std::vector<std::pair<std::string, nn::Module*>> out;
  out.emplace_back("stem", stem_.get());
  for (size_t i = 0; i < blocks_.size(); ++i) {
    out.emplace_back("block" + std::to_string(i), blocks_[i].get());
  }
  out.emplace_back("head", head_.get());
  out.emplace_back("pool", pool_.get());
  out.emplace_back("classifier", classifier_.get());
  return out;
}

std::shared_ptr<models::MobileNetV2> NetAugModel::export_base() {
  auto dst = std::make_shared<models::MobileNetV2>(config_);
  nn::load_state_dict(dst->stem(), nn::state_dict(*stem_));
  auto dst_blocks = dst->residual_blocks();
  NB_CHECK(dst_blocks.size() == blocks_.size(),
           "export_base: block count mismatch");
  for (size_t i = 0; i < blocks_.size(); ++i) {
    blocks_[i]->export_base_to(*dst_blocks[i]);
  }
  nn::load_state_dict(dst->head(), nn::state_dict(*head_));
  nn::load_state_dict(dst->classifier(), nn::state_dict(*classifier_));
  return dst;
}

// --------------------------------------------------------------- training

namespace {

/// BN recalibration for the supernet's slice BNs at base width (same
/// momentum-1/i trick as train::recalibrate_batchnorm; see that docstring).
void recalibrate_netaug(NetAugModel& model,
                        const data::ClassificationDataset& dataset) {
  std::vector<SliceBatchNorm*> bns;
  model.apply([&bns](nn::Module& m) {
    if (auto* bn = dynamic_cast<SliceBatchNorm*>(&m)) bns.push_back(bn);
  });
  std::vector<nn::BatchNorm2d*> plain;
  model.apply([&plain](nn::Module& m) {
    if (auto* bn = dynamic_cast<nn::BatchNorm2d*>(&m)) plain.push_back(bn);
  });

  model.set_width(1.0f);
  model.set_record_stats(true);
  model.set_training(true);
  data::DataLoader loader(dataset, 64, /*shuffle=*/false, /*augment=*/false);
  loader.start_epoch();
  data::Batch batch;
  int64_t i = 0;
  while (i < 8 && loader.next(batch)) {
    const float m = 1.0f / static_cast<float>(i + 1);
    for (SliceBatchNorm* bn : bns) bn->set_momentum(m);
    for (nn::BatchNorm2d* bn : plain) bn->set_momentum(m);
    (void)model.forward(batch.images);
    ++i;
  }
  for (SliceBatchNorm* bn : bns) bn->set_momentum(0.1f);
  for (nn::BatchNorm2d* bn : plain) bn->set_momentum(0.1f);
}

}  // namespace

train::TrainHistory train_netaug(NetAugModel& model,
                                 const data::ClassificationDataset& train_set,
                                 const data::ClassificationDataset& test_set,
                                 const train::TrainConfig& config,
                                 const NetAugConfig& netaug) {
  data::LoaderOptions loader_opts;
  loader_opts.batch_size = config.batch_size;
  loader_opts.shuffle = true;
  loader_opts.augment = config.augment;
  loader_opts.seed = config.seed;
  loader_opts.workers = config.data_workers;
  const std::unique_ptr<data::BatchSource> loader =
      data::make_loader(train_set, loader_opts);
  const int64_t steps_per_epoch = loader->num_batches();
  const int64_t total_steps = steps_per_epoch * config.epochs;
  optim::Sgd sgd(model.parameters(),
                 {config.lr, config.momentum, config.weight_decay, false});
  optim::CosineLr schedule(config.lr, total_steps);
  Rng rng(netaug.seed, 21);

  train::TrainHistory history;
  int64_t step = 0;
  for (int64_t epoch = 0; epoch < config.epochs; ++epoch) {
    model.set_training(true);
    loader->start_epoch();
    data::Batch batch;
    double loss_sum = 0.0;
    double acc_sum = 0.0;
    int64_t batches = 0;
    while (loader->next(batch)) {
      sgd.set_lr(schedule.lr_at(step));
      model.zero_grad();

      // Base-width pass: records BN stats, weight 1.
      model.set_width(1.0f);
      model.set_record_stats(true);
      Tensor logits = model.forward(batch.images);
      nn::LossResult base = nn::softmax_cross_entropy(logits, batch.labels);
      model.backward(base.grad);

      // One sampled augmented width, stats not recorded (NetAug aux loss).
      const float width = 1.0f + rng.uniform() * (model.aug_mult() - 1.0f);
      model.set_width(width);
      model.set_record_stats(false);
      Tensor aug_logits = model.forward(batch.images);
      nn::LossResult aug = nn::softmax_cross_entropy(aug_logits, batch.labels);
      aug.grad.mul_(netaug.aug_loss_weight);
      model.backward(aug.grad);

      sgd.step();
      loss_sum += base.loss + netaug.aug_loss_weight * aug.loss;
      acc_sum += nn::accuracy(logits, batch.labels);
      ++batches;
      ++step;
    }
    train::EpochStats stats;
    stats.epoch = epoch;
    stats.train_loss = static_cast<float>(loss_sum / batches);
    stats.train_acc = static_cast<float>(acc_sum / batches);
    stats.lr = sgd.lr();
    model.set_width(1.0f);
    model.set_record_stats(true);
    recalibrate_netaug(model, train_set);
    stats.test_acc = train::evaluate(model, test_set);
    history.best_test_acc = std::max(history.best_test_acc, stats.test_acc);
    history.epochs.push_back(stats);
  }
  history.final_test_acc = history.epochs.back().test_acc;
  return history;
}

}  // namespace nb::baselines
