// The knowledge-distillation baseline family of Table I:
//   - KD (Hinton et al.): CE + T^2*KL against a fixed wide teacher;
//   - tf-KD (Yuan et al., CVPR'20): teacher-free KD with a manually designed
//     smoothed teacher distribution;
//   - RCO-KD (Jin et al., ICCV'19): route-constrained optimization — the
//     student distills against a *sequence* of teacher checkpoints saved
//     along the teacher's own training route (easy-to-hard);
//   - Rocket Launching (Zhou et al., AAAI'18): light net and booster net
//     share a backbone and are trained jointly with a hint loss; the light
//     net is deployed.
#pragma once

#include <memory>

#include "data/dataset.h"
#include "models/mobilenetv2.h"
#include "nn/serialize.h"
#include "train/trainer.h"

namespace nb::baselines {

struct KdConfig {
  float temperature = 4.0f;
  /// loss = (1 - alpha) * CE + alpha * T^2 * KL.
  float alpha = 0.7f;
};

/// Criterion closing over a frozen teacher (eval-mode forwards).
train::LossFn make_kd_loss(std::shared_ptr<nn::Module> teacher,
                           const KdConfig& config);

/// tf-KD's manual teacher: probability `correct_prob` on the label, the rest
/// spread uniformly, sharpened by `temperature`.
train::LossFn make_tfkd_loss(int64_t num_classes, const KdConfig& config,
                             float correct_prob = 0.9f);

/// Trains the teacher while snapshotting `route_length` evenly spaced
/// checkpoints (including the final one) — the RCO route.
std::vector<std::map<std::string, Tensor>> train_teacher_route(
    models::MobileNetV2& teacher, const data::ClassificationDataset& train_set,
    const data::ClassificationDataset& test_set,
    const train::TrainConfig& config, int64_t route_length);

/// RCO-KD: the student's KD target steps through the teacher route in equal
/// epoch chunks.
train::TrainHistory train_rco_kd(
    models::MobileNetV2& student, models::MobileNetV2& teacher,
    const std::vector<std::map<std::string, Tensor>>& route,
    const data::ClassificationDataset& train_set,
    const data::ClassificationDataset& test_set,
    const train::TrainConfig& config, const KdConfig& kd);

struct RocketConfig {
  /// Booster head widening factor over the light head.
  float booster_width = 2.0f;
  /// Weight of the hint (logit-matching) loss.
  float hint_weight = 0.5f;
  uint64_t seed = 41;
};

/// Rocket Launching: joint training of the light model plus a wider booster
/// branch sharing the light model's trunk; returns the light net's history.
/// After training the light model (passed in) is the deployable network.
train::TrainHistory train_rocket(models::MobileNetV2& light,
                                 const data::ClassificationDataset& train_set,
                                 const data::ClassificationDataset& test_set,
                                 const train::TrainConfig& config,
                                 const RocketConfig& rocket);

}  // namespace nb::baselines
