// NetAug baseline (Cai et al., 2021): train the TNN embedded in a *wider*
// supernet. Each step runs the base network plus one sampled wider
// configuration whose weights are shared (the base channels are a prefix
// slice of the supernet's), summing both losses; at inference only the base
// slice remains. NetBooster's contrast (paper Sec. II-A): NetAug expands
// width only and drops the augmented part abruptly, whereas NetBooster
// expands width AND depth and contracts gradually via PLT.
//
// Faithful simplification: the augmented dimension is the hidden width of
// each inverted residual block (the expansion-ratio axis NetAug itself
// augments), so weight sharing stays block-local; block I/O widths equal the
// base model's. BN running statistics are recorded only during base-width
// passes so deployment statistics stay clean.
#pragma once

#include <memory>

#include "data/dataset.h"
#include "models/mobilenetv2.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/pooling.h"
#include "train/trainer.h"

namespace nb::baselines {

/// 1x1 convolution over a weight allocated at supernet width, running on a
/// prefix slice [active_out x active_in].
class SlicePointwiseConv : public nn::Module {
 public:
  SlicePointwiseConv(int64_t max_in, int64_t max_out);

  void set_active(int64_t active_in, int64_t active_out);
  int64_t active_in() const { return active_in_; }
  int64_t active_out() const { return active_out_; }

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string type_name() const override { return "SlicePointwiseConv"; }
  std::vector<std::pair<std::string, nn::Parameter*>> local_params() override;

  nn::Parameter& weight() { return weight_; }

 private:
  int64_t max_in_, max_out_;
  int64_t active_in_, active_out_;
  nn::Parameter weight_;  // [max_out, max_in]
  Tensor input_;
};

/// Depthwise conv on the first `active` channels of a supernet-width weight.
class SliceDepthwiseConv : public nn::Module {
 public:
  SliceDepthwiseConv(int64_t max_channels, int64_t kernel, int64_t stride);

  void set_active(int64_t active) { active_ = active; }

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string type_name() const override { return "SliceDepthwiseConv"; }
  std::vector<std::pair<std::string, nn::Parameter*>> local_params() override;

 private:
  int64_t max_channels_, kernel_, stride_, active_;
  nn::Parameter weight_;  // [max_c, 1, k, k]
  Tensor input_;
};

/// BN over a prefix slice with gated running-stat updates.
class SliceBatchNorm : public nn::Module {
 public:
  explicit SliceBatchNorm(int64_t max_channels, float eps = 1e-5f,
                          float momentum = 0.1f);

  void set_active(int64_t active) { active_ = active; }
  /// Running stats update only when enabled (base-width passes).
  void set_record_stats(bool record) { record_stats_ = record; }
  float momentum() const { return momentum_; }
  void set_momentum(float momentum) { momentum_ = momentum; }

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string type_name() const override { return "SliceBatchNorm"; }
  std::vector<std::pair<std::string, nn::Parameter*>> local_params() override;
  std::vector<std::pair<std::string, Tensor*>> local_buffers() override;

 private:
  int64_t max_channels_, active_;
  float eps_, momentum_;
  bool record_stats_ = true;
  nn::Parameter gamma_, beta_;
  Tensor running_mean_, running_var_;
  Tensor xhat_, inv_std_;
  int64_t count_ = 0;
  bool forward_was_training_ = false;
};

/// Inverted residual block whose hidden width can dilate up to
/// base_hidden * aug_mult. Blocks with expand_ratio == 1 mirror the plain
/// MobileNetV2 structure exactly (no pw-expand stage) and are not augmented,
/// so the base slice of every block maps 1:1 onto nn::InvertedResidual —
/// which is what export_base_to() relies on.
class AugInvertedResidual : public nn::Module {
 public:
  AugInvertedResidual(int64_t cin, int64_t cout, int64_t stride,
                      int64_t expand_ratio, int64_t kernel, float aug_mult,
                      nn::ActKind act);

  /// width_mult in [1, aug_mult]; 1 = base network. No-op for t == 1 blocks.
  void set_width(float width_mult);
  void set_record_stats(bool record);
  int64_t base_hidden() const { return base_hidden_; }
  int64_t max_hidden() const { return max_hidden_; }

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string type_name() const override { return "AugInvertedResidual"; }
  std::vector<std::pair<std::string, nn::Module*>> named_children() override;

  /// Copies the base-width slice of every weight/BN into a structurally
  /// matching plain block (deployment export).
  void export_base_to(nn::InvertedResidual& dst);

 private:
  int64_t cin_, cout_, stride_;
  int64_t base_hidden_, max_hidden_, active_hidden_;
  bool use_residual_;
  std::shared_ptr<SlicePointwiseConv> expand_;  // nullptr when t == 1
  std::shared_ptr<SliceBatchNorm> bn1_;
  std::shared_ptr<nn::Activation> act1_;
  std::shared_ptr<SliceDepthwiseConv> dw_;
  std::shared_ptr<SliceBatchNorm> bn2_;
  std::shared_ptr<nn::Activation> act2_;
  std::shared_ptr<SlicePointwiseConv> project_;
  std::shared_ptr<SliceBatchNorm> bn3_;
};

/// The NetAug supernet for a MobileNetV2-style config.
class NetAugModel : public nn::Module {
 public:
  NetAugModel(const models::ModelConfig& config, float aug_mult, Rng& rng);

  /// 1.0 = base network (deployment); up to aug_mult.
  void set_width(float width_mult);
  void set_record_stats(bool record);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string type_name() const override { return "NetAugModel"; }
  std::vector<std::pair<std::string, nn::Module*>> named_children() override;

  float aug_mult() const { return aug_mult_; }

  /// Builds a plain MobileNetV2 holding this supernet's base-width weights —
  /// NetAug's deployment artifact ("directly remove the supernet").
  std::shared_ptr<models::MobileNetV2> export_base();

 private:
  models::ModelConfig config_;
  float aug_mult_;
  std::shared_ptr<nn::ConvBnAct> stem_;
  std::vector<std::shared_ptr<AugInvertedResidual>> blocks_;
  std::shared_ptr<nn::ConvBnAct> head_;
  std::shared_ptr<nn::GlobalAvgPool> pool_;
  std::shared_ptr<nn::Linear> classifier_;
};

struct NetAugConfig {
  float aug_mult = 2.0f;
  /// Weight of the sampled augmented configuration's loss.
  float aug_loss_weight = 1.0f;
  uint64_t seed = 31;
};

/// Full NetAug training run; evaluation happens at base width.
train::TrainHistory train_netaug(NetAugModel& model,
                                 const data::ClassificationDataset& train_set,
                                 const data::ClassificationDataset& test_set,
                                 const train::TrainConfig& config,
                                 const NetAugConfig& netaug);

}  // namespace nb::baselines
