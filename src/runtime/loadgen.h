// Open-loop load generation for the serving Engine.
//
// Closed-loop clients (submit, wait, submit again) can never overload a
// server: their offered rate collapses to the server's capacity, so queues
// stay short and the overload path goes untested. Real traffic is
// open-loop — arrivals happen on the *users'* schedule, independent of how
// the fleet is doing — and that is the regime where admission control,
// deadlines and shedding earn their keep.
//
// This module supplies the two halves:
//
//   * make_open_loop_schedule — a seed-deterministic Poisson arrival
//     schedule with burst replay (rate multipliers over time windows),
//     multi-model mixes and a high-lane fraction. Same seed, same spec ->
//     bit-identical schedule on every platform (PCG32 underneath), so an
//     overload run is comparable across commits.
//   * run_open_loop — replays a schedule against an Engine: one generator
//     thread submits each request at its scheduled instant with an
//     absolute deadline anchored to the SCHEDULED arrival (generator lag
//     counts against the SLO, as it would for a real user), then harvests
//     every future and buckets the outcomes by the rejection taxonomy.
//
// Goodput / shed-rate / tail-latency numbers derived from these runs are
// what BENCH_serve.json's workers sweep and overload rows report.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/engine.h"
#include "tensor/tensor.h"

namespace nb::runtime {

/// A burst window: while t in [start_s, start_s + duration_s) the offered
/// rate is scaled by `multiplier` (overlapping bursts multiply).
struct BurstSpec {
  double start_s = 0.0;
  double duration_s = 0.0;
  double multiplier = 1.0;
};

struct OpenLoopSpec {
  /// Base offered rate, all models combined, images/s.
  double rate_per_s = 100.0;
  double duration_s = 1.0;
  /// Seed for the whole schedule (arrival times, model picks, lane picks).
  uint64_t seed = 1;
  std::vector<BurstSpec> bursts;
  /// Relative traffic weight per model stream; empty = one stream.
  std::vector<double> mix_weights;
  /// Probability an arrival rides Lane::high (interactive traffic share).
  double high_lane_fraction = 0.0;
  /// Relative weight per input GEOMETRY within every stream; empty = each
  /// arrival uses its stream's single `image` (Arrival::geo stays 0 and no
  /// extra rng draw happens, so pre-geometry schedules replay
  /// bit-identically). Non-empty = each arrival additionally picks
  /// ModelTraffic::geo_images[geo] — the mixed-resolution traffic the
  /// bucketing bench and overload tests replay.
  std::vector<double> geo_weights;
};

struct Arrival {
  double t_s = 0.0;    // offset from run start
  int32_t stream = 0;  // index into the model mix
  Lane lane = Lane::normal;
  int32_t geo = 0;  // index into the geometry mix (0 when geo_weights empty)
};

/// Instantaneous rate multiplier at time t (1.0 outside every burst).
double rate_multiplier_at(const OpenLoopSpec& spec, double t_s);

/// The seed-deterministic arrival schedule (Poisson via thinning against
/// the burst-peak rate), sorted by time.
std::vector<Arrival> make_open_loop_schedule(const OpenLoopSpec& spec);

/// One model stream of an open-loop mix: every arrival on this stream
/// submits `image` ([C, H, W]) against `name` — or, when the spec carries
/// geo_weights, `geo_images[Arrival::geo]` (one [C, H, W] tensor per
/// geometry weight; geometries may differ per entry, which is the whole
/// point). `geo_images` must be empty or match geo_weights in size.
struct ModelTraffic {
  std::string name;
  Tensor image;
  std::vector<Tensor> geo_images;
};

struct OpenLoopResult {
  int64_t offered = 0;  // arrivals replayed
  // Admission-time outcomes (submit threw RejectedError).
  int64_t rejected_queue_full = 0;
  int64_t rejected_deadline = 0;
  int64_t rejected_shutdown = 0;
  int64_t rejected_other = 0;
  // Future outcomes for admitted requests.
  int64_t completed = 0;         // delivered a value
  int64_t dropped_deadline = 0;  // RejectedError{Deadline} while queued
  int64_t dropped_shutdown = 0;  // RejectedError{ShuttingDown} (drop policy)
  int64_t faulted = 0;           // any non-rejection error
  double wall_s = 0.0;     // replay start -> last future resolved
  double max_lag_s = 0.0;  // worst generator lateness vs the schedule

  int64_t shed() const {
    return rejected_queue_full + rejected_deadline + rejected_shutdown +
           rejected_other + dropped_deadline + dropped_shutdown;
  }
  double shed_rate() const {
    return offered > 0
               ? static_cast<double>(shed()) / static_cast<double>(offered)
               : 0.0;
  }
  double goodput_per_s() const {
    return wall_s > 0 ? static_cast<double>(completed) / wall_s : 0.0;
  }
};

/// Replays `spec` against `engine`. `mix` must have one entry per mix
/// weight (or exactly one when weights are empty). `slo_us` > 0 attaches an
/// absolute deadline of scheduled-arrival + slo_us to every request.
OpenLoopResult run_open_loop(Engine& engine,
                             const std::vector<ModelTraffic>& mix,
                             const OpenLoopSpec& spec, int64_t slo_us);

}  // namespace nb::runtime
