// Session — cheap per-stream execution state over a shared CompiledModel.
//
// A Session owns only what one stream needs: a small LRU cache of
// geometry-keyed InferPlans (each plan = arena + step table, borrowing the
// model's weight panels) and a thread budget. Creating a Session never
// copies weights; MemoryStats splits owned arena floats from borrowed
// panel floats so the zero-duplication invariant is assertable.
//
// Concurrency model: one Session per stream. run() is thread-confined (no
// internal lock — call it from one thread at a time), but any number of
// Sessions over the same CompiledModel run() concurrently and produce
// bitwise-identical results to a single-threaded run. With the default
// `serial` thread budget each stream executes entirely on its calling
// thread (an nb::SerialScope), so N streams scale without contending on
// the process-wide pool; `shared_pool` opts a low-traffic stream back into
// intra-op parallelism.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <memory>

#include "export/infer_plan.h"
#include "runtime/compiled_model.h"
#include "tensor/tensor.h"

namespace nb::runtime {

struct SessionOptions {
  /// Intra-op thread budget for run().
  ///   serial      — the whole run executes on the calling thread; the
  ///                 right choice when many sessions run concurrently.
  ///   shared_pool — kernels parallelize on the process-wide nb::ThreadPool;
  ///                 fastest for a single stream on an idle process.
  enum class Threads { serial, shared_pool };
  Threads threads = Threads::serial;

  /// Plans kept per session before the least-recently-used is evicted
  /// (each distinct input geometry needs one plan).
  size_t max_cached_plans = 4;

  /// Run the static plan verifier (export/plan_verify.h) on every plan this
  /// session builds, in ANY build type; a violated arena invariant throws a
  /// typed exporter::PlanVerifyError out of run() before the plan ever
  /// executes. Debug builds verify at plan construction regardless; this
  /// opts a Release serving process into the same proof.
  bool verify_plans = false;

  /// Test seam: invoked right before a plan is built for a geometry this
  /// session has not cached (the plan-compile path). Throwing propagates
  /// out of run() exactly like a real planner rejection, so serving-layer
  /// error handling is testable without crafting a model that fails to
  /// plan. Null in production.
  std::function<void(int64_t batch)> on_plan_build;
};

class Session {
 public:
  explicit Session(std::shared_ptr<const CompiledModel> model,
                   SessionOptions options = {});

  /// Runs one [N, C, H, W] batch and returns logits. Plans are keyed on
  /// the FULL batch geometry — an Engine worker serving micro-batches
  /// caches its batch-4/8 plans (one GEMM per conv across the batch)
  /// alongside the batch-1 plan — built on first sight and reused after;
  /// results are bitwise independent of the batch size the images arrive
  /// in, of the thread budget, and of other sessions.
  Tensor run(const Tensor& input);

  /// Zero-pads `input` ([N, C, H, W]) bottom/right to (target_h, target_w)
  /// and runs the padded batch; the plan cache is keyed at the TARGET
  /// geometry, so a stream serving one bucket rung reuses a single plan
  /// across every exact input size under it. This is the sequential half
  /// of the Engine's pad-to-bucket exactness contract: a bucketed batched
  /// submit resolves bitwise-identically to run_padded of the same image
  /// at the rung geometry (see runtime/bucketing.h).
  Tensor run_padded(const Tensor& input, int64_t target_h, int64_t target_w);

  const CompiledModel& model() const { return *model_; }
  const SessionOptions& options() const { return options_; }

  /// Owned-vs-borrowed memory accounting (PlanStats-style).
  struct MemoryStats {
    /// Arena floats this session owns across its cached plans.
    int64_t owned_arena_floats = 0;
    /// Weight-panel floats the plans execute against — borrowed from the
    /// shared CompiledModel, NOT owned; identical for every session on it.
    int64_t borrowed_weight_floats = 0;
    /// Identity of the borrowed panels (equal across sessions on one
    /// model — the zero-duplication assertion).
    const void* weight_panel_addr = nullptr;
    size_t cached_plans = 0;
  };
  MemoryStats memory() const;

  /// Total run() calls served by this session.
  int64_t runs() const { return runs_; }

 private:
  const exporter::InferPlan& plan_for(int64_t batch, int64_t channels,
                                      int64_t h, int64_t w);

  std::shared_ptr<const CompiledModel> model_;
  SessionOptions options_;
  // MRU-first plan cache; geometry lives in each plan's stats.
  std::list<exporter::InferPlan> plans_;
  int64_t runs_ = 0;
};

}  // namespace nb::runtime
