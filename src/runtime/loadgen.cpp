#include "runtime/loadgen.h"

#include <chrono>
#include <cmath>
#include <thread>

#include "tensor/rng.h"

namespace nb::runtime {

using Clock = std::chrono::steady_clock;

double rate_multiplier_at(const OpenLoopSpec& spec, double t_s) {
  double m = 1.0;
  for (const BurstSpec& b : spec.bursts) {
    if (t_s >= b.start_s && t_s < b.start_s + b.duration_s) {
      m *= b.multiplier;
    }
  }
  return m;
}

namespace {

/// Peak multiplier any instant can reach: the product of every burst's
/// multiplier bounds the overlap case. Floors at 1 so thinning acceptance
/// probabilities stay in (0, 1].
double peak_multiplier(const OpenLoopSpec& spec) {
  double peak = 1.0;
  for (const BurstSpec& b : spec.bursts) {
    if (b.multiplier > 1.0) peak *= b.multiplier;
  }
  return peak;
}

int32_t pick_stream(Rng& rng, const std::vector<double>& weights,
                    double total) {
  if (weights.empty()) return 0;
  // One uniform draw regardless of outcome keeps the draw sequence (and so
  // the rest of the schedule) stable under weight edits.
  const double u = static_cast<double>(rng.uniform()) * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (u < acc) return static_cast<int32_t>(i);
  }
  return static_cast<int32_t>(weights.size() - 1);
}

}  // namespace

std::vector<Arrival> make_open_loop_schedule(const OpenLoopSpec& spec) {
  NB_CHECK(spec.rate_per_s > 0, "loadgen: rate_per_s must be > 0");
  NB_CHECK(spec.duration_s > 0, "loadgen: duration_s must be > 0");
  NB_CHECK(spec.high_lane_fraction >= 0.0 && spec.high_lane_fraction <= 1.0,
           "loadgen: high_lane_fraction must be in [0, 1]");
  double weight_total = 0.0;
  for (const double w : spec.mix_weights) {
    NB_CHECK(w >= 0, "loadgen: mix weights must be >= 0");
    weight_total += w;
  }
  NB_CHECK(spec.mix_weights.empty() || weight_total > 0,
           "loadgen: mix weights must not all be zero");
  double geo_total = 0.0;
  for (const double w : spec.geo_weights) {
    NB_CHECK(w >= 0, "loadgen: geo weights must be >= 0");
    geo_total += w;
  }
  NB_CHECK(spec.geo_weights.empty() || geo_total > 0,
           "loadgen: geo weights must not all be zero");
  for (const BurstSpec& b : spec.bursts) {
    NB_CHECK(b.multiplier > 0, "loadgen: burst multiplier must be > 0");
    NB_CHECK(b.duration_s >= 0, "loadgen: burst duration must be >= 0");
  }

  // Lewis-Shedler thinning: draw a homogeneous Poisson process at the peak
  // rate, keep each candidate with probability rate(t)/peak_rate. Every
  // candidate consumes a fixed number of draws, so the schedule is a pure
  // function of (spec, seed).
  const double peak_rate = spec.rate_per_s * peak_multiplier(spec);
  Rng rng(spec.seed, 0x10adULL);
  std::vector<Arrival> schedule;
  schedule.reserve(static_cast<size_t>(spec.rate_per_s * spec.duration_s));
  double t = 0.0;
  for (;;) {
    const double u = static_cast<double>(rng.uniform());
    t += -std::log1p(-u) / peak_rate;
    if (t >= spec.duration_s) break;
    const double keep = static_cast<double>(rng.uniform());
    if (keep * peak_rate >= spec.rate_per_s * rate_multiplier_at(spec, t)) {
      continue;
    }
    Arrival a;
    a.t_s = t;
    a.stream = pick_stream(rng, spec.mix_weights, weight_total);
    a.lane = static_cast<double>(rng.uniform()) < spec.high_lane_fraction
                 ? Lane::high
                 : Lane::normal;
    // Drawn only when a geometry mix exists, so every pre-geometry
    // (spec, seed) pair replays its exact historical schedule.
    a.geo = pick_stream(rng, spec.geo_weights, geo_total);
    schedule.push_back(a);
  }
  return schedule;
}

OpenLoopResult run_open_loop(Engine& engine,
                             const std::vector<ModelTraffic>& mix,
                             const OpenLoopSpec& spec, int64_t slo_us) {
  NB_CHECK(!mix.empty(), "loadgen: empty model mix");
  NB_CHECK(spec.mix_weights.empty()
               ? mix.size() == 1
               : mix.size() == spec.mix_weights.size(),
           "loadgen: mix size must match mix_weights");
  for (const ModelTraffic& traffic : mix) {
    NB_CHECK(traffic.geo_images.empty() ||
                 traffic.geo_images.size() == spec.geo_weights.size(),
             "loadgen: geo_images must be empty or match geo_weights");
  }
  const std::vector<Arrival> schedule = make_open_loop_schedule(spec);

  OpenLoopResult r;
  std::vector<std::future<Tensor>> futures;
  futures.reserve(schedule.size());
  const auto t0 = Clock::now();
  for (const Arrival& a : schedule) {
    const auto scheduled =
        t0 + std::chrono::duration_cast<Clock::duration>(
                 std::chrono::duration<double>(a.t_s));
    std::this_thread::sleep_until(scheduled);
    const double lag_s =
        std::chrono::duration<double>(Clock::now() - scheduled).count();
    if (lag_s > r.max_lag_s) r.max_lag_s = lag_s;

    const ModelTraffic& traffic = mix[static_cast<size_t>(a.stream)];
    const Tensor& image =
        traffic.geo_images.empty()
            ? traffic.image
            : traffic.geo_images[static_cast<size_t>(a.geo)];
    SubmitOptions opts;
    opts.lane = a.lane;
    if (slo_us > 0) {
      // Anchored to the scheduled arrival: if the generator (or the queue)
      // runs late, that lateness counts against the SLO.
      opts.deadline = scheduled + std::chrono::microseconds(slo_us);
    }
    ++r.offered;
    try {
      futures.push_back(engine.submit(traffic.name, image, opts));
    } catch (const RejectedError& e) {
      switch (e.reason()) {
        case RejectReason::QueueFull:
          ++r.rejected_queue_full;
          break;
        case RejectReason::Deadline:
          ++r.rejected_deadline;
          break;
        case RejectReason::ShuttingDown:
          ++r.rejected_shutdown;
          break;
        default:
          ++r.rejected_other;
          break;
      }
    }
  }
  for (std::future<Tensor>& f : futures) {
    try {
      (void)f.get();
      ++r.completed;
    } catch (const RejectedError& e) {
      if (e.reason() == RejectReason::Deadline) {
        ++r.dropped_deadline;
      } else if (e.reason() == RejectReason::ShuttingDown) {
        ++r.dropped_shutdown;
      } else {
        ++r.rejected_other;
      }
    } catch (...) {
      ++r.faulted;
    }
  }
  r.wall_s = std::chrono::duration<double>(Clock::now() - t0).count();
  return r;
}

}  // namespace nb::runtime
