#include "runtime/compiled_model.h"

#include "export/qmodel.h"

namespace nb::runtime {

std::shared_ptr<const CompiledModel> CompiledModel::compile(
    exporter::FlatModel model, exporter::Backend backend) {
  NB_CHECK(!model.ops().empty(), "compiled model: empty program");
  NB_CHECK(backend != exporter::Backend::reference,
           "compiled model: the serving runtime is planned-only; use "
           "FlatModel::forward for the reference interpreter");
  if (backend == exporter::Backend::int8) {
    // Fail at compile time, not first inference: an uncalibrated program
    // can never run the true int8 path.
    std::string reason;
    NB_CHECK(exporter::int8_compatible(model, &reason),
             "compiled model: program not int8-compatible: " + reason);
  }
  // compiled_panels() builds the panels on first use and reuses them when
  // the source model (or any copy of it) already compiled lazily — one
  // shared compiled path for FlatModel::forward and the serving stack.
  std::shared_ptr<const exporter::WeightPanels> panels =
      model.compiled_panels();
  return std::shared_ptr<const CompiledModel>(
      new CompiledModel(std::move(model), std::move(panels), backend));
}

std::shared_ptr<const CompiledModel> CompiledModel::compile_file(
    const std::string& path, exporter::Backend backend) {
  return compile(exporter::FlatModel::load(path), backend);
}

std::shared_ptr<const CompiledModel> CompiledModel::compile_buffer(
    const uint8_t* data, size_t size, exporter::Backend backend) {
  return compile(exporter::FlatModel::load_from_buffer(data, size), backend);
}

}  // namespace nb::runtime
