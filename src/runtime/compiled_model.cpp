#include "runtime/compiled_model.h"

namespace nb::runtime {

std::shared_ptr<const CompiledModel> CompiledModel::compile(
    exporter::FlatModel model) {
  NB_CHECK(!model.ops().empty(), "compiled model: empty program");
  // compiled_panels() builds the panels on first use and reuses them when
  // the source model (or any copy of it) already compiled lazily — one
  // shared compiled path for FlatModel::forward and the serving stack.
  std::shared_ptr<const exporter::WeightPanels> panels =
      model.compiled_panels();
  return std::shared_ptr<const CompiledModel>(
      new CompiledModel(std::move(model), std::move(panels)));
}

std::shared_ptr<const CompiledModel> CompiledModel::compile_file(
    const std::string& path) {
  return compile(exporter::FlatModel::load(path));
}

std::shared_ptr<const CompiledModel> CompiledModel::compile_buffer(
    const uint8_t* data, size_t size) {
  return compile(exporter::FlatModel::load_from_buffer(data, size));
}

}  // namespace nb::runtime
