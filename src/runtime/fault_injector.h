// FaultInjector — a deterministic fault seam for the serving Engine.
//
// Production serving bugs live in the error paths: a plan that fails to
// compile for a geometry, a worker that stalls mid-batch, an exception
// thrown after requests were already dequeued. None of those are reachable
// from a healthy model, so the Engine exposes one narrow hook object that
// tests (and only tests) install via EngineOptions::fault_injector. The
// Engine calls the hooks at the two spots where real faults originate —
// worker-side session creation (the plan-compile path) and batch execution
// — and whatever the hook throws propagates exactly the way a real fault
// would: through the batch's promises into every client future.
//
// Hooks run on worker threads with NO Engine lock held, so an injector may
// sleep (modelling a slow worker under load) without stalling admission.
#pragma once

#include <cstdint>
#include <string>

namespace nb::runtime {

class FaultInjector {
 public:
  virtual ~FaultInjector() = default;

  /// Called on a worker right before it builds the Session for a model it
  /// has not served yet (the plan-compile path). Throwing fails every
  /// request in the batch that triggered the creation.
  virtual void on_session_create(const std::string& model_name) {
    (void)model_name;
  }

  /// Called inside execute_batch after the batch is final (deadline-expired
  /// requests already dropped) and before the plan runs. Sleep here to model
  /// a slow worker; throw to model a worker fault — the exception resolves
  /// every future in the batch.
  virtual void on_batch_execute(const std::string& model_name,
                                int64_t batch_size) {
    (void)model_name;
    (void)batch_size;
  }
};

}  // namespace nb::runtime
