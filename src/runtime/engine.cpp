#include "runtime/engine.h"

#include <algorithm>
#include <cstring>

#include "runtime/percentile.h"

namespace nb::runtime {

namespace {

// Latency samples kept for percentile reporting; enough for any bench or
// serving window we run, bounded so a long-lived engine cannot grow without
// limit (after the cap, percentiles describe the first kCap requests).
constexpr size_t kMaxLatencySamples = size_t{1} << 20;

}  // namespace

Engine::Engine(EngineOptions options) : options_(options) {
  NB_CHECK(options_.batching.max_batch >= 1, "engine: max_batch must be >= 1");
  NB_CHECK(options_.batching.max_wait_us >= 0,
           "engine: max_wait_us must be >= 0");
  NB_CHECK(options_.workers >= 1, "engine: workers must be >= 1");
  workers_.reserve(static_cast<size_t>(options_.workers));
  for (int64_t i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

Engine::~Engine() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& t : workers_) {
    t.join();
  }
}

void Engine::register_model(const std::string& name,
                            std::shared_ptr<const CompiledModel> model) {
  NB_CHECK(model != nullptr, "engine: null model for '" + name + "'");
  std::lock_guard<std::mutex> lock(registry_mu_);
  registry_[name] = std::move(model);
  registry_generation_.fetch_add(1, std::memory_order_release);
}

bool Engine::unregister_model(const std::string& name) {
  std::lock_guard<std::mutex> lock(registry_mu_);
  const bool erased = registry_.erase(name) > 0;
  if (erased) {
    registry_generation_.fetch_add(1, std::memory_order_release);
  }
  return erased;
}

std::shared_ptr<const CompiledModel> Engine::model(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(registry_mu_);
  const auto it = registry_.find(name);
  return it == registry_.end() ? nullptr : it->second;
}

std::vector<std::string> Engine::model_names() const {
  std::lock_guard<std::mutex> lock(registry_mu_);
  std::vector<std::string> names;
  names.reserve(registry_.size());
  for (const auto& [name, model] : registry_) {
    names.push_back(name);
  }
  return names;
}

std::future<Tensor> Engine::submit(const std::string& name,
                                   const Tensor& image) {
  std::shared_ptr<const CompiledModel> model = this->model(name);
  NB_CHECK(model != nullptr, "engine: unknown model '" + name + "'");
  NB_CHECK(image.dim() == 3 || (image.dim() == 4 && image.size(0) == 1),
           "engine: submit expects one [C, H, W] image, got " +
               image.shape_str());

  Request req;
  // Own the pixels: the caller may reuse its tensor the moment we return.
  req.input = image.dim() == 3
                  ? image.reshape({1, image.size(0), image.size(1),
                                   image.size(2)})
                        .clone()
                  : image.clone();
  req.model = std::move(model);
  req.enqueued = std::chrono::steady_clock::now();
  std::future<Tensor> fut = req.promise.get_future();

  // Count the submit before enqueueing so stats() never observes
  // completed > submitted; roll back if the enqueue is refused.
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++submitted_;
  }
  try {
    std::lock_guard<std::mutex> lock(queue_mu_);
    NB_CHECK(!stopping_, "engine: submit after shutdown");
    queue_.push_back(std::move(req));
  } catch (...) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    --submitted_;
    throw;
  }
  // notify_all: both idle workers and workers holding a partial batch open
  // for peers must see the new arrival.
  queue_cv_.notify_all();
  return fut;
}

bool Engine::matches(const Request& a, const Request& b) const {
  return a.model.get() == b.model.get() &&
         a.input.size(1) == b.input.size(1) &&
         a.input.size(2) == b.input.size(2) &&
         a.input.size(3) == b.input.size(3);
}

void Engine::worker_loop() {
  // One session per model this worker has served; sessions are per-stream
  // state, so worker-local means no cross-worker synchronization.
  std::map<const CompiledModel*, std::unique_ptr<Session>> sessions;
  uint64_t seen_generation = 0;

  // Drops sessions whose model is no longer registered (replaced or
  // removed), releasing its weight panels; runs only when the registry
  // actually changed. In-flight requests still hold their own shared_ptr.
  const auto prune_sessions = [&] {
    const uint64_t gen =
        registry_generation_.load(std::memory_order_acquire);
    if (gen == seen_generation) return;
    seen_generation = gen;
    std::lock_guard<std::mutex> lock(registry_mu_);
    std::erase_if(sessions, [&](const auto& entry) {
      for (const auto& [name, model] : registry_) {
        if (model.get() == entry.first) return false;
      }
      return true;
    });
  };

  // Pulls every queued request coalescible with batch.front() (same model,
  // same geometry) into the batch, up to max_batch. queue_mu_ must be held.
  const auto gather = [&](std::vector<Request>& batch) {
    for (auto it = queue_.begin();
         it != queue_.end() &&
         static_cast<int64_t>(batch.size()) < options_.batching.max_batch;) {
      if (matches(*it, batch.front())) {
        batch.push_back(std::move(*it));
        it = queue_.erase(it);
      } else {
        ++it;
      }
    }
  };

  std::unique_lock<std::mutex> lock(queue_mu_);
  for (;;) {
    queue_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stopping_) return;  // drained: every accepted request served
      continue;
    }

    std::vector<Request> batch;
    batch.push_back(std::move(queue_.front()));
    queue_.pop_front();
    gather(batch);

    // Dynamic micro-batching: hold the (partial) batch open until it fills
    // or the head request has waited max_wait_us. Shutdown flushes
    // immediately.
    const auto deadline =
        batch.front().enqueued +
        std::chrono::microseconds(options_.batching.max_wait_us);
    while (static_cast<int64_t>(batch.size()) < options_.batching.max_batch &&
           options_.batching.max_wait_us > 0 && !stopping_ &&
           std::chrono::steady_clock::now() < deadline) {
      queue_cv_.wait_until(lock, deadline);
      gather(batch);
    }
    lock.unlock();
    prune_sessions();

    const CompiledModel* key = batch.front().model.get();
    auto it = sessions.find(key);
    if (it == sessions.end()) {
      it = sessions
               .emplace(key, std::make_unique<Session>(batch.front().model,
                                                       options_.session))
               .first;
    }
    execute_batch(batch, *it->second);
    lock.lock();
  }
}

void Engine::execute_batch(std::vector<Request>& batch, Session& session) {
  const auto launched = std::chrono::steady_clock::now();
  try {
    const Tensor& first = batch.front().input;
    const int64_t b = static_cast<int64_t>(batch.size());
    const int64_t chw = first.numel();
    Tensor stacked({b, first.size(1), first.size(2), first.size(3)});
    for (int64_t i = 0; i < b; ++i) {
      std::memcpy(stacked.data() + i * chw, batch[static_cast<size_t>(i)].input.data(),
                  static_cast<size_t>(chw) * sizeof(float));
    }
    Tensor out = session.run(stacked);
    NB_CHECK(out.dim() >= 1 && out.size(0) == b,
             "engine: batched output lost the batch dimension");
    const int64_t row = out.numel() / b;
    std::vector<int64_t> row_shape{1};
    for (int64_t d = 1; d < out.dim(); ++d) row_shape.push_back(out.size(d));
    std::vector<Tensor> rows;
    rows.reserve(batch.size());
    for (int64_t i = 0; i < b; ++i) {
      Tensor one(row_shape);
      std::memcpy(one.data(), out.data() + i * row,
                  static_cast<size_t>(row) * sizeof(float));
      rows.push_back(std::move(one));
    }
    // Record before fulfilling: a client that just resolved its future must
    // see its own request in stats().
    record_batch(batch, launched, /*failed=*/false);
    for (size_t i = 0; i < batch.size(); ++i) {
      batch[i].promise.set_value(std::move(rows[i]));
    }
  } catch (...) {
    const std::exception_ptr err = std::current_exception();
    record_batch(batch, launched, /*failed=*/true);
    for (Request& req : batch) {
      req.promise.set_exception(err);
    }
  }
}

void Engine::record_batch(const std::vector<Request>& batch,
                          std::chrono::steady_clock::time_point launched,
                          bool failed) {
  const auto done = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++batches_;
  for (const Request& req : batch) {
    if (failed) {
      ++failed_;
      continue;
    }
    ++completed_;
    queue_ms_sum_ +=
        std::chrono::duration<double, std::milli>(launched - req.enqueued)
            .count();
    if (latencies_ms_.size() < kMaxLatencySamples) {
      latencies_ms_.push_back(
          std::chrono::duration<double, std::milli>(done - req.enqueued)
              .count());
    }
  }
}

Engine::Stats Engine::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  Stats s;
  s.submitted = submitted_;
  s.completed = completed_;
  s.failed = failed_;
  s.batches = batches_;
  s.avg_batch = batches_ > 0 ? static_cast<double>(completed_ + failed_) /
                                   static_cast<double>(batches_)
                             : 0.0;
  s.avg_queue_ms =
      completed_ > 0 ? queue_ms_sum_ / static_cast<double>(completed_) : 0.0;
  std::vector<double> sorted = latencies_ms_;
  std::sort(sorted.begin(), sorted.end());
  s.p50_ms = percentile_sorted(sorted, 0.50);
  s.p99_ms = percentile_sorted(sorted, 0.99);
  s.max_ms = sorted.empty() ? 0.0 : sorted.back();
  return s;
}

}  // namespace nb::runtime
