#include "runtime/engine.h"

#include <algorithm>
#include <cstring>

#include "runtime/percentile.h"

namespace nb::runtime {

using Clock = std::chrono::steady_clock;

const char* to_string(RejectReason reason) {
  switch (reason) {
    case RejectReason::QueueFull:
      return "QueueFull";
    case RejectReason::Deadline:
      return "Deadline";
    case RejectReason::ShuttingDown:
      return "ShuttingDown";
    case RejectReason::Unknown:
      return "Unknown";
  }
  return "?";
}

Engine::Engine(EngineOptions options) : options_(std::move(options)) {
  NB_CHECK(options_.batching.max_batch >= 1, "engine: max_batch must be >= 1");
  NB_CHECK(options_.batching.max_wait_us >= 0,
           "engine: max_wait_us must be >= 0");
  NB_CHECK(options_.workers >= 1, "engine: workers must be >= 1");
  NB_CHECK(options_.stats_window >= 1, "engine: stats_window must be >= 1");
  NB_CHECK(options_.default_qos.max_queue_depth >= 1,
           "engine: max_queue_depth must be >= 1");
  {
    MutexLock lock(stats_mu_);
    latency_ring_.reserve(options_.stats_window);
  }
  // The annotation pass flagged this: workers_ is guarded by lifecycle_mu_
  // (shutdown joins under it), and the old constructor populated it bare —
  // benign only as long as no thread calls shutdown() while the Engine is
  // still constructing, which a subclass or a ctor-spawned callback could
  // violate. Hold the lock for the spawn loop.
  MutexLock lock(lifecycle_mu_);
  workers_.reserve(static_cast<size_t>(options_.workers));
  for (int64_t i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

Engine::~Engine() { shutdown(options_.on_shutdown); }

void Engine::shutdown(DrainPolicy policy) {
  // Phase 1: stop admitting. Every submit from here on throws
  // RejectedError{ShuttingDown}; the first caller's policy wins.
  std::vector<Request> dropped;
  {
    MutexLock lock(mu_);
    if (phase_ == Phase::running) {
      phase_ = policy == DrainPolicy::drop ? Phase::dropping
                                           : Phase::draining;
    }
    // Phase 2 (drop flavor): pull every still-queued request out NOW so
    // workers stop as soon as their in-flight batches finish. Drain flavor
    // leaves the queues alone — workers serve them to empty.
    if (phase_ == Phase::dropping) {
      for (const auto& entry : active_) {
        for (std::deque<Request>& lane : entry->lanes) {
          for (Request& req : lane) {
            dropped.push_back(std::move(req));
          }
          lane.clear();
        }
        entry->in_active = false;
      }
      active_.clear();
      rr_ = 0;
      queued_total_ = 0;
    }
  }
  queue_cv_.notify_all();
  if (!dropped.empty()) {
    {
      MutexLock lock(stats_mu_);
      dropped_shutdown_ += static_cast<int64_t>(dropped.size());
    }
    for (Request& req : dropped) {
      reject(req, RejectReason::ShuttingDown,
             "engine: request dropped at shutdown");
    }
  }
  // Phase 2 (drain flavor) happens inside the workers; phase 3: join them.
  MutexLock lock(lifecycle_mu_);
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
}

void Engine::register_model(const std::string& name,
                            std::shared_ptr<const CompiledModel> model) {
  register_model(name, std::move(model), options_.default_qos);
}

void Engine::register_model(const std::string& name,
                            std::shared_ptr<const CompiledModel> model,
                            const ModelQos& qos) {
  NB_CHECK(model != nullptr, "engine: null model for '" + name + "'");
  NB_CHECK(qos.max_queue_depth >= 1,
           "engine: max_queue_depth must be >= 1 for '" + name + "'");
  NB_CHECK(qos.default_deadline_us >= 0,
           "engine: default_deadline_us must be >= 0 for '" + name + "'");
  validate_bucketing(qos.bucketing);
  MutexLock lock(mu_);
  const auto it = registry_.find(name);
  if (it == registry_.end()) {
    auto entry = std::make_shared<ModelEntry>();
    entry->model = std::move(model);
    entry->qos = qos;
    registry_.emplace(name, std::move(entry));
  } else {
    // Hot-swap in place: queued requests keep the model they resolved at
    // admission (snapshotted into Request::model), new admissions see the
    // replacement — atomically, because admission runs under this lock.
    it->second->model = std::move(model);
    it->second->qos = qos;
  }
  registry_generation_.fetch_add(1, std::memory_order_release);
}

bool Engine::unregister_model(const std::string& name) {
  MutexLock lock(mu_);
  const auto it = registry_.find(name);
  if (it == registry_.end()) return false;
  // The entry may still sit in active_ with queued requests; those were
  // admitted and will be served (they hold their CompiledModel). Only the
  // name mapping goes away.
  registry_.erase(it);
  registry_generation_.fetch_add(1, std::memory_order_release);
  return true;
}

std::shared_ptr<const CompiledModel> Engine::model(
    const std::string& name) const {
  MutexLock lock(mu_);
  const auto it = registry_.find(name);
  return it == registry_.end() ? nullptr : it->second->model;
}

std::vector<std::string> Engine::model_names() const {
  MutexLock lock(mu_);
  std::vector<std::string> names;
  names.reserve(registry_.size());
  for (const auto& [name, entry] : registry_) {
    names.push_back(name);
  }
  return names;
}

void Engine::reject(Request& req, RejectReason reason,
                    const std::string& what) {
  req.promise.set_exception(
      std::make_exception_ptr(RejectedError(reason, what)));
}

std::future<Tensor> Engine::submit(const std::string& name,
                                   const Tensor& image,
                                   const SubmitOptions& opts) {
  NB_CHECK(image.dim() == 3 || (image.dim() == 4 && image.size(0) == 1),
           "engine: submit expects one [C, H, W] image, got " +
               image.shape_str());
  NB_CHECK(opts.deadline_us >= 0, "engine: deadline_us must be >= 0");

  Request req;
  // Own the pixels: the caller may reuse its tensor the moment we return.
  // Cloned before admission so the critical section stays tiny; on a
  // rejection the copy is wasted work, which overload can afford.
  req.input = image.dim() == 3
                  ? image.reshape({1, image.size(0), image.size(1),
                                   image.size(2)})
                        .clone()
                  : image.clone();
  req.model_name = name;
  req.lane = opts.lane;
  std::future<Tensor> fut = req.promise.get_future();

  bool rejected = false;
  bool padded = false;
  RejectReason reason = RejectReason::Unknown;
  std::string what;
  {
    MutexLock lock(mu_);
    const auto now = Clock::now();
    req.enqueued = now;
    if (phase_ != Phase::running) {
      rejected = true;
      reason = RejectReason::ShuttingDown;
      what = "engine: submit after shutdown";
    } else {
      const auto it = registry_.find(name);
      if (it == registry_.end()) {
        rejected = true;
        reason = RejectReason::Unknown;
        what = "engine: unknown model '" + name + "'";
      } else {
        ModelEntry& entry = *it->second;
        // Deadline precedence: absolute > per-submit relative > model
        // default > none.
        if (opts.deadline != TimePoint{}) {
          req.deadline = opts.deadline;
        } else if (opts.deadline_us > 0) {
          req.deadline = now + std::chrono::microseconds(opts.deadline_us);
        } else if (entry.qos.default_deadline_us > 0) {
          req.deadline =
              now + std::chrono::microseconds(entry.qos.default_deadline_us);
        }
        if (req.has_deadline() && req.deadline <= now) {
          rejected = true;
          reason = RejectReason::Deadline;
          what = "engine: deadline already expired at admission for '" +
                 name + "'";
        } else if (entry.depth() >= entry.qos.max_queue_depth) {
          rejected = true;
          reason = RejectReason::QueueFull;
          what = "engine: queue full for '" + name + "' (depth " +
                 std::to_string(entry.qos.max_queue_depth) + ")";
        } else {
          req.model = entry.model;
          // Execution geometry: the bucket rung when the model's ladder
          // covers this (h, w) within the waste cap, the exact geometry
          // otherwise. Fixed at admission so queued peers key off it.
          req.exec_h = req.input.size(2);
          req.exec_w = req.input.size(3);
          const BucketSpec rung = assign_bucket(
              entry.qos.bucketing, req.exec_h, req.exec_w);
          if (rung.valid()) {
            req.exec_h = rung.h;
            req.exec_w = rung.w;
          }
          padded = req.padded();
          entry.lanes[static_cast<int>(opts.lane)].push_back(std::move(req));
          ++queued_total_;
          if (!entry.in_active) {
            entry.in_active = true;
            active_.push_back(it->second);
          }
        }
      }
    }
  }
  {
    MutexLock lock(stats_mu_);
    ++submitted_;
    if (!rejected) {
      ++accepted_;
      if (padded) ++padded_accepted_;
    } else if (reason == RejectReason::QueueFull) {
      ++rejected_queue_full_;
    } else if (reason == RejectReason::Deadline) {
      ++rejected_deadline_;
    } else if (reason == RejectReason::ShuttingDown) {
      ++rejected_shutdown_;
    }
  }
  if (rejected) throw RejectedError(reason, what);
  // notify_all: both idle workers and workers holding a partial batch open
  // for peers must see the new arrival.
  queue_cv_.notify_all();
  return fut;
}

bool Engine::matches(const Request& a, const Request& b) const {
  // Coalesce on the EXECUTION geometry (the bucket rung for bucketed
  // models, the submitted geometry otherwise): two requests of one rung
  // batch together even when their exact inputs differ — each is padded
  // to the rung when the batch is stacked.
  return a.model.get() == b.model.get() &&
         a.input.size(1) == b.input.size(1) && a.exec_h == b.exec_h &&
         a.exec_w == b.exec_w;
}

void Engine::retire_if_idle(ModelEntry* entry) {
  if (entry == nullptr || !entry->in_active || entry->depth() > 0) return;
  // Flip the flag BEFORE the erase: for an unregistered entry the ring
  // holds the last reference, so the erase destroys *entry.
  entry->in_active = false;
  for (size_t i = 0; i < active_.size(); ++i) {
    if (active_[i].get() == entry) {
      active_.erase(active_.begin() + static_cast<std::ptrdiff_t>(i));
      if (i < rr_) --rr_;
      break;
    }
  }
  if (!active_.empty()) rr_ %= active_.size();
  else rr_ = 0;
}

bool Engine::pop_next(Request& out) {
  // Strict priority between lanes, round-robin across models within a
  // lane: every model's high lane is inspected before any normal lane, and
  // the cursor rotates so a burst on one model cannot pin the dequeue.
  const auto now = Clock::now();
  for (int lane = 0; lane < kLaneCount; ++lane) {
    const size_t n = active_.size();
    for (size_t i = 0; i < n; ++i) {
      const size_t idx = (rr_ + i) % n;
      ModelEntry& entry = *active_[idx];
      std::deque<Request>& q = entry.lanes[lane];
      // Expired requests surface here: resolve them with a typed Deadline
      // rejection instead of burning a batch slot.
      while (!q.empty() && q.front().has_deadline() &&
             q.front().deadline < now) {
        Request expired = std::move(q.front());
        q.pop_front();
        --queued_total_;
        {
          MutexLock slock(stats_mu_);
          ++dropped_deadline_;
        }
        reject(expired, RejectReason::Deadline,
               "engine: deadline expired in queue for '" +
                   expired.model_name + "'");
      }
      if (q.empty()) continue;
      out = std::move(q.front());
      q.pop_front();
      --queued_total_;
      // Rotate past this entry for cross-model fairness, then drop it from
      // the ring if this was its last queued request.
      rr_ = (idx + 1) % n;
      retire_if_idle(&entry);
      return true;
    }
  }
  // Everything queued was expired; prune now-empty entries from the ring.
  for (size_t i = active_.size(); i > 0; --i) {
    retire_if_idle(active_[i - 1].get());
  }
  return false;
}

void Engine::gather_peers(ModelEntry& entry, std::vector<Request>& batch) {
  const auto now = Clock::now();
  for (int lane = 0; lane < kLaneCount; ++lane) {
    std::deque<Request>& q = entry.lanes[lane];
    for (auto it = q.begin();
         it != q.end() &&
         static_cast<int64_t>(batch.size()) < options_.batching.max_batch;) {
      if (!matches(*it, batch.front())) {
        ++it;
        continue;
      }
      Request req = std::move(*it);
      it = q.erase(it);
      --queued_total_;
      if (req.has_deadline() && req.deadline < now) {
        {
          MutexLock slock(stats_mu_);
          ++dropped_deadline_;
        }
        reject(req, RejectReason::Deadline,
               "engine: deadline expired in queue for '" + req.model_name +
                   "'");
        continue;
      }
      batch.push_back(std::move(req));
    }
  }
}

void Engine::worker_loop() {
  // One session per model this worker has served; sessions are per-stream
  // state, so worker-local means no cross-worker synchronization.
  std::map<const CompiledModel*, std::unique_ptr<Session>> sessions;
  uint64_t seen_generation = 0;

  // Drops sessions whose model is no longer registered (replaced or
  // removed), releasing its weight panels; runs only when the registry
  // actually changed. In-flight requests still hold their own shared_ptr.
  const auto prune_sessions = [&] {
    const uint64_t gen =
        registry_generation_.load(std::memory_order_acquire);
    if (gen == seen_generation) return;
    seen_generation = gen;
    MutexLock lock(mu_);
    std::erase_if(sessions, [&](const auto& kv) {
      for (const auto& [name, entry] : registry_) {
        if (entry->model.get() == kv.first) return false;
      }
      return true;
    });
  };

  // The loop holds mu_ across dequeue + batch assembly and drops it only
  // around execute_batch. Explicit lock()/unlock() instead of an RAII guard
  // because the hold spans the loop back-edge; the wait predicates are
  // manual while-loops so every guarded read is in a provably-locked scope
  // (a predicate lambda's body is opaque to the thread-safety analysis).
  mu_.lock();
  for (;;) {
    while (phase_ == Phase::running && queued_total_ == 0) {
      queue_cv_.wait(mu_);
    }
    if (queued_total_ == 0) {
      // Not running and nothing queued: drained or dropped, worker done.
      mu_.unlock();
      return;
    }

    Request head;
    if (!pop_next(head)) continue;  // everything queued had expired
    // The head's entry may have been retired/re-activated; gather directly
    // against the registry entry the head came from is unnecessary — peers
    // are matched by (model object, geometry), and the head's entry is
    // found through its name if still present. Gather from the entry that
    // currently holds that name's queue (hot-swap keeps it stable).
    std::shared_ptr<ModelEntry> entry;
    {
      const auto it = registry_.find(head.model_name);
      if (it != registry_.end()) entry = it->second;
    }
    std::vector<Request> batch;
    batch.push_back(std::move(head));
    if (entry != nullptr) gather_peers(*entry, batch);

    // Dynamic micro-batching: hold the (partial) batch open until it fills
    // or the head request has waited max_wait_us. The wait never crosses
    // half of the head's remaining deadline budget, so a tight-deadline
    // request launches with room to execute instead of expiring while it
    // waits for peers. Shutdown flushes immediately.
    auto wait_deadline =
        batch.front().enqueued +
        std::chrono::microseconds(options_.batching.max_wait_us);
    if (batch.front().has_deadline()) {
      const auto half_budget =
          batch.front().enqueued +
          (batch.front().deadline - batch.front().enqueued) / 2;
      wait_deadline = std::min(wait_deadline, half_budget);
    }
    while (static_cast<int64_t>(batch.size()) < options_.batching.max_batch &&
           options_.batching.max_wait_us > 0 && phase_ == Phase::running &&
           Clock::now() < wait_deadline) {
      queue_cv_.wait_until(mu_, wait_deadline);
      if (entry != nullptr) gather_peers(*entry, batch);
    }
    if (entry != nullptr) retire_if_idle(entry.get());
    mu_.unlock();
    prune_sessions();

    // Worker-side session lookup; creation is the plan-compile path and
    // runs under the fault seam. A creation failure fails this batch (its
    // requests hold the model that refused to compile) but not the worker.
    const CompiledModel* key = batch.front().model.get();
    Session* session = nullptr;
    std::exception_ptr session_error;
    const auto it = sessions.find(key);
    if (it != sessions.end()) {
      session = it->second.get();
    } else {
      try {
        if (options_.fault_injector != nullptr) {
          options_.fault_injector->on_session_create(batch.front().model_name);
        }
        auto fresh =
            std::make_unique<Session>(batch.front().model, options_.session);
        session = fresh.get();
        sessions.emplace(key, std::move(fresh));
      } catch (...) {
        session_error = std::current_exception();
      }
    }
    execute_batch(batch, session, session_error);
    mu_.lock();
  }
}

void Engine::execute_batch(std::vector<Request>& batch, Session* session,
                           std::exception_ptr session_error) {
  const auto launched = Clock::now();
  // Launch-time deadline check: a request that expired while queued (or
  // while the batch waited for peers) is dropped before any GEMM runs.
  std::vector<Request> run;
  run.reserve(batch.size());
  int64_t expired = 0;
  for (Request& req : batch) {
    if (req.has_deadline() && req.deadline < launched) {
      ++expired;
      reject(req, RejectReason::Deadline,
             "engine: deadline expired at batch launch for '" +
                 req.model_name + "'");
    } else {
      run.push_back(std::move(req));
    }
  }
  if (expired > 0) {
    MutexLock lock(stats_mu_);
    dropped_deadline_ += expired;
  }
  if (run.empty()) return;

  try {
    if (options_.fault_injector != nullptr) {
      options_.fault_injector->on_batch_execute(
          run.front().model_name, static_cast<int64_t>(run.size()));
    }
    if (session_error != nullptr) std::rethrow_exception(session_error);
    NB_CHECK(session != nullptr, "engine: no session for batch");
    // Stack at the batch's EXECUTION geometry (all peers share it — that's
    // what matches() keys on). A request whose exact input is smaller was
    // bucketed: its pixels land top-left, the rest of its block keeps the
    // tensor's zero fill — the pad-to-bucket contract.
    const Request& head = run.front();
    const int64_t b = static_cast<int64_t>(run.size());
    const int64_t c = head.input.size(1);
    const int64_t bh = head.exec_h, bw = head.exec_w;
    const int64_t chw = c * bh * bw;
    Tensor stacked({b, c, bh, bw});  // Tensor() zero-fills
    for (int64_t i = 0; i < b; ++i) {
      const Tensor& img = run[static_cast<size_t>(i)].input;
      pad_block_into(img.data(), c, img.size(2), img.size(3),
                     stacked.data() + i * chw, bh, bw);
    }
    Tensor out = session->run(stacked);
    NB_CHECK(out.dim() >= 1 && out.size(0) == b,
             "engine: batched output lost the batch dimension");
    const int64_t row = out.numel() / b;
    std::vector<int64_t> row_shape{1};
    for (int64_t d = 1; d < out.dim(); ++d) row_shape.push_back(out.size(d));
    std::vector<Tensor> rows;
    rows.reserve(run.size());
    for (int64_t i = 0; i < b; ++i) {
      Tensor one(row_shape);
      std::memcpy(one.data(), out.data() + i * row,
                  static_cast<size_t>(row) * sizeof(float));
      rows.push_back(std::move(one));
    }
    // Record before fulfilling: a client that just resolved its future must
    // see its own request in stats().
    record_batch(run, launched, /*failed=*/false);
    for (size_t i = 0; i < run.size(); ++i) {
      run[i].promise.set_value(std::move(rows[i]));
    }
  } catch (...) {
    const std::exception_ptr err = std::current_exception();
    record_batch(run, launched, /*failed=*/true);
    for (Request& req : run) {
      req.promise.set_exception(err);
    }
  }
}

void Engine::record_latency_sample(double ms) {
  // Fixed-size ring: the stats_window most recent completions. The
  // NB_REQUIRES(stats_mu_) on the declaration enforces the caller holds it.
  if (latency_ring_.size() < options_.stats_window) {
    latency_ring_.push_back(ms);
  } else {
    latency_ring_[ring_next_] = ms;
  }
  ring_next_ = (ring_next_ + 1) % options_.stats_window;
  ++ring_count_;
}

void Engine::record_batch(const std::vector<Request>& batch,
                          TimePoint launched, bool failed) {
  const auto done = Clock::now();
  // A batch mixing distinct exact geometries exists only through bucketing
  // (unbucketed peers match on their exact size).
  bool mixed = false;
  for (const Request& req : batch) {
    if (req.input.size(2) != batch.front().input.size(2) ||
        req.input.size(3) != batch.front().input.size(3)) {
      mixed = true;
      break;
    }
  }
  MutexLock lock(stats_mu_);
  ++batches_;
  if (mixed) ++mixed_geometry_batches_;
  for (const Request& req : batch) {
    if (failed) {
      ++failed_;
      continue;
    }
    ++completed_;
    if (req.has_deadline() && done <= req.deadline) {
      ++completed_within_deadline_;
    }
    queue_ms_sum_ +=
        std::chrono::duration<double, std::milli>(launched - req.enqueued)
            .count();
    record_latency_sample(
        std::chrono::duration<double, std::milli>(done - req.enqueued)
            .count());
  }
}

Engine::Stats Engine::stats() const {
  Stats s;
  {
    MutexLock lock(mu_);
    s.queue_depth = queued_total_;
  }
  MutexLock lock(stats_mu_);
  s.submitted = submitted_;
  s.accepted = accepted_;
  s.completed = completed_;
  s.failed = failed_;
  s.rejected_queue_full = rejected_queue_full_;
  s.rejected_deadline = rejected_deadline_;
  s.rejected_shutdown = rejected_shutdown_;
  s.dropped_deadline = dropped_deadline_;
  s.dropped_shutdown = dropped_shutdown_;
  s.completed_within_deadline = completed_within_deadline_;
  s.padded_accepted = padded_accepted_;
  s.mixed_geometry_batches = mixed_geometry_batches_;
  s.batches = batches_;
  s.avg_batch = batches_ > 0 ? static_cast<double>(completed_ + failed_) /
                                   static_cast<double>(batches_)
                             : 0.0;
  s.avg_queue_ms =
      completed_ > 0 ? queue_ms_sum_ / static_cast<double>(completed_) : 0.0;
  std::vector<double> sorted = latency_ring_;
  std::sort(sorted.begin(), sorted.end());
  s.p50_ms = percentile_sorted(sorted, 0.50);
  s.p99_ms = percentile_sorted(sorted, 0.99);
  s.max_ms = sorted.empty() ? 0.0 : sorted.back();
  s.latency_samples = static_cast<int64_t>(sorted.size());
  return s;
}

}  // namespace nb::runtime
