// Resolution buckets for cross-geometry micro-batching.
//
// The Engine coalesces queued single-image requests into one batched plan
// only when they execute at the SAME geometry. A fleet serving
// mixed-resolution traffic (jittered crops, per-camera aspect ratios, the
// resolution-scaled tiny models the paper targets) therefore never batches
// and loses the batched-GEMM win. Buckets fix that: a per-model ladder of
// geometries such that any request whose (h, w) falls under a rung is
// ZERO-PADDED (bottom/right) to the rung's geometry and batched with every
// other request of the same rung.
//
// The exactness contract (enforced in tests/test_bucketing.cpp):
//
//   * Padding is a DOCUMENTED semantics change, applied at admission: a
//     request admitted into bucket (BH, BW) is answered with the model
//     evaluated on its zero-padded (BH, BW) image — the same normalization
//     a resolution-bucketing deployment applies client-side.
//   * Given that padded image, execution is bitwise exact: the batched
//     run's output for each request is memcmp-identical to running its
//     padded image alone through a batch-1 plan (the PR 5 batched-lowering
//     invariance, now carried across geometries).
//   * Assignment is deterministic and monotone: the same (h, w) always
//     lands in the same rung, and growing a request never shrinks its rung.
//   * Assignment never pads beyond the configured waste cap: a request the
//     ladder would inflate past `max_pad_ratio` executes at its exact
//     geometry instead (it simply doesn't cross-batch).
//
// The ladder must be strictly increasing in BOTH dimensions. That makes
// the set of rungs covering a request a suffix of the ladder, so "the
// smallest covering rung" is well defined and assignment is monotone in
// (h, w) by construction — the property tests pin this down.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace nb::runtime {

/// One rung of the ladder. h == w for square buckets; {0, 0} means "no
/// bucket" (the sentinel assign_bucket returns when nothing applies).
struct BucketSpec {
  int64_t h = 0;
  int64_t w = 0;
  bool valid() const { return h > 0 && w > 0; }
};

/// Per-model bucketing policy, carried by ModelQos. An empty ladder
/// disables bucketing (requests coalesce only at their exact geometry,
/// the pre-bucketing behavior).
struct BucketingConfig {
  /// Rungs, strictly increasing in BOTH h and w (validated at
  /// register_model time; see validate_bucketing).
  std::vector<BucketSpec> ladder;
  /// Waste cap: a request is only padded while
  /// bucket_area <= max_pad_ratio * request_area. Beyond it the request
  /// executes at its exact geometry.
  double max_pad_ratio = 1.5;

  bool enabled() const { return !ladder.empty(); }
};

/// Throws (NB_CHECK) unless the ladder is strictly increasing in both h
/// and w, every rung is positive, and max_pad_ratio >= 1.
void validate_bucketing(const BucketingConfig& config);

/// The smallest rung covering (h, w) within the waste cap, or {0, 0} when
/// none applies (empty ladder, nothing covers, or padding would exceed
/// max_pad_ratio). Pure function: deterministic, and monotone in (h, w)
/// over assigned requests for a valid ladder.
BucketSpec assign_bucket(const BucketingConfig& config, int64_t h, int64_t w);

/// Copies a [c, h, w] plane block into a [c, bh, bw] destination laid out
/// row-major, placing the source at the top-left and leaving the
/// bottom/right padding untouched (callers pass zero-initialized storage).
void pad_block_into(const float* src, int64_t c, int64_t h, int64_t w,
                    float* dst, int64_t bh, int64_t bw);

/// Zero-pads an [n, c, h, w] batch to [n, c, bh, bw] (bottom/right). The
/// no-op geometry returns a clone, so the result never aliases `input`.
Tensor pad_to_geometry(const Tensor& input, int64_t bh, int64_t bw);

}  // namespace nb::runtime
