// Shared latency-percentile helper for the serving stack: Engine::stats(),
// tools/flat_infer, tools/flat_serve and bench_serve_report all report
// p50/p99 through this one definition (nearest-rank on a sorted sample).
#pragma once

#include <algorithm>
#include <vector>

namespace nb::runtime {

/// q-th percentile (q in [0, 1]) of an ascending-sorted sample; 0 when the
/// sample is empty.
inline double percentile_sorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const size_t idx = static_cast<size_t>(pos + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

}  // namespace nb::runtime
