#include "runtime/bucketing.h"

#include <cstring>
#include <string>

namespace nb::runtime {

void validate_bucketing(const BucketingConfig& config) {
  NB_CHECK(config.max_pad_ratio >= 1.0,
           "bucketing: max_pad_ratio must be >= 1");
  for (size_t i = 0; i < config.ladder.size(); ++i) {
    const BucketSpec& b = config.ladder[i];
    NB_CHECK(b.h > 0 && b.w > 0,
             "bucketing: rung " + std::to_string(i) +
                 " must have positive dimensions");
    if (i > 0) {
      const BucketSpec& prev = config.ladder[i - 1];
      // Strictly increasing in BOTH dimensions, so the covering rungs of
      // any request form a suffix and assignment is monotone.
      NB_CHECK(b.h > prev.h && b.w > prev.w,
               "bucketing: ladder must be strictly increasing in both h "
               "and w at rung " +
                   std::to_string(i));
    }
  }
}

BucketSpec assign_bucket(const BucketingConfig& config, int64_t h,
                         int64_t w) {
  NB_CHECK(h > 0 && w > 0, "bucketing: geometry must be positive");
  // First (smallest) rung covering the request. Any later rung has a
  // strictly larger area, so if this one busts the waste cap every other
  // covering rung does too — the request runs at its exact geometry.
  for (const BucketSpec& b : config.ladder) {
    if (b.h < h || b.w < w) continue;
    const double padded = static_cast<double>(b.h) * static_cast<double>(b.w);
    const double area = static_cast<double>(h) * static_cast<double>(w);
    if (padded <= config.max_pad_ratio * area) return b;
    break;
  }
  return {};
}

void pad_block_into(const float* src, int64_t c, int64_t h, int64_t w,
                    float* dst, int64_t bh, int64_t bw) {
  NB_CHECK(bh >= h && bw >= w, "bucketing: pad target must cover source");
  if (bh == h && bw == w) {
    std::memcpy(dst, src, static_cast<size_t>(c * h * w) * sizeof(float));
    return;
  }
  for (int64_t ch = 0; ch < c; ++ch) {
    const float* splane = src + ch * h * w;
    float* dplane = dst + ch * bh * bw;
    for (int64_t y = 0; y < h; ++y) {
      std::memcpy(dplane + y * bw, splane + y * w,
                  static_cast<size_t>(w) * sizeof(float));
    }
  }
}

Tensor pad_to_geometry(const Tensor& input, int64_t bh, int64_t bw) {
  NB_CHECK(input.dim() == 4, "bucketing: pad_to_geometry expects NCHW, got " +
                                 input.shape_str());
  const int64_t n = input.size(0), c = input.size(1);
  const int64_t h = input.size(2), w = input.size(3);
  if (bh == h && bw == w) return input.clone();
  Tensor padded({n, c, bh, bw});  // Tensor() zero-fills
  for (int64_t i = 0; i < n; ++i) {
    pad_block_into(input.data() + i * c * h * w, c, h, w,
                   padded.data() + i * c * bh * bw, bh, bw);
  }
  return padded;
}

}  // namespace nb::runtime
