// Engine — the serving front end: a multi-model registry plus a bounded,
// deadline-aware, micro-batching admission queue.
//
// Clients submit single images against a model name and get a
// std::future<Tensor> back. The request path is built around admission
// control and overload survival, not best-effort queueing:
//
//   * Bounded admission. Every model carries a ModelQos: a max queue depth
//     and a default deadline. When a model's queue is full, submit() throws
//     a typed RejectedError{QueueFull} immediately — explicit backpressure
//     instead of silent unbounded growth. An overloaded Engine sheds load;
//     it never eats the process's memory.
//   * Deadlines. A request's deadline (per-submit or the model default) is
//     checked at admission (already expired -> RejectedError{Deadline},
//     nothing queued) and again at batch launch (expired while queued ->
//     the future resolves with RejectedError{Deadline} BEFORE any GEMM is
//     burned on it). p99 of accepted work stays bounded because expired
//     work is dropped, not served late.
//   * Priority lanes. Each model has two lanes (Lane::high, Lane::normal)
//     with strict-priority dequeue between lanes and round-robin across
//     models within a lane, so a burst on one model cannot starve another
//     model's traffic and interactive requests overtake bulk ones.
//   * Multi-worker dispatch. `workers` dispatcher threads each own private
//     per-model Sessions (weight panels stay shared via CompiledModel), so
//     batches of different models/geometries execute concurrently.
//   * Three-phase shutdown. shutdown(policy): (1) stop admitting — new
//     submits throw RejectedError{ShuttingDown}; (2) drain (serve every
//     queued request) or drop (resolve every queued future with
//     ShuttingDown) per policy; (3) join the workers. No future is ever
//     left unresolved. The destructor runs shutdown(options.on_shutdown).
//
// Dispatcher workers coalesce queued requests that target the same
// (model, execution geometry) into one batched run — the head request
// waits at most `max_wait_us` for peers (never past its own deadline),
// batches cap at `max_batch` — and the whole batch executes as ONE plan
// (see infer_plan.h), bitwise identical to running each request alone, so
// batching remains purely a throughput/latency policy. The execution
// geometry is normally the submitted (h, w); a model whose ModelQos
// carries a resolution-bucket ladder (runtime/bucketing.h) instead maps
// each submit to its bucket rung at admission, and mixed-resolution
// requests of one rung batch together: each image is zero-padded
// (bottom/right) to the rung geometry when the batch is stacked, and the
// reply is the model evaluated on that padded image — bitwise identical
// to running the padded image alone (the documented pad-to-bucket
// exactness contract; see bucketing.h and tests/test_bucketing.cpp).
//
//   Engine engine({.batching = {.max_batch = 8, .max_wait_us = 500},
//                  .workers = 4});
//   engine.register_model("mbv2", CompiledModel::compile_file(path),
//                         {.max_queue_depth = 128,
//                          .default_deadline_us = 20'000});
//   try {
//     auto f = engine.submit("mbv2", image, {.lane = Lane::high});
//     Tensor logits = f.get();  // value, RejectedError, or a model fault
//   } catch (const RejectedError& e) {
//     // e.reason() == RejectReason::QueueFull -> back off / retry
//   }
//
// Latency accounting: stats() reports p50/p99 over a fixed-size ring of
// recent samples (a long-lived Engine stays O(window), and the percentiles
// track current behavior instead of the process's first million requests)
// plus the full rejection taxonomy — the numbers BENCH_serve.json tracks.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "runtime/bucketing.h"
#include "runtime/compiled_model.h"
#include "runtime/fault_injector.h"
#include "runtime/session.h"
#include "tensor/tensor.h"
#include "util/thread_safety.h"

namespace nb::runtime {

// ---- admission-control vocabulary ----------------------------------------

/// Why the Engine refused (or gave up on) a request.
enum class RejectReason {
  QueueFull,     // the model's bounded queue was at max_queue_depth
  Deadline,      // expired at admission or while queued (never executed)
  ShuttingDown,  // submitted after shutdown began, or dropped by policy
  Unknown,       // no model registered under that name
};

const char* to_string(RejectReason reason);

/// The typed rejection outcome: thrown synchronously by submit() for
/// admission-time rejections, delivered through the future for requests
/// dropped after admission. Derives from std::runtime_error so existing
/// catch sites keep working; reason() carries the taxonomy.
class RejectedError : public std::runtime_error {
 public:
  RejectedError(RejectReason reason, const std::string& what)
      : std::runtime_error(what), reason_(reason) {}
  RejectReason reason() const { return reason_; }

 private:
  RejectReason reason_;
};

/// Strict-priority lanes: every queued high request of a model dequeues
/// before any of its normal requests (and high lanes win across models).
enum class Lane : int { high = 0, normal = 1 };
inline constexpr int kLaneCount = 2;

/// Per-model quality-of-service configuration, fixed at register time.
struct ModelQos {
  /// Queued-request bound across both lanes; admission beyond it throws
  /// RejectedError{QueueFull}. In-flight (already launched) requests don't
  /// count against the bound.
  int64_t max_queue_depth = 256;
  /// Deadline applied to submits that don't carry their own; 0 = none.
  /// Measured from admission.
  int64_t default_deadline_us = 0;
  /// Resolution-bucket ladder for cross-geometry batching (see
  /// runtime/bucketing.h). A submit whose (h, w) lands in a rung is
  /// zero-padded to the rung geometry AT ADMISSION (the bucket is the
  /// request's execution geometry from then on) and coalesces with every
  /// other request of that rung, regardless of exact input size. Empty
  /// ladder = exact-geometry coalescing only (pre-bucketing behavior).
  /// Validated at register_model time.
  BucketingConfig bucketing;
};

/// Per-submit overrides.
struct SubmitOptions {
  Lane lane = Lane::normal;
  /// Relative deadline from admission, microseconds; 0 = use the model's
  /// ModelQos default.
  int64_t deadline_us = 0;
  /// Absolute deadline; when set (non-epoch) it wins over deadline_us. The
  /// open-loop load harness uses this to anchor deadlines to the request's
  /// *scheduled* arrival, so generator lag counts against the SLO.
  std::chrono::steady_clock::time_point deadline{};
};

struct BatchingPolicy {
  /// Largest coalesced batch; 1 disables micro-batching (pure FIFO).
  int64_t max_batch = 8;
  /// How long the head-of-line request waits for same-geometry peers
  /// before its (possibly partial) batch launches; 0 = never wait. The
  /// wait is additionally capped by the head request's deadline.
  int64_t max_wait_us = 200;
};

/// What shutdown does with requests that were admitted but not launched.
enum class DrainPolicy {
  drain,  // serve every queued request, then stop
  drop,   // resolve every queued future with RejectedError{ShuttingDown}
};

struct EngineOptions {
  BatchingPolicy batching;
  /// Dispatcher threads executing batches (each owns one Session per
  /// model). More workers overlap batches of different models/geometries.
  int64_t workers = 1;
  /// Thread budget for the per-worker sessions (serial by default so
  /// workers never contend on the shared pool).
  SessionOptions session;
  /// QoS applied by register_model calls that don't pass their own.
  ModelQos default_qos;
  /// What the destructor does with still-queued requests.
  DrainPolicy on_shutdown = DrainPolicy::drain;
  /// Latency samples kept for p50/p99 (fixed-size ring of the most recent
  /// completions; a long-lived Engine's stats stay O(stats_window)).
  size_t stats_window = size_t{1} << 14;
  /// Test seam for deterministic fault injection (see fault_injector.h);
  /// null in production.
  std::shared_ptr<FaultInjector> fault_injector;
};

class Engine {
 public:
  explicit Engine(EngineOptions options = {});
  /// Runs shutdown(options.on_shutdown) if shutdown() wasn't called.
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // ---- model registry ----------------------------------------------------

  /// Registers (or hot-swaps) a model under `name`. Registration is atomic
  /// with respect to admission: a concurrent submit resolves either the old
  /// or the new model, never a torn state, and already-queued requests keep
  /// the CompiledModel they resolved at admission. `qos` defaults to
  /// EngineOptions::default_qos.
  void register_model(const std::string& name,
                      std::shared_ptr<const CompiledModel> model);
  void register_model(const std::string& name,
                      std::shared_ptr<const CompiledModel> model,
                      const ModelQos& qos);
  /// Removes `name`; returns false when unknown. Requests already admitted
  /// for it still execute (they hold the model); new submits get
  /// RejectedError{Unknown}.
  bool unregister_model(const std::string& name);
  std::shared_ptr<const CompiledModel> model(const std::string& name) const;
  std::vector<std::string> model_names() const;

  // ---- request path ------------------------------------------------------

  /// Submits one image ([C, H, W] or [1, C, H, W]) for `name`. Admission
  /// rejections throw RejectedError synchronously (QueueFull / Deadline /
  /// ShuttingDown / Unknown); a malformed shape is a caller bug and still
  /// throws a plain NB_CHECK error. Post-admission failures — deadline
  /// expiry while queued, drop-policy shutdown, model faults — surface
  /// through the future. The future resolves to the logits row
  /// [1, classes].
  std::future<Tensor> submit(const std::string& name, const Tensor& image,
                             const SubmitOptions& opts = {});

  // ---- lifecycle ---------------------------------------------------------

  /// Three-phase shutdown: stop admitting, drain-or-drop the queue per
  /// `policy`, join the workers. Idempotent; concurrent calls are safe and
  /// the first policy wins.
  void shutdown(DrainPolicy policy);
  void shutdown() { shutdown(options_.on_shutdown); }

  // ---- accounting --------------------------------------------------------

  struct Stats {
    int64_t submitted = 0;  // every submit() call, accepted or not
    int64_t accepted = 0;   // admitted into a queue
    int64_t completed = 0;  // future resolved with a value
    int64_t failed = 0;     // future resolved with a model/worker fault
    // Rejection taxonomy (each request counts in at most one bucket).
    int64_t rejected_queue_full = 0;  // thrown at admission
    int64_t rejected_deadline = 0;    // thrown at admission (already late)
    int64_t rejected_shutdown = 0;    // thrown at admission after shutdown
    int64_t dropped_deadline = 0;     // admitted, expired before launch
    int64_t dropped_shutdown = 0;     // admitted, dropped by DrainPolicy::drop
    /// Completions that had a deadline and beat it (the goodput numerator;
    /// deadline-less completions count in completed only).
    int64_t completed_within_deadline = 0;
    /// Admissions whose geometry was assigned to a LARGER bucket rung (the
    /// request executes zero-padded; see ModelQos::bucketing). Exact-fit
    /// rung hits don't count — no padding happened.
    int64_t padded_accepted = 0;
    /// Launched batches that mixed two or more distinct EXACT input
    /// geometries — the batches bucketing created that same-geometry
    /// coalescing never could.
    int64_t mixed_geometry_batches = 0;
    int64_t batches = 0;
    double avg_batch = 0.0;     // (completed + failed) / batches
    double p50_ms = 0.0;        // total submit -> resolve latency, over the
    double p99_ms = 0.0;        // stats_window most recent completions
    double max_ms = 0.0;
    double avg_queue_ms = 0.0;  // submit -> batch launch
    int64_t queue_depth = 0;    // queued (unlaunched) requests right now
    int64_t latency_samples = 0;
  };
  Stats stats() const;

 private:
  using TimePoint = std::chrono::steady_clock::time_point;

  struct Request {
    std::promise<Tensor> promise;
    Tensor input;  // [1, C, H, W] at the EXACT submitted geometry
    std::shared_ptr<const CompiledModel> model;
    std::string model_name;
    // Execution geometry: the assigned bucket rung, or the exact input
    // geometry when no rung applies. Requests coalesce on (model,
    // channels, exec_h, exec_w); padded iff it differs from the input.
    int64_t exec_h = 0, exec_w = 0;
    TimePoint enqueued;
    TimePoint deadline{};  // epoch = no deadline
    Lane lane = Lane::normal;
    bool has_deadline() const { return deadline != TimePoint{}; }
    bool padded() const {
      return exec_h != input.size(2) || exec_w != input.size(3);
    }
  };

  /// Registry entry + its admission queues. Hot-swap replaces `model` in
  /// place under mu_ so queued requests (which snapshot their model at
  /// admission) and lane ordering survive the swap.
  struct ModelEntry {
    std::shared_ptr<const CompiledModel> model;
    ModelQos qos;
    std::deque<Request> lanes[kLaneCount];
    bool in_active = false;  // member of active_
    int64_t depth() const {
      return static_cast<int64_t>(lanes[0].size() + lanes[1].size());
    }
  };

  enum class Phase { running, draining, dropping };

  void worker_loop() NB_EXCLUDES(mu_);
  bool matches(const Request& a, const Request& b) const;
  void execute_batch(std::vector<Request>& batch, Session* session,
                     std::exception_ptr session_error) NB_EXCLUDES(mu_);
  void record_batch(const std::vector<Request>& batch, TimePoint launched,
                    bool failed) NB_EXCLUDES(stats_mu_);
  void record_latency_sample(double ms) NB_REQUIRES(stats_mu_);

  // Pops the next runnable request honoring lane priority and the
  // round-robin cursor; resolves expired requests it walks past. Returns
  // false when no runnable request exists.
  bool pop_next(Request& out) NB_REQUIRES(mu_);
  // Moves coalescible peers (same model object, same geometry; high lane
  // first) from `entry`'s queues into `batch`.
  void gather_peers(ModelEntry& entry, std::vector<Request>& batch)
      NB_REQUIRES(mu_);
  // Drops entry from active_ when it has no queued work.
  void retire_if_idle(ModelEntry* entry) NB_REQUIRES(mu_);
  // Resolves a request with a typed rejection (no lock requirements).
  static void reject(Request& req, RejectReason reason,
                     const std::string& what);

  EngineOptions options_;

  // One lock covers the registry AND the queues: model resolution, QoS
  // checks and enqueue happen in a single critical section, so hot-swap /
  // unregister can never interleave with admission (the register/submit
  // race the old two-lock design had). Guarded members are declared so; a
  // clang -Wthread-safety build rejects any access outside the lock.
  mutable Mutex mu_;
  CondVar queue_cv_;
  std::map<std::string, std::shared_ptr<ModelEntry>> registry_
      NB_GUARDED_BY(mu_);
  // Round-robin ring of entries with queued work (an unregistered entry
  // stays in the ring until drained). rr_ points at the next entry to
  // inspect, rotated after every dequeue for cross-model fairness.
  std::vector<std::shared_ptr<ModelEntry>> active_ NB_GUARDED_BY(mu_);
  size_t rr_ NB_GUARDED_BY(mu_) = 0;
  int64_t queued_total_ NB_GUARDED_BY(mu_) = 0;
  Phase phase_ NB_GUARDED_BY(mu_) = Phase::running;
  // Bumped on every register/unregister; workers re-check their local
  // session maps against the registry when it changes, so a replaced or
  // removed model's weight panels are released instead of staying pinned
  // for the Engine's lifetime.
  std::atomic<uint64_t> registry_generation_{0};

  mutable Mutex stats_mu_;
  int64_t submitted_ NB_GUARDED_BY(stats_mu_) = 0;
  int64_t accepted_ NB_GUARDED_BY(stats_mu_) = 0;
  int64_t completed_ NB_GUARDED_BY(stats_mu_) = 0;
  int64_t failed_ NB_GUARDED_BY(stats_mu_) = 0;
  int64_t rejected_queue_full_ NB_GUARDED_BY(stats_mu_) = 0;
  int64_t rejected_deadline_ NB_GUARDED_BY(stats_mu_) = 0;
  int64_t rejected_shutdown_ NB_GUARDED_BY(stats_mu_) = 0;
  int64_t dropped_deadline_ NB_GUARDED_BY(stats_mu_) = 0;
  int64_t dropped_shutdown_ NB_GUARDED_BY(stats_mu_) = 0;
  int64_t completed_within_deadline_ NB_GUARDED_BY(stats_mu_) = 0;
  int64_t padded_accepted_ NB_GUARDED_BY(stats_mu_) = 0;
  int64_t mixed_geometry_batches_ NB_GUARDED_BY(stats_mu_) = 0;
  int64_t batches_ NB_GUARDED_BY(stats_mu_) = 0;
  double queue_ms_sum_ NB_GUARDED_BY(stats_mu_) = 0.0;
  // Fixed-size ring of the most recent completion latencies.
  std::vector<double> latency_ring_ NB_GUARDED_BY(stats_mu_);
  size_t ring_next_ NB_GUARDED_BY(stats_mu_) = 0;
  int64_t ring_count_ NB_GUARDED_BY(stats_mu_) = 0;

  Mutex lifecycle_mu_;  // serializes join in shutdown()
  std::vector<std::thread> workers_ NB_GUARDED_BY(lifecycle_mu_);
};

}  // namespace nb::runtime
