// Engine — the serving front end: a multi-model registry plus a dynamic
// micro-batching request queue.
//
// Clients submit single images against a model name and get a
// std::future<Tensor> back. Dispatcher workers coalesce queued requests
// that target the same (model, geometry) into one batched run — the head
// request waits at most `max_wait_us` for peers, batches cap at
// `max_batch` — and the whole batch executes as ONE plan: every conv step
// is a single packed GEMM over the im2col columns of all images laid side
// by side (see infer_plan.h), so weight-panel packing and kernel fringes
// amortize across the batch and micro-batching buys real throughput on
// tiny models, not just dispatch amortization. Batched execution is
// bitwise identical to running each request alone (the GEMM's rounding is
// independent of M/N), so batching is purely a throughput/latency policy,
// never a semantics change.
//
//   Engine engine({.batching = {.max_batch = 8, .max_wait_us = 500}});
//   engine.register_model("mbv2", CompiledModel::compile_file(path));
//   std::future<Tensor> f = engine.submit("mbv2", image);  // [C,H,W]
//   Tensor logits = f.get();                               // [1, classes]
//
// Latency accounting: every request's queue wait and total submit->done
// time is recorded; stats() reports p50/p99 plus batch-size averages, the
// numbers BENCH_serve.json tracks.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "runtime/compiled_model.h"
#include "runtime/session.h"
#include "tensor/tensor.h"

namespace nb::runtime {

struct BatchingPolicy {
  /// Largest coalesced batch; 1 disables micro-batching (pure FIFO).
  int64_t max_batch = 8;
  /// How long the head-of-line request waits for same-geometry peers
  /// before its (possibly partial) batch launches; 0 = never wait.
  int64_t max_wait_us = 200;
};

struct EngineOptions {
  BatchingPolicy batching;
  /// Dispatcher threads executing batches (each owns one Session per
  /// model). More workers overlap batches of different models/geometries.
  int64_t workers = 1;
  /// Thread budget for the per-worker sessions (serial by default so
  /// workers never contend on the shared pool).
  SessionOptions session;
};

class Engine {
 public:
  explicit Engine(EngineOptions options = {});
  /// Drains every accepted request, then stops the workers.
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // ---- model registry ----------------------------------------------------

  /// Registers (or replaces) a model under `name`. In-flight requests keep
  /// the CompiledModel they resolved alive; replacement affects only new
  /// submits.
  void register_model(const std::string& name,
                      std::shared_ptr<const CompiledModel> model);
  /// Removes `name`; returns false when unknown.
  bool unregister_model(const std::string& name);
  std::shared_ptr<const CompiledModel> model(const std::string& name) const;
  std::vector<std::string> model_names() const;

  // ---- request path ------------------------------------------------------

  /// Submits one image ([C, H, W] or [1, C, H, W]) for `name`. Throws
  /// immediately on an unknown model or a non-image shape; execution
  /// errors (e.g. geometry rejected by the planner) surface through the
  /// future. The future resolves to the logits row [1, classes].
  std::future<Tensor> submit(const std::string& name, const Tensor& image);

  // ---- accounting --------------------------------------------------------

  struct Stats {
    int64_t submitted = 0;
    int64_t completed = 0;
    int64_t failed = 0;
    int64_t batches = 0;
    double avg_batch = 0.0;     // completed / batches
    double p50_ms = 0.0;        // total submit -> resolve latency
    double p99_ms = 0.0;
    double max_ms = 0.0;
    double avg_queue_ms = 0.0;  // submit -> batch launch
  };
  Stats stats() const;

 private:
  struct Request {
    std::promise<Tensor> promise;
    Tensor input;  // [1, C, H, W]
    std::shared_ptr<const CompiledModel> model;
    std::chrono::steady_clock::time_point enqueued;
  };

  void worker_loop();
  bool matches(const Request& a, const Request& b) const;
  void execute_batch(std::vector<Request>& batch, Session& session);
  void record_batch(const std::vector<Request>& batch,
                    std::chrono::steady_clock::time_point launched,
                    bool failed);

  EngineOptions options_;

  mutable std::mutex registry_mu_;
  std::map<std::string, std::shared_ptr<const CompiledModel>> registry_;
  // Bumped on every register/unregister; workers re-check their local
  // session maps against the registry when it changes, so a replaced or
  // removed model's weight panels are released instead of staying pinned
  // for the Engine's lifetime.
  std::atomic<uint64_t> registry_generation_{0};

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<Request> queue_;
  bool stopping_ = false;

  mutable std::mutex stats_mu_;
  int64_t submitted_ = 0, completed_ = 0, failed_ = 0, batches_ = 0;
  double queue_ms_sum_ = 0.0;
  std::vector<double> latencies_ms_;  // capped; see engine.cpp

  std::vector<std::thread> workers_;
};

}  // namespace nb::runtime
