#include "runtime/session.h"

#include "export/plan_verify.h"
#include "runtime/bucketing.h"
#include "tensor/threadpool.h"

namespace nb::runtime {

Session::Session(std::shared_ptr<const CompiledModel> model,
                 SessionOptions options)
    : model_(std::move(model)), options_(std::move(options)) {
  NB_CHECK(model_ != nullptr, "session: null compiled model");
  NB_CHECK(options_.max_cached_plans >= 1,
           "session: max_cached_plans must be >= 1");
}

const exporter::InferPlan& Session::plan_for(int64_t batch, int64_t channels,
                                             int64_t h, int64_t w) {
  for (auto it = plans_.begin(); it != plans_.end(); ++it) {
    const exporter::PlanStats& st = it->stats();
    if (st.batch == batch && st.channels == channels && st.in_h == h &&
        st.in_w == w) {
      plans_.splice(plans_.begin(), plans_, it);  // move to MRU position
      return plans_.front();
    }
  }
  if (options_.on_plan_build) options_.on_plan_build(batch);
  plans_.emplace_front(model_->program(), model_->panels(), batch, channels,
                       h, w, model_->backend());
  if (options_.verify_plans) exporter::check_plan(plans_.front());
  while (plans_.size() > options_.max_cached_plans) {
    plans_.pop_back();
  }
  return plans_.front();
}

Tensor Session::run(const Tensor& input) {
  NB_CHECK(input.dim() == 4, "session: input must be NCHW");
  const exporter::InferPlan& plan =
      plan_for(input.size(0), input.size(1), input.size(2), input.size(3));
  ++runs_;
  if (options_.threads == SessionOptions::Threads::serial) {
    SerialScope serial;
    return plan.run(input);
  }
  return plan.run(input);
}

Tensor Session::run_padded(const Tensor& input, int64_t target_h,
                           int64_t target_w) {
  NB_CHECK(input.dim() == 4, "session: input must be NCHW");
  NB_CHECK(target_h >= input.size(2) && target_w >= input.size(3),
           "session: pad target must cover the input geometry");
  if (target_h == input.size(2) && target_w == input.size(3)) {
    return run(input);
  }
  return run(pad_to_geometry(input, target_h, target_w));
}

Session::MemoryStats Session::memory() const {
  MemoryStats m;
  for (const exporter::InferPlan& plan : plans_) {
    m.owned_arena_floats += plan.stats().arena_floats;
  }
  m.borrowed_weight_floats = model_->weight_panel_floats();
  m.weight_panel_addr = model_->panels().get();
  m.cached_plans = plans_.size();
  return m;
}

}  // namespace nb::runtime
