// CompiledModel — the immutable, shareable unit of the serving runtime.
//
// Compiling takes a FlatModel (from an NBFM file, an in-memory buffer, or a
// writer-produced program), validates it, and freezes it together with the
// dequantized weight panels built exactly once. The result is handed around
// as shared_ptr<const CompiledModel>: any number of Sessions (and Engine
// registry entries) execute against the same panels, so serving N
// concurrent streams costs N small arenas and ONE copy of the weights —
// the TinyML memory discipline carried into the serving tier.
//
//   auto model    = CompiledModel::compile_file("model.nbfm");
//   Session a(model), b(model);        // zero extra weight memory
//   Tensor logits = a.run(image);      // a and b run concurrently
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "export/flat_model.h"
#include "export/weight_panels.h"

namespace nb::runtime {

class CompiledModel {
 public:
  /// Compiles a flat program: builds (or adopts, when the model already
  /// compiled lazily) the shared weight panels and freezes the op list.
  /// Takes the model by value — move in to avoid copying the int8 payload.
  /// `backend` selects the execution mode every Session on this model
  /// runs: Backend::fast (float path over dequantized levels, default) or
  /// Backend::int8 (true integer path; requires a calibrated program —
  /// throws at compile time naming the offending op otherwise).
  /// Backend::reference is rejected: the serving stack is planned-only.
  static std::shared_ptr<const CompiledModel> compile(
      exporter::FlatModel model,
      exporter::Backend backend = exporter::Backend::fast);

  /// Loads + compiles an NBFM file.
  static std::shared_ptr<const CompiledModel> compile_file(
      const std::string& path,
      exporter::Backend backend = exporter::Backend::fast);

  /// Parses + compiles an NBFM image straight from memory (blob store,
  /// embedded artifact) — no temp files.
  static std::shared_ptr<const CompiledModel> compile_buffer(
      const uint8_t* data, size_t size,
      exporter::Backend backend = exporter::Backend::fast);

  /// The frozen op program (const access only; a CompiledModel never
  /// mutates after compile()).
  const exporter::FlatModel& program() const { return program_; }

  /// The shared dequantized weight panels. Identity-comparable: every
  /// Session on this model borrows exactly this object.
  const std::shared_ptr<const exporter::WeightPanels>& panels() const {
    return panels_;
  }

  /// Shared weight-panel memory, paid once regardless of session count.
  int64_t weight_panel_floats() const { return panels_->total_floats(); }
  int64_t weight_panel_bytes() const { return panels_->total_bytes(); }

  int64_t input_resolution() const { return program_.input_resolution(); }
  int64_t input_channels() const { return program_.input_channels(); }
  int64_t op_count() const {
    return static_cast<int64_t>(program_.ops().size());
  }

  /// The execution mode this model was compiled for; every Session plan
  /// inherits it.
  exporter::Backend backend() const { return backend_; }

 private:
  CompiledModel(exporter::FlatModel program,
                std::shared_ptr<const exporter::WeightPanels> panels,
                exporter::Backend backend)
      : program_(std::move(program)),
        panels_(std::move(panels)),
        backend_(backend) {}

  exporter::FlatModel program_;
  std::shared_ptr<const exporter::WeightPanels> panels_;
  exporter::Backend backend_ = exporter::Backend::fast;
};

}  // namespace nb::runtime
