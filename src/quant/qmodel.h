// Whole-model post-training quantization: the deployment step after
// NetBooster contracts the giant back to the TNN. Pipeline (standard int8
// PTQ as used by TFLite-Micro/MCUNet deployments):
//
//   1. eval mode; BN running stats are folded into every convolution
//      (remove_bn + weight rescale + bias), so inference is conv -> act;
//   2. every Conv2d / the classifier Linear is wrapped in a Quant* layer;
//   3. a calibration pass over `calib_batches` batches records activation
//      ranges;
//   4. freeze(): weights are fake-quantized per output channel, activation
//      scales fixed (min-max or clipped percentile).
//
// The quantized model is inference-only. table_quant_deploy uses this to show
// that NetBooster's accuracy gain survives int8 deployment.
#pragma once

#include <vector>

#include "data/dataset.h"
#include "models/mobilenetv2.h"
#include "quant/qlayers.h"

namespace nb::quant {

struct DeployConfig {
  QuantSpec spec;
  int64_t calib_batches = 8;
  int64_t batch_size = 32;
  uint64_t seed = 91;
};

struct DeployReport {
  int64_t conv_layers = 0;
  int64_t linear_layers = 0;
  int64_t folded_bn = 0;
  /// Weight bytes before (float32) and after (packed int).
  int64_t fp32_weight_bytes = 0;
  int64_t quant_weight_bytes = 0;
};

/// Folds every eval-mode BN in the model into its conv slot's weights. Each
/// affected ConvBnAct becomes conv(+bias) -> act, where the fold bias lives
/// in a still-float (un-frozen) QuantConv2d wrapper — the model computes
/// exactly what it did before, which the tests verify. Returns the fold
/// count. The model must be in eval mode (running stats are consumed).
int64_t fold_batchnorms(models::MobileNetV2& model, const QuantSpec& spec);

/// Full PTQ pipeline (fold, wrap, calibrate, freeze). The model is modified
/// in place and becomes inference-only.
DeployReport quantize_for_deployment(models::MobileNetV2& model,
                                     const data::ClassificationDataset& calib,
                                     const DeployConfig& config);

/// All Quant* wrappers currently installed in the model.
std::vector<QuantConv2d*> quant_convs(models::MobileNetV2& model);

}  // namespace nb::quant
