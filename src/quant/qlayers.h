// Inference-only quantized layer wrappers. A QuantConv2d takes over a
// ConvBnAct's conv slot: it owns the original Conv2d (whose weights have the
// unit's BN folded in and are then fake-quantized per output channel) plus a
// float bias from the BN shift, and fake-quantizes its input activation with
// a calibrated per-tensor scale. Lifecycle:
//
//   calibrating:  forward observes the float input range, runs float math
//   frozen:       forward quantizes input, runs the quantized weights
//
// backward() throws by design — quantized models are deployment artifacts,
// not training graphs.
#pragma once

#include <memory>

#include "nn/conv2d.h"
#include "nn/linear.h"
#include "quant/quantize.h"

namespace nb::quant {

enum class CalibMode { minmax, percentile };

struct QuantSpec {
  int weight_bits = 8;
  int act_bits = 8;
  /// Per-output-channel weight scales (vs one per-tensor scale).
  bool per_channel = true;
  CalibMode calib = CalibMode::percentile;
  /// Clip fraction for percentile calibration.
  float percentile = 0.999f;
};

class QuantConv2d : public nn::Module {
 public:
  /// `bias` is the BN-fold shift ([cout]) or an undefined Tensor for none.
  QuantConv2d(std::shared_ptr<nn::Conv2d> inner, Tensor bias,
              const QuantSpec& spec);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string type_name() const override { return "QuantConv2d"; }
  std::vector<std::pair<std::string, Module*>> named_children() override;

  /// Computes weight/activation scales from the observed statistics and
  /// quantizes the weights in place. forward() then runs quantized.
  void freeze();
  bool frozen() const { return frozen_; }

  nn::Conv2d& inner() { return *inner_; }
  float act_scale() const { return act_scale_; }
  const std::vector<float>& weight_scales() const { return weight_scales_; }
  /// The BN-fold bias carried by this wrapper (undefined Tensor for none).
  const Tensor& bias() const { return bias_; }
  const QuantSpec& spec() const { return spec_; }
  const ActObserver& observer() const { return observer_; }
  /// Serialized size of this layer's weights at the quantized precision.
  int64_t quantized_weight_bytes() const;

 private:
  std::shared_ptr<nn::Conv2d> inner_;
  Tensor bias_;  // undefined when the unit had no BN shift
  QuantSpec spec_;
  ActObserver observer_;
  std::vector<float> weight_scales_;
  float act_scale_ = 0.0f;
  bool frozen_ = false;
};

/// Same lifecycle for the classifier Linear.
class QuantLinear : public nn::Module {
 public:
  QuantLinear(std::shared_ptr<nn::Linear> inner, const QuantSpec& spec);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string type_name() const override { return "QuantLinear"; }
  std::vector<std::pair<std::string, Module*>> named_children() override;

  void freeze();
  bool frozen() const { return frozen_; }
  nn::Linear& inner() { return *inner_; }
  float act_scale() const { return act_scale_; }
  const std::vector<float>& weight_scales() const { return weight_scales_; }
  const QuantSpec& spec() const { return spec_; }
  int64_t quantized_weight_bytes() const;

 private:
  std::shared_ptr<nn::Linear> inner_;
  QuantSpec spec_;
  ActObserver observer_;
  std::vector<float> weight_scales_;
  float act_scale_ = 0.0f;
  bool frozen_ = false;
};

}  // namespace nb::quant
