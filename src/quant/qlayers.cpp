#include "quant/qlayers.h"

namespace nb::quant {

namespace {

/// Adds a per-channel bias to an NCHW tensor in place.
void add_channel_bias_(Tensor& x, const Tensor& bias) {
  const int64_t n = x.size(0);
  const int64_t c = x.size(1);
  const int64_t hw = x.numel() / (n * c);
  NB_CHECK(bias.numel() == c, "bias length != channels");
  float* p = x.data();
  const float* b = bias.data();
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t ch = 0; ch < c; ++ch) {
      const float bv = b[ch];
      float* plane = p + (i * c + ch) * hw;
      for (int64_t t = 0; t < hw; ++t) {
        plane[t] += bv;
      }
    }
  }
}

float calibrated_scale(const ActObserver& obs, const QuantSpec& spec) {
  const float absmax = spec.calib == CalibMode::percentile
                           ? obs.percentile_absmax(spec.percentile)
                           : obs.absmax();
  return scale_from_absmax(absmax, spec.act_bits);
}

}  // namespace

QuantConv2d::QuantConv2d(std::shared_ptr<nn::Conv2d> inner, Tensor bias,
                         const QuantSpec& spec)
    : inner_(std::move(inner)), bias_(std::move(bias)), spec_(spec) {
  NB_CHECK(inner_ != nullptr, "QuantConv2d: null inner conv");
}

Tensor QuantConv2d::forward(const Tensor& x) {
  Tensor y;
  if (!frozen_) {
    observer_.observe(x);
    y = inner_->forward(x);
  } else {
    Tensor xq = x.clone();
    fake_quant_(xq, act_scale_, spec_.act_bits);
    y = inner_->forward(xq);
  }
  if (bias_.defined()) {
    add_channel_bias_(y, bias_);
  }
  return y;
}

Tensor QuantConv2d::backward(const Tensor&) {
  NB_CHECK(false, "QuantConv2d is inference-only (no backward)");
  return {};
}

std::vector<std::pair<std::string, nn::Module*>> QuantConv2d::named_children() {
  return {{"inner", inner_.get()}};
}

void QuantConv2d::freeze() {
  NB_CHECK(!frozen_, "QuantConv2d::freeze() called twice");
  NB_CHECK(observer_.samples() > 0,
           "QuantConv2d::freeze() before any calibration forward");
  Tensor& w = inner_->weight().value;
  if (spec_.per_channel) {
    const std::vector<float> absmax = per_channel_absmax(w);
    weight_scales_.clear();
    weight_scales_.reserve(absmax.size());
    for (float m : absmax) {
      weight_scales_.push_back(scale_from_absmax(m, spec_.weight_bits));
    }
    fake_quant_per_channel_(w, weight_scales_, spec_.weight_bits);
  } else {
    const float scale = scale_from_absmax(w.abs_max(), spec_.weight_bits);
    weight_scales_.assign(1, scale);
    fake_quant_(w, scale, spec_.weight_bits);
  }
  act_scale_ = calibrated_scale(observer_, spec_);
  frozen_ = true;
}

int64_t QuantConv2d::quantized_weight_bytes() const {
  const int64_t weights = inner_->weight().value.numel();
  const int64_t scale_bytes =
      static_cast<int64_t>(weight_scales_.size()) * 4 + 4;  // + act scale
  return (weights * spec_.weight_bits + 7) / 8 + scale_bytes +
         (bias_.defined() ? bias_.numel() * 4 : 0);
}

QuantLinear::QuantLinear(std::shared_ptr<nn::Linear> inner,
                         const QuantSpec& spec)
    : inner_(std::move(inner)), spec_(spec) {
  NB_CHECK(inner_ != nullptr, "QuantLinear: null inner linear");
}

Tensor QuantLinear::forward(const Tensor& x) {
  if (!frozen_) {
    observer_.observe(x);
    return inner_->forward(x);
  }
  Tensor xq = x.clone();
  fake_quant_(xq, act_scale_, spec_.act_bits);
  return inner_->forward(xq);
}

Tensor QuantLinear::backward(const Tensor&) {
  NB_CHECK(false, "QuantLinear is inference-only (no backward)");
  return {};
}

std::vector<std::pair<std::string, nn::Module*>> QuantLinear::named_children() {
  return {{"inner", inner_.get()}};
}

void QuantLinear::freeze() {
  NB_CHECK(!frozen_, "QuantLinear::freeze() called twice");
  NB_CHECK(observer_.samples() > 0,
           "QuantLinear::freeze() before any calibration forward");
  Tensor& w = inner_->weight().value;
  if (spec_.per_channel) {
    const std::vector<float> absmax = per_channel_absmax(w);
    weight_scales_.clear();
    weight_scales_.reserve(absmax.size());
    for (float m : absmax) {
      weight_scales_.push_back(scale_from_absmax(m, spec_.weight_bits));
    }
    fake_quant_per_channel_(w, weight_scales_, spec_.weight_bits);
  } else {
    const float scale = scale_from_absmax(w.abs_max(), spec_.weight_bits);
    weight_scales_.assign(1, scale);
    fake_quant_(w, scale, spec_.weight_bits);
  }
  act_scale_ = calibrated_scale(observer_, spec_);
  frozen_ = true;
}

int64_t QuantLinear::quantized_weight_bytes() const {
  const int64_t weights = inner_->weight().value.numel();
  const int64_t bias = inner_->has_bias() ? inner_->bias().value.numel() : 0;
  return (weights * spec_.weight_bits + 7) / 8 +
         static_cast<int64_t>(weight_scales_.size()) * 4 + 4 + bias * 4;
}

}  // namespace nb::quant
