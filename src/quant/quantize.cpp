#include "quant/quantize.h"

#include <algorithm>
#include <cmath>

namespace nb::quant {

#if defined(NB_QUANT_U8_AVX2)
namespace detail {
void quantize_levels_u8_avx2(const float* src, uint8_t* dst, int64_t n,
                             float scale, float q);
}  // namespace detail
#endif

int64_t qmax_for_bits(int bits) {
  NB_CHECK(bits >= 2 && bits <= 16, "quant: bits must be in [2, 16]");
  return (int64_t{1} << (bits - 1)) - 1;
}

float scale_from_absmax(float absmax, int bits) {
  const float q = static_cast<float>(qmax_for_bits(bits));
  if (absmax <= 0.0f) {
    return 1e-8f;
  }
  return absmax / q;
}

void fake_quant_(Tensor& t, float scale, int bits) {
  fake_quant_buffer(t.data(), t.numel(), scale, bits);
}

void fake_quant_buffer(float* data, int64_t n, float scale, int bits) {
  NB_CHECK(scale > 0.0f, "quant: non-positive scale");
  const float q = static_cast<float>(qmax_for_bits(bits));
  for (int64_t i = 0; i < n; ++i) {
    const float level = std::clamp(std::round(data[i] / scale), -q, q);
    data[i] = level * scale;
  }
}

void quantize_levels_u8(const float* src, uint8_t* dst, int64_t n, float scale,
                        int bits) {
  NB_CHECK(scale > 0.0f, "quant: non-positive scale");
  NB_CHECK(bits <= 8, "quantize_levels_u8: bits must fit int8");
  const float q = static_cast<float>(qmax_for_bits(bits));
  // This pass runs once per conv/linear input on the int8 backend, so it is
  // bandwidth-critical; the AVX2 instance reproduces the scalar expression
  // below bit for bit (vdivps + exact half-away tie repair — see
  // quantize_u8_avx2.cpp).
#if defined(NB_QUANT_U8_AVX2)
  static const bool use_avx2 = __builtin_cpu_supports("avx2");
  if (use_avx2) {
    detail::quantize_levels_u8_avx2(src, dst, n, scale, q);
    return;
  }
#endif
  for (int64_t i = 0; i < n; ++i) {
    const float level = std::clamp(std::round(src[i] / scale), -q, q);
    dst[i] = static_cast<uint8_t>(static_cast<int32_t>(level) + 128);
  }
}

std::vector<float> dequantize_levels(const int8_t* levels, size_t count) {
  std::vector<float> out(count);
  for (size_t i = 0; i < count; ++i) {
    out[i] = static_cast<float>(levels[i]);
  }
  return out;
}

std::vector<float> per_channel_absmax(const Tensor& weight) {
  NB_CHECK(weight.dim() >= 2, "per_channel_absmax expects weight rank >= 2");
  const int64_t cout = weight.size(0);
  const int64_t stride = weight.numel() / cout;
  std::vector<float> out(static_cast<size_t>(cout), 0.0f);
  const float* p = weight.data();
  for (int64_t o = 0; o < cout; ++o) {
    float m = 0.0f;
    const float* row = p + o * stride;
    for (int64_t i = 0; i < stride; ++i) {
      m = std::max(m, std::fabs(row[i]));
    }
    out[static_cast<size_t>(o)] = m;
  }
  return out;
}

void fake_quant_per_channel_(Tensor& weight, const std::vector<float>& scales,
                             int bits) {
  const int64_t cout = weight.size(0);
  NB_CHECK(static_cast<int64_t>(scales.size()) == cout,
           "fake_quant_per_channel_: scale count != out channels");
  const float q = static_cast<float>(qmax_for_bits(bits));
  const int64_t stride = weight.numel() / cout;
  float* p = weight.data();
  for (int64_t o = 0; o < cout; ++o) {
    const float s = scales[static_cast<size_t>(o)];
    NB_CHECK(s > 0.0f, "fake_quant_per_channel_: non-positive scale");
    float* row = p + o * stride;
    for (int64_t i = 0; i < stride; ++i) {
      row[i] = std::clamp(std::round(row[i] / s), -q, q) * s;
    }
  }
}

float quantization_mse(const Tensor& original, const Tensor& quantized) {
  NB_CHECK(original.same_shape(quantized), "quantization_mse: shape mismatch");
  const float* a = original.data();
  const float* b = quantized.data();
  double sum = 0.0;
  const int64_t n = original.numel();
  for (int64_t i = 0; i < n; ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    sum += d * d;
  }
  return n > 0 ? static_cast<float>(sum / static_cast<double>(n)) : 0.0f;
}

ActObserver::ActObserver(int num_bins) {
  NB_CHECK(num_bins >= 16, "ActObserver: need at least 16 bins");
  bins_.assign(static_cast<size_t>(num_bins), 0);
}

void ActObserver::grow_range(float needed) {
  if (range_ == 0.0f) {
    range_ = needed;
    return;
  }
  // Double the covered range (merging bin pairs) until `needed` fits, so
  // earlier counts stay in the right magnitude buckets.
  while (range_ < needed) {
    const size_t n = bins_.size();
    for (size_t i = 0; i < n / 2; ++i) {
      bins_[i] = bins_[2 * i] + bins_[2 * i + 1];
    }
    std::fill(bins_.begin() + static_cast<int64_t>(n / 2), bins_.end(),
              int64_t{0});
    range_ *= 2.0f;
  }
}

void ActObserver::observe(const Tensor& x) {
  const float* p = x.data();
  const int64_t n = x.numel();
  float batch_max = 0.0f;
  for (int64_t i = 0; i < n; ++i) {
    batch_max = std::max(batch_max, std::fabs(p[i]));
  }
  if (batch_max > absmax_) {
    absmax_ = batch_max;
  }
  if (batch_max > range_) {
    grow_range(batch_max * 1.0001f);  // epsilon so the max lands in-range
  }
  if (range_ == 0.0f) {
    samples_ += n;
    return;  // all zeros: only bin 0 would be hit anyway
  }
  const float inv_width =
      static_cast<float>(bins_.size()) / range_;
  for (int64_t i = 0; i < n; ++i) {
    const float mag = std::fabs(p[i]);
    size_t bin = static_cast<size_t>(mag * inv_width);
    bin = std::min(bin, bins_.size() - 1);
    ++bins_[bin];
  }
  samples_ += n;
}

float ActObserver::percentile_absmax(float fraction) const {
  NB_CHECK(fraction > 0.0f && fraction <= 1.0f,
           "percentile_absmax: fraction in (0, 1]");
  if (samples_ == 0 || range_ == 0.0f) {
    return absmax_;
  }
  if (fraction >= 1.0f) {
    return absmax_;
  }
  // Epsilon guards float-representation drift (0.8f * 5 is 4 + 3e-8, which
  // must still mean "4 samples", not 5).
  const auto target = static_cast<int64_t>(std::ceil(
      static_cast<double>(fraction) * static_cast<double>(samples_) - 1e-6));
  int64_t cumulative = 0;
  const float width = range_ / static_cast<float>(bins_.size());
  for (size_t i = 0; i < bins_.size(); ++i) {
    cumulative += bins_[i];
    if (cumulative >= target) {
      return width * static_cast<float>(i + 1);  // bin upper edge
    }
  }
  return absmax_;
}

}  // namespace nb::quant
