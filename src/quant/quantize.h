// Symmetric uniform quantization primitives for post-training quantization
// (PTQ). NetBooster's pitch is IoT deployment; the deployment path for the
// contracted TNN is fold-BN -> int8 weights (per output channel) -> int8
// activations (per tensor, calibrated). Everything here is "fake quant":
// values are rounded to the integer grid and immediately rescaled to float,
// which reproduces int8 inference numerics exactly while the substrate stays
// float32 (integer products up to 2^24 are exact in float arithmetic).
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace nb::quant {

/// Largest representable magnitude of a signed `bits`-bit integer grid
/// (symmetric, no zero-point): 2^(bits-1) - 1.
int64_t qmax_for_bits(int bits);

/// Scale mapping [-absmax, absmax] onto the integer grid; returns a tiny
/// positive scale for absmax == 0 so division is always safe.
float scale_from_absmax(float absmax, int bits);

/// Rounds every element to the grid: x -> clamp(round(x/s), -q, q) * s.
void fake_quant_(Tensor& t, float scale, int bits);

/// Raw-buffer core of fake_quant_, for runtimes that keep activations in a
/// planned arena rather than in Tensors (see src/export/infer_plan.h).
void fake_quant_buffer(float* data, int64_t n, float scale, int bits);

/// Quantizes float activations to offset-u8 levels for the true int8 path:
/// dst[i] = clamp(round(src[i]/scale), -q, q) + 128, bits <= 8. The rounding
/// expression is the SAME as fake_quant_buffer's, so the integer level here
/// equals the level a fake-quantized float value implies — this is what makes
/// the int8 backend bit-exact against the fake-quant oracle. Inputs must be
/// finite (a float->int cast of NaN is undefined); every value a NetBooster
/// graph produces is, since weights/bias/activations are finite by
/// construction. Offset-u8 (level + 128) rather than int8 because the packed
/// GEMM consumes unsigned activations; level 0 is byte 128.
void quantize_levels_u8(const float* src, uint8_t* dst, int64_t n, float scale,
                        int bits);

/// Converts serialized integer weight levels to float, one float per level.
/// Scales are deliberately NOT applied: keeping the levels exact integers in
/// float lets a GEMM over them produce the same products as an int8 MAC
/// pipeline, with the per-channel scale applied once after accumulation.
std::vector<float> dequantize_levels(const int8_t* levels, size_t count);

/// Max |w| per output channel (dim 0) of a conv/linear weight.
std::vector<float> per_channel_absmax(const Tensor& weight);

/// Per-output-channel fake quantization (scales.size() == weight.size(0)).
void fake_quant_per_channel_(Tensor& weight, const std::vector<float>& scales,
                             int bits);

/// Mean squared quantization error between a tensor and its quantized copy.
float quantization_mse(const Tensor& original, const Tensor& quantized);

/// Streaming activation-range observer. Tracks the running absmax and a
/// magnitude histogram (range doubles when exceeded, counts merge), so both
/// min-max and clipped percentile calibration come from one pass.
class ActObserver {
 public:
  explicit ActObserver(int num_bins = 1024);

  void observe(const Tensor& x);

  int64_t samples() const { return samples_; }
  float absmax() const { return absmax_; }
  /// Magnitude below which `fraction` of observed |x| falls (histogram
  /// resolution limited). fraction = 1 returns absmax.
  float percentile_absmax(float fraction) const;

 private:
  void grow_range(float needed);

  std::vector<int64_t> bins_;
  float range_ = 0.0f;  // bins cover [0, range_)
  float absmax_ = 0.0f;
  int64_t samples_ = 0;
};

}  // namespace nb::quant
