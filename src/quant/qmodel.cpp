#include "quant/qmodel.h"

#include <memory>

#include "data/dataloader.h"
#include "nn/blocks.h"

namespace nb::quant {

namespace {

/// Folds one unit's BN into its Conv2d slot and wraps the conv in a
/// QuantConv2d carrying the fold bias. Units whose slot is not a plain
/// Conv2d (e.g. an un-contracted ExpandedConv) are left to the recursive
/// traversal, which reaches their internal ConvBnAct units anyway.
bool fold_and_wrap(nn::ConvBnAct& unit, const QuantSpec& spec,
                   DeployReport* report) {
  auto conv = std::dynamic_pointer_cast<nn::Conv2d>(unit.conv_slot());
  if (conv == nullptr) {
    return false;
  }
  Tensor bias;
  if (unit.has_bn()) {
    nn::BatchNorm2d* bn = unit.bn();
    NB_CHECK(!bn->training(),
             "fold_batchnorms requires eval mode (running stats)");
    const nn::BnAffine affine = nn::bn_to_affine(*bn);
    Tensor& w = conv->weight().value;
    const int64_t cout = w.size(0);
    NB_CHECK(static_cast<int64_t>(affine.scale.size()) == cout,
             "BN channel count != conv out channels");
    const int64_t stride = w.numel() / cout;
    float* wp = w.data();
    for (int64_t o = 0; o < cout; ++o) {
      const float s = affine.scale[static_cast<size_t>(o)];
      float* row = wp + o * stride;
      for (int64_t i = 0; i < stride; ++i) {
        row[i] *= s;
      }
    }
    bias = Tensor({cout});
    float* bp = bias.data();
    for (int64_t o = 0; o < cout; ++o) {
      bp[o] = affine.shift[static_cast<size_t>(o)];
    }
    if (conv->has_bias()) {
      // BN(conv(x) + b) folds b into the shift: b' = scale*b + shift.
      Tensor& cb = conv->bias().value;
      for (int64_t o = 0; o < cout; ++o) {
        bp[o] += affine.scale[static_cast<size_t>(o)] * cb.at(o);
      }
      cb.zero();
    }
    unit.remove_bn();
    if (report != nullptr) {
      ++report->folded_bn;
    }
  }
  if (report != nullptr) {
    ++report->conv_layers;
    report->fp32_weight_bytes += conv->weight().value.numel() * 4;
  }
  auto wrapper = std::make_shared<QuantConv2d>(conv, std::move(bias), spec);
  unit.swap_conv(wrapper);
  return true;
}

}  // namespace

int64_t fold_batchnorms(models::MobileNetV2& model, const QuantSpec& spec) {
  DeployReport report;
  model.apply([&](nn::Module& m) {
    if (auto* unit = dynamic_cast<nn::ConvBnAct*>(&m)) {
      fold_and_wrap(*unit, spec, &report);
    }
  });
  return report.folded_bn;
}

std::vector<QuantConv2d*> quant_convs(models::MobileNetV2& model) {
  std::vector<QuantConv2d*> out;
  model.apply([&](nn::Module& m) {
    if (auto* q = dynamic_cast<QuantConv2d*>(&m)) {
      out.push_back(q);
    }
  });
  return out;
}

DeployReport quantize_for_deployment(models::MobileNetV2& model,
                                     const data::ClassificationDataset& calib,
                                     const DeployConfig& config) {
  NB_CHECK(config.calib_batches > 0, "quantize: need calibration batches");
  model.set_training(false);

  // 1+2: fold BN and install wrappers.
  DeployReport report;
  model.apply([&](nn::Module& m) {
    if (auto* unit = dynamic_cast<nn::ConvBnAct*>(&m)) {
      fold_and_wrap(*unit, config.spec, &report);
    }
  });
  auto linear =
      std::dynamic_pointer_cast<nn::Linear>(model.classifier_slot());
  std::shared_ptr<QuantLinear> qlinear;
  if (linear != nullptr) {
    report.fp32_weight_bytes +=
        linear->weight().value.numel() * 4 +
        (linear->has_bias() ? linear->bias().value.numel() * 4 : 0);
    qlinear = std::make_shared<QuantLinear>(linear, config.spec);
    model.classifier_slot() = qlinear;
    ++report.linear_layers;
  }

  // 3: calibration pass (sequential batches; generators are deterministic).
  data::DataLoader loader(calib, config.batch_size, /*shuffle=*/false,
                          /*augment=*/false, config.seed);
  loader.start_epoch();
  data::Batch batch;
  int64_t seen = 0;
  while (seen < config.calib_batches && loader.next(batch)) {
    (void)model.forward(batch.images);
    ++seen;
  }
  NB_CHECK(seen > 0, "quantize: calibration dataset produced no batches");

  // 4: freeze all wrappers.
  std::vector<QuantConv2d*> convs = quant_convs(model);
  for (QuantConv2d* q : convs) {
    q->freeze();
    report.quant_weight_bytes += q->quantized_weight_bytes();
  }
  if (qlinear != nullptr) {
    qlinear->freeze();
    report.quant_weight_bytes += qlinear->quantized_weight_bytes();
  }
  return report;
}

}  // namespace nb::quant
