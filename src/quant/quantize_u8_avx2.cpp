// AVX2 instance of quantize_levels_u8 (see quantize.h). Compiled with
// -mavx2 only; quantize.cpp selects it at runtime via __builtin_cpu_supports
// so the library still runs on pre-AVX2 machines.
//
// The vector path must be BIT-IDENTICAL to the scalar expression
//
//   dst[i] = u8(int(clamp(round(src[i] / scale), -q, q)) + 128)
//
// because the int8 plan, the QModel oracle and the float reference all
// derive their agreement from this one rounding. Two subtleties:
//
//   * the division stays a division (vdivps) — multiplying by the
//     reciprocal rounds differently;
//   * std::round rounds halves AWAY from zero, vroundps rounds them to
//     even. Ties are repaired exactly: with t the quotient and r its
//     nearest-even rounding, d = t - r is computed without error (|d| <=
//     0.5, so Sterbenz / small-magnitude cases apply), and d == +-0.5
//     flags a tie. A tie rounds away iff nearest-even pulled it toward
//     zero, i.e. d == +0.5 with t > 0 (bump +1) or d == -0.5 with t < 0
//     (bump -1). Non-finite inputs fall through unchanged: d becomes NaN,
//     no tie fires, and the clamp still lands on +-q exactly as the scalar
//     path does for +-inf.
#include <algorithm>
#include <cmath>
#include <cstdint>

#include <immintrin.h>

namespace nb::quant::detail {

void quantize_levels_u8_avx2(const float* src, uint8_t* dst, int64_t n,
                             float scale, float q) {
  const __m256 vscale = _mm256_set1_ps(scale);
  const __m256 vq = _mm256_set1_ps(q);
  const __m256 vnq = _mm256_set1_ps(-q);
  const __m256 vhalf = _mm256_set1_ps(0.5f);
  const __m256 vnhalf = _mm256_set1_ps(-0.5f);
  const __m256 vone = _mm256_set1_ps(1.0f);
  const __m256 vzero = _mm256_setzero_ps();
  const __m256i voff = _mm256_set1_epi32(128);

  const auto levels8 = [&](const float* p) -> __m256i {
    const __m256 t = _mm256_div_ps(_mm256_loadu_ps(p), vscale);
    __m256 r =
        _mm256_round_ps(t, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
    const __m256 d = _mm256_sub_ps(t, r);
    const __m256 up = _mm256_and_ps(_mm256_cmp_ps(d, vhalf, _CMP_EQ_OQ),
                                    _mm256_cmp_ps(t, vzero, _CMP_GT_OQ));
    const __m256 dn = _mm256_and_ps(_mm256_cmp_ps(d, vnhalf, _CMP_EQ_OQ),
                                    _mm256_cmp_ps(t, vzero, _CMP_LT_OQ));
    r = _mm256_add_ps(r, _mm256_and_ps(up, vone));
    r = _mm256_sub_ps(r, _mm256_and_ps(dn, vone));
    r = _mm256_min_ps(_mm256_max_ps(r, vnq), vq);
    return _mm256_add_epi32(_mm256_cvtps_epi32(r), voff);
  };

  int64_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256i lo = levels8(src + i);
    const __m256i hi = levels8(src + i + 8);
    // packus interleaves 128-bit lanes; permute restores element order.
    const __m256i w16 = _mm256_permute4x64_epi64(
        _mm256_packus_epi32(lo, hi), _MM_SHUFFLE(3, 1, 2, 0));
    const __m128i bytes =
        _mm_packus_epi16(_mm256_castsi256_si128(w16),
                         _mm256_extracti128_si256(w16, 1));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), bytes);
  }
  for (; i < n; ++i) {
    // Scalar tail, same expression as the portable path.
    const float level = std::clamp(std::round(src[i] / scale), -q, q);
    dst[i] = static_cast<uint8_t>(static_cast<int32_t>(level) + 128);
  }
}

}  // namespace nb::quant::detail
