// Step 2a of NetBooster: Progressive Linearization Tuning (paper Sec. III-D).
// The scheduler owns the list of PLT activations produced by Network
// Expansion and ramps their slope alpha from 0 to 1 across Ed epochs of the
// tuning run; afterwards alpha stays pinned at 1 so the expanded blocks are
// exactly linear and contraction is lossless.
//
// The paper ramps "uniformly in each iteration" (RampShape::linear). The
// other shapes exist for the schedule ablation bench: cosine eases in/out of
// the ramp, step removes non-linearity in a few discrete jumps, and a ramp of
// 0 steps reproduces NetAug-style *abrupt* removal — the information-loss
// mode the paper's PLT is designed to avoid.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/activations.h"

namespace nb::core {

enum class RampShape { linear, cosine, step };

const char* to_string(RampShape shape);
RampShape ramp_shape_from_string(const std::string& name);

/// alpha value of the given shape at progress t in [0, 1]; monotone
/// non-decreasing with value 0 at t=0 and 1 at t>=1.
float ramp_alpha(RampShape shape, float t, int64_t num_steps = 4);

class PltScheduler {
 public:
  /// `ramp_steps` = Ed_epochs * steps_per_epoch (paper: Ed = 40 ImageNet
  /// epochs; 20% of tuning epochs on downstream tasks). A ramp of 0 steps
  /// pins alpha at 1 immediately (abrupt removal).
  PltScheduler(std::vector<nn::PltActivation*> activations, int64_t ramp_steps,
               RampShape shape = RampShape::linear);

  /// Sets alpha = ramp(step / ramp_steps) on every managed activation.
  /// Intended as the trainer's IterationHook.
  void on_step(int64_t step);

  float alpha() const { return alpha_; }
  bool done() const { return alpha_ >= 1.0f; }
  int64_t ramp_steps() const { return ramp_steps_; }
  RampShape shape() const { return shape_; }

  /// Forces alpha = 1 (used before standalone contraction in tests).
  void finish();

 private:
  void apply(float alpha);

  std::vector<nn::PltActivation*> activations_;
  int64_t ramp_steps_;
  RampShape shape_;
  float alpha_ = 0.0f;
};

}  // namespace nb::core
