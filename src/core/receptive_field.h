// Receptive-field bookkeeping for the structural-consistency criterion
// (paper Sec. III-C, criterion a): an inserted block must have the same
// receptive field as the pointwise layer it replaces, otherwise contraction
// to the original kernel size is impossible.
#pragma once

#include "core/expansion.h"
#include "nn/module.h"

namespace nb::core {

struct ReceptiveField {
  int64_t size = 1;  // input pixels covered by one output pixel
  int64_t jump = 1;  // stride product
};

/// Receptive field of a linear chain of conv layers walked in pre-order.
/// Residual shortcuts (kernel 1) do not widen the field, so this is exact
/// for the block structures used in this library.
ReceptiveField receptive_field_of(nn::Module& m);

/// True iff the inserted block sees exactly the same input pixels as the
/// pointwise layer it replaced (receptive field 1x1).
bool preserves_receptive_field(ExpandedConv& block);

}  // namespace nb::core
