#include "core/netbooster.h"

#include <cmath>

#include "train/metrics.h"

namespace nb::core {

NetBooster::NetBooster(std::shared_ptr<models::MobileNetV2> model,
                       const NetBoosterConfig& config)
    : model_(std::move(model)), config_(config), rng_(config.seed, 13) {
  NB_CHECK(model_ != nullptr, "NetBooster requires a model");
  expansion_ = expand_network(*model_, config_.expansion, rng_);
}

float NetBooster::train_giant(const data::ClassificationDataset& train_set,
                              const data::ClassificationDataset& test_set) {
  NB_CHECK(!contracted_, "giant already contracted");
  result_.giant_profile = models::profile_model(*model_, train_set.resolution());
  result_.giant_history =
      train::train_classifier(*model_, train_set, test_set, config_.giant);
  result_.expanded_acc = result_.giant_history.final_test_acc;
  return result_.expanded_acc;
}

void NetBooster::prepare_transfer(int64_t num_classes) {
  NB_CHECK(!contracted_, "transfer must be prepared before contraction");
  model_->reset_classifier(num_classes, rng_);
}

float NetBooster::tune_and_contract(
    const data::ClassificationDataset& train_set,
    const data::ClassificationDataset& test_set, train::LossFn loss_fn) {
  NB_CHECK(!contracted_, "tune_and_contract called twice");

  const int64_t steps_per_epoch =
      (train_set.size() + config_.tune.batch_size - 1) /
      config_.tune.batch_size;
  const int64_t ed_epochs = static_cast<int64_t>(
      std::lround(config_.plt_fraction * static_cast<double>(config_.tune.epochs)));
  PltScheduler scheduler(expansion_.plt_activations,
                         ed_epochs * steps_per_epoch, config_.ramp_shape);

  result_.tune_history = train::train_classifier(
      *model_, train_set, test_set, config_.tune, std::move(loss_fn),
      [&scheduler](int64_t step, int64_t) { scheduler.on_step(step); });

  scheduler.finish();  // exact even if the ramp ended mid-epoch
  // Refresh BN statistics under the final (alpha = 1) weights: contraction
  // folds the running stats into the merged kernels, so they must describe
  // the network that is actually being contracted.
  train::recalibrate_batchnorm(*model_, train_set);
  const ContractionReport report = contract_network(
      *model_, expansion_, config_.verify_contraction, rng_);
  result_.contraction_error = report.max_error;
  contracted_ = true;

  result_.final_profile = models::profile_model(*model_, test_set.resolution());
  result_.final_acc = train::evaluate(*model_, test_set);
  return result_.final_acc;
}

NetBoosterResult run_netbooster(std::shared_ptr<models::MobileNetV2> model,
                                const data::ClassificationDataset& train_set,
                                const data::ClassificationDataset& test_set,
                                const NetBoosterConfig& config) {
  NetBooster nb(std::move(model), config);
  nb.train_giant(train_set, test_set);
  nb.tune_and_contract(train_set, test_set);
  return nb.result();
}

}  // namespace nb::core
