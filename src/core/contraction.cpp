#include "core/contraction.h"

#include <algorithm>
#include <cmath>

#include "tensor/tensor_ops.h"

namespace nb::core {

Tensor apply_linear_conv(const LinearConv& conv, const Tensor& x) {
  NB_CHECK(x.dim() == 4 && x.size(1) == conv.cin(),
           "apply_linear_conv input mismatch");
  const int64_t n = x.size(0), h = x.size(2), w = x.size(3);
  const int64_t k = conv.kernel(), p = conv.padding;
  const int64_t oh = h + 2 * p - k + 1;
  const int64_t ow = w + 2 * p - k + 1;
  NB_CHECK(oh > 0 && ow > 0, "apply_linear_conv empty output");
  Tensor y({n, conv.cout(), oh, ow});
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t o = 0; o < conv.cout(); ++o) {
      for (int64_t oy = 0; oy < oh; ++oy) {
        for (int64_t ox = 0; ox < ow; ++ox) {
          double acc = conv.bias.at(o);
          for (int64_t m = 0; m < conv.cin(); ++m) {
            for (int64_t ki = 0; ki < k; ++ki) {
              const int64_t iy = oy + ki - p;
              if (iy < 0 || iy >= h) continue;
              for (int64_t kj = 0; kj < k; ++kj) {
                const int64_t ix = ox + kj - p;
                if (ix < 0 || ix >= w) continue;
                acc += static_cast<double>(conv.weight.at(o, m, ki, kj)) *
                       x.at(i, m, iy, ix);
              }
            }
          }
          y.at(i, o, oy, ox) = static_cast<float>(acc);
        }
      }
    }
  }
  return y;
}

Tensor expand_grouped_weight(const Tensor& weight, int64_t groups) {
  NB_CHECK(weight.dim() == 4, "conv weight expected");
  if (groups == 1) return weight.clone();
  const int64_t cout = weight.size(0);
  const int64_t cin_g = weight.size(1);
  const int64_t k = weight.size(2);
  const int64_t cin = cin_g * groups;
  const int64_t cout_g = cout / groups;
  Tensor full({cout, cin, k, k});
  for (int64_t o = 0; o < cout; ++o) {
    const int64_t g = o / cout_g;
    for (int64_t m = 0; m < cin_g; ++m) {
      for (int64_t ki = 0; ki < k; ++ki) {
        for (int64_t kj = 0; kj < k; ++kj) {
          full.at(o, g * cin_g + m, ki, kj) = weight.at(o, m, ki, kj);
        }
      }
    }
  }
  return full;
}

LinearConv fold_conv_bn(nn::Conv2d& conv, nn::BatchNorm2d* bn) {
  const auto& opts = conv.options();
  NB_CHECK(opts.stride == 1, "contraction requires stride-1 convs");
  LinearConv out;
  out.weight = expand_grouped_weight(conv.weight().value, opts.groups);
  out.bias = Tensor({opts.out_channels});
  out.padding = opts.padding;
  if (conv.has_bias()) out.bias.copy_from(conv.bias().value);

  if (bn != nullptr) {
    NB_CHECK(bn->channels() == opts.out_channels, "BN/conv channel mismatch");
    const nn::BnAffine affine = nn::bn_to_affine(*bn);
    for (int64_t o = 0; o < opts.out_channels; ++o) {
      const float s = affine.scale[static_cast<size_t>(o)];
      float* w = out.weight.data() + o * out.weight.numel() / opts.out_channels;
      const int64_t per_out = out.weight.numel() / opts.out_channels;
      for (int64_t j = 0; j < per_out; ++j) w[j] *= s;
      out.bias.at(o) =
          s * out.bias.at(o) + affine.shift[static_cast<size_t>(o)];
    }
  }
  return out;
}

LinearConv merge_sequential(const LinearConv& first, const LinearConv& second) {
  NB_CHECK(second.cin() == first.cout(),
           "merge_sequential channel mismatch");
  const int64_t c1 = first.cin();
  const int64_t c2 = first.cout();
  const int64_t c3 = second.cout();
  const int64_t k1 = first.kernel();
  const int64_t k2 = second.kernel();
  const int64_t k = k1 + k2 - 1;  // paper Eq. 4: k = k1 + k2 - 1

  LinearConv merged;
  merged.weight = Tensor({c3, c1, k, k});
  merged.bias = Tensor({c3});
  merged.padding = first.padding + second.padding;

  // Eq. 4: K[i,j,m,o] = sum_{s,t,n} K1[i-s, j-t, m, n] * K2[s, t, n, o].
  for (int64_t o = 0; o < c3; ++o) {
    for (int64_t n = 0; n < c2; ++n) {
      for (int64_t s = 0; s < k2; ++s) {
        for (int64_t t = 0; t < k2; ++t) {
          const float w2 = second.weight.at(o, n, s, t);
          if (w2 == 0.0f) continue;
          for (int64_t m = 0; m < c1; ++m) {
            for (int64_t u = 0; u < k1; ++u) {
              for (int64_t v = 0; v < k1; ++v) {
                merged.weight.at(o, m, u + s, v + t) +=
                    w2 * first.weight.at(n, m, u, v);
              }
            }
          }
        }
      }
    }
  }
  // Constant input bias b1 flows through the second conv's taps.
  for (int64_t o = 0; o < c3; ++o) {
    double acc = second.bias.at(o);
    for (int64_t n = 0; n < c2; ++n) {
      double taps = 0.0;
      for (int64_t s = 0; s < k2; ++s) {
        for (int64_t t = 0; t < k2; ++t) taps += second.weight.at(o, n, s, t);
      }
      acc += taps * first.bias.at(n);
    }
    merged.bias.at(o) = static_cast<float>(acc);
  }
  return merged;
}

void add_identity(LinearConv& conv) {
  NB_CHECK(conv.cin() == conv.cout(), "identity merge needs cin == cout");
  NB_CHECK(conv.kernel() % 2 == 1, "identity merge needs an odd kernel");
  const int64_t center = conv.kernel() / 2;
  for (int64_t c = 0; c < conv.cout(); ++c) {
    conv.weight.at(c, c, center, center) += 1.0f;
  }
}

void add_parallel(LinearConv& a, const LinearConv& b) {
  NB_CHECK(a.cin() == b.cin() && a.cout() == b.cout(),
           "parallel merge shape mismatch");
  NB_CHECK(b.kernel() <= a.kernel() &&
               (a.kernel() - b.kernel()) % 2 == 0,
           "parallel merge kernel mismatch");
  const int64_t off = (a.kernel() - b.kernel()) / 2;
  for (int64_t o = 0; o < a.cout(); ++o) {
    for (int64_t m = 0; m < a.cin(); ++m) {
      for (int64_t ki = 0; ki < b.kernel(); ++ki) {
        for (int64_t kj = 0; kj < b.kernel(); ++kj) {
          a.weight.at(o, m, ki + off, kj + off) += b.weight.at(o, m, ki, kj);
        }
      }
    }
    a.bias.at(o) += b.bias.at(o);
  }
}

std::shared_ptr<nn::Conv2d> contract_expanded(ExpandedConv& block) {
  NB_CHECK(block.fully_linearized(),
           "contract_expanded before PLT finished (alpha < 1 somewhere)");
  const auto& units = block.units();
  NB_CHECK(!units.empty(), "empty expanded block");

  LinearConv merged;
  bool have = false;
  for (const auto& unit : units) {
    nn::Conv2d* conv = nullptr;
    // The unit's conv slot always holds a plain Conv2d inside inserted blocks.
    conv = dynamic_cast<nn::Conv2d*>(unit->conv_slot().get());
    NB_CHECK(conv != nullptr, "expanded unit does not hold a Conv2d");
    LinearConv folded = fold_conv_bn(*conv, unit->bn());
    merged = have ? merge_sequential(merged, folded) : std::move(folded);
    have = true;
  }

  if (block.has_identity_shortcut()) {
    add_identity(merged);
  } else if (nn::ConvBnAct* proj = block.projection_shortcut()) {
    nn::Conv2d* conv = dynamic_cast<nn::Conv2d*>(proj->conv_slot().get());
    NB_CHECK(conv != nullptr, "projection shortcut does not hold a Conv2d");
    LinearConv folded = fold_conv_bn(*conv, proj->bn());
    add_parallel(merged, folded);
  }

  auto contracted = std::make_shared<nn::Conv2d>(
      nn::Conv2dOptions(merged.cin(), merged.cout(), merged.kernel())
          .with_padding(merged.padding)
          .with_bias(true));
  contracted->weight().value.copy_from(merged.weight);
  contracted->bias().value.copy_from(merged.bias);
  return contracted;
}

ContractionReport contract_network(models::MobileNetV2& model,
                                   ExpansionResult& expansion, bool verify,
                                   Rng& rng) {
  ContractionReport report;
  const bool was_training = model.training();
  model.set_training(false);

  for (ExpansionRecord& record : expansion.records) {
    ExpandedConv& block = *record.expanded;
    auto contracted = contract_expanded(block);

    if (verify) {
      Tensor probe({2, block.cin(), 6, 6});
      fill_normal(probe, rng, 0.0f, 1.0f);
      const Tensor giant_out = block.forward(probe);
      const Tensor merged_out = contracted->forward(probe);
      report.max_error =
          std::max(report.max_error, max_abs_diff(giant_out, merged_out));
    }

    // Absorb the merged bias into the host BN's running mean so the final
    // conv is bias-free, exactly matching the original TNN structure. In
    // train mode a pre-BN constant shift cancels anyway; in eval mode the
    // adjusted running mean reproduces it exactly.
    nn::BatchNorm2d* host_bn = record.host_unit->bn();
    if (host_bn != nullptr) {
      for (int64_t c = 0; c < host_bn->channels(); ++c) {
        host_bn->running_mean().at(c) -= contracted->bias().value.at(c);
      }
      auto bias_free = std::make_shared<nn::Conv2d>(
          nn::Conv2dOptions(block.cin(), block.cout(), contracted->options().kernel)
              .with_padding(contracted->options().padding));
      bias_free->weight().value.copy_from(contracted->weight().value);
      contracted = bias_free;
    }

    record.host_unit->swap_conv(contracted);
    ++report.contracted;
  }

  expansion.records.clear();
  expansion.plt_activations.clear();
  model.set_training(was_training);
  return report;
}

}  // namespace nb::core
