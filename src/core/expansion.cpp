#include "core/expansion.h"

#include <algorithm>
#include <cmath>

#include "nn/init.h"

namespace nb::core {

const char* to_string(BlockType t) {
  switch (t) {
    case BlockType::inverted_residual: return "inverted-residual";
    case BlockType::basic: return "basic";
    case BlockType::bottleneck: return "bottleneck";
  }
  return "?";
}

const char* to_string(Placement p) {
  switch (p) {
    case Placement::uniform: return "uniform";
    case Placement::first: return "first";
    case Placement::middle: return "middle";
    case Placement::last: return "last";
  }
  return "?";
}

namespace {

std::shared_ptr<nn::ConvBnAct> linear_unit(const nn::Conv2dOptions& opts) {
  return std::make_shared<nn::ConvBnAct>(opts, nn::ModulePtr(nullptr));
}

std::shared_ptr<nn::ConvBnAct> plt_unit(const nn::Conv2dOptions& opts,
                                        nn::ActKind act_kind) {
  return std::make_shared<nn::ConvBnAct>(
      opts, std::make_shared<nn::PltActivation>(act_kind, 0.0f));
}

}  // namespace

ExpandedConv::ExpandedConv(int64_t cin, int64_t cout,
                           const ExpansionConfig& config,
                           nn::ActKind act_kind, Rng& rng,
                           const Tensor* original_weight)
    : cin_(cin), cout_(cout), config_(config) {
  NB_CHECK(config.expansion_ratio >= 1, "expansion ratio >= 1");
  const int64_t k = config.dw_kernel;
  NB_CHECK(k % 2 == 1, "inserted kernel must be odd");

  switch (config.block_type) {
    case BlockType::inverted_residual: {
      // pw (cin -> r*cin) -> dw kxk -> pw (-> cout), as in Fig. 2.
      const int64_t hidden = cin * config.expansion_ratio;
      units_.push_back(plt_unit(nn::Conv2dOptions(cin, hidden, 1), act_kind));
      units_.push_back(plt_unit(nn::Conv2dOptions(hidden, hidden, k)
                                    .same_padding()
                                    .with_groups(hidden),
                                act_kind));
      units_.push_back(linear_unit(nn::Conv2dOptions(hidden, cout, 1)));
      break;
    }
    case BlockType::basic: {
      // Two full convs + residual (ResNet basic). The paper eliminates this
      // for k=3 because of the receptive-field blowup; with k=1 it remains
      // structurally consistent, which is how the Table IV ablation runs it.
      const int64_t mid = std::max<int64_t>(cout, cin);
      units_.push_back(
          plt_unit(nn::Conv2dOptions(cin, mid, k).same_padding(), act_kind));
      units_.push_back(
          linear_unit(nn::Conv2dOptions(mid, cout, k).same_padding()));
      break;
    }
    case BlockType::bottleneck: {
      // reduce -> kxk -> expand + residual (ResNet bottleneck).
      const int64_t mid = std::max<int64_t>(4, cout / 2);
      units_.push_back(plt_unit(nn::Conv2dOptions(cin, mid, 1), act_kind));
      units_.push_back(
          plt_unit(nn::Conv2dOptions(mid, mid, k).same_padding(), act_kind));
      units_.push_back(linear_unit(nn::Conv2dOptions(mid, cout, 1)));
      break;
    }
  }

  for (auto& unit : units_) nn::init_parameters(*unit, rng);

  if (config.preserve_function) {
    // Function-preserving insertion: a bare linear conv shortcut carries the
    // replaced layer's weights, and the deep branch starts silent by zeroing
    // its final BN gamma — block(x) == W0 x exactly, in both BN modes.
    shortcut_ = nn::ConvBnAct::conv_only(nn::Conv2dOptions(cin, cout, 1),
                                         nn::ActKind::identity);
    auto* conv = shortcut_->conv2d();
    if (original_weight != nullptr) {
      NB_CHECK(original_weight->numel() == conv->weight().value.numel(),
               "original weight shape mismatch for function preservation");
      conv->weight().value.copy_from(*original_weight);
    } else {
      nn::kaiming_normal_fan_out(conv->weight().value, rng);
    }
    units_.back()->bn()->gamma().value.zero();
  } else {
    // Paper wiring: identity residual when shapes allow, a linear projection
    // for basic/bottleneck inserts otherwise (both are contractible).
    if (cin == cout) {
      identity_shortcut_ = true;
    } else if (config.block_type != BlockType::inverted_residual) {
      shortcut_ = linear_unit(nn::Conv2dOptions(cin, cout, 1));
      nn::init_parameters(*shortcut_, rng);
    }
  }
}

Tensor ExpandedConv::forward(const Tensor& x) {
  input_ = x;
  Tensor y = x;
  for (auto& unit : units_) y = unit->forward(y);
  if (identity_shortcut_) {
    y.add_(x);
  } else if (shortcut_) {
    y.add_(shortcut_->forward(x));
  }
  return y;
}

Tensor ExpandedConv::backward(const Tensor& grad_out) {
  Tensor g = grad_out;
  for (auto it = units_.rbegin(); it != units_.rend(); ++it) {
    g = (*it)->backward(g);
  }
  if (identity_shortcut_) {
    g.add_(grad_out);
  } else if (shortcut_) {
    g.add_(shortcut_->backward(grad_out));
  }
  return g;
}

std::vector<std::pair<std::string, nn::Module*>> ExpandedConv::named_children() {
  std::vector<std::pair<std::string, nn::Module*>> out;
  for (size_t i = 0; i < units_.size(); ++i) {
    out.emplace_back("unit" + std::to_string(i), units_[i].get());
  }
  if (shortcut_) out.emplace_back("shortcut", shortcut_.get());
  return out;
}

std::vector<nn::PltActivation*> ExpandedConv::plt_activations() {
  std::vector<nn::PltActivation*> acts;
  for (auto& unit : units_) {
    if (auto* plt = dynamic_cast<nn::PltActivation*>(unit->act())) {
      acts.push_back(plt);
    }
  }
  return acts;
}

bool ExpandedConv::fully_linearized() {
  for (nn::PltActivation* act : plt_activations()) {
    if (!act->is_linearized()) return false;
  }
  return true;
}

std::vector<int64_t> select_expansion_sites(int64_t num_candidates,
                                            Placement placement,
                                            int64_t count) {
  NB_CHECK(num_candidates > 0, "no expansion candidates");
  count = std::clamp<int64_t>(count, 0, num_candidates);
  std::vector<int64_t> sites;
  sites.reserve(static_cast<size_t>(count));
  switch (placement) {
    case Placement::first:
      for (int64_t i = 0; i < count; ++i) sites.push_back(i);
      break;
    case Placement::last:
      for (int64_t i = num_candidates - count; i < num_candidates; ++i) {
        sites.push_back(i);
      }
      break;
    case Placement::middle: {
      const int64_t start = (num_candidates - count) / 2;
      for (int64_t i = 0; i < count; ++i) sites.push_back(start + i);
      break;
    }
    case Placement::uniform:
      // Evenly spread sites so every region of the TNN has adjacent layers
      // to inherit the expanded features (paper Q2 answer).
      for (int64_t i = 0; i < count; ++i) {
        const int64_t idx = static_cast<int64_t>(
            std::floor((static_cast<double>(i) + 0.5) * num_candidates / count));
        sites.push_back(std::min(idx, num_candidates - 1));
      }
      break;
  }
  sites.erase(std::unique(sites.begin(), sites.end()), sites.end());
  return sites;
}

ExpansionResult expand_network(models::MobileNetV2& model,
                               const ExpansionConfig& config, Rng& rng) {
  ExpansionResult result;
  // Candidates: trunk blocks that have a pw-expand stage.
  std::vector<int64_t> candidate_indices;
  auto blocks = model.residual_blocks();
  for (size_t i = 0; i < blocks.size(); ++i) {
    if (blocks[i]->has_expand()) {
      candidate_indices.push_back(static_cast<int64_t>(i));
    }
  }
  NB_CHECK(!candidate_indices.empty(), "model has no expandable blocks");

  int64_t count = config.expand_count;
  if (count < 0) {
    NB_CHECK(config.expand_fraction > 0.0f && config.expand_fraction <= 1.0f,
             "expand_fraction must be in (0, 1]");
    count = static_cast<int64_t>(std::lround(
        config.expand_fraction * static_cast<double>(candidate_indices.size())));
    count = std::max<int64_t>(count, 1);
  }
  const std::vector<int64_t> sites = select_expansion_sites(
      static_cast<int64_t>(candidate_indices.size()), config.placement, count);

  for (int64_t site : sites) {
    const int64_t block_idx = candidate_indices[static_cast<size_t>(site)];
    nn::InvertedResidual* host = blocks[static_cast<size_t>(block_idx)];
    nn::ConvBnAct& unit = host->expand_unit();
    nn::Conv2d* pw = unit.conv2d();
    NB_CHECK(pw != nullptr, "host expand unit already replaced");
    NB_CHECK(pw->is_pointwise(), "expansion target must be pointwise");
    const auto& opts = pw->options();

    auto expanded = std::make_shared<ExpandedConv>(
        opts.in_channels, opts.out_channels, config, model.config().act, rng,
        &pw->weight().value);
    unit.swap_conv(expanded);

    ExpansionRecord record;
    record.block_index = block_idx;
    record.host_unit = &unit;
    record.expanded = expanded;
    for (nn::PltActivation* act : expanded->plt_activations()) {
      result.plt_activations.push_back(act);
    }
    result.records.push_back(std::move(record));
  }
  return result;
}

}  // namespace nb::core
