#include "core/plt.h"

#include <algorithm>
#include <cmath>

#include "tensor/tensor.h"

namespace nb::core {

const char* to_string(RampShape shape) {
  switch (shape) {
    case RampShape::linear:
      return "linear";
    case RampShape::cosine:
      return "cosine";
    case RampShape::step:
      return "step";
  }
  return "?";
}

RampShape ramp_shape_from_string(const std::string& name) {
  if (name == "linear") return RampShape::linear;
  if (name == "cosine") return RampShape::cosine;
  if (name == "step") return RampShape::step;
  NB_CHECK(false, "unknown ramp shape '" + name + "'");
  return RampShape::linear;  // unreachable
}

float ramp_alpha(RampShape shape, float t, int64_t num_steps) {
  t = std::clamp(t, 0.0f, 1.0f);
  switch (shape) {
    case RampShape::linear:
      return t;
    case RampShape::cosine:
      // Smooth ease-in/ease-out: 0.5 * (1 - cos(pi t)).
      return 0.5f * (1.0f - std::cos(3.14159265358979323846f * t));
    case RampShape::step: {
      NB_CHECK(num_steps >= 1, "ramp_alpha: step shape needs >= 1 steps");
      // num_steps discrete jumps, landing exactly on 1 at t = 1.
      const float level =
          std::floor(t * static_cast<float>(num_steps)) /
          static_cast<float>(num_steps);
      return t >= 1.0f ? 1.0f : level;
    }
  }
  return t;
}

PltScheduler::PltScheduler(std::vector<nn::PltActivation*> activations,
                           int64_t ramp_steps, RampShape shape)
    : activations_(std::move(activations)),
      ramp_steps_(ramp_steps),
      shape_(shape) {
  NB_CHECK(ramp_steps_ >= 0, "negative PLT ramp");
  apply(ramp_steps_ == 0 ? 1.0f : 0.0f);
}

void PltScheduler::on_step(int64_t step) {
  const float t = ramp_steps_ == 0
                      ? 1.0f
                      : static_cast<float>(step) /
                            static_cast<float>(ramp_steps_);
  apply(ramp_alpha(shape_, t));
}

void PltScheduler::finish() { apply(1.0f); }

void PltScheduler::apply(float alpha) {
  alpha_ = alpha;
  for (nn::PltActivation* act : activations_) act->set_alpha(alpha);
}

}  // namespace nb::core
