// Step 2b of NetBooster: contraction of a linearized expanded block back into
// the original single convolution (paper Sec. III-D, Eq. 3-4). The pipeline
// is: fold every BN into its conv (exact in eval mode), compose the now
// purely linear conv chain into one kernel, merge residual shortcuts by
// adding the (possibly projected) identity, and splice the resulting single
// Conv2d back into the host block. With the default 1x1 inserted kernels the
// contraction is exact everywhere, not just in expectation — the property
// tests enforce agreement to float tolerance.
#pragma once

#include <memory>

#include "core/expansion.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"

namespace nb::core {

/// A stride-1 convolution in plain (weight, bias, padding) form with
/// groups = 1 (grouped/depthwise kernels are expanded to full form first).
struct LinearConv {
  Tensor weight;  // [cout, cin, k, k]
  Tensor bias;    // [cout]
  int64_t padding = 0;

  int64_t cout() const { return weight.size(0); }
  int64_t cin() const { return weight.size(1); }
  int64_t kernel() const { return weight.size(2); }
};

/// Applies a LinearConv to an NCHW input (reference semantics used by the
/// equivalence tests; not a training path).
Tensor apply_linear_conv(const LinearConv& conv, const Tensor& x);

/// Expands a grouped conv weight [cout, cin/g, k, k] to full [cout, cin, k, k].
Tensor expand_grouped_weight(const Tensor& weight, int64_t groups);

/// Folds an eval-mode BN into the conv: w' = s*w, b' = s*b + shift.
/// Pass bn = nullptr for a bare conv. Requires stride 1.
LinearConv fold_conv_bn(nn::Conv2d& conv, nn::BatchNorm2d* bn);

/// Eq. 3-4: the single conv equivalent to second(first(x)). Kernel size is
/// k1 + k2 - 1; biases compose as b = W2 * b1 + b2 (summed over taps).
LinearConv merge_sequential(const LinearConv& first, const LinearConv& second);

/// Residual merge: conv' = conv + identity (requires cin == cout, odd k).
void add_identity(LinearConv& conv);

/// Parallel-branch merge: a += b, embedding the smaller kernel centrally.
void add_parallel(LinearConv& a, const LinearConv& b);

/// Contracts a fully linearized ExpandedConv into one Conv2d (with bias).
/// Throws if any internal PLT activation has alpha < 1.
std::shared_ptr<nn::Conv2d> contract_expanded(ExpandedConv& block);

struct ContractionReport {
  int64_t contracted = 0;
  /// Max |giant - contracted| across verification probes (0 if !verify).
  float max_error = 0.0f;
};

/// Contracts every recorded expansion site in the model, absorbing each
/// merged bias into the host BN's running mean so the final convolution is
/// bias-free — i.e. the model returns to exactly the original TNN structure.
/// When `verify` is set, each site is checked on a random probe input before
/// and after the splice.
ContractionReport contract_network(models::MobileNetV2& model,
                                   ExpansionResult& expansion, bool verify,
                                   Rng& rng);

}  // namespace nb::core
