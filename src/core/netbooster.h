// The NetBooster training pipeline (paper Sec. III-B): Network Expansion on
// the large-scale dataset, then Progressive Linearization Tuning on the
// target dataset, then exact contraction back to the original TNN.
//
//   NetBooster nb(model, config);
//   nb.train_giant(imagenet.train, imagenet.test);     // step 1
//   nb.prepare_transfer(task.num_classes);             // optional, Table II
//   nb.tune_and_contract(task.train, task.test);       // step 2 (PLT) + merge
//
// After tune_and_contract the model is structurally the original TNN again
// (verified numerically when verify_contraction is set), so its inference
// cost equals vanilla — the central efficiency claim of Table I.
#pragma once

#include <memory>

#include "core/contraction.h"
#include "core/expansion.h"
#include "core/plt.h"
#include "models/profiler.h"
#include "train/trainer.h"

namespace nb::core {

struct NetBoosterConfig {
  ExpansionConfig expansion;
  /// Stage-1 recipe (deep giant on the large dataset).
  train::TrainConfig giant;
  /// Stage-2 recipe (PLT + finetune on the target dataset).
  train::TrainConfig tune;
  /// Ed as a fraction of stage-2 epochs (paper: 40/150 on ImageNet, 20% on
  /// downstream tasks). 0 means abrupt removal (alpha jumps straight to 1 —
  /// the NetAug-style information-loss mode the ablation benches probe).
  float plt_fraction = 0.25f;
  /// Alpha trajectory over the ramp (paper: linear, "uniformly increased in
  /// each iteration"); cosine/step are schedule ablations.
  RampShape ramp_shape = RampShape::linear;
  bool verify_contraction = true;
  uint64_t seed = 23;
};

struct NetBoosterResult {
  /// Deep giant accuracy after stage 1 ("Expanded Acc." in Tables IV/V).
  float expanded_acc = 0.0f;
  /// Contracted TNN accuracy after stage 2 ("Final Acc.").
  float final_acc = 0.0f;
  models::Profile giant_profile;
  models::Profile final_profile;
  float contraction_error = 0.0f;
  train::TrainHistory giant_history;
  train::TrainHistory tune_history;
};

class NetBooster {
 public:
  /// Expands `model` in place according to the config (stage-1 surgery
  /// happens immediately so the caller can inspect/profile the giant).
  NetBooster(std::shared_ptr<models::MobileNetV2> model,
             const NetBoosterConfig& config);

  /// Stage 1: trains the deep giant; returns its test accuracy.
  float train_giant(const data::ClassificationDataset& train_set,
                    const data::ClassificationDataset& test_set);

  /// Swaps the classification head for a downstream task (Table II / III
  /// flow); call between the two stages.
  void prepare_transfer(int64_t num_classes);

  /// Stage 2: ramps alpha over Ed epochs while finetuning, pins alpha at 1,
  /// contracts every expanded block and returns the final test accuracy of
  /// the recovered TNN. `loss_fn` lets callers add KD on top (Table II).
  float tune_and_contract(const data::ClassificationDataset& train_set,
                          const data::ClassificationDataset& test_set,
                          train::LossFn loss_fn = nullptr);

  models::MobileNetV2& model() { return *model_; }
  std::shared_ptr<models::MobileNetV2> model_ptr() { return model_; }
  const ExpansionResult& expansion() const { return expansion_; }
  const NetBoosterResult& result() const { return result_; }
  bool contracted() const { return contracted_; }

 private:
  std::shared_ptr<models::MobileNetV2> model_;
  NetBoosterConfig config_;
  ExpansionResult expansion_;
  NetBoosterResult result_;
  Rng rng_;
  bool contracted_ = false;
};

/// One-call flow for the "large-scale dataset" benchmark (Table I): stage 1
/// and stage 2 both run on the same dataset.
NetBoosterResult run_netbooster(std::shared_ptr<models::MobileNetV2> model,
                                const data::ClassificationDataset& train_set,
                                const data::ClassificationDataset& test_set,
                                const NetBoosterConfig& config);

}  // namespace nb::core
