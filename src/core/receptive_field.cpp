#include "core/receptive_field.h"

#include "nn/conv2d.h"
#include "nn/pooling.h"

namespace nb::core {

ReceptiveField receptive_field_of(nn::Module& m) {
  ReceptiveField rf;
  m.apply([&rf](nn::Module& mod) {
    if (auto* conv = dynamic_cast<nn::Conv2d*>(&mod)) {
      rf.size += (conv->options().kernel - 1) * rf.jump;
      rf.jump *= conv->options().stride;
    }
  });
  return rf;
}

bool preserves_receptive_field(ExpandedConv& block) {
  ReceptiveField rf;
  for (const auto& unit : block.units()) {
    auto* conv = dynamic_cast<nn::Conv2d*>(unit->conv_slot().get());
    NB_CHECK(conv != nullptr, "expanded unit does not hold a Conv2d");
    rf.size += (conv->options().kernel - 1) * rf.jump;
    rf.jump *= conv->options().stride;
  }
  return rf.size == 1 && rf.jump == 1;
}

}  // namespace nb::core
