// Step 1 of NetBooster: Network Expansion (paper Sec. III-C). Selected host
// blocks get their first pointwise convolution replaced by a multi-layer
// inserted block — by default an inverted residual block with expansion
// ratio 6 and a 1x1 depthwise kernel, so the receptive field of the expanded
// unit equals that of the replaced layer (structural-consistency criterion a)
// and the whole insert can later be contracted back to one pointwise layer.
//
// The three design questions of Sec. III-C are all exposed as knobs so the
// ablation benches (Tables IV, V, VI) can sweep them:
//   Q1 what block  -> ExpansionConfig::block_type
//   Q2 where       -> ExpansionConfig::placement (+ count/fraction)
//   Q3 ratio       -> ExpansionConfig::expansion_ratio
#pragma once

#include <memory>

#include "models/mobilenetv2.h"
#include "nn/activations.h"
#include "nn/blocks.h"
#include "tensor/rng.h"

namespace nb::core {

/// Q1: the kind of block inserted in place of the pointwise layer.
enum class BlockType { inverted_residual, basic, bottleneck };

/// Q2: which host blocks to expand.
enum class Placement { uniform, first, middle, last };

const char* to_string(BlockType t);
const char* to_string(Placement p);

struct ExpansionConfig {
  BlockType block_type = BlockType::inverted_residual;
  Placement placement = Placement::uniform;
  /// Fraction of candidate blocks to expand (paper default: 50%).
  float expand_fraction = 0.5f;
  /// When >= 0, expands exactly this many blocks instead (Table V uses 8).
  int64_t expand_count = -1;
  /// Q3: inner width ratio of the inserted block (paper default: 6).
  int64_t expansion_ratio = 6;
  /// Spatial kernel of the inserted block's middle conv. Must stay 1 to keep
  /// the receptive field of the replaced pointwise layer (criterion a).
  int64_t dw_kernel = 1;
  /// Function-preserving insertion: the block carries the replaced conv's
  /// weights on a linear shortcut and zero-initializes the deep branch's
  /// final BN gamma, so at insertion time the giant computes exactly what
  /// the TNN computed (Net2Net-style zero-init residual). The deep branch
  /// then grows in during training. Without this, the giant starts from
  /// scratch (the paper's setting — affordable at 160 ImageNet epochs, not
  /// at this repository's micro budgets; see DESIGN.md).
  bool preserve_function = true;
  uint64_t seed = 19;
};

/// Drop-in replacement for a pointwise Conv2d(cin -> cout): a chain of
/// conv+BN units with PLT activations between them, plus an optional linear
/// shortcut. After PLT drives every activation to the identity, contract()
/// folds the whole thing back into a single 1x1 convolution.
class ExpandedConv : public nn::Module {
 public:
  /// `original_weight`, when given with config.preserve_function, is the
  /// replaced pointwise conv's [cout, cin, 1, 1] kernel, carried on the
  /// shortcut so the insertion is function preserving.
  ExpandedConv(int64_t cin, int64_t cout, const ExpansionConfig& config,
               nn::ActKind act_kind, Rng& rng,
               const Tensor* original_weight = nullptr);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string type_name() const override { return "ExpandedConv"; }
  std::vector<std::pair<std::string, Module*>> named_children() override;

  int64_t cin() const { return cin_; }
  int64_t cout() const { return cout_; }
  const ExpansionConfig& config() const { return config_; }

  /// The conv+BN chain in forward order.
  const std::vector<std::shared_ptr<nn::ConvBnAct>>& units() const {
    return units_;
  }
  /// Identity shortcut around the chain (only when cin == cout).
  bool has_identity_shortcut() const { return identity_shortcut_; }
  /// Projection shortcut (basic/bottleneck inserts with cin != cout).
  nn::ConvBnAct* projection_shortcut() { return shortcut_.get(); }

  /// The PLT activations inside this block (ramped by the scheduler).
  std::vector<nn::PltActivation*> plt_activations();
  /// True once every internal activation is an exact identity.
  bool fully_linearized();

 private:
  int64_t cin_;
  int64_t cout_;
  ExpansionConfig config_;
  std::vector<std::shared_ptr<nn::ConvBnAct>> units_;
  std::shared_ptr<nn::ConvBnAct> shortcut_;
  bool identity_shortcut_ = false;
  Tensor input_;  // cached for the shortcut backward
};

/// Record of one surgery site so contraction can find its way back.
struct ExpansionRecord {
  int64_t block_index = 0;             // index into model.blocks()
  nn::ConvBnAct* host_unit = nullptr;  // unit whose conv slot was swapped
  std::shared_ptr<ExpandedConv> expanded;
};

struct ExpansionResult {
  std::vector<ExpansionRecord> records;
  std::vector<nn::PltActivation*> plt_activations;
};

/// Q2 selection: which of `num_candidates` blocks to expand.
std::vector<int64_t> select_expansion_sites(int64_t num_candidates,
                                            Placement placement,
                                            int64_t count);

/// Applies Network Expansion in place; returns the surgery records. Only
/// blocks with a pw-expand stage (expand_ratio > 1) are candidates.
ExpansionResult expand_network(models::MobileNetV2& model,
                               const ExpansionConfig& config, Rng& rng);

}  // namespace nb::core
