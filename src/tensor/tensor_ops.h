// Free functions on Tensor used across the NN stack: matrix products,
// row-wise softmax family, argmax, and random fills.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace nb {

/// C = A[M,K] * B[K,N] (row-major 2-D tensors).
Tensor matmul(const Tensor& a, const Tensor& b);

/// Row-wise softmax over the last dim of a 2-D tensor; optional temperature.
Tensor softmax_rows(const Tensor& logits, float temperature = 1.0f);

/// Row-wise log-softmax over the last dim of a 2-D tensor.
Tensor log_softmax_rows(const Tensor& logits, float temperature = 1.0f);

/// Index of the max element in each row of a 2-D tensor.
std::vector<int64_t> argmax_rows(const Tensor& t);

/// Fills with U(lo, hi).
void fill_uniform(Tensor& t, Rng& rng, float lo, float hi);

/// Fills with N(mean, stddev).
void fill_normal(Tensor& t, Rng& rng, float mean, float stddev);

/// Transposes a 2-D tensor.
Tensor transpose2d(const Tensor& t);

/// Concatenates 2+ tensors along dim 0 (all other dims must match).
Tensor cat0(const std::vector<Tensor>& parts);

}  // namespace nb
