// Baseline-ISA int8 GEMM instance: built with the project-wide flags only,
// so it runs anywhere. Same exact-integer results as the SIMD instances.
#define NB_GEMM_S8_KERNEL_NAME gemm_s8_packed_generic
#include "tensor/gemm_s8_kernel.inc"
