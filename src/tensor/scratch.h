// Thread-local scratch arena for the compute kernels. Hot paths (GEMM
// packing, im2col lowering) need large temporary buffers on every call;
// allocating them per call dominates small layers, so each thread keeps one
// reusable buffer per slot that only ever grows.
#pragma once

#include <cstddef>

namespace nb {

/// One slot per concurrent use inside a single call chain. A kernel may hold
/// several slots at once (e.g. Conv2d::backward holds kConvCols and
/// kConvGradCols while the GEMM it calls holds the two pack slots), so every
/// distinct nesting level gets its own slot.
enum class ScratchSlot : int {
  kGemmPackA = 0,  // per-thread A micro-panel (packed row block)
  kGemmPackB,      // shared B panel, owned by the thread driving the GEMM
  kGemmOpA,        // materialized op(A) for the transposed paths
  kGemmOpB,        // materialized op(B) for the transposed paths
  kConvCols,       // im2col column matrix (forward and dW)
  kConvGradCols,   // column-space gradient scattered by col2im (dX)
  kSlotCount,
};

/// Returns this thread's buffer for `slot`, grown to hold at least `count`
/// floats. Contents are unspecified. The pointer stays valid until the next
/// acquire of the same slot on the same thread with a larger count (growth is
/// geometric, so steady-state calls never reallocate).
float* scratch_acquire(ScratchSlot slot, size_t count);

/// Total floats currently reserved by this thread's arena (introspection).
size_t scratch_reserved();

/// Frees every buffer owned by the calling thread.
void scratch_release();

}  // namespace nb
