#include "tensor/depthwise.h"

#include <algorithm>

namespace nb {

#if defined(NB_DW_S8_AVX2)
namespace detail {
void depthwise_plane_s8_avx2(const uint8_t* img, const int8_t* ker,
                             int32_t* out, int64_t h, int64_t w, int64_t oh,
                             int64_t ow, int64_t k, int64_t pad);
}  // namespace detail
#endif

namespace {

// K is a compile-time constant for the common kernels so the tap loops fully
// unroll; KRT carries the runtime size for the generic instantiation (K==0).
template <int K>
void dw_plane(const float* img, const float* ker, float* out, int64_t h,
              int64_t w, int64_t oh, int64_t ow, int64_t krt, int64_t s,
              int64_t pad, float bias) {
  const int64_t k = K > 0 ? K : krt;
  // Output columns whose every horizontal tap is in bounds. The last such
  // column satisfies ox*s - pad + k - 1 <= w - 1; the numerator can be
  // negative (kernel wider than the plane), where C++ division truncates
  // toward zero instead of flooring, so guard it explicitly.
  const int64_t ox_lo = std::min(ow, (pad + s - 1) / s);
  const int64_t interior_end = w - k + pad >= 0 ? (w - k + pad) / s + 1 : 0;
  const int64_t ox_hi = std::max(ox_lo, std::min(ow, interior_end));
  for (int64_t oy = 0; oy < oh; ++oy) {
    const int64_t iy0 = oy * s - pad;
    const int64_t ki_lo = std::max<int64_t>(0, -iy0);
    const int64_t ki_hi = std::min<int64_t>(k, h - iy0);
    float* orow = out + oy * ow;
    const auto edge = [&](int64_t ox) {
      float acc = bias;
      for (int64_t ki = ki_lo; ki < ki_hi; ++ki) {
        const float* srow = img + (iy0 + ki) * w;
        const float* krow = ker + ki * k;
        for (int64_t kj = 0; kj < k; ++kj) {
          const int64_t ix = ox * s - pad + kj;
          if (ix >= 0 && ix < w) acc += krow[kj] * srow[ix];
        }
      }
      orow[ox] = acc;
    };
    for (int64_t ox = 0; ox < ox_lo; ++ox) edge(ox);
    for (int64_t ox = ox_hi; ox < ow; ++ox) edge(ox);
    // Interior fast path: every tap in bounds, no per-tap branches.
    const float* base = img + iy0 * w - pad;
    for (int64_t ox = ox_lo; ox < ox_hi; ++ox) {
      const float* spix = base + ox * s;
      float acc = bias;
      for (int64_t ki = ki_lo; ki < ki_hi; ++ki) {
        const float* srow = spix + ki * w;
        const float* krow = ker + ki * k;
        for (int64_t kj = 0; kj < (K > 0 ? K : krt); ++kj) {
          acc += krow[kj] * srow[kj];
        }
      }
      orow[ox] = acc;
    }
  }
}

// Integer twin of dw_plane for the int8 path: same interior/edge split,
// int32 accumulation of ker * (img - 128), skipped taps contribute nothing
// (offset level 0). Max |acc| is k*k * 127 * 255 — nowhere near int32.
template <int K>
void dw_plane_s8(const uint8_t* img, const int8_t* ker, int32_t* out,
                 int64_t h, int64_t w, int64_t oh, int64_t ow, int64_t krt,
                 int64_t s, int64_t pad) {
  const int64_t k = K > 0 ? K : krt;
  const int64_t ox_lo = std::min(ow, (pad + s - 1) / s);
  const int64_t interior_end = w - k + pad >= 0 ? (w - k + pad) / s + 1 : 0;
  const int64_t ox_hi = std::max(ox_lo, std::min(ow, interior_end));
  for (int64_t oy = 0; oy < oh; ++oy) {
    const int64_t iy0 = oy * s - pad;
    const int64_t ki_lo = std::max<int64_t>(0, -iy0);
    const int64_t ki_hi = std::min<int64_t>(k, h - iy0);
    int32_t* orow = out + oy * ow;
    const auto edge = [&](int64_t ox) {
      int32_t acc = 0;
      for (int64_t ki = ki_lo; ki < ki_hi; ++ki) {
        const uint8_t* srow = img + (iy0 + ki) * w;
        const int8_t* krow = ker + ki * k;
        for (int64_t kj = 0; kj < k; ++kj) {
          const int64_t ix = ox * s - pad + kj;
          if (ix >= 0 && ix < w) acc += krow[kj] * (srow[ix] - 128);
        }
      }
      orow[ox] = acc;
    };
    for (int64_t ox = 0; ox < ox_lo; ++ox) edge(ox);
    for (int64_t ox = ox_hi; ox < ow; ++ox) edge(ox);
    const uint8_t* base = img + iy0 * w - pad;
    for (int64_t ox = ox_lo; ox < ox_hi; ++ox) {
      const uint8_t* spix = base + ox * s;
      int32_t acc = 0;
      for (int64_t ki = ki_lo; ki < ki_hi; ++ki) {
        const uint8_t* srow = spix + ki * w;
        const int8_t* krow = ker + ki * k;
        for (int64_t kj = 0; kj < (K > 0 ? K : krt); ++kj) {
          acc += krow[kj] * (srow[kj] - 128);
        }
      }
      orow[ox] = acc;
    }
  }
}

}  // namespace

void depthwise_plane(const float* img, const float* ker, float* out,
                     int64_t h, int64_t w, int64_t oh, int64_t ow, int64_t k,
                     int64_t s, int64_t pad, float bias) {
  switch (k) {
    case 3:
      dw_plane<3>(img, ker, out, h, w, oh, ow, k, s, pad, bias);
      break;
    case 5:
      dw_plane<5>(img, ker, out, h, w, oh, ow, k, s, pad, bias);
      break;
    default:
      dw_plane<0>(img, ker, out, h, w, oh, ow, k, s, pad, bias);
      break;
  }
}

void depthwise_plane_s8(const uint8_t* img, const int8_t* ker, int32_t* out,
                        int64_t h, int64_t w, int64_t oh, int64_t ow,
                        int64_t k, int64_t s, int64_t pad) {
#if defined(NB_DW_S8_AVX2)
  // Stride-1 planes (the bulk of depthwise work) take the 8-wide AVX2
  // instance; the integer arithmetic is exact either way, so routing is a
  // pure performance decision.
  static const bool use_avx2 = __builtin_cpu_supports("avx2");
  if (use_avx2 && s == 1) {
    detail::depthwise_plane_s8_avx2(img, ker, out, h, w, oh, ow, k, pad);
    return;
  }
#endif
  switch (k) {
    case 3:
      dw_plane_s8<3>(img, ker, out, h, w, oh, ow, k, s, pad);
      break;
    case 5:
      dw_plane_s8<5>(img, ker, out, h, w, oh, ow, k, s, pad);
      break;
    default:
      dw_plane_s8<0>(img, ker, out, h, w, oh, ow, k, s, pad);
      break;
  }
}

}  // namespace nb
