#include "tensor/tensor_ops.h"

#include <algorithm>
#include <cmath>

#include "tensor/gemm.h"
#include "tensor/threadpool.h"

namespace nb {

namespace {

// Grain for row-parallel loops: fork only when a chunk carries at least
// ~16k elements so pool overhead never dominates small tensors. Each row is
// processed by exactly one thread, so results are NB_THREADS-invariant.
int64_t row_grain(int64_t cols) {
  return std::max<int64_t>(1, (int64_t{1} << 14) / std::max<int64_t>(cols, 1));
}

}  // namespace

Tensor matmul(const Tensor& a, const Tensor& b) {
  NB_CHECK(a.dim() == 2 && b.dim() == 2, "matmul requires 2-D tensors");
  NB_CHECK(a.size(1) == b.size(0), "matmul inner dimension mismatch");
  Tensor c({a.size(0), b.size(1)});
  gemm(false, false, a.size(0), b.size(1), a.size(1), 1.0f, a.data(), b.data(),
       0.0f, c.data());
  return c;
}

Tensor softmax_rows(const Tensor& logits, float temperature) {
  NB_CHECK(logits.dim() == 2, "softmax_rows requires a 2-D tensor");
  NB_CHECK(temperature > 0.0f, "softmax temperature must be positive");
  const int64_t rows = logits.size(0);
  const int64_t cols = logits.size(1);
  Tensor out({rows, cols});
  parallel_for(rows, row_grain(cols), [&](int64_t r0, int64_t r1) {
    for (int64_t i = r0; i < r1; ++i) {
      const float* in = logits.data() + i * cols;
      float* o = out.data() + i * cols;
      float mx = in[0];
      for (int64_t j = 1; j < cols; ++j) mx = std::max(mx, in[j]);
      double denom = 0.0;
      for (int64_t j = 0; j < cols; ++j) {
        o[j] = std::exp((in[j] - mx) / temperature);
        denom += o[j];
      }
      const float inv = static_cast<float>(1.0 / denom);
      for (int64_t j = 0; j < cols; ++j) o[j] *= inv;
    }
  });
  return out;
}

Tensor log_softmax_rows(const Tensor& logits, float temperature) {
  NB_CHECK(logits.dim() == 2, "log_softmax_rows requires a 2-D tensor");
  const int64_t rows = logits.size(0);
  const int64_t cols = logits.size(1);
  Tensor out({rows, cols});
  parallel_for(rows, row_grain(cols), [&](int64_t r0, int64_t r1) {
    for (int64_t i = r0; i < r1; ++i) {
      const float* in = logits.data() + i * cols;
      float* o = out.data() + i * cols;
      float mx = in[0];
      for (int64_t j = 1; j < cols; ++j) mx = std::max(mx, in[j]);
      double denom = 0.0;
      for (int64_t j = 0; j < cols; ++j)
        denom += std::exp((in[j] - mx) / temperature);
      const float log_denom = static_cast<float>(std::log(denom));
      for (int64_t j = 0; j < cols; ++j) {
        o[j] = (in[j] - mx) / temperature - log_denom;
      }
    }
  });
  return out;
}

std::vector<int64_t> argmax_rows(const Tensor& t) {
  NB_CHECK(t.dim() == 2, "argmax_rows requires a 2-D tensor");
  const int64_t rows = t.size(0);
  const int64_t cols = t.size(1);
  std::vector<int64_t> idx(static_cast<size_t>(rows));
  parallel_for(rows, row_grain(cols), [&](int64_t r0, int64_t r1) {
    for (int64_t i = r0; i < r1; ++i) {
      const float* row = t.data() + i * cols;
      idx[static_cast<size_t>(i)] = std::max_element(row, row + cols) - row;
    }
  });
  return idx;
}

void fill_uniform(Tensor& t, Rng& rng, float lo, float hi) {
  float* p = t.data();
  for (int64_t i = 0; i < t.numel(); ++i) p[i] = rng.uniform(lo, hi);
}

void fill_normal(Tensor& t, Rng& rng, float mean, float stddev) {
  float* p = t.data();
  for (int64_t i = 0; i < t.numel(); ++i) p[i] = rng.normal(mean, stddev);
}

Tensor transpose2d(const Tensor& t) {
  NB_CHECK(t.dim() == 2, "transpose2d requires a 2-D tensor");
  const int64_t r = t.size(0);
  const int64_t c = t.size(1);
  Tensor out({c, r});
  const float* src = t.data();
  float* dst = out.data();
  parallel_for(c, row_grain(r), [&](int64_t j0, int64_t j1) {
    for (int64_t j = j0; j < j1; ++j) {
      for (int64_t i = 0; i < r; ++i) dst[j * r + i] = src[i * c + j];
    }
  });
  return out;
}

Tensor cat0(const std::vector<Tensor>& parts) {
  NB_CHECK(!parts.empty(), "cat0 of empty list");
  std::vector<int64_t> shape = parts.front().shape();
  int64_t total = 0;
  for (const Tensor& p : parts) {
    NB_CHECK(p.dim() == static_cast<int64_t>(shape.size()), "cat0 rank mismatch");
    for (int64_t d = 1; d < p.dim(); ++d) {
      NB_CHECK(p.size(d) == shape[static_cast<size_t>(d)], "cat0 trailing dim mismatch");
    }
    total += p.size(0);
  }
  shape[0] = total;
  Tensor out(shape);
  float* dst = out.data();
  for (const Tensor& p : parts) {
    std::copy(p.data(), p.data() + p.numel(), dst);
    dst += p.numel();
  }
  return out;
}

}  // namespace nb
