// Quantized int8 GEMM — the integer core of the Backend::int8 inference
// path. Computes exact int32 accumulations of int8 weight levels against
// offset-u8 activation levels:
//
//   C[i,j] = sum_p A[i,p] * (int(B[p,j]) - 128)
//
// A is the [M,K] row-major int8 weight panel (levels in [-127, 127]); B is
// the [K,N] row-major uint8 activation/column panel storing each level
// OFFSET BY +128 (level L is the byte L+128, so level 0 — and therefore
// im2col zero padding — is the byte 128). C is int32, overwritten.
//
// Every kernel instance (generic, AVX2 maddubs, AVX512-VNNI vpdpbusd)
// produces the mathematically exact integer sum, so results are bitwise
// identical across ISAs, worker counts, and M partitions — unlike the float
// GEMM there is no rounding to keep in order, which is what makes the int8
// backend's thread/batch invariance hold by construction. The unsigned
// offset is compensated exactly: each K block accumulates sum(A*B_u8) and
// subtracts 128 * rowsum(A) once per row, both in int32.
//
// Exactness bound: |C| <= K * 127 * 127 and the largest intermediate is
// |C| + kc * 127 * 255, so K <= 2^17 keeps every partial sum inside int32
// (checked; far above any conv lowering's cin/groups * k * k).
#pragma once

#include <cstdint>

namespace nb {

/// Largest K for which the int32 accumulation is guaranteed exact (the
/// largest intermediate is (K - 256)*127*127 + 256*127*255 < 2^31 here).
/// gemm_s8 rejects larger K; the int8 plan/oracle validate against this at
/// build time so no graph ever reaches the rejection mid-inference.
constexpr int64_t kGemmS8MaxK = int64_t{1} << 17;

/// C[M,N] = A[M,K] * (B[K,N] - 128), exact int32, row-major, overwrite.
void gemm_s8(int64_t m, int64_t n, int64_t k, const int8_t* a,
             const uint8_t* b, int32_t* c);

/// Name of the instance chosen at runtime ("s8-vnni", "s8-avx2" or
/// "s8-generic"); surfaced by the int8 bench report.
const char* gemm_s8_kernel_name();

/// Test hooks: every compiled instance this CPU can execute, generic first.
/// The bitwise cross-ISA claim is only a claim if each instance is actually
/// exercised — the dispatcher alone would always hide the slower ones.
int gemm_s8_instance_count();
const char* gemm_s8_instance_name(int i);
/// Runs instance i with the same contract (and K bound) as gemm_s8.
void gemm_s8_run_instance(int i, int64_t m, int64_t n, int64_t k,
                          const int8_t* a, const uint8_t* b, int32_t* c);

}  // namespace nb
