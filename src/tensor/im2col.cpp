#include "tensor/im2col.h"

#include <algorithm>

namespace nb {

void im2col(const float* img, int64_t channels, int64_t height, int64_t width,
            int64_t kh, int64_t kw, int64_t stride_h, int64_t stride_w,
            int64_t pad_h, int64_t pad_w, float* cols) {
  const int64_t oh = conv_out_size(height, kh, stride_h, pad_h);
  const int64_t ow = conv_out_size(width, kw, stride_w, pad_w);
  const int64_t plane = oh * ow;
  for (int64_t c = 0; c < channels; ++c) {
    const float* src = img + c * height * width;
    for (int64_t ki = 0; ki < kh; ++ki) {
      for (int64_t kj = 0; kj < kw; ++kj) {
        float* dst = cols + ((c * kh + ki) * kw + kj) * plane;
        for (int64_t oy = 0; oy < oh; ++oy) {
          const int64_t iy = oy * stride_h + ki - pad_h;
          if (iy < 0 || iy >= height) {
            std::fill(dst, dst + ow, 0.0f);
            dst += ow;
            continue;
          }
          const float* srow = src + iy * width;
          for (int64_t ox = 0; ox < ow; ++ox) {
            const int64_t ix = ox * stride_w + kj - pad_w;
            *dst++ = (ix >= 0 && ix < width) ? srow[ix] : 0.0f;
          }
        }
      }
    }
  }
}

void col2im(const float* cols, int64_t channels, int64_t height, int64_t width,
            int64_t kh, int64_t kw, int64_t stride_h, int64_t stride_w,
            int64_t pad_h, int64_t pad_w, float* img) {
  const int64_t oh = conv_out_size(height, kh, stride_h, pad_h);
  const int64_t ow = conv_out_size(width, kw, stride_w, pad_w);
  const int64_t plane = oh * ow;
  for (int64_t c = 0; c < channels; ++c) {
    float* dst = img + c * height * width;
    for (int64_t ki = 0; ki < kh; ++ki) {
      for (int64_t kj = 0; kj < kw; ++kj) {
        const float* src = cols + ((c * kh + ki) * kw + kj) * plane;
        for (int64_t oy = 0; oy < oh; ++oy) {
          const int64_t iy = oy * stride_h + ki - pad_h;
          if (iy < 0 || iy >= height) {
            src += ow;
            continue;
          }
          float* drow = dst + iy * width;
          for (int64_t ox = 0; ox < ow; ++ox) {
            const int64_t ix = ox * stride_w + kj - pad_w;
            if (ix >= 0 && ix < width) drow[ix] += src[ox];
          }
          src += ow;
        }
      }
    }
  }
}

}  // namespace nb
