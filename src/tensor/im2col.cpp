#include "tensor/im2col.h"

#include <algorithm>

#include "tensor/threadpool.h"

namespace nb {

namespace {

/// Core expansion of one image into the column range starting at `col_off`
/// of a row-major [channels*kh*kw, ld] panel. `ld == oh*ow, col_off == 0`
/// is the classic single-image layout; a batched caller passes
/// `ld == batch*oh*ow` to lay every image's columns side by side.
/// `chan_stride` is the float distance between this image's channel planes
/// (H*W for NCHW, batch*H*W for the batch-interleaved activation layout).
void im2col_into(const float* img, int64_t chan_stride, int64_t channels,
                 int64_t height, int64_t width, int64_t kh, int64_t kw,
                 int64_t stride_h, int64_t stride_w, int64_t pad_h,
                 int64_t pad_w, float* cols, int64_t ld, int64_t col_off) {
  const int64_t oh = conv_out_size(height, kh, stride_h, pad_h);
  const int64_t ow = conv_out_size(width, kw, stride_w, pad_w);
  for (int64_t c = 0; c < channels; ++c) {
    const float* src = img + c * chan_stride;
    for (int64_t ki = 0; ki < kh; ++ki) {
      for (int64_t kj = 0; kj < kw; ++kj) {
        float* dst = cols + ((c * kh + ki) * kw + kj) * ld + col_off;
        for (int64_t oy = 0; oy < oh; ++oy) {
          const int64_t iy = oy * stride_h + ki - pad_h;
          if (iy < 0 || iy >= height) {
            std::fill(dst, dst + ow, 0.0f);
            dst += ow;
            continue;
          }
          const float* srow = src + iy * width;
          for (int64_t ox = 0; ox < ow; ++ox) {
            const int64_t ix = ox * stride_w + kj - pad_w;
            *dst++ = (ix >= 0 && ix < width) ? srow[ix] : 0.0f;
          }
        }
      }
    }
  }
}

/// Byte twin of im2col_into for the int8 path: identical traversal, but the
/// elements are offset-u8 levels and padding writes 128 (offset level 0).
void im2col_s8_into(const uint8_t* img, int64_t chan_stride, int64_t channels,
                    int64_t height, int64_t width, int64_t kh, int64_t kw,
                    int64_t stride_h, int64_t stride_w, int64_t pad_h,
                    int64_t pad_w, uint8_t* cols, int64_t ld,
                    int64_t col_off) {
  const int64_t oh = conv_out_size(height, kh, stride_h, pad_h);
  const int64_t ow = conv_out_size(width, kw, stride_w, pad_w);
  for (int64_t c = 0; c < channels; ++c) {
    const uint8_t* src = img + c * chan_stride;
    for (int64_t ki = 0; ki < kh; ++ki) {
      for (int64_t kj = 0; kj < kw; ++kj) {
        uint8_t* dst = cols + ((c * kh + ki) * kw + kj) * ld + col_off;
        for (int64_t oy = 0; oy < oh; ++oy) {
          const int64_t iy = oy * stride_h + ki - pad_h;
          if (iy < 0 || iy >= height) {
            std::fill(dst, dst + ow, static_cast<uint8_t>(128));
            dst += ow;
            continue;
          }
          const uint8_t* srow = src + iy * width;
          for (int64_t ox = 0; ox < ow; ++ox) {
            const int64_t ix = ox * stride_w + kj - pad_w;
            *dst++ = (ix >= 0 && ix < width) ? srow[ix]
                                             : static_cast<uint8_t>(128);
          }
        }
      }
    }
  }
}

}  // namespace

void im2col(const float* img, int64_t channels, int64_t height, int64_t width,
            int64_t kh, int64_t kw, int64_t stride_h, int64_t stride_w,
            int64_t pad_h, int64_t pad_w, float* cols) {
  const int64_t oh = conv_out_size(height, kh, stride_h, pad_h);
  const int64_t ow = conv_out_size(width, kw, stride_w, pad_w);
  im2col_into(img, height * width, channels, height, width, kh, kw, stride_h,
              stride_w, pad_h, pad_w, cols, oh * ow, 0);
}

void im2col_batched(const float* imgs, int64_t batch, int64_t img_stride,
                    int64_t chan_stride, int64_t channels, int64_t height,
                    int64_t width, int64_t kh, int64_t kw, int64_t stride_h,
                    int64_t stride_w, int64_t pad_h, int64_t pad_w,
                    float* cols) {
  const int64_t oh = conv_out_size(height, kh, stride_h, pad_h);
  const int64_t ow = conv_out_size(width, kw, stride_w, pad_w);
  const int64_t plane = oh * ow;
  const int64_t ld = batch * plane;
  parallel_for(batch, 1, [&](int64_t b0, int64_t b1) {
    for (int64_t i = b0; i < b1; ++i) {
      im2col_into(imgs + i * img_stride, chan_stride, channels, height,
                  width, kh, kw, stride_h, stride_w, pad_h, pad_w, cols, ld,
                  i * plane);
    }
  });
}

void im2col_s8_batched(const uint8_t* imgs, int64_t batch, int64_t img_stride,
                       int64_t chan_stride, int64_t channels, int64_t height,
                       int64_t width, int64_t kh, int64_t kw,
                       int64_t stride_h, int64_t stride_w, int64_t pad_h,
                       int64_t pad_w, uint8_t* cols) {
  const int64_t oh = conv_out_size(height, kh, stride_h, pad_h);
  const int64_t ow = conv_out_size(width, kw, stride_w, pad_w);
  const int64_t plane = oh * ow;
  const int64_t ld = batch * plane;
  parallel_for(batch, 1, [&](int64_t b0, int64_t b1) {
    for (int64_t i = b0; i < b1; ++i) {
      im2col_s8_into(imgs + i * img_stride, chan_stride, channels, height,
                     width, kh, kw, stride_h, stride_w, pad_h, pad_w, cols,
                     ld, i * plane);
    }
  });
}

void col2im(const float* cols, int64_t channels, int64_t height, int64_t width,
            int64_t kh, int64_t kw, int64_t stride_h, int64_t stride_w,
            int64_t pad_h, int64_t pad_w, float* img) {
  const int64_t oh = conv_out_size(height, kh, stride_h, pad_h);
  const int64_t ow = conv_out_size(width, kw, stride_w, pad_w);
  const int64_t plane = oh * ow;
  for (int64_t c = 0; c < channels; ++c) {
    float* dst = img + c * height * width;
    for (int64_t ki = 0; ki < kh; ++ki) {
      for (int64_t kj = 0; kj < kw; ++kj) {
        const float* src = cols + ((c * kh + ki) * kw + kj) * plane;
        for (int64_t oy = 0; oy < oh; ++oy) {
          const int64_t iy = oy * stride_h + ki - pad_h;
          if (iy < 0 || iy >= height) {
            src += ow;
            continue;
          }
          float* drow = dst + iy * width;
          for (int64_t ox = 0; ox < ow; ++ox) {
            const int64_t ix = ox * stride_w + kj - pad_w;
            if (ix >= 0 && ix < width) drow[ix] += src[ox];
          }
          src += ow;
        }
      }
    }
  }
}

}  // namespace nb
