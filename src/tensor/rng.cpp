#include "tensor/rng.h"

#include <cmath>

namespace nb {

Rng::Rng(uint64_t seed, uint64_t stream) : state_(0), inc_((stream << 1u) | 1u) {
  next_u32();
  state_ += seed;
  next_u32();
}

uint32_t Rng::next_u32() {
  const uint64_t old = state_;
  state_ = old * 6364136223846793005ULL + inc_;
  const uint32_t xorshifted =
      static_cast<uint32_t>(((old >> 18u) ^ old) >> 27u);
  const uint32_t rot = static_cast<uint32_t>(old >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
}

float Rng::uniform() {
  // 24 high bits -> [0, 1) with full float precision.
  return static_cast<float>(next_u32() >> 8) * (1.0f / 16777216.0f);
}

float Rng::uniform(float lo, float hi) { return lo + (hi - lo) * uniform(); }

float Rng::normal() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  float u1 = uniform();
  float u2 = uniform();
  if (u1 < 1e-12f) u1 = 1e-12f;
  const float mag = std::sqrt(-2.0f * std::log(u1));
  const float two_pi = 6.28318530717958647692f;
  spare_ = mag * std::sin(two_pi * u2);
  has_spare_ = true;
  return mag * std::cos(two_pi * u2);
}

float Rng::normal(float mean, float stddev) { return mean + stddev * normal(); }

int64_t Rng::randint(int64_t n) {
  // Modulo bias is negligible for our n (<< 2^32) but reject anyway.
  const uint64_t un = static_cast<uint64_t>(n);
  const uint64_t limit = (0x100000000ULL / un) * un;
  uint64_t v = next_u32();
  while (v >= limit) v = next_u32();
  return static_cast<int64_t>(v % un);
}

bool Rng::bernoulli(float p) { return uniform() < p; }

Rng Rng::split() {
  const uint64_t seed =
      (static_cast<uint64_t>(next_u32()) << 32) | next_u32();
  const uint64_t stream =
      (static_cast<uint64_t>(next_u32()) << 32) | next_u32();
  return Rng(seed, stream | 1u);
}

}  // namespace nb
