// Row-major single-precision GEMM. This is the computational core of every
// convolution (via im2col) and linear layer in the library.
//
// Implementation: a cache-blocked, register-tiled kernel (gemm_kernel.inc)
// that packs A into row panels and B into column panels held in a per-thread
// scratch arena, runs an 8x8 micro-kernel over them, and writes C directly
// when beta == 0. On x86-64 an AVX2+FMA instance is selected at runtime.
//
// Accumulation policy (applies to gemm and both gemv paths):
//   * every partial product accumulates in single precision (float);
//   * the reduction over K is one continuous chain in ascending order:
//     K-blocking is pure tiling (later blocks resume from the stored
//     partial sums), so the rounding sequence matches the naive ascending
//     loop and never depends on M, N, or the worker count. Results are
//     therefore bitwise identical for any NB_THREADS value and for
//     row-at-a-time calls.
//   * NaN/Inf propagate exactly as in the naive triple loop: there are no
//     zero-skip shortcuts. Per BLAS convention, alpha == 0 (or k == 0)
//     reduces to C = beta*C without reading A or B, and beta == 0 writes C
//     without reading it (existing NaN garbage in C is overwritten).
#pragma once

#include <cstdint>

namespace nb {

/// C[M,N] = alpha * op(A) * op(B) + beta * C, all row-major.
/// op(A) is A[M,K] (trans_a=false) or A[K,M] transposed (trans_a=true);
/// likewise for B with shape [K,N] / [N,K].
void gemm(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
          float alpha, const float* a, const float* b, float beta, float* c);

/// y[M] = alpha * op(A) * x + beta * y. Accumulates in float on both the
/// plain and transposed paths (see the accumulation policy above).
void gemv(bool trans_a, int64_t m, int64_t n, float alpha, const float* a,
          const float* x, float beta, float* y);

/// Name of the kernel instance chosen at runtime ("packed-avx2" or
/// "packed-generic"); surfaced by the substrate bench report.
const char* gemm_kernel_name();

}  // namespace nb
