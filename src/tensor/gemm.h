// Row-major single-precision GEMM. This is the computational core of every
// convolution (via im2col) and linear layer in the library.
#pragma once

#include <cstdint>

namespace nb {

/// C[M,N] = alpha * op(A) * op(B) + beta * C, all row-major.
/// op(A) is A[M,K] (trans_a=false) or A[K,M] transposed (trans_a=true);
/// likewise for B with shape [K,N] / [N,K].
void gemm(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
          float alpha, const float* a, const float* b, float beta, float* c);

/// y[M] = alpha * op(A) * x + beta * y.
void gemv(bool trans_a, int64_t m, int64_t n, float alpha, const float* a,
          const float* x, float beta, float* y);

}  // namespace nb
