// AVX2 int8 GEMM instance (split-weight vpmaddubsw scheme), compiled with
// -mavx2; gemm_s8.cpp only calls it after __builtin_cpu_supports("avx2").
#define NB_GEMM_S8_KERNEL_NAME gemm_s8_packed_avx2
#define NB_S8_MICRO_AVX2 1
#include "tensor/gemm_s8_kernel.inc"
