#include "tensor/gemm_s8.h"

#include <algorithm>
#include <vector>

#include "tensor/gemm_s8_kernel.h"
#include "tensor/tensor.h"

namespace nb {

namespace {

using GemmS8KernelFn = void (*)(int64_t, int64_t, int64_t, const int8_t*,
                                const uint8_t*, int32_t*);

GemmS8KernelFn pick_kernel() {
#if defined(NB_GEMM_S8_VNNI)
  if (__builtin_cpu_supports("avx512vnni") &&
      __builtin_cpu_supports("avx512vl")) {
    return &detail::gemm_s8_packed_vnni;
  }
#endif
#if defined(NB_GEMM_S8_AVX2)
  if (__builtin_cpu_supports("avx2")) {
    return &detail::gemm_s8_packed_avx2;
  }
#endif
  return &detail::gemm_s8_packed_generic;
}

GemmS8KernelFn active_kernel() {
  static const GemmS8KernelFn kernel = pick_kernel();
  return kernel;
}

struct Instance {
  const char* name;
  GemmS8KernelFn fn;
};

const std::vector<Instance>& instances() {
  static const std::vector<Instance> list = [] {
    std::vector<Instance> v;
    v.push_back({"s8-generic", &detail::gemm_s8_packed_generic});
#if defined(NB_GEMM_S8_AVX2)
    if (__builtin_cpu_supports("avx2")) {
      v.push_back({"s8-avx2", &detail::gemm_s8_packed_avx2});
    }
#endif
#if defined(NB_GEMM_S8_VNNI)
    if (__builtin_cpu_supports("avx512vnni") &&
        __builtin_cpu_supports("avx512vl")) {
      v.push_back({"s8-vnni", &detail::gemm_s8_packed_vnni});
    }
#endif
    return v;
  }();
  return list;
}

}  // namespace

const char* gemm_s8_kernel_name() {
#if defined(NB_GEMM_S8_VNNI)
  if (active_kernel() == &detail::gemm_s8_packed_vnni) return "s8-vnni";
#endif
#if defined(NB_GEMM_S8_AVX2)
  if (active_kernel() == &detail::gemm_s8_packed_avx2) return "s8-avx2";
#endif
  return "s8-generic";
}

int gemm_s8_instance_count() {
  return static_cast<int>(instances().size());
}

const char* gemm_s8_instance_name(int i) {
  return instances()[static_cast<size_t>(i)].name;
}

void gemm_s8_run_instance(int i, int64_t m, int64_t n, int64_t k,
                          const int8_t* a, const uint8_t* b, int32_t* c) {
  if (m <= 0 || n <= 0) return;
  if (k <= 0) {
    std::fill(c, c + m * n, 0);
    return;
  }
  NB_CHECK(k <= kGemmS8MaxK,
           "gemm_s8: K too large for exact int32 accumulation");
  instances()[static_cast<size_t>(i)].fn(m, n, k, a, b, c);
}

void gemm_s8(int64_t m, int64_t n, int64_t k, const int8_t* a,
             const uint8_t* b, int32_t* c) {
  if (m <= 0 || n <= 0) return;
  if (k <= 0) {
    std::fill(c, c + m * n, 0);
    return;
  }
  NB_CHECK(k <= kGemmS8MaxK,
           "gemm_s8: K too large for exact int32 accumulation");
  active_kernel()(m, n, k, a, b, c);
}

}  // namespace nb
