// Baseline-ISA instance of the packed SGEMM kernel. Compiled with the
// project's default flags only, so it runs on any target the build does
// (add -DNB_NATIVE=ON to tune this instance for the build host).
#define NB_GEMM_KERNEL_NAME gemm_packed_generic
#include "tensor/gemm_kernel.inc"
