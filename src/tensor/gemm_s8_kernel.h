// Internal declarations for the packed int8 GEMM kernel instances. All
// symbols are compiled from the same source (gemm_s8_kernel.inc); because
// the accumulation is exact integer arithmetic they return bit-identical
// results — gemm_s8.cpp picks the fastest one the CPU supports. Not part of
// the public surface — include "tensor/gemm_s8.h".
#pragma once

#include <cstdint>

namespace nb::detail {

/// Baseline-ISA instance, always available.
void gemm_s8_packed_generic(int64_t m, int64_t n, int64_t k, const int8_t* a,
                            const uint8_t* b, int32_t* c);

#if defined(NB_GEMM_S8_AVX2)
/// AVX2 instance (gemm_s8_kernel_avx2.cpp, built with -mavx2). vpmaddubsw
/// saturates its i16 pair sums, so the weights are packed split as
/// w = 2*(w>>1) + (w&1); each half stays exactly representable and the
/// result is still the exact integer sum. Only called after
/// __builtin_cpu_supports("avx2").
void gemm_s8_packed_avx2(int64_t m, int64_t n, int64_t k, const int8_t* a,
                         const uint8_t* b, int32_t* c);
#endif

#if defined(NB_GEMM_S8_VNNI)
/// AVX512-VNNI instance (gemm_s8_kernel_vnni.cpp, built with
/// -mavx512vnni -mavx512vl): one vpdpbusd per 4-deep K group, no
/// saturation. Only called after __builtin_cpu_supports confirms
/// avx512vnni and avx512vl.
void gemm_s8_packed_vnni(int64_t m, int64_t n, int64_t k, const int8_t* a,
                         const uint8_t* b, int32_t* c);
#endif

}  // namespace nb::detail
