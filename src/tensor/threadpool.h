// A small persistent thread pool with a deterministic parallel_for. Work is
// split into one contiguous index range per worker (no stealing), so a
// parallel loop computes exactly what the serial loop computes as long as the
// body only writes to its own indices — which keeps training bit-for-bit
// reproducible regardless of NB_THREADS.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace nb {

class ThreadPool {
 public:
  /// Spawns `num_workers` threads; 0 means no workers (pure serial pool).
  explicit ThreadPool(int64_t num_workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int64_t num_workers() const { return static_cast<int64_t>(workers_.size()); }

  /// Runs fn(begin, end) over [0, total) split into contiguous chunks, one
  /// per worker plus the calling thread; blocks until every chunk finishes.
  /// Exceptions from the body are rethrown (first one wins).
  void parallel_for(int64_t total,
                    const std::function<void(int64_t, int64_t)>& fn);

  /// The process-wide pool, sized by NB_THREADS (default: min(hardware, 8),
  /// at least 1). NB_THREADS=1 disables worker threads entirely.
  static ThreadPool& global();

 private:
  struct Task {
    const std::function<void(int64_t, int64_t)>* fn = nullptr;
    int64_t begin = 0;
    int64_t end = 0;
  };

  void worker_loop();

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable done_;
  std::vector<Task> queue_;
  int64_t outstanding_ = 0;
  bool stop_ = false;
  std::exception_ptr first_error_;
};

/// parallel_for over the global pool; falls back to a serial call when the
/// range is small (< grain) or the pool has no workers.
void parallel_for(int64_t total, int64_t grain,
                  const std::function<void(int64_t, int64_t)>& fn);

}  // namespace nb
