// A small persistent thread pool with a deterministic parallel_for. A loop
// is published as one job; workers and the calling thread claim contiguous
// chunks from an atomic cursor in FIFO order (no per-task queue, no lock on
// the handout path). Chunk boundaries never change what is computed — the
// body must write only its own indices — so a parallel loop computes exactly
// what the serial loop computes, keeping training bit-for-bit reproducible
// regardless of NB_THREADS.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "util/thread_safety.h"

namespace nb {

class ThreadPool {
 public:
  /// Spawns `num_workers` threads; 0 means no workers (pure serial pool).
  explicit ThreadPool(int64_t num_workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int64_t num_workers() const { return static_cast<int64_t>(workers_.size()); }

  /// Runs fn(begin, end) over [0, total) split into contiguous chunks of at
  /// least `grain` indices, handed out FIFO to workers plus the calling
  /// thread; blocks until every chunk finishes. Exceptions from the body are
  /// rethrown after the loop drains (first one wins). Only one loop runs at
  /// a time; a parallel_for issued from inside a running body executes
  /// serially on the issuing thread (no deadlock, same result).
  void parallel_for(int64_t total, int64_t grain,
                    const std::function<void(int64_t, int64_t)>& fn);
  void parallel_for(int64_t total,
                    const std::function<void(int64_t, int64_t)>& fn) {
    parallel_for(total, /*grain=*/1, fn);
  }

  /// The process-wide pool, sized by NB_THREADS (default: min(hardware, 8),
  /// at least 1). NB_THREADS=1 disables worker threads entirely.
  static ThreadPool& global();

  /// Makes nb::parallel_for route through `pool` instead of global() — the
  /// hook tests and benches use to compare worker counts inside one process.
  /// Pass nullptr to restore the default. Not safe while loops are running.
  static void set_global_override(ThreadPool* pool);

  /// The pool nb::parallel_for currently routes to.
  static ThreadPool& effective();

 private:
  void worker_loop();
  /// Claims and runs chunks of the job tagged `epoch` until the cursor is
  /// exhausted or a newer job replaces it.
  void run_chunks(uint64_t epoch, const std::function<void(int64_t, int64_t)>& fn,
                  int64_t total, int64_t chunk);
  void record_error() NB_EXCLUDES(mutex_);

  std::vector<std::thread> workers_;

  // Job publication. Fields guarded by mutex_ are written by the submitting
  // thread under mutex_ and snapshotted by workers under the same lock —
  // statically enforced via the capability annotations (clang CI builds
  // with -Wthread-safety -Werror).
  Mutex submit_mutex_;  // one job in flight at a time
  Mutex mutex_;
  CondVar wake_;
  CondVar done_;
  uint64_t epoch_ NB_GUARDED_BY(mutex_) = 0;
  const std::function<void(int64_t, int64_t)>* job_fn_
      NB_GUARDED_BY(mutex_) = nullptr;
  int64_t job_total_ NB_GUARDED_BY(mutex_) = 0;
  int64_t job_chunk_ NB_GUARDED_BY(mutex_) = 1;
  bool stop_ NB_GUARDED_BY(mutex_) = false;
  std::exception_ptr first_error_ NB_GUARDED_BY(mutex_);

  // Chunk handout: the high bits of cursor_ carry the job epoch so a worker
  // holding a stale job snapshot can never claim a chunk of a newer job; the
  // low bits are the next unclaimed index. epoch_full_ mirrors epoch_ at
  // full width and is re-checked before every claim so the truncated cursor
  // tag can never alias across a wrap. pending_ counts unfinished chunks;
  // the thread that finishes the last one signals done_.
  std::atomic<uint64_t> cursor_{0};
  std::atomic<uint64_t> epoch_full_{0};
  std::atomic<int64_t> pending_{0};
};

/// While an instance is alive on a thread, every nb::parallel_for issued
/// from that thread runs inline on the caller instead of entering the shared
/// pool. Chunk boundaries never change what a loop computes, so results are
/// bitwise identical to the pooled run. This is how concurrent serving
/// sessions share one process: each stream pins its work to its own thread
/// and N streams scale without contending on the pool's one-job-at-a-time
/// submit lock. Scopes nest; copying is disallowed.
class SerialScope {
 public:
  SerialScope();
  ~SerialScope();
  SerialScope(const SerialScope&) = delete;
  SerialScope& operator=(const SerialScope&) = delete;
};

/// True when a SerialScope is active on the calling thread.
bool in_serial_scope();

/// parallel_for over ThreadPool::effective(); falls back to a serial call
/// when the range is small (< grain), the pool has no workers, or the
/// calling thread holds a SerialScope.
void parallel_for(int64_t total, int64_t grain,
                  const std::function<void(int64_t, int64_t)>& fn);

}  // namespace nb
