// AVX2 instance of the int8 depthwise plane (stride 1), selected at runtime
// by depthwise.cpp. Interior output columns run 16-wide: per tap, 16 input
// bytes widen to i16 lanes and multiply a broadcast kernel value; the
// uniform -128 activation offset is hoisted out of the tap loop as
// 128 * sum(included kernel taps) and subtracted once per vector. All
// arithmetic is exact int32, so this produces the same numbers as the
// scalar path by arithmetic identity — there is no rounding to keep in
// step, only the offset bookkeeping.
#include <algorithm>
#include <cstdint>

#include <immintrin.h>

namespace nb::detail {

void depthwise_plane_s8_avx2(const uint8_t* img, const int8_t* ker,
                             int32_t* out, int64_t h, int64_t w, int64_t oh,
                             int64_t ow, int64_t k, int64_t pad) {
  const int64_t s = 1;  // the dispatcher only routes stride-1 planes here
  const int64_t ox_lo = std::min(ow, pad);
  const int64_t interior_end = w - k + pad >= 0 ? (w - k + pad) / s + 1 : 0;
  const int64_t ox_hi = std::max(ox_lo, std::min(ow, interior_end));
  for (int64_t oy = 0; oy < oh; ++oy) {
    const int64_t iy0 = oy * s - pad;
    const int64_t ki_lo = std::max<int64_t>(0, -iy0);
    const int64_t ki_hi = std::min<int64_t>(k, h - iy0);
    int32_t* orow = out + oy * ow;
    const auto edge = [&](int64_t ox) {
      int32_t acc = 0;
      for (int64_t ki = ki_lo; ki < ki_hi; ++ki) {
        const uint8_t* srow = img + (iy0 + ki) * w;
        const int8_t* krow = ker + ki * k;
        for (int64_t kj = 0; kj < k; ++kj) {
          const int64_t ix = ox * s - pad + kj;
          if (ix >= 0 && ix < w) acc += krow[kj] * (srow[ix] - 128);
        }
      }
      orow[ox] = acc;
    };
    for (int64_t ox = 0; ox < ox_lo; ++ox) edge(ox);
    for (int64_t ox = ox_hi; ox < ow; ++ox) edge(ox);

    // 128 * (sum of the taps this row range includes): the offset term of
    // every interior output in this row.
    int32_t ksum = 0;
    for (int64_t ki = ki_lo; ki < ki_hi; ++ki) {
      for (int64_t kj = 0; kj < k; ++kj) ksum += ker[ki * k + kj];
    }
    const __m256i voffset = _mm256_set1_epi32(ksum * 128);

    const uint8_t* base = img + iy0 * w - pad;
    // 16 outputs per iteration. Each tap multiplies 16 widened u8 values by
    // the broadcast kernel tap in i16 — exact, since |ker| * 255 <= 32385
    // fits int16 — and sign-extends the products into two i32 accumulators.
    // i16 multiplies are single-uop/low-latency where vpmulld is not, and
    // the accumulator dependency chain is adds only, so the 9-tap (k=3)
    // reduction pipelines instead of serializing on multiply latency.
    //
    // The interior tail re-runs one overlapping vector at ox_hi - 16
    // instead of falling back to scalar: integer results are exact, so the
    // overlapped stores rewrite identical values and the whole interior
    // stays vectorized whenever it is at least one vector wide.
    const auto interior16 = [&](int64_t ox) {
      const uint8_t* spix = base + ox;
      __m256i lo = _mm256_setzero_si256();
      __m256i hi = _mm256_setzero_si256();
      for (int64_t ki = ki_lo; ki < ki_hi; ++ki) {
        const uint8_t* srow = spix + ki * w;
        const int8_t* krow = ker + ki * k;
        for (int64_t kj = 0; kj < k; ++kj) {
          const __m256i v = _mm256_cvtepu8_epi16(_mm_loadu_si128(
              reinterpret_cast<const __m128i*>(srow + kj)));
          const __m256i p =
              _mm256_mullo_epi16(v, _mm256_set1_epi16(krow[kj]));
          lo = _mm256_add_epi32(
              lo, _mm256_cvtepi16_epi32(_mm256_castsi256_si128(p)));
          hi = _mm256_add_epi32(
              hi, _mm256_cvtepi16_epi32(_mm256_extracti128_si256(p, 1)));
        }
      }
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(orow + ox),
                          _mm256_sub_epi32(lo, voffset));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(orow + ox + 8),
                          _mm256_sub_epi32(hi, voffset));
    };
    int64_t ox = ox_lo;
    for (; ox + 16 <= ox_hi; ox += 16) interior16(ox);
    if (ox < ox_hi && ox_hi - ox_lo >= 16) {
      interior16(ox_hi - 16);
      ox = ox_hi;
    }
    for (; ox < ox_hi; ++ox) {
      const uint8_t* spix = base + ox;
      int32_t acc = 0;
      for (int64_t ki = ki_lo; ki < ki_hi; ++ki) {
        const uint8_t* srow = spix + ki * w;
        const int8_t* krow = ker + ki * k;
        for (int64_t kj = 0; kj < k; ++kj) {
          acc += krow[kj] * (srow[kj] - 128);
        }
      }
      orow[ox] = acc;
    }
  }
}

}  // namespace nb::detail
