// Deterministic PCG32 random number generator. Every stochastic component in
// the library (weight init, data generation, augmentation, NetAug sampling)
// takes an explicit Rng& so experiments are reproducible bit-for-bit across
// runs and platforms.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace nb {

/// PCG32 (Melissa O'Neill) — small, fast, statistically solid, and fully
/// deterministic given a (seed, stream) pair.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL, uint64_t stream = 1);

  /// Uniform 32-bit value.
  uint32_t next_u32();
  /// Uniform in [0, 1).
  float uniform();
  /// Uniform in [lo, hi).
  float uniform(float lo, float hi);
  /// Standard normal via Box-Muller (cached spare).
  float normal();
  /// Normal with the given mean / stddev.
  float normal(float mean, float stddev);
  /// Uniform integer in [0, n). n must be positive.
  int64_t randint(int64_t n);
  /// Bernoulli trial with probability p of true.
  bool bernoulli(float p);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (int64_t i = static_cast<int64_t>(v.size()) - 1; i > 0; --i) {
      const int64_t j = randint(i + 1);
      std::swap(v[static_cast<size_t>(i)], v[static_cast<size_t>(j)]);
    }
  }

  /// Derives an independent child generator (used to give each dataset split
  /// its own stream so draws in one split do not perturb another).
  Rng split();

 private:
  uint64_t state_;
  uint64_t inc_;
  bool has_spare_ = false;
  float spare_ = 0.0f;
};

}  // namespace nb
