#include "tensor/gemm.h"

#include <algorithm>

#include "tensor/gemm_kernel.h"
#include "tensor/scratch.h"

namespace nb {

namespace {

using GemmKernelFn = void (*)(int64_t, int64_t, int64_t, float, const float*,
                              const float*, float, float*);

GemmKernelFn pick_kernel() {
#if defined(NB_GEMM_AVX2)
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return &detail::gemm_packed_avx2;
  }
#endif
  return &detail::gemm_packed_generic;
}

GemmKernelFn active_kernel() {
  static const GemmKernelFn kernel = pick_kernel();
  return kernel;
}

void scale_rows(float* c, int64_t count, float beta) {
  if (beta == 0.0f) {
    std::fill(c, c + count, 0.0f);
  } else if (beta != 1.0f) {
    for (int64_t i = 0; i < count; ++i) c[i] *= beta;
  }
}

}  // namespace

const char* gemm_kernel_name() {
#if defined(NB_GEMM_AVX2)
  if (active_kernel() == &detail::gemm_packed_avx2) return "packed-avx2";
#endif
  return "packed-generic";
}

void gemm(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
          float alpha, const float* a, const float* b, float beta, float* c) {
  if (m <= 0 || n <= 0) return;
  if (k <= 0 || alpha == 0.0f) {
    // BLAS convention: no product term, C = beta * C without touching A or B.
    scale_rows(c, m * n, beta);
    return;
  }

  // The packed kernel consumes the NN layout; transposed operands are
  // materialized once into the arena. The copies are O(MK + KN), negligible
  // next to the O(MNK) product, and reuse the same buffers across calls.
  const float* ap = a;
  const float* bp = b;
  if (trans_a) {
    float* buf =
        scratch_acquire(ScratchSlot::kGemmOpA, static_cast<size_t>(m * k));
    for (int64_t p = 0; p < k; ++p) {
      for (int64_t i = 0; i < m; ++i) buf[i * k + p] = a[p * m + i];
    }
    ap = buf;
  }
  if (trans_b) {
    float* buf =
        scratch_acquire(ScratchSlot::kGemmOpB, static_cast<size_t>(k * n));
    for (int64_t j = 0; j < n; ++j) {
      for (int64_t p = 0; p < k; ++p) buf[p * n + j] = b[j * k + p];
    }
    bp = buf;
  }
  active_kernel()(m, n, k, alpha, ap, bp, beta, c);
}

void gemv(bool trans_a, int64_t m, int64_t n, float alpha, const float* a,
          const float* x, float beta, float* y) {
  const int64_t out = trans_a ? n : m;
  scale_rows(y, out, beta);
  if (m <= 0 || n <= 0 || alpha == 0.0f) return;
  if (trans_a) {
    // y[j] += sum_i alpha*x[i] * A[i][j], accumulated row by row in float.
    // No zero-skip on x: a NaN/Inf in A must reach y even when x[i] == 0.
    for (int64_t i = 0; i < m; ++i) {
      const float xv = alpha * x[i];
      const float* arow = a + i * n;
      for (int64_t j = 0; j < n; ++j) y[j] += xv * arow[j];
    }
  } else {
    for (int64_t i = 0; i < m; ++i) {
      const float* arow = a + i * n;
      float s = 0.0f;
      for (int64_t j = 0; j < n; ++j) s += arow[j] * x[j];
      y[i] += alpha * s;
    }
  }
}

}  // namespace nb
