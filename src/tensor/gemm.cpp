#include "tensor/gemm.h"

#include <algorithm>
#include <vector>

#include "tensor/threadpool.h"

namespace nb {

namespace {

// Micro-kernel over rows [i0, i1): C[i, :] += alpha * A_row (dot) B over the
// K dimension with B accessed row-wise so the inner loop over N vectorizes.
void gemm_nn_rows(int64_t i0, int64_t i1, int64_t n, int64_t k, float alpha,
                  const float* a, const float* b, float* c) {
  constexpr int64_t kc = 64;
  for (int64_t p0 = 0; p0 < k; p0 += kc) {
    const int64_t p1 = std::min(p0 + kc, k);
    for (int64_t i = i0; i < i1; ++i) {
      const float* arow = a + i * k;
      float* crow = c + i * n;
      for (int64_t p = p0; p < p1; ++p) {
        const float av = alpha * arow[p];
        if (av == 0.0f) continue;
        const float* brow = b + p * n;
        for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  }
}

// Partitions the M dimension over the global thread pool. Each thread owns a
// disjoint block of C rows and runs the identical serial kernel on it, so the
// result is bit-for-bit equal to the serial product for any NB_THREADS.
void gemm_nn(int64_t m, int64_t n, int64_t k, float alpha, const float* a,
             const float* b, float* c) {
  // Only fork when there is enough arithmetic to amortize the wakeup
  // (~64k multiply-adds per chunk) and more than one row to split.
  const int64_t flops = m * n * k;
  if (m < 2 || flops < (int64_t{1} << 17)) {
    gemm_nn_rows(0, m, n, k, alpha, a, b, c);
    return;
  }
  parallel_for(m, /*grain=*/2, [=](int64_t i0, int64_t i1) {
    gemm_nn_rows(i0, i1, n, k, alpha, a, b, c);
  });
}

}  // namespace

void gemm(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
          float alpha, const float* a, const float* b, float beta, float* c) {
  if (beta == 0.0f) {
    std::fill(c, c + m * n, 0.0f);
  } else if (beta != 1.0f) {
    for (int64_t i = 0; i < m * n; ++i) c[i] *= beta;
  }
  if (m == 0 || n == 0 || k == 0 || alpha == 0.0f) return;

  if (!trans_a && !trans_b) {
    gemm_nn(m, n, k, alpha, a, b, c);
    return;
  }

  // General path: materialize op(A)/op(B) into contiguous buffers once, then
  // run the fast NN kernel. The copies are O(MK + KN), cheap next to O(MNK).
  std::vector<float> abuf;
  std::vector<float> bbuf;
  const float* ap = a;
  const float* bp = b;
  if (trans_a) {
    abuf.resize(static_cast<size_t>(m * k));
    for (int64_t p = 0; p < k; ++p) {
      for (int64_t i = 0; i < m; ++i) abuf[static_cast<size_t>(i * k + p)] = a[p * m + i];
    }
    ap = abuf.data();
  }
  if (trans_b) {
    bbuf.resize(static_cast<size_t>(k * n));
    for (int64_t j = 0; j < n; ++j) {
      for (int64_t p = 0; p < k; ++p) bbuf[static_cast<size_t>(p * n + j)] = b[j * k + p];
    }
    bp = bbuf.data();
  }
  gemm_nn(m, n, k, alpha, ap, bp, c);
}

void gemv(bool trans_a, int64_t m, int64_t n, float alpha, const float* a,
          const float* x, float beta, float* y) {
  const int64_t out = trans_a ? n : m;
  if (beta == 0.0f) {
    std::fill(y, y + out, 0.0f);
  } else if (beta != 1.0f) {
    for (int64_t i = 0; i < out; ++i) y[i] *= beta;
  }
  if (trans_a) {
    for (int64_t i = 0; i < m; ++i) {
      const float xv = alpha * x[i];
      if (xv == 0.0f) continue;
      const float* arow = a + i * n;
      for (int64_t j = 0; j < n; ++j) y[j] += xv * arow[j];
    }
  } else {
    for (int64_t i = 0; i < m; ++i) {
      const float* arow = a + i * n;
      double s = 0.0;
      for (int64_t j = 0; j < n; ++j) s += static_cast<double>(arow[j]) * x[j];
      y[i] += alpha * static_cast<float>(s);
    }
  }
}

}  // namespace nb
