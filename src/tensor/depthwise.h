// Direct depthwise convolution of one (H,W) plane — no im2col, no GEMM.
// Shared by Conv2d's depthwise fast path and the FlatModel inference
// runtime. Taps accumulate in ascending (ki, kj) order after the bias, the
// same order for border and interior outputs, so splitting a plane changes
// nothing numerically and results are bitwise identical to the naive loop.
#pragma once

#include <cstdint>

namespace nb {

/// out[oh, ow] = bias + sum_{ki,kj} ker[ki,kj] * img[oy*s+ki-pad, ox*s+kj-pad]
/// with zero padding. `ker` is a k*k row-major kernel. Kernel sizes 3 and 5
/// dispatch to fully unrolled tap loops.
void depthwise_plane(const float* img, const float* ker, float* out,
                     int64_t h, int64_t w, int64_t oh, int64_t ow, int64_t k,
                     int64_t s, int64_t pad, float bias);

/// Integer twin for the int8 inference path: `img` holds offset-u8 levels
/// (level + 128), `ker` int8 weight levels, and every output is the EXACT
/// int32 sum of ker * (img - 128) over the in-bounds taps — out-of-bounds
/// taps are offset level 0 and contribute nothing, matching the float
/// path's zero padding. No bias and no scaling here; the caller fuses the
/// requantize epilogue into its store. Exact integers mean the result is
/// bitwise invariant to plane splitting, tap order, and ISA.
void depthwise_plane_s8(const uint8_t* img, const int8_t* ker, int32_t* out,
                        int64_t h, int64_t w, int64_t oh, int64_t ow,
                        int64_t k, int64_t s, int64_t pad);

}  // namespace nb
