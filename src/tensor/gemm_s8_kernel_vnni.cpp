// AVX512-VNNI int8 GEMM instance (256-bit vpdpbusd), compiled with
// -mavx512vnni -mavx512vl; gemm_s8.cpp only calls it after
// __builtin_cpu_supports confirms both features.
#define NB_GEMM_S8_KERNEL_NAME gemm_s8_packed_vnni
#define NB_S8_MICRO_VNNI 1
#include "tensor/gemm_s8_kernel.inc"
