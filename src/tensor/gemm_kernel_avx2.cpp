// AVX2+FMA instance of the packed SGEMM kernel. This translation unit is
// compiled with -mavx2 -mfma (see src/tensor/CMakeLists.txt) and only added
// to the build on x86-64 with GCC/Clang; gemm.cpp calls it solely after
// __builtin_cpu_supports verifies both features at runtime, so the default
// build stays safe on pre-AVX2 hardware.
#define NB_GEMM_KERNEL_NAME gemm_packed_avx2
#include "tensor/gemm_kernel.inc"
