#include "tensor/threadpool.h"

#include <algorithm>
#include <cstdlib>

#include "tensor/tensor.h"  // NB_CHECK

namespace nb {

namespace {

// Low 32 bits of cursor_ hold the next unclaimed index (ranges are
// NB_CHECK'd to 2^31, far beyond any loop in the library, leaving headroom
// for the final over-claim); the high 32 bits are the job epoch. The
// truncated tag alone could wrap after 2^32 jobs, so run_chunks additionally
// re-reads the full 64-bit epoch right before every claim — breaking the
// guard would need billions of jobs to complete inside that instruction
// window.
constexpr int kOffsetBits = 32;
constexpr uint64_t kOffsetMask = (uint64_t{1} << kOffsetBits) - 1;

// True while this thread is executing a parallel_for body. A nested
// parallel_for must not re-enter the pool (the submitting lock is held and
// workers may all be busy), so it runs serially — same indices, same result.
thread_local bool tls_in_parallel_body = false;

std::atomic<ThreadPool*> g_pool_override{nullptr};

// Nesting depth of SerialScope on this thread; > 0 forces inline loops.
thread_local int tls_serial_depth = 0;

}  // namespace

SerialScope::SerialScope() { ++tls_serial_depth; }
SerialScope::~SerialScope() { --tls_serial_depth; }

bool in_serial_scope() { return tls_serial_depth > 0; }

ThreadPool::ThreadPool(int64_t num_workers) {
  workers_.reserve(static_cast<size_t>(std::max<int64_t>(num_workers, 0)));
  for (int64_t i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& t : workers_) {
    t.join();
  }
}

void ThreadPool::record_error() {
  MutexLock lock(mutex_);
  if (!first_error_) {
    first_error_ = std::current_exception();
  }
}

void ThreadPool::run_chunks(uint64_t epoch,
                            const std::function<void(int64_t, int64_t)>& fn,
                            int64_t total, int64_t chunk) {
  const uint64_t tag = (epoch << kOffsetBits) & ~kOffsetMask;
  uint64_t cur = cursor_.load(std::memory_order_acquire);
  for (;;) {
    // A mismatched tag means a newer job owns the cursor: this snapshot is
    // stale and must not claim anything. The full-width epoch check closes
    // the tag's wrap-around (ABA) hole.
    if ((cur & ~kOffsetMask) != tag) return;
    if (epoch_full_.load(std::memory_order_acquire) != epoch) return;
    const int64_t begin = static_cast<int64_t>(cur & kOffsetMask);
    if (begin >= total) return;
    if (!cursor_.compare_exchange_weak(cur, cur + static_cast<uint64_t>(chunk),
                                       std::memory_order_acq_rel)) {
      continue;  // cur reloaded; re-validate tag and offset
    }
    const int64_t end = std::min(begin + chunk, total);
    tls_in_parallel_body = true;
    try {
      fn(begin, end);
    } catch (...) {
      record_error();
    }
    tls_in_parallel_body = false;
    if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      MutexLock lock(mutex_);
      done_.notify_all();
    }
    cur = cursor_.load(std::memory_order_acquire);
  }
}

void ThreadPool::worker_loop() {
  uint64_t seen = 0;
  for (;;) {
    const std::function<void(int64_t, int64_t)>* fn;
    int64_t total, chunk;
    uint64_t epoch;
    {
      // Explicit wait loop (not the predicate overload): the guarded reads
      // of stop_/epoch_ sit in a scope the analysis can prove holds mutex_,
      // which a predicate lambda's operator() cannot express.
      MutexLock lock(mutex_);
      while (!stop_ && epoch_ == seen) {
        wake_.wait(mutex_);
      }
      if (stop_) return;
      seen = epoch_;
      epoch = epoch_;
      fn = job_fn_;
      total = job_total_;
      chunk = job_chunk_;
    }
    run_chunks(epoch, *fn, total, chunk);
  }
}

void ThreadPool::parallel_for(
    int64_t total, int64_t grain,
    const std::function<void(int64_t, int64_t)>& fn) {
  if (total <= 0) return;
  NB_CHECK(total <= (int64_t{1} << (kOffsetBits - 1)),
           "parallel_for range too large");
  grain = std::max<int64_t>(grain, 1);
  const int64_t parts = num_workers() + 1;  // +1: calling thread
  // Hand out ~2 chunks per thread: enough slack for FIFO load balancing,
  // few enough that the atomic handout stays invisible in profiles.
  const int64_t chunk =
      std::max(grain, (total + 2 * parts - 1) / (2 * parts));
  const int64_t nchunks = (total + chunk - 1) / chunk;
  if (parts == 1 || nchunks <= 1 || tls_in_parallel_body) {
    fn(0, total);
    return;
  }

  MutexLock submit(submit_mutex_);
  uint64_t epoch;
  {
    MutexLock lock(mutex_);
    first_error_ = nullptr;
    job_fn_ = &fn;
    job_total_ = total;
    job_chunk_ = chunk;
    epoch = ++epoch_;
    epoch_full_.store(epoch, std::memory_order_release);
    pending_.store(nchunks, std::memory_order_relaxed);
    cursor_.store((epoch << kOffsetBits) & ~kOffsetMask,
                  std::memory_order_release);
  }
  wake_.notify_all();

  run_chunks(epoch, fn, total, chunk);

  std::exception_ptr err;
  {
    MutexLock lock(mutex_);
    while (pending_.load(std::memory_order_acquire) != 0) {
      done_.wait(mutex_);
    }
    err = first_error_;
    first_error_ = nullptr;
  }
  if (err) {
    std::rethrow_exception(err);
  }
}

namespace {

int64_t pool_size_from_env() {
  const char* env = std::getenv("NB_THREADS");
  int64_t threads = 0;
  if (env != nullptr) {
    threads = std::strtoll(env, nullptr, 10);
  }
  if (threads <= 0) {
    threads = static_cast<int64_t>(std::thread::hardware_concurrency());
    threads = std::clamp<int64_t>(threads, 1, 8);
  }
  return threads - 1;  // workers; the calling thread is the +1
}

}  // namespace

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(pool_size_from_env());
  return pool;
}

void ThreadPool::set_global_override(ThreadPool* pool) {
  g_pool_override.store(pool, std::memory_order_release);
}

ThreadPool& ThreadPool::effective() {
  ThreadPool* override_pool = g_pool_override.load(std::memory_order_acquire);
  return override_pool != nullptr ? *override_pool : global();
}

void parallel_for(int64_t total, int64_t grain,
                  const std::function<void(int64_t, int64_t)>& fn) {
  if (in_serial_scope()) {
    if (total > 0) {
      fn(0, total);
    }
    return;
  }
  ThreadPool& pool = ThreadPool::effective();
  if (total < grain || pool.num_workers() == 0) {
    if (total > 0) {
      fn(0, total);
    }
    return;
  }
  pool.parallel_for(total, grain, fn);
}

}  // namespace nb
