#include "tensor/threadpool.h"

#include <algorithm>
#include <cstdlib>

namespace nb {

ThreadPool::ThreadPool(int64_t num_workers) {
  workers_.reserve(static_cast<size_t>(std::max<int64_t>(num_workers, 0)));
  for (int64_t i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& t : workers_) {
    t.join();
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) {
        return;
      }
      task = queue_.back();
      queue_.pop_back();
    }
    try {
      (*task.fn)(task.begin, task.end);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!first_error_) {
        first_error_ = std::current_exception();
      }
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--outstanding_ == 0) {
        done_.notify_all();
      }
    }
  }
}

void ThreadPool::parallel_for(
    int64_t total, const std::function<void(int64_t, int64_t)>& fn) {
  if (total <= 0) {
    return;
  }
  const int64_t parts =
      std::min<int64_t>(total, num_workers() + 1);  // +1: calling thread
  if (parts <= 1) {
    fn(0, total);
    return;
  }
  const int64_t chunk = (total + parts - 1) / parts;
  // Chunks [chunk, 2*chunk), ... go to workers; the caller runs [0, chunk)
  // itself so a 1-worker pool still overlaps compute with the main thread.
  {
    std::lock_guard<std::mutex> lock(mutex_);
    first_error_ = nullptr;
    for (int64_t begin = chunk; begin < total; begin += chunk) {
      queue_.push_back(Task{&fn, begin, std::min(begin + chunk, total)});
      ++outstanding_;
    }
  }
  wake_.notify_all();
  try {
    fn(0, std::min(chunk, total));
  } catch (...) {
    std::unique_lock<std::mutex> lock(mutex_);
    done_.wait(lock, [this] { return outstanding_ == 0; });
    throw;
  }
  std::unique_lock<std::mutex> lock(mutex_);
  done_.wait(lock, [this] { return outstanding_ == 0; });
  if (first_error_) {
    std::exception_ptr err = first_error_;
    first_error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(err);
  }
}

namespace {

int64_t pool_size_from_env() {
  const char* env = std::getenv("NB_THREADS");
  int64_t threads = 0;
  if (env != nullptr) {
    threads = std::strtoll(env, nullptr, 10);
  }
  if (threads <= 0) {
    threads = static_cast<int64_t>(std::thread::hardware_concurrency());
    threads = std::clamp<int64_t>(threads, 1, 8);
  }
  return threads - 1;  // workers; the calling thread is the +1
}

}  // namespace

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(pool_size_from_env());
  return pool;
}

void parallel_for(int64_t total, int64_t grain,
                  const std::function<void(int64_t, int64_t)>& fn) {
  ThreadPool& pool = ThreadPool::global();
  if (total < grain || pool.num_workers() == 0) {
    if (total > 0) {
      fn(0, total);
    }
    return;
  }
  pool.parallel_for(total, fn);
}

}  // namespace nb
