#include "tensor/scratch.h"

#include <vector>

namespace nb {

namespace {

struct Arena {
  std::vector<float> slots[static_cast<int>(ScratchSlot::kSlotCount)];
};

Arena& tls_arena() {
  thread_local Arena arena;
  return arena;
}

}  // namespace

float* scratch_acquire(ScratchSlot slot, size_t count) {
  std::vector<float>& buf = tls_arena().slots[static_cast<int>(slot)];
  if (buf.size() < count) {
    // Geometric growth so a sequence of slightly-larger requests (e.g. layer
    // shapes sweeping upward) settles after a few reallocations.
    size_t cap = buf.size() == 0 ? size_t{256} : buf.size();
    while (cap < count) cap *= 2;
    buf.resize(cap);
  }
  return buf.data();
}

size_t scratch_reserved() {
  size_t total = 0;
  for (const std::vector<float>& buf : tls_arena().slots) total += buf.size();
  return total;
}

void scratch_release() {
  for (std::vector<float>& buf : tls_arena().slots) {
    buf.clear();
    buf.shrink_to_fit();
  }
}

}  // namespace nb
