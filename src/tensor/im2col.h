// im2col / col2im lowering used by Conv2d. A convolution over an NCHW input
// becomes a GEMM between the weight matrix [cout, cin*kh*kw] and the column
// matrix [cin*kh*kw, oh*ow] built here.
#pragma once

#include <cstdint>

namespace nb {

/// Expands one image (C,H,W) into columns [C*kh*kw, oh*ow] with zero padding.
void im2col(const float* img, int64_t channels, int64_t height, int64_t width,
            int64_t kh, int64_t kw, int64_t stride_h, int64_t stride_w,
            int64_t pad_h, int64_t pad_w, float* cols);

/// Expands a batch of images into ONE column panel [C*kh*kw, batch*oh*ow]:
/// image i's columns occupy the contiguous column range
/// [i*oh*ow, (i+1)*oh*ow), so a single GEMM against a weight panel lowers
/// the convolution for the whole batch at once. The input addressing is
/// fully strided — channel c of image i starts at
/// `imgs + c*chan_stride + i*img_stride` — which covers both plain NCHW
/// (img_stride = C*H*W, chan_stride = H*W) and the batch-interleaved
/// [C, batch*H*W] layout the batched inference runtime keeps activations
/// in (img_stride = H*W, chan_stride = batch*H*W), including a grouped
/// convolution's channel slice of either. Parallelizes over images; writes
/// are disjoint, so the panel is bitwise identical for any worker count and
/// each image's columns equal a per-image im2col exactly.
void im2col_batched(const float* imgs, int64_t batch, int64_t img_stride,
                    int64_t chan_stride, int64_t channels, int64_t height,
                    int64_t width, int64_t kh, int64_t kw, int64_t stride_h,
                    int64_t stride_w, int64_t pad_h, int64_t pad_w,
                    float* cols);

/// im2col_batched over offset-u8 activation levels for the int8 inference
/// path: same strided addressing and column layout, but elements are bytes
/// storing level+128 and PADDING WRITES 128 (offset level 0), so a
/// gemm_s8 over the panel sees exactly zero contribution from out-of-bounds
/// taps — the same semantics as the float panel's 0.0f padding.
void im2col_s8_batched(const uint8_t* imgs, int64_t batch, int64_t img_stride,
                       int64_t chan_stride, int64_t channels, int64_t height,
                       int64_t width, int64_t kh, int64_t kw,
                       int64_t stride_h, int64_t stride_w, int64_t pad_h,
                       int64_t pad_w, uint8_t* cols);

/// Scatters columns back into an image (accumulating), the adjoint of im2col.
void col2im(const float* cols, int64_t channels, int64_t height, int64_t width,
            int64_t kh, int64_t kw, int64_t stride_h, int64_t stride_w,
            int64_t pad_h, int64_t pad_w, float* img);

/// Output spatial size of a convolution along one axis.
inline int64_t conv_out_size(int64_t in, int64_t kernel, int64_t stride,
                             int64_t pad) {
  return (in + 2 * pad - kernel) / stride + 1;
}

}  // namespace nb
