#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "tensor/threadpool.h"

namespace nb {

namespace {
int64_t shape_numel(const std::vector<int64_t>& shape) {
  int64_t n = 1;
  for (int64_t d : shape) {
    NB_CHECK(d >= 0, "negative dimension in shape");
    n *= d;
  }
  return n;
}
}  // namespace

Tensor::Tensor(std::vector<int64_t> shape)
    : shape_(std::move(shape)),
      numel_(shape_numel(shape_)),
      data_(std::make_shared<std::vector<float>>(numel_, 0.0f)) {}

Tensor::Tensor(std::initializer_list<int64_t> shape)
    : Tensor(std::vector<int64_t>(shape)) {}

Tensor Tensor::from(std::vector<int64_t> shape, std::vector<float> values) {
  Tensor t;
  t.shape_ = std::move(shape);
  t.numel_ = shape_numel(t.shape_);
  NB_CHECK(static_cast<int64_t>(values.size()) == t.numel_,
           "value count does not match shape");
  t.data_ = std::make_shared<std::vector<float>>(std::move(values));
  return t;
}

Tensor Tensor::zeros(std::vector<int64_t> shape) { return Tensor(std::move(shape)); }

Tensor Tensor::ones(std::vector<int64_t> shape) { return full(std::move(shape), 1.0f); }

Tensor Tensor::full(std::vector<int64_t> shape, float value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

Tensor Tensor::arange(int64_t n) {
  Tensor t({n});
  for (int64_t i = 0; i < n; ++i) t.at(i) = static_cast<float>(i);
  return t;
}

int64_t Tensor::size(int64_t d) const {
  if (d < 0) d += dim();
  NB_CHECK(d >= 0 && d < dim(), "dimension index out of range");
  return shape_[static_cast<size_t>(d)];
}

float* Tensor::data() {
  NB_CHECK(defined(), "accessing undefined tensor");
  return data_->data();
}

const float* Tensor::data() const {
  NB_CHECK(defined(), "accessing undefined tensor");
  return data_->data();
}

float& Tensor::at(int64_t i) { return (*data_)[static_cast<size_t>(i)]; }

float& Tensor::at(int64_t i, int64_t j) {
  return (*data_)[static_cast<size_t>(i * shape_[1] + j)];
}

float& Tensor::at(int64_t i, int64_t j, int64_t k) {
  return (*data_)[static_cast<size_t>((i * shape_[1] + j) * shape_[2] + k)];
}

float& Tensor::at(int64_t n, int64_t c, int64_t h, int64_t w) {
  return (*data_)[static_cast<size_t>(offset_of(n, c, h, w))];
}

float Tensor::at(int64_t i) const { return (*data_)[static_cast<size_t>(i)]; }

float Tensor::at(int64_t i, int64_t j) const {
  return (*data_)[static_cast<size_t>(i * shape_[1] + j)];
}

float Tensor::at(int64_t i, int64_t j, int64_t k) const {
  return (*data_)[static_cast<size_t>((i * shape_[1] + j) * shape_[2] + k)];
}

float Tensor::at(int64_t n, int64_t c, int64_t h, int64_t w) const {
  return (*data_)[static_cast<size_t>(offset_of(n, c, h, w))];
}

int64_t Tensor::offset_of(int64_t n, int64_t c, int64_t h, int64_t w) const {
  return ((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w;
}

Tensor Tensor::clone() const {
  if (!defined()) return Tensor();
  Tensor t;
  t.shape_ = shape_;
  t.numel_ = numel_;
  t.data_ = std::make_shared<std::vector<float>>(*data_);
  return t;
}

Tensor Tensor::reshape(std::vector<int64_t> new_shape) const {
  NB_CHECK(shape_numel(new_shape) == numel_, "reshape changes element count");
  Tensor t;
  t.shape_ = std::move(new_shape);
  t.numel_ = numel_;
  t.data_ = data_;
  return t;
}

Tensor Tensor::narrow0(int64_t begin, int64_t end) const {
  NB_CHECK(dim() >= 1, "narrow0 requires at least one dimension");
  NB_CHECK(0 <= begin && begin <= end && end <= shape_[0], "narrow0 bounds");
  std::vector<int64_t> out_shape = shape_;
  out_shape[0] = end - begin;
  const int64_t row = numel_ / std::max<int64_t>(shape_[0], 1);
  Tensor t(out_shape);
  std::copy(data() + begin * row, data() + end * row, t.data());
  return t;
}

void Tensor::fill(float value) {
  std::fill(data_->begin(), data_->end(), value);
}

void Tensor::add_(const Tensor& other) { add_scaled_(other, 1.0f); }

void Tensor::add_scaled_(const Tensor& other, float alpha) {
  NB_CHECK(numel_ == other.numel_, "add_scaled_ numel mismatch");
  float* a = data();
  const float* b = other.data();
  // Disjoint index chunks, so the fork is NB_THREADS-invariant; the grain
  // keeps small tensors (optimizer steps on biases etc.) serial.
  parallel_for(numel_, /*grain=*/int64_t{1} << 16, [=](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) a[i] += alpha * b[i];
  });
}

void Tensor::mul_(float scalar) {
  float* a = data();
  parallel_for(numel_, /*grain=*/int64_t{1} << 16, [=](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) a[i] *= scalar;
  });
}

void Tensor::copy_from(const Tensor& src) {
  NB_CHECK(numel_ == src.numel_, "copy_from numel mismatch");
  std::copy(src.data(), src.data() + numel_, data());
}

Tensor Tensor::add(const Tensor& other) const {
  Tensor out = clone();
  out.add_(other);
  return out;
}

Tensor Tensor::sub(const Tensor& other) const {
  Tensor out = clone();
  out.add_scaled_(other, -1.0f);
  return out;
}

Tensor Tensor::mul(const Tensor& other) const {
  NB_CHECK(numel_ == other.numel_, "mul numel mismatch");
  Tensor out = clone();
  float* a = out.data();
  const float* b = other.data();
  for (int64_t i = 0; i < numel_; ++i) a[i] *= b[i];
  return out;
}

Tensor Tensor::scale(float scalar) const {
  Tensor out = clone();
  out.mul_(scalar);
  return out;
}

float Tensor::sum() const {
  const float* a = data();
  double s = 0.0;
  for (int64_t i = 0; i < numel_; ++i) s += a[i];
  return static_cast<float>(s);
}

float Tensor::mean() const {
  NB_CHECK(numel_ > 0, "mean of empty tensor");
  return sum() / static_cast<float>(numel_);
}

float Tensor::min_value() const {
  NB_CHECK(numel_ > 0, "min of empty tensor");
  return *std::min_element(data_->begin(), data_->end());
}

float Tensor::max_value() const {
  NB_CHECK(numel_ > 0, "max of empty tensor");
  return *std::max_element(data_->begin(), data_->end());
}

float Tensor::abs_max() const {
  const float* a = data();
  float m = 0.0f;
  for (int64_t i = 0; i < numel_; ++i) m = std::max(m, std::fabs(a[i]));
  return m;
}

float Tensor::norm() const {
  const float* a = data();
  double s = 0.0;
  for (int64_t i = 0; i < numel_; ++i) s += static_cast<double>(a[i]) * a[i];
  return static_cast<float>(std::sqrt(s));
}

std::string Tensor::shape_str() const {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < shape_.size(); ++i) {
    if (i != 0) os << ", ";
    os << shape_[i];
  }
  os << "]";
  return os.str();
}

float max_abs_diff(const Tensor& a, const Tensor& b) {
  NB_CHECK(a.numel() == b.numel(), "max_abs_diff numel mismatch");
  const float* pa = a.data();
  const float* pb = b.data();
  float m = 0.0f;
  for (int64_t i = 0; i < a.numel(); ++i) {
    m = std::max(m, std::fabs(pa[i] - pb[i]));
  }
  return m;
}

}  // namespace nb
