// Dense float32 tensor with shared-buffer semantics (cheap copies, explicit
// clone()). The whole NetBooster substrate is CPU-only and stores activations
// and weights in NCHW / row-major layout.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace nb {

/// Throws std::runtime_error with a file:line prefix when `cond` is false.
#define NB_CHECK(cond, msg)                                                  \
  do {                                                                       \
    if (!(cond)) {                                                           \
      throw std::runtime_error(std::string(__FILE__) + ":" +                 \
                               std::to_string(__LINE__) + ": " + (msg));     \
    }                                                                        \
  } while (false)

/// A dense, contiguous, row-major float32 tensor.
///
/// Copying a Tensor shares the underlying buffer (like torch::Tensor); use
/// clone() for an independent deep copy. All shape arithmetic uses signed
/// 64-bit indices per the Core Guidelines (ES.107).
class Tensor {
 public:
  Tensor() = default;

  /// Allocates a zero-filled tensor of the given shape.
  explicit Tensor(std::vector<int64_t> shape);
  Tensor(std::initializer_list<int64_t> shape);

  /// Builds a tensor from explicit values; `values.size()` must match shape.
  static Tensor from(std::vector<int64_t> shape, std::vector<float> values);
  static Tensor zeros(std::vector<int64_t> shape);
  static Tensor ones(std::vector<int64_t> shape);
  static Tensor full(std::vector<int64_t> shape, float value);
  /// 1-D tensor [0, 1, ..., n-1].
  static Tensor arange(int64_t n);

  bool defined() const { return data_ != nullptr; }
  int64_t dim() const { return static_cast<int64_t>(shape_.size()); }
  const std::vector<int64_t>& shape() const { return shape_; }
  int64_t size(int64_t d) const;
  int64_t numel() const { return numel_; }

  float* data();
  const float* data() const;

  // -- element access (bounds are the caller's responsibility in release) --
  float& at(int64_t i);
  float& at(int64_t i, int64_t j);
  float& at(int64_t i, int64_t j, int64_t k);
  float& at(int64_t n, int64_t c, int64_t h, int64_t w);
  float at(int64_t i) const;
  float at(int64_t i, int64_t j) const;
  float at(int64_t i, int64_t j, int64_t k) const;
  float at(int64_t n, int64_t c, int64_t h, int64_t w) const;

  /// Deep copy with its own buffer.
  Tensor clone() const;
  /// Shares the buffer under a new shape with the same numel.
  Tensor reshape(std::vector<int64_t> new_shape) const;
  /// Copies rows [begin, end) of the leading dimension.
  Tensor narrow0(int64_t begin, int64_t end) const;

  // -- in-place mutators --
  void fill(float value);
  void zero() { fill(0.0f); }
  /// this += other (same numel; shapes may differ, e.g. across reshapes).
  void add_(const Tensor& other);
  /// this += alpha * other (same numel; shapes may differ).
  void add_scaled_(const Tensor& other, float alpha);
  void mul_(float scalar);
  /// Copies values from `src` (same numel, shape may differ).
  void copy_from(const Tensor& src);

  // -- value-returning arithmetic --
  Tensor add(const Tensor& other) const;
  Tensor sub(const Tensor& other) const;
  Tensor mul(const Tensor& other) const;
  Tensor scale(float scalar) const;

  // -- reductions --
  float sum() const;
  float mean() const;
  float min_value() const;
  float max_value() const;
  float abs_max() const;
  /// L2 norm of all elements.
  float norm() const;

  /// Human-readable shape like "[2, 3, 8, 8]".
  std::string shape_str() const;

  /// True when shapes match elementwise.
  bool same_shape(const Tensor& other) const { return shape_ == other.shape_; }

 private:
  int64_t offset_of(int64_t n, int64_t c, int64_t h, int64_t w) const;

  std::vector<int64_t> shape_;
  int64_t numel_ = 0;
  std::shared_ptr<std::vector<float>> data_;
};

/// Checks two tensors agree within `atol` absolutely; returns max |a-b|.
float max_abs_diff(const Tensor& a, const Tensor& b);

}  // namespace nb
