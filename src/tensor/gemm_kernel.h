// Internal declarations for the packed SGEMM kernel instances. Both symbols
// are compiled from the same source (gemm_kernel.inc) so they compute
// bit-identical results up to the ISA's FMA contraction; gemm.cpp picks one
// at runtime. Not part of the public surface — include "tensor/gemm.h".
#pragma once

#include <cstdint>

namespace nb::detail {

/// Baseline-ISA instance, always available.
void gemm_packed_generic(int64_t m, int64_t n, int64_t k, float alpha,
                         const float* a, const float* b, float beta, float* c);

#if defined(NB_GEMM_AVX2)
/// AVX2+FMA instance (gemm_kernel_avx2.cpp, built with -mavx2 -mfma on
/// x86-64). Only called after __builtin_cpu_supports confirms both features.
void gemm_packed_avx2(int64_t m, int64_t n, int64_t k, float alpha,
                      const float* a, const float* b, float beta, float* c);
#endif

}  // namespace nb::detail
