#include "nn/batchnorm.h"

#include <cmath>

namespace nb::nn {

BatchNorm2d::BatchNorm2d(int64_t channels, float eps, float momentum)
    : channels_(channels),
      eps_(eps),
      momentum_(momentum),
      gamma_(Tensor::ones({channels}), /*decay_flag=*/false),
      beta_(Tensor::zeros({channels}), /*decay_flag=*/false),
      running_mean_(Tensor::zeros({channels})),
      running_var_(Tensor::ones({channels})) {
  NB_CHECK(channels > 0, "BatchNorm2d channels");
}

std::vector<std::pair<std::string, Parameter*>> BatchNorm2d::local_params() {
  return {{"gamma", &gamma_}, {"beta", &beta_}};
}

std::vector<std::pair<std::string, Tensor*>> BatchNorm2d::local_buffers() {
  return {{"running_mean", &running_mean_}, {"running_var", &running_var_}};
}

Tensor BatchNorm2d::forward(const Tensor& x) {
  NB_CHECK(x.dim() == 4 && x.size(1) == channels_,
           "BatchNorm2d expects NCHW with matching channels");
  const int64_t n = x.size(0), h = x.size(2), w = x.size(3);
  const int64_t plane = h * w;
  const int64_t count = n * plane;
  Tensor y(x.shape());
  forward_was_training_ = training();

  if (training()) {
    xhat_ = Tensor(x.shape());
    inv_std_ = Tensor({channels_});
    count_ = count;
    for (int64_t c = 0; c < channels_; ++c) {
      double sum = 0.0, sq = 0.0;
      for (int64_t i = 0; i < n; ++i) {
        const float* p = x.data() + (i * channels_ + c) * plane;
        for (int64_t j = 0; j < plane; ++j) {
          sum += p[j];
          sq += static_cast<double>(p[j]) * p[j];
        }
      }
      const float mean = static_cast<float>(sum / count);
      const float var = static_cast<float>(sq / count - static_cast<double>(mean) * mean);
      const float istd = 1.0f / std::sqrt(std::max(var, 0.0f) + eps_);
      inv_std_.at(c) = istd;
      const float g = gamma_.value.at(c), b = beta_.value.at(c);
      for (int64_t i = 0; i < n; ++i) {
        const float* p = x.data() + (i * channels_ + c) * plane;
        float* xh = xhat_.data() + (i * channels_ + c) * plane;
        float* o = y.data() + (i * channels_ + c) * plane;
        for (int64_t j = 0; j < plane; ++j) {
          xh[j] = (p[j] - mean) * istd;
          o[j] = g * xh[j] + b;
        }
      }
      // unbiased variance for running stats, matching torch semantics
      const float unbiased =
          count > 1 ? var * static_cast<float>(count) / (count - 1) : var;
      running_mean_.at(c) =
          (1.0f - momentum_) * running_mean_.at(c) + momentum_ * mean;
      running_var_.at(c) =
          (1.0f - momentum_) * running_var_.at(c) + momentum_ * unbiased;
    }
  } else {
    for (int64_t c = 0; c < channels_; ++c) {
      const float istd = 1.0f / std::sqrt(running_var_.at(c) + eps_);
      const float g = gamma_.value.at(c) * istd;
      const float b = beta_.value.at(c) - running_mean_.at(c) * g;
      for (int64_t i = 0; i < n; ++i) {
        const float* p = x.data() + (i * channels_ + c) * plane;
        float* o = y.data() + (i * channels_ + c) * plane;
        for (int64_t j = 0; j < plane; ++j) o[j] = g * p[j] + b;
      }
    }
  }
  return y;
}

Tensor BatchNorm2d::backward(const Tensor& grad_out) {
  NB_CHECK(forward_was_training_,
           "BatchNorm2d::backward requires a training-mode forward");
  NB_CHECK(xhat_.defined(), "BatchNorm2d::backward before forward");
  const int64_t n = grad_out.size(0), h = grad_out.size(2), w = grad_out.size(3);
  const int64_t plane = h * w;
  Tensor grad_in(grad_out.shape());
  const float inv_count = 1.0f / static_cast<float>(count_);

  for (int64_t c = 0; c < channels_; ++c) {
    double sum_g = 0.0, sum_gx = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      const float* g = grad_out.data() + (i * channels_ + c) * plane;
      const float* xh = xhat_.data() + (i * channels_ + c) * plane;
      for (int64_t j = 0; j < plane; ++j) {
        sum_g += g[j];
        sum_gx += static_cast<double>(g[j]) * xh[j];
      }
    }
    gamma_.grad.at(c) += static_cast<float>(sum_gx);
    beta_.grad.at(c) += static_cast<float>(sum_g);

    const float gmma = gamma_.value.at(c);
    const float istd = inv_std_.at(c);
    const float mean_g = static_cast<float>(sum_g) * inv_count;
    const float mean_gx = static_cast<float>(sum_gx) * inv_count;
    for (int64_t i = 0; i < n; ++i) {
      const float* g = grad_out.data() + (i * channels_ + c) * plane;
      const float* xh = xhat_.data() + (i * channels_ + c) * plane;
      float* gi = grad_in.data() + (i * channels_ + c) * plane;
      for (int64_t j = 0; j < plane; ++j) {
        gi[j] = gmma * istd * (g[j] - mean_g - xh[j] * mean_gx);
      }
    }
  }
  return grad_in;
}

BnAffine bn_to_affine(BatchNorm2d& bn) {
  BnAffine a;
  const int64_t c = bn.channels();
  a.scale.resize(static_cast<size_t>(c));
  a.shift.resize(static_cast<size_t>(c));
  for (int64_t i = 0; i < c; ++i) {
    const float istd = 1.0f / std::sqrt(bn.running_var().at(i) + bn.eps());
    const float s = bn.gamma().value.at(i) * istd;
    a.scale[static_cast<size_t>(i)] = s;
    a.shift[static_cast<size_t>(i)] =
        bn.beta().value.at(i) - bn.running_mean().at(i) * s;
  }
  return a;
}

}  // namespace nb::nn
