// Weight initialization matching the conventions of the paper's code base
// family (torchvision MobileNetV2): Kaiming-normal fan-out for convolutions,
// N(0, 0.01) for linear layers, BN gamma=1 / beta=0.
#pragma once

#include "nn/module.h"
#include "tensor/rng.h"

namespace nb::nn {

/// Initializes every Conv2d / Linear / BatchNorm2d in the subtree.
void init_parameters(Module& root, Rng& rng);

/// Kaiming-normal with fan-out mode for a conv weight [cout, cin/g, k, k].
void kaiming_normal_fan_out(Tensor& weight, Rng& rng);

}  // namespace nb::nn
