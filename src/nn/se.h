// Squeeze-and-Excitation channel attention (Hu et al., 2018): global average
// pool -> bottleneck FC -> ReLU -> FC -> sigmoid -> channel-wise rescale.
// MCUNet-family architectures commonly attach SE to their MBConv blocks; the
// "mcunet-se" model variant uses this layer. SE sits outside the expanded
// pointwise convolutions, so NetBooster's expansion/contraction algebra is
// untouched by it (the inserted blocks themselves stay SE-free).
#pragma once

#include "nn/linear.h"
#include "nn/module.h"

namespace nb::nn {

class SqueezeExcite : public Module {
 public:
  /// `reduction` divides the channel count for the bottleneck (>= 1).
  explicit SqueezeExcite(int64_t channels, int64_t reduction = 4);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string type_name() const override { return "SqueezeExcite"; }
  std::vector<std::pair<std::string, Module*>> named_children() override;

  int64_t channels() const { return channels_; }
  int64_t hidden() const { return hidden_; }
  Linear& fc1() { return *fc1_; }
  Linear& fc2() { return *fc2_; }

 private:
  int64_t channels_;
  int64_t hidden_;
  std::shared_ptr<Linear> fc1_;
  std::shared_ptr<Linear> fc2_;

  // forward caches for backward
  Tensor input_;      // [N, C, H, W]
  Tensor pooled_;     // [N, C]
  Tensor hidden_pre_; // [N, hidden] before ReLU
  Tensor gates_;      // [N, C] sigmoid outputs
};

}  // namespace nb::nn
