// Composite building blocks: the Conv+BN+Act unit used throughout the model
// zoo, and the MobileNetV2 inverted residual block — the host structure that
// NetBooster's Network Expansion operates on.
#pragma once

#include <memory>

#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/module.h"

namespace nb::nn {

/// conv -> [bn] -> [act]. The conv slot holds a Module (not a Conv2d) so that
/// NetBooster can swap a pointwise convolution for its expanded multi-layer
/// block and later swap the contracted single layer back in.
class ConvBnAct : public Module {
 public:
  /// Standard unit: Conv2d from options, BN over out_channels, activation.
  ConvBnAct(const Conv2dOptions& opts, ActKind act);
  /// Unit with a caller-supplied activation module (PLT activations inside
  /// NetBooster's inserted blocks); pass nullptr for a linear unit.
  ConvBnAct(const Conv2dOptions& opts, ModulePtr act_module);
  /// Unit without BN (detection head output layers).
  static std::shared_ptr<ConvBnAct> conv_only(const Conv2dOptions& opts,
                                              ActKind act);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string type_name() const override { return "ConvBnAct"; }
  std::vector<std::pair<std::string, Module*>> named_children() override;

  /// The conv slot (a Conv2d unless expansion replaced it).
  ModulePtr& conv_slot() { return conv_; }
  /// Swaps the conv slot; returns the previous occupant.
  ModulePtr swap_conv(ModulePtr m);
  /// Typed access when the slot holds a plain Conv2d (nullptr otherwise).
  Conv2d* conv2d();
  BatchNorm2d* bn() { return bn_.get(); }
  Module* act() { return act_.get(); }
  bool has_bn() const { return bn_ != nullptr; }
  /// Detaches and returns the BN (deployment folds it into the conv slot;
  /// see quant::fold_batchnorms). The unit becomes conv -> act.
  std::shared_ptr<BatchNorm2d> remove_bn();

 private:
  ConvBnAct() = default;

  ModulePtr conv_;
  std::shared_ptr<BatchNorm2d> bn_;
  ModulePtr act_;
};

/// MobileNetV2 inverted residual block:
///   [pw expand (t*cin) + BN + act] -> dw kxk/s + BN + act -> [SE]
///   -> pw project + BN
/// with an identity residual iff stride == 1 and cin == cout. When
/// expand_ratio == 1 the pw-expand stage is omitted (first MNV2 stage).
/// `use_se` attaches Squeeze-Excitation after the depthwise stage (the
/// MCUNet-SE variant); SE sits outside the pw-expand conv that NetBooster
/// replaces, so the expansion/contraction algebra is unaffected.
class InvertedResidual : public Module {
 public:
  InvertedResidual(int64_t cin, int64_t cout, int64_t stride,
                   int64_t expand_ratio, int64_t kernel = 3,
                   ActKind act = ActKind::relu6, bool use_se = false,
                   int64_t se_reduction = 4);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string type_name() const override { return "InvertedResidual"; }
  std::vector<std::pair<std::string, Module*>> named_children() override;

  bool has_expand() const { return expand_ != nullptr; }
  ConvBnAct& expand_unit();
  ConvBnAct& dw_unit() { return *dw_; }
  ConvBnAct& project_unit() { return *project_; }
  bool has_se() const { return se_ != nullptr; }
  Module* se() { return se_.get(); }
  bool use_residual() const { return use_residual_; }
  int64_t cin() const { return cin_; }
  int64_t cout() const { return cout_; }
  int64_t stride() const { return stride_; }
  int64_t expand_ratio() const { return expand_ratio_; }
  int64_t kernel() const { return kernel_; }

 private:
  int64_t cin_, cout_, stride_, expand_ratio_, kernel_;
  bool use_residual_;
  std::shared_ptr<ConvBnAct> expand_;
  std::shared_ptr<ConvBnAct> dw_;
  ModulePtr se_;  // optional Squeeze-Excitation (MCUNet-SE variant)
  std::shared_ptr<ConvBnAct> project_;
};

/// Elementwise residual wrapper: y = body(x) + x. Used by the inserted
/// Basic/Bottleneck ablation blocks (with an optional linear projection
/// shortcut when channel counts differ).
class Residual : public Module {
 public:
  explicit Residual(ModulePtr body, ModulePtr shortcut = nullptr);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string type_name() const override { return "Residual"; }
  std::vector<std::pair<std::string, Module*>> named_children() override;

  Module& body() { return *body_; }
  Module* shortcut() { return shortcut_.get(); }

 private:
  ModulePtr body_;
  ModulePtr shortcut_;  // nullptr means identity
};

}  // namespace nb::nn
