// Activation layers. PltActivation implements the paper's Eq. 2:
//   y = max(alpha * x, x),   alpha in [0, 1],
// which is exactly ReLU at alpha = 0 and the identity at alpha = 1; the PLT
// scheduler ramps alpha during Progressive Linearization Tuning. The ReLU6
// variant also linearizes the upper clamp (y = 6 + alpha*(x-6) for x > 6) so
// that alpha = 1 is the identity there too, as the paper's "extended to other
// activation functions like ReLU6" remark requires.
#pragma once

#include "nn/module.h"

namespace nb::nn {

enum class ActKind { relu, relu6, identity };

const char* to_string(ActKind kind);

/// Plain (non-decaying) activation.
class Activation : public Module {
 public:
  explicit Activation(ActKind kind) : kind_(kind) {}

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string type_name() const override { return "Activation"; }

  ActKind kind() const { return kind_; }

 private:
  ActKind kind_;
  Tensor input_;
};

/// Activation with a tunable linearization slope (paper Eq. 2).
class PltActivation : public Module {
 public:
  explicit PltActivation(ActKind kind, float alpha = 0.0f);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string type_name() const override { return "PltActivation"; }

  /// Exposes alpha as a buffer so checkpoints round-trip mid-PLT state.
  std::vector<std::pair<std::string, Tensor*>> local_buffers() override;

  float alpha() const { return alpha_.at(0); }
  void set_alpha(float a);
  ActKind kind() const { return kind_; }
  /// True once alpha == 1 (the layer is an exact identity).
  bool is_linearized() const { return alpha() >= 1.0f; }

 private:
  ActKind kind_;
  Tensor alpha_;  // scalar stored as a [1] buffer
  Tensor input_;
};

}  // namespace nb::nn
