// Loss functions. Each returns the scalar loss together with the analytic
// gradient with respect to the logits/predictions, so the trainer can seed
// backward() without a taped graph. All losses are mean-reduced over the
// batch.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace nb::nn {

struct LossResult {
  float loss = 0.0f;
  Tensor grad;  // dLoss/dLogits, same shape as the logits
};

/// Cross entropy with integer labels and optional label smoothing.
LossResult softmax_cross_entropy(const Tensor& logits,
                                 const std::vector<int64_t>& labels,
                                 float label_smoothing = 0.0f);

/// Cross entropy against a full target distribution (rows sum to 1).
LossResult soft_cross_entropy(const Tensor& logits, const Tensor& target_probs);

/// Hinton knowledge distillation term: T^2 * KL(p_teacher^T || p_student^T),
/// gradient taken with respect to the student logits only.
LossResult kd_kl(const Tensor& student_logits, const Tensor& teacher_logits,
                 float temperature);

/// Mean squared error over all elements.
LossResult mse(const Tensor& pred, const Tensor& target);

/// Binary cross entropy on sigmoid(logits) against 0/1 targets, with an
/// optional per-element weight mask. Used by the detection objectness loss.
LossResult sigmoid_bce(const Tensor& logits, const Tensor& targets,
                       const Tensor* weights = nullptr);

/// Top-1 accuracy in [0, 1].
float accuracy(const Tensor& logits, const std::vector<int64_t>& labels);

}  // namespace nb::nn
