#include "nn/linear.h"

#include "tensor/gemm.h"

namespace nb::nn {

Linear::Linear(int64_t in_features, int64_t out_features, bool bias)
    : in_features_(in_features),
      out_features_(out_features),
      has_bias_(bias),
      weight_(Tensor({out_features, in_features}), /*decay_flag=*/true) {
  NB_CHECK(in_features > 0 && out_features > 0, "Linear feature counts");
  if (bias) bias_ = Parameter(Tensor({out_features}), /*decay_flag=*/false);
}

std::vector<std::pair<std::string, Parameter*>> Linear::local_params() {
  std::vector<std::pair<std::string, Parameter*>> out;
  out.emplace_back("weight", &weight_);
  if (has_bias_) out.emplace_back("bias", &bias_);
  return out;
}

Tensor Linear::forward(const Tensor& x) {
  NB_CHECK(x.dim() == 2 && x.size(1) == in_features_,
           "Linear expects [N, in], got " + x.shape_str());
  input_ = x;
  const int64_t n = x.size(0);
  Tensor y({n, out_features_});
  // y = x * W^T
  gemm(false, true, n, out_features_, in_features_, 1.0f, x.data(),
       weight_.value.data(), 0.0f, y.data());
  if (has_bias_) {
    for (int64_t i = 0; i < n; ++i) {
      float* row = y.data() + i * out_features_;
      const float* b = bias_.value.data();
      for (int64_t j = 0; j < out_features_; ++j) row[j] += b[j];
    }
  }
  return y;
}

Tensor Linear::backward(const Tensor& grad_out) {
  NB_CHECK(input_.defined(), "Linear::backward before forward");
  const int64_t n = input_.size(0);
  // dW += dY^T * X
  gemm(true, false, out_features_, in_features_, n, 1.0f, grad_out.data(),
       input_.data(), 1.0f, weight_.grad.data());
  if (has_bias_) {
    for (int64_t i = 0; i < n; ++i) {
      const float* g = grad_out.data() + i * out_features_;
      float* bg = bias_.grad.data();
      for (int64_t j = 0; j < out_features_; ++j) bg[j] += g[j];
    }
  }
  // dX = dY * W
  Tensor grad_in({n, in_features_});
  gemm(false, false, n, in_features_, out_features_, 1.0f, grad_out.data(),
       weight_.value.data(), 0.0f, grad_in.data());
  return grad_in;
}

}  // namespace nb::nn
