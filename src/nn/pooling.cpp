#include "nn/pooling.h"

#include <limits>

namespace nb::nn {

Tensor GlobalAvgPool::forward(const Tensor& x) {
  NB_CHECK(x.dim() == 4, "GlobalAvgPool expects NCHW");
  in_shape_ = x.shape();
  const int64_t n = x.size(0), c = x.size(1), plane = x.size(2) * x.size(3);
  Tensor y({n, c});
  const float inv = 1.0f / static_cast<float>(plane);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t ch = 0; ch < c; ++ch) {
      const float* p = x.data() + (i * c + ch) * plane;
      double s = 0.0;
      for (int64_t j = 0; j < plane; ++j) s += p[j];
      y.at(i, ch) = static_cast<float>(s) * inv;
    }
  }
  return y;
}

Tensor GlobalAvgPool::backward(const Tensor& grad_out) {
  NB_CHECK(!in_shape_.empty(), "GlobalAvgPool::backward before forward");
  const int64_t n = in_shape_[0], c = in_shape_[1];
  const int64_t plane = in_shape_[2] * in_shape_[3];
  Tensor grad_in(in_shape_);
  const float inv = 1.0f / static_cast<float>(plane);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t ch = 0; ch < c; ++ch) {
      const float g = grad_out.at(i, ch) * inv;
      float* p = grad_in.data() + (i * c + ch) * plane;
      for (int64_t j = 0; j < plane; ++j) p[j] = g;
    }
  }
  return grad_in;
}

MaxPool2d::MaxPool2d(int64_t kernel, int64_t stride)
    : kernel_(kernel), stride_(stride) {
  NB_CHECK(kernel > 0 && stride > 0, "MaxPool2d geometry");
}

Tensor MaxPool2d::forward(const Tensor& x) {
  NB_CHECK(x.dim() == 4, "MaxPool2d expects NCHW");
  input_ = x;
  const int64_t n = x.size(0), c = x.size(1), h = x.size(2), w = x.size(3);
  const int64_t oh = (h - kernel_) / stride_ + 1;
  const int64_t ow = (w - kernel_) / stride_ + 1;
  NB_CHECK(oh > 0 && ow > 0, "MaxPool2d output empty");
  Tensor y({n, c, oh, ow});
  out_shape_ = y.shape();
  argmax_.assign(static_cast<size_t>(y.numel()), 0);
  int64_t oi = 0;
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t ch = 0; ch < c; ++ch) {
      const float* img = x.data() + (i * c + ch) * h * w;
      for (int64_t oy = 0; oy < oh; ++oy) {
        for (int64_t ox = 0; ox < ow; ++ox, ++oi) {
          float best = -std::numeric_limits<float>::infinity();
          int64_t best_idx = 0;
          for (int64_t ki = 0; ki < kernel_; ++ki) {
            for (int64_t kj = 0; kj < kernel_; ++kj) {
              const int64_t iy = oy * stride_ + ki;
              const int64_t ix = ox * stride_ + kj;
              const float v = img[iy * w + ix];
              if (v > best) {
                best = v;
                best_idx = iy * w + ix;
              }
            }
          }
          y.at(i, ch, oy, ox) = best;
          argmax_[static_cast<size_t>(oi)] = best_idx;
        }
      }
    }
  }
  return y;
}

Tensor MaxPool2d::backward(const Tensor& grad_out) {
  NB_CHECK(input_.defined(), "MaxPool2d::backward before forward");
  const int64_t n = input_.size(0), c = input_.size(1);
  const int64_t h = input_.size(2), w = input_.size(3);
  const int64_t plane_out = out_shape_[2] * out_shape_[3];
  Tensor grad_in(input_.shape());
  int64_t oi = 0;
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t ch = 0; ch < c; ++ch) {
      float* gin = grad_in.data() + (i * c + ch) * h * w;
      const float* g = grad_out.data() + (i * c + ch) * plane_out;
      for (int64_t j = 0; j < plane_out; ++j, ++oi) {
        gin[argmax_[static_cast<size_t>(oi)]] += g[j];
      }
    }
  }
  return grad_in;
}

Tensor Flatten::forward(const Tensor& x) {
  in_shape_ = x.shape();
  int64_t rest = 1;
  for (int64_t d = 1; d < x.dim(); ++d) rest *= x.size(d);
  return x.reshape({x.size(0), rest});
}

Tensor Flatten::backward(const Tensor& grad_out) {
  NB_CHECK(!in_shape_.empty(), "Flatten::backward before forward");
  return grad_out.reshape(in_shape_);
}

}  // namespace nb::nn
