#include "nn/se.h"

#include <cmath>

#include "nn/init.h"

namespace nb::nn {

SqueezeExcite::SqueezeExcite(int64_t channels, int64_t reduction)
    : channels_(channels),
      hidden_(std::max<int64_t>(1, channels / std::max<int64_t>(1, reduction))),
      fc1_(std::make_shared<Linear>(channels_, hidden_, /*bias=*/true)),
      fc2_(std::make_shared<Linear>(hidden_, channels_, /*bias=*/true)) {
  NB_CHECK(channels > 0, "SqueezeExcite: channels must be positive");
}

Tensor SqueezeExcite::forward(const Tensor& x) {
  NB_CHECK(x.dim() == 4, "SqueezeExcite expects NCHW");
  NB_CHECK(x.size(1) == channels_, "SqueezeExcite channel mismatch");
  const int64_t n = x.size(0);
  const int64_t hw = x.size(2) * x.size(3);
  input_ = x;

  // Squeeze: global average pool to [N, C].
  pooled_ = Tensor({n, channels_});
  const float* xp = x.data();
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t c = 0; c < channels_; ++c) {
      const float* plane = xp + (i * channels_ + c) * hw;
      double s = 0.0;
      for (int64_t t = 0; t < hw; ++t) s += plane[t];
      pooled_.at(i, c) = static_cast<float>(s / static_cast<double>(hw));
    }
  }

  // Excite: fc1 -> ReLU -> fc2 -> sigmoid.
  hidden_pre_ = fc1_->forward(pooled_);
  Tensor h = hidden_pre_.clone();
  float* hp = h.data();
  for (int64_t i = 0; i < h.numel(); ++i) hp[i] = std::max(hp[i], 0.0f);
  Tensor logits = fc2_->forward(h);
  gates_ = Tensor({n, channels_});
  for (int64_t i = 0; i < logits.numel(); ++i) {
    gates_.data()[i] = 1.0f / (1.0f + std::exp(-logits.data()[i]));
  }

  // Scale: y[i,c,:,:] = x[i,c,:,:] * gate[i,c].
  Tensor y(x.shape());
  float* yp = y.data();
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t c = 0; c < channels_; ++c) {
      const float g = gates_.at(i, c);
      const float* plane = xp + (i * channels_ + c) * hw;
      float* out = yp + (i * channels_ + c) * hw;
      for (int64_t t = 0; t < hw; ++t) out[t] = plane[t] * g;
    }
  }
  return y;
}

Tensor SqueezeExcite::backward(const Tensor& grad_out) {
  NB_CHECK(input_.defined(), "SqueezeExcite::backward before forward");
  const int64_t n = input_.size(0);
  const int64_t hw = input_.size(2) * input_.size(3);
  const float* gp = grad_out.data();
  const float* xp = input_.data();

  // dL/dgate[i,c] = sum_hw dL/dy * x;  dL/dx (path 1) = dL/dy * gate.
  Tensor grad_gate({n, channels_});
  Tensor grad_x(input_.shape());
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t c = 0; c < channels_; ++c) {
      const float g = gates_.at(i, c);
      const float* gplane = gp + (i * channels_ + c) * hw;
      const float* xplane = xp + (i * channels_ + c) * hw;
      float* dxplane = grad_x.data() + (i * channels_ + c) * hw;
      double s = 0.0;
      for (int64_t t = 0; t < hw; ++t) {
        s += static_cast<double>(gplane[t]) * xplane[t];
        dxplane[t] = gplane[t] * g;
      }
      grad_gate.at(i, c) = static_cast<float>(s);
    }
  }

  // Through sigmoid: dL/dlogits = dL/dgate * g * (1 - g).
  Tensor grad_logits({n, channels_});
  for (int64_t i = 0; i < grad_logits.numel(); ++i) {
    const float g = gates_.data()[i];
    grad_logits.data()[i] = grad_gate.data()[i] * g * (1.0f - g);
  }

  // Through fc2, ReLU, fc1.
  Tensor grad_h = fc2_->backward(grad_logits);
  for (int64_t i = 0; i < grad_h.numel(); ++i) {
    if (hidden_pre_.data()[i] <= 0.0f) grad_h.data()[i] = 0.0f;
  }
  Tensor grad_pooled = fc1_->backward(grad_h);

  // Through the average pool: each pixel gets grad_pooled / HW (path 2).
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t c = 0; c < channels_; ++c) {
      const float gpool =
          grad_pooled.at(i, c) / static_cast<float>(hw);
      float* dxplane = grad_x.data() + (i * channels_ + c) * hw;
      for (int64_t t = 0; t < hw; ++t) dxplane[t] += gpool;
    }
  }
  return grad_x;
}

std::vector<std::pair<std::string, Module*>> SqueezeExcite::named_children() {
  return {{"fc1", fc1_.get()}, {"fc2", fc2_.get()}};
}

}  // namespace nb::nn
