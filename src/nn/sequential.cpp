#include "nn/sequential.h"

namespace nb::nn {

void Sequential::push_back(ModulePtr m) {
  NB_CHECK(m != nullptr, "Sequential::push_back(nullptr)");
  m->set_training(training());
  mods_.push_back(std::move(m));
}

ModulePtr& Sequential::at(int64_t i) {
  NB_CHECK(i >= 0 && i < size(), "Sequential index out of range");
  return mods_[static_cast<size_t>(i)];
}

const ModulePtr& Sequential::at(int64_t i) const {
  NB_CHECK(i >= 0 && i < size(), "Sequential index out of range");
  return mods_[static_cast<size_t>(i)];
}

ModulePtr Sequential::replace(int64_t i, ModulePtr m) {
  NB_CHECK(i >= 0 && i < size(), "Sequential::replace index out of range");
  NB_CHECK(m != nullptr, "Sequential::replace(nullptr)");
  m->set_training(training());
  ModulePtr old = mods_[static_cast<size_t>(i)];
  mods_[static_cast<size_t>(i)] = std::move(m);
  return old;
}

Tensor Sequential::forward(const Tensor& x) {
  Tensor y = x;
  for (ModulePtr& m : mods_) y = m->forward(y);
  return y;
}

Tensor Sequential::backward(const Tensor& grad_out) {
  Tensor g = grad_out;
  for (auto it = mods_.rbegin(); it != mods_.rend(); ++it) {
    g = (*it)->backward(g);
  }
  return g;
}

std::vector<std::pair<std::string, Module*>> Sequential::named_children() {
  std::vector<std::pair<std::string, Module*>> out;
  out.reserve(mods_.size());
  for (size_t i = 0; i < mods_.size(); ++i) {
    out.emplace_back(std::to_string(i), mods_[i].get());
  }
  return out;
}

}  // namespace nb::nn
