#include "nn/conv2d.h"

#include <algorithm>

#include "tensor/depthwise.h"
#include "tensor/gemm.h"
#include "tensor/im2col.h"
#include "tensor/scratch.h"
#include "tensor/threadpool.h"

namespace nb::nn {

Conv2d::Conv2d(const Conv2dOptions& opts) : opts_(opts) {
  NB_CHECK(opts.in_channels > 0 && opts.out_channels > 0, "conv channels");
  NB_CHECK(opts.kernel > 0 && opts.stride > 0 && opts.padding >= 0,
           "conv geometry");
  NB_CHECK(opts.groups > 0 && opts.in_channels % opts.groups == 0 &&
               opts.out_channels % opts.groups == 0,
           "conv groups must divide channels");
  weight_ = Parameter(
      Tensor({opts.out_channels, opts.in_channels / opts.groups, opts.kernel,
              opts.kernel}),
      /*decay_flag=*/true);
  if (opts.bias) {
    bias_ = Parameter(Tensor({opts.out_channels}), /*decay_flag=*/false);
  }
}

std::vector<std::pair<std::string, Parameter*>> Conv2d::local_params() {
  std::vector<std::pair<std::string, Parameter*>> out;
  out.emplace_back("weight", &weight_);
  if (opts_.bias) out.emplace_back("bias", &bias_);
  return out;
}

Tensor Conv2d::forward(const Tensor& x) {
  NB_CHECK(x.dim() == 4, "Conv2d expects NCHW input");
  NB_CHECK(x.size(1) == opts_.in_channels,
           "Conv2d channel mismatch: got " + x.shape_str());
  input_ = x;
  last_h_ = x.size(2);
  last_w_ = x.size(3);
  if (is_depthwise()) return forward_depthwise(x);
  return forward_generic(x);
}

Tensor Conv2d::forward_generic(const Tensor& x) {
  const int64_t n = x.size(0), h = x.size(2), w = x.size(3);
  const int64_t k = opts_.kernel, g = opts_.groups;
  const int64_t cin_g = opts_.in_channels / g;
  const int64_t cout_g = opts_.out_channels / g;
  const int64_t oh = conv_out_size(h, k, opts_.stride, opts_.padding);
  const int64_t ow = conv_out_size(w, k, opts_.stride, opts_.padding);
  NB_CHECK(oh > 0 && ow > 0, "Conv2d output is empty for input " + x.shape_str());

  Tensor y({n, opts_.out_channels, oh, ow});
  const int64_t col_rows = cin_g * k * k;
  const int64_t plane = oh * ow;
  // The column matrix lives in the thread-local arena: one allocation per
  // thread for the whole training run instead of one per forward call.
  float* cols = scratch_acquire(ScratchSlot::kConvCols,
                                static_cast<size_t>(col_rows * plane));

  for (int64_t i = 0; i < n; ++i) {
    for (int64_t gi = 0; gi < g; ++gi) {
      const float* img = x.data() + (i * opts_.in_channels + gi * cin_g) * h * w;
      im2col(img, cin_g, h, w, k, k, opts_.stride, opts_.stride, opts_.padding,
             opts_.padding, cols);
      float* out = y.data() + (i * opts_.out_channels + gi * cout_g) * plane;
      const float* wgt = weight_.value.data() + gi * cout_g * col_rows;
      gemm(false, false, cout_g, plane, col_rows, 1.0f, wgt, cols, 0.0f, out);
    }
    if (opts_.bias) {
      for (int64_t c = 0; c < opts_.out_channels; ++c) {
        float* out = y.data() + (i * opts_.out_channels + c) * plane;
        const float b = bias_.value.at(c);
        for (int64_t p = 0; p < plane; ++p) out[p] += b;
      }
    }
  }
  return y;
}

Tensor Conv2d::forward_depthwise(const Tensor& x) {
  const int64_t n = x.size(0), c = x.size(1), h = x.size(2), w = x.size(3);
  const int64_t k = opts_.kernel;
  const int64_t oh = conv_out_size(h, k, opts_.stride, opts_.padding);
  const int64_t ow = conv_out_size(w, k, opts_.stride, opts_.padding);
  NB_CHECK(oh > 0 && ow > 0, "Conv2d output is empty for input " + x.shape_str());
  Tensor y({n, c, oh, ow});
  // Each (image, channel) plane is independent; parallelize across them with
  // a grain that keeps at least ~16k outputs per chunk.
  const int64_t planes = n * c;
  const int64_t grain =
      std::max<int64_t>(1, (int64_t{1} << 14) / std::max<int64_t>(oh * ow, 1));
  parallel_for(planes, grain, [&](int64_t p0, int64_t p1) {
    for (int64_t pl = p0; pl < p1; ++pl) {
      const int64_t ch = pl % c;
      const float* img = x.data() + pl * h * w;
      const float* ker = weight_.value.data() + ch * k * k;
      float* out = y.data() + pl * oh * ow;
      const float b = opts_.bias ? bias_.value.at(ch) : 0.0f;
      depthwise_plane(img, ker, out, h, w, oh, ow, k, opts_.stride,
                      opts_.padding, b);
    }
  });
  return y;
}

Tensor Conv2d::backward(const Tensor& grad_out) {
  NB_CHECK(input_.defined(), "Conv2d::backward before forward");
  if (is_depthwise()) return backward_depthwise(grad_out);
  return backward_generic(grad_out);
}

Tensor Conv2d::backward_generic(const Tensor& grad_out) {
  const Tensor& x = input_;
  const int64_t n = x.size(0), h = x.size(2), w = x.size(3);
  const int64_t k = opts_.kernel, g = opts_.groups;
  const int64_t cin_g = opts_.in_channels / g;
  const int64_t cout_g = opts_.out_channels / g;
  const int64_t oh = grad_out.size(2), ow = grad_out.size(3);
  const int64_t plane = oh * ow;
  const int64_t col_rows = cin_g * k * k;

  Tensor grad_in(x.shape());
  float* cols = scratch_acquire(ScratchSlot::kConvCols,
                                static_cast<size_t>(col_rows * plane));
  float* gcols = scratch_acquire(ScratchSlot::kConvGradCols,
                                 static_cast<size_t>(col_rows * plane));

  for (int64_t i = 0; i < n; ++i) {
    for (int64_t gi = 0; gi < g; ++gi) {
      const float* img = x.data() + (i * opts_.in_channels + gi * cin_g) * h * w;
      const float* gout =
          grad_out.data() + (i * opts_.out_channels + gi * cout_g) * plane;
      float* wgrad = weight_.grad.data() + gi * cout_g * col_rows;
      const float* wgt = weight_.value.data() + gi * cout_g * col_rows;

      // dW += dY * cols^T  (recompute im2col; trades FLOPs for memory)
      im2col(img, cin_g, h, w, k, k, opts_.stride, opts_.stride, opts_.padding,
             opts_.padding, cols);
      gemm(false, true, cout_g, col_rows, plane, 1.0f, gout, cols, 1.0f,
           wgrad);

      // dX = col2im(W^T * dY)
      gemm(true, false, col_rows, plane, cout_g, 1.0f, wgt, gout, 0.0f, gcols);
      float* gin = grad_in.data() + (i * opts_.in_channels + gi * cin_g) * h * w;
      col2im(gcols, cin_g, h, w, k, k, opts_.stride, opts_.stride,
             opts_.padding, opts_.padding, gin);
    }
    if (opts_.bias) {
      for (int64_t c = 0; c < opts_.out_channels; ++c) {
        const float* gout = grad_out.data() + (i * opts_.out_channels + c) * plane;
        double s = 0.0;
        for (int64_t p = 0; p < plane; ++p) s += gout[p];
        bias_.grad.at(c) += static_cast<float>(s);
      }
    }
  }
  return grad_in;
}

Tensor Conv2d::backward_depthwise(const Tensor& grad_out) {
  const Tensor& x = input_;
  const int64_t n = x.size(0), c = x.size(1), h = x.size(2), w = x.size(3);
  const int64_t k = opts_.kernel;
  const int64_t oh = grad_out.size(2), ow = grad_out.size(3);
  Tensor grad_in(x.shape());
  // Parallelize over channels, not planes: a channel owns its weight/bias
  // gradient slots, so per-channel chunks are race-free, and the serial batch
  // loop inside keeps the accumulation order thread-count-invariant.
  parallel_for(c, /*grain=*/1, [&](int64_t c0, int64_t c1) {
    for (int64_t ch = c0; ch < c1; ++ch) {
      const float* ker = weight_.value.data() + ch * k * k;
      float* kgrad = weight_.grad.data() + ch * k * k;
      for (int64_t i = 0; i < n; ++i) {
        const float* img = x.data() + (i * c + ch) * h * w;
        const float* gout = grad_out.data() + (i * c + ch) * oh * ow;
        float* gin = grad_in.data() + (i * c + ch) * h * w;
        for (int64_t oy = 0; oy < oh; ++oy) {
          for (int64_t ox = 0; ox < ow; ++ox) {
            // No zero-skip on gv: 0 * NaN must stay NaN in both gradients
            // (same accumulation policy as gemm/gemv, see gemm.h).
            const float gv = gout[oy * ow + ox];
            for (int64_t ki = 0; ki < k; ++ki) {
              const int64_t iy = oy * opts_.stride + ki - opts_.padding;
              if (iy < 0 || iy >= h) continue;
              for (int64_t kj = 0; kj < k; ++kj) {
                const int64_t ix = ox * opts_.stride + kj - opts_.padding;
                if (ix < 0 || ix >= w) continue;
                kgrad[ki * k + kj] += gv * img[iy * w + ix];
                gin[iy * w + ix] += gv * ker[ki * k + kj];
              }
            }
          }
        }
        if (opts_.bias) {
          double s = 0.0;
          for (int64_t p = 0; p < oh * ow; ++p) s += gout[p];
          bias_.grad.at(ch) += static_cast<float>(s);
        }
      }
    }
  });
  return grad_in;
}

int64_t Conv2d::flops(int64_t in_h, int64_t in_w) const {
  const int64_t oh = conv_out_size(in_h, opts_.kernel, opts_.stride, opts_.padding);
  const int64_t ow = conv_out_size(in_w, opts_.kernel, opts_.stride, opts_.padding);
  const int64_t macs = oh * ow * opts_.out_channels *
                       (opts_.in_channels / opts_.groups) * opts_.kernel *
                       opts_.kernel;
  return 2 * macs;
}

}  // namespace nb::nn
