// Pooling and shape utilities: global average pooling (the classifier head of
// every model in the paper), generic average pooling, max pooling, and
// Flatten.
#pragma once

#include "nn/module.h"

namespace nb::nn {

/// NCHW -> [N, C] mean over spatial positions.
class GlobalAvgPool : public Module {
 public:
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string type_name() const override { return "GlobalAvgPool"; }

 private:
  std::vector<int64_t> in_shape_;
};

/// kxk max pooling with stride (used by the detection head's downsampling).
class MaxPool2d : public Module {
 public:
  MaxPool2d(int64_t kernel, int64_t stride);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string type_name() const override { return "MaxPool2d"; }

 private:
  int64_t kernel_;
  int64_t stride_;
  Tensor input_;
  std::vector<int64_t> argmax_;
  std::vector<int64_t> out_shape_;
};

/// [N, C, H, W] -> [N, C*H*W].
class Flatten : public Module {
 public:
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string type_name() const override { return "Flatten"; }

 private:
  std::vector<int64_t> in_shape_;
};

}  // namespace nb::nn
