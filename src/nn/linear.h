// Fully connected layer: y = x W^T + b, x is [N, in], W is [out, in].
#pragma once

#include "nn/module.h"

namespace nb::nn {

class Linear : public Module {
 public:
  Linear(int64_t in_features, int64_t out_features, bool bias = true);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string type_name() const override { return "Linear"; }

  std::vector<std::pair<std::string, Parameter*>> local_params() override;

  int64_t in_features() const { return in_features_; }
  int64_t out_features() const { return out_features_; }
  Parameter& weight() { return weight_; }
  Parameter& bias() { return bias_; }
  bool has_bias() const { return has_bias_; }
  int64_t flops() const { return 2 * in_features_ * out_features_; }

 private:
  int64_t in_features_;
  int64_t out_features_;
  bool has_bias_;
  Parameter weight_;
  Parameter bias_;
  Tensor input_;
};

}  // namespace nb::nn
