#include "nn/activations.h"

namespace nb::nn {

const char* to_string(ActKind kind) {
  switch (kind) {
    case ActKind::relu: return "relu";
    case ActKind::relu6: return "relu6";
    case ActKind::identity: return "identity";
  }
  return "?";
}

Tensor Activation::forward(const Tensor& x) {
  input_ = x;
  if (kind_ == ActKind::identity) return x;
  Tensor y = x.clone();
  float* p = y.data();
  const int64_t n = y.numel();
  if (kind_ == ActKind::relu) {
    for (int64_t i = 0; i < n; ++i) p[i] = p[i] > 0.0f ? p[i] : 0.0f;
  } else {  // relu6
    for (int64_t i = 0; i < n; ++i) {
      p[i] = p[i] > 0.0f ? (p[i] < 6.0f ? p[i] : 6.0f) : 0.0f;
    }
  }
  return y;
}

Tensor Activation::backward(const Tensor& grad_out) {
  NB_CHECK(input_.defined(), "Activation::backward before forward");
  if (kind_ == ActKind::identity) return grad_out;
  Tensor g = grad_out.clone();
  float* gp = g.data();
  const float* xp = input_.data();
  const int64_t n = g.numel();
  if (kind_ == ActKind::relu) {
    for (int64_t i = 0; i < n; ++i) {
      if (xp[i] <= 0.0f) gp[i] = 0.0f;
    }
  } else {
    for (int64_t i = 0; i < n; ++i) {
      if (xp[i] <= 0.0f || xp[i] >= 6.0f) gp[i] = 0.0f;
    }
  }
  return g;
}

PltActivation::PltActivation(ActKind kind, float alpha)
    : kind_(kind), alpha_(Tensor({1})) {
  NB_CHECK(kind != ActKind::identity, "PltActivation over identity is vacuous");
  set_alpha(alpha);
}

std::vector<std::pair<std::string, Tensor*>> PltActivation::local_buffers() {
  return {{"alpha", &alpha_}};
}

void PltActivation::set_alpha(float a) {
  NB_CHECK(a >= 0.0f && a <= 1.0f, "PLT alpha must lie in [0, 1]");
  alpha_.at(0) = a;
}

Tensor PltActivation::forward(const Tensor& x) {
  input_ = x;
  const float a = alpha();
  Tensor y = x.clone();
  float* p = y.data();
  const int64_t n = y.numel();
  if (kind_ == ActKind::relu) {
    // y = max(a*x, x): for x < 0 this is a*x (since a <= 1), else x.
    for (int64_t i = 0; i < n; ++i) {
      if (p[i] < 0.0f) p[i] *= a;
    }
  } else {  // relu6 with linearized upper clamp
    for (int64_t i = 0; i < n; ++i) {
      if (p[i] < 0.0f) {
        p[i] *= a;
      } else if (p[i] > 6.0f) {
        p[i] = 6.0f + a * (p[i] - 6.0f);
      }
    }
  }
  return y;
}

Tensor PltActivation::backward(const Tensor& grad_out) {
  NB_CHECK(input_.defined(), "PltActivation::backward before forward");
  const float a = alpha();
  Tensor g = grad_out.clone();
  float* gp = g.data();
  const float* xp = input_.data();
  const int64_t n = g.numel();
  if (kind_ == ActKind::relu) {
    for (int64_t i = 0; i < n; ++i) {
      if (xp[i] < 0.0f) gp[i] *= a;
    }
  } else {
    for (int64_t i = 0; i < n; ++i) {
      if (xp[i] < 0.0f || xp[i] > 6.0f) gp[i] *= a;
    }
  }
  return g;
}

}  // namespace nb::nn
