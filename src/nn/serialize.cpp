#include "nn/serialize.h"

#include <cstdint>
#include <fstream>

namespace nb::nn {

namespace {
constexpr char kMagic[6] = {'N', 'B', 'C', 'K', '1', '\n'};

void write_u64(std::ostream& os, uint64_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

uint64_t read_u64(std::istream& is) {
  uint64_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  return v;
}
}  // namespace

std::map<std::string, Tensor> state_dict(Module& m) {
  std::map<std::string, Tensor> sd;
  for (auto& [name, p] : m.named_parameters()) sd[name] = p->value.clone();
  for (auto& [name, b] : m.named_buffers()) sd[name] = b->clone();
  return sd;
}

void load_state_dict(Module& m, const std::map<std::string, Tensor>& sd) {
  auto load_one = [&sd](const std::string& name, Tensor& dst) {
    auto it = sd.find(name);
    NB_CHECK(it != sd.end(), "state dict is missing entry: " + name);
    NB_CHECK(it->second.numel() == dst.numel(),
             "state dict shape mismatch for " + name + ": have " +
                 it->second.shape_str() + ", want " + dst.shape_str());
    dst.copy_from(it->second);
  };
  for (auto& [name, p] : m.named_parameters()) load_one(name, p->value);
  for (auto& [name, b] : m.named_buffers()) load_one(name, *b);
}

void save_checkpoint(Module& m, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  NB_CHECK(os.good(), "cannot open checkpoint for writing: " + path);
  os.write(kMagic, sizeof(kMagic));
  const auto sd = state_dict(m);
  write_u64(os, sd.size());
  for (const auto& [name, t] : sd) {
    write_u64(os, name.size());
    os.write(name.data(), static_cast<std::streamsize>(name.size()));
    write_u64(os, static_cast<uint64_t>(t.dim()));
    for (int64_t d = 0; d < t.dim(); ++d) {
      write_u64(os, static_cast<uint64_t>(t.size(d)));
    }
    os.write(reinterpret_cast<const char*>(t.data()),
             static_cast<std::streamsize>(t.numel() * sizeof(float)));
  }
  NB_CHECK(os.good(), "checkpoint write failed: " + path);
}

void load_checkpoint(Module& m, const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  NB_CHECK(is.good(), "cannot open checkpoint for reading: " + path);
  char magic[sizeof(kMagic)];
  is.read(magic, sizeof(magic));
  NB_CHECK(is.good() && std::equal(magic, magic + sizeof(kMagic), kMagic),
           "bad checkpoint magic in " + path);
  std::map<std::string, Tensor> sd;
  const uint64_t count = read_u64(is);
  for (uint64_t e = 0; e < count; ++e) {
    const uint64_t name_len = read_u64(is);
    std::string name(name_len, '\0');
    is.read(name.data(), static_cast<std::streamsize>(name_len));
    const uint64_t rank = read_u64(is);
    std::vector<int64_t> shape(rank);
    for (uint64_t d = 0; d < rank; ++d) {
      shape[d] = static_cast<int64_t>(read_u64(is));
    }
    Tensor t(shape);
    is.read(reinterpret_cast<char*>(t.data()),
            static_cast<std::streamsize>(t.numel() * sizeof(float)));
    NB_CHECK(is.good(), "truncated checkpoint: " + path);
    sd[name] = std::move(t);
  }
  load_state_dict(m, sd);
}

}  // namespace nb::nn
