// 2-D convolution with groups (plain, grouped and depthwise), implemented as
// im2col + GEMM with a direct fast path for depthwise kernels. Weight layout
// is [cout, cin/groups, kh, kw] (same as torch), activations are NCHW.
#pragma once

#include "nn/module.h"

namespace nb::nn {

/// Configuration for a Conv2d layer; square kernels only (all architectures
/// in the paper use square kernels).
struct Conv2dOptions {
  int64_t in_channels = 0;
  int64_t out_channels = 0;
  int64_t kernel = 1;
  int64_t stride = 1;
  int64_t padding = 0;
  int64_t groups = 1;
  bool bias = false;

  Conv2dOptions() = default;
  Conv2dOptions(int64_t cin, int64_t cout, int64_t k)
      : in_channels(cin), out_channels(cout), kernel(k) {}
  Conv2dOptions& with_stride(int64_t s) { stride = s; return *this; }
  Conv2dOptions& with_padding(int64_t p) { padding = p; return *this; }
  Conv2dOptions& with_groups(int64_t g) { groups = g; return *this; }
  Conv2dOptions& with_bias(bool b) { bias = b; return *this; }
  /// "same" padding for stride-1 odd kernels: p = (k-1)/2.
  Conv2dOptions& same_padding() { padding = (kernel - 1) / 2; return *this; }
};

class Conv2d : public Module {
 public:
  explicit Conv2d(const Conv2dOptions& opts);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string type_name() const override { return "Conv2d"; }

  std::vector<std::pair<std::string, Parameter*>> local_params() override;

  const Conv2dOptions& options() const { return opts_; }
  Parameter& weight() { return weight_; }
  Parameter& bias() { return bias_; }
  bool has_bias() const { return opts_.bias; }
  bool is_depthwise() const {
    return opts_.groups == opts_.in_channels &&
           opts_.groups == opts_.out_channels;
  }
  bool is_pointwise() const { return opts_.kernel == 1 && opts_.groups == 1; }

  /// FLOPs (multiply-accumulates counted as 2) for the given input HxW.
  int64_t flops(int64_t in_h, int64_t in_w) const;

  /// Input spatial size seen by the most recent forward (0 before any call);
  /// the profiler runs a dummy forward and reads these back.
  int64_t last_input_h() const { return last_h_; }
  int64_t last_input_w() const { return last_w_; }

 private:
  Tensor forward_generic(const Tensor& x);
  Tensor forward_depthwise(const Tensor& x);
  Tensor backward_generic(const Tensor& grad_out);
  Tensor backward_depthwise(const Tensor& grad_out);

  Conv2dOptions opts_;
  Parameter weight_;
  Parameter bias_;
  Tensor input_;  // cached for backward
  int64_t last_h_ = 0;
  int64_t last_w_ = 0;
};

}  // namespace nb::nn
