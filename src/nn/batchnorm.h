// Batch normalization over NCHW activations with running statistics, plus the
// exact fold of an (eval-mode) BN into a preceding convolution — the first
// step of NetBooster's contraction.
#pragma once

#include "nn/module.h"

namespace nb::nn {

class BatchNorm2d : public Module {
 public:
  explicit BatchNorm2d(int64_t channels, float eps = 1e-5f,
                       float momentum = 0.1f);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string type_name() const override { return "BatchNorm2d"; }

  std::vector<std::pair<std::string, Parameter*>> local_params() override;
  std::vector<std::pair<std::string, Tensor*>> local_buffers() override;

  int64_t channels() const { return channels_; }
  float eps() const { return eps_; }
  float momentum() const { return momentum_; }
  /// Used by BN recalibration (momentum 1/i gives a cumulative average of
  /// batch statistics over the calibration pass).
  void set_momentum(float momentum) { momentum_ = momentum; }
  Parameter& gamma() { return gamma_; }
  Parameter& beta() { return beta_; }
  Tensor& running_mean() { return running_mean_; }
  Tensor& running_var() { return running_var_; }

 private:
  int64_t channels_;
  float eps_;
  float momentum_;
  Parameter gamma_;
  Parameter beta_;
  Tensor running_mean_;
  Tensor running_var_;

  // caches for backward (training mode)
  Tensor xhat_;
  Tensor inv_std_;
  int64_t count_ = 0;
  bool forward_was_training_ = false;
};

/// Per-channel affine (scale, shift) equivalent to this BN in eval mode:
/// y = scale * x + shift. Used by contraction to fold BN into convolutions.
struct BnAffine {
  std::vector<float> scale;
  std::vector<float> shift;
};

BnAffine bn_to_affine(BatchNorm2d& bn);

}  // namespace nb::nn
