// Layer abstraction. Every layer implements an explicit forward/backward pair
// (Caffe-style module backprop rather than taped autograd): forward caches
// whatever the layer needs, backward consumes the cache and returns the
// gradient with respect to the layer input. This keeps the training loop
// fully deterministic and makes each layer's gradient unit-testable with
// finite differences.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "tensor/tensor.h"

namespace nb::nn {

/// A trainable tensor with its gradient accumulator.
struct Parameter {
  Tensor value;
  Tensor grad;
  /// Excluded from weight decay when false (BN affine params, biases).
  bool decay = true;

  Parameter() = default;
  explicit Parameter(Tensor v, bool decay_flag = true)
      : value(std::move(v)), grad(value.shape()), decay(decay_flag) {}

  void zero_grad() { grad.zero(); }
};

/// Base class for all layers and containers.
class Module {
 public:
  virtual ~Module() = default;

  /// Computes the layer output, caching what backward() will need.
  virtual Tensor forward(const Tensor& x) = 0;

  /// Given dLoss/dOutput, accumulates parameter gradients and returns
  /// dLoss/dInput. Must be called after the matching forward().
  virtual Tensor backward(const Tensor& grad_out) = 0;

  /// Short type tag, e.g. "Conv2d".
  virtual std::string type_name() const = 0;

  /// Direct trainable parameters of this module (not of children).
  virtual std::vector<std::pair<std::string, Parameter*>> local_params() {
    return {};
  }

  /// Non-trainable state that must be checkpointed (BN running stats).
  virtual std::vector<std::pair<std::string, Tensor*>> local_buffers() {
    return {};
  }

  /// Direct children, with the names used for state-dict paths.
  virtual std::vector<std::pair<std::string, Module*>> named_children() {
    return {};
  }

  /// Recursively flips train/eval mode.
  void set_training(bool training);
  bool training() const { return training_; }

  /// All parameters of this module and its descendants.
  std::vector<Parameter*> parameters();

  /// All parameters with hierarchical dotted names.
  std::vector<std::pair<std::string, Parameter*>> named_parameters();

  /// All buffers with hierarchical dotted names.
  std::vector<std::pair<std::string, Tensor*>> named_buffers();

  /// Zeroes the gradients of every parameter in the subtree.
  void zero_grad();

  /// Pre-order traversal (this module first, then descendants).
  void apply(const std::function<void(Module&)>& fn);

  /// Total number of trainable scalars in the subtree.
  int64_t param_count();

 protected:
  /// Hook for subclasses that need to react to mode flips (BN, dropout).
  virtual void on_set_training(bool) {}

 private:
  void collect_params(const std::string& prefix,
                      std::vector<std::pair<std::string, Parameter*>>& out);
  void collect_buffers(const std::string& prefix,
                       std::vector<std::pair<std::string, Tensor*>>& out);

  bool training_ = true;
};

using ModulePtr = std::shared_ptr<Module>;

}  // namespace nb::nn
