#include "nn/blocks.h"

#include "nn/se.h"

namespace nb::nn {

ConvBnAct::ConvBnAct(const Conv2dOptions& opts, ActKind act)
    : conv_(std::make_shared<Conv2d>(opts)),
      bn_(std::make_shared<BatchNorm2d>(opts.out_channels)) {
  if (act != ActKind::identity) act_ = std::make_shared<Activation>(act);
}

ConvBnAct::ConvBnAct(const Conv2dOptions& opts, ModulePtr act_module)
    : conv_(std::make_shared<Conv2d>(opts)),
      bn_(std::make_shared<BatchNorm2d>(opts.out_channels)),
      act_(std::move(act_module)) {}

std::shared_ptr<ConvBnAct> ConvBnAct::conv_only(const Conv2dOptions& opts,
                                                ActKind act) {
  auto unit = std::shared_ptr<ConvBnAct>(new ConvBnAct());
  unit->conv_ = std::make_shared<Conv2d>(opts);
  if (act != ActKind::identity) {
    unit->act_ = std::make_shared<Activation>(act);
  }
  return unit;
}

Tensor ConvBnAct::forward(const Tensor& x) {
  Tensor y = conv_->forward(x);
  if (bn_) y = bn_->forward(y);
  if (act_) y = act_->forward(y);
  return y;
}

Tensor ConvBnAct::backward(const Tensor& grad_out) {
  Tensor g = grad_out;
  if (act_) g = act_->backward(g);
  if (bn_) g = bn_->backward(g);
  return conv_->backward(g);
}

std::vector<std::pair<std::string, Module*>> ConvBnAct::named_children() {
  std::vector<std::pair<std::string, Module*>> out;
  out.emplace_back("conv", conv_.get());
  if (bn_) out.emplace_back("bn", bn_.get());
  if (act_) out.emplace_back("act", act_.get());
  return out;
}

ModulePtr ConvBnAct::swap_conv(ModulePtr m) {
  NB_CHECK(m != nullptr, "ConvBnAct::swap_conv(nullptr)");
  m->set_training(training());
  ModulePtr old = conv_;
  conv_ = std::move(m);
  return old;
}

Conv2d* ConvBnAct::conv2d() { return dynamic_cast<Conv2d*>(conv_.get()); }

std::shared_ptr<BatchNorm2d> ConvBnAct::remove_bn() {
  std::shared_ptr<BatchNorm2d> out = std::move(bn_);
  bn_ = nullptr;
  return out;
}

InvertedResidual::InvertedResidual(int64_t cin, int64_t cout, int64_t stride,
                                   int64_t expand_ratio, int64_t kernel,
                                   ActKind act, bool use_se,
                                   int64_t se_reduction)
    : cin_(cin),
      cout_(cout),
      stride_(stride),
      expand_ratio_(expand_ratio),
      kernel_(kernel),
      use_residual_(stride == 1 && cin == cout) {
  NB_CHECK(expand_ratio >= 1, "InvertedResidual expand_ratio >= 1");
  NB_CHECK(stride == 1 || stride == 2, "InvertedResidual stride in {1,2}");
  const int64_t hidden = cin * expand_ratio;
  if (expand_ratio > 1) {
    expand_ = std::make_shared<ConvBnAct>(Conv2dOptions(cin, hidden, 1), act);
  }
  dw_ = std::make_shared<ConvBnAct>(Conv2dOptions(hidden, hidden, kernel)
                                        .with_stride(stride)
                                        .same_padding()
                                        .with_groups(hidden),
                                    act);
  if (use_se) {
    se_ = std::make_shared<SqueezeExcite>(hidden, se_reduction);
  }
  project_ = std::make_shared<ConvBnAct>(Conv2dOptions(hidden, cout, 1),
                                         ActKind::identity);
}

ConvBnAct& InvertedResidual::expand_unit() {
  NB_CHECK(expand_ != nullptr, "block has no expand unit (expand_ratio == 1)");
  return *expand_;
}

Tensor InvertedResidual::forward(const Tensor& x) {
  Tensor y = x;
  if (expand_) y = expand_->forward(y);
  y = dw_->forward(y);
  if (se_) y = se_->forward(y);
  y = project_->forward(y);
  if (use_residual_) y.add_(x);
  return y;
}

Tensor InvertedResidual::backward(const Tensor& grad_out) {
  Tensor g = project_->backward(grad_out);
  if (se_) g = se_->backward(g);
  g = dw_->backward(g);
  if (expand_) g = expand_->backward(g);
  if (use_residual_) g.add_(grad_out);
  return g;
}

std::vector<std::pair<std::string, Module*>> InvertedResidual::named_children() {
  std::vector<std::pair<std::string, Module*>> out;
  if (expand_) out.emplace_back("expand", expand_.get());
  out.emplace_back("dw", dw_.get());
  if (se_) out.emplace_back("se", se_.get());
  out.emplace_back("project", project_.get());
  return out;
}

Residual::Residual(ModulePtr body, ModulePtr shortcut)
    : body_(std::move(body)), shortcut_(std::move(shortcut)) {
  NB_CHECK(body_ != nullptr, "Residual requires a body");
}

Tensor Residual::forward(const Tensor& x) {
  Tensor y = body_->forward(x);
  if (shortcut_) {
    y.add_(shortcut_->forward(x));
  } else {
    y.add_(x);
  }
  return y;
}

Tensor Residual::backward(const Tensor& grad_out) {
  Tensor g = body_->backward(grad_out);
  if (shortcut_) {
    g.add_(shortcut_->backward(grad_out));
  } else {
    g.add_(grad_out);
  }
  return g;
}

std::vector<std::pair<std::string, Module*>> Residual::named_children() {
  std::vector<std::pair<std::string, Module*>> out;
  out.emplace_back("body", body_.get());
  if (shortcut_) out.emplace_back("shortcut", shortcut_.get());
  return out;
}

}  // namespace nb::nn
