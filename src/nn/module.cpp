#include "nn/module.h"

namespace nb::nn {

void Module::set_training(bool training) {
  training_ = training;
  on_set_training(training);
  for (auto& [name, child] : named_children()) {
    (void)name;
    child->set_training(training);
  }
}

std::vector<Parameter*> Module::parameters() {
  std::vector<Parameter*> out;
  for (auto& [name, p] : named_parameters()) {
    (void)name;
    out.push_back(p);
  }
  return out;
}

std::vector<std::pair<std::string, Parameter*>> Module::named_parameters() {
  std::vector<std::pair<std::string, Parameter*>> out;
  collect_params("", out);
  return out;
}

std::vector<std::pair<std::string, Tensor*>> Module::named_buffers() {
  std::vector<std::pair<std::string, Tensor*>> out;
  collect_buffers("", out);
  return out;
}

void Module::collect_params(
    const std::string& prefix,
    std::vector<std::pair<std::string, Parameter*>>& out) {
  for (auto& [name, p] : local_params()) {
    out.emplace_back(prefix + name, p);
  }
  for (auto& [name, child] : named_children()) {
    child->collect_params(prefix + name + ".", out);
  }
}

void Module::collect_buffers(
    const std::string& prefix,
    std::vector<std::pair<std::string, Tensor*>>& out) {
  for (auto& [name, b] : local_buffers()) {
    out.emplace_back(prefix + name, b);
  }
  for (auto& [name, child] : named_children()) {
    child->collect_buffers(prefix + name + ".", out);
  }
}

void Module::zero_grad() {
  for (Parameter* p : parameters()) p->zero_grad();
}

void Module::apply(const std::function<void(Module&)>& fn) {
  fn(*this);
  for (auto& [name, child] : named_children()) {
    (void)name;
    child->apply(fn);
  }
}

int64_t Module::param_count() {
  int64_t n = 0;
  for (Parameter* p : parameters()) n += p->value.numel();
  return n;
}

}  // namespace nb::nn
