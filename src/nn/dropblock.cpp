#include "nn/dropblock.h"

#include <algorithm>

namespace nb::nn {

DropBlock2d::DropBlock2d(float drop_prob, int64_t block_size, uint64_t seed)
    : drop_prob_(drop_prob), block_size_(block_size), rng_(seed, 0x9e3779b9) {
  NB_CHECK(drop_prob >= 0.0f && drop_prob < 1.0f, "drop_prob in [0, 1)");
  NB_CHECK(block_size >= 1, "block_size >= 1");
}

Tensor DropBlock2d::forward(const Tensor& x) {
  if (!training() || drop_prob_ == 0.0f) {
    masked_ = false;
    return x;
  }
  NB_CHECK(x.dim() == 4, "DropBlock2d expects NCHW");
  const int64_t n = x.size(0), c = x.size(1), h = x.size(2), w = x.size(3);
  const int64_t bs = std::min({block_size_, h, w});
  const int64_t valid_h = h - bs + 1;
  const int64_t valid_w = w - bs + 1;
  // Seed-sampling rate so that the expected dropped fraction is drop_prob.
  const float gamma = drop_prob_ * static_cast<float>(h * w) /
                      static_cast<float>(bs * bs) /
                      static_cast<float>(valid_h * valid_w);

  mask_ = Tensor::ones(x.shape());
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t ch = 0; ch < c; ++ch) {
      float* m = mask_.data() + (i * c + ch) * h * w;
      for (int64_t y = 0; y < valid_h; ++y) {
        for (int64_t z = 0; z < valid_w; ++z) {
          if (!rng_.bernoulli(gamma)) continue;
          for (int64_t dy = 0; dy < bs; ++dy) {
            for (int64_t dz = 0; dz < bs; ++dz) {
              m[(y + dy) * w + (z + dz)] = 0.0f;
            }
          }
        }
      }
      // Renormalize so the expected activation magnitude is preserved.
      const int64_t plane = h * w;
      int64_t kept = 0;
      for (int64_t j = 0; j < plane; ++j) kept += m[j] > 0.0f ? 1 : 0;
      if (kept > 0) {
        const float scale = static_cast<float>(plane) / static_cast<float>(kept);
        for (int64_t j = 0; j < plane; ++j) m[j] *= scale;
      }
    }
  }
  masked_ = true;
  return x.mul(mask_);
}

Tensor DropBlock2d::backward(const Tensor& grad_out) {
  if (!masked_) return grad_out;
  return grad_out.mul(mask_);
}

}  // namespace nb::nn
