// Binary checkpoint format for module state (parameters + buffers). Used to
// carry ImageNet-pretrained deep giants into the downstream-task experiments
// and to store the teacher route for RCO-KD.
#pragma once

#include <map>
#include <string>

#include "nn/module.h"

namespace nb::nn {

/// Deep-copied name -> tensor map of all parameters and buffers.
std::map<std::string, Tensor> state_dict(Module& m);

/// Loads values by name; every entry in the module must be present in `sd`
/// with a matching shape (strict load).
void load_state_dict(Module& m, const std::map<std::string, Tensor>& sd);

/// Serializes the state dict to a file (format: NBCK1 header, then
/// length-prefixed name / rank / dims / float32 payload per tensor).
void save_checkpoint(Module& m, const std::string& path);

/// Restores a checkpoint written by save_checkpoint (strict).
void load_checkpoint(Module& m, const std::string& path);

}  // namespace nb::nn
