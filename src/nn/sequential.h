// Ordered container of modules. Children are addressable by index so that
// NetBooster's model surgery (replacing a layer with its expanded block and
// contracting it back) can splice modules in place.
#pragma once

#include <memory>

#include "nn/module.h"

namespace nb::nn {

class Sequential : public Module {
 public:
  Sequential() = default;

  /// Appends a module; returns a reference for chaining-free construction.
  void push_back(ModulePtr m);

  /// Constructs a module in place and returns a shared handle to it.
  template <typename M, typename... Args>
  std::shared_ptr<M> emplace(Args&&... args) {
    auto m = std::make_shared<M>(std::forward<Args>(args)...);
    push_back(m);
    return m;
  }

  int64_t size() const { return static_cast<int64_t>(mods_.size()); }
  ModulePtr& at(int64_t i);
  const ModulePtr& at(int64_t i) const;
  /// Replaces the i-th child (model surgery); returns the old module.
  ModulePtr replace(int64_t i, ModulePtr m);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string type_name() const override { return "Sequential"; }
  std::vector<std::pair<std::string, Module*>> named_children() override;

 private:
  std::vector<ModulePtr> mods_;
};

}  // namespace nb::nn
