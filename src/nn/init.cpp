#include "nn/init.h"

#include <cmath>

#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "tensor/tensor_ops.h"

namespace nb::nn {

void kaiming_normal_fan_out(Tensor& weight, Rng& rng) {
  NB_CHECK(weight.dim() == 4, "conv weight expected");
  const int64_t fan_out = weight.size(0) * weight.size(2) * weight.size(3);
  const float stddev = std::sqrt(2.0f / static_cast<float>(fan_out));
  fill_normal(weight, rng, 0.0f, stddev);
}

void init_parameters(Module& root, Rng& rng) {
  root.apply([&rng](Module& m) {
    if (auto* conv = dynamic_cast<Conv2d*>(&m)) {
      kaiming_normal_fan_out(conv->weight().value, rng);
      if (conv->has_bias()) conv->bias().value.zero();
    } else if (auto* fc = dynamic_cast<Linear*>(&m)) {
      fill_normal(fc->weight().value, rng, 0.0f, 0.01f);
      if (fc->has_bias()) fc->bias().value.zero();
    } else if (auto* bn = dynamic_cast<BatchNorm2d*>(&m)) {
      bn->gamma().value.fill(1.0f);
      bn->beta().value.zero();
      bn->running_mean().zero();
      bn->running_var().fill(1.0f);
    }
  });
}

}  // namespace nb::nn
