#include "nn/losses.h"

#include <cmath>

#include "tensor/tensor_ops.h"

namespace nb::nn {

LossResult softmax_cross_entropy(const Tensor& logits,
                                 const std::vector<int64_t>& labels,
                                 float label_smoothing) {
  NB_CHECK(logits.dim() == 2, "cross entropy expects [N, K] logits");
  const int64_t n = logits.size(0);
  const int64_t k = logits.size(1);
  NB_CHECK(static_cast<int64_t>(labels.size()) == n, "label count mismatch");
  NB_CHECK(label_smoothing >= 0.0f && label_smoothing < 1.0f,
           "label smoothing in [0, 1)");

  const Tensor logp = log_softmax_rows(logits);
  const Tensor p = softmax_rows(logits);
  const float off = label_smoothing / static_cast<float>(k);
  const float on = 1.0f - label_smoothing + off;

  LossResult r;
  r.grad = Tensor(logits.shape());
  double loss = 0.0;
  const float inv_n = 1.0f / static_cast<float>(n);
  for (int64_t i = 0; i < n; ++i) {
    const int64_t y = labels[static_cast<size_t>(i)];
    NB_CHECK(y >= 0 && y < k, "label out of range");
    for (int64_t j = 0; j < k; ++j) {
      const float target = (j == y) ? on : off;
      loss -= static_cast<double>(target) * logp.at(i, j);
      r.grad.at(i, j) = (p.at(i, j) - target) * inv_n;
    }
  }
  r.loss = static_cast<float>(loss) * inv_n;
  return r;
}

LossResult soft_cross_entropy(const Tensor& logits, const Tensor& target_probs) {
  NB_CHECK(logits.dim() == 2 && logits.same_shape(target_probs),
           "soft_cross_entropy shape mismatch");
  const int64_t n = logits.size(0);
  const int64_t k = logits.size(1);
  const Tensor logp = log_softmax_rows(logits);
  const Tensor p = softmax_rows(logits);
  LossResult r;
  r.grad = Tensor(logits.shape());
  double loss = 0.0;
  const float inv_n = 1.0f / static_cast<float>(n);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < k; ++j) {
      loss -= static_cast<double>(target_probs.at(i, j)) * logp.at(i, j);
      r.grad.at(i, j) = (p.at(i, j) - target_probs.at(i, j)) * inv_n;
    }
  }
  r.loss = static_cast<float>(loss) * inv_n;
  return r;
}

LossResult kd_kl(const Tensor& student_logits, const Tensor& teacher_logits,
                 float temperature) {
  NB_CHECK(student_logits.same_shape(teacher_logits), "kd_kl shape mismatch");
  NB_CHECK(temperature > 0.0f, "kd_kl temperature must be positive");
  const int64_t n = student_logits.size(0);
  const int64_t k = student_logits.size(1);
  const Tensor pt = softmax_rows(teacher_logits, temperature);
  const Tensor logps = log_softmax_rows(student_logits, temperature);
  const Tensor ps = softmax_rows(student_logits, temperature);

  LossResult r;
  r.grad = Tensor(student_logits.shape());
  double loss = 0.0;
  const float inv_n = 1.0f / static_cast<float>(n);
  const float t2 = temperature * temperature;
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < k; ++j) {
      const float t = pt.at(i, j);
      if (t > 0.0f) {
        loss += static_cast<double>(t) * (std::log(t) - logps.at(i, j));
      }
      // d(T^2 * KL)/dz_s = T^2 * (ps - pt) * (1/T) = T * (ps - pt)
      r.grad.at(i, j) = temperature * (ps.at(i, j) - t) * inv_n;
    }
  }
  r.loss = static_cast<float>(loss) * inv_n * t2;
  return r;
}

LossResult mse(const Tensor& pred, const Tensor& target) {
  NB_CHECK(pred.numel() == target.numel(), "mse numel mismatch");
  LossResult r;
  r.grad = Tensor(pred.shape());
  const float* p = pred.data();
  const float* t = target.data();
  float* g = r.grad.data();
  const int64_t n = pred.numel();
  const float inv_n = 1.0f / static_cast<float>(n);
  double loss = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    const float d = p[i] - t[i];
    loss += static_cast<double>(d) * d;
    g[i] = 2.0f * d * inv_n;
  }
  r.loss = static_cast<float>(loss) * inv_n;
  return r;
}

LossResult sigmoid_bce(const Tensor& logits, const Tensor& targets,
                       const Tensor* weights) {
  NB_CHECK(logits.numel() == targets.numel(), "bce numel mismatch");
  LossResult r;
  r.grad = Tensor(logits.shape());
  const float* z = logits.data();
  const float* t = targets.data();
  float* g = r.grad.data();
  const int64_t n = logits.numel();
  const float inv_n = 1.0f / static_cast<float>(n);
  double loss = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    const float w = weights ? weights->data()[i] : 1.0f;
    // numerically stable: log(1+e^-|z|) + max(z,0) - z*t
    const float zi = z[i];
    const float s = 1.0f / (1.0f + std::exp(-zi));
    loss += w * (std::log1p(std::exp(-std::fabs(zi))) +
                 (zi > 0.0f ? zi : 0.0f) - zi * t[i]);
    g[i] = w * (s - t[i]) * inv_n;
  }
  r.loss = static_cast<float>(loss) * inv_n;
  return r;
}

float accuracy(const Tensor& logits, const std::vector<int64_t>& labels) {
  const std::vector<int64_t> pred = argmax_rows(logits);
  NB_CHECK(pred.size() == labels.size(), "accuracy label count mismatch");
  if (pred.empty()) return 0.0f;
  int64_t correct = 0;
  for (size_t i = 0; i < pred.size(); ++i) {
    if (pred[i] == labels[i]) ++correct;
  }
  return static_cast<float>(correct) / static_cast<float>(pred.size());
}

}  // namespace nb::nn
