// DropBlock regularization (Ghiasi et al., 2018). Fig. 1(a) of the paper uses
// DropBlock as the representative regularizer that *hurts* tiny networks:
// TNNs under-fit, so dropping structured activation blocks lowers accuracy.
#pragma once

#include "nn/module.h"
#include "tensor/rng.h"

namespace nb::nn {

class DropBlock2d : public Module {
 public:
  /// drop_prob: target fraction of units dropped; block_size: square side of
  /// each dropped region.
  DropBlock2d(float drop_prob, int64_t block_size, uint64_t seed = 7);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string type_name() const override { return "DropBlock2d"; }

  float drop_prob() const { return drop_prob_; }
  int64_t block_size() const { return block_size_; }

 private:
  float drop_prob_;
  int64_t block_size_;
  Rng rng_;
  Tensor mask_;  // scaled keep-mask cached for backward
  bool masked_ = false;
};

}  // namespace nb::nn
