// RMSprop (Tieleman & Hinton 2012), the optimizer several TinyML training
// stacks default to on MCUs; included so the optimizer ablation can compare
// SGD / Adam / RMSprop on the NetBooster tuning stage.
#pragma once

#include <vector>

#include "nn/module.h"
#include "optim/optimizer.h"

namespace nb::optim {

struct RmsPropOptions {
  float lr = 1e-2f;
  float alpha = 0.99f;  // squared-gradient EMA decay
  float eps = 1e-8f;
  float weight_decay = 0.0f;
  float momentum = 0.0f;
};

class RmsProp : public Optimizer {
 public:
  RmsProp(std::vector<nn::Parameter*> params, const RmsPropOptions& opts);

  void step() override;
  void zero_grad() override;

  float lr() const override { return opts_.lr; }
  void set_lr(float lr) override { opts_.lr = lr; }
  const RmsPropOptions& options() const { return opts_; }
  std::string name() const override { return "rmsprop"; }

  /// Re-binds to a new parameter set; accumulator state resets.
  void rebind(std::vector<nn::Parameter*> params) override;

 private:
  std::vector<nn::Parameter*> params_;
  std::vector<Tensor> square_avg_;
  std::vector<Tensor> momentum_buf_;
  RmsPropOptions opts_;
};

}  // namespace nb::optim
