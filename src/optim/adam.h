// Adam / AdamW (Kingma & Ba 2015; Loshchilov & Hutter 2019). The paper's
// recipes all use SGD, but downstream finetuning at tiny batch sizes is
// noticeably more stable under Adam, so the trainer exposes it as an
// alternative (TrainConfig::optimizer) and the optimizer ablation bench
// compares the two on the NetBooster tuning stage.
#pragma once

#include <vector>

#include "nn/module.h"
#include "optim/optimizer.h"

namespace nb::optim {

struct AdamOptions {
  float lr = 1e-3f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float eps = 1e-8f;
  float weight_decay = 0.0f;
  /// true: AdamW decoupled decay (p -= lr*wd*p); false: L2-into-gradient.
  bool decoupled_decay = true;
};

class Adam : public Optimizer {
 public:
  Adam(std::vector<nn::Parameter*> params, const AdamOptions& opts);

  /// One update from the gradients currently stored on the parameters.
  void step() override;
  void zero_grad() override;

  float lr() const override { return opts_.lr; }
  void set_lr(float lr) override { opts_.lr = lr; }
  const AdamOptions& options() const { return opts_; }
  int64_t step_count() const { return step_count_; }
  std::string name() const override {
    return opts_.decoupled_decay ? "adamw" : "adam";
  }

  /// Re-binds to a new parameter set (after model surgery); moment state and
  /// the bias-correction step count reset.
  void rebind(std::vector<nn::Parameter*> params) override;

 private:
  std::vector<nn::Parameter*> params_;
  std::vector<Tensor> exp_avg_;     // first moment m
  std::vector<Tensor> exp_avg_sq_;  // second moment v
  AdamOptions opts_;
  int64_t step_count_ = 0;
};

}  // namespace nb::optim
