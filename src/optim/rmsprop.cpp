#include "optim/rmsprop.h"

#include <cmath>

namespace nb::optim {

RmsProp::RmsProp(std::vector<nn::Parameter*> params,
                 const RmsPropOptions& opts)
    : params_(std::move(params)), opts_(opts) {
  NB_CHECK(opts_.lr >= 0.0f, "rmsprop: negative learning rate");
  NB_CHECK(opts_.alpha >= 0.0f && opts_.alpha < 1.0f,
           "rmsprop: alpha not in [0,1)");
  for (nn::Parameter* p : params_) {
    square_avg_.emplace_back(p->value.shape());
    momentum_buf_.emplace_back(p->value.shape());
  }
}

void RmsProp::step() {
  for (size_t idx = 0; idx < params_.size(); ++idx) {
    nn::Parameter& p = *params_[idx];
    float* w = p.value.data();
    const float* g = p.grad.data();
    float* sq = square_avg_[idx].data();
    float* mom = momentum_buf_[idx].data();
    const int64_t n = p.value.numel();
    const bool decay = p.decay && opts_.weight_decay > 0.0f;

    for (int64_t i = 0; i < n; ++i) {
      float grad = g[i];
      if (decay) {
        grad += opts_.weight_decay * w[i];
      }
      sq[i] = opts_.alpha * sq[i] + (1.0f - opts_.alpha) * grad * grad;
      const float update = grad / (std::sqrt(sq[i]) + opts_.eps);
      if (opts_.momentum > 0.0f) {
        mom[i] = opts_.momentum * mom[i] + update;
        w[i] -= opts_.lr * mom[i];
      } else {
        w[i] -= opts_.lr * update;
      }
    }
  }
}

void RmsProp::zero_grad() {
  for (nn::Parameter* p : params_) {
    p->zero_grad();
  }
}

void RmsProp::rebind(std::vector<nn::Parameter*> params) {
  params_ = std::move(params);
  square_avg_.clear();
  momentum_buf_.clear();
  for (nn::Parameter* p : params_) {
    square_avg_.emplace_back(p->value.shape());
    momentum_buf_.emplace_back(p->value.shape());
  }
}

}  // namespace nb::optim
