// Learning-rate schedules, stepped per iteration. The paper's recipe is
// cosine annealing with an optional linear warmup.
#pragma once

#include <cstdint>
#include <memory>

namespace nb::optim {

/// Maps an iteration index in [0, total_steps) to a learning rate.
class LrSchedule {
 public:
  virtual ~LrSchedule() = default;
  virtual float lr_at(int64_t step) const = 0;
};

class ConstantLr : public LrSchedule {
 public:
  explicit ConstantLr(float lr) : lr_(lr) {}
  float lr_at(int64_t) const override { return lr_; }

 private:
  float lr_;
};

/// Cosine annealing from base_lr to min_lr across total_steps, with
/// warmup_steps of linear ramp from 0.
class CosineLr : public LrSchedule {
 public:
  CosineLr(float base_lr, int64_t total_steps, float min_lr = 0.0f,
           int64_t warmup_steps = 0);
  float lr_at(int64_t step) const override;

 private:
  float base_lr_;
  float min_lr_;
  int64_t total_steps_;
  int64_t warmup_steps_;
};

/// Multiplies the base LR by `gamma` at each milestone (given in steps).
class StepLr : public LrSchedule {
 public:
  StepLr(float base_lr, std::int64_t step_every, float gamma);
  float lr_at(int64_t step) const override;

 private:
  float base_lr_;
  int64_t step_every_;
  float gamma_;
};

}  // namespace nb::optim
