#include "optim/adam.h"

#include <cmath>

namespace nb::optim {

Adam::Adam(std::vector<nn::Parameter*> params, const AdamOptions& opts)
    : params_(std::move(params)), opts_(opts) {
  NB_CHECK(opts_.lr >= 0.0f, "adam: negative learning rate");
  NB_CHECK(opts_.beta1 >= 0.0f && opts_.beta1 < 1.0f, "adam: beta1 not in [0,1)");
  NB_CHECK(opts_.beta2 >= 0.0f && opts_.beta2 < 1.0f, "adam: beta2 not in [0,1)");
  exp_avg_.reserve(params_.size());
  exp_avg_sq_.reserve(params_.size());
  for (nn::Parameter* p : params_) {
    exp_avg_.emplace_back(p->value.shape());
    exp_avg_sq_.emplace_back(p->value.shape());
  }
}

void Adam::step() {
  ++step_count_;
  const float bc1 =
      1.0f - std::pow(opts_.beta1, static_cast<float>(step_count_));
  const float bc2 =
      1.0f - std::pow(opts_.beta2, static_cast<float>(step_count_));
  const float step_size = opts_.lr / bc1;

  for (size_t idx = 0; idx < params_.size(); ++idx) {
    nn::Parameter& p = *params_[idx];
    float* w = p.value.data();
    const float* g = p.grad.data();
    float* m = exp_avg_[idx].data();
    float* v = exp_avg_sq_[idx].data();
    const int64_t n = p.value.numel();
    const bool decay = p.decay && opts_.weight_decay > 0.0f;

    for (int64_t i = 0; i < n; ++i) {
      float grad = g[i];
      if (decay && !opts_.decoupled_decay) {
        grad += opts_.weight_decay * w[i];
      }
      m[i] = opts_.beta1 * m[i] + (1.0f - opts_.beta1) * grad;
      v[i] = opts_.beta2 * v[i] + (1.0f - opts_.beta2) * grad * grad;
      const float denom = std::sqrt(v[i] / bc2) + opts_.eps;
      float update = step_size * m[i] / denom;
      if (decay && opts_.decoupled_decay) {
        update += opts_.lr * opts_.weight_decay * w[i];
      }
      w[i] -= update;
    }
  }
}

void Adam::zero_grad() {
  for (nn::Parameter* p : params_) {
    p->zero_grad();
  }
}

void Adam::rebind(std::vector<nn::Parameter*> params) {
  params_ = std::move(params);
  exp_avg_.clear();
  exp_avg_sq_.clear();
  for (nn::Parameter* p : params_) {
    exp_avg_.emplace_back(p->value.shape());
    exp_avg_sq_.emplace_back(p->value.shape());
  }
  step_count_ = 0;
}

}  // namespace nb::optim
