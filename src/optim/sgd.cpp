#include "optim/sgd.h"

#include <cmath>

namespace nb::optim {

Sgd::Sgd(std::vector<nn::Parameter*> params, const SgdOptions& opts)
    : opts_(opts) {
  rebind(std::move(params));
}

void Sgd::rebind(std::vector<nn::Parameter*> params) {
  params_ = std::move(params);
  velocity_.clear();
  velocity_.reserve(params_.size());
  for (nn::Parameter* p : params_) {
    NB_CHECK(p != nullptr, "null parameter handed to Sgd");
    velocity_.emplace_back(p->value.shape());
  }
}

void Sgd::step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    nn::Parameter& p = *params_[i];
    Tensor& v = velocity_[i];
    float* w = p.value.data();
    const float* g = p.grad.data();
    float* vel = v.data();
    const int64_t n = p.value.numel();
    const float wd = p.decay ? opts_.weight_decay : 0.0f;
    for (int64_t j = 0; j < n; ++j) {
      float grad = g[j] + wd * w[j];
      if (opts_.momentum != 0.0f) {
        vel[j] = opts_.momentum * vel[j] + grad;
        grad = opts_.nesterov ? grad + opts_.momentum * vel[j] : vel[j];
      }
      w[j] -= opts_.lr * grad;
    }
  }
}

void Sgd::zero_grad() {
  for (nn::Parameter* p : params_) p->zero_grad();
}

float clip_grad_norm(const std::vector<nn::Parameter*>& params,
                     float max_norm) {
  double sq = 0.0;
  for (nn::Parameter* p : params) {
    const float n = p->grad.norm();
    sq += static_cast<double>(n) * n;
  }
  const float norm = static_cast<float>(std::sqrt(sq));
  if (norm > max_norm && norm > 0.0f) {
    const float scale = max_norm / norm;
    for (nn::Parameter* p : params) p->grad.mul_(scale);
  }
  return norm;
}

}  // namespace nb::optim
