// Exponential moving average of model weights (Polyak averaging). At the
// micro training budgets this repository runs, per-step weight noise is a
// real fraction of the signal; evaluating the EMA shadow instead of the raw
// weights recovers part of what longer schedules give the paper. Usage:
//
//   EmaWeights ema(model.parameters(), 0.99f);
//   ... ema.update() after each optimizer step ...
//   ema.swap_in();   // model now holds the averaged weights
//   evaluate(model);
//   ema.swap_out();  // training weights restored
#pragma once

#include <vector>

#include "nn/module.h"

namespace nb::optim {

class EmaWeights {
 public:
  /// `decay` is the per-update retention (shadow = decay*shadow + (1-d)*w).
  EmaWeights(std::vector<nn::Parameter*> params, float decay);

  /// Folds the current weights into the shadow copy.
  void update();

  /// Exchanges model weights and shadow weights (self-inverse).
  void swap_in();
  void swap_out();
  bool swapped_in() const { return swapped_in_; }

  float decay() const { return decay_; }
  int64_t updates() const { return updates_; }

  /// Copies the shadow values over the live weights permanently (export).
  void copy_to_model();

 private:
  void swap();

  std::vector<nn::Parameter*> params_;
  std::vector<Tensor> shadow_;
  float decay_;
  int64_t updates_ = 0;
  bool swapped_in_ = false;
};

}  // namespace nb::optim
