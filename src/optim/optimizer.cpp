#include "optim/optimizer.h"

#include "optim/adam.h"
#include "optim/rmsprop.h"
#include "optim/sgd.h"

namespace nb::optim {

const char* to_string(OptimizerKind kind) {
  switch (kind) {
    case OptimizerKind::sgd:
      return "sgd";
    case OptimizerKind::adam:
      return "adam";
    case OptimizerKind::rmsprop:
      return "rmsprop";
  }
  return "?";
}

OptimizerKind optimizer_kind_from_string(const std::string& name) {
  if (name == "sgd") return OptimizerKind::sgd;
  if (name == "adam" || name == "adamw") return OptimizerKind::adam;
  if (name == "rmsprop") return OptimizerKind::rmsprop;
  NB_CHECK(false, "unknown optimizer '" + name + "'");
  return OptimizerKind::sgd;  // unreachable
}

std::unique_ptr<Optimizer> make_optimizer(OptimizerKind kind,
                                          std::vector<nn::Parameter*> params,
                                          float lr, float momentum,
                                          float weight_decay) {
  switch (kind) {
    case OptimizerKind::sgd:
      return std::make_unique<Sgd>(
          std::move(params), SgdOptions{lr, momentum, weight_decay, false});
    case OptimizerKind::adam: {
      AdamOptions opts;
      opts.lr = lr;
      opts.weight_decay = weight_decay;
      return std::make_unique<Adam>(std::move(params), opts);
    }
    case OptimizerKind::rmsprop: {
      RmsPropOptions opts;
      opts.lr = lr;
      opts.momentum = momentum;
      opts.weight_decay = weight_decay;
      return std::make_unique<RmsProp>(std::move(params), opts);
    }
  }
  NB_CHECK(false, "unhandled optimizer kind");
  return nullptr;  // unreachable
}

}  // namespace nb::optim
