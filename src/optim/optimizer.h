// Common optimizer interface. The trainer talks to this so experiments can
// swap SGD (the paper's recipe) for Adam/RMSprop via TrainConfig::optimizer
// without touching the loop; rebind() exists because NetBooster's contraction
// replaces modules mid-run and the optimizer must drop its stale state.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/module.h"

namespace nb::optim {

enum class OptimizerKind { sgd, adam, rmsprop };

const char* to_string(OptimizerKind kind);
/// Parses "sgd" | "adam" | "rmsprop" (throws on anything else).
OptimizerKind optimizer_kind_from_string(const std::string& name);

class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Applies one update from the gradients stored on the parameters.
  virtual void step() = 0;
  virtual void zero_grad() = 0;
  virtual float lr() const = 0;
  virtual void set_lr(float lr) = 0;
  /// Re-binds to a new parameter set; internal state resets.
  virtual void rebind(std::vector<nn::Parameter*> params) = 0;
  virtual std::string name() const = 0;
};

/// Builds an optimizer of the given kind. `lr` overrides the kind's default;
/// momentum/weight_decay map onto each algorithm's equivalent knob.
std::unique_ptr<Optimizer> make_optimizer(OptimizerKind kind,
                                          std::vector<nn::Parameter*> params,
                                          float lr, float momentum,
                                          float weight_decay);

}  // namespace nb::optim
