// SGD with momentum and decoupled-from-BN weight decay, the optimizer used
// for every experiment in the paper (ImageNet recipe: SGD, momentum, cosine
// annealing).
#pragma once

#include <vector>

#include "nn/module.h"
#include "optim/optimizer.h"

namespace nb::optim {

struct SgdOptions {
  float lr = 0.1f;
  float momentum = 0.9f;
  float weight_decay = 0.0f;
  bool nesterov = false;
};

class Sgd : public Optimizer {
 public:
  Sgd(std::vector<nn::Parameter*> params, const SgdOptions& opts);

  /// Applies one update using the gradients currently stored on the params.
  void step() override;
  void zero_grad() override;

  float lr() const override { return opts_.lr; }
  void set_lr(float lr) override { opts_.lr = lr; }
  const SgdOptions& options() const { return opts_; }
  std::string name() const override { return "sgd"; }

  /// Re-binds the optimizer to a new parameter set (used after model surgery
  /// such as contraction, which replaces modules). Momentum state resets.
  void rebind(std::vector<nn::Parameter*> params) override;

 private:
  std::vector<nn::Parameter*> params_;
  std::vector<Tensor> velocity_;
  SgdOptions opts_;
};

/// Rescales all gradients so their global L2 norm is at most `max_norm`;
/// returns the pre-clip norm.
float clip_grad_norm(const std::vector<nn::Parameter*>& params,
                     float max_norm);

}  // namespace nb::optim
