#include "optim/lr_schedule.h"

#include <cmath>

#include "tensor/tensor.h"

namespace nb::optim {

CosineLr::CosineLr(float base_lr, int64_t total_steps, float min_lr,
                   int64_t warmup_steps)
    : base_lr_(base_lr),
      min_lr_(min_lr),
      total_steps_(total_steps),
      warmup_steps_(warmup_steps) {
  NB_CHECK(total_steps > 0, "CosineLr total_steps must be positive");
  NB_CHECK(warmup_steps >= 0 && warmup_steps < total_steps,
           "CosineLr warmup_steps out of range");
}

float CosineLr::lr_at(int64_t step) const {
  if (step < warmup_steps_) {
    return base_lr_ * static_cast<float>(step + 1) /
           static_cast<float>(warmup_steps_);
  }
  const float progress =
      static_cast<float>(step - warmup_steps_) /
      static_cast<float>(total_steps_ - warmup_steps_);
  const float clipped = progress > 1.0f ? 1.0f : progress;
  const float pi = 3.14159265358979323846f;
  return min_lr_ + 0.5f * (base_lr_ - min_lr_) * (1.0f + std::cos(pi * clipped));
}

StepLr::StepLr(float base_lr, int64_t step_every, float gamma)
    : base_lr_(base_lr), step_every_(step_every), gamma_(gamma) {
  NB_CHECK(step_every > 0, "StepLr step_every must be positive");
}

float StepLr::lr_at(int64_t step) const {
  const int64_t drops = step / step_every_;
  return base_lr_ *
         static_cast<float>(std::pow(static_cast<double>(gamma_),
                                     static_cast<double>(drops)));
}

}  // namespace nb::optim
