#include "optim/ema.h"

#include <algorithm>

namespace nb::optim {

EmaWeights::EmaWeights(std::vector<nn::Parameter*> params, float decay)
    : params_(std::move(params)), decay_(decay) {
  NB_CHECK(decay_ >= 0.0f && decay_ < 1.0f, "ema: decay must be in [0, 1)");
  shadow_.reserve(params_.size());
  for (nn::Parameter* p : params_) {
    shadow_.push_back(p->value.clone());
  }
}

void EmaWeights::update() {
  NB_CHECK(!swapped_in_, "ema: update() while shadow weights are swapped in");
  ++updates_;
  // Warm-up correction: early on the shadow is dominated by the random init,
  // so use the min of the configured decay and (1+t)/(10+t) (timm's rule).
  const float t = static_cast<float>(updates_);
  const float d = std::min(decay_, (1.0f + t) / (10.0f + t));
  for (size_t i = 0; i < params_.size(); ++i) {
    float* s = shadow_[i].data();
    const float* w = params_[i]->value.data();
    const int64_t n = shadow_[i].numel();
    for (int64_t j = 0; j < n; ++j) {
      s[j] = d * s[j] + (1.0f - d) * w[j];
    }
  }
}

void EmaWeights::swap() {
  for (size_t i = 0; i < params_.size(); ++i) {
    float* s = shadow_[i].data();
    float* w = params_[i]->value.data();
    const int64_t n = shadow_[i].numel();
    for (int64_t j = 0; j < n; ++j) {
      std::swap(s[j], w[j]);
    }
  }
}

void EmaWeights::swap_in() {
  NB_CHECK(!swapped_in_, "ema: swap_in() twice");
  swap();
  swapped_in_ = true;
}

void EmaWeights::swap_out() {
  NB_CHECK(swapped_in_, "ema: swap_out() without swap_in()");
  swap();
  swapped_in_ = false;
}

void EmaWeights::copy_to_model() {
  NB_CHECK(!swapped_in_, "ema: copy_to_model() while swapped in");
  for (size_t i = 0; i < params_.size(); ++i) {
    params_[i]->value.copy_from(shadow_[i]);
  }
}

}  // namespace nb::optim
