// Light train-time augmentation applied by the DataLoader: horizontal flip
// and pad-and-crop shift. The paper's point (Fig. 1a) is that *heavy*
// augmentation/regularization hurts TNNs, so the default recipe keeps this
// mild; DropBlock is a separate layer used only in the Fig. 1a bench.
#pragma once

#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace nb::data {

/// Mirrors a [C, H, W] image left-right in place.
void hflip_(Tensor& chw);

/// Shifts by (dy, dx) pixels with zero fill, in place.
void shift_(Tensor& chw, int64_t dy, int64_t dx);

/// Zeroes a random square of side `size` (cutout), in place.
void cutout_(Tensor& chw, int64_t size, Rng& rng);

/// Standard train-time policy: 50% flip, shift in [-max_shift, max_shift].
void augment_standard_(Tensor& chw, Rng& rng, int64_t max_shift = 2);

}  // namespace nb::data
