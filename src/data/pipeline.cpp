#include "data/pipeline.h"

#include <algorithm>
#include <chrono>
#include <numeric>

#include "data/sample_rng.h"

namespace nb::data {

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

PipelineLoader::PipelineLoader(const ClassificationDataset& dataset,
                               const LoaderOptions& opts)
    : dataset_(dataset),
      opts_(opts),
      epoch_batches_total_((dataset.size() + opts.batch_size - 1) /
                           opts.batch_size),
      order_rng_(opts.seed, 5) {
  NB_CHECK(opts_.batch_size > 0, "batch size must be positive");
  NB_CHECK(opts_.workers > 0, "PipelineLoader needs at least one worker");
  NB_CHECK(opts_.buffers > 0, "PipelineLoader needs at least one buffer");
  {
    // Guarded members are populated under the lock BEFORE any thread is
    // spawned (the Engine ctor once raced exactly this initialization).
    MutexLock lock(mu_);
    order_.resize(static_cast<size_t>(dataset.size()));
    std::iota(order_.begin(), order_.end(), 0);
    slots_.resize(static_cast<size_t>(opts_.buffers));
    for (int32_t i = 0; i < static_cast<int32_t>(slots_.size()); ++i) {
      free_slots_.push_back(i);
    }
  }
  reader_ = std::thread(&PipelineLoader::reader_loop, this);
  pool_.reserve(static_cast<size_t>(opts_.workers));
  for (int64_t w = 0; w < opts_.workers; ++w) {
    pool_.emplace_back(&PipelineLoader::worker_loop, this);
  }
}

PipelineLoader::~PipelineLoader() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
    tickets_.clear();
    ticket_cv_.notify_all();
    free_cv_.notify_all();
    ready_cv_.notify_all();
  }
  reader_.join();
  for (std::thread& t : pool_) t.join();
}

int64_t PipelineLoader::num_batches() const { return epoch_batches_total_; }

void PipelineLoader::rethrow_error() {
  std::exception_ptr err = error_;
  std::rethrow_exception(err);
}

void PipelineLoader::quiesce() {
  // Invalidate the in-flight epoch: pending tickets are dropped, in-flight
  // decodes land against a dead generation (their slot writes are harmless
  // — the slot is only reused after they finish), and the reader parks.
  ++generation_;
  epoch_active_ = false;
  tickets_.clear();
  free_cv_.notify_all();
  while (!reader_idle_ || inflight_ > 0) idle_cv_.wait(mu_);
  free_slots_.clear();
  for (int32_t i = 0; i < static_cast<int32_t>(slots_.size()); ++i) {
    Slot& slot = slots_[static_cast<size_t>(i)];
    slot.seq = -1;
    slot.count = 0;
    slot.remaining = 0;
    slot.ready = false;
    slot.in_use = false;
    free_slots_.push_back(i);
  }
}

void PipelineLoader::start_epoch() {
  MutexLock lock(mu_);
  if (error_) rethrow_error();
  quiesce();
  ++epoch_;
  if (opts_.shuffle) order_rng_.shuffle(order_);
  epoch_seed_ = derive_epoch_seed(opts_.seed, epoch_);
  produce_seq_ = 0;
  delivered_ = 0;
  next_deliver_seq_ = 0;
  epoch_active_ = true;
  ++stats_.epochs_started;
  if (first_epoch_start_s_ < 0.0) first_epoch_start_s_ = now_s();
  free_cv_.notify_all();  // wake the parked reader
}

bool PipelineLoader::next(Batch& out) {
  MutexLock lock(mu_);
  if (error_) rethrow_error();
  if (!epoch_active_ || delivered_ >= epoch_batches_total_) return false;

  // Wait for the batch to deliver: in deterministic mode the slot carrying
  // exactly seq == next_deliver_seq_, otherwise any ready slot (lowest seq
  // among the ready ones, to keep the sequence nearly sorted).
  const uint64_t gen = generation_;
  int32_t found = -1;
  const double wait_start = now_s();
  for (;;) {
    if (error_) {
      stats_.consumer_stall_ms += 1e3 * (now_s() - wait_start);
      rethrow_error();
    }
    int64_t best_seq = -1;
    for (int32_t i = 0; i < static_cast<int32_t>(slots_.size()); ++i) {
      const Slot& slot = slots_[static_cast<size_t>(i)];
      if (!slot.ready || slot.generation != gen) continue;
      if (opts_.deterministic) {
        if (slot.seq == next_deliver_seq_) {
          found = i;
          break;
        }
      } else if (best_seq < 0 || slot.seq < best_seq) {
        best_seq = slot.seq;
        found = i;
      }
    }
    if (found >= 0) break;
    ready_cv_.wait(mu_);
  }
  stats_.consumer_stall_ms += 1e3 * (now_s() - wait_start);

  Slot& slot = slots_[static_cast<size_t>(found)];
  std::swap(out.images, slot.batch.images);
  out.labels.swap(slot.batch.labels);
  out.labels_b.swap(slot.batch.labels_b);
  out.mix_lam = slot.batch.mix_lam;
  slot.seq = -1;
  slot.ready = false;
  slot.in_use = false;
  free_slots_.push_back(found);
  free_cv_.notify_all();

  ++delivered_;
  ++next_deliver_seq_;
  ++stats_.batches_delivered;
  if (first_epoch_start_s_ >= 0.0) {
    const double elapsed = now_s() - first_epoch_start_s_;
    if (elapsed > 0.0) {
      stats_.batches_per_s =
          static_cast<double>(stats_.batches_delivered) / elapsed;
    }
  }
  if (delivered_ >= epoch_batches_total_) epoch_active_ = false;
  return true;
}

PipelineStats PipelineLoader::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

void PipelineLoader::reader_loop() {
  mu_.lock();
  while (!shutdown_) {
    if (!epoch_active_ || produce_seq_ >= epoch_batches_total_ ||
        error_ != nullptr) {
      reader_idle_ = true;
      idle_cv_.notify_all();
      free_cv_.wait(mu_);
      continue;
    }
    reader_idle_ = false;

    // Claim a free batch slot — this wait IS the backpressure: with every
    // buffer in flight the reader (and thus ticket production) stalls.
    const uint64_t gen = generation_;
    const double wait_start = now_s();
    while (!shutdown_ && generation_ == gen && free_slots_.empty()) {
      free_cv_.wait(mu_);
    }
    stats_.reader_stall_ms += 1e3 * (now_s() - wait_start);
    if (shutdown_ || generation_ != gen) continue;

    const int32_t sid = free_slots_.front();
    free_slots_.pop_front();
    Slot& slot = slots_[static_cast<size_t>(sid)];
    const int64_t seq = produce_seq_++;
    const int64_t base = seq * opts_.batch_size;
    const int64_t count = std::min(opts_.batch_size, dataset_.size() - base);
    slot.seq = seq;
    slot.count = count;
    slot.remaining = count;
    slot.generation = gen;
    slot.ready = false;
    slot.in_use = true;
    const uint64_t seed = epoch_seed_;

    // Size the buffer outside the lock (the slot is exclusively ours until
    // its tickets exist): (re)allocation only actually happens for the
    // first `buffers` batches and the partial tail — steady-state swaps
    // recycle the consumer's previous full-size tensor.
    mu_.unlock();
    const int64_t c = dataset_.channels();
    const int64_t r = dataset_.resolution();
    if (slot.batch.images.dim() != 4 || slot.batch.images.size(0) != count ||
        slot.batch.images.size(1) != c || slot.batch.images.size(2) != r ||
        slot.batch.images.size(3) != r) {
      slot.batch.images = Tensor({count, c, r, r});
    }
    slot.batch.labels.assign(static_cast<size_t>(count), 0);
    slot.batch.labels_b.clear();
    slot.batch.mix_lam = 1.0f;
    mu_.lock();

    if (shutdown_ || generation_ != gen) {
      // Epoch cancelled while sizing: hand the slot back and park.
      slot.seq = -1;
      slot.remaining = 0;
      slot.in_use = false;
      free_slots_.push_back(sid);
      continue;
    }
    for (int64_t i = 0; i < count; ++i) {
      Ticket ticket;
      ticket.slot = sid;
      ticket.pos = static_cast<int32_t>(i);
      ticket.idx = order_[static_cast<size_t>(base + i)];
      ticket.epoch_seed = seed;
      ticket.generation = gen;
      tickets_.push_back(ticket);
    }
    stats_.max_ticket_depth = std::max(
        stats_.max_ticket_depth, static_cast<int64_t>(tickets_.size()));
    ticket_cv_.notify_all();
  }
  reader_idle_ = true;
  idle_cv_.notify_all();
  mu_.unlock();
}

void PipelineLoader::decode_ticket(const Ticket& ticket, float* dst,
                                   int64_t* label_dst) {
  Tensor img = dataset_.image(ticket.idx);
  if (opts_.augment) {
    Rng sample_rng = make_sample_rng(ticket.epoch_seed, ticket.idx);
    augment_standard_(img, sample_rng);
  }
  std::copy(img.data(), img.data() + img.numel(), dst);
  *label_dst = dataset_.label(ticket.idx);
}

void PipelineLoader::worker_loop() {
  mu_.lock();
  for (;;) {
    const double wait_start = now_s();
    while (!shutdown_ && tickets_.empty()) ticket_cv_.wait(mu_);
    stats_.worker_stall_ms += 1e3 * (now_s() - wait_start);
    if (shutdown_) break;

    const Ticket ticket = tickets_.front();
    tickets_.pop_front();
    ++inflight_;
    Slot& slot = slots_[static_cast<size_t>(ticket.slot)];
    // The slice pointers stay valid while we are in flight: the slot's
    // tensor is never reallocated before quiesce(), and quiesce() waits
    // for inflight_ == 0.
    float* dst =
        slot.batch.images.data() +
        ticket.pos * (slot.batch.images.numel() / std::max<int64_t>(
                                                      slot.count, 1));
    int64_t* label_dst = slot.batch.labels.data() + ticket.pos;
    mu_.unlock();

    std::exception_ptr err;
    try {
      decode_ticket(ticket, dst, label_dst);
    } catch (...) {
      err = std::current_exception();
    }

    mu_.lock();
    if (err != nullptr) {
      if (error_ == nullptr) error_ = err;
      ready_cv_.notify_all();
    } else if (ticket.generation == generation_) {
      ++stats_.samples_decoded;
      Slot& done = slots_[static_cast<size_t>(ticket.slot)];
      if (--done.remaining == 0) {
        bool publish = true;
        if (opts_.mix.enabled()) {
          // Batch complete — the finishing worker applies the batch-level
          // mix here, in the pool, so the consumer never augments. The
          // slot is exclusively ours (remaining == 0, not yet ready) and
          // quiesce() waits on our inflight_ hold, so working unlocked on
          // the retained reference is safe.
          mu_.unlock();
          Rng batch_rng = make_batch_rng(ticket.epoch_seed, done.seq);
          std::exception_ptr mix_err;
          try {
            apply_batch_mix(done.batch, opts_.mix, batch_rng);
          } catch (...) {
            mix_err = std::current_exception();
          }
          mu_.lock();
          if (mix_err != nullptr) {
            if (error_ == nullptr) error_ = mix_err;
            ready_cv_.notify_all();
            publish = false;
          }
          if (ticket.generation != generation_) publish = false;
        }
        if (publish) {
          done.ready = true;
          ready_cv_.notify_all();
        }
      }
    }
    --inflight_;
    if (inflight_ == 0) idle_cv_.notify_all();
  }
  mu_.unlock();
}

}  // namespace nb::data
