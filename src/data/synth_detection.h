// Synthetic detection dataset standing in for Pascal VOC (Table III):
// images contain 1..3 textured shapes on a textured background; ground truth
// is the normalized bounding box and the shape class.
#pragma once

#include "data/dataset.h"
#include "data/synth_classification.h"
#include "tensor/rng.h"

namespace nb::data {

struct DetectionConfig {
  std::string name = "synth-voc";
  int64_t num_images = 300;
  int64_t num_classes = 4;
  int64_t resolution = 32;
  int64_t max_objects = 3;
  uint64_t seed = 5;
};

class SynthDetection : public DetectionDataset {
 public:
  SynthDetection(const DetectionConfig& config, const std::string& split);

  int64_t size() const override { return static_cast<int64_t>(boxes_.size()); }
  int64_t num_classes() const override { return config_.num_classes; }
  int64_t resolution() const override { return config_.resolution; }
  Tensor image(int64_t idx) const override;
  const std::vector<GtBox>& boxes(int64_t idx) const override;
  std::string name() const override { return config_.name + "/" + split_; }

 private:
  DetectionConfig config_;
  std::string split_;
  Tensor images_;
  std::vector<std::vector<GtBox>> boxes_;
};

}  // namespace nb::data
