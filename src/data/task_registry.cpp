#include "data/task_registry.h"

#include <algorithm>
#include <cmath>

namespace nb::data {

namespace {

SynthConfig base_config_for(const std::string& name, uint64_t seed) {
  SynthConfig c;
  c.name = name;
  c.seed = seed;
  if (name == "synth-imagenet") {
    // The pretrain corpus: many coarse classes, heavy nuisance -> tiny models
    // under-fit it, which is the regime Constraint 1 is about. Nuisance 1.4
    // is calibrated so MobileNetV2-Tiny saturates ~12 points below a 3x
    // wider model at equal budget (the capacity-bound regime the paper's
    // claims live in).
    c.num_classes = 24;
    c.train_per_class = 90;
    c.test_per_class = 25;
    c.resolution = 24;
    c.fine_grained = 0.0f;
    c.vocab_offset = 0;
    c.nuisance = 1.4f;
  } else if (name == "cifar") {
    c.num_classes = 16;
    c.train_per_class = 60;
    c.test_per_class = 25;
    c.resolution = 24;
    c.fine_grained = 0.0f;
    c.vocab_offset = 5;
    c.nuisance = 0.9f;
  } else if (name == "cars") {
    // Fine-grained: classes share shape/background, differ in small texture
    // detail. Transfer quality matters most here (paper: +4.75%).
    c.num_classes = 12;
    c.train_per_class = 40;
    c.test_per_class = 25;
    c.resolution = 24;
    c.fine_grained = 1.0f;
    c.vocab_offset = 1;
    c.nuisance = 0.8f;
  } else if (name == "flowers") {
    // Nearly saturated task (paper vanilla already at 90%).
    c.num_classes = 8;
    c.train_per_class = 50;
    c.test_per_class = 25;
    c.resolution = 24;
    c.fine_grained = 0.0f;
    c.vocab_offset = 9;
    c.nuisance = 0.5f;
  } else if (name == "food") {
    c.num_classes = 14;
    c.train_per_class = 50;
    c.test_per_class = 25;
    c.resolution = 24;
    c.fine_grained = 0.0f;
    c.vocab_offset = 13;
    c.nuisance = 0.85f;
  } else if (name == "pets") {
    c.num_classes = 10;
    c.train_per_class = 45;
    c.test_per_class = 25;
    c.resolution = 24;
    c.fine_grained = 1.0f;
    c.vocab_offset = 21;
    c.nuisance = 0.7f;
  } else {
    NB_CHECK(false, "unknown task: " + name);
  }
  return c;
}

}  // namespace

ClassificationTask make_task(const std::string& name, int64_t resolution,
                             float scale, uint64_t seed) {
  NB_CHECK(scale > 0.0f && scale <= 1.0f, "task scale in (0, 1]");
  SynthConfig c = base_config_for(name, seed);
  if (resolution > 0) c.resolution = resolution;
  c.train_per_class = std::max<int64_t>(
      4, static_cast<int64_t>(std::lround(c.train_per_class * scale)));
  c.test_per_class = std::max<int64_t>(
      4, static_cast<int64_t>(std::lround(c.test_per_class * scale)));

  ClassificationTask task;
  task.name = name;
  task.train = std::make_shared<SynthClassification>(c, "train");
  task.test = std::make_shared<SynthClassification>(c, "test");
  task.num_classes = c.num_classes;
  return task;
}

const std::vector<std::string>& downstream_task_names() {
  static const std::vector<std::string> names = {"cifar", "cars", "flowers",
                                                 "food", "pets"};
  return names;
}

int64_t scaled_resolution(int64_t paper_resolution) {
  // Paper ladder: 144 / 160 / 176 / 224  ->  20 / 24 / 26 / 32 pixels.
  if (paper_resolution <= 144) return 20;
  if (paper_resolution <= 160) return 24;
  if (paper_resolution <= 176) return 26;
  return 32;
}

}  // namespace nb::data
