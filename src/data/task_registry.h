// Named dataset presets mirroring the paper's seven datasets: the pretrain
// corpus ("synth-imagenet") and five downstream classification tasks whose
// difficulty profile follows the paper's Table II (fine-grained "cars" shows
// the largest transfer gains; "flowers" is nearly saturated), plus the
// detection task. Train/test pairs share latent class tables.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "data/synth_classification.h"

namespace nb::data {

struct ClassificationTask {
  std::string name;
  std::shared_ptr<SynthClassification> train;
  std::shared_ptr<SynthClassification> test;
  int64_t num_classes = 0;
};

/// Names: "synth-imagenet", "cifar", "cars", "flowers", "food", "pets".
/// `resolution` scales the paper's input-resolution knob (e.g. paper r=144 ->
/// 20 px, r=160 -> 24 px, r=224 -> 32 px here); pass 0 for the task default.
/// `scale` in (0, 1] shrinks sample counts for fast test runs.
ClassificationTask make_task(const std::string& name, int64_t resolution = 0,
                             float scale = 1.0f, uint64_t seed = 1);

/// All five downstream task names in Table II order.
const std::vector<std::string>& downstream_task_names();

/// Maps a paper resolution (e.g. 144/160/176/224) to this repo's pixel
/// budget, keeping the relative ladder of the paper's configurations.
int64_t scaled_resolution(int64_t paper_resolution);

}  // namespace nb::data
