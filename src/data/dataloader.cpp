#include "data/dataloader.h"

#include <numeric>

#include "data/mix_augment.h"
#include "data/pipeline.h"
#include "data/sample_rng.h"

namespace nb::data {

void apply_batch_mix(Batch& batch, const MixPolicy& policy, Rng& rng) {
  batch.labels_b.clear();
  batch.mix_lam = 1.0f;
  if (!policy.enabled()) return;
  const bool have_both = policy.mixup_alpha > 0.0f && policy.cutmix_alpha > 0.0f;
  const bool use_cutmix =
      policy.cutmix_alpha > 0.0f && (!have_both || rng.bernoulli(0.5f));
  const MixResult mix =
      use_cutmix
          ? cutmix_batch(batch.images, batch.labels, policy.cutmix_alpha, rng)
          : mixup_batch(batch.images, batch.labels, policy.mixup_alpha, rng);
  batch.labels_b = mix.labels_b;
  batch.mix_lam = mix.lam;
}

DataLoader::DataLoader(const ClassificationDataset& dataset,
                       int64_t batch_size, bool shuffle, bool augment,
                       uint64_t seed)
    : dataset_(dataset),
      batch_size_(batch_size),
      shuffle_(shuffle),
      augment_(augment),
      base_seed_(seed),
      order_rng_(seed, 5),
      order_(static_cast<size_t>(dataset.size())) {
  NB_CHECK(batch_size > 0, "batch size must be positive");
  std::iota(order_.begin(), order_.end(), 0);
}

DataLoader::DataLoader(const ClassificationDataset& dataset,
                       const LoaderOptions& opts)
    : DataLoader(dataset, opts.batch_size, opts.shuffle, opts.augment,
                 opts.seed) {
  mix_ = opts.mix;
}

int64_t DataLoader::num_batches() const {
  return (dataset_.size() + batch_size_ - 1) / batch_size_;
}

void DataLoader::start_epoch() {
  if (shuffle_) order_rng_.shuffle(order_);
  cursor_ = 0;
  ++epoch_;
  // All augmentation randomness this epoch derives from (epoch_seed_,
  // sample identity) — never from draw order — so the parallel pipeline
  // can reproduce it exactly (see data/sample_rng.h).
  epoch_seed_ = derive_epoch_seed(base_seed_, epoch_);
}

bool DataLoader::next(Batch& out) {
  if (cursor_ >= dataset_.size()) return false;
  const int64_t n = std::min(batch_size_, dataset_.size() - cursor_);
  const int64_t c = dataset_.channels();
  const int64_t r = dataset_.resolution();
  out.images = Tensor({n, c, r, r});
  out.labels.resize(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    const int64_t idx = order_[static_cast<size_t>(cursor_ + i)];
    Tensor img = dataset_.image(idx);
    if (augment_) {
      Rng sample_rng = make_sample_rng(epoch_seed_, idx);
      augment_standard_(img, sample_rng);
    }
    std::copy(img.data(), img.data() + img.numel(),
              out.images.data() + i * img.numel());
    out.labels[static_cast<size_t>(i)] = dataset_.label(idx);
  }
  const int64_t batch_index = cursor_ / batch_size_;
  cursor_ += n;
  Rng batch_rng = make_batch_rng(epoch_seed_, batch_index);
  apply_batch_mix(out, mix_, batch_rng);
  return true;
}

std::unique_ptr<BatchSource> make_loader(const ClassificationDataset& dataset,
                                         const LoaderOptions& opts) {
  if (opts.workers > 0) {
    return std::make_unique<PipelineLoader>(dataset, opts);
  }
  return std::make_unique<DataLoader>(dataset, opts);
}

}  // namespace nb::data
