#include "data/dataloader.h"

#include <numeric>

namespace nb::data {

DataLoader::DataLoader(const ClassificationDataset& dataset,
                       int64_t batch_size, bool shuffle, bool augment,
                       uint64_t seed)
    : dataset_(dataset),
      batch_size_(batch_size),
      shuffle_(shuffle),
      augment_(augment),
      rng_(seed, 5),
      order_(static_cast<size_t>(dataset.size())) {
  NB_CHECK(batch_size > 0, "batch size must be positive");
  std::iota(order_.begin(), order_.end(), 0);
}

int64_t DataLoader::num_batches() const {
  return (dataset_.size() + batch_size_ - 1) / batch_size_;
}

void DataLoader::start_epoch() {
  if (shuffle_) rng_.shuffle(order_);
  cursor_ = 0;
}

bool DataLoader::next(Batch& out) {
  if (cursor_ >= dataset_.size()) return false;
  const int64_t n = std::min(batch_size_, dataset_.size() - cursor_);
  const int64_t c = dataset_.channels();
  const int64_t r = dataset_.resolution();
  out.images = Tensor({n, c, r, r});
  out.labels.resize(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    const int64_t idx = order_[static_cast<size_t>(cursor_ + i)];
    Tensor img = dataset_.image(idx);
    if (augment_) augment_standard_(img, rng_);
    std::copy(img.data(), img.data() + img.numel(),
              out.images.data() + i * img.numel());
    out.labels[static_cast<size_t>(i)] = dataset_.label(idx);
  }
  cursor_ += n;
  return true;
}

Batch full_batch(const ClassificationDataset& dataset) {
  const int64_t n = dataset.size();
  const int64_t c = dataset.channels();
  const int64_t r = dataset.resolution();
  Batch b;
  b.images = Tensor({n, c, r, r});
  b.labels.resize(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    const Tensor img = dataset.image(i);
    std::copy(img.data(), img.data() + img.numel(),
              b.images.data() + i * img.numel());
    b.labels[static_cast<size_t>(i)] = dataset.label(i);
  }
  return b;
}

}  // namespace nb::data
