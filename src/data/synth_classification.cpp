#include "data/synth_classification.h"

#include <cmath>

namespace nb::data {

namespace {

constexpr float kPi = 3.14159265358979323846f;

/// Texture intensity in [-1, 1] at rotated coordinates.
float texture_value(TextureFamily family, float freq, float theta, float u,
                    float v, float phase) {
  const float c = std::cos(theta), s = std::sin(theta);
  const float ru = c * u + s * v;
  const float rv = -s * u + c * v;
  switch (family) {
    case TextureFamily::grating:
      return std::sin(2.0f * kPi * freq * ru + phase);
    case TextureFamily::checker: {
      const float a = std::sin(2.0f * kPi * freq * ru + phase);
      const float b = std::sin(2.0f * kPi * freq * rv + phase * 0.5f);
      return a * b > 0.0f ? 1.0f : -1.0f;
    }
    case TextureFamily::radial: {
      const float r = std::sqrt(ru * ru + rv * rv);
      const float ang = std::atan2(rv, ru);
      return std::sin(2.0f * kPi * freq * r + phase) *
             std::cos(freq * ang);
    }
    case TextureFamily::blob: {
      const float a = std::sin(2.0f * kPi * freq * ru + phase);
      const float b = std::sin(2.0f * kPi * freq * 0.73f * rv + 1.3f * phase);
      const float m = 0.5f * (a + b);
      return std::tanh(2.5f * m);
    }
  }
  return 0.0f;
}

/// Signed membership of a point in a shape centered at the origin with unit
/// nominal radius; > 0 means inside.
float shape_mask(ShapeKind shape, float u, float v) {
  switch (shape) {
    case ShapeKind::disc:
      return 1.0f - (u * u + v * v);
    case ShapeKind::square:
      return 1.0f - std::max(std::fabs(u), std::fabs(v));
    case ShapeKind::triangle: {
      // Upward triangle: inside when below the two slanted edges and above
      // the base.
      const float base = v + 0.8f;
      const float left = 0.9f - (-u * 1.6f + v);
      const float right = 0.9f - (u * 1.6f + v);
      return std::min(base, std::min(left, right));
    }
    case ShapeKind::annulus: {
      const float r = std::sqrt(u * u + v * v);
      return 0.35f - std::fabs(r - 0.65f);
    }
    case ShapeKind::cross: {
      const float arm_h = 0.35f - std::fabs(v);
      const float arm_v = 0.35f - std::fabs(u);
      const float in_h = std::min(arm_h, 1.0f - std::fabs(u));
      const float in_v = std::min(arm_v, 1.0f - std::fabs(v));
      return std::max(in_h, in_v);
    }
    case ShapeKind::stripe:
      return 0.3f - std::fabs(u + 0.4f * v);
  }
  return -1.0f;
}

}  // namespace

std::vector<ClassSpec> SynthClassification::build_class_table(
    const SynthConfig& config) {
  std::vector<ClassSpec> table;
  table.reserve(static_cast<size_t>(config.num_classes));
  // One deterministic RNG drives the whole table so tasks with the same seed
  // and offset agree exactly across train/test splits.
  Rng rng(config.seed * 0x9e3779b97f4a7c15ULL + 17, 3);

  // Fine-grained tasks share a single shape/background and separate classes
  // only by small frequency / orientation increments of the foreground
  // texture; coarse tasks vary every factor.
  ClassSpec shared;
  shared.bg_family = static_cast<TextureFamily>((config.vocab_offset + 1) % 4);
  shared.bg_freq = 1.5f + 0.5f * rng.uniform();
  shared.bg_theta = rng.uniform(0.0f, kPi);
  shared.shape = static_cast<ShapeKind>((config.vocab_offset + 2) % 6);
  shared.fg_family = static_cast<TextureFamily>(config.vocab_offset % 4);

  for (int64_t c = 0; c < config.num_classes; ++c) {
    ClassSpec spec;
    const int64_t key = c + config.vocab_offset;
    if (config.fine_grained >= 0.5f) {
      spec = shared;
      // Classes are adjacent points in (frequency, orientation) space.
      spec.fg_freq = 2.0f + 0.28f * static_cast<float>(c % 8);
      spec.fg_theta = 0.19f * static_cast<float>(c / 8);
      spec.palette[0] = 0.8f + 0.2f * rng.uniform();
      spec.palette[1] = 0.8f + 0.2f * rng.uniform();
      spec.palette[2] = 0.8f + 0.2f * rng.uniform();
    } else {
      spec.bg_family = static_cast<TextureFamily>(key % 4);
      spec.bg_freq = 1.2f + 0.45f * static_cast<float>((key / 4) % 3);
      spec.bg_theta = 0.35f * static_cast<float>(key % 5);
      spec.shape = static_cast<ShapeKind>((key / 2) % 6);
      spec.fg_family = static_cast<TextureFamily>((key + 2) % 4);
      spec.fg_freq = 2.2f + 0.4f * static_cast<float>(key % 4);
      spec.fg_theta = 0.5f * static_cast<float>((key / 3) % 4);
      spec.palette[0] = 0.55f + 0.45f * rng.uniform();
      spec.palette[1] = 0.55f + 0.45f * rng.uniform();
      spec.palette[2] = 0.55f + 0.45f * rng.uniform();
      spec.has_accent = (key % 3) == 0;
      spec.accent_shape = static_cast<ShapeKind>((key + 3) % 6);
    }
    table.push_back(spec);
  }
  return table;
}

Tensor SynthClassification::render_sample(const ClassSpec& spec,
                                          int64_t resolution, float nuisance,
                                          Rng& rng) {
  const int64_t r = resolution;
  Tensor img({3, r, r});

  // Per-sample nuisance parameters.
  const float dx = nuisance * rng.uniform(-0.25f, 0.25f);
  const float dy = nuisance * rng.uniform(-0.25f, 0.25f);
  const float scale = 1.0f + nuisance * rng.uniform(-0.2f, 0.2f);
  const float bg_phase = nuisance * rng.uniform(0.0f, 2.0f * kPi);
  const float fg_phase = nuisance * rng.uniform(0.0f, 2.0f * kPi);
  const float brightness = nuisance * rng.uniform(-0.15f, 0.15f);
  const bool flip = nuisance > 0.0f && rng.bernoulli(0.5f);
  const float noise_sigma = 0.08f * nuisance;
  const float ax = nuisance * rng.uniform(-0.3f, 0.3f);
  const float ay = nuisance * rng.uniform(-0.3f, 0.3f);

  for (int64_t y = 0; y < r; ++y) {
    for (int64_t x = 0; x < r; ++x) {
      const int64_t px = flip ? (r - 1 - x) : x;
      const float u = 2.0f * static_cast<float>(px) / static_cast<float>(r - 1) - 1.0f;
      const float v = 2.0f * static_cast<float>(y) / static_cast<float>(r - 1) - 1.0f;

      const float bg =
          texture_value(spec.bg_family, spec.bg_freq, spec.bg_theta, u, v, bg_phase);

      // Foreground shape occupies ~55% of the frame, jittered.
      const float su = (u - dx) / (0.55f * scale);
      const float sv = (v - dy) / (0.55f * scale);
      const bool inside = shape_mask(spec.shape, su, sv) > 0.0f;

      float fg = 0.0f;
      if (inside) {
        fg = texture_value(spec.fg_family, spec.fg_freq, spec.fg_theta, su, sv,
                           fg_phase);
      }
      bool accent = false;
      if (spec.has_accent) {
        const float au = (u - 0.55f - 0.3f * ax) / 0.18f;
        const float av = (v + 0.55f - 0.3f * ay) / 0.18f;
        accent = shape_mask(spec.accent_shape, au, av) > 0.0f;
      }

      for (int64_t ch = 0; ch < 3; ++ch) {
        float val = 0.35f * bg;
        if (inside) {
          val = 0.15f * bg + 0.75f * fg * spec.palette[ch];
        }
        if (accent) val = (ch == 0) ? 0.9f : -0.6f;
        val += brightness;
        if (noise_sigma > 0.0f) val += rng.normal(0.0f, noise_sigma);
        img.at(ch, y, x) = val;
      }
    }
  }
  return img;
}

SynthClassification::SynthClassification(const SynthConfig& config,
                                         const std::string& split)
    : config_(config), split_(split) {
  NB_CHECK(split == "train" || split == "test", "split must be train|test");
  NB_CHECK(config.num_classes > 1, "need at least two classes");
  NB_CHECK(config.resolution >= 8, "resolution too small");
  class_table_ = build_class_table(config);

  const int64_t per_class =
      split == "train" ? config.train_per_class : config.test_per_class;
  const int64_t n = per_class * config.num_classes;
  images_ = Tensor({n, 3, config.resolution, config.resolution});
  labels_.resize(static_cast<size_t>(n));

  // Train and test draw from disjoint RNG streams of the same generator.
  const uint64_t stream = split == "train" ? 101 : 202;
  int64_t idx = 0;
  for (int64_t c = 0; c < config.num_classes; ++c) {
    Rng rng(config.seed * 1315423911ULL + static_cast<uint64_t>(c) * 2654435761ULL,
            stream);
    for (int64_t i = 0; i < per_class; ++i, ++idx) {
      const Tensor img = render_sample(class_table_[static_cast<size_t>(c)],
                                       config.resolution, config.nuisance, rng);
      std::copy(img.data(), img.data() + img.numel(),
                images_.data() + idx * img.numel());
      labels_[static_cast<size_t>(idx)] = c;
    }
  }
}

Tensor SynthClassification::image(int64_t idx) const {
  NB_CHECK(idx >= 0 && idx < size(), "image index out of range");
  const int64_t r = config_.resolution;
  Tensor out({3, r, r});
  const int64_t sz = out.numel();
  std::copy(images_.data() + idx * sz, images_.data() + (idx + 1) * sz,
            out.data());
  return out;
}

int64_t SynthClassification::label(int64_t idx) const {
  NB_CHECK(idx >= 0 && idx < size(), "label index out of range");
  return labels_[static_cast<size_t>(idx)];
}

const ClassSpec& SynthClassification::class_spec(int64_t cls) const {
  NB_CHECK(cls >= 0 && cls < num_classes(), "class index out of range");
  return class_table_[static_cast<size_t>(cls)];
}

}  // namespace nb::data
