#include "data/mix_augment.h"

#include <algorithm>
#include <cmath>

namespace nb::data {

namespace {

// Marsaglia-Tsang gamma sampler for shape >= 0; alpha < 1 handled via the
// boost Gamma(a) = Gamma(a+1) * U^(1/a).
float sample_gamma(float shape, Rng& rng) {
  if (shape < 1.0f) {
    const float u = std::max(rng.uniform(), 1e-12f);
    return sample_gamma(shape + 1.0f, rng) *
           std::pow(u, 1.0f / std::max(shape, 1e-6f));
  }
  const float d = shape - 1.0f / 3.0f;
  const float c = 1.0f / std::sqrt(9.0f * d);
  for (;;) {
    float x = rng.normal();
    float v = 1.0f + c * x;
    if (v <= 0.0f) continue;
    v = v * v * v;
    const float u = std::max(rng.uniform(), 1e-12f);
    if (std::log(u) < 0.5f * x * x + d - d * v + d * std::log(v)) {
      return d * v;
    }
  }
}

std::vector<int64_t> random_permutation(int64_t n, Rng& rng) {
  std::vector<int64_t> perm(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) perm[static_cast<size_t>(i)] = i;
  rng.shuffle(perm);
  return perm;
}

}  // namespace

float sample_beta(float alpha, Rng& rng) {
  NB_CHECK(alpha > 0.0f, "sample_beta: alpha must be positive");
  const float x = sample_gamma(alpha, rng);
  const float y = sample_gamma(alpha, rng);
  const float denom = x + y;
  return denom > 0.0f ? x / denom : 0.5f;
}

MixResult mixup_batch(Tensor& images, const std::vector<int64_t>& labels,
                      float alpha, Rng& rng) {
  NB_CHECK(images.dim() == 4, "mixup_batch expects NCHW");
  const int64_t b = images.size(0);
  NB_CHECK(static_cast<int64_t>(labels.size()) == b,
           "mixup_batch: labels/images size mismatch");
  MixResult result;
  result.labels_b = labels;
  if (b < 2 || alpha <= 0.0f) {
    return result;  // lam = 1, nothing mixed
  }
  const float lam = sample_beta(alpha, rng);
  const std::vector<int64_t> perm = random_permutation(b, rng);
  const Tensor source = images.clone();
  const int64_t stride = images.numel() / b;
  for (int64_t i = 0; i < b; ++i) {
    const int64_t j = perm[static_cast<size_t>(i)];
    float* dst = images.data() + i * stride;
    const float* src = source.data() + j * stride;
    for (int64_t t = 0; t < stride; ++t) {
      dst[t] = lam * dst[t] + (1.0f - lam) * src[t];
    }
    result.labels_b[static_cast<size_t>(i)] = labels[static_cast<size_t>(j)];
  }
  result.lam = lam;
  return result;
}

MixResult cutmix_batch(Tensor& images, const std::vector<int64_t>& labels,
                       float alpha, Rng& rng) {
  NB_CHECK(images.dim() == 4, "cutmix_batch expects NCHW");
  const int64_t b = images.size(0);
  const int64_t c = images.size(1);
  const int64_t h = images.size(2);
  const int64_t w = images.size(3);
  NB_CHECK(static_cast<int64_t>(labels.size()) == b,
           "cutmix_batch: labels/images size mismatch");
  MixResult result;
  result.labels_b = labels;
  if (b < 2 || alpha <= 0.0f) {
    return result;
  }
  const float lam_raw = sample_beta(alpha, rng);
  // One shared box per batch (the reference implementation's convention).
  const float cut_ratio = std::sqrt(1.0f - lam_raw);
  const int64_t cut_h = static_cast<int64_t>(static_cast<float>(h) * cut_ratio);
  const int64_t cut_w = static_cast<int64_t>(static_cast<float>(w) * cut_ratio);
  const int64_t cy = rng.randint(h);
  const int64_t cx = rng.randint(w);
  const int64_t y0 = std::clamp<int64_t>(cy - cut_h / 2, 0, h);
  const int64_t y1 = std::clamp<int64_t>(cy + (cut_h + 1) / 2, 0, h);
  const int64_t x0 = std::clamp<int64_t>(cx - cut_w / 2, 0, w);
  const int64_t x1 = std::clamp<int64_t>(cx + (cut_w + 1) / 2, 0, w);

  const std::vector<int64_t> perm = random_permutation(b, rng);
  const Tensor source = images.clone();
  for (int64_t i = 0; i < b; ++i) {
    const int64_t j = perm[static_cast<size_t>(i)];
    for (int64_t ch = 0; ch < c; ++ch) {
      for (int64_t y = y0; y < y1; ++y) {
        for (int64_t x = x0; x < x1; ++x) {
          images.at(i, ch, y, x) = source.at(j, ch, y, x);
        }
      }
    }
    result.labels_b[static_cast<size_t>(i)] = labels[static_cast<size_t>(j)];
  }
  // lam corrected to the exact surviving-area fraction of the original.
  const float pasted =
      static_cast<float>((y1 - y0) * (x1 - x0)) / static_cast<float>(h * w);
  result.lam = 1.0f - pasted;
  return result;
}

void random_erase_(Tensor& chw, Rng& rng, float p, float min_area,
                   float max_area) {
  NB_CHECK(chw.dim() == 3, "random_erase_ expects CHW");
  if (!rng.bernoulli(p)) {
    return;
  }
  const int64_t c = chw.size(0);
  const int64_t h = chw.size(1);
  const int64_t w = chw.size(2);
  const float area = rng.uniform(min_area, max_area) *
                     static_cast<float>(h * w);
  // Aspect ratio in [1/3, 3].
  const float aspect = std::exp(rng.uniform(std::log(1.0f / 3.0f),
                                            std::log(3.0f)));
  int64_t eh = static_cast<int64_t>(std::round(std::sqrt(area * aspect)));
  int64_t ew = static_cast<int64_t>(std::round(std::sqrt(area / aspect)));
  eh = std::clamp<int64_t>(eh, 1, h);
  ew = std::clamp<int64_t>(ew, 1, w);
  const int64_t y0 = rng.randint(h - eh + 1);
  const int64_t x0 = rng.randint(w - ew + 1);
  for (int64_t ch = 0; ch < c; ++ch) {
    for (int64_t y = y0; y < y0 + eh; ++y) {
      for (int64_t x = x0; x < x0 + ew; ++x) {
        chw.at(ch, y, x) = rng.normal();
      }
    }
  }
}

nn::LossResult mixed_cross_entropy(const Tensor& logits,
                                   const std::vector<int64_t>& labels_a,
                                   const std::vector<int64_t>& labels_b,
                                   float lam, float label_smoothing) {
  NB_CHECK(labels_a.size() == labels_b.size(),
           "mixed_cross_entropy: label list size mismatch");
  const nn::LossResult a =
      nn::softmax_cross_entropy(logits, labels_a, label_smoothing);
  if (lam >= 1.0f) {
    return a;
  }
  const nn::LossResult b =
      nn::softmax_cross_entropy(logits, labels_b, label_smoothing);
  nn::LossResult out;
  out.loss = lam * a.loss + (1.0f - lam) * b.loss;
  out.grad = a.grad.scale(lam);
  out.grad.add_scaled_(b.grad, 1.0f - lam);
  return out;
}

}  // namespace nb::data
