// Procedural class-conditional image generator. Classes are conjunctions of
// latent factors drawn from a shared "feature vocabulary" (texture family,
// spatial frequency, orientation, foreground shape, palette); samples add
// heavy nuisance (translation, scale, phase, flips, noise, brightness). The
// shared vocabulary is what makes pretrain->finetune transfer meaningful:
// downstream tasks recombine the same low-level factors into new classes.
#pragma once

#include <memory>

#include "data/dataset.h"
#include "tensor/rng.h"

namespace nb::data {

enum class TextureFamily : int { grating = 0, checker, radial, blob };
enum class ShapeKind : int { disc = 0, square, triangle, annulus, cross, stripe };

/// Latent description of one class.
struct ClassSpec {
  TextureFamily bg_family = TextureFamily::grating;
  float bg_freq = 2.0f;
  float bg_theta = 0.0f;
  ShapeKind shape = ShapeKind::disc;
  TextureFamily fg_family = TextureFamily::checker;
  float fg_freq = 3.0f;
  float fg_theta = 0.0f;
  float palette[3] = {1.0f, 1.0f, 1.0f};
  bool has_accent = false;
  ShapeKind accent_shape = ShapeKind::square;
};

/// Generator configuration; see data/task_registry.h for the named presets.
struct SynthConfig {
  std::string name = "synth";
  int64_t num_classes = 24;
  int64_t train_per_class = 100;
  int64_t test_per_class = 25;
  int64_t resolution = 24;
  uint64_t seed = 1;
  /// 0 = coarse classes (factors differ a lot), 1 = fine-grained (classes
  /// share shape/background and differ only in small texture detail).
  float fine_grained = 0.0f;
  /// Rotates the class-factor table so different tasks use disjoint
  /// combinations of the shared vocabulary.
  int64_t vocab_offset = 0;
  /// Nuisance strength in [0, 1]; higher = harder dataset.
  float nuisance = 1.0f;
};

class SynthClassification : public ClassificationDataset {
 public:
  /// split: "train" or "test" (affects sample seeds and count).
  SynthClassification(const SynthConfig& config, const std::string& split);

  int64_t size() const override { return labels_.size(); }
  int64_t num_classes() const override { return config_.num_classes; }
  int64_t resolution() const override { return config_.resolution; }
  Tensor image(int64_t idx) const override;
  int64_t label(int64_t idx) const override;
  std::string name() const override { return config_.name + "/" + split_; }

  const SynthConfig& config() const { return config_; }
  /// The latent spec of a class (exposed for tests).
  const ClassSpec& class_spec(int64_t cls) const;

  /// Renders a single sample image without materializing a dataset (used by
  /// tests and the quickstart example).
  static Tensor render_sample(const ClassSpec& spec, int64_t resolution,
                              float nuisance, Rng& rng);

  /// Builds the latent class table for a config (shared by train/test).
  static std::vector<ClassSpec> build_class_table(const SynthConfig& config);

 private:
  SynthConfig config_;
  std::string split_;
  std::vector<ClassSpec> class_table_;
  Tensor images_;  // [N, C, r, r]
  std::vector<int64_t> labels_;
};

}  // namespace nb::data
