#include "data/augment.h"

#include <algorithm>

namespace nb::data {

void hflip_(Tensor& chw) {
  NB_CHECK(chw.dim() == 3, "hflip_ expects CHW");
  const int64_t c = chw.size(0), h = chw.size(1), w = chw.size(2);
  for (int64_t ch = 0; ch < c; ++ch) {
    for (int64_t y = 0; y < h; ++y) {
      float* row = chw.data() + (ch * h + y) * w;
      std::reverse(row, row + w);
    }
  }
}

void shift_(Tensor& chw, int64_t dy, int64_t dx) {
  NB_CHECK(chw.dim() == 3, "shift_ expects CHW");
  const int64_t c = chw.size(0), h = chw.size(1), w = chw.size(2);
  Tensor src = chw.clone();
  chw.zero();
  for (int64_t ch = 0; ch < c; ++ch) {
    for (int64_t y = 0; y < h; ++y) {
      const int64_t sy = y - dy;
      if (sy < 0 || sy >= h) continue;
      for (int64_t x = 0; x < w; ++x) {
        const int64_t sx = x - dx;
        if (sx < 0 || sx >= w) continue;
        chw.at(ch, y, x) = src.at(ch, sy, sx);
      }
    }
  }
}

void cutout_(Tensor& chw, int64_t size, Rng& rng) {
  NB_CHECK(chw.dim() == 3, "cutout_ expects CHW");
  const int64_t c = chw.size(0), h = chw.size(1), w = chw.size(2);
  const int64_t cy = rng.randint(h);
  const int64_t cx = rng.randint(w);
  const int64_t y0 = std::max<int64_t>(0, cy - size / 2);
  const int64_t y1 = std::min(h, cy + (size + 1) / 2);
  const int64_t x0 = std::max<int64_t>(0, cx - size / 2);
  const int64_t x1 = std::min(w, cx + (size + 1) / 2);
  for (int64_t ch = 0; ch < c; ++ch) {
    for (int64_t y = y0; y < y1; ++y) {
      for (int64_t x = x0; x < x1; ++x) chw.at(ch, y, x) = 0.0f;
    }
  }
}

void augment_standard_(Tensor& chw, Rng& rng, int64_t max_shift) {
  if (rng.bernoulli(0.5f)) hflip_(chw);
  if (max_shift > 0) {
    const int64_t dy = rng.randint(2 * max_shift + 1) - max_shift;
    const int64_t dx = rng.randint(2 * max_shift + 1) - max_shift;
    if (dy != 0 || dx != 0) shift_(chw, dy, dx);
  }
}

}  // namespace nb::data
