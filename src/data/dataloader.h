// Mini-batch iterator over a ClassificationDataset with shuffling and
// optional train-time augmentation.
#pragma once

#include <memory>

#include "data/augment.h"
#include "data/dataset.h"
#include "tensor/rng.h"

namespace nb::data {

struct Batch {
  Tensor images;                 // [B, C, H, W]
  std::vector<int64_t> labels;   // B entries
};

class DataLoader {
 public:
  DataLoader(const ClassificationDataset& dataset, int64_t batch_size,
             bool shuffle, bool augment, uint64_t seed = 11);

  /// Number of batches per epoch (last partial batch included).
  int64_t num_batches() const;
  int64_t batch_size() const { return batch_size_; }

  /// Reshuffles (if enabled) and resets the cursor.
  void start_epoch();

  /// Fills `out`; returns false when the epoch is exhausted.
  bool next(Batch& out);

 private:
  const ClassificationDataset& dataset_;
  int64_t batch_size_;
  bool shuffle_;
  bool augment_;
  Rng rng_;
  std::vector<int64_t> order_;
  int64_t cursor_ = 0;
};

/// Materializes the whole dataset as one batch (for evaluation).
Batch full_batch(const ClassificationDataset& dataset);

}  // namespace nb::data
