// Mini-batch iteration over a ClassificationDataset.
//
// Two implementations share one surface (BatchSource): the synchronous
// single-threaded DataLoader below, and the prefetching PipelineLoader in
// data/pipeline.h. Both derive every stochastic decision from the
// per-sample / per-batch seeded RNG API in data/sample_rng.h, so for the
// same (seed, start_epoch history) they produce bitwise-identical batches
// — the pipeline at any worker count reproduces the synchronous loader
// exactly. Construct either through make_loader().
#pragma once

#include <memory>

#include "data/augment.h"
#include "data/dataset.h"
#include "tensor/rng.h"

namespace nb::data {

struct Batch {
  Tensor images;                 // [B, C, H, W]
  std::vector<int64_t> labels;   // B entries
  // Filled when the loader applied a batch-level mix augmentation
  // (MixPolicy): labels_b[i] is the label of the partner blended into
  // image i, mix_lam the weight of the original image. labels_b is empty
  // and mix_lam == 1 for unmixed batches.
  std::vector<int64_t> labels_b;
  float mix_lam = 1.0f;

  bool mixed() const { return !labels_b.empty() && mix_lam < 1.0f; }
};

/// Batch-level mixup/cutmix applied by the loader itself (so it runs inside
/// the pipeline's decode workers, not on the consumer thread). When both
/// alphas are set, each batch picks one of the two at random — the same
/// policy the Trainer historically applied inline.
struct MixPolicy {
  float mixup_alpha = 0.0f;   // Beta(alpha, alpha) mixup when > 0
  float cutmix_alpha = 0.0f;  // CutMix when > 0
  bool enabled() const { return mixup_alpha > 0.0f || cutmix_alpha > 0.0f; }
};

/// Applies `policy` to a filled batch using the given per-batch RNG.
/// Shared by DataLoader and PipelineLoader so the two agree bitwise.
void apply_batch_mix(Batch& batch, const MixPolicy& policy, Rng& rng);

/// The loader surface the training loops iterate: start_epoch() then
/// next() until it returns false. Epochs are restartable at any point —
/// start_epoch() mid-epoch abandons the rest of the current one.
class BatchSource {
 public:
  virtual ~BatchSource() = default;

  /// Number of batches per epoch (last partial batch included).
  virtual int64_t num_batches() const = 0;
  virtual int64_t batch_size() const = 0;

  /// Reshuffles (if enabled) and resets the cursor.
  virtual void start_epoch() = 0;

  /// Fills `out`; returns false when the epoch is exhausted.
  virtual bool next(Batch& out) = 0;
};

/// Configuration shared by both loader implementations.
struct LoaderOptions {
  int64_t batch_size = 32;
  bool shuffle = false;
  bool augment = false;
  uint64_t seed = 11;
  MixPolicy mix;
  /// 0 = synchronous DataLoader; > 0 = PipelineLoader with that many
  /// decode/augment workers.
  int64_t workers = 0;
  /// Pipeline only: deliver batches in epoch order (bitwise-equal to the
  /// synchronous loader). false delivers in completion order — lower
  /// latency jitter, same batch *contents*, possibly permuted sequence.
  bool deterministic = true;
  /// Pipeline only: depth of the bounded batch pool (2 = double buffer).
  int64_t buffers = 2;
};

class DataLoader : public BatchSource {
 public:
  DataLoader(const ClassificationDataset& dataset, int64_t batch_size,
             bool shuffle, bool augment, uint64_t seed = 11);
  DataLoader(const ClassificationDataset& dataset, const LoaderOptions& opts);

  int64_t num_batches() const override;
  int64_t batch_size() const override { return batch_size_; }
  void start_epoch() override;
  bool next(Batch& out) override;

 private:
  const ClassificationDataset& dataset_;
  int64_t batch_size_;
  bool shuffle_;
  bool augment_;
  MixPolicy mix_;
  uint64_t base_seed_;
  Rng order_rng_;  // drives ONLY the shuffle; samples seed their own RNGs
  std::vector<int64_t> order_;
  int64_t cursor_ = 0;
  int64_t epoch_ = -1;
  uint64_t epoch_seed_ = 0;
};

/// Builds the loader the options ask for: a synchronous DataLoader when
/// opts.workers == 0, a PipelineLoader otherwise.
std::unique_ptr<BatchSource> make_loader(const ClassificationDataset& dataset,
                                         const LoaderOptions& opts);

}  // namespace nb::data
