// Dataset interfaces. All data in this repository is generated procedurally
// (see DESIGN.md "Substitutions"): classification datasets stand in for
// ImageNet and the five downstream sets, the detection dataset for Pascal
// VOC. Generators are deterministic in their seed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace nb::data {

/// A classification dataset fully materialized in memory.
class ClassificationDataset {
 public:
  virtual ~ClassificationDataset() = default;

  virtual int64_t size() const = 0;
  virtual int64_t num_classes() const = 0;
  virtual int64_t resolution() const = 0;
  virtual int64_t channels() const { return 3; }

  /// Image `idx` as a [C, H, W] tensor view-copy and its label.
  virtual Tensor image(int64_t idx) const = 0;
  virtual int64_t label(int64_t idx) const = 0;
  virtual std::string name() const = 0;
};

/// One ground-truth detection box in normalized [0,1] image coordinates.
struct GtBox {
  float cx = 0.0f;
  float cy = 0.0f;
  float w = 0.0f;
  float h = 0.0f;
  int64_t cls = 0;
};

/// A detection dataset: images plus per-image box lists.
class DetectionDataset {
 public:
  virtual ~DetectionDataset() = default;

  virtual int64_t size() const = 0;
  virtual int64_t num_classes() const = 0;
  virtual int64_t resolution() const = 0;
  virtual Tensor image(int64_t idx) const = 0;
  virtual const std::vector<GtBox>& boxes(int64_t idx) const = 0;
  virtual std::string name() const = 0;
};

}  // namespace nb::data
