#include "data/synth_detection.h"

#include <cmath>

namespace nb::data {

namespace {

// The four detection classes map to distinct (shape, texture) pairs so the
// classifier branch has real work to do.
ShapeKind class_shape(int64_t cls) {
  switch (cls % 4) {
    case 0: return ShapeKind::disc;
    case 1: return ShapeKind::square;
    case 2: return ShapeKind::triangle;
    default: return ShapeKind::annulus;
  }
}

}  // namespace

SynthDetection::SynthDetection(const DetectionConfig& config,
                               const std::string& split)
    : config_(config), split_(split) {
  NB_CHECK(split == "train" || split == "test", "split must be train|test");
  const int64_t n =
      split == "train" ? config.num_images : std::max<int64_t>(config.num_images / 3, 20);
  const int64_t r = config.resolution;
  images_ = Tensor({n, 3, r, r});
  boxes_.resize(static_cast<size_t>(n));

  const uint64_t stream = split == "train" ? 77 : 88;
  Rng rng(config.seed * 0x2545f4914f6cdd1dULL + 3, stream);

  for (int64_t i = 0; i < n; ++i) {
    float* img = images_.data() + i * 3 * r * r;
    // Background: low-frequency grating.
    const float bg_theta = rng.uniform(0.0f, 3.14159f);
    const float bg_freq = rng.uniform(0.8f, 1.4f);
    const float bg_phase = rng.uniform(0.0f, 6.28318f);
    for (int64_t y = 0; y < r; ++y) {
      for (int64_t x = 0; x < r; ++x) {
        const float u = 2.0f * x / static_cast<float>(r - 1) - 1.0f;
        const float v = 2.0f * y / static_cast<float>(r - 1) - 1.0f;
        const float c = std::cos(bg_theta), s = std::sin(bg_theta);
        const float val =
            0.25f * std::sin(6.28318f * bg_freq * (c * u + s * v) + bg_phase);
        for (int64_t ch = 0; ch < 3; ++ch) {
          img[(ch * r + y) * r + x] = val + 0.05f * rng.normal();
        }
      }
    }

    const int64_t objects = 1 + rng.randint(config.max_objects);
    for (int64_t o = 0; o < objects; ++o) {
      GtBox box;
      box.cls = rng.randint(config.num_classes);
      box.w = rng.uniform(0.25f, 0.5f);
      box.h = rng.uniform(0.25f, 0.5f);
      box.cx = rng.uniform(box.w / 2, 1.0f - box.w / 2);
      box.cy = rng.uniform(box.h / 2, 1.0f - box.h / 2);

      const ShapeKind shape = class_shape(box.cls);
      const float freq = 2.5f + 0.7f * static_cast<float>(box.cls);
      const float phase = rng.uniform(0.0f, 6.28318f);
      // Per-class palette.
      const float pal[3] = {box.cls == 0 || box.cls == 3 ? 0.9f : 0.3f,
                            box.cls == 1 ? 0.9f : 0.4f,
                            box.cls == 2 ? 0.9f : 0.35f};

      const int64_t x0 = static_cast<int64_t>((box.cx - box.w / 2) * r);
      const int64_t x1 = static_cast<int64_t>((box.cx + box.w / 2) * r);
      const int64_t y0 = static_cast<int64_t>((box.cy - box.h / 2) * r);
      const int64_t y1 = static_cast<int64_t>((box.cy + box.h / 2) * r);
      for (int64_t y = std::max<int64_t>(y0, 0); y < std::min(y1, r); ++y) {
        for (int64_t x = std::max<int64_t>(x0, 0); x < std::min(x1, r); ++x) {
          // Local coordinates in [-1, 1] within the box.
          const float lu = 2.0f * (x - x0) / std::max<float>(1.0f, static_cast<float>(x1 - x0)) - 1.0f;
          const float lv = 2.0f * (y - y0) / std::max<float>(1.0f, static_cast<float>(y1 - y0)) - 1.0f;
          float inside = 0.0f;
          switch (shape) {
            case ShapeKind::disc: inside = 1.0f - (lu * lu + lv * lv); break;
            case ShapeKind::square: inside = 0.9f - std::max(std::fabs(lu), std::fabs(lv)); break;
            case ShapeKind::triangle: inside = std::min(lv + 0.8f, std::min(0.9f + lu * 1.4f - lv, 0.9f - lu * 1.4f - lv)); break;
            default: {
              const float rad = std::sqrt(lu * lu + lv * lv);
              inside = 0.3f - std::fabs(rad - 0.6f);
              break;
            }
          }
          if (inside <= 0.0f) continue;
          const float tex = std::sin(6.28318f * freq * lu + phase) *
                            std::cos(6.28318f * freq * lv);
          for (int64_t ch = 0; ch < 3; ++ch) {
            img[(ch * r + y) * r + x] = 0.65f * tex * pal[ch] + 0.25f;
          }
        }
      }
      boxes_[static_cast<size_t>(i)].push_back(box);
    }
  }
}

Tensor SynthDetection::image(int64_t idx) const {
  NB_CHECK(idx >= 0 && idx < size(), "detection image index out of range");
  const int64_t r = config_.resolution;
  Tensor out({3, r, r});
  std::copy(images_.data() + idx * out.numel(),
            images_.data() + (idx + 1) * out.numel(), out.data());
  return out;
}

const std::vector<GtBox>& SynthDetection::boxes(int64_t idx) const {
  NB_CHECK(idx >= 0 && idx < size(), "detection box index out of range");
  return boxes_[static_cast<size_t>(idx)];
}

}  // namespace nb::data
