// Per-sample seeded augmentation RNG — the data tier's determinism contract.
//
// The old DataLoader drew every augmentation decision from ONE sequential
// Rng, so the random stream a sample saw depended on how many draws every
// sample before it consumed. That coupling makes a parallel pipeline
// impossible to reproduce: with N decode workers the call order (and hence
// every sample's augmentation) depends on the schedule.
//
// This header replaces call-order coupling with identity coupling: each
// sample's RNG is seeded from (epoch_seed, dataset index) alone, and each
// batch-level draw (mixup/cutmix) from (epoch_seed, batch index) alone.
// Any loader — the synchronous DataLoader, the PipelineLoader at any
// worker count — that derives its per-sample streams through these
// functions produces bitwise-identical batches for the same base seed and
// start_epoch() history. tests/test_data_pipeline.cpp property-tests that
// equivalence under TSan.
#pragma once

#include <cstdint>

#include "tensor/rng.h"

namespace nb::data {

/// SplitMix64-style finalizer over a (key, index) pair. Full-avalanche, so
/// adjacent epochs / adjacent samples land in statistically independent
/// PCG32 streams.
inline uint64_t mix_seed(uint64_t key, uint64_t index) {
  uint64_t z = key + 0x9e3779b97f4a7c15ULL * (index + 0x632be59bd9b4e019ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Seed for one epoch, derived from the loader's base seed. `epoch_index`
/// counts start_epoch() calls (0 for the first), so re-running an epoch
/// re-runs its exact augmentations.
inline uint64_t derive_epoch_seed(uint64_t base_seed, int64_t epoch_index) {
  return mix_seed(base_seed ^ 0x0a02bdbf7bb3c0a7ULL,
                  static_cast<uint64_t>(epoch_index));
}

/// RNG for one sample's augmentation draws. `sample_index` is the sample's
/// DATASET index (its identity), not its position in the shuffled order —
/// shuffling therefore permutes which augmentation lands in which batch
/// slot but never changes what augmentation a given sample receives.
inline Rng make_sample_rng(uint64_t epoch_seed, int64_t sample_index) {
  return Rng(mix_seed(epoch_seed, static_cast<uint64_t>(sample_index)),
             /*stream=*/9);
}

/// RNG for one batch's batch-level draws (mixup/cutmix selection, Beta
/// sample, partner permutation). Salted so batch 0 never aliases sample 0.
inline Rng make_batch_rng(uint64_t epoch_seed, int64_t batch_index) {
  return Rng(mix_seed(epoch_seed ^ 0x5851f42d4c957f2dULL,
                      static_cast<uint64_t>(batch_index)),
             /*stream=*/13);
}

}  // namespace nb::data
