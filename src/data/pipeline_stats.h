// Per-stage counters for the PipelineLoader. A snapshot is returned by
// PipelineLoader::stats(); all fields are cumulative since construction.
// The three stall clocks are the tuning signal:
//   reader_stall_ms   high -> consumer/decode too slow, add buffers/workers
//   worker_stall_ms   high -> reader starved the pool (tiny batches) or
//                     there are more workers than decode work
//   consumer_stall_ms high -> decode-bound epoch, add workers
#pragma once

#include <cstdint>

namespace nb::data {

struct PipelineStats {
  int64_t epochs_started = 0;
  int64_t batches_delivered = 0;
  int64_t samples_decoded = 0;

  /// Reader time spent blocked on a free batch buffer (backpressure).
  double reader_stall_ms = 0.0;
  /// Worker time spent blocked waiting for sample tickets, summed over
  /// the pool.
  double worker_stall_ms = 0.0;
  /// Consumer time spent blocked in next() waiting for a ready batch.
  double consumer_stall_ms = 0.0;

  /// High-water mark of the ticket queue (bounded by buffers*batch_size).
  int64_t max_ticket_depth = 0;
  /// Batches delivered per wall-second, measured across delivered epochs
  /// (first start_epoch() to the most recent delivery).
  double batches_per_s = 0.0;
};

}  // namespace nb::data
