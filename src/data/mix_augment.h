// Batch-level "strong" augmentations: mixup (Zhang et al., 2018), CutMix
// (Yun et al., 2019), and random erasing. Fig. 1(a)'s point is that heavy
// augmentation helps over-parameterized networks but *hurts* under-fitting
// TNNs; the fig1a bench uses these to reproduce that crossover, and the
// trainer exposes them through TrainConfig so any experiment can opt in.
//
// Both mixup and CutMix blend each image with a permuted partner and train
// on the convex combination of the two labels; mixed_cross_entropy computes
//   lam * CE(logits, y_a) + (1 - lam) * CE(logits, y_b)
// with the matching analytic gradient.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/losses.h"
#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace nb::data {

/// Result of a batch mix: partner labels plus the mixing coefficient.
struct MixResult {
  /// labels_b[i] is the label of the partner blended into image i.
  std::vector<int64_t> labels_b;
  /// Weight of the original image/label (1.0 means "no mixing happened").
  float lam = 1.0f;
};

/// Samples lam ~ Beta(alpha, alpha) via two gamma draws.
float sample_beta(float alpha, Rng& rng);

/// mixup: images = lam*images + (1-lam)*images[perm]. Mutates `images`
/// ([B,C,H,W]) in place and returns the partner labels and lam.
MixResult mixup_batch(Tensor& images, const std::vector<int64_t>& labels,
                      float alpha, Rng& rng);

/// CutMix: pastes a random box from the permuted partner into each image;
/// lam is corrected to the actual surviving area fraction.
MixResult cutmix_batch(Tensor& images, const std::vector<int64_t>& labels,
                       float alpha, Rng& rng);

/// Random erasing: with probability p, replaces a random rectangle (area in
/// [min_area, max_area] of the image) with noise. Per-image, in place.
void random_erase_(Tensor& chw, Rng& rng, float p = 0.5f,
                   float min_area = 0.05f, float max_area = 0.2f);

/// lam-weighted two-target cross entropy for mixed batches.
nn::LossResult mixed_cross_entropy(const Tensor& logits,
                                   const std::vector<int64_t>& labels_a,
                                   const std::vector<int64_t>& labels_b,
                                   float lam, float label_smoothing = 0.0f);

}  // namespace nb::data
