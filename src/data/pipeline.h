// Prefetching parallel data pipeline:
//
//   reader thread ──tickets──▶ decode/augment worker pool ──▶ batch slots
//        │                          │                            │
//        │  shuffled index order    │  dataset.image(idx) +      │  bounded,
//        │  chopped into per-sample │  per-sample-seeded augment │  double-
//        │  tickets, one batch slot │  written into its own      │  buffered;
//        │  claimed per batch       │  non-overlapping slice     │  consumer
//        ▼                          ▼                            ▼  swaps out
//   backpressure: the reader blocks when every slot is in flight, so at
//   most `buffers` batches (and buffers*batch_size tickets) ever exist.
//
// The last worker to finish a batch also applies the batch-level mix
// augmentation (MixPolicy: mixup/cutmix) inside the pool, so the consumer
// thread never does augmentation work.
//
// Determinism contract (LoaderOptions::deterministic, default on): every
// random decision is derived from (seed, start_epoch history) through
// data/sample_rng.h — the shuffle from the same Rng(seed, 5) stream the
// synchronous DataLoader uses, each sample's augmentation from
// (epoch_seed, dataset index), each batch's mix from (epoch_seed, batch
// index) — and batches are delivered in epoch order. The result is
// bitwise-identical (memcmp) to DataLoader at ANY worker count.
// deterministic=false delivers batches in completion order instead: the
// same batch contents, possibly permuted sequence, slightly lower jitter.
//
// Lifecycle: start_epoch() may be called at any time — mid-epoch it
// cancels outstanding work (pending tickets dropped, in-flight samples
// allowed to land harmlessly) and begins a fresh epoch. The destructor
// drains the same way; neither deadlocks on a partially consumed epoch.
// A worker/reader exception is captured and rethrown from the consumer's
// next call into next() or start_epoch(); the loader is poisoned after.
//
// Locking discipline: ONE mutex (mu_) guards all shared state, with three
// condition variables (tickets, free slots, ready slots). Everything is
// annotated with the PR 8 capability vocabulary (nb::Mutex, NB_GUARDED_BY)
// and proven under clang -Wthread-safety -Werror by
// tools/check_thread_safety.sh; the seeded violation lives in
// tools/probes/thread_safety_probe.cpp.
#pragma once

#include <deque>
#include <exception>
#include <thread>
#include <vector>

#include "data/dataloader.h"
#include "data/pipeline_stats.h"
#include "util/thread_safety.h"

namespace nb::data {

class PipelineLoader : public BatchSource {
 public:
  PipelineLoader(const ClassificationDataset& dataset,
                 const LoaderOptions& opts);
  ~PipelineLoader() override;

  PipelineLoader(const PipelineLoader&) = delete;
  PipelineLoader& operator=(const PipelineLoader&) = delete;

  int64_t num_batches() const override;
  int64_t batch_size() const override { return opts_.batch_size; }
  int64_t workers() const { return opts_.workers; }

  void start_epoch() override NB_EXCLUDES(mu_);
  bool next(Batch& out) override NB_EXCLUDES(mu_);

  /// Cumulative per-stage counters (see pipeline_stats.h).
  PipelineStats stats() const NB_EXCLUDES(mu_);

 private:
  /// One preallocated batch buffer. `seq` is the batch's position in the
  /// epoch; `remaining` counts undecoded samples; `ready` flips when the
  /// last worker (after applying the mix policy) publishes the batch.
  struct Slot {
    Batch batch;
    int64_t seq = -1;
    int64_t count = 0;
    int64_t remaining = 0;
    uint64_t generation = 0;
    bool ready = false;
    bool in_use = false;
  };

  /// One sample of one batch: decode dataset index `idx` into slice `pos`
  /// of slot `slot`. Tickets never outlive their epoch generation.
  struct Ticket {
    int32_t slot = 0;
    int32_t pos = 0;
    int64_t idx = 0;
    uint64_t epoch_seed = 0;
    uint64_t generation = 0;
  };

  void reader_loop() NB_EXCLUDES(mu_);
  void worker_loop() NB_EXCLUDES(mu_);
  /// Decodes one ticket into its slot slice; called with mu_ NOT held.
  void decode_ticket(const Ticket& ticket, float* dst, int64_t* label_dst);
  /// Cancels the in-flight epoch and waits until reader + workers are
  /// quiescent and every slot is reclaimed.
  void quiesce() NB_REQUIRES(mu_);
  [[noreturn]] void rethrow_error() NB_REQUIRES(mu_);

  const ClassificationDataset& dataset_;
  const LoaderOptions opts_;
  const int64_t epoch_batches_total_;  // num_batches(), fixed per dataset

  mutable Mutex mu_;
  CondVar ticket_cv_;    // workers: tickets_ non-empty or shutdown/cancel
  CondVar free_cv_;      // reader: a slot returned to free_slots_
  CondVar ready_cv_;     // consumer: a slot became ready (or error)
  CondVar idle_cv_;      // start_epoch/dtor: pipeline reached quiescence

  std::vector<Slot> slots_ NB_GUARDED_BY(mu_);
  std::deque<int32_t> free_slots_ NB_GUARDED_BY(mu_);
  std::deque<Ticket> tickets_ NB_GUARDED_BY(mu_);

  // Epoch state. `generation_` invalidates stale tickets/slots when an
  // epoch is cancelled; `epoch_active_` tells the reader to produce.
  uint64_t generation_ NB_GUARDED_BY(mu_) = 0;
  bool epoch_active_ NB_GUARDED_BY(mu_) = false;
  uint64_t epoch_seed_ NB_GUARDED_BY(mu_) = 0;
  int64_t produce_seq_ NB_GUARDED_BY(mu_) = 0;    // next batch reader claims
  int64_t delivered_ NB_GUARDED_BY(mu_) = 0;      // batches handed to next()
  int64_t next_deliver_seq_ NB_GUARDED_BY(mu_) = 0;
  int64_t inflight_ NB_GUARDED_BY(mu_) = 0;       // workers holding a ticket
  bool reader_idle_ NB_GUARDED_BY(mu_) = true;
  bool shutdown_ NB_GUARDED_BY(mu_) = false;
  std::exception_ptr error_ NB_GUARDED_BY(mu_);

  // Shuffle state: same stream the synchronous DataLoader uses, advanced
  // only on start_epoch() from the consumer thread.
  Rng order_rng_;
  std::vector<int64_t> order_ NB_GUARDED_BY(mu_);
  int64_t epoch_ = -1;  // consumer thread only

  PipelineStats stats_ NB_GUARDED_BY(mu_);
  double first_epoch_start_s_ NB_GUARDED_BY(mu_) = -1.0;

  std::thread reader_;
  std::vector<std::thread> pool_;
};

}  // namespace nb::data
