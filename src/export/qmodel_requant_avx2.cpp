// AVX2 instance of the shared requantization epilogue, selected at runtime
// by requantize_row in qmodel.cpp. The contract is bit-identity with the
// generic TU, which compiles to mul-then-add (baseline x86-64 has no FMA),
// so this instance also uses separate _mm256_mul_ps / _mm256_add_ps — never
// fmadd, whose single rounding would diverge. Clamp operand order is chosen
// so NaN propagates exactly like std::max(v, 0.0f) / std::clamp(v, 0, 6):
// vmaxps/vminps return the SECOND source when either operand is NaN, so the
// accumulator-derived value always sits in the second slot.
#include <algorithm>
#include <cstdint>

#include <immintrin.h>

#include "export/flat_model.h"

namespace nb::exporter::detail {

void requantize_row_avx2(float* out, const int32_t* acc, int64_t n,
                         float scale, float bias, FlatAct act) {
  const __m256 vs = _mm256_set1_ps(scale);
  const __m256 vb = _mm256_set1_ps(bias);
  const __m256 zero = _mm256_setzero_ps();
  const __m256 six = _mm256_set1_ps(6.0f);
  int64_t i = 0;
  switch (act) {
    case FlatAct::identity:
      for (; i + 8 <= n; i += 8) {
        const __m256 v = _mm256_cvtepi32_ps(_mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(acc + i)));
        _mm256_storeu_ps(out + i, _mm256_add_ps(_mm256_mul_ps(v, vs), vb));
      }
      for (; i < n; ++i) {
        out[i] = static_cast<float>(acc[i]) * scale + bias;
      }
      return;
    case FlatAct::relu:
      for (; i + 8 <= n; i += 8) {
        const __m256 v = _mm256_cvtepi32_ps(_mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(acc + i)));
        const __m256 y = _mm256_add_ps(_mm256_mul_ps(v, vs), vb);
        _mm256_storeu_ps(out + i, _mm256_max_ps(zero, y));
      }
      for (; i < n; ++i) {
        out[i] = std::max(static_cast<float>(acc[i]) * scale + bias, 0.0f);
      }
      return;
    case FlatAct::relu6:
      for (; i + 8 <= n; i += 8) {
        const __m256 v = _mm256_cvtepi32_ps(_mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(acc + i)));
        const __m256 y = _mm256_add_ps(_mm256_mul_ps(v, vs), vb);
        _mm256_storeu_ps(out + i, _mm256_min_ps(six, _mm256_max_ps(zero, y)));
      }
      for (; i < n; ++i) {
        out[i] =
            std::clamp(static_cast<float>(acc[i]) * scale + bias, 0.0f, 6.0f);
      }
      return;
  }
}

}  // namespace nb::exporter::detail
