// Ahead-of-time inference plan for FlatModel — the GEMM-backed "fast"
// backend of the deployment runtime.
//
// A plan is built once per (batch, channels, height, width) input geometry.
// Building it walks the op list symbolically, computes every intermediate
// activation shape, and lays all of them out in ONE reusable float arena the
// way a TinyML memory planner would:
//
//   [ ping | pong | save slot 0..D-1 | im2col cols ]
//
//   * ping/pong — two regions sized to the largest activation that ever
//     lands in them; consecutive ops alternate, in-place ops (activation
//     fake-quant, residual add) do not flip.
//   * save slots — residual `save`/`add_saved` markers form a stack, so one
//     region per nesting depth suffices and is reused by every residual at
//     that depth.
//   * cols — the im2col panel for the largest lowered convolution, sized
//     x batch: the columns of every image in the micro-batch sit side by
//     side ([K, batch*out_h*out_w]) so ONE packed GEMM per conv (per group)
//     lowers the whole batch, amortizing weight-panel packing and
//     micro-kernel fringes across it.
//
// Batched activation layout: inside the arena every spatial activation is
// kept BATCH-INTERLEAVED — [channels, batch*H*W], each channel holding the
// batch's planes side by side — instead of NCHW. That is exactly the
// [cout, batch*out_h*out_w] panel the batched GEMM emits, so each conv's
// output is already the next conv's input and no staging buffer or
// scatter-back pass exists anywhere in the hot loop; NCHW is converted to
// the interleaved form once on entry and back once on exit (only when the
// program ends spatially). At batch == 1 the two layouts coincide, so the
// single-image plan is the same code path with no conversion cost.
//
// Because the packed GEMM's per-element rounding is independent of M and N
// (one continuous ascending K chain) and every other kernel is applied
// per-plane or per-element, the batched lowering is bitwise identical to
// running each image through its own batch-1 plan — micro-batching is
// purely a throughput decision, never a semantics change (test-enforced in
// tests/test_batched_lowering.cpp).
//
// Weights come from a shared WeightPanels: int8 levels dequantized once to
// exact float integers (scales are NOT folded in), so the packed nb::gemm
// over them produces the same products as the reference int8 interpreter
// and the per-channel scale + bias + activation clamp are applied in one
// fused pass over the output store. Depthwise groups run through the direct
// nb::depthwise_plane path; everything parallelizes over output rows /
// (image, channel) planes via the threadpool, and because nb::gemm is
// bitwise thread-invariant the whole plan is too.
//
// Backend::int8 builds the same plan over the TRUE integer path: before
// each conv/linear the float activation is quantized once to offset-u8
// levels (shared quantize_levels_u8, the same rounding fake-quant applies),
// the byte im2col + gemm_s8 accumulate exact int32, and the shared
// requantize_row epilogue (see qmodel.h) rescales per channel in place over
// the output region. The int32 accumulators live IN the float arena's
// output region (4 bytes per element either way); the plan additionally
// owns a small byte arena [ quantized input | byte cols ] and drops the
// float cols region entirely. Because every accumulation is an exact
// integer sum, thread-count and batched-vs-sequential invariance are
// bitwise by construction, and the whole backend is memcmp-equal to the
// scalar QModel oracle (enforced in tests/test_infer_runtime.cpp).
//
// A plan BORROWS its weight panels (it holds a shared_ptr keeping them
// alive but owns no weight copies); what it owns is only the per-geometry
// arena and step table, so building one plan per concurrent stream costs
// arena memory, never weight memory. run() reuses the arena, so a single
// plan must not be invoked from two threads at once — runtime::Session
// wraps one plan cache per stream.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "export/flat_model.h"
#include "export/weight_panels.h"

namespace nb::exporter {

class InferPlan;
struct PlanTables;
/// Declared in plan_verify.h; friend of InferPlan so the static verifier
/// can snapshot the region/step tables it proves safe.
PlanTables plan_tables(const InferPlan& plan);

/// The output spatial extent provably untouched by bucket padding — see
/// InferPlan::valid_output_region. `spatial` flips false once a GAP or
/// linear collapses the plane (their outputs aggregate the WHOLE padded
/// plane, so no sub-region of them is padding-free; the pad-to-bucket
/// contract for such programs is exactness w.r.t. the padded geometry,
/// not the original one).
struct PlanValidRegion {
  int64_t h = 0;
  int64_t w = 0;
  bool spatial = false;
};

/// Memory-planner accounting, all in float counts (4 bytes each).
struct PlanStats {
  /// Which execution mode this plan was built for (fast or int8; a plan is
  /// never built for the reference interpreter).
  Backend backend = Backend::fast;
  int64_t batch = 0;
  int64_t channels = 0;
  int64_t in_h = 0;
  int64_t in_w = 0;
  int64_t ops = 0;
  /// Total planned activation arena (ping + pong + save slots + cols) —
  /// the memory the plan OWNS. Every region holds the whole micro-batch,
  /// so the arena scales exactly x batch (assertable:
  /// arena_floats(batch) == batch * arena_floats(1)).
  int64_t arena_floats = 0;
  /// The im2col cols region: the largest lowered conv's column panel with
  /// every image side by side — scales exactly x batch. The batched GEMM
  /// writes straight into ping/pong (its [cout, batch*oh*ow] output IS the
  /// batch-interleaved activation layout), so no staging region exists.
  int64_t cols_floats = 0;
  /// What a no-reuse executor allocates: input clone + every op output +
  /// every residual copy + per-conv im2col scratch.
  int64_t no_reuse_floats = 0;
  /// Max floats simultaneously live at any single step — a lower bound for
  /// any planner; arena_floats must land between this and no_reuse_floats.
  int64_t peak_live_floats = 0;
  /// Dequantized weight-panel floats the plan executes against. BORROWED
  /// from the shared WeightPanels, not owned: every plan (and session) on
  /// the same compiled model reports the same figure for the same bytes.
  int64_t weight_cache_floats = 0;
  /// Max residual save/add nesting depth.
  int64_t save_depth = 0;
  /// Byte arena owned by an int8 plan on top of the float arena: the
  /// quantized-input region (largest conv/linear input, one byte per
  /// element) plus the byte im2col cols panel (which REPLACES the float
  /// cols region — cols_floats is 0 for int8 plans, so the int8 arena is
  /// smaller overall: the 4-byte cols region becomes 1-byte). Zero for
  /// float plans.
  int64_t arena_int8_bytes = 0;

  int64_t arena_bytes() const { return arena_floats * 4; }
  int64_t no_reuse_bytes() const { return no_reuse_floats * 4; }
  int64_t peak_live_bytes() const { return peak_live_floats * 4; }
};

class InferPlan {
 public:
  /// Shapes the whole program for an [batch, channels, in_h, in_w] input
  /// against an existing set of shared weight panels (the zero-copy path
  /// used by runtime::Session); throws on geometry mismatches (e.g. first
  /// conv cin != channels, an op producing an empty spatial output).
  /// `backend` selects the execution mode: Backend::fast runs the float
  /// fast path over dequantized weight levels; Backend::int8 runs the true
  /// integer path (quantized activations, gemm_s8, fused requantize) and
  /// requires an int8_compatible program (throws otherwise, naming the
  /// offending op). Backend::reference is rejected — plans ARE the
  /// non-reference runtime.
  InferPlan(const FlatModel& model,
            std::shared_ptr<const WeightPanels> panels, int64_t batch,
            int64_t channels, int64_t in_h, int64_t in_w,
            Backend backend = Backend::fast);

  /// Convenience: builds (and solely owns) fresh panels for `model`.
  InferPlan(const FlatModel& model, int64_t batch, int64_t channels,
            int64_t in_h, int64_t in_w, Backend backend = Backend::fast);

  /// Executes the program. `input` must match the planned geometry exactly.
  /// Reuses the internal arena; not safe to call concurrently on one plan.
  Tensor run(const Tensor& input) const;

  const PlanStats& stats() const { return stats_; }

  /// Valid-region epilogue arithmetic for pad-to-bucket serving: given
  /// that only the top-left (valid_h, valid_w) window of the planned
  /// (in_h, in_w) input holds real pixels (the rest is bucket-introduced
  /// zero padding), returns the output extent whose every element is a
  /// pure function of the valid window — i.e. no conv tap of any
  /// contributing window ever read a bucket-padding element. Taps in a
  /// conv's OWN zero padding (pad > 0) are model semantics and don't
  /// count. Conservative by construction: at valid == planned geometry it
  /// can still report fewer columns than the full output (the model's
  /// right-edge padding credit is not claimable without knowing the
  /// padding is semantic), and it is monotone in (valid_h, valid_w).
  PlanValidRegion valid_output_region(int64_t valid_h, int64_t valid_w) const;

  /// The shared weight panels this plan borrows (identity comparable:
  /// two plans on one compiled model return the same pointer).
  const std::shared_ptr<const WeightPanels>& panels() const {
    return panels_;
  }

 private:
  friend PlanTables plan_tables(const InferPlan& plan);

  struct Step {
    OpKind kind = OpKind::save;
    FlatAct act = FlatAct::identity;
    int64_t stride = 1, pad = 0, groups = 1, cout = 0, cin = 0, kernel = 1;
    float act_scale = 0.0f;
    int act_bits = 8;
    bool depthwise = false;
    // Borrowed views into the shared WeightPanels (kept alive by panels_).
    const float* wf = nullptr;      // int8 levels as exact float integers
    const int8_t* wq = nullptr;     // the same levels raw, for Backend::int8
    const float* scales = nullptr;  // per output channel
    const float* bias = nullptr;    // nullptr => zero bias
    // Int8 effective requantize scales, scales[o] * act_scale (empty for
    // float plans). Owned by the step: per-plan, not per-panel, because it
    // folds in the per-op activation scale.
    std::vector<float> eff;
    // Input/output activation geometry (out_h/out_w unused for 2-D shapes).
    int64_t in_c = 0, in_h = 0, in_w = 0;
    int64_t out_h = 0, out_w = 0;
    int64_t in_floats = 0, out_floats = 0;
    // Float offsets into the arena, resolved after the shape walk.
    int64_t in_off = 0, out_off = 0, cols_off = 0, save_off = 0;
  };

  void run_conv(const Step& s, const float* in, float* out, float* cols) const;
  void run_gap(const Step& s, const float* in, float* out) const;
  void run_linear(const Step& s, const float* in, float* out) const;
  // Int8 twins: `in` is the quantized offset-u8 activation, the int32
  // accumulators land in (and are requantized in place over) the float
  // arena's output region, and `cols` is the byte im2col panel.
  void run_conv_s8(const Step& s, const uint8_t* in, float* out,
                   uint8_t* cols) const;
  void run_linear_s8(const Step& s, const uint8_t* in, float* out) const;

  std::shared_ptr<const WeightPanels> panels_;
  std::vector<Step> steps_;
  std::vector<int64_t> out_shape_;
  int64_t out_off_ = 0;  // where the final activation lands in the arena
  mutable std::vector<float> arena_;
  // Byte arena for Backend::int8: [ quantized input | byte im2col cols ].
  // Empty for float plans.
  mutable std::vector<uint8_t> qarena_;
  int64_t qcols_off_ = 0;  // byte offset of the cols region in qarena_
  PlanStats stats_;
};

}  // namespace nb::exporter
