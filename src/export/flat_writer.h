// Builds the flat deployment artifact from a quantized MobileNetV2-family
// model. The model must have been through quant::quantize_for_deployment
// (every conv slot a frozen QuantConv2d, classifier a frozen QuantLinear);
// the writer re-expresses it as a linear instruction list with explicit
// residual save/add markers and stores weights as true int8 levels.
#pragma once

#include <string>

#include "export/flat_model.h"
#include "models/mobilenetv2.h"

namespace nb::exporter {

/// In-memory conversion. Throws if the model is not fully quantized, still
/// expanded, or uses features the format does not carry (Squeeze-Excitation).
/// `input_resolution` is recorded in the artifact header (informational).
FlatModel to_flat_model(models::MobileNetV2& model,
                        int64_t input_resolution = 0);

/// to_flat_model + FlatModel::save.
void write_flat_model(models::MobileNetV2& model, const std::string& path,
                      int64_t input_resolution = 0);

}  // namespace nb::exporter
