// Static verifier for InferPlan — proves the memory planner's safety
// contract from the plan's region/step tables alone, without executing a
// single kernel.
//
// An InferPlan is a little compiler: it lays every intermediate activation,
// residual copy and im2col panel into ONE reusable arena, and the int8
// backend additionally requantizes int32 accumulators IN PLACE over the
// float output region. Each of those decisions is an aliasing proof
// obligation the executor silently relies on. This verifier discharges
// them explicitly:
//
//   * geometry      — every step's recorded shapes follow from the conv
//                     arithmetic (out = (in + 2p - k)/s + 1) and the input
//                     geometry; float counts match batch*C*H*W.
//   * dataflow      — each step consumes exactly the region the previous
//                     step produced (produced-before-consumed, no step
//                     reads a region nothing wrote).
//   * bounds        — every [offset, offset+size) interval (inputs,
//                     outputs, save slots, cols panels, the quantized-input
//                     byte region) lies inside PlanStats::arena_floats /
//                     arena_int8_bytes.
//   * disjointness  — per step, the regions it reads and writes do not
//                     overlap (in vs out, cols vs both), and no write
//                     clobbers a LIVE residual save slot (the save stack is
//                     simulated across the whole program).
//   * epilogue      — the int8 in-place requantize+clamp is legal: the
//                     rewrite covers exactly the accumulator region it
//                     reads (same offset, same float count) and carries a
//                     full per-channel effective-scale table.
//   * stats         — the published PlanStats figures (cols_floats,
//                     arena_int8_bytes split) are consistent with the step
//                     tables, so accounting cannot drift from reality.
//   * batch scaling — arena(batch) == batch * arena(1), exactly (checked
//                     against a separately extracted batch-1 table).
//
// Debug builds run check_plan() automatically at the end of every plan
// construction; `flat_infer --verify` and SessionOptions::verify_plans run
// it on demand in any build. Every violation carries a typed PlanDiag so
// corruption tests can assert the exact failure class, not just "threw".
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "export/flat_model.h"

namespace nb::exporter {

class InferPlan;

/// Failure classes. One per independently-corruptible property of the
/// tables, so a mutation test can pin the diagnostic it expects.
enum class PlanDiag {
  geometry_broken,       // shapes don't follow from the conv arithmetic
  dataflow_broken,       // step consumes a region nothing produced
  offset_out_of_bounds,  // float-arena interval escapes arena_floats
  region_overlap,        // read and write regions of one step alias
  save_clobbered,        // a write lands on a live residual save slot
  save_stack_broken,     // save/add_saved pairing or size mismatch
  epilogue_broken,       // int8 in-place requantize not provably legal
  qarena_out_of_bounds,  // byte-arena interval escapes arena_int8_bytes
  stats_inconsistent,    // PlanStats disagrees with the step tables
  batch_scaling_broken,  // arena(batch) != batch * arena(1)
  bucket_plan_mismatch,  // bucket-rung plan is not a sound padded twin
};

const char* to_string(PlanDiag diag);

struct PlanFinding {
  PlanDiag diag;
  int64_t step = -1;  // step index, or -1 for a whole-plan property
  std::string detail;
};

/// What a verification pass concluded: empty findings == every obligation
/// discharged; `proved` lists the invariants in human-readable form (what
/// `flat_infer --verify` prints).
struct VerifyReport {
  std::vector<PlanFinding> findings;
  std::vector<std::string> proved;
  bool ok() const { return findings.empty(); }
};

/// Thrown by check_plan(); diag() is the FIRST violated property.
class PlanVerifyError : public std::runtime_error {
 public:
  PlanVerifyError(PlanDiag diag, const std::string& what)
      : std::runtime_error(what), diag_(diag) {}
  PlanDiag diag() const { return diag_; }

 private:
  PlanDiag diag_;
};

/// Pure-data snapshot of one step's table row (no borrowed pointers), so
/// verification — and the mutation tests that corrupt rows — operate on
/// plain values.
struct StepTable {
  OpKind kind = OpKind::save;
  bool depthwise = false;
  int64_t stride = 1, pad = 0, groups = 1, cout = 0, cin = 0, kernel = 1;
  float act_scale = 0.0f;
  int64_t eff_count = 0;  // per-channel requantize scales (int8 plans)
  int64_t in_c = 0, in_h = 0, in_w = 0;
  int64_t out_h = 0, out_w = 0;
  int64_t in_floats = 0, out_floats = 0;
  int64_t in_off = 0, out_off = 0, cols_off = 0, save_off = 0;
};

/// Everything verification needs, snapshotted out of a built plan.
struct PlanTables {
  Backend backend = Backend::fast;
  int64_t batch = 0, channels = 0, in_h = 0, in_w = 0;
  int64_t arena_floats = 0;
  int64_t cols_floats = 0;
  int64_t arena_int8_bytes = 0;
  int64_t qcols_off = 0;
  int64_t out_off = 0;
  std::vector<int64_t> out_shape;
  std::vector<StepTable> steps;
};

/// Extracts the verifiable tables from a built plan (friend of InferPlan).
PlanTables plan_tables(const InferPlan& plan);

/// The verifier proper: pure function over the tables. Checks every
/// property listed in the header comment except batch scaling (which needs
/// a second geometry — see verify_batch_scaling).
VerifyReport verify_tables(const PlanTables& t);

/// Convenience: snapshot + verify.
VerifyReport verify_plan(const InferPlan& plan);

/// Exact arena(batch) == batch * arena(1) scaling, `unit` being the tables
/// of a batch-1 plan for the same program/geometry/backend.
VerifyReport verify_batch_scaling(const PlanTables& t, const PlanTables& unit);

/// Bucket-plan invariants for pad-to-bucket serving (runtime/bucketing.h):
/// `bucket` must be the tables of the plan an Engine actually executes at a
/// bucket rung, `exact` the tables at some request's exact geometry that
/// was assigned to that rung. Proves the rung plan is a sound padded twin:
///   * same backend / batch / channels and step-for-step identical program
///     structure (kind, stride, pad, kernel, groups, cout, cin, depthwise);
///   * the rung covers the exact geometry and every step's activation
///     geometry dominates the exact plan's (padding can only grow planes);
///   * the padded input area stays within `max_pad_ratio` x the exact area
///     (the admission-side waste cap really held);
///   * arena monotonicity — the rung plan's arena is at least the exact
///     plan's, so serving from buckets never under-allocates.
/// Violations carry PlanDiag::bucket_plan_mismatch.
VerifyReport verify_bucket_plan(const PlanTables& bucket,
                                const PlanTables& exact,
                                double max_pad_ratio);

/// Throws PlanVerifyError on the first finding; no-op on a sound plan.
/// Debug plan builds call this automatically.
void check_plan(const InferPlan& plan);

}  // namespace nb::exporter
