// QModel — the integer-exact oracle for the true int8 inference path
// (Backend::int8). It executes a FlatModel with REAL int8 semantics: every
// conv/linear input is quantized to integer levels, products accumulate in
// int32, and one float requantize maps the accumulator back to real values.
// No GEMM, no im2col, no threading — the obviously-correct scalar loops.
//
// The bit-exactness contract with the fast int8 backend:
//
//   * Activation levels come from quantize_levels_u8 (one shared function),
//     so both sides round identically.
//   * The int32 accumulator is the EXACT integer sum of w * level. Integer
//     sums are order-invariant, so the packed GEMM's blocking/threading and
//     this oracle's naive loop produce the same int32 bit pattern.
//   * The float epilogue is the out-of-line requantize_row /
//     requantize_linear_row defined below — ONE compiled function used by
//     both the oracle and InferPlan, so no compiler can contract the
//     multiply-add differently on the two sides.
//   * Residual add, GAP and the entry layout conversion stay float with the
//     same scalar expressions as InferPlan.
//
// Together these make `InferPlan(int8).run(x)` memcmp-equal to
// `QModel(model).forward(x)` — enforced in tests/test_infer_runtime.cpp.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "export/flat_model.h"

namespace nb::exporter {

/// Fused int8 conv epilogue over one contiguous run of outputs:
/// out[i] = act_clamp((float)acc[i] * scale + bias). `scale` is the
/// per-channel effective scale weight_scale * act_scale. Defined out of
/// line (and never inlined) in qmodel.cpp so QModel and InferPlan execute
/// the same machine code — the epilogue is the only float arithmetic in
/// the int8 conv path, and a differently-contracted copy would break the
/// memcmp contract. Safe when out and acc alias elementwise (the plan
/// requantizes in place; element i is read before it is written).
void requantize_row(float* out, const int32_t* acc, int64_t n, float scale,
                    float bias, FlatAct act);

/// Linear-head epilogue over one image's logit row:
/// out[o] = (float)acc[o] * eff[o] + bias[o] (bias == nullptr reads 0).
void requantize_linear_row(float* out, const int32_t* acc, const float* eff,
                           const float* bias, int64_t n);

/// Whether every conv/linear in `model` can run on the true int8 backend:
/// calibrated act_scale > 0 and act_bits in [2, 8] (activation levels must
/// fit the unsigned-byte pipeline; weight levels already fit by the load
/// validation). On failure returns false and, when `reason` is non-null,
/// stores which op and field disqualified the program.
bool int8_compatible(const FlatModel& model, std::string* reason = nullptr);

/// The oracle itself. Borrows `model` (no weight copies); the FlatModel
/// must outlive the QModel. Construction validates int8_compatible and the
/// K <= 2^17 exactness bound per op.
class QModel {
 public:
  explicit QModel(const FlatModel& model);

  /// Int8-semantics inference. `input` is [N, C, H, W]; returns logits (or
  /// the final spatial activation for headless programs).
  Tensor forward(const Tensor& input) const;

 private:
  const FlatModel* model_;
  // Per op, per output channel: weight_scales[o] * act_scale, precomputed
  // with the same single float multiply InferPlan uses.
  std::vector<std::vector<float>> eff_;
};

}  // namespace nb::exporter
