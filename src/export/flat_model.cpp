#include "export/flat_model.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>

#include "export/infer_plan.h"
#include "export/weight_panels.h"
#include "quant/quantize.h"
#include "util/thread_safety.h"

namespace nb::exporter {

namespace {

constexpr char kMagic[4] = {'N', 'B', 'F', 'M'};

// Plausibility ceilings for loaded geometry. A corrupted field (random bit
// flip, fuzzed stream) can otherwise carry values like 2^56 into the
// weight-count checks, whose int64 products would overflow — UB — before
// the mismatch is ever detected. Bounding each factor first keeps every
// product comfortably inside int64: 2^20 * 2^20 * 2^9 * 2^9 < 2^60.
constexpr int64_t kMaxLoadChannels = int64_t{1} << 20;
constexpr int64_t kMaxLoadKernel = 512;
constexpr int64_t kMaxLoadStridePad = int64_t{1} << 16;
constexpr int64_t kMaxLoadResolution = int64_t{1} << 20;

template <typename T>
void write_pod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
void write_vec(std::ofstream& out, const std::vector<T>& v) {
  write_pod<int64_t>(out, static_cast<int64_t>(v.size()));
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(T)));
}

/// Bounds-checked cursor over an in-memory NBFM image — the one parser
/// behind both load(path) and load_from_buffer.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  void raw(void* dst, size_t n) {
    NB_CHECK(n <= size_ - off_, "flat model: truncated file");
    std::memcpy(dst, data_ + off_, n);
    off_ += n;
  }

  template <typename T>
  T pod() {
    T value{};
    raw(&value, sizeof(T));
    return value;
  }

  template <typename T>
  std::vector<T> vec() {
    const int64_t n = pod<int64_t>();
    NB_CHECK(n >= 0 && n < (int64_t{1} << 32),
             "flat model: bad vector length");
    NB_CHECK(static_cast<uint64_t>(n) * sizeof(T) <= size_ - off_,
             "flat model: truncated vector");
    std::vector<T> v(static_cast<size_t>(n));
    raw(v.data(), v.size() * sizeof(T));
    return v;
  }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t off_ = 0;
};

bool all_finite(const std::vector<float>& v) {
  for (const float x : v) {
    if (!std::isfinite(x)) return false;
  }
  return true;
}

/// Fake-quantizes an activation tensor the same way QuantConv2d does.
void quantize_activation_(Tensor& x, float scale, int bits) {
  if (scale > 0.0f) {
    quant::fake_quant_(x, scale, bits);
  }
}

void apply_act_(Tensor& x, FlatAct act) {
  float* p = x.data();
  const int64_t n = x.numel();
  switch (act) {
    case FlatAct::identity:
      return;
    case FlatAct::relu:
      for (int64_t i = 0; i < n; ++i) p[i] = std::max(p[i], 0.0f);
      return;
    case FlatAct::relu6:
      for (int64_t i = 0; i < n; ++i) p[i] = std::clamp(p[i], 0.0f, 6.0f);
      return;
  }
}

/// Direct grouped convolution on dequantized weights (reference runtime;
/// clarity over speed).
Tensor run_conv(const FlatConv& op, const Tensor& x) {
  NB_CHECK(x.dim() == 4, "flat conv: input must be NCHW");
  NB_CHECK(x.size(1) == op.cin, "flat conv: channel mismatch");
  const int64_t n = x.size(0);
  const int64_t in_h = x.size(2);
  const int64_t in_w = x.size(3);
  const int64_t out_h = (in_h + 2 * op.pad - op.kernel) / op.stride + 1;
  const int64_t out_w = (in_w + 2 * op.pad - op.kernel) / op.stride + 1;
  const int64_t cin_g = op.cin / op.groups;
  const int64_t cout_g = op.cout / op.groups;

  Tensor y({n, op.cout, out_h, out_w});
  const float* xp = x.data();
  float* yp = y.data();
  for (int64_t img = 0; img < n; ++img) {
    for (int64_t o = 0; o < op.cout; ++o) {
      const int64_t g = o / cout_g;
      const float scale = op.weight_scales[static_cast<size_t>(o)];
      const float b =
          op.has_bias ? op.bias[static_cast<size_t>(o)] : 0.0f;
      const int8_t* w =
          op.weights.data() + o * cin_g * op.kernel * op.kernel;
      for (int64_t oy = 0; oy < out_h; ++oy) {
        for (int64_t ox = 0; ox < out_w; ++ox) {
          // Integer-exact accumulation of (level * input) then one rescale,
          // mirroring an int8 MAC pipeline with int32 accumulators.
          float acc = 0.0f;
          for (int64_t ic = 0; ic < cin_g; ++ic) {
            const int64_t channel = g * cin_g + ic;
            const float* xplane =
                xp + (img * op.cin + channel) * in_h * in_w;
            const int8_t* wk = w + ic * op.kernel * op.kernel;
            for (int64_t ky = 0; ky < op.kernel; ++ky) {
              const int64_t iy = oy * op.stride + ky - op.pad;
              if (iy < 0 || iy >= in_h) continue;
              for (int64_t kx = 0; kx < op.kernel; ++kx) {
                const int64_t ix = ox * op.stride + kx - op.pad;
                if (ix < 0 || ix >= in_w) continue;
                acc += static_cast<float>(wk[ky * op.kernel + kx]) *
                       xplane[iy * in_w + ix];
              }
            }
          }
          yp[((img * op.cout + o) * out_h + oy) * out_w + ox] =
              acc * scale + b;
        }
      }
    }
  }
  return y;
}

Tensor run_gap(const Tensor& x) {
  const int64_t n = x.size(0);
  const int64_t c = x.size(1);
  const int64_t hw = x.size(2) * x.size(3);
  Tensor y({n, c});
  const float* xp = x.data();
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t ch = 0; ch < c; ++ch) {
      double s = 0.0;
      const float* plane = xp + (i * c + ch) * hw;
      for (int64_t t = 0; t < hw; ++t) s += plane[t];
      y.at(i, ch) = static_cast<float>(s / static_cast<double>(hw));
    }
  }
  return y;
}

Tensor run_linear(const FlatLinear& op, const Tensor& x) {
  NB_CHECK(x.dim() == 2 && x.size(1) == op.in,
           "flat linear: input shape mismatch");
  const int64_t n = x.size(0);
  Tensor y({n, op.out});
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t o = 0; o < op.out; ++o) {
      const int8_t* w = op.weights.data() + o * op.in;
      const float scale = op.weight_scales[static_cast<size_t>(o)];
      double acc = 0.0;
      for (int64_t k = 0; k < op.in; ++k) {
        acc += static_cast<double>(w[k]) * x.at(i, k);
      }
      y.at(i, o) = static_cast<float>(acc) * scale +
                   op.bias[static_cast<size_t>(o)];
    }
  }
  return y;
}

}  // namespace

void FlatModel::save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  NB_CHECK(static_cast<bool>(out), "flat model: cannot open " + path);
  out.write(kMagic, 4);
  write_pod<uint32_t>(out, kFlatVersion);
  write_pod<int64_t>(out, input_res_);
  write_pod<int64_t>(out, input_channels_);
  write_pod<uint32_t>(out, static_cast<uint32_t>(ops_.size()));
  for (const FlatOp& op : ops_) {
    write_pod<uint8_t>(out, static_cast<uint8_t>(op.kind));
    if (op.kind == OpKind::conv) {
      const FlatConv& c = op.conv;
      write_pod<uint8_t>(out, static_cast<uint8_t>(c.act));
      write_pod<int64_t>(out, c.stride);
      write_pod<int64_t>(out, c.pad);
      write_pod<int64_t>(out, c.groups);
      write_pod<int64_t>(out, c.cout);
      write_pod<int64_t>(out, c.cin);
      write_pod<int64_t>(out, c.kernel);
      write_pod<uint8_t>(out, c.weight_bits);
      write_vec(out, c.weights);
      write_vec(out, c.weight_scales);
      write_pod<uint8_t>(out, c.has_bias ? 1 : 0);
      if (c.has_bias) write_vec(out, c.bias);
      write_pod<float>(out, c.act_scale);
      write_pod<uint8_t>(out, c.act_bits);
    } else if (op.kind == OpKind::linear) {
      const FlatLinear& l = op.linear;
      write_pod<int64_t>(out, l.in);
      write_pod<int64_t>(out, l.out);
      write_pod<uint8_t>(out, l.weight_bits);
      write_vec(out, l.weights);
      write_vec(out, l.weight_scales);
      write_vec(out, l.bias);
      write_pod<float>(out, l.act_scale);
      write_pod<uint8_t>(out, l.act_bits);
    }
  }
  NB_CHECK(static_cast<bool>(out), "flat model: write failed for " + path);
}

FlatModel FlatModel::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  NB_CHECK(static_cast<bool>(in), "flat model: cannot open " + path);
  in.seekg(0, std::ios::end);
  const std::streamoff size = in.tellg();
  NB_CHECK(size >= 0, "flat model: read failed for " + path);
  in.seekg(0, std::ios::beg);
  std::vector<uint8_t> bytes(static_cast<size_t>(size));
  if (size > 0) {
    in.read(reinterpret_cast<char*>(bytes.data()), size);
    NB_CHECK(static_cast<bool>(in), "flat model: read failed for " + path);
  }
  return load_from_buffer(bytes.data(), bytes.size());
}

FlatModel FlatModel::load_from_buffer(const uint8_t* data, size_t size) {
  NB_CHECK(data != nullptr || size == 0, "flat model: null buffer");
  ByteReader in(data, size);
  char magic[4] = {};
  in.raw(magic, 4);
  NB_CHECK(std::memcmp(magic, kMagic, 4) == 0,
           "flat model: bad magic (not an NBFM file)");
  const auto version = in.pod<uint32_t>();
  NB_CHECK(version == kFlatVersion, "flat model: unsupported version " +
                                        std::to_string(version));
  FlatModel model;
  model.input_res_ = in.pod<int64_t>();
  model.input_channels_ = in.pod<int64_t>();
  NB_CHECK(model.input_res_ >= 0 && model.input_res_ <= kMaxLoadResolution,
           "flat model: implausible input resolution");
  NB_CHECK(model.input_channels_ > 0 &&
               model.input_channels_ <= kMaxLoadChannels,
           "flat model: implausible input channel count");
  const auto op_count = in.pod<uint32_t>();
  NB_CHECK(op_count < 100000, "flat model: implausible op count");
  for (uint32_t i = 0; i < op_count; ++i) {
    FlatOp op;
    op.kind = static_cast<OpKind>(in.pod<uint8_t>());
    switch (op.kind) {
      case OpKind::save:
      case OpKind::add_saved:
      case OpKind::gap:
        break;
      case OpKind::conv: {
        FlatConv& c = op.conv;
        const uint8_t act_raw = in.pod<uint8_t>();
        NB_CHECK(act_raw <= static_cast<uint8_t>(FlatAct::relu6),
                 "flat model: unknown conv activation");
        c.act = static_cast<FlatAct>(act_raw);
        c.stride = in.pod<int64_t>();
        c.pad = in.pod<int64_t>();
        c.groups = in.pod<int64_t>();
        c.cout = in.pod<int64_t>();
        c.cin = in.pod<int64_t>();
        c.kernel = in.pod<int64_t>();
        c.weight_bits = in.pod<uint8_t>();
        c.weights = in.vec<int8_t>();
        c.weight_scales = in.vec<float>();
        c.has_bias = in.pod<uint8_t>() != 0;
        if (c.has_bias) c.bias = in.vec<float>();
        c.act_scale = in.pod<float>();
        c.act_bits = in.pod<uint8_t>();
        NB_CHECK(c.cout > 0 && c.cin > 0 && c.kernel > 0 && c.stride > 0 &&
                     c.pad >= 0,
                 "flat model: bad conv geometry");
        // Plausibility bounds BEFORE any count product: a corrupted huge
        // field must reject here, not overflow the int64 arithmetic below.
        NB_CHECK(c.cout <= kMaxLoadChannels && c.cin <= kMaxLoadChannels &&
                     c.kernel <= kMaxLoadKernel &&
                     c.stride <= kMaxLoadStridePad &&
                     c.pad <= kMaxLoadStridePad,
                 "flat model: implausible conv geometry");
        NB_CHECK(c.weight_bits >= 1 && c.weight_bits <= 8,
                 "flat model: implausible conv weight bits");
        NB_CHECK(c.act_bits >= 1 && c.act_bits <= 32,
                 "flat model: implausible conv activation bits");
        NB_CHECK(c.groups > 0 && c.cin % c.groups == 0 &&
                     c.cout % c.groups == 0,
                 "flat model: conv groups must divide channels");
        NB_CHECK(static_cast<int64_t>(c.weights.size()) ==
                     c.cout * (c.cin / c.groups) * c.kernel * c.kernel,
                 "flat model: conv weight count mismatch");
        NB_CHECK(static_cast<int64_t>(c.weight_scales.size()) == c.cout,
                 "flat model: conv scale count mismatch");
        NB_CHECK(!c.has_bias ||
                     static_cast<int64_t>(c.bias.size()) == c.cout,
                 "flat model: conv bias count mismatch");
        // Int8-era numeric fields: a NaN/Inf/negative scale would load
        // "successfully" and only misbehave at quantization or plan-build
        // time (or silently disable fake-quant). Reject at the trust
        // boundary instead.
        NB_CHECK(std::isfinite(c.act_scale) && c.act_scale >= 0.0f,
                 "flat model: conv act_scale must be finite and >= 0");
        NB_CHECK(all_finite(c.weight_scales),
                 "flat model: non-finite conv weight scale");
        NB_CHECK(all_finite(c.bias), "flat model: non-finite conv bias");
        break;
      }
      case OpKind::linear: {
        FlatLinear& l = op.linear;
        l.in = in.pod<int64_t>();
        l.out = in.pod<int64_t>();
        l.weight_bits = in.pod<uint8_t>();
        l.weights = in.vec<int8_t>();
        l.weight_scales = in.vec<float>();
        l.bias = in.vec<float>();
        l.act_scale = in.pod<float>();
        l.act_bits = in.pod<uint8_t>();
        NB_CHECK(l.in > 0 && l.out > 0, "flat model: bad linear geometry");
        NB_CHECK(l.in <= kMaxLoadChannels && l.out <= kMaxLoadChannels,
                 "flat model: implausible linear geometry");
        NB_CHECK(l.weight_bits >= 1 && l.weight_bits <= 8,
                 "flat model: implausible linear weight bits");
        NB_CHECK(l.act_bits >= 1 && l.act_bits <= 32,
                 "flat model: implausible linear activation bits");
        NB_CHECK(static_cast<int64_t>(l.weights.size()) == l.in * l.out,
                 "flat model: linear weight count mismatch");
        NB_CHECK(static_cast<int64_t>(l.weight_scales.size()) == l.out,
                 "flat model: linear scale count mismatch");
        NB_CHECK(static_cast<int64_t>(l.bias.size()) == l.out,
                 "flat model: linear bias count mismatch");
        NB_CHECK(std::isfinite(l.act_scale) && l.act_scale >= 0.0f,
                 "flat model: linear act_scale must be finite and >= 0");
        NB_CHECK(all_finite(l.weight_scales),
                 "flat model: non-finite linear weight scale");
        NB_CHECK(all_finite(l.bias), "flat model: non-finite linear bias");
        break;
      }
      default:
        NB_CHECK(false, "flat model: unknown op kind");
    }
    model.ops_.push_back(std::move(op));
  }
  return model;
}

// The lazily-created single session behind forward(fast): the compiled
// weight panels (shared with copies of this model and with
// runtime::CompiledModel) plus one geometry-keyed InferPlan, behind a mutex
// so concurrent forward() calls are safe (they serialize; real concurrency
// lives in runtime::Session).
struct FlatModel::FastShim {
  Mutex mu;
  std::shared_ptr<const WeightPanels> panels NB_GUARDED_BY(mu);
  std::unique_ptr<InferPlan> plan NB_GUARDED_BY(mu);  // Backend::fast
  std::unique_ptr<InferPlan> plan_i8 NB_GUARDED_BY(mu);  // Backend::int8
      // (separate slot so alternating backends never thrash the
      // geometry-keyed cache)
};

FlatModel::FlatModel() : shim_(std::make_shared<FastShim>()) {}
FlatModel::~FlatModel() = default;
FlatModel::FlatModel(FlatModel&&) noexcept = default;
FlatModel& FlatModel::operator=(FlatModel&&) noexcept = default;

FlatModel::FlatModel(const FlatModel& other)
    : ops_(other.ops_),
      input_res_(other.input_res_),
      input_channels_(other.input_channels_),
      // Copies share the whole shim: the panels are built at most once
      // across all copies even when the copy happens before the first
      // build, and the plan cache is shared too (same program, and
      // forward() serializes on the shim mutex anyway). Mutators detach.
      shim_(other.shim_ != nullptr ? other.shim_
                                   : std::make_shared<FastShim>()) {}

FlatModel& FlatModel::operator=(const FlatModel& other) {
  if (this != &other) {
    FlatModel copy(other);
    *this = std::move(copy);
  }
  return *this;
}

// Rebuilds the shim after a move left it null; single-threaded by contract
// (only reached when reusing a moved-from model).
FlatModel::FastShim& FlatModel::ensure_shim() const {
  if (shim_ == nullptr) shim_ = std::make_shared<FastShim>();
  return *shim_;
}

void FlatModel::invalidate_compiled() {
  // Detach instead of clearing: copies sharing the old shim keep their
  // (still valid) compiled state for the unmutated program; this model
  // starts a fresh one for the new program.
  shim_ = std::make_shared<FastShim>();
}

void FlatModel::set_input(int64_t resolution, int64_t channels) {
  input_res_ = resolution;
  input_channels_ = channels;
  invalidate_compiled();
}

void FlatModel::push(FlatOp op) {
  ops_.push_back(std::move(op));
  invalidate_compiled();
}

std::shared_ptr<const WeightPanels> FlatModel::compiled_panels() const {
  FastShim& shim = ensure_shim();
  MutexLock lock(shim.mu);
  if (shim.panels == nullptr) shim.panels = WeightPanels::build(*this);
  return shim.panels;
}

Tensor FlatModel::forward(const Tensor& input, Backend backend) const {
  if (backend == Backend::fast || backend == Backend::int8) {
    NB_CHECK(input.dim() == 4, "flat model: planned backends need NCHW input");
    FastShim& shim = ensure_shim();
    MutexLock lock(shim.mu);
    if (shim.panels == nullptr) shim.panels = WeightPanels::build(*this);
    std::unique_ptr<InferPlan>& plan =
        backend == Backend::int8 ? shim.plan_i8 : shim.plan;
    if (plan == nullptr || plan->stats().batch != input.size(0) ||
        plan->stats().channels != input.size(1) ||
        plan->stats().in_h != input.size(2) ||
        plan->stats().in_w != input.size(3)) {
      plan = std::make_unique<InferPlan>(*this, shim.panels, input.size(0),
                                         input.size(1), input.size(2),
                                         input.size(3), backend);
    }
    return plan->run(input);
  }
  NB_CHECK(!ops_.empty(), "flat model: empty program");
  Tensor x = input.clone();
  std::vector<Tensor> saved;
  for (const FlatOp& op : ops_) {
    switch (op.kind) {
      case OpKind::save:
        saved.push_back(x.clone());
        break;
      case OpKind::add_saved:
        NB_CHECK(!saved.empty(), "flat model: ADD without SAVE");
        x.add_(saved.back());
        saved.pop_back();
        break;
      case OpKind::conv: {
        quantize_activation_(x, op.conv.act_scale, op.conv.act_bits);
        x = run_conv(op.conv, x);
        apply_act_(x, op.conv.act);
        break;
      }
      case OpKind::gap:
        x = run_gap(x);
        break;
      case OpKind::linear:
        quantize_activation_(x, op.linear.act_scale, op.linear.act_bits);
        x = run_linear(op.linear, x);
        break;
    }
  }
  return x;
}

Tensor FlatModel::forward(const Tensor& input) const {
  return forward(input,
                 input.dim() == 4 ? Backend::fast : Backend::reference);
}

int64_t FlatModel::weight_bytes() const {
  int64_t bytes = 0;
  for (const FlatOp& op : ops_) {
    if (op.kind == OpKind::conv) {
      bytes += static_cast<int64_t>(op.conv.weights.size()) +
               static_cast<int64_t>(op.conv.weight_scales.size()) * 4 +
               static_cast<int64_t>(op.conv.bias.size()) * 4 + 4;
    } else if (op.kind == OpKind::linear) {
      bytes += static_cast<int64_t>(op.linear.weights.size()) +
               static_cast<int64_t>(op.linear.weight_scales.size()) * 4 +
               static_cast<int64_t>(op.linear.bias.size()) * 4 + 4;
    }
  }
  return bytes;
}

}  // namespace nb::exporter
