#include "export/qmodel.h"

#include <algorithm>

#include "quant/quantize.h"
#include "tensor/gemm_s8.h"

namespace nb::exporter {

#if defined(NB_EXPORT_REQUANT_AVX2)
namespace detail {
void requantize_row_avx2(float* out, const int32_t* acc, int64_t n,
                         float scale, float bias, FlatAct act);
}  // namespace detail
#endif

namespace {

#if defined(__GNUC__)
#define NB_NOINLINE __attribute__((noinline))
#else
#define NB_NOINLINE
#endif

/// Int8 levels of one quantized activation tensor (offset-u8 storage).
std::vector<uint8_t> quantize_tensor(const Tensor& x, float scale, int bits) {
  std::vector<uint8_t> q(static_cast<size_t>(x.numel()));
  quant::quantize_levels_u8(x.data(), q.data(), x.numel(), scale, bits);
  return q;
}

Tensor run_conv_q(const FlatConv& op, const Tensor& x, const float* eff) {
  NB_CHECK(x.dim() == 4, "qmodel conv: input must be NCHW");
  NB_CHECK(x.size(1) == op.cin, "qmodel conv: channel mismatch");
  const std::vector<uint8_t> q = quantize_tensor(x, op.act_scale, op.act_bits);
  const int64_t n = x.size(0);
  const int64_t in_h = x.size(2);
  const int64_t in_w = x.size(3);
  const int64_t out_h = (in_h + 2 * op.pad - op.kernel) / op.stride + 1;
  const int64_t out_w = (in_w + 2 * op.pad - op.kernel) / op.stride + 1;
  const int64_t cin_g = op.cin / op.groups;
  const int64_t cout_g = op.cout / op.groups;
  const int64_t plane = out_h * out_w;

  Tensor y({n, op.cout, out_h, out_w});
  float* yp = y.data();
  std::vector<int32_t> acc(static_cast<size_t>(plane));
  for (int64_t img = 0; img < n; ++img) {
    for (int64_t o = 0; o < op.cout; ++o) {
      const int64_t g = o / cout_g;
      const int8_t* w =
          op.weights.data() + o * cin_g * op.kernel * op.kernel;
      for (int64_t oy = 0; oy < out_h; ++oy) {
        for (int64_t ox = 0; ox < out_w; ++ox) {
          // Exact int32 MAC over the in-bounds taps; skipped taps are
          // offset level 0 and contribute nothing, like the fast path's
          // 128-padded columns.
          int32_t a = 0;
          for (int64_t ic = 0; ic < cin_g; ++ic) {
            const int64_t channel = g * cin_g + ic;
            const uint8_t* xplane =
                q.data() + (img * op.cin + channel) * in_h * in_w;
            const int8_t* wk = w + ic * op.kernel * op.kernel;
            for (int64_t ky = 0; ky < op.kernel; ++ky) {
              const int64_t iy = oy * op.stride + ky - op.pad;
              if (iy < 0 || iy >= in_h) continue;
              for (int64_t kx = 0; kx < op.kernel; ++kx) {
                const int64_t ix = ox * op.stride + kx - op.pad;
                if (ix < 0 || ix >= in_w) continue;
                a += static_cast<int32_t>(wk[ky * op.kernel + kx]) *
                     (static_cast<int32_t>(xplane[iy * in_w + ix]) - 128);
              }
            }
          }
          acc[static_cast<size_t>(oy * out_w + ox)] = a;
        }
      }
      const float b = op.has_bias ? op.bias[static_cast<size_t>(o)] : 0.0f;
      requantize_row(yp + (img * op.cout + o) * plane, acc.data(), plane,
                     eff[o], b, op.act);
    }
  }
  return y;
}

Tensor run_gap_q(const Tensor& x) {
  const int64_t n = x.size(0);
  const int64_t c = x.size(1);
  const int64_t hw = x.size(2) * x.size(3);
  Tensor y({n, c});
  const float* xp = x.data();
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t ch = 0; ch < c; ++ch) {
      double s = 0.0;
      const float* plane = xp + (i * c + ch) * hw;
      for (int64_t t = 0; t < hw; ++t) s += plane[t];
      y.at(i, ch) = static_cast<float>(s / static_cast<double>(hw));
    }
  }
  return y;
}

Tensor run_linear_q(const FlatLinear& op, const Tensor& x, const float* eff) {
  NB_CHECK(x.dim() == 2 && x.size(1) == op.in,
           "qmodel linear: input shape mismatch");
  const std::vector<uint8_t> q = quantize_tensor(x, op.act_scale, op.act_bits);
  const int64_t n = x.size(0);
  Tensor y({n, op.out});
  std::vector<int32_t> acc(static_cast<size_t>(op.out));
  const float* bias = op.bias.empty() ? nullptr : op.bias.data();
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t o = 0; o < op.out; ++o) {
      const int8_t* w = op.weights.data() + o * op.in;
      const uint8_t* xrow = q.data() + i * op.in;
      int32_t a = 0;
      for (int64_t k = 0; k < op.in; ++k) {
        a += static_cast<int32_t>(w[k]) *
             (static_cast<int32_t>(xrow[k]) - 128);
      }
      acc[static_cast<size_t>(o)] = a;
    }
    requantize_linear_row(y.data() + i * op.out, acc.data(), eff, bias,
                          op.out);
  }
  return y;
}

}  // namespace

// NB_NOINLINE: these two are THE shared int8 float epilogue. QModel calls
// them from this translation unit; if the compiler inlined that call it
// could contract the multiply-add differently from the out-of-line copy
// InferPlan links against, silently breaking the memcmp contract.
NB_NOINLINE void requantize_row(float* out, const int32_t* acc, int64_t n,
                                float scale, float bias, FlatAct act) {
#if defined(NB_EXPORT_REQUANT_AVX2)
  // Bit-identical AVX2 instance (mul-then-add, NaN-faithful clamps); the
  // epilogue runs over every conv output element, so width matters.
  static const bool use_avx2 = __builtin_cpu_supports("avx2");
  if (use_avx2) {
    detail::requantize_row_avx2(out, acc, n, scale, bias, act);
    return;
  }
#endif
  switch (act) {
    case FlatAct::identity:
      for (int64_t i = 0; i < n; ++i) {
        out[i] = static_cast<float>(acc[i]) * scale + bias;
      }
      return;
    case FlatAct::relu:
      for (int64_t i = 0; i < n; ++i) {
        out[i] = std::max(static_cast<float>(acc[i]) * scale + bias, 0.0f);
      }
      return;
    case FlatAct::relu6:
      for (int64_t i = 0; i < n; ++i) {
        out[i] =
            std::clamp(static_cast<float>(acc[i]) * scale + bias, 0.0f, 6.0f);
      }
      return;
  }
}

NB_NOINLINE void requantize_linear_row(float* out, const int32_t* acc,
                                       const float* eff, const float* bias,
                                       int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    const float b = bias == nullptr ? 0.0f : bias[i];
    out[i] = static_cast<float>(acc[i]) * eff[i] + b;
  }
}

bool int8_compatible(const FlatModel& model, std::string* reason) {
  const auto fail = [&](size_t i, const char* what, const char* why) {
    if (reason != nullptr) {
      *reason = "op " + std::to_string(i) + " (" + what + "): " + why;
    }
    return false;
  };
  for (size_t i = 0; i < model.ops().size(); ++i) {
    const FlatOp& op = model.ops()[i];
    if (op.kind == OpKind::conv) {
      const FlatConv& c = op.conv;
      if (!(c.act_scale > 0.0f)) {
        return fail(i, "conv", "act_scale not calibrated (must be > 0)");
      }
      if (c.act_bits < 2 || c.act_bits > 8) {
        return fail(i, "conv", "act_bits outside [2, 8]");
      }
      if (c.weight_bits > 8) {
        return fail(i, "conv", "weight_bits > 8");
      }
    } else if (op.kind == OpKind::linear) {
      const FlatLinear& l = op.linear;
      if (!(l.act_scale > 0.0f)) {
        return fail(i, "linear", "act_scale not calibrated (must be > 0)");
      }
      if (l.act_bits < 2 || l.act_bits > 8) {
        return fail(i, "linear", "act_bits outside [2, 8]");
      }
      if (l.weight_bits > 8) {
        return fail(i, "linear", "weight_bits > 8");
      }
    }
  }
  return true;
}

QModel::QModel(const FlatModel& model) : model_(&model) {
  std::string reason;
  NB_CHECK(int8_compatible(model, &reason),
           "qmodel: program not int8-compatible: " + reason);
  eff_.resize(model.ops().size());
  for (size_t i = 0; i < model.ops().size(); ++i) {
    const FlatOp& op = model.ops()[i];
    if (op.kind == OpKind::conv) {
      const FlatConv& c = op.conv;
      NB_CHECK((c.cin / c.groups) * c.kernel * c.kernel <= kGemmS8MaxK,
               "qmodel: conv reduction exceeds the int32-exact bound");
      eff_[i].resize(static_cast<size_t>(c.cout));
      for (int64_t o = 0; o < c.cout; ++o) {
        eff_[i][static_cast<size_t>(o)] =
            c.weight_scales[static_cast<size_t>(o)] * c.act_scale;
      }
    } else if (op.kind == OpKind::linear) {
      const FlatLinear& l = op.linear;
      NB_CHECK(l.in <= kGemmS8MaxK,
               "qmodel: linear reduction exceeds the int32-exact bound");
      eff_[i].resize(static_cast<size_t>(l.out));
      for (int64_t o = 0; o < l.out; ++o) {
        eff_[i][static_cast<size_t>(o)] =
            l.weight_scales[static_cast<size_t>(o)] * l.act_scale;
      }
    }
  }
}

Tensor QModel::forward(const Tensor& input) const {
  NB_CHECK(!model_->ops().empty(), "qmodel: empty program");
  Tensor x = input.clone();
  std::vector<Tensor> saved;
  for (size_t i = 0; i < model_->ops().size(); ++i) {
    const FlatOp& op = model_->ops()[i];
    switch (op.kind) {
      case OpKind::save:
        saved.push_back(x.clone());
        break;
      case OpKind::add_saved:
        NB_CHECK(!saved.empty(), "qmodel: ADD without SAVE");
        x.add_(saved.back());
        saved.pop_back();
        break;
      case OpKind::conv:
        x = run_conv_q(op.conv, x, eff_[i].data());
        break;
      case OpKind::gap:
        x = run_gap_q(x);
        break;
      case OpKind::linear:
        x = run_linear_q(op.linear, x, eff_[i].data());
        break;
    }
  }
  return x;
}

}  // namespace nb::exporter
