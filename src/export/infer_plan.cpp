#include "export/infer_plan.h"

#include <algorithm>
#include <cstring>

#include "export/plan_verify.h"
#include "export/qmodel.h"
#include "quant/quantize.h"
#include "tensor/depthwise.h"
#include "tensor/gemm.h"
#include "tensor/gemm_s8.h"
#include "tensor/im2col.h"
#include "tensor/threadpool.h"

namespace nb::exporter {

namespace {

/// Fused epilogue, in place over one contiguous output row: per-channel
/// rescale of the raw integer-level accumulator, bias, and the activation
/// clamp, all in the same store. Scalar expressions match the reference
/// interpreter's `acc * scale + b` followed by apply_act_ exactly.
void store_row(float* row, int64_t count, float scale, float b, FlatAct act) {
  switch (act) {
    case FlatAct::identity:
      for (int64_t p = 0; p < count; ++p) row[p] = row[p] * scale + b;
      return;
    case FlatAct::relu:
      for (int64_t p = 0; p < count; ++p) {
        row[p] = std::max(row[p] * scale + b, 0.0f);
      }
      return;
    case FlatAct::relu6:
      for (int64_t p = 0; p < count; ++p) {
        row[p] = std::clamp(row[p] * scale + b, 0.0f, 6.0f);
      }
      return;
  }
}

}  // namespace

InferPlan::InferPlan(const FlatModel& model, int64_t batch, int64_t channels,
                     int64_t in_h, int64_t in_w, Backend backend)
    : InferPlan(model, WeightPanels::build(model), batch, channels, in_h,
                in_w, backend) {}

InferPlan::InferPlan(const FlatModel& model,
                     std::shared_ptr<const WeightPanels> panels, int64_t batch,
                     int64_t channels, int64_t in_h, int64_t in_w,
                     Backend backend)
    : panels_(std::move(panels)) {
  NB_CHECK(batch > 0 && channels > 0 && in_h > 0 && in_w > 0,
           "infer plan: bad input geometry");
  NB_CHECK(!model.ops().empty(), "flat model: empty program");
  NB_CHECK(panels_ != nullptr && panels_->op_count() == model.ops().size(),
           "infer plan: weight panels do not match the program");
  NB_CHECK(backend != Backend::reference,
           "infer plan: the reference interpreter has no plan");
  if (backend == Backend::int8) {
    std::string reason;
    NB_CHECK(int8_compatible(model, &reason),
             "infer plan: program not int8-compatible: " + reason);
  }

  stats_.backend = backend;
  stats_.batch = batch;
  stats_.channels = channels;
  stats_.in_h = in_h;
  stats_.in_w = in_w;
  stats_.ops = static_cast<int64_t>(model.ops().size());

  // Symbolic walk: current activation shape, ping-pong region, residual
  // stack. Region ids and save depths are recorded per step and resolved to
  // concrete arena offsets once every region's high-water mark is known.
  bool spatial = true;
  int64_t c = channels, h = in_h, w = in_w;
  int64_t cur = batch * c * h * w;
  int region = 0;
  int64_t ping[2] = {cur, 0};
  std::vector<int64_t> save_sizes;   // high-water mark per nesting depth
  std::vector<int64_t> save_stack;   // numel of each live residual copy
  int64_t saved_total = 0;
  int64_t cols_max = 0;
  // Largest conv/linear input in elements — the int8 plan's quantized-input
  // byte region must hold any of them (one byte per element).
  int64_t qin_max = 0;
  std::vector<int> in_region, out_region, save_depth;

  stats_.no_reuse_floats = cur;  // the executor's own copy of the input
  stats_.peak_live_floats = cur;

  for (size_t op_i = 0; op_i < model.ops().size(); ++op_i) {
    const FlatOp& op = model.ops()[op_i];
    const OpPanel& panel = panels_->at(op_i);
    Step s;
    s.kind = op.kind;
    s.in_c = c;
    s.in_h = h;
    s.in_w = w;
    s.in_floats = cur;
    int in_reg = region, out_reg = region, depth = -1;
    switch (op.kind) {
      case OpKind::save: {
        depth = static_cast<int>(save_stack.size());
        if (static_cast<size_t>(depth) == save_sizes.size()) {
          save_sizes.push_back(0);
        }
        save_sizes[static_cast<size_t>(depth)] =
            std::max(save_sizes[static_cast<size_t>(depth)], cur);
        save_stack.push_back(cur);
        saved_total += cur;
        s.out_floats = cur;
        stats_.no_reuse_floats += cur;
        break;
      }
      case OpKind::add_saved: {
        NB_CHECK(!save_stack.empty(), "flat model: ADD without SAVE");
        NB_CHECK(save_stack.back() == cur,
                 "flat model: residual shape mismatch at ADD");
        saved_total -= save_stack.back();
        save_stack.pop_back();
        depth = static_cast<int>(save_stack.size());
        s.out_floats = cur;
        break;
      }
      case OpKind::conv: {
        const FlatConv& cv = op.conv;
        NB_CHECK(spatial, "flat conv: input must be NCHW");
        NB_CHECK(c == cv.cin, "flat conv: channel mismatch");
        const int64_t oh = conv_out_size(h, cv.kernel, cv.stride, cv.pad);
        const int64_t ow = conv_out_size(w, cv.kernel, cv.stride, cv.pad);
        NB_CHECK(oh > 0 && ow > 0, "flat conv: empty output plane");
        s.act = cv.act;
        s.stride = cv.stride;
        s.pad = cv.pad;
        s.groups = cv.groups;
        s.cout = cv.cout;
        s.cin = cv.cin;
        s.kernel = cv.kernel;
        s.act_scale = cv.act_scale;
        s.act_bits = cv.act_bits;
        s.depthwise = cv.groups == cv.cin && cv.groups == cv.cout;
        s.wf = panel.wf.data();
        s.wq = panel.wq.data();
        s.scales = panel.scales.data();
        s.bias = panel.bias.empty() ? nullptr : panel.bias.data();
        if (backend == Backend::int8) {
          NB_CHECK((cv.cin / cv.groups) * cv.kernel * cv.kernel <=
                       kGemmS8MaxK,
                   "infer plan: conv reduction exceeds the int32-exact "
                   "bound of the int8 backend");
          qin_max = std::max(qin_max, s.in_floats);
          s.eff.resize(static_cast<size_t>(cv.cout));
          for (int64_t o = 0; o < cv.cout; ++o) {
            s.eff[static_cast<size_t>(o)] =
                panel.scales[static_cast<size_t>(o)] * cv.act_scale;
          }
        }
        s.out_h = oh;
        s.out_w = ow;
        const int64_t out = batch * cv.cout * oh * ow;
        s.out_floats = out;
        int64_t cols = 0;
        if (!s.depthwise) {
          // Columns of the whole micro-batch side by side (x batch): ONE
          // GEMM per group lowers every image at once, and its output is
          // already the batch-interleaved layout of the next activation.
          cols = (cv.cin / cv.groups) * cv.kernel * cv.kernel * batch * oh * ow;
          cols_max = std::max(cols_max, cols);
        }
        out_reg = 1 - region;
        region = out_reg;
        ping[region] = std::max(ping[region], out);
        stats_.peak_live_floats = std::max(
            stats_.peak_live_floats, saved_total + cur + out + cols);
        stats_.no_reuse_floats += out + cols;
        c = cv.cout;
        h = oh;
        w = ow;
        cur = out;
        break;
      }
      case OpKind::gap: {
        NB_CHECK(spatial, "flat gap: input must be NCHW");
        const int64_t out = batch * c;
        s.out_floats = out;
        out_reg = 1 - region;
        region = out_reg;
        ping[region] = std::max(ping[region], out);
        stats_.peak_live_floats =
            std::max(stats_.peak_live_floats, saved_total + cur + out);
        stats_.no_reuse_floats += out;
        spatial = false;
        h = 0;
        w = 0;
        cur = out;
        break;
      }
      case OpKind::linear: {
        const FlatLinear& ln = op.linear;
        NB_CHECK(!spatial, "flat linear: input must be 2-D (run GAP first)");
        NB_CHECK(c == ln.in, "flat linear: input feature mismatch");
        s.cin = ln.in;
        s.cout = ln.out;
        s.act_scale = ln.act_scale;
        s.act_bits = ln.act_bits;
        s.wf = panel.wf.data();
        s.wq = panel.wq.data();
        s.scales = panel.scales.data();
        s.bias = panel.bias.empty() ? nullptr : panel.bias.data();
        if (backend == Backend::int8) {
          NB_CHECK(ln.in <= kGemmS8MaxK,
                   "infer plan: linear reduction exceeds the int32-exact "
                   "bound of the int8 backend");
          qin_max = std::max(qin_max, s.in_floats);
          s.eff.resize(static_cast<size_t>(ln.out));
          for (int64_t o = 0; o < ln.out; ++o) {
            s.eff[static_cast<size_t>(o)] =
                panel.scales[static_cast<size_t>(o)] * ln.act_scale;
          }
        }
        const int64_t out = batch * ln.out;
        s.out_floats = out;
        out_reg = 1 - region;
        region = out_reg;
        ping[region] = std::max(ping[region], out);
        stats_.peak_live_floats =
            std::max(stats_.peak_live_floats, saved_total + cur + out);
        stats_.no_reuse_floats += out;
        c = ln.out;
        cur = out;
        break;
      }
    }
    stats_.peak_live_floats =
        std::max(stats_.peak_live_floats, saved_total + cur);
    in_region.push_back(in_reg);
    out_region.push_back(out_reg);
    save_depth.push_back(depth);
    steps_.push_back(std::move(s));
  }
  stats_.peak_live_floats =
      std::max(stats_.peak_live_floats, saved_total + cur);
  stats_.save_depth = static_cast<int64_t>(save_sizes.size());
  stats_.weight_cache_floats = panels_->total_floats();

  // Resolve the layout: [ ping | pong | save slots by depth | cols ].
  const int64_t base[2] = {0, ping[0]};
  std::vector<int64_t> save_base(save_sizes.size());
  int64_t off = ping[0] + ping[1];
  for (size_t d = 0; d < save_sizes.size(); ++d) {
    save_base[d] = off;
    off += save_sizes[d];
  }
  const int64_t cols_base = off;
  if (backend == Backend::int8) {
    // The int8 plan never touches the float cols region — its im2col panel
    // is the byte qarena instead, alongside the quantized-input region.
    // Accumulators need no region of their own: the int32 GEMM output is
    // requantized in place over the float out region (4 bytes either way).
    stats_.cols_floats = 0;
    stats_.arena_floats = off;
    stats_.arena_int8_bytes = qin_max + cols_max;
    qcols_off_ = qin_max;
    qarena_.resize(static_cast<size_t>(stats_.arena_int8_bytes));
  } else {
    stats_.cols_floats = cols_max;
    stats_.arena_floats = off + cols_max;
  }

  for (size_t i = 0; i < steps_.size(); ++i) {
    Step& s = steps_[i];
    s.in_off = base[in_region[i]];
    s.out_off = base[out_region[i]];
    s.cols_off = cols_base;
    if (save_depth[i] >= 0) {
      s.save_off = save_base[static_cast<size_t>(save_depth[i])];
    }
  }
  out_shape_ = spatial ? std::vector<int64_t>{batch, c, h, w}
                       : std::vector<int64_t>{batch, c};
  out_off_ = base[region];
  arena_.resize(static_cast<size_t>(stats_.arena_floats));
#ifndef NDEBUG
  // Debug builds prove every freshly-built plan safe before it can run:
  // live-range disjointness, dataflow, bounds, epilogue legality — see
  // plan_verify.h. Release builds expose the same check via
  // SessionOptions::verify_plans and `flat_infer --verify`.
  check_plan(*this);
#endif
}

void InferPlan::run_conv(const Step& s, const float* in, float* out,
                         float* cols) const {
  const int64_t n = stats_.batch;
  const int64_t in_hw = s.in_h * s.in_w;
  const int64_t plane = s.out_h * s.out_w;  // one image's output plane
  const int64_t row = n * plane;  // one channel's batch-interleaved row
  const int64_t k = s.kernel;
  if (s.depthwise) {
    // One (channel, image) plane per work item, epilogue fused in. In the
    // batch-interleaved layout channel ch of image i reads the contiguous
    // plane at ch*n*in_hw + i*in_hw and writes ch*row + i*plane.
    const int64_t planes = s.cout * n;
    const int64_t grain =
        std::max<int64_t>(1, (int64_t{1} << 14) / std::max<int64_t>(plane, 1));
    parallel_for(planes, grain, [&](int64_t p0, int64_t p1) {
      for (int64_t pl = p0; pl < p1; ++pl) {
        const int64_t ch = pl / n;
        const int64_t i = pl % n;
        float* orow = out + ch * row + i * plane;
        depthwise_plane(in + (ch * n + i) * in_hw, s.wf + ch * k * k, orow,
                        s.in_h, s.in_w, s.out_h, s.out_w, k, s.stride, s.pad,
                        0.0f);
        const float b = s.bias == nullptr ? 0.0f : s.bias[ch];
        store_row(orow, plane, s.scales[ch], b, s.act);
      }
    });
    return;
  }

  // Lowered path: ONE batched im2col + packed GEMM per group covers the
  // whole micro-batch — the columns of every image sit side by side in a
  // [col_rows, n*plane] panel, so weight-panel packing and micro-kernel
  // fringes amortize across the batch, and the [cout_g, n*plane] output
  // lands directly in ping/pong as the next activation's layout (no
  // staging, no scatter). The GEMM's per-element rounding is independent
  // of M/N (one continuous ascending K chain), so every element is bitwise
  // identical to a per-image lowering.
  const int64_t cin_g = s.cin / s.groups;
  const int64_t cout_g = s.cout / s.groups;
  const int64_t col_rows = cin_g * k * k;
  for (int64_t g = 0; g < s.groups; ++g) {
    im2col_batched(in + g * cin_g * n * in_hw, n, in_hw, n * in_hw, cin_g,
                   s.in_h, s.in_w, k, k, s.stride, s.stride, s.pad, s.pad,
                   cols);
    gemm(false, false, cout_g, row, col_rows, 1.0f,
         s.wf + g * cout_g * col_rows, cols, 0.0f, out + g * cout_g * row);
  }
  // Fused epilogue, one batch-interleaved channel row at a time (the
  // per-channel scale/bias covers the whole row).
  const int64_t grain =
      std::max<int64_t>(1, 4096 / std::max<int64_t>(row, 1));
  parallel_for(s.cout, grain, [&](int64_t o0, int64_t o1) {
    for (int64_t o = o0; o < o1; ++o) {
      float* orow = out + o * row;
      const float b = s.bias == nullptr ? 0.0f : s.bias[o];
      store_row(orow, row, s.scales[o], b, s.act);
    }
  });
}

void InferPlan::run_conv_s8(const Step& s, const uint8_t* in, float* out,
                            uint8_t* cols) const {
  // Mirror of run_conv over integer levels. The int32 accumulators are
  // written straight into the float out region (both are 4 bytes per
  // element) and requantize_row rewrites them as floats IN PLACE — element
  // i is read before it is written, so the aliasing is benign, and no
  // separate accumulator arena exists. The epilogue itself is the shared
  // out-of-line function from qmodel.cpp, which is what makes this path
  // memcmp-equal to the QModel oracle.
  const int64_t n = stats_.batch;
  const int64_t in_hw = s.in_h * s.in_w;
  const int64_t plane = s.out_h * s.out_w;
  const int64_t row = n * plane;
  const int64_t k = s.kernel;
  if (s.depthwise) {
    const int64_t planes = s.cout * n;
    const int64_t grain =
        std::max<int64_t>(1, (int64_t{1} << 14) / std::max<int64_t>(plane, 1));
    parallel_for(planes, grain, [&](int64_t p0, int64_t p1) {
      for (int64_t pl = p0; pl < p1; ++pl) {
        const int64_t ch = pl / n;
        const int64_t i = pl % n;
        float* orow = out + ch * row + i * plane;
        int32_t* acc = reinterpret_cast<int32_t*>(orow);
        depthwise_plane_s8(in + (ch * n + i) * in_hw, s.wq + ch * k * k, acc,
                           s.in_h, s.in_w, s.out_h, s.out_w, k, s.stride,
                           s.pad);
        const float b = s.bias == nullptr ? 0.0f : s.bias[ch];
        requantize_row(orow, acc, plane, s.eff[static_cast<size_t>(ch)], b,
                       s.act);
      }
    });
    return;
  }

  // Lowered path: ONE byte im2col + int8 GEMM per group covers the whole
  // micro-batch, exactly like the float path — and because the GEMM is
  // integer-exact, batched-vs-sequential and thread-count invariance hold
  // bitwise by construction rather than by rounding-order discipline.
  const int64_t cin_g = s.cin / s.groups;
  const int64_t cout_g = s.cout / s.groups;
  const int64_t col_rows = cin_g * k * k;
  for (int64_t g = 0; g < s.groups; ++g) {
    im2col_s8_batched(in + g * cin_g * n * in_hw, n, in_hw, n * in_hw, cin_g,
                      s.in_h, s.in_w, k, k, s.stride, s.stride, s.pad, s.pad,
                      cols);
    gemm_s8(cout_g, row, col_rows, s.wq + g * cout_g * col_rows, cols,
            reinterpret_cast<int32_t*>(out + g * cout_g * row));
  }
  const int64_t grain =
      std::max<int64_t>(1, 4096 / std::max<int64_t>(row, 1));
  parallel_for(s.cout, grain, [&](int64_t o0, int64_t o1) {
    for (int64_t o = o0; o < o1; ++o) {
      float* orow = out + o * row;
      const float b = s.bias == nullptr ? 0.0f : s.bias[o];
      requantize_row(orow, reinterpret_cast<const int32_t*>(orow), row,
                     s.eff[static_cast<size_t>(o)], b, s.act);
    }
  });
}

void InferPlan::run_gap(const Step& s, const float* in, float* out) const {
  // Reads the batch-interleaved input and emits standard [batch, channels]
  // rows — the layout the linear head consumes — so GAP doubles as the
  // exit from the interleaved world for classifier programs.
  const int64_t hw = s.in_h * s.in_w;
  const int64_t n = stats_.batch;
  const int64_t planes = s.in_c * n;
  const int64_t grain =
      std::max<int64_t>(1, (int64_t{1} << 14) / std::max<int64_t>(hw, 1));
  parallel_for(planes, grain, [&](int64_t p0, int64_t p1) {
    for (int64_t pl = p0; pl < p1; ++pl) {
      const int64_t ch = pl / n;
      const int64_t i = pl % n;
      const float* plane = in + pl * hw;
      double acc = 0.0;
      for (int64_t t = 0; t < hw; ++t) acc += plane[t];
      out[i * s.in_c + ch] = static_cast<float>(acc / static_cast<double>(hw));
    }
  });
}

void InferPlan::run_linear(const Step& s, const float* in, float* out) const {
  // Double accumulation in ascending k, exactly the reference interpreter's
  // order, so fast and reference logits agree bitwise here.
  const int64_t features = s.cin;
  const int64_t total = stats_.batch * s.cout;
  parallel_for(total, 16, [&](int64_t r0, int64_t r1) {
    for (int64_t idx = r0; idx < r1; ++idx) {
      const int64_t i = idx / s.cout;
      const int64_t o = idx % s.cout;
      const float* wrow = s.wf + o * features;
      const float* xrow = in + i * features;
      double acc = 0.0;
      for (int64_t t = 0; t < features; ++t) {
        acc += static_cast<double>(wrow[t]) * xrow[t];
      }
      const float b = s.bias == nullptr ? 0.0f : s.bias[o];
      out[idx] = static_cast<float>(acc) * s.scales[o] + b;
    }
  });
}

void InferPlan::run_linear_s8(const Step& s, const uint8_t* in,
                              float* out) const {
  // Exact int32 dot products staged over the out region (the head is tiny:
  // batch * classes rows over <= 2^17 features), then one shared epilogue
  // per image row — scalar loops suffice, and integer exactness keeps the
  // result thread-invariant for free.
  const int64_t features = s.cin;
  const int64_t total = stats_.batch * s.cout;
  int32_t* acc = reinterpret_cast<int32_t*>(out);
  parallel_for(total, 16, [&](int64_t r0, int64_t r1) {
    for (int64_t idx = r0; idx < r1; ++idx) {
      const int64_t i = idx / s.cout;
      const int64_t o = idx % s.cout;
      const int8_t* wrow = s.wq + o * features;
      const uint8_t* xrow = in + i * features;
      int32_t a = 0;
      for (int64_t t = 0; t < features; ++t) {
        a += static_cast<int32_t>(wrow[t]) *
             (static_cast<int32_t>(xrow[t]) - 128);
      }
      acc[idx] = a;
    }
  });
  for (int64_t i = 0; i < stats_.batch; ++i) {
    requantize_linear_row(out + i * s.cout, acc + i * s.cout, s.eff.data(),
                          s.bias, s.cout);
  }
}

Tensor InferPlan::run(const Tensor& input) const {
  NB_CHECK(input.dim() == 4 && input.size(0) == stats_.batch &&
               input.size(1) == stats_.channels &&
               input.size(2) == stats_.in_h && input.size(3) == stats_.in_w,
           "infer plan: input " + input.shape_str() +
               " does not match the planned geometry");
  float* arena = arena_.data();
  // Entry: NCHW -> batch-interleaved gather (a plain copy at batch == 1,
  // where the layouts coincide).
  const int64_t n = stats_.batch;
  {
    const int64_t c = stats_.channels;
    const int64_t hw = stats_.in_h * stats_.in_w;
    float* entry = arena + steps_.front().in_off;
    if (n == 1) {
      std::memcpy(entry, input.data(),
                  static_cast<size_t>(input.numel()) * sizeof(float));
    } else {
      const float* src = input.data();
      const int64_t grain =
          std::max<int64_t>(1, (int64_t{1} << 14) / std::max<int64_t>(hw, 1));
      parallel_for(n * c, grain, [&](int64_t p0, int64_t p1) {
        for (int64_t pl = p0; pl < p1; ++pl) {
          const int64_t i = pl / c;
          const int64_t ch = pl % c;
          std::memcpy(entry + (ch * n + i) * hw, src + pl * hw,
                      static_cast<size_t>(hw) * sizeof(float));
        }
      });
    }
  }

  for (const Step& s : steps_) {
    switch (s.kind) {
      case OpKind::save:
        std::memcpy(arena + s.save_off, arena + s.in_off,
                    static_cast<size_t>(s.in_floats) * sizeof(float));
        break;
      case OpKind::add_saved: {
        float* cur = arena + s.in_off;
        const float* sv = arena + s.save_off;
        parallel_for(s.in_floats, int64_t{1} << 14,
                     [&](int64_t b, int64_t e) {
                       for (int64_t t = b; t < e; ++t) cur[t] += sv[t];
                     });
        break;
      }
      case OpKind::conv:
      case OpKind::linear: {
        float* in = arena + s.in_off;
        if (stats_.backend == Backend::int8) {
          // True int8: quantize the float activation to offset-u8 levels
          // (the same rounding fake_quant_buffer applies, via the shared
          // quantize_levels_u8) and run the integer kernels. The float
          // input region is left untouched — it is dead after this op.
          uint8_t* qin = qarena_.data();
          parallel_for(s.in_floats, int64_t{1} << 14,
                       [&](int64_t b, int64_t e) {
                         quant::quantize_levels_u8(in + b, qin + b, e - b,
                                                   s.act_scale, s.act_bits);
                       });
          if (s.kind == OpKind::conv) {
            run_conv_s8(s, qin, arena + s.out_off,
                        qarena_.data() + qcols_off_);
          } else {
            run_linear_s8(s, qin, arena + s.out_off);
          }
          break;
        }
        if (s.act_scale > 0.0f) {
          parallel_for(s.in_floats, int64_t{1} << 14,
                       [&](int64_t b, int64_t e) {
                         quant::fake_quant_buffer(in + b, e - b, s.act_scale,
                                                  s.act_bits);
                       });
        }
        if (s.kind == OpKind::conv) {
          run_conv(s, in, arena + s.out_off, arena + s.cols_off);
        } else {
          run_linear(s, in, arena + s.out_off);
        }
        break;
      }
      case OpKind::gap:
        run_gap(s, arena + s.in_off, arena + s.out_off);
        break;
    }
  }

  Tensor out(out_shape_);
  if (out_shape_.size() == 4 && n > 1) {
    // The program ended spatially: scatter the batch-interleaved result
    // back to NCHW. (GAP already emitted [batch, channels] rows, so
    // classifier programs skip this.)
    const int64_t c = out_shape_[1];
    const int64_t hw = out_shape_[2] * out_shape_[3];
    const float* res = arena + out_off_;
    float* dst = out.data();
    const int64_t grain =
        std::max<int64_t>(1, (int64_t{1} << 14) / std::max<int64_t>(hw, 1));
    parallel_for(n * c, grain, [&](int64_t p0, int64_t p1) {
      for (int64_t pl = p0; pl < p1; ++pl) {
        const int64_t i = pl / c;
        const int64_t ch = pl % c;
        std::memcpy(dst + pl * hw, res + (ch * n + i) * hw,
                    static_cast<size_t>(hw) * sizeof(float));
      }
    });
  } else {
    std::memcpy(out.data(), arena + out_off_,
                static_cast<size_t>(out.numel()) * sizeof(float));
  }
  return out;
}

PlanValidRegion InferPlan::valid_output_region(int64_t valid_h,
                                               int64_t valid_w) const {
  NB_CHECK(valid_h >= 1 && valid_h <= stats_.in_h && valid_w >= 1 &&
               valid_w <= stats_.in_w,
           "infer plan: valid region must be within the planned geometry");
  PlanValidRegion v{valid_h, valid_w, true};
  for (const Step& s : steps_) {
    switch (s.kind) {
      case OpKind::conv: {
        // Output index x reads input taps [x*stride - pad,
        // x*stride - pad + kernel). Taps below 0 land in the conv's own
        // zero padding (model semantics, identical at any bucket); taps at
        // or past the valid extent may be bucket zeros, so x contributes
        // iff x*stride - pad + kernel - 1 < valid, i.e.
        // x <= (valid + pad - kernel) / stride. Clamped to the planned
        // output extent.
        auto shrink = [&](int64_t valid, int64_t out) {
          const int64_t top = valid + s.pad - s.kernel;
          const int64_t n = top < 0 ? 0 : top / s.stride + 1;
          return std::min(n, out);
        };
        v.h = shrink(v.h, s.out_h);
        v.w = shrink(v.w, s.out_w);
        if (v.h <= 0 || v.w <= 0) {
          return PlanValidRegion{0, 0, true};
        }
        break;
      }
      case OpKind::gap:
      case OpKind::linear:
        // GAP averages (and linear then mixes) the WHOLE plane, padding
        // included — no sub-region of the output is padding-free.
        return PlanValidRegion{0, 0, false};
      case OpKind::save:
      case OpKind::add_saved:
        // Elementwise over matching geometries: the valid extent carries
        // through unchanged (the saved operand shares the same history).
        break;
    }
  }
  return v;
}

}  // namespace nb::exporter
