#include "export/weight_panels.h"

#include "export/flat_model.h"
#include "quant/quantize.h"

namespace nb::exporter {

std::shared_ptr<const WeightPanels> WeightPanels::build(
    const FlatModel& model) {
  auto panels = std::shared_ptr<WeightPanels>(new WeightPanels());
  panels->panels_.resize(model.ops().size());
  for (size_t i = 0; i < model.ops().size(); ++i) {
    const FlatOp& op = model.ops()[i];
    OpPanel& p = panels->panels_[i];
    if (op.kind == OpKind::conv) {
      const FlatConv& c = op.conv;
      NB_CHECK(c.groups > 0 && c.cin % c.groups == 0 && c.cout % c.groups == 0,
               "weight panels: conv groups must divide channels");
      NB_CHECK(static_cast<int64_t>(c.weights.size()) ==
                   c.cout * (c.cin / c.groups) * c.kernel * c.kernel,
               "weight panels: conv weight count mismatch");
      NB_CHECK(static_cast<int64_t>(c.weight_scales.size()) == c.cout,
               "weight panels: conv scale count mismatch");
      NB_CHECK(!c.has_bias || static_cast<int64_t>(c.bias.size()) == c.cout,
               "weight panels: conv bias count mismatch");
      p.wf = quant::dequantize_levels(c.weights.data(), c.weights.size());
      p.wq = c.weights;
      p.scales = c.weight_scales;
      if (c.has_bias) p.bias = c.bias;
    } else if (op.kind == OpKind::linear) {
      const FlatLinear& l = op.linear;
      NB_CHECK(static_cast<int64_t>(l.weights.size()) == l.in * l.out,
               "weight panels: linear weight count mismatch");
      NB_CHECK(static_cast<int64_t>(l.weight_scales.size()) == l.out,
               "weight panels: linear scale count mismatch");
      NB_CHECK(l.bias.empty() || static_cast<int64_t>(l.bias.size()) == l.out,
               "weight panels: linear bias count mismatch");
      p.wf = quant::dequantize_levels(l.weights.data(), l.weights.size());
      p.wq = l.weights;
      p.scales = l.weight_scales;
      p.bias = l.bias;
    }
    panels->total_floats_ += static_cast<int64_t>(p.wf.size()) +
                             static_cast<int64_t>(p.scales.size()) +
                             static_cast<int64_t>(p.bias.size());
    panels->total_quant_bytes_ += static_cast<int64_t>(p.wq.size());
  }
  return panels;
}

}  // namespace nb::exporter
