#include "export/flat_writer.h"

#include <cmath>

#include "nn/activations.h"
#include "nn/blocks.h"
#include "quant/qlayers.h"

namespace nb::exporter {

namespace {

FlatAct act_of(nn::Module* act_module) {
  if (act_module == nullptr) {
    return FlatAct::identity;
  }
  auto* act = dynamic_cast<nn::Activation*>(act_module);
  NB_CHECK(act != nullptr,
           "flat export: unsupported activation module " +
               act_module->type_name());
  switch (act->kind()) {
    case nn::ActKind::identity:
      return FlatAct::identity;
    case nn::ActKind::relu:
      return FlatAct::relu;
    case nn::ActKind::relu6:
      return FlatAct::relu6;
  }
  NB_CHECK(false, "flat export: unhandled activation kind");
  return FlatAct::identity;
}

/// Converts fake-quantized float weights back to integer levels. The floats
/// are exact multiples of the per-channel scale (up to float rounding), so
/// round() recovers the level.
std::vector<int8_t> to_levels(const Tensor& weights,
                              const std::vector<float>& scales, int bits) {
  const int64_t cout = weights.size(0);
  const int64_t stride = weights.numel() / cout;
  const float qmax = static_cast<float>(quant::qmax_for_bits(bits));
  std::vector<int8_t> out(static_cast<size_t>(weights.numel()));
  const float* w = weights.data();
  for (int64_t o = 0; o < cout; ++o) {
    const float inv =
        1.0f / scales[static_cast<size_t>(scales.size() == 1 ? 0 : o)];
    for (int64_t i = 0; i < stride; ++i) {
      const float level = std::round(w[o * stride + i] * inv);
      NB_CHECK(std::fabs(level) <= qmax + 0.5f,
               "flat export: weight level out of range (was the model "
               "quantized?)");
      out[static_cast<size_t>(o * stride + i)] =
          static_cast<int8_t>(std::lround(level));
    }
  }
  return out;
}

FlatConv conv_record(quant::QuantConv2d& q, nn::Module* act_module) {
  NB_CHECK(q.frozen(), "flat export: QuantConv2d not frozen (calibrate + "
                       "freeze first)");
  const nn::Conv2dOptions& opts = q.inner().options();
  FlatConv record;
  record.act = act_of(act_module);
  record.stride = opts.stride;
  record.pad = opts.padding;
  record.groups = opts.groups;
  record.cout = opts.out_channels;
  record.cin = opts.in_channels;
  record.kernel = opts.kernel;
  record.weight_bits = static_cast<uint8_t>(q.spec().weight_bits);
  record.act_bits = static_cast<uint8_t>(q.spec().act_bits);
  NB_CHECK(q.spec().weight_bits <= 8,
           "flat export: weight levels wider than int8 do not fit the "
           "format");
  record.weight_scales = q.weight_scales();
  if (record.weight_scales.size() == 1) {
    // Per-tensor quantization: replicate so the file is always per-channel.
    record.weight_scales.assign(static_cast<size_t>(record.cout),
                                q.weight_scales()[0]);
  }
  record.weights = to_levels(q.inner().weight().value, record.weight_scales,
                             q.spec().weight_bits);
  record.act_scale = q.act_scale();
  return record;
}

}  // namespace

FlatModel to_flat_model(models::MobileNetV2& model,
                        int64_t input_resolution) {
  NB_CHECK(!model.config().use_se,
           "flat export: Squeeze-Excitation models are not supported");
  FlatModel flat;
  flat.set_input(input_resolution, 3);

  const auto emit_unit = [&flat](nn::ConvBnAct& unit) {
    NB_CHECK(!unit.has_bn(),
             "flat export: unit still has BN (quantize_for_deployment "
             "folds it)");
    auto* q = dynamic_cast<quant::QuantConv2d*>(unit.conv_slot().get());
    NB_CHECK(q != nullptr,
             "flat export: conv slot is not a QuantConv2d (quantize first)");
    FlatOp op;
    op.kind = OpKind::conv;
    op.conv = conv_record(*q, unit.act());
    if (q->bias().defined()) {
      op.conv.has_bias = true;
      op.conv.bias.assign(q->bias().data(),
                          q->bias().data() + q->bias().numel());
    }
    flat.push(std::move(op));
  };

  emit_unit(model.stem());
  for (nn::InvertedResidual* block : model.residual_blocks()) {
    if (block->use_residual()) {
      flat.push(FlatOp{OpKind::save, {}, {}});
    }
    if (block->has_expand()) {
      emit_unit(block->expand_unit());
    }
    emit_unit(block->dw_unit());
    emit_unit(block->project_unit());
    if (block->use_residual()) {
      flat.push(FlatOp{OpKind::add_saved, {}, {}});
    }
  }
  emit_unit(model.head());
  flat.push(FlatOp{OpKind::gap, {}, {}});

  auto* qfc = dynamic_cast<quant::QuantLinear*>(model.classifier_slot().get());
  NB_CHECK(qfc != nullptr && qfc->frozen(),
           "flat export: classifier is not a frozen QuantLinear");
  FlatOp fc;
  fc.kind = OpKind::linear;
  fc.linear.in = qfc->inner().in_features();
  fc.linear.out = qfc->inner().out_features();
  fc.linear.weight_bits = static_cast<uint8_t>(qfc->spec().weight_bits);
  fc.linear.act_bits = static_cast<uint8_t>(qfc->spec().act_bits);
  std::vector<float> scales = qfc->weight_scales();
  if (scales.size() == 1) {
    scales.assign(static_cast<size_t>(fc.linear.out), scales[0]);
  }
  fc.linear.weight_scales = scales;
  fc.linear.weights = to_levels(qfc->inner().weight().value, scales,
                                qfc->spec().weight_bits);
  const Tensor& b = qfc->inner().bias().value;
  fc.linear.bias.assign(b.data(), b.data() + b.numel());
  fc.linear.act_scale = qfc->act_scale();
  flat.push(std::move(fc));
  return flat;
}

void write_flat_model(models::MobileNetV2& model, const std::string& path,
                      int64_t input_resolution) {
  to_flat_model(model, input_resolution).save(path);
}

}  // namespace nb::exporter
