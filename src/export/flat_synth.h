// Synthetic FlatModel builders shared by the inference bench and tests:
// ops with random int8 levels and variance-preserving per-channel scales —
// the op mix and tensor shapes of a real quantized export without needing
// the training stack. Header-only; depends only on flat_model.h and Rng.
#pragma once

#include <cmath>
#include <cstdint>

#include "export/flat_model.h"
#include "tensor/rng.h"

namespace nb::exporter::synth {

inline int8_t random_level(Rng& rng) {
  return static_cast<int8_t>(rng.randint(255) - 127);
}

/// Per-channel scale ~ 1/(qmax * sqrt(fan_in)): keeps activations near unit
/// variance like a trained, calibrated network, so an absolute
/// fast-vs-reference agreement bound stays meaningful.
inline float realistic_scale(Rng& rng, int64_t fan_in) {
  return rng.uniform(0.5f, 1.5f) /
         (127.0f * std::sqrt(static_cast<float>(fan_in)));
}

/// Power-of-two activation scale (2^-4 .. 2^-6). Quantized activations are
/// then exact <=15-bit floats, every level * activation product is exact,
/// and the fast and reference backends differ only in the order of
/// exact-product float additions — so tight agreement bounds hold on every
/// kernel instance (the AVX2+FMA micro-kernel rounds inexact products
/// differently, which a downstream fake-quant can amplify into a whole
/// int8 level).
inline float pow2_act_scale(Rng& rng) {
  return std::ldexp(1.0f, -(4 + static_cast<int>(rng.randint(3))));
}

inline FlatOp make_conv(Rng& rng, int64_t cin, int64_t cout, int64_t k,
                        int64_t stride, int64_t groups, FlatAct act,
                        bool bias, float act_scale) {
  FlatOp op;
  op.kind = OpKind::conv;
  FlatConv& c = op.conv;
  c.act = act;
  c.stride = stride;
  c.pad = (k - 1) / 2;
  c.groups = groups;
  c.cout = cout;
  c.cin = cin;
  c.kernel = k;
  c.weights.resize(static_cast<size_t>(cout * (cin / groups) * k * k));
  for (int8_t& w : c.weights) w = random_level(rng);
  c.weight_scales.resize(static_cast<size_t>(cout));
  for (float& s : c.weight_scales) {
    s = realistic_scale(rng, (cin / groups) * k * k);
  }
  c.has_bias = bias;
  if (bias) {
    c.bias.resize(static_cast<size_t>(cout));
    for (float& b : c.bias) b = rng.uniform(-0.2f, 0.2f);
  }
  c.act_scale = act_scale;
  c.act_bits = 8;
  return op;
}

inline FlatOp make_marker(OpKind kind) {
  FlatOp op;
  op.kind = kind;
  return op;
}

inline FlatOp make_linear(Rng& rng, int64_t in, int64_t out,
                          float act_scale) {
  FlatOp op;
  op.kind = OpKind::linear;
  FlatLinear& l = op.linear;
  l.in = in;
  l.out = out;
  l.weights.resize(static_cast<size_t>(in * out));
  for (int8_t& w : l.weights) w = random_level(rng);
  l.weight_scales.resize(static_cast<size_t>(out));
  for (float& s : l.weight_scales) s = realistic_scale(rng, in);
  l.bias.resize(static_cast<size_t>(out));
  for (float& b : l.bias) b = rng.uniform(-0.2f, 0.2f);
  l.act_scale = act_scale;
  l.act_bits = 8;
  return op;
}

}  // namespace nb::exporter::synth
