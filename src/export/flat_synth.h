// Synthetic FlatModel builders shared by the inference bench and tests:
// ops with random int8 levels and variance-preserving per-channel scales —
// the op mix and tensor shapes of a real quantized export without needing
// the training stack. Header-only; depends only on flat_model.h and Rng.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "export/flat_model.h"
#include "tensor/rng.h"

namespace nb::exporter::synth {

inline int8_t random_level(Rng& rng) {
  return static_cast<int8_t>(rng.randint(255) - 127);
}

/// Per-channel scale ~ 1/(qmax * sqrt(fan_in)): keeps activations near unit
/// variance like a trained, calibrated network, so an absolute
/// fast-vs-reference agreement bound stays meaningful.
inline float realistic_scale(Rng& rng, int64_t fan_in) {
  return rng.uniform(0.5f, 1.5f) /
         (127.0f * std::sqrt(static_cast<float>(fan_in)));
}

/// Power-of-two activation scale (2^-4 .. 2^-6). Quantized activations are
/// then exact <=15-bit floats, every level * activation product is exact,
/// and the fast and reference backends differ only in the order of
/// exact-product float additions — so tight agreement bounds hold on every
/// kernel instance (the AVX2+FMA micro-kernel rounds inexact products
/// differently, which a downstream fake-quant can amplify into a whole
/// int8 level).
inline float pow2_act_scale(Rng& rng) {
  return std::ldexp(1.0f, -(4 + static_cast<int>(rng.randint(3))));
}

inline FlatOp make_conv(Rng& rng, int64_t cin, int64_t cout, int64_t k,
                        int64_t stride, int64_t groups, FlatAct act,
                        bool bias, float act_scale) {
  FlatOp op;
  op.kind = OpKind::conv;
  FlatConv& c = op.conv;
  c.act = act;
  c.stride = stride;
  c.pad = (k - 1) / 2;
  c.groups = groups;
  c.cout = cout;
  c.cin = cin;
  c.kernel = k;
  c.weights.resize(static_cast<size_t>(cout * (cin / groups) * k * k));
  for (int8_t& w : c.weights) w = random_level(rng);
  c.weight_scales.resize(static_cast<size_t>(cout));
  for (float& s : c.weight_scales) {
    s = realistic_scale(rng, (cin / groups) * k * k);
  }
  c.has_bias = bias;
  if (bias) {
    c.bias.resize(static_cast<size_t>(cout));
    for (float& b : c.bias) b = rng.uniform(-0.2f, 0.2f);
  }
  c.act_scale = act_scale;
  c.act_bits = 8;
  return op;
}

inline FlatOp make_marker(OpKind kind) {
  FlatOp op;
  op.kind = kind;
  return op;
}

inline FlatOp make_linear(Rng& rng, int64_t in, int64_t out,
                          float act_scale) {
  FlatOp op;
  op.kind = OpKind::linear;
  FlatLinear& l = op.linear;
  l.in = in;
  l.out = out;
  l.weights.resize(static_cast<size_t>(in * out));
  for (int8_t& w : l.weights) w = random_level(rng);
  l.weight_scales.resize(static_cast<size_t>(out));
  for (float& s : l.weight_scales) s = realistic_scale(rng, in);
  l.bias.resize(static_cast<size_t>(out));
  for (float& b : l.bias) b = rng.uniform(-0.2f, 0.2f);
  l.act_scale = act_scale;
  l.act_bits = 8;
  return op;
}

// ----------------------------------------------------------------------
// Whole-network builders shared by bench_infer_report, bench_serve_report
// and the serving tools/tests.

// Activation quantization scales: the stem sees normalized input in [-1, 1],
// everything downstream sees relu6 output in [0, 6]. Power-of-two scales
// (a real TinyML deployment choice — shifts instead of multiplies on MCU)
// keep every quantized activation an exact <=15-bit float, so every
// level * activation product is exact and the fast backend agrees with the
// reference interpreter bitwise instead of within FMA rounding.
constexpr float kStemActScale = 1.0f / 128.0f;   // 2^-7, grid covers ~[-1, 1]
constexpr float kRelu6ActScale = 1.0f / 16.0f;   // 2^-4, grid covers [0, 6+]

struct StageSpec {
  int64_t expand, channels, repeat, stride, kernel;
};

/// Inverted-residual backbone -> 1x1 head conv -> GAP -> linear, the shared
/// skeleton of MobileNetV2 and MCUNet flat exports.
inline FlatModel inverted_residual_graph(Rng& rng, int64_t res, int64_t stem,
                                         const std::vector<StageSpec>& stages,
                                         int64_t head, int64_t classes) {
  FlatModel m;
  m.set_input(res, 3);
  m.push(make_conv(rng, 3, stem, 3, 2, 1, FlatAct::relu6, true,
                   kStemActScale));
  int64_t c = stem;
  for (const StageSpec& st : stages) {
    for (int64_t r = 0; r < st.repeat; ++r) {
      const int64_t stride = r == 0 ? st.stride : 1;
      const bool residual = stride == 1 && c == st.channels;
      const int64_t mid = c * st.expand;
      if (residual) m.push(make_marker(OpKind::save));
      if (st.expand != 1) {
        m.push(make_conv(rng, c, mid, 1, 1, 1, FlatAct::relu6, false,
                         kRelu6ActScale));
      }
      m.push(make_conv(rng, mid, mid, st.kernel, stride, mid, FlatAct::relu6,
                       true, kRelu6ActScale));
      m.push(make_conv(rng, mid, st.channels, 1, 1, 1, FlatAct::identity,
                       true, kRelu6ActScale));
      if (residual) m.push(make_marker(OpKind::add_saved));
      c = st.channels;
    }
  }
  m.push(make_conv(rng, c, head, 1, 1, 1, FlatAct::relu6, false,
                   kRelu6ActScale));
  m.push(make_marker(OpKind::gap));
  m.push(make_linear(rng, head, classes, kRelu6ActScale));
  return m;
}

inline int64_t round8(float v) {
  const int64_t r = static_cast<int64_t>(v / 8.0f + 0.5f) * 8;
  return std::max<int64_t>(8, r);
}

/// MobileNetV2 at the given width multiplier (standard stage table).
inline FlatModel make_mbv2_flat(Rng& rng, float width, int64_t res,
                                int64_t classes) {
  const std::vector<StageSpec> stages = {
      {1, round8(16 * width), 1, 1, 3},  {6, round8(24 * width), 2, 2, 3},
      {6, round8(32 * width), 3, 2, 3},  {6, round8(64 * width), 4, 2, 3},
      {6, round8(96 * width), 3, 1, 3},  {6, round8(160 * width), 3, 2, 3},
      {6, round8(320 * width), 1, 1, 3},
  };
  const int64_t head = width < 1.0f ? round8(1280 * width) : 1280;
  return inverted_residual_graph(rng, res, round8(32 * width), stages, head,
                                 classes);
}

/// MCUNet-style NAS result: the repo's fixed stage table (heterogeneous
/// kernels and expansion ratios, see src/models/mcunet.cpp).
inline FlatModel make_mcunet_flat(Rng& rng, int64_t res, int64_t classes) {
  const std::vector<StageSpec> stages = {
      {1, 8, 1, 1, 3},  {4, 12, 1, 2, 5}, {5, 16, 2, 2, 3},
      {4, 24, 2, 2, 7}, {6, 32, 1, 1, 5}, {6, 40, 1, 2, 3},
  };
  return inverted_residual_graph(rng, res, 12, stages, 80, classes);
}

}  // namespace nb::exporter::synth
