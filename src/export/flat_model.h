// Deployable model artifact: a single binary file holding the contracted,
// int8-quantized TNN as a flat instruction list, plus a self-contained
// reference runtime to execute it. This is the artifact an MCU toolchain
// would consume — real int8 weight storage (not fake-quant floats), explicit
// execution order, no dependency on the training stack: the runtime needs
// only nb_tensor.
//
//   writer:  models::MobileNetV2 (after quant::quantize_for_deployment)
//            --> write_flat_model(model, path)
//   runtime: FlatModel::load(path);  model.forward(nchw) -> logits
//
// Format (little-endian):
//   magic "NBFM" | u32 version | i64 input_res | i64 input_channels |
//   u32 op_count | op records...
// Op records:
//   kSave                      -- push current activation (residual source)
//   kAddSaved                  -- pop and add (residual join)
//   kConv: u8 act | i64 stride,pad,groups,cout,cin,k | u8 weight_bits |
//          i8 weights[cout*cin/g*k*k] | f32 weight_scales[cout] |
//          u8 has_bias | f32 bias[cout] | f32 act_scale | u8 act_bits
//   kGap                       -- global average pool to [N, C]
//   kLinear: i64 in,out | u8 weight_bits | i8 weights[out*in] |
//            f32 weight_scales[out] | f32 bias[out] | f32 act_scale |
//            u8 act_bits
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace nb::exporter {

class InferPlan;
class WeightPanels;

constexpr uint32_t kFlatVersion = 1;

/// Which runtime executes FlatModel::forward.
///   reference — the scalar direct-convolution interpreter: allocates every
///               intermediate, single-threaded, kept as the semantic oracle.
///   fast      — the planned arena runtime (see infer_plan.h): im2col +
///               packed GEMM, direct depthwise, fused epilogues, threaded.
///   int8      — the planned runtime over TRUE int8 execution: activations
///               quantized to integer levels, int8xint8->int32 packed GEMM
///               (gemm_s8), per-channel requantize fused into the output
///               store. Requires a fully calibrated program (act_scale > 0,
///               act_bits <= 8 everywhere; see int8_compatible in qmodel.h)
///               and is bit-exact against the QModel integer oracle.
enum class Backend : uint8_t { reference = 0, fast = 1, int8 = 2 };

enum class OpKind : uint8_t {
  save = 0,
  add_saved = 1,
  conv = 2,
  gap = 3,
  linear = 4,
};

/// Activation applied after a conv/linear op.
enum class FlatAct : uint8_t { identity = 0, relu = 1, relu6 = 2 };

struct FlatConv {
  FlatAct act = FlatAct::identity;
  int64_t stride = 1;
  int64_t pad = 0;
  int64_t groups = 1;
  int64_t cout = 0;
  int64_t cin = 0;  // full input channels (not per group)
  int64_t kernel = 1;
  uint8_t weight_bits = 8;
  std::vector<int8_t> weights;       // [cout, cin/groups, k, k]
  std::vector<float> weight_scales;  // per output channel
  bool has_bias = false;
  std::vector<float> bias;  // [cout] when has_bias
  float act_scale = 0.0f;   // input-activation quantization scale
  uint8_t act_bits = 8;
};

struct FlatLinear {
  int64_t in = 0;
  int64_t out = 0;
  uint8_t weight_bits = 8;
  std::vector<int8_t> weights;  // [out, in]
  std::vector<float> weight_scales;
  std::vector<float> bias;  // [out]
  float act_scale = 0.0f;
  uint8_t act_bits = 8;
};

struct FlatOp {
  OpKind kind = OpKind::save;
  FlatConv conv;      // when kind == conv
  FlatLinear linear;  // when kind == linear
};

/// A loaded (or about-to-be-written) flat model.
class FlatModel {
 public:
  FlatModel();
  ~FlatModel();
  FlatModel(FlatModel&&) noexcept;
  FlatModel& operator=(FlatModel&&) noexcept;
  // Copies share the compiled state (weight panels and plan cache, built
  // at most once across all copies — even copies made before the first
  // forward); mutating any copy detaches it onto fresh compiled state, so
  // a mutated program never runs stale and never invalidates its siblings.
  FlatModel(const FlatModel& other);
  FlatModel& operator=(const FlatModel& other);

  static FlatModel load(const std::string& path);
  /// Parses an NBFM image straight from memory (blob store, embedded
  /// artifact, network buffer) — same validation as load(path), no temp
  /// files. The bytes are copied out; the buffer may be freed afterwards.
  static FlatModel load_from_buffer(const uint8_t* data, size_t size);

  /// Inference on the selected backend. Both backends re-quantize
  /// activations at each conv exactly as the training-side fake-quant
  /// pipeline does and agree within float accumulation-order rounding.
  /// Input is [N, C, H, W]; returns logits.
  ///
  /// The fast backend is a thin shim over a lazily-created single serving
  /// session: compiled weight panels shared with every copy of this model
  /// (and with runtime::CompiledModel), plus one InferPlan keyed on the
  /// input geometry. The shim is mutex-guarded, so concurrent forward()
  /// calls are safe but serialize; use runtime::Session (one per stream)
  /// for parallel serving.
  Tensor forward(const Tensor& input, Backend backend) const;

  /// forward on the fast backend (reference for non-NCHW programs).
  Tensor forward(const Tensor& input) const;

  /// The shared compiled weight panels for this program, built on first
  /// use. Copies of this model and runtime::CompiledModel::compile reuse
  /// the same panels; mutators (push/set_input) detach them.
  std::shared_ptr<const WeightPanels> compiled_panels() const;

  const std::vector<FlatOp>& ops() const { return ops_; }
  int64_t input_resolution() const { return input_res_; }
  int64_t input_channels() const { return input_channels_; }
  /// Total serialized weight payload in bytes (int8 weights + f32 scales).
  int64_t weight_bytes() const;

  // Writer-side mutators (used by write_flat_model). Both invalidate the
  // compiled panels and the cached fast-backend plan so a mutated program
  // can never run stale.
  void set_input(int64_t resolution, int64_t channels);
  void push(FlatOp op);
  void save(const std::string& path) const;

 private:
  // The lazily-created single session behind forward(fast): shared panels
  // + one geometry-keyed plan, guarded by a mutex (defined in the .cpp).
  struct FastShim;
  FastShim& ensure_shim() const;
  void invalidate_compiled();

  std::vector<FlatOp> ops_;
  int64_t input_res_ = 0;
  int64_t input_channels_ = 3;
  mutable std::shared_ptr<FastShim> shim_;
};

}  // namespace nb::exporter
