// Compiled weight state for the fast FlatModel runtime: every conv/linear
// op's int8 levels dequantized once into exact float integers, with the
// per-channel scales and biases copied alongside. A WeightPanels is
// immutable after build() and shared by std::shared_ptr, so any number of
// inference plans (and through them, serving sessions) execute against ONE
// copy of the dequantized weights — N concurrent streams pay the panel
// memory once instead of N times.
//
// Layering: this is the lowest rung of the serving stack. FlatModel's
// forward shim, InferPlan, and runtime::CompiledModel all hand around the
// same shared_ptr<const WeightPanels>; whoever builds first, everyone else
// reuses.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

namespace nb::exporter {

class FlatModel;

/// Per-op compiled weights. Marker/gap ops keep all vectors empty.
struct OpPanel {
  std::vector<float> wf;      // int8 levels as exact float integers
  std::vector<int8_t> wq;     // the same levels as raw int8, for Backend::int8
  std::vector<float> scales;  // per output channel
  std::vector<float> bias;    // empty => zero bias
};

/// Immutable, shareable compiled weight panels for one flat program.
class WeightPanels {
 public:
  /// Dequantizes every conv/linear op of `model`; validates weight /
  /// scale / bias counts against the declared geometry (throws
  /// std::runtime_error on mismatch, so hand-built programs fail at
  /// compile time, not mid-inference).
  static std::shared_ptr<const WeightPanels> build(const FlatModel& model);

  const OpPanel& at(size_t op_index) const { return panels_[op_index]; }
  size_t op_count() const { return panels_.size(); }

  /// Total floats held across all panels (the shared weight memory).
  int64_t total_floats() const { return total_floats_; }
  int64_t total_bytes() const { return total_floats_ * 4 + total_quant_bytes_; }
  /// Bytes of raw int8 levels kept for the int8 backend.
  int64_t total_quant_bytes() const { return total_quant_bytes_; }

 private:
  WeightPanels() = default;

  std::vector<OpPanel> panels_;  // indexed by op position in the program
  int64_t total_floats_ = 0;
  int64_t total_quant_bytes_ = 0;
};

}  // namespace nb::exporter
