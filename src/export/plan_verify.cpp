#include "export/plan_verify.h"

#include <utility>

#include "export/infer_plan.h"
#include "tensor/im2col.h"  // conv_out_size

namespace nb::exporter {

const char* to_string(PlanDiag diag) {
  switch (diag) {
    case PlanDiag::geometry_broken:
      return "geometry_broken";
    case PlanDiag::dataflow_broken:
      return "dataflow_broken";
    case PlanDiag::offset_out_of_bounds:
      return "offset_out_of_bounds";
    case PlanDiag::region_overlap:
      return "region_overlap";
    case PlanDiag::save_clobbered:
      return "save_clobbered";
    case PlanDiag::save_stack_broken:
      return "save_stack_broken";
    case PlanDiag::epilogue_broken:
      return "epilogue_broken";
    case PlanDiag::qarena_out_of_bounds:
      return "qarena_out_of_bounds";
    case PlanDiag::stats_inconsistent:
      return "stats_inconsistent";
    case PlanDiag::batch_scaling_broken:
      return "batch_scaling_broken";
    case PlanDiag::bucket_plan_mismatch:
      return "bucket_plan_mismatch";
  }
  return "?";
}

PlanTables plan_tables(const InferPlan& plan) {
  const PlanStats& st = plan.stats();
  PlanTables t;
  t.backend = st.backend;
  t.batch = st.batch;
  t.channels = st.channels;
  t.in_h = st.in_h;
  t.in_w = st.in_w;
  t.arena_floats = st.arena_floats;
  t.cols_floats = st.cols_floats;
  t.arena_int8_bytes = st.arena_int8_bytes;
  t.qcols_off = plan.qcols_off_;
  t.out_off = plan.out_off_;
  t.out_shape = plan.out_shape_;
  t.steps.reserve(plan.steps_.size());
  for (const auto& s : plan.steps_) {
    StepTable row;
    row.kind = s.kind;
    row.depthwise = s.depthwise;
    row.stride = s.stride;
    row.pad = s.pad;
    row.groups = s.groups;
    row.cout = s.cout;
    row.cin = s.cin;
    row.kernel = s.kernel;
    row.act_scale = s.act_scale;
    row.eff_count = static_cast<int64_t>(s.eff.size());
    row.in_c = s.in_c;
    row.in_h = s.in_h;
    row.in_w = s.in_w;
    row.out_h = s.out_h;
    row.out_w = s.out_w;
    row.in_floats = s.in_floats;
    row.out_floats = s.out_floats;
    row.in_off = s.in_off;
    row.out_off = s.out_off;
    row.cols_off = s.cols_off;
    row.save_off = s.save_off;
    t.steps.push_back(row);
  }
  return t;
}

namespace {

bool intervals_overlap(int64_t a_off, int64_t a_len, int64_t b_off,
                       int64_t b_len) {
  return a_len > 0 && b_len > 0 && a_off < b_off + b_len &&
         b_off < a_off + a_len;
}

/// Im2col panel elements a lowered conv needs (0 for depthwise and
/// non-conv steps). Callers validate groups > 0 first.
int64_t cols_need(const StepTable& s, int64_t batch) {
  if (s.kind != OpKind::conv || s.depthwise || s.groups <= 0) return 0;
  return (s.cin / s.groups) * s.kernel * s.kernel * batch * s.out_h * s.out_w;
}

std::string iv(int64_t off, int64_t len) {
  // Built up on a named lvalue: `"[" + std::to_string(...)` trips GCC 12's
  // -Wrestrict false positive (PR105651) on the rvalue operator+ overload.
  std::string s = "[";
  s += std::to_string(off);
  s += ", ";
  s += std::to_string(off + len);
  s += ")";
  return s;
}

}  // namespace

VerifyReport verify_tables(const PlanTables& t) {
  VerifyReport r;
  const auto fail = [&](PlanDiag d, int64_t step, std::string detail) {
    r.findings.push_back({d, step, std::move(detail)});
  };

  if (t.batch <= 0 || t.channels <= 0 || t.in_h <= 0 || t.in_w <= 0 ||
      t.steps.empty() || t.arena_floats <= 0) {
    fail(PlanDiag::geometry_broken, -1, "implausible plan-level geometry");
    return r;
  }
  const bool i8 = t.backend == Backend::int8;

  // Single walk discharging geometry, dataflow, bounds, disjointness,
  // save-liveness and epilogue obligations per step. The tracked
  // (c, h, w, cur, cur_off) is the ground truth each step's recorded
  // tables must agree with.
  bool spatial = true;
  int64_t c = t.channels, h = t.in_h, w = t.in_w;
  int64_t cur = t.batch * c * h * w;
  // The entry activation is planted at float-arena offset 0 (the layout is
  // [ping | pong | saves | cols] with ping based at 0, and the input is
  // copied into ping). Anchoring here rather than trusting the first
  // step's own in_off makes a corrupted FIRST step detectable too.
  int64_t cur_off = 0;
  std::vector<std::pair<int64_t, int64_t>> live_saves;  // (off, floats)
  int64_t max_cols = 0;  // high-water mark over lowered convs
  int64_t max_qin = 0;   // high-water mark of quantized-input bytes

  for (size_t i = 0; i < t.steps.size(); ++i) {
    const StepTable& s = t.steps[i];
    const int64_t idx = static_cast<int64_t>(i);

    // -- dataflow: consume exactly what the previous step produced.
    if (s.in_off != cur_off || s.in_floats != cur) {
      fail(PlanDiag::dataflow_broken, idx,
           "step reads " + iv(s.in_off, s.in_floats) +
               " but the live activation is " + iv(cur_off, cur));
    }
    // -- recorded input shape must match the tracked one.
    if (s.in_c != c || s.in_h != h || s.in_w != w) {
      fail(PlanDiag::geometry_broken, idx, "recorded input shape diverges");
    }

    // -- per-kind geometry + shape transition.
    int64_t out_floats = cur;  // save/add_saved pass the activation through
    bool in_place = false;
    switch (s.kind) {
      case OpKind::save:
      case OpKind::add_saved:
        in_place = true;
        break;
      case OpKind::conv: {
        if (!spatial || s.groups <= 0 || s.stride <= 0 || s.kernel <= 0 ||
            s.pad < 0 || s.cout <= 0 || s.cin != c ||
            s.cin % s.groups != 0 || s.cout % s.groups != 0) {
          fail(PlanDiag::geometry_broken, idx, "implausible conv parameters");
          return r;  // divisors unusable; later checks would be noise
        }
        const int64_t oh = conv_out_size(h, s.kernel, s.stride, s.pad);
        const int64_t ow = conv_out_size(w, s.kernel, s.stride, s.pad);
        if (oh <= 0 || ow <= 0 || s.out_h != oh || s.out_w != ow) {
          fail(PlanDiag::geometry_broken, idx,
               "conv output plane is not (in + 2p - k)/s + 1");
        }
        if (s.depthwise != (s.groups == s.cin && s.groups == s.cout)) {
          fail(PlanDiag::geometry_broken, idx, "depthwise flag inconsistent");
        }
        c = s.cout;
        h = s.out_h;
        w = s.out_w;
        out_floats = t.batch * c * h * w;
        break;
      }
      case OpKind::gap:
        if (!spatial) {
          fail(PlanDiag::geometry_broken, idx, "gap after spatial exit");
        }
        spatial = false;
        h = 0;
        w = 0;
        out_floats = t.batch * c;
        break;
      case OpKind::linear:
        if (spatial || s.cin != c || s.cout <= 0) {
          fail(PlanDiag::geometry_broken, idx, "implausible linear geometry");
        }
        c = s.cout > 0 ? s.cout : c;
        out_floats = t.batch * c;
        break;
    }
    if (s.out_floats != out_floats) {
      fail(PlanDiag::geometry_broken, idx,
           "recorded out_floats " + std::to_string(s.out_floats) +
               " != derived " + std::to_string(out_floats));
    }
    if (in_place && s.out_off != s.in_off) {
      fail(PlanDiag::dataflow_broken, idx,
           "in-place op relocated the activation");
    }

    // -- bounds in the float arena.
    const auto check_bounds = [&](int64_t off, int64_t len, const char* what) {
      if (len > 0 && (off < 0 || off + len > t.arena_floats)) {
        fail(PlanDiag::offset_out_of_bounds, idx,
             std::string(what) + " " + iv(off, len) + " escapes arena of " +
                 std::to_string(t.arena_floats) + " floats");
      }
    };
    check_bounds(s.in_off, s.in_floats, "input");
    check_bounds(s.out_off, s.out_floats, "output");
    const int64_t cols = cols_need(s, t.batch);
    max_cols = std::max(max_cols, cols);
    if (cols > 0 && !i8) check_bounds(s.cols_off, cols, "im2col panel");
    if (cols > 0 && i8) {
      // Byte cols live in the qarena, after the quantized-input region
      // (the float cols_off is unused on int8 plans).
      if (t.qcols_off < 0 || t.qcols_off + cols > t.arena_int8_bytes) {
        fail(PlanDiag::qarena_out_of_bounds, idx,
             "byte im2col panel " + iv(t.qcols_off, cols) +
                 " escapes int8 arena of " +
                 std::to_string(t.arena_int8_bytes) + " bytes");
      }
    }
    if (i8 && (s.kind == OpKind::conv || s.kind == OpKind::linear)) {
      // The quantized input is staged at qarena[0, in_floats) bytes and
      // must not run into the byte cols region.
      max_qin = std::max(max_qin, s.in_floats);
      if (s.in_floats > t.qcols_off) {
        fail(PlanDiag::qarena_out_of_bounds, idx,
             "quantized input (" + std::to_string(s.in_floats) +
                 " bytes) overruns the byte cols region at " +
                 std::to_string(t.qcols_off));
      }
    }

    // -- disjointness within the step.
    if (!in_place && intervals_overlap(s.in_off, s.in_floats, s.out_off,
                                       s.out_floats)) {
      fail(PlanDiag::region_overlap, idx,
           "input " + iv(s.in_off, s.in_floats) + " overlaps output " +
               iv(s.out_off, s.out_floats));
    }
    if (cols > 0 && !i8) {
      if (intervals_overlap(s.cols_off, cols, s.in_off, s.in_floats) ||
          intervals_overlap(s.cols_off, cols, s.out_off, s.out_floats)) {
        fail(PlanDiag::region_overlap, idx,
             "im2col panel overlaps the activation regions");
      }
    }

    // -- residual save stack: liveness simulation.
    if (s.kind == OpKind::save) {
      // The copy's source and destination must be disjoint, and the slot
      // must not sit on another live save.
      if (intervals_overlap(s.save_off, s.in_floats, s.in_off, s.in_floats)) {
        fail(PlanDiag::region_overlap, idx,
             "save slot overlaps the activation it copies");
      }
      if (s.save_off < 0 || s.save_off + s.in_floats > t.arena_floats) {
        fail(PlanDiag::offset_out_of_bounds, idx,
             "save slot " + iv(s.save_off, s.in_floats) + " escapes arena");
      }
      for (const auto& [off, len] : live_saves) {
        if (intervals_overlap(s.save_off, s.in_floats, off, len)) {
          fail(PlanDiag::save_clobbered, idx,
               "save slot overlaps a live residual at " + iv(off, len));
        }
      }
      live_saves.emplace_back(s.save_off, s.in_floats);
    } else if (s.kind == OpKind::add_saved) {
      if (live_saves.empty()) {
        fail(PlanDiag::save_stack_broken, idx, "add_saved on an empty stack");
      } else {
        const auto [off, len] = live_saves.back();
        live_saves.pop_back();
        if (off != s.save_off || len != s.in_floats) {
          fail(PlanDiag::save_stack_broken, idx,
               "add_saved reads " + iv(s.save_off, s.in_floats) +
                   " but the top save is " + iv(off, len));
        }
        if (intervals_overlap(s.save_off, s.in_floats, s.in_off,
                              s.in_floats)) {
          fail(PlanDiag::region_overlap, idx,
               "residual source overlaps the accumulating activation");
        }
      }
    } else {
      // A producing step must not write over any LIVE residual copy.
      for (const auto& [off, len] : live_saves) {
        if (intervals_overlap(s.out_off, s.out_floats, off, len)) {
          fail(PlanDiag::save_clobbered, idx,
               "output overwrites a live residual at " + iv(off, len));
        }
        if (cols > 0 && !i8 && intervals_overlap(s.cols_off, cols, off, len)) {
          fail(PlanDiag::save_clobbered, idx,
               "im2col panel overwrites a live residual at " + iv(off, len));
        }
      }
    }

    // -- int8 in-place requantize epilogue legality.
    if (s.kind == OpKind::conv || s.kind == OpKind::linear) {
      if (i8) {
        if (s.eff_count != s.cout) {
          fail(PlanDiag::epilogue_broken, idx,
               "requantize scale table has " + std::to_string(s.eff_count) +
                   " entries for " + std::to_string(s.cout) + " channels");
        }
        if (!(s.act_scale > 0.0f)) {
          fail(PlanDiag::epilogue_broken, idx,
               "int8 step without a positive activation scale");
        }
      } else if (s.eff_count != 0) {
        fail(PlanDiag::epilogue_broken, idx,
             "float step carries requantize scales");
      }
    }

    cur = out_floats;
    cur_off = s.out_off;
  }

  // -- final activation and published stats.
  if (t.out_off != cur_off) {
    fail(PlanDiag::dataflow_broken, -1,
         "plan output offset " + std::to_string(t.out_off) +
             " is not where the last step wrote (" + std::to_string(cur_off) +
             ")");
  }
  const std::vector<int64_t> want_shape =
      spatial ? std::vector<int64_t>{t.batch, c, h, w}
              : std::vector<int64_t>{t.batch, c};
  if (t.out_shape != want_shape) {
    fail(PlanDiag::geometry_broken, -1, "output shape diverges from the walk");
  }
  if (i8) {
    if (t.cols_floats != 0) {
      fail(PlanDiag::stats_inconsistent, -1,
           "int8 plan publishes a float cols region");
    }
    if (t.qcols_off != max_qin ||
        t.arena_int8_bytes != t.qcols_off + max_cols) {
      fail(PlanDiag::stats_inconsistent, -1,
           "int8 arena split (qin " + std::to_string(t.qcols_off) +
               " + cols " +
               std::to_string(t.arena_int8_bytes - t.qcols_off) +
               ") disagrees with step maxima (" + std::to_string(max_qin) +
               " + " + std::to_string(max_cols) + ")");
    }
  } else if (t.cols_floats != max_cols) {
    fail(PlanDiag::stats_inconsistent, -1,
         "published cols_floats " + std::to_string(t.cols_floats) +
             " != largest lowered conv panel " + std::to_string(max_cols));
  }

  if (r.ok()) {
    const std::string n = std::to_string(t.steps.size());
    r.proved.push_back(n + " steps: geometry follows the conv arithmetic");
    r.proved.push_back(
        "dataflow: every step consumes the region the previous step "
        "produced");
    r.proved.push_back(
        "bounds: all regions inside arena of " +
        std::to_string(t.arena_floats) + " floats" +
        (i8 ? " + " + std::to_string(t.arena_int8_bytes) + " int8 bytes"
            : ""));
    r.proved.push_back(
        "disjointness: in/out/cols/live-save regions never alias per step");
    if (i8) {
      r.proved.push_back(
          "epilogue: in-place requantize+clamp covers exactly its "
          "accumulators with full per-channel scales");
    }
    r.proved.push_back("stats: published planner accounting matches the "
                       "step tables");
  }
  return r;
}

VerifyReport verify_plan(const InferPlan& plan) {
  return verify_tables(plan_tables(plan));
}

VerifyReport verify_batch_scaling(const PlanTables& t,
                                  const PlanTables& unit) {
  VerifyReport r;
  const auto fail = [&](std::string detail) {
    r.findings.push_back({PlanDiag::batch_scaling_broken, -1,
                          std::move(detail)});
  };
  if (unit.batch != 1 || unit.backend != t.backend ||
      unit.channels != t.channels || unit.in_h != t.in_h ||
      unit.in_w != t.in_w || unit.steps.size() != t.steps.size()) {
    fail("unit tables are not a batch-1 twin of this plan");
    return r;
  }
  const int64_t b = t.batch;
  if (t.arena_floats != b * unit.arena_floats) {
    fail("arena_floats(" + std::to_string(b) + ") = " +
         std::to_string(t.arena_floats) + " != " + std::to_string(b) +
         " * " + std::to_string(unit.arena_floats));
  }
  if (t.cols_floats != b * unit.cols_floats) {
    fail("cols_floats does not scale exactly with batch");
  }
  if (t.arena_int8_bytes != b * unit.arena_int8_bytes) {
    fail("arena_int8_bytes does not scale exactly with batch");
  }
  if (r.ok()) {
    r.proved.push_back("batch scaling: arena(" + std::to_string(b) +
                       ") == " + std::to_string(b) + " * arena(1), exactly");
  }
  return r;
}

VerifyReport verify_bucket_plan(const PlanTables& bucket,
                                const PlanTables& exact,
                                double max_pad_ratio) {
  VerifyReport r;
  const auto fail = [&](int64_t step, std::string detail) {
    r.findings.push_back({PlanDiag::bucket_plan_mismatch, step,
                          std::move(detail)});
  };
  if (max_pad_ratio < 1.0) {
    fail(-1, "max_pad_ratio must be >= 1");
    return r;
  }
  if (bucket.backend != exact.backend || bucket.batch != exact.batch ||
      bucket.channels != exact.channels) {
    fail(-1, "bucket plan and exact plan disagree on backend/batch/channels");
    return r;
  }
  if (bucket.steps.size() != exact.steps.size()) {
    fail(-1, "bucket plan has " + std::to_string(bucket.steps.size()) +
                 " steps, exact plan has " +
                 std::to_string(exact.steps.size()) +
                 " — not the same program");
    return r;
  }
  if (bucket.in_h < exact.in_h || bucket.in_w < exact.in_w) {
    fail(-1, "bucket rung " + std::to_string(bucket.in_h) + "x" +
                 std::to_string(bucket.in_w) +
                 " does not cover the exact geometry " +
                 std::to_string(exact.in_h) + "x" +
                 std::to_string(exact.in_w));
  }
  const double padded_area =
      static_cast<double>(bucket.in_h) * static_cast<double>(bucket.in_w);
  const double exact_area =
      static_cast<double>(exact.in_h) * static_cast<double>(exact.in_w);
  if (padded_area > max_pad_ratio * exact_area) {
    fail(-1, "padded area " + std::to_string(bucket.in_h) + "x" +
                 std::to_string(bucket.in_w) + " exceeds " +
                 std::to_string(max_pad_ratio) + "x the exact area " +
                 std::to_string(exact.in_h) + "x" +
                 std::to_string(exact.in_w) + " — waste cap violated");
  }
  for (size_t i = 0; i < bucket.steps.size(); ++i) {
    const StepTable& b = bucket.steps[i];
    const StepTable& e = exact.steps[i];
    const int64_t step = static_cast<int64_t>(i);
    if (b.kind != e.kind || b.stride != e.stride || b.pad != e.pad ||
        b.kernel != e.kernel || b.groups != e.groups || b.cout != e.cout ||
        b.cin != e.cin || b.depthwise != e.depthwise) {
      fail(step, "step structure diverges between bucket and exact plan — "
                 "padding must never change the program, only the planes");
      continue;
    }
    if (b.in_h < e.in_h || b.in_w < e.in_w || b.out_h < e.out_h ||
        b.out_w < e.out_w || b.in_floats < e.in_floats ||
        b.out_floats < e.out_floats) {
      fail(step, "bucket-plan activation geometry does not dominate the "
                 "exact plan's (padding shrank a plane)");
    }
  }
  if (bucket.arena_floats < exact.arena_floats ||
      bucket.arena_int8_bytes < exact.arena_int8_bytes) {
    fail(-1, "bucket plan arena (" + std::to_string(bucket.arena_floats) +
                 " floats) is smaller than the exact plan's (" +
                 std::to_string(exact.arena_floats) +
                 ") — rung serving would under-allocate");
  }
  if (r.ok()) {
    r.proved.push_back(
        "bucket plan: identical program structure step for step");
    r.proved.push_back("bucket plan: rung " + std::to_string(bucket.in_h) +
                       "x" + std::to_string(bucket.in_w) + " covers " +
                       std::to_string(exact.in_h) + "x" +
                       std::to_string(exact.in_w) +
                       " and every activation plane dominates");
    r.proved.push_back("bucket plan: padded area within " +
                       std::to_string(max_pad_ratio) + "x waste cap");
    r.proved.push_back(
        "bucket plan: arena monotone — rung serving never under-allocates");
  }
  return r;
}

void check_plan(const InferPlan& plan) {
  const VerifyReport r = verify_plan(plan);
  if (r.ok()) return;
  std::string what = "plan verification failed:";
  for (const PlanFinding& f : r.findings) {
    what += "\n  [";
    what += to_string(f.diag);
    if (f.step >= 0) what += " @ step " + std::to_string(f.step);
    what += "] " + f.detail;
  }
  throw PlanVerifyError(r.findings.front().diag, what);
}

}  // namespace nb::exporter
