#include "detect/box.h"

#include <algorithm>

namespace nb::detect {

float Box::area() const {
  const float w = std::max(0.0f, x2 - x1);
  const float h = std::max(0.0f, y2 - y1);
  return w * h;
}

Box Box::from_cxcywh(float cx, float cy, float w, float h) {
  Box b;
  b.x1 = cx - w / 2.0f;
  b.y1 = cy - h / 2.0f;
  b.x2 = cx + w / 2.0f;
  b.y2 = cy + h / 2.0f;
  return b;
}

float iou(const Box& a, const Box& b) {
  const float ix1 = std::max(a.x1, b.x1);
  const float iy1 = std::max(a.y1, b.y1);
  const float ix2 = std::min(a.x2, b.x2);
  const float iy2 = std::min(a.y2, b.y2);
  const float iw = std::max(0.0f, ix2 - ix1);
  const float ih = std::max(0.0f, iy2 - iy1);
  const float inter = iw * ih;
  const float uni = a.area() + b.area() - inter;
  return uni > 0.0f ? inter / uni : 0.0f;
}

std::vector<Box> nms(std::vector<Box> boxes, float iou_threshold) {
  std::sort(boxes.begin(), boxes.end(),
            [](const Box& a, const Box& b) { return a.score > b.score; });
  std::vector<Box> kept;
  std::vector<bool> suppressed(boxes.size(), false);
  for (size_t i = 0; i < boxes.size(); ++i) {
    if (suppressed[i]) continue;
    kept.push_back(boxes[i]);
    for (size_t j = i + 1; j < boxes.size(); ++j) {
      if (suppressed[j] || boxes[j].cls != boxes[i].cls) continue;
      if (iou(boxes[i], boxes[j]) >= iou_threshold) suppressed[j] = true;
    }
  }
  return kept;
}

}  // namespace nb::detect
