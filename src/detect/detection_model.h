// Tiny single-scale anchor detector on the MobileNetV2 backbone: a YOLO-style
// head predicts (tx, ty, tw, th, objectness, class scores) per anchor per
// grid cell. The backbone is where NetBooster / NetAug / vanilla pretraining
// differ; the head is shared across methods, so Table III isolates the
// backbone's feature quality — exactly the paper's intent.
#pragma once

#include <memory>

#include "data/dataset.h"
#include "detect/box.h"
#include "models/mobilenetv2.h"
#include "nn/losses.h"

namespace nb::detect {

struct DetectorConfig {
  int64_t num_classes = 4;
  /// Anchor sizes (normalized w, h) — two square-ish priors.
  std::vector<std::pair<float, float>> anchors = {{0.30f, 0.30f},
                                                  {0.45f, 0.45f}};
  float iou_match_threshold = 0.5f;
  /// Loss weights: box regression, objectness, classification.
  float w_box = 5.0f;
  float w_obj = 1.0f;
  float w_cls = 1.0f;
  /// Backbone tap: the head reads the feature map after this many trunk
  /// blocks (stem included). Classifier-level features are nearly position
  /// invariant at this input scale, so the head must tap an intermediate,
  /// higher-resolution map — the standard pyramid-tap detectors use.
  int64_t backbone_blocks = 4;
};

class TinyDetector {
 public:
  TinyDetector(std::shared_ptr<models::MobileNetV2> backbone,
               const DetectorConfig& config, Rng& rng);

  /// Raw head output [N, A*(5+K), gh, gw].
  Tensor forward(const Tensor& images);
  /// Backprop through head and backbone.
  void backward(const Tensor& grad_head_out);

  /// Detection loss and its gradient with respect to the head output.
  nn::LossResult loss(const Tensor& head_out,
                      const std::vector<std::vector<data::GtBox>>& targets);

  /// Decoded, NMS-filtered boxes for each image in the batch.
  std::vector<std::vector<Box>> decode(const Tensor& head_out,
                                       float score_threshold = 0.05f,
                                       float nms_iou = 0.45f);

  std::vector<nn::Parameter*> parameters();
  void set_training(bool training);

  /// BN recalibration over training images (same momentum-1/i scheme as
  /// train::recalibrate_batchnorm); run before evaluation.
  void recalibrate(const data::DetectionDataset& dataset,
                   int64_t batch_size = 16, int64_t max_batches = 8);
  models::MobileNetV2& backbone() { return *backbone_; }
  const DetectorConfig& config() const { return config_; }
  int64_t num_anchors() const { return static_cast<int64_t>(config_.anchors.size()); }

 private:
  std::shared_ptr<models::MobileNetV2> backbone_;
  DetectorConfig config_;
  std::shared_ptr<nn::ConvBnAct> neck_;
  std::shared_ptr<nn::Conv2d> pred_;
};

}  // namespace nb::detect
