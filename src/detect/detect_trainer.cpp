#include "detect/detect_trainer.h"

#include <cstdio>
#include <numeric>

#include "optim/lr_schedule.h"
#include "optim/sgd.h"
#include "detect/ap_eval.h"
#include "tensor/tensor_ops.h"

namespace nb::detect {

namespace {

struct DetBatch {
  Tensor images;
  std::vector<std::vector<data::GtBox>> targets;
};

DetBatch gather(const data::DetectionDataset& ds,
                const std::vector<int64_t>& order, int64_t begin, int64_t end) {
  DetBatch b;
  const int64_t n = end - begin;
  const int64_t r = ds.resolution();
  b.images = Tensor({n, 3, r, r});
  b.targets.resize(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    const int64_t idx = order[static_cast<size_t>(begin + i)];
    const Tensor img = ds.image(idx);
    std::copy(img.data(), img.data() + img.numel(),
              b.images.data() + i * img.numel());
    b.targets[static_cast<size_t>(i)] = ds.boxes(idx);
  }
  return b;
}

}  // namespace

float evaluate_ap50(TinyDetector& detector,
                    const data::DetectionDataset& dataset,
                    int64_t batch_size) {
  detector.set_training(false);
  std::vector<int64_t> order(static_cast<size_t>(dataset.size()));
  std::iota(order.begin(), order.end(), 0);
  std::vector<std::vector<Box>> all_preds;
  std::vector<std::vector<data::GtBox>> all_gts;
  for (int64_t begin = 0; begin < dataset.size(); begin += batch_size) {
    const int64_t end = std::min(dataset.size(), begin + batch_size);
    DetBatch batch = gather(dataset, order, begin, end);
    const Tensor head_out = detector.forward(batch.images);
    auto preds = detector.decode(head_out);
    for (auto& p : preds) all_preds.push_back(std::move(p));
    for (auto& t : batch.targets) all_gts.push_back(std::move(t));
  }
  return ap50(all_preds, all_gts, detector.config().num_classes);
}

float train_detector(TinyDetector& detector,
                     const data::DetectionDataset& train_set,
                     const data::DetectionDataset& test_set,
                     const DetectTrainConfig& config,
                     const std::function<void(int64_t, int64_t)>& on_iteration) {
  optim::Sgd sgd(detector.parameters(),
                 {config.lr, config.momentum, config.weight_decay, false});
  const int64_t steps_per_epoch =
      (train_set.size() + config.batch_size - 1) / config.batch_size;
  const int64_t total_steps = steps_per_epoch * config.epochs;
  optim::CosineLr schedule(config.lr, total_steps);
  Rng rng(config.seed, 33);

  std::vector<int64_t> order(static_cast<size_t>(train_set.size()));
  std::iota(order.begin(), order.end(), 0);

  int64_t step = 0;
  for (int64_t epoch = 0; epoch < config.epochs; ++epoch) {
    detector.set_training(true);
    rng.shuffle(order);
    double loss_sum = 0.0;
    int64_t batches = 0;
    for (int64_t begin = 0; begin < train_set.size(); begin += config.batch_size) {
      const int64_t end = std::min(train_set.size(), begin + config.batch_size);
      DetBatch batch = gather(train_set, order, begin, end);
      sgd.set_lr(schedule.lr_at(step));
      detector.backbone().zero_grad();
      for (nn::Parameter* p : detector.parameters()) p->zero_grad();
      const Tensor head_out = detector.forward(batch.images);
      nn::LossResult loss = detector.loss(head_out, batch.targets);
      detector.backward(loss.grad);
      optim::clip_grad_norm(detector.parameters(), 5.0f);
      sgd.step();
      loss_sum += loss.loss;
      ++batches;
      ++step;
      if (on_iteration) on_iteration(step, total_steps);
    }
    if (config.verbose) {
      std::printf("  det epoch %2lld | loss %.4f\n",
                  static_cast<long long>(epoch),
                  loss_sum / std::max<int64_t>(batches, 1));
      std::fflush(stdout);
    }
  }
  detector.recalibrate(train_set);
  return evaluate_ap50(detector, test_set);
}

}  // namespace nb::detect
