#include "detect/ap_eval.h"

#include <algorithm>

#include "tensor/tensor.h"

namespace nb::detect {

float average_precision(const std::vector<std::vector<Box>>& preds,
                        const std::vector<std::vector<data::GtBox>>& gts,
                        int64_t cls, float iou_threshold) {
  NB_CHECK(preds.size() == gts.size(), "pred/gt image count mismatch");

  // Flatten predictions of this class with their image index.
  struct Pred {
    float score;
    int64_t image;
    Box box;
  };
  std::vector<Pred> flat;
  int64_t total_gt = 0;
  for (size_t i = 0; i < preds.size(); ++i) {
    for (const Box& b : preds[i]) {
      if (b.cls == cls) flat.push_back({b.score, static_cast<int64_t>(i), b});
    }
    for (const data::GtBox& g : gts[i]) {
      if (g.cls == cls) ++total_gt;
    }
  }
  if (total_gt == 0) return -1.0f;  // class absent; caller skips
  std::sort(flat.begin(), flat.end(),
            [](const Pred& a, const Pred& b) { return a.score > b.score; });

  // Greedy matching, each gt matched at most once.
  std::vector<std::vector<bool>> used(gts.size());
  for (size_t i = 0; i < gts.size(); ++i) used[i].assign(gts[i].size(), false);

  std::vector<int> tp(flat.size(), 0);
  for (size_t p = 0; p < flat.size(); ++p) {
    const auto& pr = flat[p];
    const auto& img_gts = gts[static_cast<size_t>(pr.image)];
    float best_iou = 0.0f;
    int64_t best_g = -1;
    for (size_t g = 0; g < img_gts.size(); ++g) {
      if (img_gts[g].cls != cls || used[static_cast<size_t>(pr.image)][g]) continue;
      const data::GtBox& gt = img_gts[g];
      const Box gt_box = Box::from_cxcywh(gt.cx, gt.cy, gt.w, gt.h);
      const float v = iou(pr.box, gt_box);
      if (v > best_iou) {
        best_iou = v;
        best_g = static_cast<int64_t>(g);
      }
    }
    if (best_g >= 0 && best_iou >= iou_threshold) {
      tp[p] = 1;
      used[static_cast<size_t>(pr.image)][static_cast<size_t>(best_g)] = true;
    }
  }

  // Precision-recall curve.
  std::vector<float> precision(flat.size());
  std::vector<float> recall(flat.size());
  int64_t cum_tp = 0;
  for (size_t p = 0; p < flat.size(); ++p) {
    cum_tp += tp[p];
    precision[p] = static_cast<float>(cum_tp) / static_cast<float>(p + 1);
    recall[p] = static_cast<float>(cum_tp) / static_cast<float>(total_gt);
  }

  // 11-point interpolation (VOC 2007 style).
  float ap = 0.0f;
  for (int64_t i = 0; i <= 10; ++i) {
    const float r = static_cast<float>(i) / 10.0f;
    float pmax = 0.0f;
    for (size_t p = 0; p < flat.size(); ++p) {
      if (recall[p] >= r) pmax = std::max(pmax, precision[p]);
    }
    ap += pmax / 11.0f;
  }
  return ap;
}

float mean_ap(const std::vector<std::vector<Box>>& preds,
              const std::vector<std::vector<data::GtBox>>& gts,
              int64_t num_classes, float iou_threshold) {
  NB_CHECK(iou_threshold > 0.0f && iou_threshold <= 1.0f,
           "mean_ap: IoU threshold must be in (0, 1]");
  float sum = 0.0f;
  int64_t counted = 0;
  for (int64_t c = 0; c < num_classes; ++c) {
    const float ap = average_precision(preds, gts, c, iou_threshold);
    if (ap >= 0.0f) {
      sum += ap;
      ++counted;
    }
  }
  return counted > 0 ? sum / static_cast<float>(counted) : 0.0f;
}

float ap50(const std::vector<std::vector<Box>>& preds,
           const std::vector<std::vector<data::GtBox>>& gts,
           int64_t num_classes) {
  return mean_ap(preds, gts, num_classes, 0.5f);
}

MapReport evaluate_map(const std::vector<std::vector<Box>>& preds,
                       const std::vector<std::vector<data::GtBox>>& gts,
                       int64_t num_classes,
                       const std::vector<float>& iou_thresholds) {
  NB_CHECK(!iou_thresholds.empty(), "evaluate_map: need >= 1 threshold");
  MapReport report;
  report.per_threshold.reserve(iou_thresholds.size());
  double sum = 0.0;
  for (float t : iou_thresholds) {
    const float v = mean_ap(preds, gts, num_classes, t);
    report.per_threshold.push_back(v);
    sum += v;
  }
  report.mean =
      static_cast<float>(sum / static_cast<double>(iou_thresholds.size()));
  return report;
}

std::vector<float> coco_iou_ladder() {
  std::vector<float> out;
  for (int i = 0; i <= 9; ++i) {
    out.push_back(0.5f + 0.05f * static_cast<float>(i));
  }
  return out;
}

}  // namespace nb::detect
