// Axis-aligned boxes, IoU and non-maximum suppression for the detection
// substrate (Table III / Pascal-VOC stand-in).
#pragma once

#include <cstdint>
#include <vector>

namespace nb::detect {

/// Box in normalized corner coordinates with a confidence and a class.
struct Box {
  float x1 = 0.0f, y1 = 0.0f, x2 = 0.0f, y2 = 0.0f;
  float score = 0.0f;
  int64_t cls = 0;

  float area() const;
  static Box from_cxcywh(float cx, float cy, float w, float h);
};

/// Intersection over union of two boxes.
float iou(const Box& a, const Box& b);

/// Greedy per-class NMS; boxes need not be pre-sorted.
std::vector<Box> nms(std::vector<Box> boxes, float iou_threshold);

}  // namespace nb::detect
