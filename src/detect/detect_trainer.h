// Training loop and evaluation for TinyDetector. Accepts the same
// IterationHook as the classification trainer so NetBooster's PLT scheduler
// can ramp during detection finetuning (the Table III flow).
#pragma once

#include <functional>

#include "data/synth_detection.h"
#include "detect/detection_model.h"

namespace nb::detect {

struct DetectTrainConfig {
  int64_t epochs = 12;
  int64_t batch_size = 16;
  float lr = 0.02f;
  float momentum = 0.9f;
  float weight_decay = 1e-4f;
  uint64_t seed = 17;
  bool verbose = false;
};

/// Mean AP at IoU 0.5 over the dataset.
float evaluate_ap50(TinyDetector& detector,
                    const data::DetectionDataset& dataset,
                    int64_t batch_size = 16);

/// Trains the detector; returns the final AP50 on `test_set`.
float train_detector(TinyDetector& detector,
                     const data::DetectionDataset& train_set,
                     const data::DetectionDataset& test_set,
                     const DetectTrainConfig& config,
                     const std::function<void(int64_t, int64_t)>& on_iteration =
                         nullptr);

}  // namespace nb::detect
