// AP50 evaluation: greedy IoU-0.5 matching per class over the whole dataset,
// precision-recall curve, 11-point interpolated average precision (the
// classic Pascal VOC metric reported in Table III).
#pragma once

#include <vector>

#include "data/dataset.h"
#include "detect/box.h"

namespace nb::detect {

/// Average precision for one class; `preds`/`gts` are per-image lists.
float average_precision(const std::vector<std::vector<Box>>& preds,
                        const std::vector<std::vector<data::GtBox>>& gts,
                        int64_t cls, float iou_threshold = 0.5f);

/// Mean AP at IoU 0.5 over all classes (classes with no ground truth are
/// skipped, matching common VOC tooling).
float ap50(const std::vector<std::vector<Box>>& preds,
           const std::vector<std::vector<data::GtBox>>& gts,
           int64_t num_classes);

/// Mean AP at one arbitrary IoU threshold (ap50 == mean_ap(..., 0.5)).
float mean_ap(const std::vector<std::vector<Box>>& preds,
              const std::vector<std::vector<data::GtBox>>& gts,
              int64_t num_classes, float iou_threshold);

struct MapReport {
  /// One mean-AP value per requested threshold, in input order.
  std::vector<float> per_threshold;
  /// COCO-style average over the thresholds.
  float mean = 0.0f;
};

/// Multi-threshold evaluation, e.g. the COCO ladder {0.5, 0.55, ..., 0.95}.
MapReport evaluate_map(const std::vector<std::vector<Box>>& preds,
                       const std::vector<std::vector<data::GtBox>>& gts,
                       int64_t num_classes,
                       const std::vector<float>& iou_thresholds);

/// The COCO threshold ladder 0.50:0.05:0.95.
std::vector<float> coco_iou_ladder();

}  // namespace nb::detect
