#include "detect/detection_model.h"

#include <cmath>

#include "nn/init.h"

namespace nb::detect {

namespace {
float sigmoid(float x) { return 1.0f / (1.0f + std::exp(-x)); }

/// Huber (smooth-L1) with delta = 1: bounded gradient keeps the log-scale
/// size regression from blowing up early in training.
float huber(float d) {
  const float a = std::fabs(d);
  return a <= 1.0f ? 0.5f * d * d : a - 0.5f;
}
float huber_grad(float d) { return d > 1.0f ? 1.0f : (d < -1.0f ? -1.0f : d); }
}  // namespace

TinyDetector::TinyDetector(std::shared_ptr<models::MobileNetV2> backbone,
                           const DetectorConfig& config, Rng& rng)
    : backbone_(std::move(backbone)), config_(config) {
  NB_CHECK(backbone_ != nullptr, "detector needs a backbone");
  NB_CHECK(!config_.anchors.empty(), "detector needs anchors");
  config_.backbone_blocks =
      std::min<int64_t>(config_.backbone_blocks, backbone_->blocks().size());
  const int64_t feat =
      config_.backbone_blocks >= 0
          ? backbone_->trunk_channels(config_.backbone_blocks)
          : backbone_->feature_channels();
  neck_ = std::make_shared<nn::ConvBnAct>(
      nn::Conv2dOptions(feat, 64, 3).same_padding(), nn::ActKind::relu6);
  const int64_t out_c =
      num_anchors() * (5 + config_.num_classes);
  pred_ = std::make_shared<nn::Conv2d>(
      nn::Conv2dOptions(64, out_c, 1).with_bias(true));
  nn::init_parameters(*neck_, rng);
  nn::init_parameters(*pred_, rng);
}

Tensor TinyDetector::forward(const Tensor& images) {
  Tensor f = config_.backbone_blocks >= 0
                 ? backbone_->forward_trunk(images, config_.backbone_blocks)
                 : backbone_->forward_features(images);
  f = neck_->forward(f);
  return pred_->forward(f);
}

void TinyDetector::backward(const Tensor& grad_head_out) {
  Tensor g = pred_->backward(grad_head_out);
  g = neck_->backward(g);
  if (config_.backbone_blocks >= 0) {
    backbone_->backward_trunk(g);
  } else {
    backbone_->backward_features(g);
  }
}

nn::LossResult TinyDetector::loss(
    const Tensor& head_out,
    const std::vector<std::vector<data::GtBox>>& targets) {
  const int64_t n = head_out.size(0);
  const int64_t gh = head_out.size(2);
  const int64_t gw = head_out.size(3);
  const int64_t a_count = num_anchors();
  const int64_t k = config_.num_classes;
  const int64_t fields = 5 + k;
  NB_CHECK(head_out.size(1) == a_count * fields, "head channel mismatch");
  NB_CHECK(static_cast<int64_t>(targets.size()) == n, "target count mismatch");

  nn::LossResult result;
  result.grad = Tensor(head_out.shape());
  double loss = 0.0;
  const float inv_n = 1.0f / static_cast<float>(n);
  const float noobj_weight = 0.5f;

  auto idx = [&](int64_t i, int64_t a, int64_t f, int64_t y,
                 int64_t x) -> int64_t {
    return ((i * a_count * fields + a * fields + f) * gh + y) * gw + x;
  };

  // Positive assignment map: for each (i, a, y, x) the matched gt or -1.
  std::vector<int64_t> assigned(
      static_cast<size_t>(n * a_count * gh * gw), -1);
  auto aidx = [&](int64_t i, int64_t a, int64_t y, int64_t x) -> size_t {
    return static_cast<size_t>(((i * a_count + a) * gh + y) * gw + x);
  };

  for (int64_t i = 0; i < n; ++i) {
    const auto& gts = targets[static_cast<size_t>(i)];
    for (size_t t = 0; t < gts.size(); ++t) {
      const data::GtBox& gt = gts[t];
      const int64_t cx = std::min<int64_t>(gw - 1, static_cast<int64_t>(gt.cx * gw));
      const int64_t cy = std::min<int64_t>(gh - 1, static_cast<int64_t>(gt.cy * gh));
      // Best anchor by shape IoU.
      int64_t best_a = 0;
      float best_iou = -1.0f;
      for (int64_t a = 0; a < a_count; ++a) {
        const auto [aw, ah] = config_.anchors[static_cast<size_t>(a)];
        const float iw = std::min(aw, gt.w);
        const float ih = std::min(ah, gt.h);
        const float inter = iw * ih;
        const float uni = aw * ah + gt.w * gt.h - inter;
        const float v = uni > 0.0f ? inter / uni : 0.0f;
        if (v > best_iou) {
          best_iou = v;
          best_a = a;
        }
      }
      assigned[aidx(i, best_a, cy, cx)] = static_cast<int64_t>(t);
    }
  }

  for (int64_t i = 0; i < n; ++i) {
    const auto& gts = targets[static_cast<size_t>(i)];
    for (int64_t a = 0; a < a_count; ++a) {
      const auto [aw, ah] = config_.anchors[static_cast<size_t>(a)];
      for (int64_t y = 0; y < gh; ++y) {
        for (int64_t x = 0; x < gw; ++x) {
          const int64_t t = assigned[aidx(i, a, y, x)];
          const float obj_logit = head_out.at(idx(i, a, 4, y, x));
          const float obj_p = sigmoid(obj_logit);
          if (t < 0) {
            // Negative: push objectness to 0.
            loss += -noobj_weight * std::log(std::max(1.0f - obj_p, 1e-7f));
            result.grad.at(idx(i, a, 4, y, x)) =
                config_.w_obj * noobj_weight * obj_p * inv_n;
            continue;
          }
          const data::GtBox& gt = gts[static_cast<size_t>(t)];

          // Box regression (sigmoid-offset centers, log-scale sizes).
          const float tx = head_out.at(idx(i, a, 0, y, x));
          const float ty = head_out.at(idx(i, a, 1, y, x));
          const float tw = head_out.at(idx(i, a, 2, y, x));
          const float th = head_out.at(idx(i, a, 3, y, x));
          const float px = sigmoid(tx);
          const float py = sigmoid(ty);
          const float gx = gt.cx * gw - static_cast<float>(x);
          const float gy = gt.cy * gh - static_cast<float>(y);
          const float gw_t = std::log(std::max(gt.w / aw, 1e-4f));
          const float gh_t = std::log(std::max(gt.h / ah, 1e-4f));

          loss += config_.w_box * (huber(px - gx) + huber(py - gy) +
                                   huber(tw - gw_t) + huber(th - gh_t));
          result.grad.at(idx(i, a, 0, y, x)) =
              config_.w_box * huber_grad(px - gx) * px * (1.0f - px) * inv_n;
          result.grad.at(idx(i, a, 1, y, x)) =
              config_.w_box * huber_grad(py - gy) * py * (1.0f - py) * inv_n;
          result.grad.at(idx(i, a, 2, y, x)) =
              config_.w_box * huber_grad(tw - gw_t) * inv_n;
          result.grad.at(idx(i, a, 3, y, x)) =
              config_.w_box * huber_grad(th - gh_t) * inv_n;

          // Objectness target 1.
          loss += -config_.w_obj * std::log(std::max(obj_p, 1e-7f));
          result.grad.at(idx(i, a, 4, y, x)) =
              config_.w_obj * (obj_p - 1.0f) * inv_n;

          // Classification: softmax CE over the K class logits.
          float mx = head_out.at(idx(i, a, 5, y, x));
          for (int64_t c = 1; c < k; ++c) {
            mx = std::max(mx, head_out.at(idx(i, a, 5 + c, y, x)));
          }
          double denom = 0.0;
          for (int64_t c = 0; c < k; ++c) {
            denom += std::exp(head_out.at(idx(i, a, 5 + c, y, x)) - mx);
          }
          for (int64_t c = 0; c < k; ++c) {
            const float p = static_cast<float>(
                std::exp(head_out.at(idx(i, a, 5 + c, y, x)) - mx) / denom);
            const float target = c == gt.cls ? 1.0f : 0.0f;
            if (c == gt.cls) loss += -config_.w_cls * std::log(std::max(p, 1e-7f));
            result.grad.at(idx(i, a, 5 + c, y, x)) =
                config_.w_cls * (p - target) * inv_n;
          }
        }
      }
    }
  }
  result.loss = static_cast<float>(loss) * inv_n;
  return result;
}

std::vector<std::vector<Box>> TinyDetector::decode(const Tensor& head_out,
                                                   float score_threshold,
                                                   float nms_iou) {
  const int64_t n = head_out.size(0);
  const int64_t gh = head_out.size(2);
  const int64_t gw = head_out.size(3);
  const int64_t a_count = num_anchors();
  const int64_t k = config_.num_classes;
  const int64_t fields = 5 + k;

  auto get = [&](int64_t i, int64_t a, int64_t f, int64_t y, int64_t x) {
    return head_out.at(((i * a_count * fields + a * fields + f) * gh + y) * gw + x);
  };

  std::vector<std::vector<Box>> out(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    std::vector<Box> boxes;
    for (int64_t a = 0; a < a_count; ++a) {
      const auto [aw, ah] = config_.anchors[static_cast<size_t>(a)];
      for (int64_t y = 0; y < gh; ++y) {
        for (int64_t x = 0; x < gw; ++x) {
          const float obj = sigmoid(get(i, a, 4, y, x));
          if (obj < score_threshold) continue;
          // Class softmax.
          float mx = get(i, a, 5, y, x);
          for (int64_t c = 1; c < k; ++c) mx = std::max(mx, get(i, a, 5 + c, y, x));
          double denom = 0.0;
          for (int64_t c = 0; c < k; ++c) denom += std::exp(get(i, a, 5 + c, y, x) - mx);
          int64_t best_c = 0;
          float best_p = 0.0f;
          for (int64_t c = 0; c < k; ++c) {
            const float p = static_cast<float>(std::exp(get(i, a, 5 + c, y, x) - mx) / denom);
            if (p > best_p) {
              best_p = p;
              best_c = c;
            }
          }
          const float score = obj * best_p;
          if (score < score_threshold) continue;
          const float cx = (static_cast<float>(x) + sigmoid(get(i, a, 0, y, x))) /
                           static_cast<float>(gw);
          const float cy = (static_cast<float>(y) + sigmoid(get(i, a, 1, y, x))) /
                           static_cast<float>(gh);
          const float bw = std::min(1.5f, aw * std::exp(get(i, a, 2, y, x)));
          const float bh = std::min(1.5f, ah * std::exp(get(i, a, 3, y, x)));
          Box b = Box::from_cxcywh(cx, cy, bw, bh);
          b.score = score;
          b.cls = best_c;
          boxes.push_back(b);
        }
      }
    }
    out[static_cast<size_t>(i)] = nms(std::move(boxes), nms_iou);
  }
  return out;
}

std::vector<nn::Parameter*> TinyDetector::parameters() {
  // Only the layers the head actually reads; blocks past the tap would get
  // zero gradients and should not be decayed either.
  std::vector<nn::Parameter*> params =
      config_.backbone_blocks >= 0
          ? backbone_->trunk_parameters(config_.backbone_blocks)
          : backbone_->parameters();
  for (nn::Parameter* p : neck_->parameters()) params.push_back(p);
  for (nn::Parameter* p : pred_->parameters()) params.push_back(p);
  return params;
}

void TinyDetector::set_training(bool training) {
  backbone_->set_training(training);
  neck_->set_training(training);
  pred_->set_training(training);
}

void TinyDetector::recalibrate(const data::DetectionDataset& dataset,
                               int64_t batch_size, int64_t max_batches) {
  std::vector<nn::BatchNorm2d*> bns;
  const auto collect = [&bns](nn::Module& m) {
    if (auto* bn = dynamic_cast<nn::BatchNorm2d*>(&m)) bns.push_back(bn);
  };
  backbone_->apply(collect);
  neck_->apply(collect);
  if (bns.empty()) return;

  set_training(true);
  const int64_t r = dataset.resolution();
  int64_t done = 0;
  for (int64_t begin = 0; begin < dataset.size() && done < max_batches;
       begin += batch_size, ++done) {
    const int64_t end = std::min(dataset.size(), begin + batch_size);
    Tensor images({end - begin, 3, r, r});
    for (int64_t i = begin; i < end; ++i) {
      const Tensor img = dataset.image(i);
      std::copy(img.data(), img.data() + img.numel(),
                images.data() + (i - begin) * img.numel());
    }
    const float m = 1.0f / static_cast<float>(done + 1);
    for (nn::BatchNorm2d* bn : bns) bn->set_momentum(m);
    (void)forward(images);
  }
  for (nn::BatchNorm2d* bn : bns) bn->set_momentum(0.1f);
}

}  // namespace nb::detect
