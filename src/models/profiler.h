// FLOPs / parameter profiler. Runs one dummy eval-mode forward so every
// Conv2d records the spatial size it saw, then walks the module tree summing
// conv and linear costs. Works unchanged on expanded (deep giant) and
// contracted models — which is how the benches verify that contraction
// restores the original inference cost.
#pragma once

#include <cstdint>
#include <string>

#include "nn/module.h"

namespace nb::models {

struct Profile {
  int64_t flops = 0;   // 2 * MACs, conv + linear
  int64_t params = 0;  // trainable scalars

  double mflops() const { return static_cast<double>(flops) / 1.0e6; }
  double mparams() const { return static_cast<double>(params) / 1.0e6; }
};

/// Profiles `m` for [1, channels, resolution, resolution] inputs.
Profile profile_model(nn::Module& m, int64_t resolution, int64_t channels = 3);

/// Formats like "23.5M".
std::string human_count(int64_t value);

/// Human-readable per-layer table (hierarchical path, type, parameter count,
/// FLOPs for conv/linear layers) with a totals footer. Layers with no
/// parameters and no cost (activations, pooling) are omitted.
std::string summarize_model(nn::Module& m, int64_t resolution,
                            int64_t channels = 3);

}  // namespace nb::models
