// MobileNetV2 (Sandler et al., 2018) scaled for the synthetic substrate. The
// structure is faithful — pw-expand / dw kxk / pw-project inverted residual
// blocks with the residual rule (stride 1 and cin == cout), ReLU6, BN, width
// multiplier — while stage widths/depths are sized for 20-32 px inputs so
// training fits the CPU budget (see DESIGN.md "Substitutions"). MCUNet-style
// models reuse this class with a different stage table (mixed kernel sizes
// and expansion ratios).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/blocks.h"
#include "nn/linear.h"
#include "nn/pooling.h"
#include "nn/sequential.h"
#include "tensor/rng.h"

namespace nb::models {

/// One stage: `n` inverted residual blocks of `c` output channels, expansion
/// `t`, kernel `k`; the first block in the stage uses stride `s`.
struct Stage {
  int64_t t = 6;
  int64_t c = 24;
  int64_t n = 1;
  int64_t s = 1;
  int64_t k = 3;
};

struct ModelConfig {
  std::string name = "mbv2";
  float width_mult = 1.0f;
  int64_t stem_channels = 16;
  int64_t head_channels = 96;
  std::vector<Stage> stages;
  int64_t num_classes = 24;
  nn::ActKind act = nn::ActKind::relu6;
  /// Attach Squeeze-Excitation to every block (the MCUNet-SE variant).
  bool use_se = false;
  int64_t se_reduction = 4;
  /// The paper resolution this configuration corresponds to (for reports).
  int64_t paper_resolution = 160;
};

/// Applies the width multiplier with divisor-8 rounding (torchvision rule,
/// divisor 4 here because the channel counts are small).
int64_t make_divisible(float value, int64_t divisor = 4);

class MobileNetV2 : public nn::Module {
 public:
  explicit MobileNetV2(const ModelConfig& config);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string type_name() const override { return "MobileNetV2"; }
  std::vector<std::pair<std::string, Module*>> named_children() override;

  /// Backbone only: NCHW feature map after the head conv (used by the
  /// detection model, which attaches its own head).
  Tensor forward_features(const Tensor& x);
  /// Backward through the backbone only; pairs with forward_features.
  Tensor backward_features(const Tensor& grad_out);

  /// Intermediate tap: stem + the first `num_blocks` trunk blocks. Detection
  /// heads use this to read a higher-resolution, smaller-receptive-field map
  /// than the classifier features (which are nearly position-invariant).
  Tensor forward_trunk(const Tensor& x, int64_t num_blocks);
  /// Backward through the layers used by the last forward_trunk call.
  Tensor backward_trunk(const Tensor& grad_out);
  /// Output channels of forward_trunk(x, num_blocks).
  int64_t trunk_channels(int64_t num_blocks);
  /// Parameters of stem + the first `num_blocks` blocks only.
  std::vector<nn::Parameter*> trunk_parameters(int64_t num_blocks);

  const ModelConfig& config() const { return config_; }
  /// The inverted residual trunk (surgery target for Network Expansion).
  nn::Sequential& blocks() { return *blocks_; }
  /// Typed handles to every trunk block, in order.
  std::vector<nn::InvertedResidual*> residual_blocks();
  nn::ConvBnAct& stem() { return *stem_; }
  nn::ConvBnAct& head() { return *head_; }
  /// Typed classifier access; throws if the slot was replaced by a wrapper
  /// that is not a Linear (e.g. after quantization).
  nn::Linear& classifier();
  /// The classifier slot itself (quantization swaps a QuantLinear in).
  nn::ModulePtr& classifier_slot() { return classifier_; }
  int64_t feature_channels() const { return feature_channels_; }

  /// Replaces the classification head (transfer to a downstream task with a
  /// different class count); backbone weights are untouched.
  void reset_classifier(int64_t num_classes, Rng& rng);

  /// Installs a DropBlock regularizer between the trunk and the head conv
  /// (train-mode only). Used by the Fig. 1(a) bench to show regularization
  /// hurting under-fitting TNNs; pass nullptr to remove.
  void set_dropblock(std::shared_ptr<nn::Module> dropblock);

 private:
  ModelConfig config_;
  std::shared_ptr<nn::ConvBnAct> stem_;
  std::shared_ptr<nn::Sequential> blocks_;
  std::shared_ptr<nn::ConvBnAct> head_;
  std::shared_ptr<nn::GlobalAvgPool> pool_;
  nn::ModulePtr classifier_;
  std::shared_ptr<nn::Module> dropblock_;  // optional, Fig. 1(a) bench
  int64_t feature_channels_ = 0;
  int64_t trunk_blocks_used_ = 0;
};

/// Canonical scaled-down MobileNetV2 config for a given width multiplier.
ModelConfig mobilenet_v2_config(const std::string& name, float width_mult,
                                int64_t num_classes, int64_t paper_resolution);

}  // namespace nb::models
