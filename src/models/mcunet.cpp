#include "models/mcunet.h"

namespace nb::models {

ModelConfig mcunet_config(int64_t num_classes, int64_t paper_resolution) {
  ModelConfig c;
  c.name = "mcunet";
  c.width_mult = 1.0f;
  c.num_classes = num_classes;
  c.paper_resolution = paper_resolution;
  c.stem_channels = 12;
  c.head_channels = 80;
  // Heterogeneous kernels and expansions, the signature of the NAS result.
  c.stages = {
      {1, 8, 1, 1, 3},
      {4, 12, 1, 2, 5},
      {5, 16, 2, 2, 3},
      {4, 24, 2, 2, 7},
      {6, 32, 1, 1, 5},
      {6, 40, 1, 2, 3},
  };
  return c;
}

}  // namespace nb::models
