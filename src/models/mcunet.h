// MCUNet-style architecture (Lin et al., 2020): a hardware-friendly MBConv
// network found by NAS. We use a fixed representative stage table with the
// hallmarks of the searched family — mixed kernel sizes (3/5/7) and varying
// expansion ratios — on top of the same InvertedResidual machinery.
#pragma once

#include "models/mobilenetv2.h"

namespace nb::models {

/// Stage table standing in for the MCUNet search result (see DESIGN.md).
ModelConfig mcunet_config(int64_t num_classes, int64_t paper_resolution = 176);

}  // namespace nb::models
