// Named model constructors for the four networks in Table I plus the wide
// teacher used by the KD baselines.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "models/mobilenetv2.h"

namespace nb::models {

/// Names: "mbv2-tiny", "mbv2-35", "mbv2-50", "mbv2-100", "mcunet",
/// "teacher" (4x-wide MobileNetV2 standing in for Assemble-ResNet50).
std::shared_ptr<MobileNetV2> make_model(const std::string& name,
                                        int64_t num_classes, uint64_t seed = 3);

/// The config a name resolves to (without building the model).
ModelConfig model_config(const std::string& name, int64_t num_classes);

/// Table I row order.
const std::vector<std::string>& table1_model_names();

}  // namespace nb::models
