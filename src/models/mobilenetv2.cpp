#include "models/mobilenetv2.h"

#include <cmath>

#include "tensor/tensor_ops.h"

namespace nb::models {

int64_t make_divisible(float value, int64_t divisor) {
  const int64_t rounded =
      std::max<int64_t>(divisor, static_cast<int64_t>(value + divisor / 2.0f) /
                                     divisor * divisor);
  // Do not shrink by more than 10% (torchvision rule).
  if (static_cast<float>(rounded) < 0.9f * value) return rounded + divisor;
  return rounded;
}

MobileNetV2::MobileNetV2(const ModelConfig& config) : config_(config) {
  NB_CHECK(!config.stages.empty(), "model needs at least one stage");
  const int64_t stem_c =
      make_divisible(config.stem_channels * config.width_mult);
  stem_ = std::make_shared<nn::ConvBnAct>(
      nn::Conv2dOptions(3, stem_c, 3).with_stride(1).same_padding(),
      config.act);

  blocks_ = std::make_shared<nn::Sequential>();
  int64_t cin = stem_c;
  for (const Stage& stage : config.stages) {
    const int64_t cout = make_divisible(stage.c * config.width_mult);
    for (int64_t i = 0; i < stage.n; ++i) {
      const int64_t stride = (i == 0) ? stage.s : 1;
      blocks_->emplace<nn::InvertedResidual>(cin, cout, stride, stage.t,
                                             stage.k, config.act,
                                             config.use_se,
                                             config.se_reduction);
      cin = cout;
    }
  }

  feature_channels_ = make_divisible(config.head_channels * config.width_mult);
  head_ = std::make_shared<nn::ConvBnAct>(
      nn::Conv2dOptions(cin, feature_channels_, 1), config.act);
  pool_ = std::make_shared<nn::GlobalAvgPool>();
  classifier_ = std::make_shared<nn::Linear>(feature_channels_,
                                             config.num_classes, true);
}

Tensor MobileNetV2::forward_features(const Tensor& x) {
  Tensor y = stem_->forward(x);
  y = blocks_->forward(y);
  if (dropblock_) y = dropblock_->forward(y);
  return head_->forward(y);
}

Tensor MobileNetV2::backward_features(const Tensor& grad_out) {
  Tensor g = head_->backward(grad_out);
  if (dropblock_) g = dropblock_->backward(g);
  g = blocks_->backward(g);
  return stem_->backward(g);
}

Tensor MobileNetV2::forward_trunk(const Tensor& x, int64_t num_blocks) {
  NB_CHECK(num_blocks >= 0 && num_blocks <= blocks_->size(),
           "trunk tap out of range");
  trunk_blocks_used_ = num_blocks;
  Tensor y = stem_->forward(x);
  for (int64_t i = 0; i < num_blocks; ++i) y = blocks_->at(i)->forward(y);
  return y;
}

Tensor MobileNetV2::backward_trunk(const Tensor& grad_out) {
  Tensor g = grad_out;
  for (int64_t i = trunk_blocks_used_ - 1; i >= 0; --i) {
    g = blocks_->at(i)->backward(g);
  }
  return stem_->backward(g);
}

int64_t MobileNetV2::trunk_channels(int64_t num_blocks) {
  NB_CHECK(num_blocks >= 0 && num_blocks <= blocks_->size(),
           "trunk tap out of range");
  if (num_blocks == 0) {
    return dynamic_cast<nn::Conv2d*>(stem_->conv_slot().get())
        ->options()
        .out_channels;
  }
  auto* block = dynamic_cast<nn::InvertedResidual*>(
      blocks_->at(num_blocks - 1).get());
  NB_CHECK(block != nullptr, "trunk holds a non-InvertedResidual module");
  return block->cout();
}

std::vector<nn::Parameter*> MobileNetV2::trunk_parameters(int64_t num_blocks) {
  std::vector<nn::Parameter*> params = stem_->parameters();
  for (int64_t i = 0; i < num_blocks; ++i) {
    for (nn::Parameter* p : blocks_->at(i)->parameters()) params.push_back(p);
  }
  return params;
}

void MobileNetV2::set_dropblock(std::shared_ptr<nn::Module> dropblock) {
  dropblock_ = std::move(dropblock);
  if (dropblock_) dropblock_->set_training(training());
}

Tensor MobileNetV2::forward(const Tensor& x) {
  Tensor y = forward_features(x);
  y = pool_->forward(y);
  return classifier_->forward(y);
}

Tensor MobileNetV2::backward(const Tensor& grad_out) {
  Tensor g = classifier_->backward(grad_out);
  g = pool_->backward(g);
  return backward_features(g);
}

std::vector<std::pair<std::string, nn::Module*>> MobileNetV2::named_children() {
  std::vector<std::pair<std::string, nn::Module*>> out = {
      {"stem", stem_.get()},
      {"blocks", blocks_.get()},
      {"head", head_.get()},
      {"pool", pool_.get()},
      {"classifier", classifier_.get()}};
  if (dropblock_) out.emplace_back("dropblock", dropblock_.get());
  return out;
}

std::vector<nn::InvertedResidual*> MobileNetV2::residual_blocks() {
  std::vector<nn::InvertedResidual*> out;
  for (int64_t i = 0; i < blocks_->size(); ++i) {
    auto* block = dynamic_cast<nn::InvertedResidual*>(blocks_->at(i).get());
    NB_CHECK(block != nullptr, "trunk holds a non-InvertedResidual module");
    out.push_back(block);
  }
  return out;
}

nn::Linear& MobileNetV2::classifier() {
  auto* linear = dynamic_cast<nn::Linear*>(classifier_.get());
  NB_CHECK(linear != nullptr,
           "classifier slot does not hold a Linear (wrapped or replaced?)");
  return *linear;
}

void MobileNetV2::reset_classifier(int64_t num_classes, Rng& rng) {
  config_.num_classes = num_classes;
  auto linear = std::make_shared<nn::Linear>(feature_channels_, num_classes,
                                             true);
  linear->set_training(training());
  fill_normal(linear->weight().value, rng, 0.0f, 0.01f);
  linear->bias().value.zero();
  classifier_ = std::move(linear);
}

ModelConfig mobilenet_v2_config(const std::string& name, float width_mult,
                                int64_t num_classes,
                                int64_t paper_resolution) {
  ModelConfig c;
  c.name = name;
  c.width_mult = width_mult;
  c.num_classes = num_classes;
  c.paper_resolution = paper_resolution;
  c.stem_channels = 16;
  c.head_channels = 96;
  // Scaled-down analogue of the torchvision stage table
  // (1,16,1,1)(6,24,2,2)(6,32,3,2)(6,64,4,2)(6,96,3,1)(6,160,3,2)(6,320,1,1):
  // same expansion/stride pattern, fewer repeats, smaller widths.
  c.stages = {
      {1, 12, 1, 1, 3},
      {6, 16, 2, 2, 3},
      {6, 24, 2, 2, 3},
      {6, 32, 2, 1, 3},
      {6, 48, 1, 2, 3},
  };
  return c;
}

}  // namespace nb::models
