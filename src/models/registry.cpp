#include "models/registry.h"

#include "models/mcunet.h"
#include "nn/init.h"

namespace nb::models {

ModelConfig model_config(const std::string& name, int64_t num_classes) {
  if (name == "mbv2-tiny") {
    // NetAug's MobileNetV2-Tiny: aggressively shrunk width and depth.
    ModelConfig c = mobilenet_v2_config(name, 0.35f, num_classes, 144);
    c.stages = {
        {1, 12, 1, 1, 3},
        {6, 16, 1, 2, 3},
        {6, 24, 1, 2, 3},
        {6, 32, 1, 1, 3},
        {6, 48, 1, 2, 3},
    };
    c.head_channels = 64;
    return c;
  }
  if (name == "mbv2-35") return mobilenet_v2_config(name, 0.35f, num_classes, 160);
  if (name == "mbv2-50") return mobilenet_v2_config(name, 0.50f, num_classes, 160);
  if (name == "mbv2-100") return mobilenet_v2_config(name, 1.00f, num_classes, 160);
  if (name == "mcunet") return mcunet_config(num_classes);
  if (name == "mcunet-se") {
    // MCUNet stage table with Squeeze-Excitation on every block; exercises
    // that NetBooster's surgery coexists with channel attention.
    ModelConfig c = mcunet_config(num_classes);
    c.name = name;
    c.use_se = true;
    return c;
  }
  if (name == "teacher") {
    // Wide teacher standing in for Assemble-ResNet50 (KD baselines).
    ModelConfig c = mobilenet_v2_config(name, 2.0f, num_classes, 160);
    c.head_channels = 160;
    return c;
  }
  NB_CHECK(false, "unknown model: " + name);
  return {};
}

std::shared_ptr<MobileNetV2> make_model(const std::string& name,
                                        int64_t num_classes, uint64_t seed) {
  auto model = std::make_shared<MobileNetV2>(model_config(name, num_classes));
  Rng rng(seed, 9);
  nn::init_parameters(*model, rng);
  return model;
}

const std::vector<std::string>& table1_model_names() {
  static const std::vector<std::string> names = {"mbv2-tiny", "mcunet",
                                                 "mbv2-50", "mbv2-100"};
  return names;
}

}  // namespace nb::models
