#include "models/profiler.h"

#include <cmath>
#include <sstream>

#include "nn/conv2d.h"
#include "nn/linear.h"
#include "util/table.h"

namespace nb::models {

Profile profile_model(nn::Module& m, int64_t resolution, int64_t channels) {
  const bool was_training = m.training();
  m.set_training(false);
  Tensor dummy({1, channels, resolution, resolution});
  (void)m.forward(dummy);
  m.set_training(was_training);

  Profile p;
  m.apply([&p](nn::Module& mod) {
    if (auto* conv = dynamic_cast<nn::Conv2d*>(&mod)) {
      NB_CHECK(conv->last_input_h() > 0, "conv did not see the dummy input");
      p.flops += conv->flops(conv->last_input_h(), conv->last_input_w());
    } else if (auto* fc = dynamic_cast<nn::Linear*>(&mod)) {
      p.flops += fc->flops();
    }
  });
  p.params = m.param_count();
  return p;
}

namespace {

int64_t local_param_count(nn::Module& m) {
  int64_t n = 0;
  for (auto& [name, p] : m.local_params()) {
    (void)name;
    n += p->value.numel();
  }
  return n;
}

void summarize_into(nn::Module& m, const std::string& path,
                    util::Table& table) {
  const int64_t params = local_param_count(m);
  int64_t flops = 0;
  if (auto* conv = dynamic_cast<nn::Conv2d*>(&m)) {
    if (conv->last_input_h() > 0) {
      flops = conv->flops(conv->last_input_h(), conv->last_input_w());
    }
  } else if (auto* fc = dynamic_cast<nn::Linear*>(&m)) {
    flops = fc->flops();
  }
  if (params > 0 || flops > 0) {
    table.add_row({path.empty() ? "(root)" : path, m.type_name(),
                   util::format_count(params),
                   flops > 0 ? human_count(flops) : "-"});
  }
  for (auto& [name, child] : m.named_children()) {
    summarize_into(*child, path.empty() ? name : path + "." + name, table);
  }
}

}  // namespace

std::string summarize_model(nn::Module& m, int64_t resolution,
                            int64_t channels) {
  const Profile total = profile_model(m, resolution, channels);
  util::Table table({"layer", "type", "params", "flops"});
  summarize_into(m, "", table);
  std::ostringstream os;
  os << table.render();
  os << "total: " << human_count(total.params) << " params, "
     << human_count(total.flops) << " FLOPs @ " << resolution << "x"
     << resolution << "\n";
  return os.str();
}

std::string human_count(int64_t value) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(value >= 100'000'000 ? 0 : 1);
  if (value >= 1'000'000) {
    os << static_cast<double>(value) / 1.0e6 << "M";
  } else if (value >= 1'000) {
    os << static_cast<double>(value) / 1.0e3 << "K";
  } else {
    os << value;
  }
  return os.str();
}

}  // namespace nb::models
