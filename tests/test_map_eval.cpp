// Tests for the multi-IoU mAP evaluation (extension of the AP50 metric used
// by Table III).
#include <gtest/gtest.h>

#include "detect/ap_eval.h"

namespace nb::detect {
namespace {

data::GtBox gt(float cx, float cy, float w, float h, int64_t cls) {
  return data::GtBox{cx, cy, w, h, cls};
}

Box pred(float cx, float cy, float w, float h, int64_t cls, float score) {
  Box b = Box::from_cxcywh(cx, cy, w, h);
  b.cls = cls;
  b.score = score;
  return b;
}

TEST(MeanAp, PerfectPredictionsScoreOneAtEveryThreshold) {
  std::vector<std::vector<data::GtBox>> gts = {
      {gt(0.3f, 0.3f, 0.2f, 0.2f, 0)}, {gt(0.7f, 0.7f, 0.25f, 0.25f, 1)}};
  std::vector<std::vector<Box>> preds = {
      {pred(0.3f, 0.3f, 0.2f, 0.2f, 0, 0.9f)},
      {pred(0.7f, 0.7f, 0.25f, 0.25f, 1, 0.8f)}};
  const MapReport report = evaluate_map(preds, gts, 2, coco_iou_ladder());
  for (float v : report.per_threshold) {
    EXPECT_NEAR(v, 1.0f, 1e-5f);
  }
  EXPECT_NEAR(report.mean, 1.0f, 1e-5f);
}

TEST(MeanAp, LooseBoxPassesLowThresholdFailsHigh) {
  // A prediction offset by a quarter of its width: IoU ~= 0.6.
  std::vector<std::vector<data::GtBox>> gts = {
      {gt(0.5f, 0.5f, 0.4f, 0.4f, 0)}};
  std::vector<std::vector<Box>> preds = {
      {pred(0.55f, 0.5f, 0.4f, 0.4f, 0, 0.9f)}};
  const float ap_50 = mean_ap(preds, gts, 1, 0.5f);
  const float ap_90 = mean_ap(preds, gts, 1, 0.9f);
  EXPECT_GT(ap_50, 0.9f);
  EXPECT_LT(ap_90, 0.1f);
}

TEST(MeanAp, MonotoneNonIncreasingInThreshold) {
  std::vector<std::vector<data::GtBox>> gts = {
      {gt(0.4f, 0.4f, 0.3f, 0.3f, 0), gt(0.75f, 0.75f, 0.2f, 0.2f, 0)}};
  std::vector<std::vector<Box>> preds = {
      {pred(0.42f, 0.4f, 0.3f, 0.3f, 0, 0.9f),
       pred(0.7f, 0.75f, 0.22f, 0.2f, 0, 0.7f),
       pred(0.1f, 0.1f, 0.2f, 0.2f, 0, 0.5f)}};
  float prev = 2.0f;
  for (float t : coco_iou_ladder()) {
    const float v = mean_ap(preds, gts, 1, t);
    EXPECT_LE(v, prev + 1e-6f) << "AP must not rise as IoU tightens";
    prev = v;
  }
}

TEST(MeanAp, Ap50IsAliasForHalfThreshold) {
  std::vector<std::vector<data::GtBox>> gts = {
      {gt(0.5f, 0.5f, 0.3f, 0.3f, 0)}};
  std::vector<std::vector<Box>> preds = {
      {pred(0.52f, 0.5f, 0.3f, 0.3f, 0, 0.9f)}};
  EXPECT_FLOAT_EQ(ap50(preds, gts, 1), mean_ap(preds, gts, 1, 0.5f));
}

TEST(MeanAp, CocoLadderHasTenRungs) {
  const std::vector<float> ladder = coco_iou_ladder();
  ASSERT_EQ(ladder.size(), 10u);
  EXPECT_FLOAT_EQ(ladder.front(), 0.5f);
  EXPECT_FLOAT_EQ(ladder.back(), 0.95f);
}

TEST(MeanAp, InvalidArgumentsThrow) {
  std::vector<std::vector<data::GtBox>> gts = {{gt(0.5f, 0.5f, 0.3f, 0.3f, 0)}};
  std::vector<std::vector<Box>> preds = {{}};
  EXPECT_THROW(mean_ap(preds, gts, 1, 0.0f), std::runtime_error);
  EXPECT_THROW(mean_ap(preds, gts, 1, 1.5f), std::runtime_error);
  EXPECT_THROW(evaluate_map(preds, gts, 1, {}), std::runtime_error);
}

TEST(MeanAp, ReportMeanAveragesThresholds) {
  std::vector<std::vector<data::GtBox>> gts = {
      {gt(0.5f, 0.5f, 0.4f, 0.4f, 0)}};
  std::vector<std::vector<Box>> preds = {
      {pred(0.55f, 0.5f, 0.4f, 0.4f, 0, 0.9f)}};
  const MapReport r = evaluate_map(preds, gts, 1, {0.5f, 0.9f});
  EXPECT_NEAR(r.mean, 0.5f * (r.per_threshold[0] + r.per_threshold[1]),
              1e-6f);
}

}  // namespace
}  // namespace nb::detect
