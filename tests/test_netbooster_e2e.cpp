// End-to-end NetBooster pipeline tests on miniature data: the full
// expand -> giant-train -> PLT -> contract flow, the transfer flow, and the
// functional guarantees the paper's tables rely on.
#include <gtest/gtest.h>

#include "core/netbooster.h"
#include "models/registry.h"
#include "test_util.h"
#include "train/metrics.h"

namespace nb::core {
namespace {

using ::nb::testing::ToyDataset;

NetBoosterConfig micro_config() {
  NetBoosterConfig c;
  c.giant.epochs = 3;
  c.giant.batch_size = 16;
  c.giant.lr = 0.05f;
  c.giant.augment = false;
  c.tune.epochs = 4;
  c.tune.batch_size = 16;
  c.tune.lr = 0.02f;
  c.tune.augment = false;
  c.plt_fraction = 0.5f;
  c.verify_contraction = true;
  return c;
}

TEST(NetBoosterE2E, FullPipelineRunsAndContractsExactly) {
  ToyDataset train(16, 4, 12, 21);
  ToyDataset test(8, 4, 12, 22);
  auto model = models::make_model("mbv2-tiny", 4);
  const models::Profile original = models::profile_model(*model, 12);

  NetBooster nb(model, micro_config());
  const models::Profile giant = models::profile_model(nb.model(), 12);
  EXPECT_GT(giant.params, original.params) << "giant must be bigger";

  const float giant_acc = nb.train_giant(train, test);
  EXPECT_GT(giant_acc, 0.3f);

  const float final_acc = nb.tune_and_contract(train, test);
  EXPECT_TRUE(nb.contracted());
  EXPECT_GT(final_acc, 0.3f);
  EXPECT_LT(nb.result().contraction_error, 1e-2f);

  // Inference cost restored exactly (Table I's efficiency column).
  EXPECT_EQ(nb.result().final_profile.flops, original.flops);
  EXPECT_EQ(nb.result().final_profile.params, original.params);
}

TEST(NetBoosterE2E, RunHelperProducesConsistentResult) {
  ToyDataset train(12, 3, 12, 23);
  ToyDataset test(6, 3, 12, 24);
  auto model = models::make_model("mbv2-tiny", 3);
  const NetBoosterResult r =
      run_netbooster(model, train, test, micro_config());
  EXPECT_GT(r.expanded_acc, 0.0f);
  EXPECT_GT(r.final_acc, 0.0f);
  EXPECT_GT(r.giant_profile.params, r.final_profile.params);
  EXPECT_EQ(r.giant_history.epochs.size(), 3u);
  EXPECT_EQ(r.tune_history.epochs.size(), 4u);
}

TEST(NetBoosterE2E, TransferFlowSwapsHead) {
  ToyDataset pretrain(12, 4, 12, 25);
  ToyDataset pretrain_test(6, 4, 12, 26);
  ToyDataset downstream(12, 2, 12, 27);
  ToyDataset downstream_test(6, 2, 12, 28);

  auto model = models::make_model("mbv2-tiny", 4);
  NetBooster nb(model, micro_config());
  nb.train_giant(pretrain, pretrain_test);
  nb.prepare_transfer(2);
  const float acc = nb.tune_and_contract(downstream, downstream_test);
  EXPECT_GT(acc, 0.4f);
  EXPECT_EQ(nb.model().config().num_classes, 2);
}

TEST(NetBoosterE2E, DoubleContractionRejected) {
  ToyDataset train(8, 2, 12, 29);
  ToyDataset test(4, 2, 12, 30);
  auto model = models::make_model("mbv2-tiny", 2);
  NetBoosterConfig c = micro_config();
  c.giant.epochs = 1;
  c.tune.epochs = 2;
  NetBooster nb(model, c);
  nb.train_giant(train, test);
  nb.tune_and_contract(train, test);
  EXPECT_THROW(nb.tune_and_contract(train, test), std::runtime_error);
}

TEST(NetBoosterE2E, PltAlphaReachesOneBeforeContraction) {
  ToyDataset train(8, 2, 12, 31);
  ToyDataset test(4, 2, 12, 32);
  auto model = models::make_model("mbv2-tiny", 2);
  NetBoosterConfig c = micro_config();
  c.giant.epochs = 1;
  c.tune.epochs = 2;
  c.plt_fraction = 0.9f;  // ramp ends barely before training does
  NetBooster nb(model, c);
  nb.train_giant(train, test);
  // Would throw inside contraction if any alpha were < 1.
  EXPECT_NO_THROW(nb.tune_and_contract(train, test));
}

TEST(NetBoosterE2E, AblationConfigsAllRun) {
  // Smoke every (block type, placement) combination end to end at tiny scale
  // — the matrix behind Tables IV and V.
  ToyDataset train(8, 2, 12, 33);
  ToyDataset test(4, 2, 12, 34);
  for (BlockType bt : {BlockType::inverted_residual, BlockType::basic,
                       BlockType::bottleneck}) {
    for (Placement pl : {Placement::uniform, Placement::first,
                         Placement::middle, Placement::last}) {
      auto model = models::make_model("mbv2-tiny", 2);
      NetBoosterConfig c = micro_config();
      c.giant.epochs = 1;
      c.tune.epochs = 2;
      c.expansion.block_type = bt;
      c.expansion.placement = pl;
      const NetBoosterResult r = run_netbooster(model, train, test, c);
      EXPECT_LT(r.contraction_error, 1e-2f)
          << to_string(bt) << "/" << to_string(pl);
    }
  }
}

TEST(NetBoosterE2E, GiantFitsAtLeastAsWellAsColdTiny) {
  // The core premise (Fig. 1a): the expanded giant fits the data at least as
  // well as the raw tiny model. With function-preserving insertion the giant
  // starts from the TNN's function and only adds capacity, so its training
  // fit must not fall behind by more than optimizer noise.
  ToyDataset train(24, 6, 12, 35);
  ToyDataset test(12, 6, 12, 36);

  auto vanilla = models::make_model("mbv2-tiny", 6, 40);
  train::TrainConfig tc;
  tc.epochs = 4;
  tc.batch_size = 16;
  tc.lr = 0.05f;
  tc.augment = false;
  const float vanilla_train_acc =
      train::train_classifier(*vanilla, train, test, tc).epochs.back().train_acc;

  auto boosted = models::make_model("mbv2-tiny", 6, 40);
  NetBoosterConfig c = micro_config();
  c.giant = tc;
  NetBooster nb(boosted, c);
  nb.train_giant(train, test);
  const float giant_train_acc =
      nb.result().giant_history.epochs.back().train_acc;

  EXPECT_GE(giant_train_acc, vanilla_train_acc - 0.10f)
      << "the giant should fit at least about as well as the raw TNN";
}

}  // namespace
}  // namespace nb::core
