// Tests for the trainer's extension knobs: optimizer selection, mixup /
// CutMix integration, EMA evaluation, and gradient clipping. These run on a
// toy dataset so each training call takes well under a second.
#include <gtest/gtest.h>

#include <cmath>

#include "models/registry.h"
#include "test_util.h"
#include "train/metrics.h"
#include "train/trainer.h"

namespace nb::train {
namespace {

using ::nb::testing::ToyDataset;

TrainConfig base_config() {
  TrainConfig c;
  c.epochs = 3;
  c.batch_size = 8;
  c.lr = 0.05f;
  c.seed = 21;
  c.augment = false;
  return c;
}

TEST(TrainerExtensions, AdamOptimizerLearnsToy) {
  ToyDataset train(16, 3, 12, 91);
  ToyDataset test(8, 3, 12, 92);
  TrainConfig c = base_config();
  c.optimizer = optim::OptimizerKind::adam;
  c.lr = 0.003f;
  auto model = models::make_model("mbv2-tiny", 3, 15);
  const TrainHistory h = train_classifier(*model, train, test, c);
  // The toy task separates easily: Adam must clear chance by a wide margin.
  EXPECT_GT(h.final_test_acc, 0.5f);
}

TEST(TrainerExtensions, RmsPropOptimizerLearnsToy) {
  ToyDataset train(16, 3, 12, 93);
  ToyDataset test(8, 3, 12, 94);
  TrainConfig c = base_config();
  c.optimizer = optim::OptimizerKind::rmsprop;
  c.lr = 0.002f;
  auto model = models::make_model("mbv2-tiny", 3, 15);
  const TrainHistory h = train_classifier(*model, train, test, c);
  EXPECT_GT(h.final_test_acc, 0.5f);
}

TEST(TrainerExtensions, MixupTrainingRunsAndLearns) {
  ToyDataset train(16, 3, 12, 95);
  ToyDataset test(8, 3, 12, 96);
  TrainConfig c = base_config();
  c.mixup_alpha = 0.4f;
  auto model = models::make_model("mbv2-tiny", 3, 15);
  const TrainHistory h = train_classifier(*model, train, test, c);
  EXPECT_GT(h.final_test_acc, 0.4f);
  // Mixed-label loss is still a valid CE mixture: positive and finite.
  for (const EpochStats& e : h.epochs) {
    EXPECT_GT(e.train_loss, 0.0f);
    EXPECT_TRUE(std::isfinite(e.train_loss));
  }
}

TEST(TrainerExtensions, CutmixAndMixupCanCoexist) {
  ToyDataset train(16, 3, 12, 97);
  ToyDataset test(8, 3, 12, 98);
  TrainConfig c = base_config();
  c.mixup_alpha = 0.4f;
  c.cutmix_alpha = 0.6f;
  auto model = models::make_model("mbv2-tiny", 3, 15);
  EXPECT_NO_THROW(train_classifier(*model, train, test, c));
}

TEST(TrainerExtensions, MixingIgnoredUnderCustomLoss) {
  // A custom loss_fn leaves no slot for partner labels; the trainer must
  // fall back to unmixed batches rather than silently mismatching.
  ToyDataset train(16, 3, 12, 99);
  ToyDataset test(8, 3, 12, 100);
  TrainConfig c = base_config();
  c.mixup_alpha = 0.8f;
  auto model = models::make_model("mbv2-tiny", 3, 15);
  int64_t calls = 0;
  const LossFn plain_ce = [&calls](const Tensor& logits,
                                   const std::vector<int64_t>& labels,
                                   const Tensor&) {
    ++calls;
    return nn::softmax_cross_entropy(logits, labels);
  };
  EXPECT_NO_THROW(train_classifier(*model, train, test, c, plain_ce));
  EXPECT_GT(calls, 0);
}

TEST(TrainerExtensions, EmaEvaluationSmoothsWeights) {
  ToyDataset train(16, 3, 12, 101);
  ToyDataset test(8, 3, 12, 102);
  TrainConfig c = base_config();
  c.ema_decay = 0.9f;
  auto model = models::make_model("mbv2-tiny", 3, 15);
  const TrainHistory h = train_classifier(*model, train, test, c);
  EXPECT_GT(h.final_test_acc, 0.4f);
  // After training the exported weights are the EMA shadow; re-evaluating
  // the returned model must reproduce the final reported accuracy.
  const float again = evaluate(*model, test);
  EXPECT_NEAR(again, h.final_test_acc, 1e-6f);
}

TEST(TrainerExtensions, GradClippingKeepsTrainingFinite) {
  ToyDataset train(16, 3, 12, 103);
  ToyDataset test(8, 3, 12, 104);
  TrainConfig c = base_config();
  c.lr = 0.5f;  // hot enough to wobble without clipping
  c.clip_grad_norm = 1.0f;
  auto model = models::make_model("mbv2-tiny", 3, 15);
  const TrainHistory h = train_classifier(*model, train, test, c);
  for (const EpochStats& e : h.epochs) {
    EXPECT_TRUE(std::isfinite(e.train_loss));
  }
}

TEST(TrainerExtensions, EvalEveryZeroEvaluatesOnlyLastEpoch) {
  ToyDataset train(16, 3, 12, 105);
  ToyDataset test(8, 3, 12, 106);
  TrainConfig c = base_config();
  c.epochs = 4;
  c.eval_every = 0;
  auto model = models::make_model("mbv2-tiny", 3, 15);
  const TrainHistory h = train_classifier(*model, train, test, c);
  ASSERT_EQ(h.epochs.size(), 4u);
  for (size_t e = 0; e + 1 < h.epochs.size(); ++e) {
    EXPECT_TRUE(std::isnan(h.epochs[e].test_acc));
  }
  EXPECT_FALSE(std::isnan(h.epochs.back().test_acc));
}

}  // namespace
}  // namespace nb::train
