// Tests for the PLT ramp-shape extension (linear is the paper's schedule;
// cosine/step feed the schedule ablation bench) and the abrupt-removal mode.
#include <gtest/gtest.h>

#include <memory>

#include "core/plt.h"

namespace nb::core {
namespace {

std::vector<std::shared_ptr<nn::PltActivation>> make_acts(int n) {
  std::vector<std::shared_ptr<nn::PltActivation>> acts;
  for (int i = 0; i < n; ++i) {
    acts.push_back(std::make_shared<nn::PltActivation>(nn::ActKind::relu));
  }
  return acts;
}

std::vector<nn::PltActivation*> raw(
    const std::vector<std::shared_ptr<nn::PltActivation>>& acts) {
  std::vector<nn::PltActivation*> out;
  for (const auto& a : acts) out.push_back(a.get());
  return out;
}

class RampShapeEndpoints : public ::testing::TestWithParam<RampShape> {};

TEST_P(RampShapeEndpoints, ZeroAtStartOneAtEnd) {
  const RampShape shape = GetParam();
  EXPECT_FLOAT_EQ(ramp_alpha(shape, 0.0f), 0.0f);
  EXPECT_FLOAT_EQ(ramp_alpha(shape, 1.0f), 1.0f);
  EXPECT_FLOAT_EQ(ramp_alpha(shape, 1.5f), 1.0f);   // clamped
  EXPECT_FLOAT_EQ(ramp_alpha(shape, -0.5f), 0.0f);  // clamped
}

TEST_P(RampShapeEndpoints, MonotoneNonDecreasing) {
  const RampShape shape = GetParam();
  float prev = -1.0f;
  for (int i = 0; i <= 100; ++i) {
    const float a = ramp_alpha(shape, static_cast<float>(i) / 100.0f);
    EXPECT_GE(a, prev - 1e-6f);
    EXPECT_GE(a, 0.0f);
    EXPECT_LE(a, 1.0f);
    prev = a;
  }
}

INSTANTIATE_TEST_SUITE_P(AllShapes, RampShapeEndpoints,
                         ::testing::Values(RampShape::linear,
                                           RampShape::cosine,
                                           RampShape::step));

TEST(RampShapes, LinearIsIdentity) {
  for (float t : {0.1f, 0.25f, 0.6f, 0.95f}) {
    EXPECT_FLOAT_EQ(ramp_alpha(RampShape::linear, t), t);
  }
}

TEST(RampShapes, CosineEasesInAndOut) {
  // Slower than linear early, faster in the middle, value 1/2 at midpoint.
  EXPECT_LT(ramp_alpha(RampShape::cosine, 0.1f), 0.1f);
  EXPECT_NEAR(ramp_alpha(RampShape::cosine, 0.5f), 0.5f, 1e-6f);
  EXPECT_GT(ramp_alpha(RampShape::cosine, 0.9f), 0.9f);
}

TEST(RampShapes, StepHasExactlyKLevels) {
  const int64_t k = 4;
  std::set<float> levels;
  for (int i = 0; i <= 1000; ++i) {
    levels.insert(ramp_alpha(RampShape::step, i / 1000.0f, k));
  }
  // 0, 1/4, 2/4, 3/4, 1.
  EXPECT_EQ(levels.size(), static_cast<size_t>(k + 1));
  EXPECT_THROW(ramp_alpha(RampShape::step, 0.5f, 0), std::runtime_error);
}

TEST(RampShapes, StringRoundTrip) {
  for (RampShape s :
       {RampShape::linear, RampShape::cosine, RampShape::step}) {
    EXPECT_EQ(ramp_shape_from_string(to_string(s)), s);
  }
  EXPECT_THROW(ramp_shape_from_string("sawtooth"), std::runtime_error);
}

TEST(SchedulerShapes, CosineSchedulerTracksShape) {
  auto acts = make_acts(2);
  PltScheduler sched(raw(acts), 100, RampShape::cosine);
  sched.on_step(50);
  EXPECT_NEAR(sched.alpha(), 0.5f, 1e-5f);
  sched.on_step(10);
  EXPECT_NEAR(sched.alpha(), ramp_alpha(RampShape::cosine, 0.1f), 1e-5f);
  for (const auto& a : acts) EXPECT_FLOAT_EQ(a->alpha(), sched.alpha());
}

TEST(SchedulerShapes, AbruptRemovalStartsLinearized) {
  // ramp_steps = 0 reproduces NetAug-style abrupt removal: the activations
  // are identities from the first step on.
  auto acts = make_acts(3);
  PltScheduler sched(raw(acts), 0);
  EXPECT_TRUE(sched.done());
  for (const auto& a : acts) {
    EXPECT_TRUE(a->is_linearized());
  }
  sched.on_step(1);
  EXPECT_FLOAT_EQ(sched.alpha(), 1.0f);
}

TEST(SchedulerShapes, StepShapeEndsExactlyAtOne) {
  auto acts = make_acts(1);
  PltScheduler sched(raw(acts), 64, RampShape::step);
  for (int64_t s = 1; s <= 64; ++s) sched.on_step(s);
  EXPECT_FLOAT_EQ(sched.alpha(), 1.0f);
  EXPECT_TRUE(acts[0]->is_linearized());
}

}  // namespace
}  // namespace nb::core
