#include <gtest/gtest.h>

#include <cmath>

#include "nn/losses.h"
#include "tensor/rng.h"
#include "tensor/tensor_ops.h"

namespace nb::nn {
namespace {

// Numerically check dLoss/dLogits with central differences.
template <typename LossCall>
void check_loss_grad(const Tensor& logits, LossCall&& call, float eps = 1e-3f,
                     float tol = 1e-3f) {
  const LossResult base = call(logits);
  Tensor probe = logits.clone();
  for (int64_t i = 0; i < logits.numel(); ++i) {
    const float orig = probe.data()[i];
    probe.data()[i] = orig + eps;
    const float jp = call(probe).loss;
    probe.data()[i] = orig - eps;
    const float jm = call(probe).loss;
    probe.data()[i] = orig;
    const float expected = (jp - jm) / (2.0f * eps);
    EXPECT_NEAR(base.grad.data()[i], expected, tol) << "flat index " << i;
  }
}

TEST(CrossEntropy, MatchesManualValue) {
  // Two samples, two classes, known logits.
  Tensor logits = Tensor::from({2, 2}, {2.0f, 0.0f, 0.0f, 1.0f});
  const std::vector<int64_t> labels{0, 1};
  const LossResult r = softmax_cross_entropy(logits, labels);
  const float l0 = -std::log(std::exp(2.0f) / (std::exp(2.0f) + 1.0f));
  const float l1 = -std::log(std::exp(1.0f) / (std::exp(1.0f) + 1.0f));
  EXPECT_NEAR(r.loss, (l0 + l1) / 2.0f, 1e-5f);
}

TEST(CrossEntropy, GradIsFiniteDifferenceCorrect) {
  Rng rng(90);
  Tensor logits({4, 6});
  fill_normal(logits, rng, 0.0f, 2.0f);
  const std::vector<int64_t> labels{0, 3, 5, 2};
  check_loss_grad(logits, [&](const Tensor& z) {
    return softmax_cross_entropy(z, labels);
  });
}

TEST(CrossEntropy, LabelSmoothingGrad) {
  Rng rng(91);
  Tensor logits({3, 5});
  fill_normal(logits, rng, 0.0f, 1.5f);
  const std::vector<int64_t> labels{1, 4, 0};
  check_loss_grad(logits, [&](const Tensor& z) {
    return softmax_cross_entropy(z, labels, 0.1f);
  });
}

TEST(CrossEntropy, SmoothingRaisesLossAtConfidentCorrect) {
  Tensor logits = Tensor::from({1, 3}, {10.0f, 0.0f, 0.0f});
  const std::vector<int64_t> labels{0};
  const float plain = softmax_cross_entropy(logits, labels, 0.0f).loss;
  const float smooth = softmax_cross_entropy(logits, labels, 0.2f).loss;
  EXPECT_GT(smooth, plain);
}

TEST(CrossEntropy, RejectsBadLabels) {
  Tensor logits({1, 3});
  EXPECT_THROW(softmax_cross_entropy(logits, {7}), std::runtime_error);
}

TEST(SoftCrossEntropy, MatchesHardWhenOneHot) {
  Rng rng(92);
  Tensor logits({2, 4});
  fill_normal(logits, rng, 0.0f, 1.0f);
  const std::vector<int64_t> labels{2, 0};
  Tensor onehot({2, 4});
  onehot.at(0, 2) = 1.0f;
  onehot.at(1, 0) = 1.0f;
  const LossResult hard = softmax_cross_entropy(logits, labels);
  const LossResult soft = soft_cross_entropy(logits, onehot);
  EXPECT_NEAR(hard.loss, soft.loss, 1e-5f);
  EXPECT_LT(max_abs_diff(hard.grad, soft.grad), 1e-6f);
}

TEST(KdKl, ZeroWhenDistributionsMatch) {
  Rng rng(93);
  Tensor logits({3, 5});
  fill_normal(logits, rng, 0.0f, 1.0f);
  const LossResult r = kd_kl(logits, logits, 4.0f);
  EXPECT_NEAR(r.loss, 0.0f, 1e-5f);
  EXPECT_LT(r.grad.abs_max(), 1e-6f);
}

TEST(KdKl, GradIsFiniteDifferenceCorrect) {
  Rng rng(94);
  Tensor student({3, 4});
  Tensor teacher({3, 4});
  fill_normal(student, rng, 0.0f, 1.0f);
  fill_normal(teacher, rng, 0.0f, 1.0f);
  check_loss_grad(student, [&](const Tensor& z) {
    return kd_kl(z, teacher, 3.0f);
  });
}

TEST(KdKl, NonNegative) {
  Rng rng(95);
  for (int trial = 0; trial < 10; ++trial) {
    Tensor s({2, 6});
    Tensor t({2, 6});
    fill_normal(s, rng, 0.0f, 2.0f);
    fill_normal(t, rng, 0.0f, 2.0f);
    EXPECT_GE(kd_kl(s, t, 2.0f).loss, -1e-5f);
  }
}

TEST(KdKl, PullsStudentTowardTeacher) {
  Tensor student = Tensor::from({1, 2}, {0.0f, 0.0f});
  Tensor teacher = Tensor::from({1, 2}, {3.0f, -3.0f});
  const LossResult r = kd_kl(student, teacher, 1.0f);
  // Teacher prefers class 0, so the gradient must push logit 0 up
  // (negative gradient) and logit 1 down.
  EXPECT_LT(r.grad.at(0, 0), 0.0f);
  EXPECT_GT(r.grad.at(0, 1), 0.0f);
}

TEST(Mse, ValueAndGrad) {
  Tensor pred = Tensor::from({2}, {1.0f, 3.0f});
  Tensor target = Tensor::from({2}, {0.0f, 0.0f});
  const LossResult r = mse(pred, target);
  EXPECT_NEAR(r.loss, (1.0f + 9.0f) / 2.0f, 1e-6f);
  EXPECT_NEAR(r.grad.at(0), 2.0f * 1.0f / 2.0f, 1e-6f);
  EXPECT_NEAR(r.grad.at(1), 2.0f * 3.0f / 2.0f, 1e-6f);
}

TEST(SigmoidBce, GradIsFiniteDifferenceCorrect) {
  Rng rng(96);
  Tensor logits({8});
  fill_normal(logits, rng, 0.0f, 2.0f);
  Tensor targets({8});
  for (int64_t i = 0; i < 8; ++i) targets.at(i) = i % 2 ? 1.0f : 0.0f;
  check_loss_grad(logits, [&](const Tensor& z) {
    return sigmoid_bce(z, targets);
  });
}

TEST(SigmoidBce, StableAtExtremeLogits) {
  Tensor logits = Tensor::from({2}, {50.0f, -50.0f});
  Tensor targets = Tensor::from({2}, {1.0f, 0.0f});
  const LossResult r = sigmoid_bce(logits, targets);
  EXPECT_TRUE(std::isfinite(r.loss));
  EXPECT_NEAR(r.loss, 0.0f, 1e-5f);
}

TEST(Accuracy, CountsCorrectly) {
  Tensor logits = Tensor::from({3, 2}, {2.0f, 1.0f, 0.0f, 1.0f, 5.0f, -1.0f});
  EXPECT_NEAR(accuracy(logits, {0, 1, 0}), 1.0f, 1e-6f);
  EXPECT_NEAR(accuracy(logits, {1, 1, 0}), 2.0f / 3.0f, 1e-6f);
}

}  // namespace
}  // namespace nb::nn
