// Tests for batch-level strong augmentation (mixup / CutMix / random erasing)
// and the mixed two-label cross entropy.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "data/mix_augment.h"
#include "nn/losses.h"
#include "tensor/rng.h"
#include "tensor/tensor_ops.h"

namespace nb::data {
namespace {

Tensor random_batch(int64_t b, int64_t c, int64_t h, int64_t w, uint64_t seed) {
  Tensor t({b, c, h, w});
  Rng rng(seed, 5);
  fill_uniform(t, rng, -1.0f, 1.0f);
  return t;
}

TEST(SampleBeta, StaysInUnitIntervalAndCentered) {
  Rng rng(42, 7);
  double sum = 0.0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    const float v = sample_beta(0.8f, rng);
    ASSERT_GE(v, 0.0f);
    ASSERT_LE(v, 1.0f);
    sum += v;
  }
  // Beta(a, a) has mean 1/2 for any a.
  EXPECT_NEAR(sum / n, 0.5, 0.03);
}

TEST(SampleBeta, LargeAlphaConcentratesAtHalf) {
  Rng rng(43, 7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_NEAR(sample_beta(200.0f, rng), 0.5f, 0.15f);
  }
}

TEST(SampleBeta, InvalidAlphaThrows) {
  Rng rng(1, 1);
  EXPECT_THROW(sample_beta(0.0f, rng), std::runtime_error);
}

TEST(Mixup, BlendsImagesWithReportedLambda) {
  Tensor images = random_batch(4, 3, 6, 6, 11);
  const Tensor original = images.clone();
  const std::vector<int64_t> labels = {0, 1, 2, 3};
  Rng rng(7, 3);
  const MixResult mix = mixup_batch(images, labels, 1.0f, rng);
  ASSERT_EQ(mix.labels_b.size(), labels.size());

  // Recover each image's partner from the returned labels (labels are
  // unique here) and verify the blend. lam*x_i + (1-lam)*x_j elementwise.
  for (int64_t i = 0; i < 4; ++i) {
    const int64_t j = mix.labels_b[static_cast<size_t>(i)];
    for (int64_t t = 0; t < 3 * 6 * 6; ++t) {
      const float want = mix.lam * original.data()[i * 108 + t] +
                         (1.0f - mix.lam) * original.data()[j * 108 + t];
      ASSERT_NEAR(images.data()[i * 108 + t], want, 1e-5f);
    }
  }
}

TEST(Mixup, PartnerLabelsAreAPermutation) {
  Tensor images = random_batch(8, 1, 4, 4, 13);
  const std::vector<int64_t> labels = {0, 1, 2, 3, 4, 5, 6, 7};
  Rng rng(17, 3);
  const MixResult mix = mixup_batch(images, labels, 0.5f, rng);
  std::vector<int64_t> sorted = mix.labels_b;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, labels);
}

TEST(Mixup, DisabledAlphaIsIdentity) {
  Tensor images = random_batch(4, 1, 4, 4, 19);
  const Tensor original = images.clone();
  const std::vector<int64_t> labels = {3, 1, 0, 2};
  Rng rng(23, 3);
  const MixResult mix = mixup_batch(images, labels, 0.0f, rng);
  EXPECT_FLOAT_EQ(mix.lam, 1.0f);
  EXPECT_EQ(mix.labels_b, labels);
  EXPECT_FLOAT_EQ(max_abs_diff(images, original), 0.0f);
}

TEST(Mixup, SingleImageBatchIsIdentity) {
  Tensor images = random_batch(1, 1, 4, 4, 29);
  Rng rng(3, 3);
  const MixResult mix = mixup_batch(images, {0}, 1.0f, rng);
  EXPECT_FLOAT_EQ(mix.lam, 1.0f);
}

TEST(Cutmix, LambdaEqualsSurvivingAreaFraction) {
  // Fill image i with constant value i; after CutMix the mean of image i is
  // lam*i + (1-lam)*partner exactly when lam is the surviving fraction.
  const int64_t b = 4, c = 2, h = 8, w = 8;
  Tensor images({b, c, h, w});
  for (int64_t i = 0; i < b; ++i) {
    for (int64_t t = 0; t < c * h * w; ++t) {
      images.data()[i * c * h * w + t] = static_cast<float>(i);
    }
  }
  const std::vector<int64_t> labels = {0, 1, 2, 3};
  Rng rng(31, 3);
  const MixResult mix = cutmix_batch(images, labels, 1.0f, rng);
  for (int64_t i = 0; i < b; ++i) {
    const int64_t j = mix.labels_b[static_cast<size_t>(i)];
    double mean = 0.0;
    for (int64_t t = 0; t < c * h * w; ++t) {
      mean += images.data()[i * c * h * w + t];
    }
    mean /= static_cast<double>(c * h * w);
    const double want = mix.lam * i + (1.0 - mix.lam) * j;
    EXPECT_NEAR(mean, want, 1e-4);
  }
}

TEST(Cutmix, PixelsOutsideBoxUntouched) {
  Tensor images = random_batch(2, 1, 8, 8, 37);
  const Tensor original = images.clone();
  const std::vector<int64_t> labels = {0, 1};
  Rng rng(41, 3);
  const MixResult mix = cutmix_batch(images, labels, 1.0f, rng);
  // Count changed pixels; they must form exactly the pasted fraction.
  int64_t changed = 0;
  for (int64_t i = 0; i < images.numel(); ++i) {
    if (images.data()[i] != original.data()[i]) ++changed;
  }
  const float pasted_fraction = 1.0f - mix.lam;
  // Identical-source pixels may coincide, so changed <= pasted area.
  EXPECT_LE(static_cast<float>(changed),
            pasted_fraction * static_cast<float>(images.numel()) + 1e-3f);
}

TEST(RandomErase, ZeroProbabilityIsIdentity) {
  Tensor img = random_batch(1, 3, 8, 8, 43).reshape({3, 8, 8});
  const Tensor original = img.clone();
  Rng rng(47, 3);
  random_erase_(img, rng, /*p=*/0.0f);
  EXPECT_FLOAT_EQ(max_abs_diff(img, original), 0.0f);
}

TEST(RandomErase, AlwaysEraseChangesBoundedRegion) {
  Tensor img = random_batch(1, 3, 16, 16, 53).reshape({3, 16, 16});
  const Tensor original = img.clone();
  Rng rng(59, 3);
  random_erase_(img, rng, /*p=*/1.0f, /*min_area=*/0.05f, /*max_area=*/0.2f);
  int64_t changed = 0;
  for (int64_t i = 0; i < img.numel(); ++i) {
    if (img.data()[i] != original.data()[i]) ++changed;
  }
  EXPECT_GT(changed, 0);
  // Max erase: 20% of pixels (x3 channels accounted in numel) plus rounding.
  EXPECT_LE(changed, static_cast<int64_t>(0.35 * 3 * 16 * 16));
}

TEST(MixedCrossEntropy, LamOneEqualsPlainCe) {
  Tensor logits = Tensor::from({2, 3}, {1.0f, 2.0f, 0.5f, -1.0f, 0.0f, 1.5f});
  const std::vector<int64_t> a = {1, 2};
  const std::vector<int64_t> b = {0, 0};
  const nn::LossResult mixed = mixed_cross_entropy(logits, a, b, 1.0f);
  const nn::LossResult plain = nn::softmax_cross_entropy(logits, a);
  EXPECT_FLOAT_EQ(mixed.loss, plain.loss);
  EXPECT_FLOAT_EQ(max_abs_diff(mixed.grad, plain.grad), 0.0f);
}

TEST(MixedCrossEntropy, ConvexCombinationOfLossesAndGrads) {
  Tensor logits = Tensor::from({2, 3}, {1.0f, 2.0f, 0.5f, -1.0f, 0.0f, 1.5f});
  const std::vector<int64_t> a = {1, 2};
  const std::vector<int64_t> b = {0, 1};
  const float lam = 0.3f;
  const nn::LossResult mixed = mixed_cross_entropy(logits, a, b, lam);
  const nn::LossResult la = nn::softmax_cross_entropy(logits, a);
  const nn::LossResult lb = nn::softmax_cross_entropy(logits, b);
  EXPECT_NEAR(mixed.loss, lam * la.loss + (1 - lam) * lb.loss, 1e-6f);
  for (int64_t i = 0; i < mixed.grad.numel(); ++i) {
    EXPECT_NEAR(mixed.grad.data()[i],
                lam * la.grad.data()[i] + (1 - lam) * lb.grad.data()[i],
                1e-6f);
  }
}

TEST(MixedCrossEntropy, MismatchedLabelListsThrow) {
  Tensor logits = Tensor::from({1, 2}, {0.0f, 1.0f});
  EXPECT_THROW(mixed_cross_entropy(logits, {0}, {0, 1}, 0.5f),
               std::runtime_error);
}

TEST(Determinism, SameSeedSameMix) {
  const std::vector<int64_t> labels = {0, 1, 2, 3, 4, 5};
  Tensor a = random_batch(6, 2, 5, 5, 61);
  Tensor b = a.clone();
  Rng r1(71, 3), r2(71, 3);
  const MixResult ma = mixup_batch(a, labels, 0.7f, r1);
  const MixResult mb = mixup_batch(b, labels, 0.7f, r2);
  EXPECT_FLOAT_EQ(ma.lam, mb.lam);
  EXPECT_EQ(ma.labels_b, mb.labels_b);
  EXPECT_FLOAT_EQ(max_abs_diff(a, b), 0.0f);
}

}  // namespace
}  // namespace nb::data
