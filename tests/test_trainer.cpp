#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "data/dataloader.h"
#include "models/registry.h"
#include "test_util.h"
#include "train/metrics.h"
#include "train/trainer.h"

namespace nb::train {
namespace {

using ::nb::testing::ToyDataset;

TrainConfig fast_config() {
  TrainConfig c;
  c.epochs = 4;
  c.batch_size = 16;
  c.lr = 0.05f;
  c.weight_decay = 1e-4f;
  c.augment = false;
  return c;
}

TEST(Trainer, LearnsToyTask) {
  ToyDataset train(16, 4, 12, 1);
  ToyDataset test(8, 4, 12, 2);
  auto model = models::make_model("mbv2-tiny", 4);
  const float before = evaluate(*model, test);
  const TrainHistory h = train_classifier(*model, train, test, fast_config());
  EXPECT_GT(h.final_test_acc, before + 0.2f)
      << "training should clearly beat random init";
  EXPECT_GT(h.final_test_acc, 0.5f);
}

TEST(Trainer, LossDecreases) {
  ToyDataset train(16, 4, 12, 3);
  ToyDataset test(4, 4, 12, 4);
  auto model = models::make_model("mbv2-tiny", 4);
  const TrainHistory h = train_classifier(*model, train, test, fast_config());
  ASSERT_GE(h.epochs.size(), 2u);
  EXPECT_LT(h.epochs.back().train_loss, h.epochs.front().train_loss);
}

TEST(Trainer, HistoryBookkeeping) {
  ToyDataset train(8, 2, 10, 5);
  ToyDataset test(4, 2, 10, 6);
  auto model = models::make_model("mbv2-tiny", 2);
  TrainConfig c = fast_config();
  c.epochs = 3;
  const TrainHistory h = train_classifier(*model, train, test, c);
  EXPECT_EQ(h.epochs.size(), 3u);
  for (size_t i = 0; i < h.epochs.size(); ++i) {
    EXPECT_EQ(h.epochs[i].epoch, static_cast<int64_t>(i));
  }
  EXPECT_GE(h.best_test_acc, h.final_test_acc - 1e-6f);
}

TEST(Trainer, IterationHookSeesEveryStep) {
  ToyDataset train(8, 2, 10, 7);
  ToyDataset test(4, 2, 10, 8);
  auto model = models::make_model("mbv2-tiny", 2);
  TrainConfig c = fast_config();
  c.epochs = 2;
  c.batch_size = 8;
  int64_t calls = 0;
  int64_t last_step = 0;
  int64_t reported_total = 0;
  (void)train_classifier(*model, train, test, c, nullptr,
                         [&](int64_t step, int64_t total) {
                           ++calls;
                           last_step = step;
                           reported_total = total;
                         });
  const int64_t steps_per_epoch = (16 + 7) / 8;
  EXPECT_EQ(calls, steps_per_epoch * 2);
  EXPECT_EQ(last_step, calls);
  EXPECT_EQ(reported_total, steps_per_epoch * 2);
}

TEST(Trainer, CustomLossIsUsed) {
  ToyDataset train(8, 2, 10, 9);
  ToyDataset test(4, 2, 10, 10);
  auto model = models::make_model("mbv2-tiny", 2);
  TrainConfig c = fast_config();
  c.epochs = 1;
  int64_t loss_calls = 0;
  LossFn fn = [&loss_calls](const Tensor& logits,
                            const std::vector<int64_t>& labels,
                            const Tensor&) {
    ++loss_calls;
    return nn::softmax_cross_entropy(logits, labels);
  };
  (void)train_classifier(*model, train, test, c, fn);
  EXPECT_GT(loss_calls, 0);
}

TEST(Trainer, DeterministicGivenSeed) {
  ToyDataset train(8, 2, 10, 11);
  ToyDataset test(4, 2, 10, 12);
  auto m1 = models::make_model("mbv2-tiny", 2, 9);
  auto m2 = models::make_model("mbv2-tiny", 2, 9);
  TrainConfig c = fast_config();
  c.epochs = 2;
  const TrainHistory h1 = train_classifier(*m1, train, test, c);
  const TrainHistory h2 = train_classifier(*m2, train, test, c);
  EXPECT_FLOAT_EQ(h1.final_test_acc, h2.final_test_acc);
  EXPECT_FLOAT_EQ(h1.epochs.back().train_loss, h2.epochs.back().train_loss);
}

TEST(Metrics, EvaluateMatchesManual) {
  ToyDataset test(8, 2, 10, 13);
  auto model = models::make_model("mbv2-tiny", 2);
  model->set_training(false);
  // Manual: stream the set through a loader (eval never materializes the
  // whole dataset as one tensor — see Metrics.EvalMemoryIsPerBatch) and
  // count argmax hits.
  data::DataLoader loader(test, test.size(), /*shuffle=*/false,
                          /*augment=*/false);
  loader.start_epoch();
  data::Batch batch;
  ASSERT_TRUE(loader.next(batch));
  const Tensor logits = model->forward(batch.images);
  const float manual = nn::accuracy(logits, batch.labels);
  EXPECT_NEAR(evaluate(*model, test), manual, 1e-6f);
}

// Regression for the old data::full_batch eval path, which materialized the
// ENTIRE dataset as one [N, C, H, W] tensor. Eval must stream: between two
// next() calls the loader may touch at most batch_size samples, and the
// result must not depend on the batch size.
TEST(Metrics, EvalMemoryIsPerBatch) {
  class CountingDataset : public data::ClassificationDataset {
   public:
    explicit CountingDataset(const data::ClassificationDataset& base)
        : base_(base) {}
    int64_t size() const override { return base_.size(); }
    int64_t num_classes() const override { return base_.num_classes(); }
    int64_t resolution() const override { return base_.resolution(); }
    Tensor image(int64_t idx) const override {
      ++outstanding_;
      max_outstanding_ = std::max(max_outstanding_, outstanding_);
      return base_.image(idx);
    }
    int64_t label(int64_t idx) const override { return base_.label(idx); }
    std::string name() const override { return base_.name(); }
    void new_window() const { outstanding_ = 0; }
    int64_t max_outstanding() const { return max_outstanding_; }

   private:
    const data::ClassificationDataset& base_;
    mutable int64_t outstanding_ = 0;
    mutable int64_t max_outstanding_ = 0;
  };

  ToyDataset base(24, 2, 10, 13);
  auto model = models::make_model("mbv2-tiny", 2);
  model->set_training(false);

  // Window the image() calls per next(): a full-dataset materialization
  // would request all 24 images inside one window.
  CountingDataset spy(base);
  data::DataLoader loader(spy, 7, /*shuffle=*/false, /*augment=*/false);
  loader.start_epoch();
  data::Batch batch;
  int64_t total = 0;
  while (true) {
    spy.new_window();
    if (!loader.next(batch)) break;
    total += batch.images.size(0);
  }
  EXPECT_EQ(total, base.size());
  EXPECT_LE(spy.max_outstanding(), 7) << "loader materialized more than one "
                                         "batch of images at once";

  // And the streamed metrics are batch-size invariant.
  const float acc_full = evaluate(*model, base, base.size());
  const float acc_7 = evaluate(*model, base, 7);
  const float loss_full = evaluate_loss(*model, base, base.size());
  const float loss_7 = evaluate_loss(*model, base, 7);
  EXPECT_EQ(acc_full, acc_7);
  EXPECT_NEAR(loss_full, loss_7, 1e-5f);
}

TEST(Metrics, EvalLossIsFinite) {
  ToyDataset test(4, 2, 10, 14);
  auto model = models::make_model("mbv2-tiny", 2);
  const float loss = evaluate_loss(*model, test);
  EXPECT_TRUE(std::isfinite(loss));
  EXPECT_GT(loss, 0.0f);
}

}  // namespace
}  // namespace nb::train
