#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "models/registry.h"
#include "nn/activations.h"
#include "nn/serialize.h"
#include "tensor/tensor_ops.h"

namespace nb::nn {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(StateDict, ContainsParamsAndBuffers) {
  auto model = models::make_model("mbv2-tiny", 8);
  const auto sd = state_dict(*model);
  // Every BN contributes gamma/beta (params) + running stats (buffers).
  bool has_gamma = false, has_running = false, has_conv = false;
  for (const auto& [name, t] : sd) {
    (void)t;
    if (name.find("gamma") != std::string::npos) has_gamma = true;
    if (name.find("running_mean") != std::string::npos) has_running = true;
    if (name.find("conv.weight") != std::string::npos) has_conv = true;
  }
  EXPECT_TRUE(has_gamma);
  EXPECT_TRUE(has_running);
  EXPECT_TRUE(has_conv);
}

TEST(StateDict, LoadRestoresValues) {
  auto a = models::make_model("mbv2-tiny", 8, 1);
  auto b = models::make_model("mbv2-tiny", 8, 2);
  // Different seeds -> different weights.
  EXPECT_GT(max_abs_diff(a->parameters()[0]->value,
                         b->parameters()[0]->value),
            1e-5f);
  load_state_dict(*b, state_dict(*a));
  auto pa = a->parameters();
  auto pb = b->parameters();
  for (size_t i = 0; i < pa.size(); ++i) {
    EXPECT_LT(max_abs_diff(pa[i]->value, pb[i]->value), 1e-7f);
  }
}

TEST(StateDict, StrictLoadRejectsMissingEntry) {
  auto model = models::make_model("mbv2-tiny", 8);
  std::map<std::string, Tensor> empty;
  EXPECT_THROW(load_state_dict(*model, empty), std::runtime_error);
}

TEST(Checkpoint, FileRoundTrip) {
  const std::string path = temp_path("nb_ckpt_test.bin");
  auto a = models::make_model("mbv2-35", 12, 5);
  save_checkpoint(*a, path);

  auto b = models::make_model("mbv2-35", 12, 6);
  load_checkpoint(*b, path);

  // Outputs must match exactly after the round trip.
  a->set_training(false);
  b->set_training(false);
  Tensor x({1, 3, 24, 24});
  Rng rng(50);
  fill_normal(x, rng, 0.0f, 1.0f);
  EXPECT_LT(max_abs_diff(a->forward(x), b->forward(x)), 1e-6f);
  std::remove(path.c_str());
}

TEST(Checkpoint, RejectsCorruptMagic) {
  const std::string path = temp_path("nb_ckpt_bad.bin");
  {
    std::ofstream os(path, std::ios::binary);
    os << "NOT A CHECKPOINT";
  }
  auto model = models::make_model("mbv2-tiny", 8);
  EXPECT_THROW(load_checkpoint(*model, path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Checkpoint, RejectsMissingFile) {
  auto model = models::make_model("mbv2-tiny", 8);
  EXPECT_THROW(load_checkpoint(*model, "/nonexistent/dir/x.bin"),
               std::runtime_error);
}

TEST(Checkpoint, PreservesPltAlphaMidRamp) {
  // PLT alpha is a buffer, so an interrupted PLT run can resume exactly.
  PltActivation act(ActKind::relu6, 0.4f);
  const auto sd = state_dict(act);
  PltActivation restored(ActKind::relu6, 0.0f);
  load_state_dict(restored, sd);
  EXPECT_FLOAT_EQ(restored.alpha(), 0.4f);
}

}  // namespace
}  // namespace nb::nn
