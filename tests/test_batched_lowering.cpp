// Tests for the batched conv lowering (src/export/infer_plan.cpp): a
// micro-batch runs ONE packed GEMM per conv step (im2col columns of every
// image side by side, activations kept batch-interleaved between steps so
// the GEMM output is directly the next conv's input), and the result must
// be BITWISE identical to running each image through a batch-1 plan — the
// invariant Engine micro-batching and Session batching rest on. Also pins
// the arena planner's batched accounting: every region scales exactly
// x batch (cols panel included, no staging region), peak-live covered by
// the arena, and one shared weight copy across batched sessions.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "export/flat_model.h"
#include "export/flat_synth.h"
#include "export/infer_plan.h"
#include "export/qmodel.h"
#include "runtime/compiled_model.h"
#include "runtime/session.h"
#include "tensor/rng.h"
#include "tensor/tensor_ops.h"
#include "tensor/threadpool.h"

namespace nb::exporter {
namespace {

FlatOp make_conv(Rng& rng, int64_t cin, int64_t cout, int64_t k,
                 int64_t stride, int64_t groups, FlatAct act, bool bias) {
  const float act_scale = synth::pow2_act_scale(rng);
  return synth::make_conv(rng, cin, cout, k, stride, groups, act, bias,
                          act_scale);
}

/// Randomized flat graph over a 4-channel input: pointwise / depthwise /
/// grouped convs and residual save/add pairs, ending in GAP + linear —
/// every op kind the batched lowering has to scatter correctly.
FlatModel random_graph(uint64_t seed) {
  Rng rng(seed, 5);
  FlatModel m;
  m.set_input(0, 4);  // non-square inputs are chosen by the caller
  int64_t c = 4;
  const int64_t depth = 2 + rng.randint(4);
  for (int64_t d = 0; d < depth; ++d) {
    const int64_t pick = rng.randint(4);
    const auto act = static_cast<FlatAct>(rng.randint(3));
    const bool bias = rng.bernoulli(0.5f);
    if (pick == 0) {  // pointwise, channel change
      const int64_t cout = 4 + 4 * rng.randint(5);
      m.push(make_conv(rng, c, cout, 1, 1, 1, act, bias));
      c = cout;
    } else if (pick == 1) {  // depthwise
      m.push(make_conv(rng, c, c, 3, 1 + rng.randint(2), c, act, bias));
    } else if (pick == 2) {  // grouped
      m.push(make_conv(rng, c, c * 2, 3, 1, 2, act, bias));
      c *= 2;
    } else {  // residual pair around a depthwise
      m.push(synth::make_marker(OpKind::save));
      m.push(make_conv(rng, c, c, 3, 1, c, act, bias));
      m.push(synth::make_marker(OpKind::add_saved));
    }
  }
  m.push(synth::make_marker(OpKind::gap));
  m.push(synth::make_linear(rng, c, 7, synth::pow2_act_scale(rng)));
  return m;
}

Tensor random_input(Rng& rng, std::vector<int64_t> shape) {
  Tensor x(std::move(shape));
  fill_uniform(x, rng, -1.0f, 1.0f);
  return x;
}

/// Runs each image of `x` alone through a batch-1 plan (the sequential
/// oracle) and concatenates the logits rows.
Tensor run_sequential(const InferPlan& plan1, const Tensor& x) {
  const int64_t batch = x.size(0);
  const int64_t chw = x.numel() / batch;
  Tensor xi({1, x.size(1), x.size(2), x.size(3)});
  std::vector<Tensor> rows;
  for (int64_t i = 0; i < batch; ++i) {
    std::memcpy(xi.data(), x.data() + i * chw,
                static_cast<size_t>(chw) * sizeof(float));
    rows.push_back(plan1.run(xi));
  }
  const int64_t row = rows.front().numel();
  std::vector<int64_t> shape = {batch};
  for (int64_t d = 1; d < rows.front().dim(); ++d) {
    shape.push_back(rows.front().size(d));
  }
  Tensor out(shape);
  for (int64_t i = 0; i < batch; ++i) {
    std::memcpy(out.data() + i * row, rows[static_cast<size_t>(i)].data(),
                static_cast<size_t>(row) * sizeof(float));
  }
  return out;
}

bool bitwise_equal(const Tensor& a, const Tensor& b) {
  return a.same_shape(b) &&
         std::memcmp(a.data(), b.data(),
                     static_cast<size_t>(a.numel()) * sizeof(float)) == 0;
}

class PoolOverride {
 public:
  explicit PoolOverride(ThreadPool& pool) {
    ThreadPool::set_global_override(&pool);
  }
  ~PoolOverride() { ThreadPool::set_global_override(nullptr); }
};

// ---------------------------------------------------------------------------
// Batched-equivalence property test

TEST(BatchedLowering, BitwiseEqualsSequentialOnRandomGraphs) {
  // Odd, non-square spatial sizes and batches 2..8: the scatter epilogue
  // must land every (image, channel, pixel) exactly where the per-image
  // GEMM put it — bitwise, not approximately.
  const int64_t kH = 13, kW = 11;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    const FlatModel m = random_graph(seed);
    const auto panels = m.compiled_panels();
    const int64_t batch = 2 + static_cast<int64_t>(seed - 1) % 7;
    Rng rng(900 + seed, 1);
    const Tensor x = random_input(rng, {batch, 4, kH, kW});

    const InferPlan planb(m, panels, batch, 4, kH, kW);
    const InferPlan plan1(m, panels, 1, 4, kH, kW);
    const Tensor batched = planb.run(x);
    const Tensor sequential = run_sequential(plan1, x);
    EXPECT_TRUE(bitwise_equal(batched, sequential))
        << "seed=" << seed << " batch=" << batch;

    // And the batched result still agrees with the reference interpreter
    // (pow2 activation scales make the products exact).
    EXPECT_LT(max_abs_diff(batched, m.forward(x, Backend::reference)), 1e-5f)
        << "seed=" << seed;
  }
}

TEST(BatchedLowering, BitwiseEqualsSequentialAtBatchBoundaries) {
  // batch == 1 must keep the direct-store path; batch == 8 is the Engine's
  // default max_batch.
  const FlatModel m = random_graph(42);
  const auto panels = m.compiled_panels();
  Rng rng(17, 1);
  const Tensor x = random_input(rng, {8, 4, 9, 15});
  const InferPlan plan8(m, panels, 8, 4, 9, 15);
  const InferPlan plan1(m, panels, 1, 4, 9, 15);
  EXPECT_TRUE(bitwise_equal(plan8.run(x), run_sequential(plan1, x)));
}

TEST(BatchedLowering, ThreadCountInvariantAtBatchAboveOne) {
  ThreadPool one(0);
  ThreadPool four(3);
  const FlatModel m = random_graph(7);
  Rng rng(23, 1);
  const Tensor x = random_input(rng, {6, 4, 13, 11});
  const InferPlan plan(m, m.compiled_panels(), 6, 4, 13, 11);
  Tensor y1, y4;
  {
    PoolOverride po(one);
    y1 = plan.run(x);
  }
  {
    PoolOverride po(four);
    y4 = plan.run(x);
  }
  EXPECT_TRUE(bitwise_equal(y1, y4));
}

// ---------------------------------------------------------------------------
// Arena-planner batched accounting

TEST(BatchedLowering, ArenaScalesAsDocumentedWithBatch) {
  const FlatModel m = random_graph(3);
  const auto panels = m.compiled_panels();
  const InferPlan plan1(m, panels, 1, 4, 13, 11);
  const PlanStats& s1 = plan1.stats();
  EXPECT_GT(s1.cols_floats, 0);

  for (const int64_t b : {2, 4, 8}) {
    const InferPlan planb(m, panels, b, 4, 13, 11);
    const PlanStats& sb = planb.stats();
    // Every region holds the whole micro-batch: ping/pong/save slots and
    // the side-by-side cols panel all scale exactly x batch, and because
    // the batched GEMM writes the next activation's layout directly there
    // is NO staging region — the arena is exactly batch x the batch-1 plan.
    EXPECT_EQ(sb.cols_floats, b * s1.cols_floats) << "batch=" << b;
    EXPECT_EQ(sb.arena_floats, b * s1.arena_floats) << "batch=" << b;
    // Planner invariants hold at every batch: the arena covers peak-live
    // and still beats a no-reuse executor.
    EXPECT_GE(sb.arena_floats, sb.peak_live_floats) << "batch=" << b;
    EXPECT_LT(sb.arena_floats, sb.no_reuse_floats) << "batch=" << b;
  }
}

TEST(BatchedLowering, DepthwiseOnlyGraphPlansNoColsPanel) {
  Rng rng(31, 5);
  FlatModel m;
  m.set_input(0, 6);
  m.push(make_conv(rng, 6, 6, 3, 1, 6, FlatAct::relu6, true));
  m.push(make_conv(rng, 6, 6, 3, 1, 6, FlatAct::identity, false));
  const InferPlan plan(m, 4, 6, 13, 11);
  // Depthwise groups never lower through the GEMM, so no cols panel is
  // planned at any batch.
  EXPECT_EQ(plan.stats().cols_floats, 0);
}

TEST(BatchedLowering, BatchedSessionsShareOneWeightCopy) {
  const FlatModel m = random_graph(12);
  auto compiled = runtime::CompiledModel::compile(m);
  runtime::Session a(compiled);
  runtime::Session b(compiled);
  Rng rng(77, 1);
  (void)a.run(random_input(rng, {4, 4, 13, 11}));
  (void)a.run(random_input(rng, {1, 4, 13, 11}));
  (void)b.run(random_input(rng, {8, 4, 13, 11}));

  const auto ma = a.memory();
  const auto mb = b.memory();
  // Batched plans cost arena memory per session (two geometries cached in
  // a, one in b)...
  EXPECT_EQ(ma.cached_plans, 2u);
  EXPECT_EQ(mb.cached_plans, 1u);
  EXPECT_GT(ma.owned_arena_floats, 0);
  EXPECT_GT(mb.owned_arena_floats, 0);
  // ...but exactly ONE weight copy exists across all of them.
  EXPECT_EQ(ma.weight_panel_addr, mb.weight_panel_addr);
  EXPECT_EQ(ma.borrowed_weight_floats, mb.borrowed_weight_floats);
  EXPECT_EQ(ma.borrowed_weight_floats, compiled->weight_panel_floats());
}

// ---------------------------------------------------------------------------
// Int8 batched lowering: the one-GEMM-per-conv batching must hold on the
// integer path too — and there "bitwise" is not a property to defend but a
// consequence of exact int32 accumulation, so any mismatch is a scatter or
// quantization bug, never rounding.

TEST(BatchedLowering, Int8BitwiseEqualsSequentialOnRandomGraphs) {
  const int64_t kH = 13, kW = 11;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    const FlatModel m = random_graph(seed);
    const auto panels = m.compiled_panels();
    const QModel oracle(m);
    const int64_t batch = 1 + static_cast<int64_t>(seed - 1) % 8;
    Rng rng(1300 + seed, 1);
    const Tensor x = random_input(rng, {batch, 4, kH, kW});

    const InferPlan planb(m, panels, batch, 4, kH, kW, Backend::int8);
    const InferPlan plan1(m, panels, 1, 4, kH, kW, Backend::int8);
    const Tensor batched = planb.run(x);
    EXPECT_TRUE(bitwise_equal(batched, run_sequential(plan1, x)))
        << "seed=" << seed << " batch=" << batch;
    // The batched int8 result is also memcmp-equal to the QModel oracle:
    // batching and quantized lowering are proven exact at once.
    EXPECT_TRUE(bitwise_equal(batched, oracle.forward(x)))
        << "seed=" << seed << " batch=" << batch;
  }
}

TEST(BatchedLowering, Int8ThreadCountInvariantAtBatchAboveOne) {
  ThreadPool one(0);
  ThreadPool four(3);
  const FlatModel m = random_graph(7);
  Rng rng(23, 1);
  const Tensor x = random_input(rng, {6, 4, 13, 11});
  const InferPlan plan(m, m.compiled_panels(), 6, 4, 13, 11, Backend::int8);
  Tensor y1, y4;
  {
    PoolOverride po(one);
    y1 = plan.run(x);
  }
  {
    PoolOverride po(four);
    y4 = plan.run(x);
  }
  EXPECT_TRUE(bitwise_equal(y1, y4));
}

TEST(BatchedLowering, Int8ArenaScalesAsDocumentedWithBatch) {
  const FlatModel m = random_graph(3);
  const auto panels = m.compiled_panels();
  const InferPlan plan1(m, panels, 1, 4, 13, 11, Backend::int8);
  const PlanStats& s1 = plan1.stats();
  EXPECT_EQ(s1.cols_floats, 0);
  EXPECT_GT(s1.arena_int8_bytes, 0);
  for (const int64_t b : {2, 4, 8}) {
    const InferPlan planb(m, panels, b, 4, 13, 11, Backend::int8);
    const PlanStats& sb = planb.stats();
    // The byte arena (quantized input + u8 cols panel) scales exactly
    // x batch, same as every float region.
    EXPECT_EQ(sb.arena_int8_bytes, b * s1.arena_int8_bytes) << "batch=" << b;
    EXPECT_EQ(sb.arena_floats, b * s1.arena_floats) << "batch=" << b;
  }
}

TEST(BatchedLowering, Int8SessionBatchedRunMatchesQModel) {
  // End to end through the serving tier on the integer backend: compile
  // with Backend::int8, run a stacked batch, and demand memcmp equality
  // against both single-image sessions and the QModel oracle.
  const FlatModel m = random_graph(19);
  auto compiled = runtime::CompiledModel::compile(m, Backend::int8);
  EXPECT_EQ(compiled->backend(), Backend::int8);
  const QModel oracle(m);
  runtime::Session batched(compiled);
  runtime::Session single(compiled);
  Rng rng(41, 1);
  const Tensor x = random_input(rng, {5, 4, 13, 11});
  const Tensor out = batched.run(x);
  EXPECT_TRUE(bitwise_equal(out, oracle.forward(x)));

  const int64_t chw = x.numel() / x.size(0);
  const int64_t row = out.numel() / out.size(0);
  Tensor xi({1, 4, 13, 11});
  for (int64_t i = 0; i < x.size(0); ++i) {
    std::memcpy(xi.data(), x.data() + i * chw,
                static_cast<size_t>(chw) * sizeof(float));
    const Tensor yi = single.run(xi);
    ASSERT_EQ(yi.numel(), row);
    EXPECT_EQ(std::memcmp(yi.data(), out.data() + i * row,
                          static_cast<size_t>(row) * sizeof(float)),
              0)
        << "image " << i;
  }
}

TEST(BatchedLowering, CompileRejectsReferenceBackend) {
  const FlatModel m = random_graph(5);
  EXPECT_THROW(runtime::CompiledModel::compile(m, Backend::reference),
               std::runtime_error);
}

TEST(BatchedLowering, SessionBatchedRunBitwiseEqualsSingleImageRuns) {
  // End to end through the serving tier: one Session fed a stacked batch
  // must produce the same rows as single-image submissions.
  const FlatModel m = random_graph(19);
  auto compiled = runtime::CompiledModel::compile(m);
  runtime::Session batched(compiled);
  runtime::Session single(compiled);
  Rng rng(41, 1);
  const Tensor x = random_input(rng, {5, 4, 13, 11});
  const Tensor out = batched.run(x);

  const int64_t chw = x.numel() / x.size(0);
  const int64_t row = out.numel() / out.size(0);
  Tensor xi({1, 4, 13, 11});
  for (int64_t i = 0; i < x.size(0); ++i) {
    std::memcpy(xi.data(), x.data() + i * chw,
                static_cast<size_t>(chw) * sizeof(float));
    const Tensor yi = single.run(xi);
    ASSERT_EQ(yi.numel(), row);
    EXPECT_EQ(std::memcmp(yi.data(), out.data() + i * row,
                          static_cast<size_t>(row) * sizeof(float)),
              0)
        << "image " << i;
  }
}

}  // namespace
}  // namespace nb::exporter
