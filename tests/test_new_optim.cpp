// Tests for the Adam / RMSprop optimizers, EMA weight averaging, and the
// optimizer factory. Convergence tests minimize a strongly convex quadratic
// f(w) = 0.5 * sum((w - target)^2) whose gradient is (w - target).
#include <gtest/gtest.h>

#include <cmath>

#include "optim/adam.h"
#include "optim/ema.h"
#include "optim/optimizer.h"
#include "optim/rmsprop.h"
#include "optim/sgd.h"
#include "tensor/rng.h"

namespace nb::optim {
namespace {

nn::Parameter make_param(std::vector<float> values) {
  const int64_t n = static_cast<int64_t>(values.size());
  return nn::Parameter(Tensor::from({n}, std::move(values)));
}

void quadratic_grad(nn::Parameter& p, const std::vector<float>& target) {
  for (int64_t i = 0; i < p.value.numel(); ++i) {
    p.grad.at(i) = p.value.at(i) - target[static_cast<size_t>(i)];
  }
}

TEST(Adam, FirstStepHasLrMagnitude) {
  // With bias correction the very first Adam update is lr * sign(grad)
  // (up to eps), independent of the gradient scale.
  nn::Parameter p = make_param({0.0f});
  p.grad.at(0) = 123.456f;
  AdamOptions opts;
  opts.lr = 0.1f;
  opts.eps = 1e-12f;
  Adam adam({&p}, opts);
  adam.step();
  EXPECT_NEAR(p.value.at(0), -0.1f, 1e-5f);
}

TEST(Adam, ConvergesOnQuadratic) {
  nn::Parameter p = make_param({5.0f, -3.0f, 0.5f});
  const std::vector<float> target = {1.0f, 2.0f, -0.25f};
  AdamOptions opts;
  opts.lr = 0.05f;
  Adam adam({&p}, opts);
  for (int i = 0; i < 400; ++i) {
    quadratic_grad(p, target);
    adam.step();
  }
  for (int64_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(p.value.at(i), target[static_cast<size_t>(i)], 1e-2f);
  }
}

TEST(Adam, DecoupledDecayShrinksWeightsWithZeroGrad) {
  nn::Parameter p = make_param({2.0f});
  AdamOptions opts;
  opts.lr = 0.1f;
  opts.weight_decay = 0.5f;
  opts.decoupled_decay = true;
  Adam adam({&p}, opts);
  p.grad.at(0) = 0.0f;
  adam.step();
  // AdamW: w -= lr*wd*w = 2.0 - 0.1*0.5*2.0 = 1.9 (moment update is 0).
  EXPECT_NEAR(p.value.at(0), 1.9f, 1e-6f);
}

TEST(Adam, CoupledL2FeedsMoments) {
  nn::Parameter p = make_param({2.0f});
  AdamOptions opts;
  opts.lr = 0.1f;
  opts.weight_decay = 0.5f;
  opts.decoupled_decay = false;
  opts.eps = 1e-12f;
  Adam adam({&p}, opts);
  p.grad.at(0) = 0.0f;
  adam.step();
  // L2-into-gradient: effective grad = wd*w = 1.0 -> first step = -lr*sign.
  EXPECT_NEAR(p.value.at(0), 2.0f - 0.1f, 1e-5f);
}

TEST(Adam, DecayFlagOnParameterIsRespected) {
  nn::Parameter p = make_param({2.0f});
  p.decay = false;  // BN-style parameter
  AdamOptions opts;
  opts.lr = 0.1f;
  opts.weight_decay = 0.5f;
  Adam adam({&p}, opts);
  p.grad.at(0) = 0.0f;
  adam.step();
  EXPECT_FLOAT_EQ(p.value.at(0), 2.0f);
}

TEST(Adam, RebindResetsStepCount) {
  nn::Parameter p = make_param({1.0f});
  Adam adam({&p}, AdamOptions{});
  p.grad.at(0) = 1.0f;
  adam.step();
  EXPECT_EQ(adam.step_count(), 1);
  nn::Parameter q = make_param({0.0f});
  adam.rebind({&q});
  EXPECT_EQ(adam.step_count(), 0);
}

TEST(Adam, InvalidOptionsThrow) {
  nn::Parameter p = make_param({1.0f});
  AdamOptions bad;
  bad.beta1 = 1.0f;
  EXPECT_THROW(Adam({&p}, bad), std::runtime_error);
  AdamOptions neg;
  neg.lr = -1.0f;
  EXPECT_THROW(Adam({&p}, neg), std::runtime_error);
}

TEST(RmsProp, ConvergesOnQuadratic) {
  nn::Parameter p = make_param({4.0f, -4.0f});
  const std::vector<float> target = {0.5f, 1.5f};
  RmsPropOptions opts;
  opts.lr = 0.02f;
  RmsProp rms({&p}, opts);
  for (int i = 0; i < 500; ++i) {
    quadratic_grad(p, target);
    rms.step();
  }
  EXPECT_NEAR(p.value.at(0), 0.5f, 5e-2f);
  EXPECT_NEAR(p.value.at(1), 1.5f, 5e-2f);
}

TEST(RmsProp, MomentumAcceleratesFirstSteps) {
  nn::Parameter plain = make_param({1.0f});
  nn::Parameter mom = make_param({1.0f});
  RmsPropOptions a;
  a.lr = 0.01f;
  RmsPropOptions b = a;
  b.momentum = 0.9f;
  RmsProp r1({&plain}, a);
  RmsProp r2({&mom}, b);
  for (int i = 0; i < 10; ++i) {
    plain.grad.at(0) = 1.0f;
    mom.grad.at(0) = 1.0f;
    r1.step();
    r2.step();
  }
  // Momentum accumulates the (sign-constant) updates, moving farther.
  EXPECT_LT(mom.value.at(0), plain.value.at(0));
}

TEST(Ema, ShadowStartsAsCopy) {
  nn::Parameter p = make_param({3.0f});
  EmaWeights ema({&p}, 0.9f);
  ema.swap_in();
  EXPECT_FLOAT_EQ(p.value.at(0), 3.0f);
  ema.swap_out();
}

TEST(Ema, UpdateMovesShadowTowardWeights) {
  nn::Parameter p = make_param({0.0f});
  EmaWeights ema({&p}, 0.5f);
  p.value.at(0) = 10.0f;
  ema.update();
  // Warm-up decay: min(0.5, (1+1)/(10+1)) = 2/11.
  const float d = 2.0f / 11.0f;
  const float expected = d * 0.0f + (1.0f - d) * 10.0f;
  ema.swap_in();
  EXPECT_NEAR(p.value.at(0), expected, 1e-5f);
  ema.swap_out();
  EXPECT_FLOAT_EQ(p.value.at(0), 10.0f);
}

TEST(Ema, SwapIsSelfInverse) {
  nn::Parameter p = make_param({1.0f, 2.0f});
  EmaWeights ema({&p}, 0.9f);
  p.value.at(0) = 5.0f;
  ema.update();
  const float live0 = p.value.at(0);
  ema.swap_in();
  ema.swap_out();
  EXPECT_FLOAT_EQ(p.value.at(0), live0);
}

TEST(Ema, MisuseThrows) {
  nn::Parameter p = make_param({1.0f});
  EmaWeights ema({&p}, 0.9f);
  EXPECT_THROW(ema.swap_out(), std::runtime_error);
  ema.swap_in();
  EXPECT_THROW(ema.swap_in(), std::runtime_error);
  EXPECT_THROW(ema.update(), std::runtime_error);
  EXPECT_THROW(ema.copy_to_model(), std::runtime_error);
  ema.swap_out();
  EXPECT_THROW(EmaWeights({&p}, 1.0f), std::runtime_error);
}

TEST(Ema, CopyToModelExportsShadow) {
  nn::Parameter p = make_param({0.0f});
  EmaWeights ema({&p}, 0.5f);
  p.value.at(0) = 8.0f;
  ema.update();
  ema.swap_in();
  const float shadow = p.value.at(0);
  ema.swap_out();
  ema.copy_to_model();
  EXPECT_FLOAT_EQ(p.value.at(0), shadow);
  EXPECT_LT(p.value.at(0), 8.0f);  // averaged down toward the 0 init
}

TEST(OptimizerFactory, BuildsEachKind) {
  nn::Parameter p = make_param({1.0f});
  auto sgd = make_optimizer(OptimizerKind::sgd, {&p}, 0.1f, 0.9f, 1e-4f);
  auto adam = make_optimizer(OptimizerKind::adam, {&p}, 0.01f, 0.9f, 0.0f);
  auto rms = make_optimizer(OptimizerKind::rmsprop, {&p}, 0.01f, 0.0f, 0.0f);
  EXPECT_EQ(sgd->name(), "sgd");
  EXPECT_EQ(adam->name(), "adamw");
  EXPECT_EQ(rms->name(), "rmsprop");
  EXPECT_FLOAT_EQ(sgd->lr(), 0.1f);
  p.grad.at(0) = 1.0f;
  sgd->step();  // must not crash through the interface
}

TEST(OptimizerFactory, KindFromString) {
  EXPECT_EQ(optimizer_kind_from_string("sgd"), OptimizerKind::sgd);
  EXPECT_EQ(optimizer_kind_from_string("adam"), OptimizerKind::adam);
  EXPECT_EQ(optimizer_kind_from_string("adamw"), OptimizerKind::adam);
  EXPECT_EQ(optimizer_kind_from_string("rmsprop"), OptimizerKind::rmsprop);
  EXPECT_THROW(optimizer_kind_from_string("lamb"), std::runtime_error);
}

TEST(OptimizerFactory, PolymorphicUseThroughBasePointer) {
  nn::Parameter p = make_param({5.0f});
  const std::vector<float> target = {1.0f};
  std::unique_ptr<Optimizer> opt =
      make_optimizer(OptimizerKind::adam, {&p}, 0.05f, 0.9f, 0.0f);
  for (int i = 0; i < 300; ++i) {
    quadratic_grad(p, target);
    opt->step();
  }
  EXPECT_NEAR(p.value.at(0), 1.0f, 2e-2f);
}

}  // namespace
}  // namespace nb::optim
